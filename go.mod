module dense802154

go 1.24
