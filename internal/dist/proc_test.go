package dist_test

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestMultiProcessKillMidPlan is the end-to-end crash drill of the tentpole:
// a real coordinator process fronting two real worker processes, one of
// which exits(3) mid-plan via -fault-exit-after-tasks. The coordinator must
// re-dispatch the dead worker's remainder and answer /v2/query with bytes
// identical to a plain single-process server, and its /metrics must show
// the re-dispatch happened.
func TestMultiProcessKillMidPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	bin := buildServe(t)

	workerA := spawnServe(t, bin, "-workers", "2", "-fault-exit-after-tasks", "1")
	workerB := spawnServe(t, bin, "-workers", "2")
	coord := spawnServe(t, bin,
		"-workers", "2",
		"-peers", workerA+","+workerB,
		"-shard-size", "2",
		"-shard-timeout", "10s",
	)
	for _, u := range []string{workerA, workerB, coord} {
		waitReady(t, u)
	}

	// 12 grid points, shard size 2. The scheduler always opens the plan by
	// dispatching the first shard to the first listed peer, so worker A is
	// guaranteed work — and -fault-exit-after-tasks 1 makes it die after
	// the first line of that shard, mid-stream, deterministically.
	q := `{"kind":"grid",` +
		`"params":{"contention":{"superframes":8,"seed":3}},` +
		`"losses":{"values":[52,58,64,70,76,82]},` +
		`"payloads":{"values":[20,100]}}`

	distributed := postQuery(t, coord, q)
	local := postQuery(t, workerB, q)
	if !bytes.Equal(distributed, local) {
		t.Fatalf("distributed bytes deviate from single-process bytes\n got %s\nwant %s", distributed, local)
	}
	if n := scrapeCounter(t, coord, "wsn_dist_redispatch_total"); n == 0 {
		t.Fatal("worker death did not raise wsn_dist_redispatch_total")
	}
	if n := scrapeCounter(t, coord, "wsn_dist_tasks_remote_total"); n == 0 {
		t.Fatal("no task was computed remotely")
	}
}

func buildServe(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "wsn-serve")
	cmd := exec.Command("go", "build", "-o", bin, "dense802154/cmd/wsn-serve")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	return filepath.Dir(strings.TrimSpace(string(out)))
}

// spawnServe starts one wsn-serve on a fresh loopback port and returns its
// base URL. The process is killed at test end; a -fault-exit-after-tasks
// death in between is part of the script, not a failure.
func spawnServe(t *testing.T, bin string, extra ...string) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	args := append([]string{"-addr", addr, "-quiet"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	return "http://" + addr
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("%s never became ready", base)
}

func postQuery(t *testing.T, base, body string) []byte {
	t.Helper()
	resp, err := http.Post(base+"/v2/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s/v2/query answered %d: %s", base, resp.StatusCode, b)
	}
	return b
}

func scrapeCounter(t *testing.T, base, name string) uint64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(fmt.Sprintf(`(?m)^%s (\d+)$`, regexp.QuoteMeta(name)))
	m := re.FindSubmatch(b)
	if m == nil {
		t.Fatalf("metric %s absent from %s/metrics", name, base)
	}
	n, err := strconv.ParseUint(string(m[1]), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return n
}
