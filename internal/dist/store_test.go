package dist_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dense802154/internal/dist"
	"dense802154/internal/query"
	"dense802154/internal/service"
	"dense802154/internal/store"
)

func newStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.New(store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestDistributeStoreWarmZeroDispatch: after one distributed run fills the
// store, a coordinator sharing it completes the same query byte-identically
// without touching the fleet at all — proven by handing the second
// coordinator a transport that fails every call.
func TestDistributeStoreWarmZeroDispatch(t *testing.T) {
	st := newStore(t)
	q := gridQuery()
	want := localBytes(t, q)

	opts := fastOpts(fleet(t, 2), nil)
	opts.Store = st
	if got := distribute(t, dist.New(opts), q); !bytes.Equal(got, want) {
		t.Fatal("cold store-backed distribution deviates from local bytes")
	}

	before := snap()
	warm := fastOpts([]string{"http://127.0.0.1:1"}, downTransport{})
	warm.Store = st
	if got := distribute(t, dist.New(warm), q); !bytes.Equal(got, want) {
		t.Fatal("fully warm distribution deviates from local bytes")
	}
	after := snap()
	if after.remote != before.remote {
		t.Errorf("warm distribution dispatched %d tasks remotely, want 0", after.remote-before.remote)
	}
	if after.fallback != before.fallback {
		t.Error("warm distribution fell back to local execution instead of prefilling")
	}
	if after.failures != before.failures {
		t.Error("warm distribution probed the dead fleet")
	}
}

// TestDistributePartialSeedDispatchesOnlyHoles seeds alternate tasks and
// checks exactly the holes travel to the fleet, byte-identically — the
// fleet-as-shared-shard-cache behavior, plus the coordinator back-filling
// the store with what the fleet computed.
func TestDistributePartialSeedDispatchesOnlyHoles(t *testing.T) {
	q := gridQuery()
	plan, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := plan.Execute(context.Background(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := plan.NumTasks()

	st := newStore(t)
	view := st.Tasks(q)
	if view == nil {
		t.Fatal("grid query not cacheable")
	}
	seeded := 0
	for i := 0; i < n; i += 2 {
		b, err := query.EncodeTaskResult(rs.Results[i])
		if err != nil {
			t.Fatal(err)
		}
		view.PutTask(i, b)
		seeded++
	}

	want := localBytes(t, q)
	opts := fastOpts(fleet(t, 2), nil)
	opts.Store = st
	before := snap()
	if got := distribute(t, dist.New(opts), q); !bytes.Equal(got, want) {
		t.Fatal("partially seeded distribution deviates from local bytes")
	}
	after := snap()
	if got, wantRemote := after.remote-before.remote, uint64(n-seeded); got != wantRemote {
		t.Errorf("dispatched %d tasks remotely, want %d (the holes)", got, wantRemote)
	}

	// The run back-filled the store: a dead-fleet coordinator now completes
	// without dispatching anything.
	dead := fastOpts([]string{"http://127.0.0.1:1"}, downTransport{})
	dead.Store = st
	mid := snap()
	if got := distribute(t, dist.New(dead), q); !bytes.Equal(got, want) {
		t.Fatal("back-filled store did not reproduce local bytes")
	}
	if end := snap(); end.remote != mid.remote || end.fallback != mid.fallback {
		t.Error("back-filled store still dispatched or fell back")
	}
}

// TestDistributeWorkerStoreSeeded seeds the *workers'* shared store through
// a plain /v2/query to one of them; a storeless coordinator must then get
// every shard served from the workers' cache, byte-identically.
func TestDistributeWorkerStoreSeeded(t *testing.T) {
	st := newStore(t)
	urls := make([]string, 2)
	for i := range urls {
		ts := httptest.NewServer(service.NewServer(service.Config{Workers: 2, Store: st}))
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	q := gridQuery()
	body, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := httpPost(urls[0]+"/v2/query", string(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp != 200 {
		t.Fatalf("seeding query status %d", resp)
	}

	hits0 := store.HitsTotal.Value()
	c := dist.New(fastOpts(urls, nil)) // no coordinator-side store
	if got := distribute(t, c, q); !bytes.Equal(got, localBytes(t, q)) {
		t.Fatal("worker-cached distribution deviates from local bytes")
	}
	if d := store.HitsTotal.Value() - hits0; d < 6 {
		t.Errorf("workers served %d tasks from the store, want ≥ 6", d)
	}
}

// TestDistributeStoreSurvivesMidStreamDrop is the satellite-1 pairing at the
// coordinator layer with the store enabled: a mid-stream transport drop must
// still re-dispatch (never abort) and complete byte-identically.
func TestDistributeStoreSurvivesMidStreamDrop(t *testing.T) {
	urls := fleet(t, 2)
	ft := dist.NewFaultTransport(&dist.HTTPTransport{},
		dist.Fault{Worker: urls[0], AtIndex: 1, Kind: dist.FaultDrop})
	q := gridQuery()
	opts := fastOpts(urls, ft)
	opts.Store = newStore(t)
	before := snap()
	if got := distribute(t, dist.New(opts), q); !bytes.Equal(got, localBytes(t, q)) {
		t.Fatal("bytes deviate after mid-stream drop with store enabled")
	}
	if after := snap(); after.redispatch == before.redispatch {
		t.Fatal("mid-stream drop did not re-dispatch")
	}
}

// httpPost posts a JSON body and returns the status code.
func httpPost(url, body string) (int, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return resp.StatusCode, nil
}
