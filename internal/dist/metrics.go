package dist

import "dense802154/internal/telemetry"

// Metrics are the coordinator's package-level counters. They live at package
// scope (telemetry's shared-source idiom) so any number of registries —
// production server, test servers — can expose the same totals.
var (
	// QueriesTotal counts Distribute calls that took the distributed path.
	QueriesTotal telemetry.Counter
	// ShardsDispatchedTotal counts shard dispatches, including retries and
	// speculative re-dispatches.
	ShardsDispatchedTotal telemetry.Counter
	// RetriesTotal counts shard attempts after the first for a given range.
	RetriesTotal telemetry.Counter
	// RedispatchTotal counts ranges re-dispatched after a worker timeout,
	// transport error, disconnect or death.
	RedispatchTotal telemetry.Counter
	// StragglerRedispatchTotal counts speculative duplicates launched
	// against slow-but-alive shards.
	StragglerRedispatchTotal telemetry.Counter
	// TasksRemoteTotal counts tasks whose accepted result came from a
	// worker stream.
	TasksRemoteTotal telemetry.Counter
	// TasksLocalTotal counts tasks computed locally (fallback or
	// non-shardable plans routed through Distribute).
	TasksLocalTotal telemetry.Counter
	// LocalFallbackTotal counts queries that degraded to local execution
	// after the fleet was lost or retries were exhausted.
	LocalFallbackTotal telemetry.Counter
	// WorkerFailuresTotal counts individual worker failures observed
	// (failed dispatches, broken streams, failed probes at admission).
	WorkerFailuresTotal telemetry.Counter
	// TasksServedTotal counts task lines this process served to remote
	// coordinators over /v2/tasks (the worker-side mirror of
	// TasksRemoteTotal).
	TasksServedTotal telemetry.Counter
	// WorkersReady / WorkersEvicted track current fleet partition sizes.
	WorkersReady   telemetry.Gauge
	WorkersEvicted telemetry.Gauge
)

// RegisterMetrics exposes the wsn_dist_* families on r.
func RegisterMetrics(r *telemetry.Registry) {
	r.RegisterCounter("wsn_dist_queries_total", "Queries executed through the distributed coordinator path.", &QueriesTotal)
	r.RegisterCounter("wsn_dist_shards_dispatched_total", "Shard dispatches to workers, including retries and speculation.", &ShardsDispatchedTotal)
	r.RegisterCounter("wsn_dist_retries_total", "Shard attempts after the first for an index range.", &RetriesTotal)
	r.RegisterCounter("wsn_dist_redispatch_total", "Index ranges re-dispatched after worker timeout, error or disconnect.", &RedispatchTotal)
	r.RegisterCounter("wsn_dist_straggler_redispatch_total", "Speculative duplicate dispatches against straggling shards.", &StragglerRedispatchTotal)
	r.RegisterCounter("wsn_dist_tasks_remote_total", "Tasks whose accepted result came from a worker.", &TasksRemoteTotal)
	r.RegisterCounter("wsn_dist_tasks_local_total", "Tasks computed locally by the coordinator.", &TasksLocalTotal)
	r.RegisterCounter("wsn_dist_local_fallback_total", "Queries degraded to local execution after fleet loss.", &LocalFallbackTotal)
	r.RegisterCounter("wsn_dist_worker_failures_total", "Worker failures observed: failed dispatches, broken streams, failed probes.", &WorkerFailuresTotal)
	r.RegisterCounter("wsn_dist_tasks_served_total", "Task lines served to remote coordinators over /v2/tasks.", &TasksServedTotal)
	r.GaugeFunc("wsn_dist_workers_ready", "Workers currently admitted to the fleet.", func() float64 {
		return float64(WorkersReady.Value())
	})
	r.GaugeFunc("wsn_dist_workers_evicted", "Workers currently evicted pending readmission.", func() float64 {
		return float64(WorkersEvicted.Value())
	})
}
