package dist_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dense802154/internal/dist"
	"dense802154/internal/query"
	"dense802154/internal/service"
)

// fleet boots n in-process worker servers and returns their base URLs.
func fleet(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		ts := httptest.NewServer(service.NewServer(service.Config{Workers: 2}))
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

// gridQuery is the standard multi-task workload of these tests: a 6-point
// product sweep, cheap per point.
func gridQuery() query.Query {
	seed := int64(3)
	return query.Query{
		Kind:     query.KindGrid,
		Params:   &query.ParamsWire{Contention: &query.ContentionWire{Superframes: 8, Seed: &seed}},
		Losses:   &query.Axis{Values: []query.Float{55, 70, 85}},
		Payloads: &query.IntAxis{Values: []int{20, 100}},
	}
}

func replicasQuery() query.Query {
	return query.Query{
		Kind:     query.KindReplicas,
		Sim:      &query.SimConfigWire{Nodes: intPtr(10), Superframes: intPtr(4)},
		Replicas: 6,
	}
}

func intPtr(v int) *int { return &v }

// localBytes is the ground truth every distributed run must reproduce.
func localBytes(t *testing.T, q query.Query) []byte {
	t.Helper()
	rs, err := query.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rs.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// distribute runs q through c and returns the encoded bytes.
func distribute(t *testing.T, c *dist.Coordinator, q query.Query) []byte {
	t.Helper()
	plan, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := c.Distribute(context.Background(), q, plan, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rs.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// fastOpts keeps retry/probe timing test-friendly; fault scenarios override
// what they need.
func fastOpts(workers []string, transport dist.Transport) dist.Options {
	return dist.Options{
		Workers:      workers,
		Transport:    transport,
		ShardSize:    2,
		RetryBase:    2 * time.Millisecond,
		RetryCap:     20 * time.Millisecond,
		ShardTimeout: 10 * time.Second,
		ReprobeAfter: 20 * time.Millisecond,
	}
}

type counterSnap struct {
	redispatch, retries, straggler, fallback, failures, remote, local uint64
}

func snap() counterSnap {
	return counterSnap{
		redispatch: dist.RedispatchTotal.Value(),
		retries:    dist.RetriesTotal.Value(),
		straggler:  dist.StragglerRedispatchTotal.Value(),
		fallback:   dist.LocalFallbackTotal.Value(),
		failures:   dist.WorkerFailuresTotal.Value(),
		remote:     dist.TasksRemoteTotal.Value(),
		local:      dist.TasksLocalTotal.Value(),
	}
}

func TestDistributeMatchesLocal(t *testing.T) {
	urls := fleet(t, 2)
	c := dist.New(fastOpts(urls, nil))
	for name, q := range map[string]query.Query{"grid": gridQuery(), "replicas": replicasQuery()} {
		want := localBytes(t, q)
		got := distribute(t, c, q)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: distributed bytes deviate from local run\n got %s\nwant %s", name, got, want)
		}
	}
}

func TestDistributeFleetSizeIdentity(t *testing.T) {
	// Workers=1 fleet and Workers=3 fleet must both match the local bytes:
	// distribution topology is a pure scheduling concern.
	q := gridQuery()
	want := localBytes(t, q)
	for _, n := range []int{1, 3} {
		c := dist.New(fastOpts(fleet(t, n), nil))
		if got := distribute(t, c, q); !bytes.Equal(got, want) {
			t.Fatalf("fleet of %d deviates from local bytes", n)
		}
	}
}

func TestDistributeYieldsPlanOrder(t *testing.T) {
	q := gridQuery()
	plan, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	c := dist.New(fastOpts(fleet(t, 2), nil))
	var order []int
	if _, err := c.Distribute(context.Background(), q, plan, 2, func(tr query.TaskResult) error {
		order = append(order, tr.Index)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(order) != plan.NumTasks() {
		t.Fatalf("yielded %d of %d", len(order), plan.NumTasks())
	}
	for i, idx := range order {
		if idx != i {
			t.Fatalf("yield order %v not plan order", order)
		}
	}
}

func TestDistributeNonShardableRunsLocal(t *testing.T) {
	seed := int64(3)
	q := query.Query{Kind: query.KindEvaluate,
		Params: &query.ParamsWire{Contention: &query.ContentionWire{Superframes: 8, Seed: &seed}}}
	want := localBytes(t, q)
	// A transport that fails every call proves no network touch happens.
	c := dist.New(fastOpts([]string{"http://127.0.0.1:1"}, downTransport{}))
	if got := distribute(t, c, q); !bytes.Equal(got, want) {
		t.Fatal("non-shardable query deviates from local run")
	}
}

// downTransport fails every call, as a fully unreachable fleet would.
type downTransport struct{}

func (downTransport) Send(context.Context, string, dist.TaskRequest) (dist.LineStream, error) {
	return nil, errors.New("worker down")
}
func (downTransport) Ready(context.Context, string) error {
	return errors.New("worker down")
}

// The four injected failure modes of the tentpole: each must leave the
// merged bytes identical to a local run and move the right counters.

func TestDistributeSurvivesWorkerKill(t *testing.T) {
	urls := fleet(t, 2)
	ft := dist.NewFaultTransport(&dist.HTTPTransport{},
		dist.Fault{Worker: urls[0], AtIndex: 1, Kind: dist.FaultKill})
	q := gridQuery()
	before := snap()
	c := dist.New(fastOpts(urls, ft))
	if got := distribute(t, c, q); !bytes.Equal(got, localBytes(t, q)) {
		t.Fatal("bytes deviate after worker kill")
	}
	after := snap()
	if after.redispatch == before.redispatch {
		t.Fatal("kill did not re-dispatch")
	}
	if after.failures == before.failures {
		t.Fatal("kill not counted as a worker failure")
	}
}

func TestDistributeSurvivesDispatchErrors(t *testing.T) {
	urls := fleet(t, 2)
	ft := dist.NewFaultTransport(&dist.HTTPTransport{},
		dist.Fault{Worker: urls[1], AtIndex: -1, Kind: dist.FaultError, Times: 2})
	q := gridQuery()
	before := snap()
	c := dist.New(fastOpts(urls, ft))
	if got := distribute(t, c, q); !bytes.Equal(got, localBytes(t, q)) {
		t.Fatal("bytes deviate after dispatch errors")
	}
	if after := snap(); after.redispatch == before.redispatch {
		t.Fatal("dispatch errors did not re-dispatch")
	}
}

func TestDistributeSurvivesMidStreamDrop(t *testing.T) {
	urls := fleet(t, 2)
	// Drop each worker's stream once mid-shard: partial results must be
	// kept and only the remainders re-dispatched.
	ft := dist.NewFaultTransport(&dist.HTTPTransport{},
		dist.Fault{Worker: urls[0], AtIndex: 1, Kind: dist.FaultDrop},
		dist.Fault{Worker: urls[1], AtIndex: 3, Kind: dist.FaultDrop})
	q := gridQuery()
	before := snap()
	c := dist.New(fastOpts(urls, ft))
	if got := distribute(t, c, q); !bytes.Equal(got, localBytes(t, q)) {
		t.Fatal("bytes deviate after mid-stream drops")
	}
	after := snap()
	if after.redispatch == before.redispatch {
		t.Fatal("drops did not re-dispatch")
	}
	if after.retries == before.retries {
		t.Fatal("re-dispatched ranges not counted as retries")
	}
}

func TestDistributeSpeculatesStragglers(t *testing.T) {
	urls := fleet(t, 2)
	// Worker 0 stalls for a long time before delivering its second line;
	// the coordinator must duplicate the rest of the shard on worker 1 and
	// still merge exactly one result per index.
	ft := dist.NewFaultTransport(&dist.HTTPTransport{},
		dist.Fault{Worker: urls[0], AtIndex: 1, Kind: dist.FaultDelay, Delay: 2 * time.Second})
	q := gridQuery()
	opts := fastOpts(urls, ft)
	opts.StragglerMin = 30 * time.Millisecond
	opts.StragglerFactor = 1
	before := snap()
	c := dist.New(opts)
	if got := distribute(t, c, q); !bytes.Equal(got, localBytes(t, q)) {
		t.Fatal("bytes deviate under straggler speculation")
	}
	if after := snap(); after.straggler == before.straggler {
		t.Fatal("straggler was not speculated")
	}
}

func TestDistributeFleetLostFallsBackLocal(t *testing.T) {
	urls := fleet(t, 2)
	// Both workers admit fine but every dispatch fails: the coordinator
	// must evict the fleet and finish the query locally.
	ft := dist.NewFaultTransport(&dist.HTTPTransport{},
		dist.Fault{Worker: urls[0], AtIndex: -1, Kind: dist.FaultError, Times: 100},
		dist.Fault{Worker: urls[1], AtIndex: -1, Kind: dist.FaultError, Times: 100})
	q := gridQuery()
	before := snap()
	c := dist.New(fastOpts(urls, ft))
	if got := distribute(t, c, q); !bytes.Equal(got, localBytes(t, q)) {
		t.Fatal("bytes deviate after local fallback")
	}
	after := snap()
	if after.fallback == before.fallback {
		t.Fatal("fleet loss did not count a local fallback")
	}
	if after.local == before.local {
		t.Fatal("no tasks were computed locally")
	}
}

func TestDistributeNoWorkersReadyRunsLocal(t *testing.T) {
	// Admission finds nobody: Distribute must still answer, locally.
	q := gridQuery()
	before := snap()
	c := dist.New(fastOpts([]string{"http://127.0.0.1:1", "http://127.0.0.1:2"}, downTransport{}))
	if got := distribute(t, c, q); !bytes.Equal(got, localBytes(t, q)) {
		t.Fatal("bytes deviate when no worker admits")
	}
	if after := snap(); after.fallback == before.fallback {
		t.Fatal("empty fleet did not count a local fallback")
	}
}

// scriptedTransport serves one scripted line sequence per Send, for
// protocol-level coordinator behavior no real worker exhibits.
type scriptedTransport struct{ lines []dist.TaskLine }

func (s scriptedTransport) Send(context.Context, string, dist.TaskRequest) (dist.LineStream, error) {
	return &scriptedStream{lines: s.lines}, nil
}
func (s scriptedTransport) Ready(context.Context, string) error { return nil }

type scriptedStream struct {
	lines []dist.TaskLine
	i     int
}

func (s *scriptedStream) Next() (dist.TaskLine, error) {
	if s.i >= len(s.lines) {
		return dist.TaskLine{}, io.EOF
	}
	l := s.lines[s.i]
	s.i++
	return l, nil
}
func (s *scriptedStream) Close() error { return nil }

func TestDistributeAbortsOnWorkerReportedError(t *testing.T) {
	// A worker-reported task error is deterministic: the coordinator must
	// abort the query with it instead of retrying elsewhere.
	q := gridQuery()
	plan, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	c := dist.New(fastOpts([]string{"http://w1"}, scriptedTransport{lines: []dist.TaskLine{
		{Error: "model exploded deterministically"},
	}}))
	_, err = c.Distribute(context.Background(), q, plan, 2, nil)
	if err == nil || !strings.Contains(err.Error(), "model exploded deterministically") {
		t.Fatalf("err = %v, want the worker-reported error", err)
	}
}

func TestDistributeHonorsQueryTimeout(t *testing.T) {
	q := replicasQuery()
	q.Sim = &query.SimConfigWire{Nodes: intPtr(40), Superframes: intPtr(50)}
	q.Replicas = 40
	q.TimeoutMS = 1
	plan, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	// A transport that never answers: only the deadline can end this.
	c := dist.New(fastOpts([]string{"http://w1"}, hangingTransport{}))
	_, err = c.Distribute(context.Background(), q, plan, 2, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

type hangingTransport struct{}

func (hangingTransport) Send(ctx context.Context, _ string, _ dist.TaskRequest) (dist.LineStream, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}
func (hangingTransport) Ready(ctx context.Context, _ string) error { return nil }

func TestDistributeWorkerReadmission(t *testing.T) {
	urls := fleet(t, 2)
	// Worker 0 dies at dispatch (evicted), then revives; with ReprobeAfter
	// tiny the readmission loop should bring it back within this query or,
	// at latest, leave the query unharmed.
	ft := dist.NewFaultTransport(&dist.HTTPTransport{},
		dist.Fault{Worker: urls[0], AtIndex: -1, Kind: dist.FaultKill})
	q := gridQuery()
	opts := fastOpts(urls, ft)
	opts.ReprobeAfter = 5 * time.Millisecond
	c := dist.New(opts)
	go func() {
		time.Sleep(30 * time.Millisecond)
		ft.Revive(urls[0])
	}()
	if got := distribute(t, c, q); !bytes.Equal(got, localBytes(t, q)) {
		t.Fatal("bytes deviate across eviction and readmission")
	}
}
