package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"time"

	"dense802154/internal/engine"
	"dense802154/internal/query"
)

// Options configures a Coordinator. The zero value of every field selects a
// sensible default; only Workers is required for distribution to engage.
type Options struct {
	// Workers lists the fleet's base URLs (e.g. "http://10.0.0.7:8080").
	// Empty means no fleet: every query runs locally.
	Workers []string
	// Transport carries shards (nil ⇒ HTTPTransport). Tests substitute a
	// FaultTransport here.
	Transport Transport
	// ShardSize is the task count per dispatched shard (0 ⇒ the plan is cut
	// into about two shards per admitted worker).
	ShardSize int
	// MaxAttempts bounds dispatch attempts per index range before the range
	// falls back to local execution (0 ⇒ 4).
	MaxAttempts int
	// RetryBase/RetryCap shape the exponential backoff between attempts of
	// one range: attempt k waits ~RetryBase·2^(k-1), jittered, capped at
	// RetryCap (0 ⇒ 50ms / 2s). Jitter affects timing only, never results.
	RetryBase time.Duration
	RetryCap  time.Duration
	// ShardTimeout is the per-shard deadline: a dispatch that has not
	// finished streaming by then is abandoned and its remainder
	// re-dispatched (0 ⇒ 60s).
	ShardTimeout time.Duration
	// StragglerFactor and StragglerMin set the speculation threshold: a
	// shard that has not progressed for max(StragglerMin, StragglerFactor ×
	// the EWMA of observed per-task wall times) is speculatively duplicated
	// on an idle worker (0 ⇒ 4 / 250ms). Duplicates are deduplicated by
	// task index, so speculation never changes bytes.
	StragglerFactor float64
	StragglerMin    time.Duration
	// ProbeTimeout bounds one readiness probe (0 ⇒ 2s); ReprobeAfter is the
	// interval between readmission probes of an evicted worker (0 ⇒ 5s).
	ProbeTimeout time.Duration
	ReprobeAfter time.Duration
	// Logger receives dispatch/failure/eviction events (nil ⇒ discard).
	Logger *slog.Logger
	// RetrySeed seeds the backoff jitter (0 ⇒ 1). Deterministic so tests
	// can pin schedules; results never depend on it.
	RetrySeed int64
	// Store, when set, is the coordinator's slice of the content-addressed
	// result store (store.Store implements it): task results already stored
	// under the query's content key are adopted before any span is
	// dispatched, and every accepted remote result is stored for the next
	// query — re-dispatched and speculated ranges whose tasks are stored
	// become lookups instead of recomputes. Stored results are byte-identical
	// to computed ones by the store's contract, so this changes dispatch
	// volume only, never merged bytes.
	Store Store
}

// Store is the narrow store seam the coordinator needs: a per-query task
// view keyed by content hash. store.Store implements it; the indirection
// keeps this package independent of the store's tiering.
type Store interface {
	Tasks(q query.Query) query.TaskStore
}

// Coordinator shards compiled plans across a worker fleet and merges the
// returned shards into ResultSets byte-identical to local execution. It is
// safe for concurrent Distribute calls.
type Coordinator struct {
	opts Options
}

// New returns a Coordinator with defaults applied over opts.
func New(opts Options) *Coordinator {
	if opts.Transport == nil {
		opts.Transport = &HTTPTransport{}
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 4
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = 50 * time.Millisecond
	}
	if opts.RetryCap <= 0 {
		opts.RetryCap = 2 * time.Second
	}
	if opts.ShardTimeout <= 0 {
		opts.ShardTimeout = 60 * time.Second
	}
	if opts.StragglerFactor <= 0 {
		opts.StragglerFactor = 4
	}
	if opts.StragglerMin <= 0 {
		opts.StragglerMin = 250 * time.Millisecond
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = 2 * time.Second
	}
	if opts.ReprobeAfter <= 0 {
		opts.ReprobeAfter = 5 * time.Second
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Coordinator{opts: opts}
}

// Fleet reports the configured worker URLs.
func (c *Coordinator) Fleet() []string { return append([]string(nil), c.opts.Workers...) }

// message kinds of the coordinator's single-threaded main loop.
const (
	msgLine = iota
	msgEnd
	msgProbe
)

type msg struct {
	kind   int
	fid    int
	line   TaskLine
	err    error
	worker string
}

// span is a pending index range awaiting dispatch.
type span struct {
	from, to   int
	attempts   int
	notBefore  time.Time
	lastWorker string
}

// flight is one in-progress dispatch (remote shard or local fallback).
type flight struct {
	id         int
	worker     string // "" ⇒ local execution
	from, to   int
	next       int // next expected plan index (stream is in range order)
	attempts   int
	speculated bool
	cancel     context.CancelFunc
	lastMove   time.Time
}

type workerState struct {
	busy        bool
	evicted     bool
	consecFails int
}

// distRun is the per-Distribute state machine. All fields are owned by the
// main loop; flight and probe goroutines communicate only through ch.
type distRun struct {
	c     *Coordinator
	ctx   context.Context
	q     query.Query
	plan  *query.Plan
	local int
	yield func(query.TaskResult) error

	n         int
	results   []query.TaskResult
	walls     []float64
	have      []bool
	haveCount int
	nextYield int
	start     time.Time
	// view is the query's slice of the content-addressed store (nil when no
	// store is configured or the query is not cacheable): read during
	// prefill, written as remote results are accepted.
	view query.TaskStore

	ch       chan msg
	pending  []span
	workers  map[string]*workerState
	flights  map[int]*flight
	nextFID  int
	rng      *rand.Rand
	ewma     float64 // EWMA of observed per-task wall times, ms
	fellBack bool
}

// Distribute executes plan, sharding it across the fleet when it is
// shardable and a fleet exists, and returns a ResultSet byte-identical to
// plan.Execute run locally. yield, when non-nil, receives every TaskResult
// in plan order exactly once (regardless of which machine computed it); a
// yield error cancels the query. Worker failures of every kind — dispatch
// errors, mid-stream disconnects, timeouts, death — are retried with
// exponential backoff and re-dispatched elsewhere; with the whole fleet
// lost, execution degrades to local and still completes.
func (c *Coordinator) Distribute(ctx context.Context, q query.Query, plan *query.Plan, localWorkers int, yield func(query.TaskResult) error) (*query.ResultSet, error) {
	if !plan.Shardable() || len(c.opts.Workers) == 0 {
		return plan.Execute(ctx, localWorkers, yield)
	}
	if plan.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, plan.Timeout)
		defer cancel()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	seed := c.opts.RetrySeed
	if seed == 0 {
		seed = 1
	}
	n := plan.NumTasks()
	r := &distRun{
		c: c, ctx: ctx, q: q, plan: plan, local: localWorkers, yield: yield,
		n:       n,
		results: make([]query.TaskResult, n),
		walls:   make([]float64, n),
		have:    make([]bool, n),
		start:   time.Now(),
		ch:      make(chan msg, 256),
		workers: make(map[string]*workerState),
		flights: make(map[int]*flight),
		rng:     rand.New(rand.NewSource(seed)),
	}
	if c.opts.Store != nil && plan.Kind.WireExact() {
		if v := c.opts.Store.Tasks(q); v != nil {
			r.view = v
			if plan.Store == nil {
				// Local fallback flights run through the plan, so give the
				// plan the same view: local execution then reads and writes
				// the store exactly like remote dispatch does.
				plan.Store = v
			}
		}
	}
	return r.run()
}

func (r *distRun) run() (*query.ResultSet, error) {
	if err := r.prefill(); err != nil {
		return nil, err
	}
	if r.haveCount == r.n {
		// Every task was already in the store: the query completes without
		// probing a single worker.
		QueriesTotal.Inc()
		return r.finish()
	}
	r.admit()
	defer func() {
		for _, ws := range r.workers {
			if ws.evicted {
				WorkersEvicted.Add(-1)
			} else {
				WorkersReady.Add(-1)
			}
		}
	}()
	if r.readyCount() == 0 {
		// No worker admitted: degrade to plain local execution. Tasks the
		// prefill already yielded must not be yielded twice, so the local
		// pass skips that prefix (plan order matches index order here).
		LocalFallbackTotal.Inc()
		r.c.opts.Logger.Warn("dist: no workers ready, running locally", "fleet", len(r.c.opts.Workers))
		remaining := r.n - r.haveCount
		yield := r.yield
		if yield != nil && r.nextYield > 0 {
			already := r.nextYield
			yield = func(tr query.TaskResult) error {
				if tr.Index < already {
					return nil
				}
				return r.yield(tr)
			}
		}
		rs, err := r.plan.Execute(r.ctx, r.local, yield)
		if err == nil {
			TasksLocalTotal.Add(uint64(remaining))
		}
		return rs, err
	}
	QueriesTotal.Inc()

	shard := r.c.opts.ShardSize
	if shard <= 0 {
		remaining := r.n - r.haveCount
		shard = max(1, (remaining+2*r.readyCount()-1)/(2*r.readyCount()))
	}
	// Pending spans cover the maximal runs the prefill left unfilled; a
	// warm store dispatches only the holes.
	for i := 0; i < r.n; {
		if r.have[i] {
			i++
			continue
		}
		j := i
		for j < r.n && !r.have[j] {
			j++
		}
		for from := i; from < j; from += shard {
			r.pending = append(r.pending, span{from: from, to: min(from+shard, j)})
		}
		i = j
	}

	ticker := time.NewTicker(25 * time.Millisecond)
	defer ticker.Stop()
	r.schedule()
	for r.haveCount < r.n {
		select {
		case <-r.ctx.Done():
			return nil, r.ctx.Err()
		case m := <-r.ch:
			var err error
			switch m.kind {
			case msgLine:
				err = r.onLine(m)
			case msgEnd:
				err = r.onEnd(m)
			case msgProbe:
				r.onProbe(m)
			}
			if err != nil {
				return nil, err
			}
		case <-ticker.C:
			r.checkStragglers()
		}
		r.schedule()
	}
	for _, f := range r.flights {
		f.cancel()
	}
	return r.finish()
}

// prefill adopts every task result already stored under the query's content
// key before anything is dispatched, then yields the contiguous prefix.
// Stored bytes are byte-identical to computed ones, so adoption changes
// dispatch volume only. An entry that fails to decode is simply skipped —
// the span machinery recomputes it.
func (r *distRun) prefill() error {
	if r.view == nil {
		return nil
	}
	for i := 0; i < r.n; i++ {
		b, ok := r.view.GetTask(i)
		if !ok {
			continue
		}
		tr, err := query.DecodeTaskResult(b)
		if err != nil {
			continue
		}
		r.have[i] = true
		r.results[i] = tr
		r.haveCount++
	}
	if r.haveCount > 0 {
		r.c.opts.Logger.Debug("dist: prefilled from store", "tasks", r.haveCount, "of", r.n)
	}
	return r.drainYield()
}

// drainYield delivers the contiguous completed prefix to the caller's yield
// in plan order.
func (r *distRun) drainYield() error {
	for r.nextYield < r.n && r.have[r.nextYield] {
		if r.yield != nil {
			if err := r.yield(r.results[r.nextYield]); err != nil {
				return err
			}
		}
		r.nextYield++
	}
	return nil
}

// finish assembles the completed result vector into the final ResultSet and
// attaches the execution trace when the query opted in.
func (r *distRun) finish() (*query.ResultSet, error) {
	rs, err := r.plan.Assemble(r.results)
	if err != nil {
		return nil, err
	}
	if r.plan.Trace {
		labels := r.plan.Labels()
		spans := make([]query.TaskSpanWire, r.n)
		for i := range spans {
			spans[i] = query.TaskSpanWire{Index: i, Label: labels[i], WallMS: query.Float(r.walls[i])}
		}
		rs.Trace = &query.PlanTraceWire{
			Kind:    r.plan.Kind,
			Workers: engine.ResolveWorkers(r.local),
			Tasks:   r.n,
			WallMS:  query.Float(time.Since(r.start).Seconds() * 1e3),
			Spans:   spans,
		}
	}
	return rs, nil
}

// admit probes every configured worker in parallel; failures start evicted
// with a readmission loop already running.
func (r *distRun) admit() {
	type probe struct {
		worker string
		err    error
	}
	ch := make(chan probe, len(r.c.opts.Workers))
	for _, w := range r.c.opts.Workers {
		go func(w string) {
			pctx, pcancel := probeCtx(r.ctx, r.c.opts.ProbeTimeout)
			defer pcancel()
			ch <- probe{w, r.c.opts.Transport.Ready(pctx, w)}
		}(w)
	}
	for range r.c.opts.Workers {
		p := <-ch
		ws := &workerState{}
		r.workers[p.worker] = ws
		if p.err != nil {
			WorkerFailuresTotal.Inc()
			WorkersEvicted.Add(1)
			ws.evicted = true
			r.c.opts.Logger.Warn("dist: worker not admitted", "worker", p.worker, "err", p.err)
			r.reprobe(p.worker)
		} else {
			WorkersReady.Add(1)
		}
	}
}

func (r *distRun) readyCount() int {
	n := 0
	for _, ws := range r.workers {
		if !ws.evicted {
			n++
		}
	}
	return n
}

// pickWorker returns an idle admitted worker, preferring one other than
// avoid, or "" when none is idle. Iteration over the fleet slice (not the
// map) keeps the choice deterministic given the same state.
func (r *distRun) pickWorker(avoid string) string {
	fallback := ""
	for _, w := range r.c.opts.Workers {
		ws := r.workers[w]
		if ws == nil || ws.evicted || ws.busy {
			continue
		}
		if w != avoid {
			return w
		}
		fallback = w
	}
	return fallback
}

// trim shrinks a span past results that arrived meanwhile (speculative
// duplicates are deduplicated by index, so edges of a requeued range may
// already be present).
func (r *distRun) trim(s span) span {
	for s.from < s.to && r.have[s.from] {
		s.from++
	}
	for s.to > s.from && r.have[s.to-1] {
		s.to--
	}
	return s
}

// schedule is the dispatch pass run after every event: each pending span
// goes to an idle worker, to local execution when its attempts are
// exhausted or the fleet is lost, or stays pending until its backoff
// expires.
func (r *distRun) schedule() {
	now := time.Now()
	var still []span
	for _, s := range r.pending {
		s = r.trim(s)
		if s.from >= s.to {
			continue
		}
		switch {
		case s.attempts >= r.c.opts.MaxAttempts || r.readyCount() == 0:
			if !r.fellBack {
				r.fellBack = true
				LocalFallbackTotal.Inc()
			}
			r.c.opts.Logger.Warn("dist: range falling back to local execution",
				"from", s.from, "to", s.to, "attempts", s.attempts, "ready", r.readyCount())
			r.launchLocal(s)
		case now.Before(s.notBefore):
			still = append(still, s)
		default:
			w := r.pickWorker(s.lastWorker)
			if w == "" {
				still = append(still, s)
				continue
			}
			r.launchRemote(w, s, false)
		}
	}
	r.pending = still
}

func (r *distRun) launchRemote(worker string, s span, speculative bool) {
	fid := r.nextFID
	r.nextFID++
	fctx, fcancel := context.WithTimeout(r.ctx, r.c.opts.ShardTimeout)
	r.flights[fid] = &flight{
		id: fid, worker: worker, from: s.from, to: s.to, next: s.from,
		attempts: s.attempts, speculated: speculative, cancel: fcancel, lastMove: time.Now(),
	}
	r.workers[worker].busy = true
	ShardsDispatchedTotal.Inc()
	if s.attempts > 0 && !speculative {
		RetriesTotal.Inc()
	}
	r.c.opts.Logger.Debug("dist: dispatch", "worker", worker, "from", s.from, "to", s.to,
		"attempt", s.attempts, "speculative", speculative)
	req := TaskRequest{Query: r.q, From: s.from, To: s.to}
	go func() {
		defer fcancel()
		stream, err := r.c.opts.Transport.Send(fctx, worker, req)
		if err != nil {
			r.post(msg{kind: msgEnd, fid: fid, err: err})
			return
		}
		defer stream.Close()
		for {
			line, err := stream.Next()
			if err != nil {
				if errors.Is(err, io.EOF) {
					// EOF before the terminal done line is a disconnect.
					err = io.ErrUnexpectedEOF
				}
				r.post(msg{kind: msgEnd, fid: fid, err: err})
				return
			}
			if line.Done {
				r.post(msg{kind: msgEnd, fid: fid})
				return
			}
			r.post(msg{kind: msgLine, fid: fid, line: line})
			if line.Error != "" {
				return // terminal compute-error line; the main loop aborts
			}
		}
	}()
}

func (r *distRun) launchLocal(s span) {
	fid := r.nextFID
	r.nextFID++
	fctx, fcancel := context.WithCancel(r.ctx)
	r.flights[fid] = &flight{id: fid, worker: "", from: s.from, to: s.to, next: s.from, cancel: fcancel, lastMove: time.Now()}
	go func() {
		defer fcancel()
		err := r.plan.ExecuteRange(fctx, r.local, s.from, s.to, func(tr query.TaskResult, wallMS float64) error {
			res := tr
			m := msg{kind: msgLine, fid: fid, line: TaskLine{Index: tr.Index, WallMS: wallMS, Result: &res}}
			select {
			case r.ch <- m:
				return nil
			case <-fctx.Done():
				return fctx.Err()
			}
		})
		r.post(msg{kind: msgEnd, fid: fid, err: err})
	}()
}

func (r *distRun) post(m msg) {
	select {
	case r.ch <- m:
	case <-r.ctx.Done():
	}
}

func (r *distRun) onLine(m msg) error {
	f := r.flights[m.fid]
	if f == nil {
		return nil // flight already retired
	}
	line := m.line
	if line.Error != "" {
		// A worker-reported task error is a deterministic compute failure:
		// re-running the same pure task elsewhere fails identically, so the
		// query aborts instead of burning retries.
		return errors.New(line.Error)
	}
	if line.Result == nil || line.Index != f.next || line.Index >= f.to {
		r.failFlight(f, fmt.Errorf("dist: worker %s broke stream order (got index %d, want %d)", f.worker, line.Index, f.next))
		return nil
	}
	f.next++
	f.lastMove = time.Now()
	if line.WallMS > 0 {
		if r.ewma == 0 {
			r.ewma = line.WallMS
		} else {
			r.ewma = 0.8*r.ewma + 0.2*line.WallMS
		}
	}
	i := line.Index
	if !r.have[i] {
		r.have[i] = true
		r.results[i] = *line.Result
		r.walls[i] = line.WallMS
		r.haveCount++
		if f.worker == "" {
			TasksLocalTotal.Inc()
		} else {
			TasksRemoteTotal.Inc()
			// Store accepted remote results under the query's content key;
			// local flights store through the plan's own view. Re-dispatched
			// or repeated queries then prefill instead of recomputing.
			if r.view != nil {
				if b, err := query.EncodeTaskResult(r.results[i]); err == nil {
					r.view.PutTask(i, b)
				}
			}
		}
		if err := r.drainYield(); err != nil {
			return err
		}
	}
	return nil
}

func (r *distRun) onEnd(m msg) error {
	f := r.flights[m.fid]
	if f == nil {
		return nil
	}
	if f.worker == "" {
		delete(r.flights, m.fid)
		if m.err != nil {
			if r.ctx.Err() != nil {
				return r.ctx.Err()
			}
			return m.err // deterministic local compute failure
		}
		return nil
	}
	err := m.err
	if err == nil && f.next < f.to {
		err = fmt.Errorf("dist: worker %s ended shard early at %d of [%d,%d)", f.worker, f.next, f.from, f.to)
	}
	if err == nil {
		delete(r.flights, m.fid)
		ws := r.workers[f.worker]
		ws.busy = false
		ws.consecFails = 0
		return nil
	}
	if r.ctx.Err() != nil {
		return r.ctx.Err()
	}
	r.failFlight(f, err)
	return nil
}

// failFlight retires a remote flight after a transport-level failure:
// counts it, applies the eviction policy, and requeues whatever the flight
// had not yet delivered for re-dispatch elsewhere.
func (r *distRun) failFlight(f *flight, err error) {
	delete(r.flights, f.id)
	f.cancel()
	ws := r.workers[f.worker]
	ws.busy = false
	WorkerFailuresTotal.Inc()
	r.c.opts.Logger.Warn("dist: shard failed", "worker", f.worker,
		"from", f.from, "to", f.to, "progress", f.next-f.from, "err", err)
	if f.next == f.from {
		// Zero progress: the worker is unreachable or dying — evict now.
		r.evict(f.worker)
	} else {
		ws.consecFails++
		if ws.consecFails >= 2 {
			r.evict(f.worker)
		}
	}
	r.requeueRemainder(f)
}

// requeueRemainder turns the undelivered part of a failed flight into
// pending spans. The stream was in range order, so everything before f.next
// arrived; of the rest, runs already covered by results or by other active
// flights (speculation) are skipped.
func (r *distRun) requeueRemainder(f *flight) {
	covered := func(i int) bool {
		for _, g := range r.flights {
			if i >= g.next && i < g.to {
				return true
			}
		}
		return false
	}
	attempts := f.attempts + 1
	notBefore := time.Now().Add(r.backoff(attempts))
	i := f.next
	for i < f.to {
		if r.have[i] || covered(i) {
			i++
			continue
		}
		j := i
		for j < f.to && !r.have[j] && !covered(j) {
			j++
		}
		r.pending = append(r.pending, span{from: i, to: j, attempts: attempts, notBefore: notBefore, lastWorker: f.worker})
		RedispatchTotal.Inc()
		i = j
	}
}

// backoff returns the jittered exponential delay before attempt k of a
// range: base·2^(k-1) capped at RetryCap, jittered into [d/2, d].
func (r *distRun) backoff(attempt int) time.Duration {
	d := r.c.opts.RetryBase
	for k := 1; k < attempt && d < r.c.opts.RetryCap; k++ {
		d *= 2
	}
	d = min(d, r.c.opts.RetryCap)
	return d/2 + time.Duration(r.rng.Int63n(int64(d/2)+1))
}

func (r *distRun) evict(worker string) {
	ws := r.workers[worker]
	if ws.evicted {
		return
	}
	ws.evicted = true
	WorkersReady.Add(-1)
	WorkersEvicted.Add(1)
	r.c.opts.Logger.Warn("dist: worker evicted", "worker", worker)
	r.reprobe(worker)
}

// reprobe runs the readmission loop for an evicted worker: probe every
// ReprobeAfter until the worker answers ready or the query ends.
func (r *distRun) reprobe(worker string) {
	go func() {
		for {
			select {
			case <-r.ctx.Done():
				return
			case <-time.After(r.c.opts.ReprobeAfter):
			}
			pctx, pcancel := probeCtx(r.ctx, r.c.opts.ProbeTimeout)
			err := r.c.opts.Transport.Ready(pctx, worker)
			pcancel()
			if err == nil {
				r.post(msg{kind: msgProbe, worker: worker})
				return
			}
		}
	}()
}

func (r *distRun) onProbe(m msg) {
	ws := r.workers[m.worker]
	if ws == nil || !ws.evicted {
		return
	}
	ws.evicted = false
	ws.consecFails = 0
	WorkersEvicted.Add(-1)
	WorkersReady.Add(1)
	r.c.opts.Logger.Info("dist: worker readmitted", "worker", m.worker)
}

// checkStragglers speculatively duplicates shards that have stalled for
// longer than the straggler threshold derived from observed per-task wall
// times. The duplicate races the original; index-level deduplication keeps
// the merged bytes identical either way.
func (r *distRun) checkStragglers() {
	threshold := time.Duration(r.c.opts.StragglerFactor * r.ewma * float64(time.Millisecond))
	threshold = max(threshold, r.c.opts.StragglerMin)
	now := time.Now()
	for _, f := range r.flights {
		if f.worker == "" || f.speculated || now.Sub(f.lastMove) <= threshold {
			continue
		}
		s := r.trim(span{from: f.next, to: f.to, lastWorker: f.worker, attempts: f.attempts})
		if s.from >= s.to {
			continue
		}
		w := r.pickWorker(f.worker)
		if w == "" || w == f.worker {
			continue
		}
		f.speculated = true
		StragglerRedispatchTotal.Inc()
		r.c.opts.Logger.Info("dist: speculating straggler shard", "worker", f.worker,
			"spare", w, "from", s.from, "to", s.to)
		r.launchRemote(w, s, true)
	}
}
