// Package dist is the fault-tolerant distribution layer over the compiled
// query plans of internal/query: a Coordinator shards one Plan across a
// fleet of wsn-serve workers and merges the returned shards into one
// ResultSet byte-identical to a single-machine Run.
//
// Everything rests on properties the rest of the repository already
// guarantees: a compiled Plan's tasks are pure functions of (query, index)
// — seeds derive from (root, index), the contention cache is a pure memo —
// and ResultSet encoding is byte-stable. Any shard is therefore
// recomputable on any machine at any time, which is what makes the
// robustness story simple: on worker timeout, error, disconnect or death
// the coordinator just re-dispatches the missing index range elsewhere
// (with exponential backoff and jitter), speculatively duplicates
// stragglers keyed off the per-task wall times each worker reports, and —
// when the whole fleet is gone — degrades gracefully to local execution.
// The merged bytes are identical in every case.
//
// Workers expose POST /v2/tasks (served by internal/service): the body is a
// TaskRequest naming the full query plus a task index range, the response
// is NDJSON — one TaskLine per task in range order, then a terminal done
// line. Streaming in range order is load-bearing: a shard that dies after k
// lines has completed exactly its first k tasks, so only [from+k, to) is
// re-dispatched.
//
// The Transport interface carries shards to workers; HTTPTransport is the
// production implementation and FaultTransport the injectable harness that
// can delay, error, drop a stream mid-shard, or kill a worker at a chosen
// task index — the integration tests drive every failure through it and
// assert merged bytes == local bytes.
package dist

import "dense802154/internal/query"

// TaskRequest is the body of POST /v2/tasks: compute tasks [From,To) of the
// plan compiled from Query. The receiving worker validates the range
// against its own compilation of the query, so a coordinator/worker version
// skew that changes plan shape fails loudly instead of merging garbage.
type TaskRequest struct {
	Query query.Query `json:"query"`
	From  int         `json:"from"`
	To    int         `json:"to"`
	// Workers is the parallelism the shard asks for on the worker (0 ⇒
	// the worker's own default); the worker clamps it to its token budget.
	// Results never depend on it.
	Workers int `json:"workers,omitempty"`
}

// TaskLine is one NDJSON record of a /v2/tasks response stream. Exactly one
// of three shapes appears on a line:
//
//   - a task line: Result set, Index echoing its plan index, WallMS the
//     worker-measured wall time (the straggler-detection signal);
//   - the terminal success line: Done true with Count tasks served;
//   - a terminal error line: Error set (a deterministic compute failure —
//     retrying elsewhere would fail identically, so the coordinator aborts
//     the query instead of re-dispatching).
type TaskLine struct {
	Index  int               `json:"index,omitempty"`
	WallMS float64           `json:"wall_ms,omitempty"`
	Result *query.TaskResult `json:"result,omitempty"`
	Done   bool              `json:"done,omitempty"`
	Count  int               `json:"count,omitempty"`
	Error  string            `json:"error,omitempty"`
}
