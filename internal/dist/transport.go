package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// LineStream is one shard's response stream: Next returns TaskLines in
// range order and io.EOF after the terminal line (or a transport error if
// the stream dies mid-shard). Close releases the underlying connection.
type LineStream interface {
	Next() (TaskLine, error)
	Close() error
}

// Transport carries shards to workers. It is the coordinator's only view of
// the fleet, which is what makes fault injection complete: wrapping a
// Transport can simulate every failure mode a real network exhibits.
type Transport interface {
	// Send posts req to the worker's /v2/tasks endpoint and returns the
	// line stream. A non-nil error means the shard never started there.
	Send(ctx context.Context, worker string, req TaskRequest) (LineStream, error)
	// Ready probes the worker's readiness endpoint (admission/eviction).
	Ready(ctx context.Context, worker string) error
}

// HTTPTransport is the production Transport: JSON over HTTP against the
// /v2/tasks and /readyz routes of each worker's base URL.
type HTTPTransport struct {
	// Client issues the requests (nil ⇒ a dedicated client with no global
	// timeout; per-shard deadlines come from the Send context).
	Client *http.Client
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

// Send implements Transport.
func (t *HTTPTransport) Send(ctx context.Context, worker string, req TaskRequest) (LineStream, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+"/v2/tasks", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	resp, err := t.client().Do(hr)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		return nil, fmt.Errorf("dist: worker %s answered %d: %s", worker, resp.StatusCode, bytes.TrimSpace(msg))
	}
	return &jsonLineStream{body: resp.Body, dec: json.NewDecoder(resp.Body)}, nil
}

// Ready implements Transport.
func (t *HTTPTransport) Ready(ctx context.Context, worker string) error {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, worker+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := t.client().Do(hr)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dist: worker %s not ready (%d)", worker, resp.StatusCode)
	}
	return nil
}

// jsonLineStream decodes NDJSON TaskLines off a response body.
type jsonLineStream struct {
	body io.ReadCloser
	dec  *json.Decoder
}

func (s *jsonLineStream) Next() (TaskLine, error) {
	var line TaskLine
	if err := s.dec.Decode(&line); err != nil {
		return TaskLine{}, err
	}
	return line, nil
}

func (s *jsonLineStream) Close() error { return s.body.Close() }

// probeCtx derives a bounded context for one readiness probe.
func probeCtx(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		d = 2 * time.Second
	}
	return context.WithTimeout(ctx, d)
}
