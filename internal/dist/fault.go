package dist

import (
	"context"
	"errors"
	"io"
	"sync"
	"time"
)

// FaultKind selects what an injected fault does when it fires.
type FaultKind int

const (
	// FaultDelay stalls the stream before the triggering line is
	// delivered (a straggling worker).
	FaultDelay FaultKind = iota
	// FaultError fails the dispatch or stream with a transport error (a
	// worker that answers 500s or resets connections).
	FaultError
	// FaultDrop severs the stream mid-shard with an unexpected EOF (a
	// worker whose connection dies after some lines were delivered).
	FaultDrop
	// FaultKill marks the worker dead: the triggering dispatch/line fails
	// and every later Send and Ready against that worker fails too, until
	// Revive (a worker process that crashed).
	FaultKill
)

// ErrInjected is the transport error injected faults surface.
var ErrInjected = errors.New("dist: injected fault")

// Fault is one scripted failure of the injection harness.
type Fault struct {
	// Worker targets one worker base URL ("" afflicts any worker).
	Worker string
	// AtIndex fires the fault when the stream reaches this task index;
	// -1 fires at dispatch, before any line is delivered.
	AtIndex int
	// Kind selects the failure mode.
	Kind FaultKind
	// Delay is the stall duration of a FaultDelay.
	Delay time.Duration
	// Times bounds how often the fault fires (0 means once).
	Times int
}

// FaultTransport wraps a Transport with scripted fault injection: delays,
// transport errors, mid-stream drops and worker death at chosen task
// indices. It is safe for concurrent use and is how the integration tests
// prove merged bytes == local bytes under every failure mode.
type FaultTransport struct {
	Inner Transport

	mu     sync.Mutex
	faults []*faultState
	dead   map[string]bool
}

type faultState struct {
	Fault
	fired int
}

// NewFaultTransport wraps inner with the given fault script.
func NewFaultTransport(inner Transport, faults ...Fault) *FaultTransport {
	ft := &FaultTransport{Inner: inner, dead: map[string]bool{}}
	for _, f := range faults {
		ft.faults = append(ft.faults, &faultState{Fault: f})
	}
	return ft
}

// Inject appends a fault to the script at runtime.
func (ft *FaultTransport) Inject(f Fault) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.faults = append(ft.faults, &faultState{Fault: f})
}

// Revive clears a killed worker so later dispatches reach it again.
func (ft *FaultTransport) Revive(worker string) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	delete(ft.dead, worker)
}

// match claims a firing of the first pending fault for (worker, index) and
// returns it, or nil. The claim is made under the lock so concurrent
// streams cannot double-fire a bounded fault.
func (ft *FaultTransport) match(worker string, index int) *faultState {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	for _, f := range ft.faults {
		times := f.Times
		if times == 0 {
			times = 1
		}
		if f.fired >= times {
			continue
		}
		if f.Worker != "" && f.Worker != worker {
			continue
		}
		if f.AtIndex != index {
			continue
		}
		f.fired++
		if f.Kind == FaultKill {
			ft.dead[worker] = true
		}
		return f
	}
	return nil
}

func (ft *FaultTransport) isDead(worker string) bool {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.dead[worker]
}

// Send implements Transport with dispatch-time faults (AtIndex == -1)
// applied before the shard starts and stream-time faults applied by the
// wrapping LineStream as lines pass through.
func (ft *FaultTransport) Send(ctx context.Context, worker string, req TaskRequest) (LineStream, error) {
	if ft.isDead(worker) {
		return nil, ErrInjected
	}
	if f := ft.match(worker, -1); f != nil {
		switch f.Kind {
		case FaultDelay:
			select {
			case <-time.After(f.Delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		default:
			return nil, ErrInjected
		}
	}
	inner, err := ft.Inner.Send(ctx, worker, req)
	if err != nil {
		return nil, err
	}
	return &faultStream{ft: ft, worker: worker, inner: inner, ctx: ctx}, nil
}

// Ready implements Transport; killed workers probe as down.
func (ft *FaultTransport) Ready(ctx context.Context, worker string) error {
	if ft.isDead(worker) {
		return ErrInjected
	}
	return ft.Inner.Ready(ctx, worker)
}

// faultStream applies stream-time faults keyed on the task index of each
// line about to be delivered.
type faultStream struct {
	ft     *FaultTransport
	worker string
	inner  LineStream
	ctx    context.Context
}

func (s *faultStream) Next() (TaskLine, error) {
	if s.ft.isDead(s.worker) {
		return TaskLine{}, ErrInjected
	}
	line, err := s.inner.Next()
	if err != nil {
		return TaskLine{}, err
	}
	if line.Result != nil {
		if f := s.ft.match(s.worker, line.Index); f != nil {
			switch f.Kind {
			case FaultDelay:
				select {
				case <-time.After(f.Delay):
				case <-s.ctx.Done():
					return TaskLine{}, s.ctx.Err()
				}
			case FaultDrop:
				return TaskLine{}, io.ErrUnexpectedEOF
			default: // FaultError, FaultKill
				return TaskLine{}, ErrInjected
			}
		}
	}
	return line, nil
}

func (s *faultStream) Close() error { return s.inner.Close() }
