package radio

import (
	"math"
	"testing"
	"time"

	"dense802154/internal/units"
)

func almost(a, b units.Energy, tol float64) bool {
	return math.Abs(float64(a-b)) <= tol*math.Max(math.Abs(float64(a)), math.Abs(float64(b)))
}

func TestCC2420SteadyPowers(t *testing.T) {
	c := CC2420()
	// Fig. 3: 80 nA, 396 µA, 19.6 mA at 1.8 V.
	if got := c.ShutdownPower.NanoWatts(); math.Abs(got-144) > 0.01 {
		t.Errorf("shutdown = %v nW, want 144", got)
	}
	if got := c.IdlePower.MicroWatts(); math.Abs(got-712.8) > 0.01 {
		t.Errorf("idle = %v µW, want 712.8", got)
	}
	if got := c.RXPower.MilliWatts(); math.Abs(got-35.28) > 0.001 {
		t.Errorf("rx = %v mW, want 35.28", got)
	}
	if c.ListenPower != c.RXPower {
		t.Error("stock radio listen power must equal RX power")
	}
}

func TestCC2420TXLevels(t *testing.T) {
	c := CC2420()
	if len(c.TXLevels) != 8 {
		t.Fatalf("TX levels = %d, want 8", len(c.TXLevels))
	}
	// Fig. 3 extremes: -25 dBm at 8.42 mA, 0 dBm at 17.04 mA.
	if c.TXLevels[0].DBm != -25 || c.TXLevels[7].DBm != 0 {
		t.Fatalf("level range: %v..%v", c.TXLevels[0].DBm, c.TXLevels[7].DBm)
	}
	if got := c.TXPowerAt(7).MilliWatts(); math.Abs(got-30.672) > 0.001 {
		t.Errorf("TX@0dBm = %v mW, want 30.672", got)
	}
	if got := c.TXPowerAt(0).MilliWatts(); math.Abs(got-15.156) > 0.001 {
		t.Errorf("TX@-25dBm = %v mW, want 15.156", got)
	}
	// Ascending in both dBm and current.
	for i := 1; i < len(c.TXLevels); i++ {
		if c.TXLevels[i].DBm <= c.TXLevels[i-1].DBm {
			t.Error("levels not ascending in dBm")
		}
		if c.TXLevels[i].CurrentA <= c.TXLevels[i-1].CurrentA {
			t.Error("levels not ascending in current")
		}
	}
}

func TestTransitionTable(t *testing.T) {
	c := CC2420()
	tr, ok := c.Transition(Shutdown, Idle)
	if !ok {
		t.Fatal("shutdown->idle must be allowed")
	}
	if tr.Duration != 970*time.Microsecond {
		t.Errorf("shutdown->idle duration = %v, want 970µs", tr.Duration)
	}
	// 970µs at 712.8µW = 691nJ (the paper's "691pJ" typo corrected).
	if !almost(tr.Energy, 691.4*units.NanoJoule, 0.01) {
		t.Errorf("shutdown->idle energy = %v, want ≈691nJ", tr.Energy)
	}
	tr, ok = c.Transition(Idle, RX)
	if !ok || tr.Duration != 194*time.Microsecond {
		t.Errorf("idle->rx = (%v,%v)", tr, ok)
	}
	// 194µs at 35.28mW = 6.84µJ (paper prints 6.63µJ from measurement).
	if !almost(tr.Energy, 6.84*units.MicroJoule, 0.01) {
		t.Errorf("idle->rx energy = %v, want ≈6.84µJ", tr.Energy)
	}
	// Worst-case rule: idle->TX charged at max TX level power.
	tr, _ = c.Transition(Idle, TX)
	if !almost(tr.Energy, units.Energy(30.672e-3*194e-6), 0.01) {
		t.Errorf("idle->tx energy = %v", tr.Energy)
	}
	// Shutdown->RX requires passing through idle: not direct.
	if _, ok := c.Transition(Shutdown, RX); ok {
		t.Error("shutdown->rx must not be direct")
	}
	if _, ok := c.Transition(Shutdown, TX); ok {
		t.Error("shutdown->tx must not be direct")
	}
	// Turnaround.
	tr, ok = c.Transition(RX, TX)
	if !ok || tr.Duration != 192*time.Microsecond {
		t.Errorf("rx->tx turnaround = (%v,%v)", tr, ok)
	}
	// Falling back to idle is free.
	tr, ok = c.Transition(RX, Idle)
	if !ok || tr.Duration != 0 || tr.Energy != 0 {
		t.Errorf("rx->idle = (%v,%v)", tr, ok)
	}
	// Out-of-range states.
	if _, ok := c.Transition(State(-1), Idle); ok {
		t.Error("negative state")
	}
	if _, ok := c.Transition(Idle, State(9)); ok {
		t.Error("overflow state")
	}
}

func TestLevelIndexFor(t *testing.T) {
	c := CC2420()
	cases := []struct {
		dbm  float64
		want int
		ok   bool
	}{
		{-30, 0, true}, // below the weakest: weakest suffices
		{-25, 0, true}, // exact
		{-20, 1, true}, // between -25 and -15
		{-15, 1, true}, // exact
		{-4, 5, true},  // between -5 and -3
		{0, 7, true},   // exact max
		{3, 7, false},  // beyond max: clamped, not ok
	}
	for _, cse := range cases {
		got, ok := c.LevelIndexFor(cse.dbm)
		if got != cse.want || ok != cse.ok {
			t.Errorf("LevelIndexFor(%v) = (%d,%v), want (%d,%v)", cse.dbm, got, ok, cse.want, cse.ok)
		}
	}
}

func TestStatePowerClamping(t *testing.T) {
	c := CC2420()
	if c.StatePower(TX, -5) != c.TXPowerAt(0) {
		t.Error("negative level index must clamp to 0")
	}
	if c.StatePower(TX, 99) != c.TXPowerAt(7) {
		t.Error("overflow level index must clamp to max")
	}
	if c.StatePower(State(42), 0) != 0 {
		t.Error("unknown state power must be 0")
	}
}

func TestWithTransitionScale(t *testing.T) {
	c := CC2420()
	fast := c.WithTransitionScale(0.5)
	orig, _ := c.Transition(Idle, RX)
	scaled, ok := fast.Transition(Idle, RX)
	if !ok {
		t.Fatal("scaled radio lost a transition")
	}
	if scaled.Duration != orig.Duration/2 {
		t.Errorf("scaled duration = %v, want %v", scaled.Duration, orig.Duration/2)
	}
	if !almost(scaled.Energy, orig.Energy/2, 1e-9) {
		t.Errorf("scaled energy = %v, want %v", scaled.Energy, orig.Energy/2)
	}
	// The original must be untouched.
	after, _ := c.Transition(Idle, RX)
	if after != orig {
		t.Error("WithTransitionScale mutated the receiver")
	}
	// Steady powers unchanged.
	if fast.RXPower != c.RXPower || fast.IdlePower != c.IdlePower {
		t.Error("steady powers must not change")
	}
}

func TestWithScalableReceiver(t *testing.T) {
	c := CC2420()
	sc := c.WithScalableReceiver(0.4)
	want := units.Power(float64(c.RXPower) * 0.4)
	if math.Abs(float64(sc.ListenPower-want)) > 1e-15 {
		t.Errorf("listen power = %v, want %v", sc.ListenPower, want)
	}
	if sc.RXPower != c.RXPower {
		t.Error("full RX power must not change")
	}
	if c.ListenPower != c.RXPower {
		t.Error("original mutated")
	}
}

func TestStateStrings(t *testing.T) {
	if Shutdown.String() != "shutdown" || Idle.String() != "idle" ||
		RX.String() != "rx" || TX.String() != "tx" {
		t.Fatal("state strings")
	}
	if State(9).String() == "" {
		t.Fatal("unknown state string must be non-empty")
	}
}
