package radio

import (
	"fmt"
	"time"

	"dense802154/internal/units"
)

// Phase tags energy with the protocol activity that caused it, matching the
// breakdown categories of the paper's Fig. 9a.
type Phase int

// Protocol phases.
const (
	PhaseSleep      Phase = iota // shutdown between superframes
	PhaseBeacon                  // beacon tracking (wake-up lead + reception)
	PhaseContention              // CSMA backoff and clear channel assessment
	PhaseTransmit                // packet transmission
	PhaseAck                     // acknowledgment wait and reception
	PhaseIFS                     // inter-frame spacing
	PhaseOther
	numPhases
)

// NumPhases is the number of accounting phases.
const NumPhases = int(numPhases)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseSleep:
		return "sleep"
	case PhaseBeacon:
		return "beacon"
	case PhaseContention:
		return "contention"
	case PhaseTransmit:
		return "transmit"
	case PhaseAck:
		return "ack"
	case PhaseIFS:
		return "ifs"
	case PhaseOther:
		return "other"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Ledger accumulates time and energy by radio state and energy by protocol
// phase.
type Ledger struct {
	TimeIn   [NumStates]time.Duration
	EnergyIn [NumStates]units.Energy
	ByPhase  [NumPhases]units.Energy
	// Transitions counts state changes; TransitionTime and
	// TransitionEnergy accumulate their cost (already included in the
	// per-state and per-phase tallies of the arrival state).
	Transitions      int
	TransitionTime   time.Duration
	TransitionEnergy units.Energy
}

// TotalEnergy reports the ledger's total energy.
func (l *Ledger) TotalEnergy() units.Energy {
	var e units.Energy
	for _, v := range l.EnergyIn {
		e += v
	}
	return e
}

// TotalTime reports the total accounted time.
func (l *Ledger) TotalTime() time.Duration {
	var d time.Duration
	for _, v := range l.TimeIn {
		d += v
	}
	return d
}

// AveragePower reports total energy over total time.
func (l *Ledger) AveragePower() units.Power {
	return l.TotalEnergy().Over(l.TotalTime())
}

// Merge adds another ledger into this one.
func (l *Ledger) Merge(o *Ledger) {
	for i := range l.TimeIn {
		l.TimeIn[i] += o.TimeIn[i]
		l.EnergyIn[i] += o.EnergyIn[i]
	}
	for i := range l.ByPhase {
		l.ByPhase[i] += o.ByPhase[i]
	}
	l.Transitions += o.Transitions
	l.TransitionTime += o.TransitionTime
	l.TransitionEnergy += o.TransitionEnergy
}

// Device is a stateful radio with energy accounting, used by the network
// simulator. It is not safe for concurrent use; the discrete-event kernel
// is single-threaded by design.
type Device struct {
	char       *Characterization
	state      State
	levelIndex int
	phase      Phase
	lowPower   bool // low-power listen engaged (scalable receiver)
	ledger     Ledger
}

// NewDevice builds a device in the given initial state at the maximum TX
// level.
func NewDevice(c *Characterization, initial State) *Device {
	d := &Device{}
	d.Init(c, initial)
	return d
}

// Init (re)initializes the device in place to the state NewDevice would
// build: the given characterization and initial state, maximum TX level, a
// zeroed ledger, sleep-phase accounting and low-power listen off. It lets
// value-embedded devices (the network simulator's pooled run state) be
// recycled across runs without allocating.
func (d *Device) Init(c *Characterization, initial State) {
	*d = Device{char: c, state: initial, levelIndex: c.MaxTXLevel()}
}

// State reports the current radio state.
func (d *Device) State() State { return d.state }

// Char exposes the underlying characterization.
func (d *Device) Char() *Characterization { return d.char }

// Ledger exposes the accumulated accounting.
func (d *Device) Ledger() *Ledger { return &d.ledger }

// SetPhase selects the protocol phase subsequent energy is attributed to.
func (d *Device) SetPhase(p Phase) { d.phase = p }

// Phase reports the current accounting phase.
func (d *Device) Phase() Phase { return d.phase }

// SetTXLevelIndex programs the transmit power step.
func (d *Device) SetTXLevelIndex(i int) {
	if i < 0 {
		i = 0
	}
	if i > d.char.MaxTXLevel() {
		i = d.char.MaxTXLevel()
	}
	d.levelIndex = i
}

// TXLevelIndex reports the programmed transmit power step.
func (d *Device) TXLevelIndex() int { return d.levelIndex }

// SetLowPowerListen engages the scalable receiver's listen mode: while in
// RX the device draws ListenPower instead of RXPower.
func (d *Device) SetLowPowerListen(on bool) { d.lowPower = on }

// currentPower reports the instantaneous power draw.
func (d *Device) currentPower() units.Power {
	if d.state == RX && d.lowPower {
		return d.char.ListenPower
	}
	return d.char.StatePower(d.state, d.levelIndex)
}

// Stay accrues d time in the current state.
func (d *Device) Stay(dt time.Duration) {
	if dt < 0 {
		panic("radio: negative dwell time")
	}
	e := d.currentPower().Times(dt)
	d.ledger.TimeIn[d.state] += dt
	d.ledger.EnergyIn[d.state] += e
	d.ledger.ByPhase[d.phase] += e
}

// TransitionTo changes state, charging the transition's time and energy to
// the arrival state (the paper's worst-case accounting). It returns the
// transition duration so callers can advance simulated time accordingly.
// Transitioning to the current state is a no-op. It panics on transitions
// the state machine does not allow.
func (d *Device) TransitionTo(s State) time.Duration {
	if s == d.state {
		return 0
	}
	tr, ok := d.char.Transition(d.state, s)
	if !ok {
		panic(fmt.Sprintf("radio: illegal transition %v -> %v", d.state, s))
	}
	d.state = s
	d.ledger.Transitions++
	d.ledger.TransitionTime += tr.Duration
	d.ledger.TransitionEnergy += tr.Energy
	d.ledger.TimeIn[s] += tr.Duration
	d.ledger.EnergyIn[s] += tr.Energy
	d.ledger.ByPhase[d.phase] += tr.Energy
	return tr.Duration
}

// PathTo reports the states a device must pass through to reach target from
// the current state, excluding the current state itself. The CC2420 cannot
// go directly from shutdown to RX/TX or between RX and TX without the idle
// or turnaround edges; this helper picks the canonical route.
func (d *Device) PathTo(target State) []State {
	if d.state == target {
		return nil
	}
	if _, ok := d.char.Transition(d.state, target); ok {
		return []State{target}
	}
	// All indirect routes in the Fig. 3 machine pass through idle.
	return []State{Idle, target}
}

// GoTo drives the device through PathTo(target) and returns the cumulative
// transition time.
func (d *Device) GoTo(target State) time.Duration {
	var total time.Duration
	for _, s := range d.PathTo(target) {
		total += d.TransitionTo(s)
	}
	return total
}
