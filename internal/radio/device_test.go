package radio

import (
	"math"
	"testing"
	"time"

	"dense802154/internal/units"
)

func TestDeviceStayAccrues(t *testing.T) {
	d := NewDevice(CC2420(), Idle)
	d.SetPhase(PhaseContention)
	d.Stay(time.Millisecond)
	l := d.Ledger()
	if l.TimeIn[Idle] != time.Millisecond {
		t.Fatalf("idle time = %v", l.TimeIn[Idle])
	}
	wantE := CC2420().IdlePower.Times(time.Millisecond)
	if math.Abs(float64(l.EnergyIn[Idle]-wantE)) > 1e-15 {
		t.Fatalf("idle energy = %v, want %v", l.EnergyIn[Idle], wantE)
	}
	if math.Abs(float64(l.ByPhase[PhaseContention]-wantE)) > 1e-15 {
		t.Fatalf("phase energy = %v", l.ByPhase[PhaseContention])
	}
}

func TestDeviceTransitionAccounting(t *testing.T) {
	c := CC2420()
	d := NewDevice(c, Shutdown)
	d.SetPhase(PhaseBeacon)
	dt := d.TransitionTo(Idle)
	if dt != 970*time.Microsecond {
		t.Fatalf("transition time = %v", dt)
	}
	if d.State() != Idle {
		t.Fatal("state not updated")
	}
	l := d.Ledger()
	if l.Transitions != 1 {
		t.Fatal("transition count")
	}
	tr, _ := c.Transition(Shutdown, Idle)
	if l.EnergyIn[Idle] != tr.Energy {
		t.Fatalf("arrival energy = %v, want %v", l.EnergyIn[Idle], tr.Energy)
	}
	if l.TimeIn[Idle] != tr.Duration {
		t.Fatal("arrival time")
	}
	if l.ByPhase[PhaseBeacon] != tr.Energy {
		t.Fatal("phase attribution")
	}
}

func TestDeviceSelfTransitionNoop(t *testing.T) {
	d := NewDevice(CC2420(), Idle)
	if dt := d.TransitionTo(Idle); dt != 0 {
		t.Fatal("self transition must be free")
	}
	if d.Ledger().Transitions != 0 {
		t.Fatal("self transition must not count")
	}
}

func TestDeviceIllegalTransitionPanics(t *testing.T) {
	d := NewDevice(CC2420(), Shutdown)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on illegal direct transition")
		}
	}()
	d.TransitionTo(RX)
}

func TestDeviceNegativeStayPanics(t *testing.T) {
	d := NewDevice(CC2420(), Idle)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative dwell")
		}
	}()
	d.Stay(-time.Second)
}

func TestPathToAndGoTo(t *testing.T) {
	d := NewDevice(CC2420(), Shutdown)
	path := d.PathTo(RX)
	if len(path) != 2 || path[0] != Idle || path[1] != RX {
		t.Fatalf("PathTo(RX) = %v", path)
	}
	total := d.GoTo(RX)
	if total != 970*time.Microsecond+194*time.Microsecond {
		t.Fatalf("GoTo(RX) = %v", total)
	}
	if d.State() != RX {
		t.Fatal("state after GoTo")
	}
	if d.GoTo(RX) != 0 {
		t.Fatal("GoTo current state must be free")
	}
	// RX->TX is direct (turnaround).
	d2 := NewDevice(CC2420(), RX)
	if p := d2.PathTo(TX); len(p) != 1 || p[0] != TX {
		t.Fatalf("PathTo(TX) from RX = %v", p)
	}
}

func TestDeviceTXLevelPower(t *testing.T) {
	c := CC2420()
	d := NewDevice(c, TX)
	d.SetTXLevelIndex(0) // -25 dBm
	d.Stay(time.Millisecond)
	e0 := d.Ledger().EnergyIn[TX]
	want := c.TXPowerAt(0).Times(time.Millisecond)
	if math.Abs(float64(e0-want)) > 1e-15 {
		t.Fatalf("TX energy at level 0 = %v, want %v", e0, want)
	}
	d.SetTXLevelIndex(7)
	d.Stay(time.Millisecond)
	e1 := d.Ledger().EnergyIn[TX] - e0
	if e1 <= e0 {
		t.Fatal("higher level must draw more energy")
	}
	// Clamping.
	d.SetTXLevelIndex(-3)
	if d.TXLevelIndex() != 0 {
		t.Fatal("negative index clamp")
	}
	d.SetTXLevelIndex(50)
	if d.TXLevelIndex() != 7 {
		t.Fatal("overflow index clamp")
	}
}

func TestDeviceLowPowerListen(t *testing.T) {
	c := CC2420().WithScalableReceiver(0.5)
	d := NewDevice(c, RX)
	d.SetLowPowerListen(true)
	d.Stay(time.Millisecond)
	lp := d.Ledger().EnergyIn[RX]
	want := c.ListenPower.Times(time.Millisecond)
	if math.Abs(float64(lp-want)) > 1e-15 {
		t.Fatalf("listen energy = %v, want %v", lp, want)
	}
	d.SetLowPowerListen(false)
	d.Stay(time.Millisecond)
	full := d.Ledger().EnergyIn[RX] - lp
	if math.Abs(float64(full-c.RXPower.Times(time.Millisecond))) > 1e-15 {
		t.Fatal("full RX power after disengaging listen mode")
	}
}

func TestLedgerTotalsAndMerge(t *testing.T) {
	d1 := NewDevice(CC2420(), Idle)
	d1.Stay(time.Second)
	d2 := NewDevice(CC2420(), RX)
	d2.SetPhase(PhaseAck)
	d2.Stay(time.Second)

	var sum Ledger
	sum.Merge(d1.Ledger())
	sum.Merge(d2.Ledger())
	if sum.TotalTime() != 2*time.Second {
		t.Fatalf("total time = %v", sum.TotalTime())
	}
	wantE := CC2420().IdlePower.Times(time.Second) + CC2420().RXPower.Times(time.Second)
	if math.Abs(float64(sum.TotalEnergy()-wantE))/float64(wantE) > 1e-12 {
		t.Fatalf("total energy = %v, want %v", sum.TotalEnergy(), wantE)
	}
	avg := sum.AveragePower()
	if math.Abs(float64(avg-wantE.Over(2*time.Second)))/float64(avg) > 1e-12 {
		t.Fatalf("average power = %v", avg)
	}
	if sum.ByPhase[PhaseAck] == 0 {
		t.Fatal("phase lost in merge")
	}
}

func TestPhaseStrings(t *testing.T) {
	phases := []Phase{PhaseSleep, PhaseBeacon, PhaseContention, PhaseTransmit, PhaseAck, PhaseIFS, PhaseOther, Phase(99)}
	for _, p := range phases {
		if p.String() == "" {
			t.Fatalf("empty string for phase %d", int(p))
		}
	}
}

func TestEnergyTimeConsistency(t *testing.T) {
	// A full emulated transaction: wake, beacon RX, idle, CCA, TX, ack RX,
	// shutdown. Energy must equal the sum of state powers times dwell
	// times plus transition energies.
	c := CC2420()
	d := NewDevice(c, Shutdown)
	d.SetPhase(PhaseSleep)
	d.Stay(100 * time.Millisecond)
	d.SetPhase(PhaseBeacon)
	d.GoTo(RX)
	d.Stay(960 * time.Microsecond)
	d.SetPhase(PhaseContention)
	d.TransitionTo(Idle)
	d.Stay(2 * time.Millisecond)
	d.TransitionTo(RX)
	d.Stay(128 * time.Microsecond)
	d.SetPhase(PhaseTransmit)
	d.TransitionTo(TX)
	d.Stay(4256 * time.Microsecond)
	d.SetPhase(PhaseAck)
	d.TransitionTo(RX)
	d.Stay(352 * time.Microsecond)
	d.SetPhase(PhaseSleep)
	d.TransitionTo(Idle)
	d.TransitionTo(Shutdown)

	l := d.Ledger()
	var phaseSum units.Energy
	for _, e := range l.ByPhase {
		phaseSum += e
	}
	if math.Abs(float64(phaseSum-l.TotalEnergy()))/float64(l.TotalEnergy()) > 1e-12 {
		t.Fatalf("phase energies %v != state energies %v", phaseSum, l.TotalEnergy())
	}
	// shutdown→idle→rx (wake) + rx→idle + idle→rx + rx→tx + tx→rx +
	// rx→idle + idle→shutdown = 8 state changes.
	if l.Transitions != 8 {
		t.Fatalf("transitions = %d, want 8", l.Transitions)
	}
}

func TestDeviceInitResetsInPlace(t *testing.T) {
	// Init must restore a used device to NewDevice's state without
	// allocating — the network simulator recycles value-embedded devices
	// across pooled runs.
	c := CC2420()
	var d Device
	d.Init(c, Shutdown)
	d.SetPhase(PhaseContention)
	d.SetLowPowerListen(true)
	d.SetTXLevelIndex(2)
	d.TransitionTo(Idle)
	d.Stay(time.Millisecond)
	if d.Ledger().TotalEnergy() == 0 {
		t.Fatal("expected accrued energy before reinit")
	}

	d.Init(c, Shutdown)
	fresh := NewDevice(c, Shutdown)
	if d != *fresh {
		t.Fatalf("Init left state behind:\n%+v\nwant\n%+v", d, *fresh)
	}
	if allocs := testing.AllocsPerRun(10, func() { d.Init(c, Shutdown) }); allocs > 0 {
		t.Fatalf("Init allocated %v per call, want 0", allocs)
	}
}
