// Package radio models the sensor-node transceiver energy behaviour: the
// four-state machine of the paper's Fig. 3 (shutdown, idle, receive,
// transmit), the measured CC2420 steady-state powers and state-transition
// times/energies, the eight programmable transmit power levels, and an
// energy ledger that attributes consumption to radio states and protocol
// phases.
//
// Derived characterizations implement the paper's §5 improvement
// perspectives: uniformly faster state transitions and a scalable receiver
// with a low-power listen mode for CCA and acknowledgment waiting.
package radio

import (
	"fmt"
	"sort"
	"time"

	"dense802154/internal/units"
)

// State is a radio operating state.
type State int

// The CC2420 state machine of Fig. 3.
const (
	Shutdown State = iota // crystal off, waiting for a startup strobe
	Idle                  // clock running, command interface alive
	RX                    // receiver active
	TX                    // transmitter active
	numStates
)

// NumStates is the number of radio states.
const NumStates = int(numStates)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Shutdown:
		return "shutdown"
	case Idle:
		return "idle"
	case RX:
		return "rx"
	case TX:
		return "tx"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// TXLevel is one programmable transmit power step.
type TXLevel struct {
	DBm      float64 // RF output power
	CurrentA float64 // measured supply current at this level
}

// Transition is a state change with its measured duration and the energy it
// costs. Following the paper's worst-case rule the energy is the duration
// multiplied by the power of the arrival state.
type Transition struct {
	Duration time.Duration
	Energy   units.Energy
}

// Characterization is a transceiver energy datasheet.
type Characterization struct {
	Name string
	// VDD is the supply voltage all currents are referred to.
	VDD float64
	// Steady-state powers.
	ShutdownPower units.Power
	IdlePower     units.Power
	RXPower       units.Power
	// ListenPower is the receiver power used while performing clear
	// channel assessments and waiting for acknowledgments. It equals
	// RXPower for the stock radio; the scalable-receiver variant lowers
	// it (§5 improvement perspective).
	ListenPower units.Power
	// TXLevels are the programmable output steps, ascending in dBm.
	TXLevels []TXLevel

	transitions [NumStates][NumStates]Transition
	allowed     [NumStates][NumStates]bool
}

// CC2420 returns the characterization measured in the paper's Fig. 3 on the
// Chipcon CC2420EM/EB evaluation board at VDD = 1.8 V.
//
// Note: Fig. 3 prints the shutdown→idle transition energy as "691 pJ";
// 970 µs at the 712.8 µW idle power is 691 nJ, so the printed unit is taken
// as a typo and the nanojoule value (consistent with the figure's own
// energy rule) is used.
func CC2420() *Characterization {
	const vdd = 1.8
	c := &Characterization{
		Name:          "CC2420",
		VDD:           vdd,
		ShutdownPower: units.FromCurrent(80e-9, vdd),   // 144 nW
		IdlePower:     units.FromCurrent(396e-6, vdd),  // 712.8 µW
		RXPower:       units.FromCurrent(19.6e-3, vdd), // 35.28 mW
		TXLevels: []TXLevel{
			{DBm: -25, CurrentA: 8.42e-3},
			{DBm: -15, CurrentA: 9.71e-3},
			{DBm: -10, CurrentA: 10.9e-3},
			{DBm: -7, CurrentA: 12.17e-3},
			{DBm: -5, CurrentA: 12.27e-3},
			{DBm: -3, CurrentA: 14.63e-3},
			{DBm: -1, CurrentA: 15.785e-3},
			{DBm: 0, CurrentA: 17.04e-3},
		},
	}
	c.ListenPower = c.RXPower
	// Fig. 3 transitions; energies follow the worst-case rule
	// E = T(transition) × P(arrival state).
	c.setTransition(Shutdown, Idle, 970*time.Microsecond)
	c.setTransition(Idle, Shutdown, 0)
	c.setTransition(Idle, RX, 194*time.Microsecond)
	c.setTransition(Idle, TX, 194*time.Microsecond)
	c.setTransition(RX, Idle, 0)
	c.setTransition(TX, Idle, 0)
	// RX⇄TX turnaround: 12 symbols (aTurnaroundTime = 192 µs).
	c.setTransition(RX, TX, 192*time.Microsecond)
	c.setTransition(TX, RX, 192*time.Microsecond)
	return c
}

// ByName resolves a named characterization — the registry shared by every
// serialized surface (the HTTP service and the scenario catalog). The empty
// name selects the baseline CC2420; "cc2420-fast" halves the transition
// times, "cc2420-scalable" listens at half RX power and "cc2420-improved"
// combines both §5 improvement perspectives.
func ByName(name string) (*Characterization, bool) {
	switch name {
	case "", "cc2420":
		return CC2420(), true
	case "cc2420-fast":
		return CC2420().WithTransitionScale(0.5), true
	case "cc2420-scalable":
		return CC2420().WithScalableReceiver(0.5), true
	case "cc2420-improved":
		return CC2420().WithTransitionScale(0.5).WithScalableReceiver(0.5), true
	}
	return nil, false
}

// Names lists the characterizations ByName resolves, baseline first.
func Names() []string {
	return []string{"cc2420", "cc2420-fast", "cc2420-scalable", "cc2420-improved"}
}

// setTransition registers a transition using the worst-case energy rule:
// transition duration at the arrival-state power (TX at maximum level).
func (c *Characterization) setTransition(from, to State, d time.Duration) {
	c.allowed[from][to] = true
	c.transitions[from][to] = Transition{
		Duration: d,
		Energy:   c.StatePower(to, len(c.TXLevels)-1).Times(d),
	}
}

// Transition reports the characterization of a state change and whether it
// is direct (allowed by the state machine).
func (c *Characterization) Transition(from, to State) (Transition, bool) {
	if from < 0 || to < 0 || int(from) >= NumStates || int(to) >= NumStates {
		return Transition{}, false
	}
	return c.transitions[from][to], c.allowed[from][to]
}

// StatePower reports the steady power of a state. For TX, levelIndex picks
// the programmed output step.
func (c *Characterization) StatePower(s State, levelIndex int) units.Power {
	switch s {
	case Shutdown:
		return c.ShutdownPower
	case Idle:
		return c.IdlePower
	case RX:
		return c.RXPower
	case TX:
		if levelIndex < 0 {
			levelIndex = 0
		}
		if levelIndex >= len(c.TXLevels) {
			levelIndex = len(c.TXLevels) - 1
		}
		return units.FromCurrent(c.TXLevels[levelIndex].CurrentA, c.VDD)
	default:
		return 0
	}
}

// TXPowerAt reports the supply power drawn at the given TX level index.
func (c *Characterization) TXPowerAt(levelIndex int) units.Power {
	return c.StatePower(TX, levelIndex)
}

// MaxTXLevel reports the index of the strongest output step.
func (c *Characterization) MaxTXLevel() int { return len(c.TXLevels) - 1 }

// LevelIndexFor returns the lowest TX level whose RF output is at least
// dbm. ok is false when even the maximum level falls short, in which case
// the maximum level index is returned.
func (c *Characterization) LevelIndexFor(dbm float64) (int, bool) {
	i := sort.Search(len(c.TXLevels), func(i int) bool {
		return c.TXLevels[i].DBm >= dbm-1e-9
	})
	if i == len(c.TXLevels) {
		return len(c.TXLevels) - 1, false
	}
	return i, true
}

// Clone returns a deep copy (the TXLevels slice is duplicated).
func (c *Characterization) Clone() *Characterization {
	out := *c
	out.TXLevels = append([]TXLevel(nil), c.TXLevels...)
	return &out
}

// WithTransitionScale derives a radio whose every state transition is
// scaled in duration (and hence energy) by factor f — the paper's first
// improvement perspective uses f = 0.5 ("reducing the transition time
// between states by a factor two would decrease the total average power by
// 12%").
func (c *Characterization) WithTransitionScale(f float64) *Characterization {
	out := c.Clone()
	out.Name = fmt.Sprintf("%s(transitions×%g)", c.Name, f)
	for from := 0; from < NumStates; from++ {
		for to := 0; to < NumStates; to++ {
			if !c.allowed[from][to] {
				continue
			}
			tr := c.transitions[from][to]
			out.transitions[from][to] = Transition{
				Duration: time.Duration(float64(tr.Duration) * f),
				Energy:   units.Energy(float64(tr.Energy) * f),
			}
		}
	}
	return out
}

// WithScalableReceiver derives a radio whose receiver offers a low-power
// listen mode used for channel sensing and acknowledgment waiting, at
// factor f of the full receive power — the paper's second improvement
// perspective ("a scalable receiver ... has the potential of reducing the
// total average power by an additional 15%").
func (c *Characterization) WithScalableReceiver(f float64) *Characterization {
	out := c.Clone()
	out.Name = fmt.Sprintf("%s(listen×%g)", c.Name, f)
	out.ListenPower = units.Power(float64(c.RXPower) * f)
	return out
}
