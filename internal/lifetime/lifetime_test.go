package lifetime

import (
	"context"
	"math"
	"reflect"
	"testing"

	"dense802154/internal/battery"
	"dense802154/internal/netsim"
	"dense802154/internal/units"
)

// testConfig drains a deliberately tiny battery so deaths land within a
// handful of live epochs plus fast-forward, keeping the test fast.
func testConfig() Config {
	return Config{
		Sim:              netsim.Config{Nodes: 8, Superframes: 1, Seed: 42},
		Supply:           battery.Supply{CapacityJ: 0.5, SelfDischargePerYear: 0.01},
		EpochSuperframes: 4,
	}
}

func TestRunDeterminism(t *testing.T) {
	a := Run(testConfig())
	b := Run(testConfig())
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical configs produced different lifetime results")
	}
}

func TestRunAllDie(t *testing.T) {
	res := Run(testConfig())
	if res.Deaths != res.Nodes || res.AliveAtEnd != 0 {
		t.Fatalf("deaths=%d alive=%d, want the whole population (%d) dead", res.Deaths, res.AliveAtEnd, res.Nodes)
	}
	if res.AliveFracAtEnd != 0 {
		t.Fatalf("AliveFracAtEnd = %v, want 0", res.AliveFracAtEnd)
	}
	if math.IsInf(res.FirstDeathS, 1) || math.IsInf(res.PartitionS, 1) || math.IsInf(res.LastDeathS, 1) {
		t.Fatalf("fully dead network kept infinite times: first=%v partition=%v last=%v",
			res.FirstDeathS, res.PartitionS, res.LastDeathS)
	}
	if !(res.FirstDeathS > 0 && res.FirstDeathS <= res.PartitionS && res.PartitionS <= res.LastDeathS) {
		t.Fatalf("death times out of order: first=%v partition=%v last=%v",
			res.FirstDeathS, res.PartitionS, res.LastDeathS)
	}
	// Sanity: the per-node closed form predicts the timescale. A CC2420
	// node here runs well above 100 µW, so a 0.5 J cell dies within hours;
	// it cannot die before the battery could possibly drain at full-on
	// receive power (~60 mW).
	if res.FirstDeathS < 0.5/0.1 {
		t.Fatalf("first death at %v s is faster than full-on drain allows", res.FirstDeathS)
	}
	if res.LastDeathS > 24*3600 {
		t.Fatalf("last death at %v s, expected within a day for a 0.5 J cell", res.LastDeathS)
	}
}

func TestRunCurveShape(t *testing.T) {
	res := Run(testConfig())
	if len(res.Curve) != 1+res.Deaths {
		t.Fatalf("curve has %d points, want leading point + %d deaths", len(res.Curve), res.Deaths)
	}
	head := res.Curve[0]
	if head.TimeS != 0 || head.Alive != res.Nodes || head.Frac != 1 {
		t.Fatalf("curve head %+v, want {0, %d, 1}", head, res.Nodes)
	}
	for i := 1; i < len(res.Curve); i++ {
		prev, cur := res.Curve[i-1], res.Curve[i]
		if cur.TimeS < prev.TimeS {
			t.Fatal("curve times must be non-decreasing")
		}
		if cur.Alive != prev.Alive-1 {
			t.Fatal("each curve point records exactly one death")
		}
		if want := float64(cur.Alive) / float64(res.Nodes); cur.Frac != want {
			t.Fatalf("curve point %d frac %v, want %v", i, cur.Frac, want)
		}
	}
}

func TestFastForwardLeverage(t *testing.T) {
	// A CR2032 lives months: almost all of that time must be skipped
	// analytically, not simulated beacon by beacon.
	cfg := testConfig()
	cfg.Supply = battery.CoinCellCR2032()
	cfg.Sim.Nodes = 4
	cfg.MaxEpochs = 64
	res := Run(cfg)
	if res.FastForwardS < 100*res.SimulatedS {
		t.Fatalf("fast-forward covered %v s vs %v s simulated; the integrator is not skipping",
			res.FastForwardS, res.SimulatedS)
	}
	if res.Deaths == 0 {
		t.Fatal("a pure battery network must eventually lose nodes")
	}
	// The closed-form single-node lifetime brackets the first death: the
	// real network cannot outlive the hottest node's battery by much, nor
	// die orders of magnitude early.
	d, ok := cfg.Supply.Lifetime(200 * units.MicroWatt)
	if !ok {
		t.Fatal("closed form failed")
	}
	if res.FirstDeathS > 10*d.Seconds() || res.FirstDeathS < d.Seconds()/100 {
		t.Fatalf("first death %v s vs closed-form ballpark %v s", res.FirstDeathS, d.Seconds())
	}
}

func TestSustainableHarvest(t *testing.T) {
	cfg := testConfig()
	// A harvester that dwarfs any radio draw: nobody can ever die.
	cfg.Supply = battery.CoinCellCR2032().WithHarvest(1 * units.Watt)
	res := Run(cfg)
	if !res.Sustainable {
		t.Fatal("overwhelming harvest must report Sustainable")
	}
	if res.Deaths != 0 || res.AliveAtEnd != res.Nodes {
		t.Fatalf("sustainable network lost nodes: deaths=%d", res.Deaths)
	}
	if !math.IsInf(res.FirstDeathS, 1) || !math.IsInf(res.PartitionS, 1) || !math.IsInf(res.LastDeathS, 1) {
		t.Fatal("sustainable network must report infinite death times")
	}
}

func TestUnconstrainedSupply(t *testing.T) {
	cfg := testConfig()
	cfg.Supply = battery.VibrationHarvester() // no finite battery modeled
	res := Run(cfg)
	if !res.Sustainable || res.Deaths != 0 {
		t.Fatalf("capacity-less supply must be unconstrained: sustainable=%v deaths=%d",
			res.Sustainable, res.Deaths)
	}
	if res.Epochs != 1 {
		t.Fatalf("unconstrained run simulated %d epochs, one characterizes it", res.Epochs)
	}
}

func TestThresholdEatsBattery(t *testing.T) {
	cfg := testConfig()
	cfg.ThresholdJ = cfg.Supply.CapacityJ + 1
	res := Run(cfg)
	if res.AliveAtEnd != 0 || res.FirstDeathS != 0 || res.LastDeathS != 0 {
		t.Fatalf("threshold above capacity must kill everyone at t=0: %+v", res)
	}
	if res.Epochs != 0 {
		t.Fatal("no epoch may run for a dead-on-arrival population")
	}
}

func TestHorizonCapsRun(t *testing.T) {
	cfg := testConfig()
	cfg.Supply = battery.CoinCellCR2032() // months of life...
	cfg.HorizonHours = 1                  // ...but only watch the first hour
	res := Run(cfg)
	if res.Deaths != 0 {
		t.Fatal("no CR2032 node dies within an hour")
	}
	covered := res.SimulatedS + res.FastForwardS
	if covered < 3600 || covered > 2*3600 {
		t.Fatalf("horizon-capped run covered %v s, want ≈3600", covered)
	}
}

func TestReplicaBitIdentity(t *testing.T) {
	cfg := testConfig()
	one, err := RunReplicas(context.Background(), cfg, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	many, err := RunReplicas(context.Background(), cfg, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, many) {
		t.Fatal("replica set differs between 1 and 8 workers")
	}
	if !reflect.DeepEqual(one.Results[0], Run(cfg)) {
		t.Fatal("replica 0 must keep the base seed")
	}
	if one.FirstDeathHours.CI95 < 0 || math.IsNaN(one.FirstDeathHours.CI95) {
		t.Fatalf("bad CI: %+v", one.FirstDeathHours)
	}
}

func TestMergeInfiniteObservations(t *testing.T) {
	// One replica never partitions: the across-replica mean is +Inf with a
	// zero half-width, never NaN (the wire codec rejects NaN).
	finite := Result{FirstDeathS: 3600, PartitionS: 7200, LastDeathS: 9000}
	never := Result{FirstDeathS: 3600, PartitionS: math.Inf(1), LastDeathS: math.Inf(1)}
	rs := Merge(Config{}, []int64{1, 2}, []Result{finite, never})
	p := rs.PartitionHours
	if !math.IsInf(p.Mean, 1) || p.CI95 != 0 || !math.IsInf(p.Max, 1) || p.Min != 2 {
		t.Fatalf("infinite partition stat %+v", p)
	}
	if math.IsNaN(p.Mean) || math.IsNaN(p.CI95) || math.IsNaN(p.Min) || math.IsNaN(p.Max) {
		t.Fatal("NaN leaked into replica stats")
	}
	if rs.FirstDeathHours.Mean != 1 || rs.FirstDeathHours.CI95 != 0 {
		t.Fatalf("finite stat %+v", rs.FirstDeathHours)
	}
}

func TestDefaults(t *testing.T) {
	c := (Config{}).withDefaults()
	if c.Supply != battery.CoinCellCR2032() {
		t.Fatal("default supply must be the CR2032 coin cell")
	}
	if c.PartitionFrac != 0.5 || c.EpochSuperframes != 16 || c.MaxEpochs != 512 {
		t.Fatalf("defaults: %+v", c)
	}
	if c.Sim.Nodes == 0 {
		t.Fatal("sim defaults must be resolved")
	}
}
