package lifetime

import "dense802154/internal/telemetry"

// Package-level lifetime telemetry, folded once per completed Run — the
// same once-per-run atomic pattern netsim uses, so nothing lands on a
// per-epoch or per-event path.
var (
	runsTotal               telemetry.Counter
	epochsTotal             telemetry.Counter
	deathsTotal             telemetry.Counter
	simulatedSecondsTotal   telemetry.Counter
	fastForwardSecondsTotal telemetry.Counter
)

// RegisterMetrics exposes the lifetime integrator's process-wide counters
// in r:
//
//	wsn_lifetime_runs_total                 counter  completed lifetime runs
//	wsn_lifetime_epochs_total               counter  live-simulated epochs
//	wsn_lifetime_deaths_total               counter  node deaths recorded
//	wsn_lifetime_simulated_seconds_total    counter  network seconds covered by live DES epochs
//	wsn_lifetime_fast_forward_seconds_total counter  network seconds skipped analytically
//
// The ratio of the last two is the integrator's leverage: how many
// simulated years each wall-clock second of DES bought.
func RegisterMetrics(r *telemetry.Registry) {
	r.RegisterCounter("wsn_lifetime_runs_total", "Completed network lifetime runs.", &runsTotal)
	r.RegisterCounter("wsn_lifetime_epochs_total", "Live-simulated lifetime epochs across all runs.", &epochsTotal)
	r.RegisterCounter("wsn_lifetime_deaths_total", "Node deaths recorded across all lifetime runs.", &deathsTotal)
	r.RegisterCounter("wsn_lifetime_simulated_seconds_total", "Network seconds covered by live DES epochs.", &simulatedSecondsTotal)
	r.RegisterCounter("wsn_lifetime_fast_forward_seconds_total", "Network seconds skipped by the steady-state fast-forward.", &fastForwardSecondsTotal)
}

func foldRunMetrics(res *Result) {
	runsTotal.Inc()
	epochsTotal.Add(uint64(res.Epochs))
	deathsTotal.Add(uint64(res.Deaths))
	simulatedSecondsTotal.Add(uint64(res.SimulatedS))
	fastForwardSecondsTotal.Add(uint64(res.FastForwardS))
}
