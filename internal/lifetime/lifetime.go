// Package lifetime answers the question the paper's energy model exists
// for: how long does a dense 802.15.4 network actually live on finite
// batteries? It attaches a battery.Supply to every netsim node, integrates
// each node's radio energy epoch by epoch as the DES runs, kills nodes at
// a shutdown threshold (dead nodes leave the contention population, which
// changes the survivors' energy draw — exactly the coupling closed-form
// battery math cannot capture), and reports first-node-death time, the
// fraction-alive-vs-time curve, and the network partition time.
//
// Simulating months of radio time beacon by beacon would be hopeless, so
// the integrator samples: it live-simulates one epoch (a handful of
// superframes), treats the measured per-node power as the steady state,
// fast-forwards analytically to just before the next predicted death, and
// live-simulates again. Deaths therefore always happen inside a simulated
// epoch, at a beacon, under real contention — the fast-forward only skips
// stretches where the population (and hence the power profile) is
// provably static.
package lifetime

import (
	"math"
	"time"

	"dense802154/internal/battery"
	"dense802154/internal/netsim"
)

// Config describes one network-lifetime experiment.
type Config struct {
	// Sim is the base network configuration. Sim.Superframes is ignored —
	// the epoch length is EpochSuperframes — and Sim.Seed roots all
	// randomness (deployment fixed for life, traffic re-rooted per epoch).
	Sim netsim.Config

	// Supply is every node's energy source. The zero value defaults to
	// battery.CoinCellCR2032. A supply without a finite capacity
	// (CapacityJ <= 0 or non-finite) is unconstrained: no node can ever
	// die and the run reports Sustainable with infinite death times.
	Supply battery.Supply

	// ThresholdJ is the shutdown threshold: a node dies when its remaining
	// energy falls to this level (usable energy = CapacityJ - ThresholdJ).
	ThresholdJ float64

	// PartitionFrac is the alive fraction below which the network counts
	// as partitioned (default 0.5).
	PartitionFrac float64

	// EpochSuperframes is the number of live-simulated superframes per
	// sampled epoch (default 16).
	EpochSuperframes int

	// MaxEpochs bounds the number of live-simulated epochs (default 512).
	MaxEpochs int

	// HorizonHours optionally caps the covered (simulated + fast-forward)
	// time; 0 means run until the population or MaxEpochs is exhausted.
	HorizonHours float64
}

func (c Config) withDefaults() Config {
	c.Sim = c.Sim.WithDefaults()
	if c.Supply == (battery.Supply{}) {
		c.Supply = battery.CoinCellCR2032()
	}
	if c.ThresholdJ < 0 || math.IsNaN(c.ThresholdJ) {
		c.ThresholdJ = 0
	}
	if !(c.PartitionFrac > 0 && c.PartitionFrac <= 1) {
		c.PartitionFrac = 0.5
	}
	if c.EpochSuperframes <= 0 {
		c.EpochSuperframes = 16
	}
	if c.MaxEpochs <= 0 {
		c.MaxEpochs = 512
	}
	if c.HorizonHours < 0 || math.IsNaN(c.HorizonHours) {
		c.HorizonHours = 0
	}
	return c
}

// CurvePoint is one step of the fraction-alive-vs-time curve.
type CurvePoint struct {
	TimeS float64 // covered time of the step [s]
	Alive int     // population alive from this instant on
	Frac  float64 // Alive / Nodes
}

// Result is one lifetime run. All times are in seconds of covered
// (simulated + fast-forwarded) network time; +Inf means "never within
// this run" and survives the wire encoding exactly.
type Result struct {
	Config Config
	Seed   int64
	Nodes  int

	FirstDeathS float64 // time of the first node death (+Inf if none)
	PartitionS  float64 // first time alive fraction < PartitionFrac (+Inf if never)
	LastDeathS  float64 // time the whole population is dead (+Inf if survivors remain)

	AliveAtEnd     int
	AliveFracAtEnd float64
	Deaths         int

	SimulatedS   float64 // time covered by live DES epochs
	FastForwardS float64 // time skipped analytically between epochs
	Epochs       int     // live-simulated epochs
	Sustainable  bool    // harvest covered every survivor's drain at steady state

	// Curve is the alive-population step function: a leading point at
	// time 0 with everyone alive, then one point per death instant.
	Curve []CurvePoint
}

// Run executes one lifetime experiment. It is deterministic in
// cfg.Sim.Seed and bit-identical across pooled-arena reuse, like the
// netsim runs it is built from.
func Run(cfg Config) Result {
	cfg = cfg.withDefaults()
	n := cfg.Sim.Nodes
	epochCfg := cfg.Sim
	epochCfg.Superframes = cfg.EpochSuperframes
	epochDurS := (epochCfg.Superframe.BeaconInterval() * time.Duration(cfg.EpochSuperframes)).Seconds()

	res := Result{
		Config:      cfg,
		Seed:        cfg.Sim.Seed,
		Nodes:       n,
		FirstDeathS: math.Inf(1),
		PartitionS:  math.Inf(1),
		LastDeathS:  math.Inf(1),
		Curve:       []CurvePoint{{TimeS: 0, Alive: n, Frac: 1}},
	}

	unconstrained := !(cfg.Supply.CapacityJ > 0) || math.IsInf(cfg.Supply.CapacityJ, 1)
	usable := cfg.Supply.CapacityJ - cfg.ThresholdJ
	harvestW := float64(cfg.Supply.Harvest)
	selfW := float64(cfg.Supply.SelfDischargeDrain())
	ambientW := harvestW - selfW // net non-radio power into each battery

	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	aliveCount := n

	die := func(atS float64) {
		aliveCount--
		res.Deaths++
		frac := float64(aliveCount) / float64(n)
		res.Curve = append(res.Curve, CurvePoint{TimeS: atS, Alive: aliveCount, Frac: frac})
		if math.IsInf(res.FirstDeathS, 1) {
			res.FirstDeathS = atS
		}
		if math.IsInf(res.PartitionS, 1) && frac < cfg.PartitionFrac {
			res.PartitionS = atS
		}
		if aliveCount == 0 {
			res.LastDeathS = atS
		}
	}

	if !unconstrained && usable <= 0 {
		// The threshold eats the whole battery: everyone is dead on
		// arrival. Degenerate but well-defined — no epoch ever runs.
		for i := 0; i < n; i++ {
			alive[i] = false
			die(0)
		}
		finish(&res, aliveCount, n, 0, 0)
		return res
	}

	rem := make([]float64, n) // remaining usable energy [J]
	budget := make([]float64, n)
	for i := range rem {
		rem[i] = usable
	}

	var t, simulatedS, fastForwardS float64
	horizonS := cfg.HorizonHours * 3600

	for epoch := 0; epoch < cfg.MaxEpochs; epoch++ {
		if aliveCount == 0 {
			break
		}
		if horizonS > 0 && t >= horizonS {
			break
		}

		spec := netsim.EpochSpec{Epoch: epoch, Alive: alive}
		if !unconstrained {
			// A node's radio may spend its remaining energy plus whatever
			// ambient flow (harvest minus self-discharge) arrives during
			// the epoch before the battery hits the threshold.
			for i := range budget {
				b := rem[i] + ambientW*epochDurS
				if b < 0 {
					b = 0
				}
				budget[i] = b
			}
			spec.BudgetJ = budget
		}

		er := netsim.RunEpoch(epochCfg, spec)
		res.Epochs++
		simulatedS += epochDurS

		for _, d := range er.Deaths {
			rem[d.Node] = 0
			die(t + d.At.Seconds())
		}

		if unconstrained {
			// Nothing can ever die; one epoch characterizes the steady
			// state and the network runs forever.
			t += epochDurS
			res.Sustainable = true
			break
		}

		// Settle the survivors' batteries for the epoch and catch any
		// death the beacon-granularity check missed (a node busy at the
		// last beacon): it dies at the epoch boundary.
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			rem[i] += ambientW*epochDurS - er.EnergyJ[i]
			if rem[i] > usable {
				rem[i] = usable // a battery cannot charge past full
			}
			if rem[i] <= 0 {
				rem[i] = 0
				alive[i] = false
				die(t + epochDurS)
			}
		}
		t += epochDurS
		if aliveCount == 0 {
			break
		}

		// Steady-state fast-forward: with the population unchanged, each
		// survivor's net drain is the epoch's measured radio power minus
		// the ambient flow. Skip analytically to one epoch before the
		// earliest predicted death, so the death itself is simulated live.
		minTT := math.Inf(1)
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			netW := er.EnergyJ[i]/epochDurS - ambientW
			if netW <= 0 {
				continue
			}
			if tt := rem[i] / netW; tt < minTT {
				minTT = tt
			}
		}
		if math.IsInf(minTT, 1) {
			// Every survivor's harvest covers its drain: the network as
			// it now stands runs forever.
			res.Sustainable = true
			break
		}
		skip := minTT - epochDurS
		if horizonS > 0 && t+skip > horizonS {
			skip = horizonS - t
		}
		if skip > 0 {
			for i := 0; i < n; i++ {
				if !alive[i] {
					continue
				}
				netW := er.EnergyJ[i]/epochDurS - ambientW
				rem[i] -= netW * skip
				if rem[i] > usable {
					rem[i] = usable
				}
			}
			t += skip
			fastForwardS += skip
		}
	}

	finish(&res, aliveCount, n, simulatedS, fastForwardS)
	foldRunMetrics(&res)
	return res
}

func finish(res *Result, aliveCount, n int, simulatedS, fastForwardS float64) {
	res.AliveAtEnd = aliveCount
	res.AliveFracAtEnd = float64(aliveCount) / float64(n)
	res.SimulatedS = simulatedS
	res.FastForwardS = fastForwardS
}
