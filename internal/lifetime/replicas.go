package lifetime

import (
	"context"
	"fmt"
	"math"

	"dense802154/internal/engine"
	"dense802154/internal/netsim"
	"dense802154/internal/stats"
)

// ReplicaSet is the merged outcome of n independent lifetime replications:
// per-replica results in replica order plus across-replica statistics of
// the headline lifetime metrics, in hours to match how the numbers are
// read (a CR2032 network lives thousands of hours, not billions of
// seconds).
type ReplicaSet struct {
	Config   Config
	Replicas int
	Seeds    []int64
	Results  []Result

	FirstDeathHours netsim.ReplicaStat
	PartitionHours  netsim.ReplicaStat
	LastDeathHours  netsim.ReplicaStat
	AliveFracAtEnd  netsim.ReplicaStat
}

// String implements fmt.Stringer with the headline across-replica means.
func (rs ReplicaSet) String() string {
	return fmt.Sprintf("lifetime replicas: n=%d first-death=%.1f h (±%.1f) partition=%.1f h (±%.1f) alive=%.2f",
		rs.Replicas, rs.FirstDeathHours.Mean, rs.FirstDeathHours.CI95,
		rs.PartitionHours.Mean, rs.PartitionHours.CI95, rs.AliveFracAtEnd.Mean)
}

// accumulate folds observations into a ReplicaStat. Lifetime observables
// are legitimately +Inf ("never died within the run"); a mean over any
// +Inf is +Inf with a zero half-width — never NaN, so every stat survives
// the wire encoding exactly.
func accumulate(xs []float64) netsim.ReplicaStat {
	var a stats.Accumulator
	for _, x := range xs {
		if math.IsInf(x, 1) {
			mn := math.Inf(1)
			for _, y := range xs {
				if y < mn {
					mn = y
				}
			}
			return netsim.ReplicaStat{Mean: math.Inf(1), CI95: 0, Min: mn, Max: math.Inf(1)}
		}
		a.Add(x)
	}
	return netsim.ReplicaStat{Mean: a.Mean(), CI95: a.CI95(), Min: a.Min(), Max: a.Max()}
}

// RunReplicas executes n independent lifetime replications concurrently on
// workers goroutines (0 ⇒ runtime.NumCPU()) and merges them. Replica i
// runs with netsim.ReplicaSeeds(cfg.Sim.Seed, n)[i] — replica 0 keeps the
// base seed, so a 1-replica set is bit-identical to Run(cfg) — and results
// are bit-identical at any worker count.
func RunReplicas(ctx context.Context, cfg Config, n, workers int) (ReplicaSet, error) {
	if n < 1 {
		n = 1
	}
	seeds := netsim.ReplicaSeeds(cfg.Sim.Seed, n)
	results, err := engine.MapSlice(ctx, workers, seeds,
		func(i int, s int64) (Result, error) {
			c := cfg
			c.Sim.Seed = s
			return Run(c), nil
		})
	if err != nil {
		return ReplicaSet{}, err
	}
	return Merge(cfg, seeds, results), nil
}

// Merge folds already-computed replica results (results[i] run under
// seeds[i]) into the ReplicaSet RunReplicas reports. Split out so the
// unified query planner, which schedules replicas as individual tasks,
// assembles a set bit-identical to RunReplicas.
func Merge(cfg Config, seeds []int64, results []Result) ReplicaSet {
	n := len(results)
	rs := ReplicaSet{Config: cfg, Replicas: n, Seeds: seeds, Results: results}
	obs := func(f func(Result) float64) netsim.ReplicaStat {
		xs := make([]float64, n)
		for i, r := range results {
			xs[i] = f(r)
		}
		return accumulate(xs)
	}
	rs.FirstDeathHours = obs(func(r Result) float64 { return r.FirstDeathS / 3600 })
	rs.PartitionHours = obs(func(r Result) float64 { return r.PartitionS / 3600 })
	rs.LastDeathHours = obs(func(r Result) float64 { return r.LastDeathS / 3600 })
	rs.AliveFracAtEnd = obs(func(r Result) float64 { return r.AliveFracAtEnd })
	return rs
}
