package netsim

import (
	"time"
)

// This file is the simulator's lifetime seam: one epoch of a network whose
// nodes carry finite energy budgets. The orchestration above it — battery
// state, harvest and self-discharge accounting, steady-state fast-forward
// between epochs, replica aggregation — lives in internal/lifetime; netsim
// only knows how to run a population with some nodes dead and to kill the
// ones that exhaust their budget mid-epoch.

// EpochSpec configures one lifetime epoch over a base Config.
type EpochSpec struct {
	// Epoch indexes the sampled epoch. Epoch 0 reuses the plain run's
	// traffic streams (RunEpoch at epoch 0 with everyone alive is
	// bit-identical to Run); later epochs re-root the per-node streams so
	// each sampled epoch draws fresh traffic randomness. The deployment —
	// per-node loss, TX level, PER — is a function of cfg.Seed alone and
	// never varies across epochs, so node i keeps its identity for life.
	Epoch int
	// Alive masks the population (len cfg.Nodes; nil = all alive). Dead
	// nodes exist in the deployment but never wake: they skip every
	// superframe, leave the contention population, and accrue no energy.
	// The mask is mutated in place: nodes that die mid-epoch flip false,
	// so the caller's mask is current when RunEpoch returns.
	Alive []bool
	// BudgetJ is each node's remaining radio energy in joules (len
	// cfg.Nodes; nil = unlimited). A non-busy node whose accrued energy
	// reaches its budget dies at that beacon.
	BudgetJ []float64
}

// NodeDeath records one mid-epoch death at a beacon instant.
type NodeDeath struct {
	Node int
	At   time.Duration
}

// EpochResult is one epoch's outcome: the usual aggregate Result plus the
// per-node energy split the lifetime integrator needs.
type EpochResult struct {
	// Result aggregates the epoch like a plain run. Averages are over the
	// configured population including dead nodes (which contribute zero
	// energy and no traffic).
	Result Result
	// EnergyJ is each node's radio energy spent this epoch: zero for nodes
	// dead at entry, the exact remaining budget for nodes that died
	// mid-epoch (an exhausted battery spends precisely what it had), the
	// ledger total for survivors.
	EnergyJ []float64
	// Deaths lists mid-epoch deaths in death order.
	Deaths []NodeDeath
}

// RunEpoch executes one lifetime epoch on a pooled arena. See EpochSpec
// for the contract; cfg itself is untouched, so every plain-run invariant
// (golden bytes, recycle bit-identity) is unaffected by lifetime runs
// sharing the pool.
func RunEpoch(cfg Config, spec EpochSpec) EpochResult {
	r := runnerPool.Get().(*Runner)
	res := r.RunEpoch(cfg, spec)
	runnerPool.Put(r)
	return res
}

// RunEpoch executes one lifetime epoch on this arena.
func (r *Runner) RunEpoch(cfg Config, spec EpochSpec) EpochResult {
	res := r.run(cfg, &spec)
	e := &r.e
	out := EpochResult{
		Result:  res,
		EnergyJ: make([]float64, len(e.nodes)),
		Deaths:  append([]NodeDeath(nil), e.deaths...),
	}
	for i := range e.nodes {
		if spec.Alive == nil || spec.Alive[i] {
			out.EnergyJ[i] = float64(e.nodes[i].dev.Ledger().TotalEnergy())
		}
	}
	for _, d := range e.deaths {
		if spec.BudgetJ != nil {
			out.EnergyJ[d.Node] = spec.BudgetJ[d.Node]
		}
	}
	return out
}
