//go:build !race

package netsim

// Steady state measures ~6 allocs; the budget leaves headroom for a GC
// emptying the sync.Pool mid-run without tolerating a setup regression
// (which costs one-plus per node).
const runAllocBudget = 16
