package netsim

import (
	"testing"

	"dense802154/internal/contention"
)

// TestContentionCrossValidation compares the two independent
// implementations of slotted CSMA/CA — the slot-grid Monte-Carlo
// characterizer (internal/contention) and the event-driven simulator
// (this package) — at the case-study operating point. They share the
// mac.Transaction state machine but differ in everything else: time
// representation, medium model, arrival generation, retry handling.
func TestContentionCrossValidation(t *testing.T) {
	sim := Run(Config{Nodes: 100, Superframes: 30, Seed: 31})
	mc := contention.Simulate(contention.Config{
		TargetLoad:  0.433,
		Superframes: 60,
		Seed:        31,
	})

	// The simulator's statistics include retransmission chains (whose
	// backoffs are correlated), so only loose agreement is expected;
	// order-of-magnitude divergence would indicate a protocol bug.
	if ratio := sim.Contention.NCCA / mc.MeanCCAs; ratio < 0.7 || ratio > 1.6 {
		t.Errorf("NCCA: sim %.2f vs MC %.2f (ratio %.2f)", sim.Contention.NCCA, mc.MeanCCAs, ratio)
	}
	if ratio := sim.Contention.Tcont.Seconds() / mc.MeanContention.Seconds(); ratio < 0.5 || ratio > 2.5 {
		t.Errorf("Tcont: sim %v vs MC %v (ratio %.2f)", sim.Contention.Tcont, mc.MeanContention, ratio)
	}
	if sim.Contention.PrCF < mc.PrCF*0.5 || sim.Contention.PrCF > mc.PrCF*3 {
		t.Errorf("PrCF: sim %.3f vs MC %.3f", sim.Contention.PrCF, mc.PrCF)
	}
	t.Logf("sim: %+v", sim.Contention)
	t.Logf("mc:  Tcont=%v NCCA=%.2f PrCF=%.3f PrCol=%.3f",
		mc.MeanContention, mc.MeanCCAs, mc.PrCF, mc.PrCol)
}

// TestTraceInvariants checks the Fig. 5 trace facility: states alternate
// legally and timestamps are monotone.
func TestTraceInvariants(t *testing.T) {
	r := Run(Config{Nodes: 3, Superframes: 3, Seed: 32, TraceNode: 2})
	if len(r.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	for i := 1; i < len(r.Trace); i++ {
		if r.Trace[i].At < r.Trace[i-1].At {
			t.Fatalf("trace timestamps not monotone at %d", i)
		}
	}
	// The traced node must visit all four states over a superframe.
	seen := map[string]bool{}
	for _, ev := range r.Trace {
		seen[ev.State.String()] = true
	}
	for _, want := range []string{"shutdown", "idle", "rx", "tx"} {
		if !seen[want] {
			t.Errorf("state %q never visited in trace", want)
		}
	}
	// Tracing another node changes the trace; tracing none disables it.
	r2 := Run(Config{Nodes: 3, Superframes: 3, Seed: 32})
	if len(r2.Trace) != 0 {
		t.Error("trace recorded without TraceNode")
	}
}
