// Package netsim is a full discrete-event simulation of the paper's
// beacon-enabled star network: a coordinator emitting beacons, nodes
// executing the §4 activation policy (sleep — preemptive wake — beacon
// reception — slotted CSMA/CA — transmission — acknowledgment — sleep) with
// cycle-accurate CC2420 state and energy tracking, a shared collision
// medium, and per-packet delivery bookkeeping.
//
// It is the ground-truth cross-check for the analytical model of
// internal/core (the VAL experiment): both consume the same radio
// characterization, frame sizes and channel model, but netsim accounts
// energy physically event by event rather than through the paper's
// expected-value expressions.
//
// Simplifications (documented deviations):
//   - packet arrivals near the end of a superframe are shifted so a
//     transaction does not straddle the beacon (a <1% boundary effect at
//     BO = 6);
//   - acknowledgment frames occupy the medium (they defer other nodes'
//     CCAs) but are never corrupted themselves;
//   - nodes mid-transaction do not re-synchronize on the next beacon.
package netsim

import (
	"fmt"
	"time"

	"dense802154/internal/channel"
	"dense802154/internal/contention"
	"dense802154/internal/des"
	"dense802154/internal/engine"
	"dense802154/internal/mac"
	"dense802154/internal/phy"
	"dense802154/internal/radio"
	"dense802154/internal/stats"
	"dense802154/internal/units"
)

// Config parameterizes a simulation run.
type Config struct {
	// Nodes on the channel (the case study has 100).
	Nodes int
	// PayloadBytes per data packet (default 120).
	PayloadBytes int
	// Superframe sets BO/SO (default 6/6).
	Superframe mac.Superframe
	// CSMA parameters (default mac.PaperParams).
	CSMA mac.CSMAParams
	// Radio characterization (default CC2420).
	Radio *radio.Characterization
	// BER model (default the paper's eq. 1).
	BER phy.BERModel
	// Deployment draws each node's path loss (default uniform 55-95 dB).
	Deployment channel.Deployment
	// TargetPRxDBm is the channel-inversion target: each node picks the
	// lowest TX level with PTx - loss ≥ target (default -87 dBm, just
	// inside the "efficient up to 88 dB" region).
	TargetPRxDBm float64
	// NMax is the transmission cap per contention-won packet (default 5).
	NMax int
	// TransmitProb is the probability a node offers a packet in a
	// superframe (default 1: one packet per node per superframe).
	TransmitProb float64
	// Superframes to simulate (default 20).
	Superframes int
	// BeaconBytes is the beacon's on-air size (default 30, as in core).
	BeaconBytes int
	// MaxPacketSuperframes caps application-level retries before a
	// packet is dropped (default 10).
	MaxPacketSuperframes int
	// LowPowerListen engages the radio's scalable-receiver listen mode
	// during clear channel assessments and acknowledgment waits (§5
	// improvement perspective; only meaningful with a radio whose
	// ListenPower is below RXPower).
	LowPowerListen bool
	// TraceNode, when non-zero, records the radio state/phase timeline
	// of the node with that 1-based index (the Fig. 5 uplink transaction
	// picture); the trace lands in Result.Trace. Zero disables tracing.
	TraceNode int
	// Seed drives the deterministic RNG.
	Seed int64
}

// TraceEvent is one radio state change of the traced node.
type TraceEvent struct {
	At    time.Duration
	State radio.State
	Phase radio.Phase
}

// WithDefaults returns the configuration exactly as Run will execute it,
// every zero field replaced by its default. Exported for layers that need
// the effective population size and superframe timing before running
// anything (internal/lifetime sizes its battery state and epoch span off
// it).
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 100
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 120
	}
	if c.Superframe == (mac.Superframe{}) {
		sf, err := mac.NewSuperframe(6, 6)
		if err != nil {
			panic(err)
		}
		c.Superframe = sf
	}
	if c.CSMA == (mac.CSMAParams{}) {
		c.CSMA = mac.PaperParams()
	}
	if c.Radio == nil {
		c.Radio = radio.CC2420()
	}
	if c.BER == nil {
		c.BER = phy.Eq1
	}
	if c.Deployment == nil {
		c.Deployment = channel.UniformLoss{MinDB: 55, MaxDB: 95}
	}
	if c.TargetPRxDBm == 0 {
		c.TargetPRxDBm = -87
	}
	if c.NMax == 0 {
		c.NMax = 5
	}
	if c.TransmitProb == 0 {
		c.TransmitProb = 1
	}
	if c.Superframes == 0 {
		c.Superframes = 20
	}
	if c.BeaconBytes == 0 {
		c.BeaconBytes = 30
	}
	if c.MaxPacketSuperframes == 0 {
		c.MaxPacketSuperframes = 10
	}
	return c
}

// Result aggregates the run.
type Result struct {
	Config Config

	// Per-node averages.
	AvgPowerPerNode units.Power
	Ledger          radio.Ledger // aggregate over all nodes

	// Delivery bookkeeping.
	PacketsOffered   int
	PacketsDelivered int
	PacketsDropped   int // exceeded MaxPacketSuperframes
	PacketsExpired   int // still pending at simulation end
	Transmissions    int
	Collisions       int
	AccessFailures   int
	CorruptedFrames  int

	// Derived metrics.
	DeliveryRatio    float64
	PrFailPerAttempt float64 // per-superframe transaction failures
	MeanDelay        time.Duration
	P95Delay         time.Duration

	// Contention statistics measured in situ (comparable to Fig. 6).
	Contention contention.Stats

	// AttemptsHist[i] counts packets delivered on their (i+1)-th
	// transmission within a superframe — the empirical Ptr(i)
	// distribution of eqs. (7)-(8).
	AttemptsHist []int

	// Trace is the state timeline of Config.TraceNode (empty when
	// tracing is disabled).
	Trace []TraceEvent
}

// AttemptsDistribution normalizes AttemptsHist into probabilities.
func (r Result) AttemptsDistribution() []float64 {
	total := 0
	for _, c := range r.AttemptsHist {
		total += c
	}
	if total == 0 {
		return nil
	}
	out := make([]float64, len(r.AttemptsHist))
	for i, c := range r.AttemptsHist {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// String implements fmt.Stringer.
func (r Result) String() string {
	return fmt.Sprintf("netsim: %d nodes, %d superframes: P=%.1fµW delivered=%d/%d (%.1f%%) delay=%v",
		r.Config.Nodes, r.Config.Superframes, r.AvgPowerPerNode.MicroWatts(),
		r.PacketsDelivered, r.PacketsOffered, 100*r.DeliveryRatio, r.MeanDelay.Round(time.Millisecond))
}

// transmission is an interval of medium occupancy, stored by value in the
// medium's active set. Collisions are recorded on the owning node's
// txCollided flag (nil node: beacon or acknowledgment frames, which occupy
// the medium but track no collision state of their own).
type transmission struct {
	start time.Duration
	end   time.Duration
	node  *node // nil for beacon/ack
}

// txInterval is a node-free copy of a transmission in the medium's
// start-ordered index — keeping *node out of the index means lazily retired
// entries never pin a pooled run's nodes across recycles.
type txInterval struct {
	start time.Duration
	end   time.Duration
}

// medium is the single shared broadcast domain (every node hears every
// other: the star topology of Fig. 1a with no hidden terminals).
//
// The active set is indexed two ways so the per-CCA operations stay
// sublinear in dense networks:
//
//   - byEnd is the authoritative set, a min-heap on end time. prune is a
//     prefix pop instead of an O(active) filter, because the simulation only
//     ever prunes at monotonically sufficient thresholds (see below).
//   - byStart is a min-heap on start time holding node-free copies.
//     busyWindow reduces to one earliest-start comparison against its root;
//     entries whose transmission already left byEnd are retired lazily when
//     they surface.
//
// Index invariants (why the lazy byStart root is trustworthy):
//
//   - Every prune threshold is a protocol instant on the global CSMA slot
//     grid — a beacon start, a CCA slot boundary or a transmission start —
//     and busyWindow(a, b) prunes to a itself before consulting the index.
//   - Event firing times lag their protocol instants by at most one radio
//     turnaround, and all turnarounds are shorter than phy.UnitBackoffPeriod,
//     so successive thresholds can only regress by less than one slot —
//     which on the shared slot grid means they never regress at all.
//   - Therefore at query time a ≥ maxPrune: anything popped from byEnd has
//     end ≤ maxPrune ≤ a, and its byStart copy fails the end > a liveness
//     test the moment it surfaces. The root comparison then exactly matches
//     a full scan. Should a model change ever violate the monotone-threshold
//     invariant, busyWindow detects a < maxPrune and falls back to the
//     O(active) scan of byEnd, which is correct unconditionally.
type medium struct {
	byEnd    []transmission // min-heap on end: the active set
	byStart  []txInterval   // min-heap on start: lazy query index
	maxPrune time.Duration  // highest prune threshold seen this run

	fallbacks int // out-of-order busyWindow queries that forced a full scan
}

// reset clears the medium for a recycled run, zeroing the vacated storage so
// no *node pointer from a previous run survives in slice tails.
func (m *medium) reset() {
	for i := range m.byEnd {
		m.byEnd[i] = transmission{}
	}
	m.byEnd = m.byEnd[:0]
	m.byStart = m.byStart[:0]
	m.maxPrune = 0
	m.fallbacks = 0
}

// prune drops transmissions that ended at or before t — a prefix pop off the
// end-ordered heap. Vacated tail slots are zeroed so the heap never retains
// stale *node pointers (the pooled-run recycling bug class).
func (m *medium) prune(t time.Duration) {
	if t > m.maxPrune {
		m.maxPrune = t
	}
	for len(m.byEnd) > 0 && m.byEnd[0].end <= t {
		m.popEnd()
	}
}

// busyWindow reports whether any transmission overlaps [a, b). It prunes to
// a first (the same threshold its callers prune at), so the check is a
// single comparison against the earliest-start root of the index.
func (m *medium) busyWindow(a, b time.Duration) bool {
	m.prune(a)
	if a < m.maxPrune {
		m.fallbacks++
		// Out-of-order query: the index may have lazily retired entries
		// still relevant at this earlier instant. Unreachable on the slot
		// grid (see the invariants above), but the full scan keeps the
		// medium correct for any scheduling pattern.
		for i := range m.byEnd {
			if m.byEnd[i].start < b && m.byEnd[i].end > a {
				return true
			}
		}
		return false
	}
	for len(m.byStart) > 0 {
		if m.byStart[0].end <= a {
			m.popStart() // retired: its transmission left byEnd already
			continue
		}
		return m.byStart[0].start < b
	}
	return false
}

// add inserts a transmission, marking collisions among overlaps on the
// participating nodes. The overlap scan walks the active set (heap order is
// irrelevant for flag setting); adds are rare next to CCA busy checks, so
// this is the one remaining O(active) medium operation.
func (m *medium) add(tx transmission) {
	for i := range m.byEnd {
		other := &m.byEnd[i]
		if other.start < tx.end && other.end > tx.start {
			if tx.node != nil {
				tx.node.txCollided = true
			}
			if other.node != nil {
				other.node.txCollided = true
			}
		}
	}
	m.pushEnd(tx)
	m.pushStart(txInterval{start: tx.start, end: tx.end})
}

// ---- value-typed binary min-heaps of the medium index ----

func (m *medium) pushEnd(tx transmission) {
	h := append(m.byEnd, tx)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].end <= tx.end {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = tx
	m.byEnd = h
}

func (m *medium) popEnd() {
	h := m.byEnd
	n := len(h) - 1
	root := h[n]
	h[n] = transmission{} // clear the vacated tail (drops *node references)
	h = h[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && h[c+1].end < h[c].end {
			c++
		}
		if h[c].end >= root.end {
			break
		}
		h[i] = h[c]
		i = c
	}
	if n > 0 {
		h[i] = root
	}
	m.byEnd = h
}

func (m *medium) pushStart(iv txInterval) {
	h := append(m.byStart, iv)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].start <= iv.start {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = iv
	m.byStart = h
}

func (m *medium) popStart() {
	h := m.byStart
	n := len(h) - 1
	root := h[n]
	h = h[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && h[c+1].start < h[c].start {
			c++
		}
		if h[c].start >= root.start {
			break
		}
		h[i] = h[c]
		i = c
	}
	if n > 0 {
		h[i] = root
	}
	m.byStart = h
}

// packet is one application payload with delivery bookkeeping.
type packet struct {
	readyAt     time.Duration
	superframes int // application-level attempts
	delivered   bool
}

// node is one sensor node. Nodes live by value in env.nodes (stable
// addresses: the slice is sized once per capacity growth), with their radio
// device, CSMA transaction, packet and random stream embedded — a
// superframe's worth of MAC activity allocates nothing per node, and a
// recycled run rebuilds the whole population without allocating at all.
type node struct {
	id    int
	env   *env
	dev   radio.Device
	rng   engine.RNG
	loss  float64
	level int
	per   float64 // packet corruption probability at the chosen level

	last       time.Duration   // accounting watermark
	txn        mac.Transaction // in-place re-initialized per attempt
	attempts   int
	pkt        packet
	hasPkt     bool
	txCollided bool // current transmission overlapped another
	busy       bool // a MAC exchange (contention/TX/ACK) is in flight
	traced     bool

	// in-situ contention statistics
	contStart time.Duration
}

// env holds the per-run simulation state. It is the arena a Runner recycles
// between runs: the simulator's event storage, the medium's index heaps and
// the node, delay and histogram slices all keep their capacity across
// reset, so replica sweeps pay the setup allocations once per worker
// instead of once per replication.
type env struct {
	cfg      Config
	sim      des.Simulator
	med      medium
	nodes    []node
	dispatch des.Dispatcher // cached e.dispatchEvent method value
	tia      time.Duration  // idle->RX transition
	tiaTx    time.Duration  // idle->TX transition
	tsi      time.Duration  // shutdown->idle transition
	tpacket  time.Duration
	tbeacon  time.Duration
	tack     time.Duration // ack frame duration

	offered, delivered, dropped int
	transmissions, collisions   int
	accessFailures, corrupted   int
	txnFailures, txnTotal       int
	ccaAttempts, backoffs       int
	delays                      []float64
	attemptsHist                []int
	trace                       []TraceEvent
	contDur, contCCA            stats.Accumulator
	contCF, contCol             stats.Proportion

	// Lifetime-epoch state (nil on plain runs — see RunEpoch). alive and
	// budgetJ alias the caller's EpochSpec slices; deaths is arena storage
	// copied out per epoch.
	alive   []bool
	budgetJ []float64
	deaths  []NodeDeath
}

// reset rewinds the arena for a fresh run under cfg, reusing every piece of
// backing storage whose capacity suffices. All behavioral state is restored
// exactly to what a newly built env would hold — recycled and fresh runs are
// bit-identical (asserted by TestRunnerRecycleBitIdentity).
func (e *env) reset(cfg Config) {
	e.cfg = cfg
	e.sim.Reset(cfg.Seed)
	if e.dispatch == nil {
		e.dispatch = e.dispatchEvent // one closure per env lifetime
	}
	e.sim.SetDispatcher(e.dispatch)
	e.med.reset()
	if cap(e.nodes) >= cfg.Nodes {
		e.nodes = e.nodes[:cfg.Nodes]
	} else {
		e.nodes = make([]node, cfg.Nodes)
	}
	if cap(e.attemptsHist) >= cfg.NMax {
		e.attemptsHist = e.attemptsHist[:cfg.NMax]
		for i := range e.attemptsHist {
			e.attemptsHist[i] = 0
		}
	} else {
		e.attemptsHist = make([]int, cfg.NMax)
	}
	e.offered, e.delivered, e.dropped = 0, 0, 0
	e.transmissions, e.collisions = 0, 0
	e.accessFailures, e.corrupted = 0, 0
	e.txnFailures, e.txnTotal = 0, 0
	e.ccaAttempts, e.backoffs = 0, 0
	e.delays = e.delays[:0]
	e.trace = e.trace[:0]
	e.contDur, e.contCCA = stats.Accumulator{}, stats.Accumulator{}
	e.contCF, e.contCol = stats.Proportion{}, stats.Proportion{}
	e.alive, e.budgetJ = nil, nil
	e.deaths = e.deaths[:0]
}

// advance accrues dwell time in the node's current radio state up to t.
func (n *node) advance(t time.Duration) {
	if t > n.last {
		n.dev.Stay(t - n.last)
		n.last = t
	}
}

// transition changes radio state, advancing the watermark by the
// transition time and recording the trace when enabled.
func (n *node) transition(s radio.State) {
	n.last += n.dev.TransitionTo(s)
	if n.traced {
		n.env.trace = append(n.env.trace, TraceEvent{
			At:    n.last,
			State: s,
			Phase: n.dev.Phase(),
		})
	}
}

// slotAfter returns the first CSMA slot boundary at or after t. The grid
// is global: beacon intervals are exact multiples of the backoff period.
func (e *env) slotAfter(t time.Duration) time.Duration {
	slots := (t + phy.UnitBackoffPeriod - 1) / phy.UnitBackoffPeriod
	return slots * phy.UnitBackoffPeriod
}
