// Package netsim is a full discrete-event simulation of the paper's
// beacon-enabled star network: a coordinator emitting beacons, nodes
// executing the §4 activation policy (sleep — preemptive wake — beacon
// reception — slotted CSMA/CA — transmission — acknowledgment — sleep) with
// cycle-accurate CC2420 state and energy tracking, a shared collision
// medium, and per-packet delivery bookkeeping.
//
// It is the ground-truth cross-check for the analytical model of
// internal/core (the VAL experiment): both consume the same radio
// characterization, frame sizes and channel model, but netsim accounts
// energy physically event by event rather than through the paper's
// expected-value expressions.
//
// Simplifications (documented deviations):
//   - packet arrivals near the end of a superframe are shifted so a
//     transaction does not straddle the beacon (a <1% boundary effect at
//     BO = 6);
//   - acknowledgment frames occupy the medium (they defer other nodes'
//     CCAs) but are never corrupted themselves;
//   - nodes mid-transaction do not re-synchronize on the next beacon.
package netsim

import (
	"fmt"
	"time"

	"dense802154/internal/channel"
	"dense802154/internal/contention"
	"dense802154/internal/des"
	"dense802154/internal/engine"
	"dense802154/internal/mac"
	"dense802154/internal/phy"
	"dense802154/internal/radio"
	"dense802154/internal/stats"
	"dense802154/internal/units"
)

// Config parameterizes a simulation run.
type Config struct {
	// Nodes on the channel (the case study has 100).
	Nodes int
	// PayloadBytes per data packet (default 120).
	PayloadBytes int
	// Superframe sets BO/SO (default 6/6).
	Superframe mac.Superframe
	// CSMA parameters (default mac.PaperParams).
	CSMA mac.CSMAParams
	// Radio characterization (default CC2420).
	Radio *radio.Characterization
	// BER model (default the paper's eq. 1).
	BER phy.BERModel
	// Deployment draws each node's path loss (default uniform 55-95 dB).
	Deployment channel.Deployment
	// TargetPRxDBm is the channel-inversion target: each node picks the
	// lowest TX level with PTx - loss ≥ target (default -87 dBm, just
	// inside the "efficient up to 88 dB" region).
	TargetPRxDBm float64
	// NMax is the transmission cap per contention-won packet (default 5).
	NMax int
	// TransmitProb is the probability a node offers a packet in a
	// superframe (default 1: one packet per node per superframe).
	TransmitProb float64
	// Superframes to simulate (default 20).
	Superframes int
	// BeaconBytes is the beacon's on-air size (default 30, as in core).
	BeaconBytes int
	// MaxPacketSuperframes caps application-level retries before a
	// packet is dropped (default 10).
	MaxPacketSuperframes int
	// LowPowerListen engages the radio's scalable-receiver listen mode
	// during clear channel assessments and acknowledgment waits (§5
	// improvement perspective; only meaningful with a radio whose
	// ListenPower is below RXPower).
	LowPowerListen bool
	// TraceNode, when non-zero, records the radio state/phase timeline
	// of the node with that 1-based index (the Fig. 5 uplink transaction
	// picture); the trace lands in Result.Trace. Zero disables tracing.
	TraceNode int
	// Seed drives the deterministic RNG.
	Seed int64
}

// TraceEvent is one radio state change of the traced node.
type TraceEvent struct {
	At    time.Duration
	State radio.State
	Phase radio.Phase
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 100
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 120
	}
	if c.Superframe == (mac.Superframe{}) {
		sf, err := mac.NewSuperframe(6, 6)
		if err != nil {
			panic(err)
		}
		c.Superframe = sf
	}
	if c.CSMA == (mac.CSMAParams{}) {
		c.CSMA = mac.PaperParams()
	}
	if c.Radio == nil {
		c.Radio = radio.CC2420()
	}
	if c.BER == nil {
		c.BER = phy.Eq1
	}
	if c.Deployment == nil {
		c.Deployment = channel.UniformLoss{MinDB: 55, MaxDB: 95}
	}
	if c.TargetPRxDBm == 0 {
		c.TargetPRxDBm = -87
	}
	if c.NMax == 0 {
		c.NMax = 5
	}
	if c.TransmitProb == 0 {
		c.TransmitProb = 1
	}
	if c.Superframes == 0 {
		c.Superframes = 20
	}
	if c.BeaconBytes == 0 {
		c.BeaconBytes = 30
	}
	if c.MaxPacketSuperframes == 0 {
		c.MaxPacketSuperframes = 10
	}
	return c
}

// Result aggregates the run.
type Result struct {
	Config Config

	// Per-node averages.
	AvgPowerPerNode units.Power
	Ledger          radio.Ledger // aggregate over all nodes

	// Delivery bookkeeping.
	PacketsOffered   int
	PacketsDelivered int
	PacketsDropped   int // exceeded MaxPacketSuperframes
	PacketsExpired   int // still pending at simulation end
	Transmissions    int
	Collisions       int
	AccessFailures   int
	CorruptedFrames  int

	// Derived metrics.
	DeliveryRatio    float64
	PrFailPerAttempt float64 // per-superframe transaction failures
	MeanDelay        time.Duration
	P95Delay         time.Duration

	// Contention statistics measured in situ (comparable to Fig. 6).
	Contention contention.Stats

	// AttemptsHist[i] counts packets delivered on their (i+1)-th
	// transmission within a superframe — the empirical Ptr(i)
	// distribution of eqs. (7)-(8).
	AttemptsHist []int

	// Trace is the state timeline of Config.TraceNode (empty when
	// tracing is disabled).
	Trace []TraceEvent
}

// AttemptsDistribution normalizes AttemptsHist into probabilities.
func (r Result) AttemptsDistribution() []float64 {
	total := 0
	for _, c := range r.AttemptsHist {
		total += c
	}
	if total == 0 {
		return nil
	}
	out := make([]float64, len(r.AttemptsHist))
	for i, c := range r.AttemptsHist {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// String implements fmt.Stringer.
func (r Result) String() string {
	return fmt.Sprintf("netsim: %d nodes, %d superframes: P=%.1fµW delivered=%d/%d (%.1f%%) delay=%v",
		r.Config.Nodes, r.Config.Superframes, r.AvgPowerPerNode.MicroWatts(),
		r.PacketsDelivered, r.PacketsOffered, 100*r.DeliveryRatio, r.MeanDelay.Round(time.Millisecond))
}

// transmission is an interval of medium occupancy, stored by value in the
// medium's active list. Collisions are recorded on the owning node's
// txCollided flag (nil node: beacon or acknowledgment frames, which occupy
// the medium but track no collision state of their own).
type transmission struct {
	start time.Duration
	end   time.Duration
	node  *node // nil for beacon/ack
}

// medium is the single shared broadcast domain (every node hears every
// other: the star topology of Fig. 1a with no hidden terminals).
type medium struct {
	active []transmission
}

// prune drops transmissions that ended before t.
func (m *medium) prune(t time.Duration) {
	keep := m.active[:0]
	for _, tx := range m.active {
		if tx.end > t {
			keep = append(keep, tx)
		}
	}
	m.active = keep
}

// busyWindow reports whether any transmission overlaps [a, b).
func (m *medium) busyWindow(a, b time.Duration) bool {
	for _, tx := range m.active {
		if tx.start < b && tx.end > a {
			return true
		}
	}
	return false
}

// add inserts a transmission, marking collisions among overlaps on the
// participating nodes.
func (m *medium) add(tx transmission) {
	for _, other := range m.active {
		if other.start < tx.end && other.end > tx.start {
			if tx.node != nil {
				tx.node.txCollided = true
			}
			if other.node != nil {
				other.node.txCollided = true
			}
		}
	}
	m.active = append(m.active, tx)
}

// packet is one application payload with delivery bookkeeping.
type packet struct {
	readyAt     time.Duration
	superframes int // application-level attempts
	delivered   bool
}

// node is one sensor node. Nodes live by value in env.nodes (stable
// addresses: the slice is sized once), with their CSMA transaction, packet
// and random stream embedded — a superframe's worth of MAC activity
// allocates nothing per node.
type node struct {
	id    int
	env   *env
	dev   *radio.Device
	rng   engine.RNG
	loss  float64
	level int
	per   float64 // packet corruption probability at the chosen level

	last       time.Duration   // accounting watermark
	txn        mac.Transaction // in-place re-initialized per attempt
	attempts   int
	pkt        packet
	hasPkt     bool
	txCollided bool // current transmission overlapped another
	busy       bool // a MAC exchange (contention/TX/ACK) is in flight
	traced     bool

	// in-situ contention statistics
	contStart time.Duration
}

// env holds the per-run simulation state.
type env struct {
	cfg     Config
	sim     *des.Simulator
	med     medium
	nodes   []node
	tia     time.Duration // idle->RX transition
	tiaTx   time.Duration // idle->TX transition
	tsi     time.Duration // shutdown->idle transition
	tpacket time.Duration
	tbeacon time.Duration
	tack    time.Duration // ack frame duration

	offered, delivered, dropped int
	transmissions, collisions   int
	accessFailures, corrupted   int
	txnFailures, txnTotal       int
	delays                      []float64
	attemptsHist                []int
	trace                       []TraceEvent
	contDur, contCCA            stats.Accumulator
	contCF, contCol             stats.Proportion
}

// advance accrues dwell time in the node's current radio state up to t.
func (n *node) advance(t time.Duration) {
	if t > n.last {
		n.dev.Stay(t - n.last)
		n.last = t
	}
}

// transition changes radio state, advancing the watermark by the
// transition time and recording the trace when enabled.
func (n *node) transition(s radio.State) {
	n.last += n.dev.TransitionTo(s)
	if n.traced {
		n.env.trace = append(n.env.trace, TraceEvent{
			At:    n.last,
			State: s,
			Phase: n.dev.Phase(),
		})
	}
}

// slotAfter returns the first CSMA slot boundary at or after t. The grid
// is global: beacon intervals are exact multiples of the backoff period.
func (e *env) slotAfter(t time.Duration) time.Duration {
	slots := (t + phy.UnitBackoffPeriod - 1) / phy.UnitBackoffPeriod
	return slots * phy.UnitBackoffPeriod
}
