package netsim

import (
	"context"
	"reflect"
	"testing"

	"dense802154/internal/channel"
)

// resultsEqual compares two Results field by field; Trace and AttemptsHist
// are owned copies, so deep equality is the right notion.
func resultsEqual(a, b Result) bool {
	return reflect.DeepEqual(a, b)
}

// TestRunnerRecycleBitIdentity is the recycling contract: a Runner reused
// across runs — including runs under a different configuration in between —
// must reproduce a fresh runner's results bit for bit. Pooled state leaking
// across runs (an unreset ledger, a stale medium entry, a reused RNG
// stream) breaks this immediately.
func TestRunnerRecycleBitIdentity(t *testing.T) {
	cfgA := Config{Nodes: 30, Superframes: 3, Seed: 11}
	cfgB := Config{
		Nodes: 12, Superframes: 2, Seed: 5, PayloadBytes: 40,
		Deployment:     channel.UniformLoss{MinDB: 60, MaxDB: 80},
		LowPowerListen: true,
	}

	fresh := NewRunner().Run(cfgA)
	freshB := NewRunner().Run(cfgB)

	r := NewRunner()
	// Interleave configurations so the arena is recycled across different
	// population sizes, radios and superframe counts.
	for i := 0; i < 3; i++ {
		if got := r.Run(cfgA); !resultsEqual(got, fresh) {
			t.Fatalf("recycled run %d of cfgA diverges from fresh run:\n%v\n%v", i, got, fresh)
		}
		if got := r.Run(cfgB); !resultsEqual(got, freshB) {
			t.Fatalf("recycled run %d of cfgB diverges from fresh run:\n%v\n%v", i, got, freshB)
		}
	}

	// The pooled package-level Run must agree too.
	if got := Run(cfgA); !resultsEqual(got, fresh) {
		t.Fatalf("pooled Run diverges from fresh runner:\n%v\n%v", got, fresh)
	}
}

// TestRunnerShrinkingPopulation recycles an arena from a large run into a
// small one: node, histogram and medium storage sized for the big run must
// not bleed into the small run's results.
func TestRunnerShrinkingPopulation(t *testing.T) {
	big := Config{Nodes: 80, Superframes: 2, Seed: 3}
	small := Config{Nodes: 5, Superframes: 2, Seed: 3, NMax: 2}

	want := NewRunner().Run(small)
	r := NewRunner()
	r.Run(big)
	if got := r.Run(small); !resultsEqual(got, want) {
		t.Fatalf("small run after big run diverges:\n%v\n%v", got, want)
	}
	if len(want.AttemptsHist) != 2 {
		t.Fatalf("AttemptsHist length = %d, want NMax = 2", len(want.AttemptsHist))
	}
}

// TestRunnerTraceIsolation ensures a returned trace does not alias the
// recycled arena: a later run on the same runner must not mutate it.
func TestRunnerTraceIsolation(t *testing.T) {
	cfg := Config{Nodes: 8, Superframes: 2, Seed: 9, TraceNode: 1}
	r := NewRunner()
	first := r.Run(cfg)
	if len(first.Trace) == 0 {
		t.Fatal("traced run returned no trace events")
	}
	snapshot := append([]TraceEvent(nil), first.Trace...)
	c2 := cfg
	c2.Seed = 10
	r.Run(c2)
	if !reflect.DeepEqual(first.Trace, snapshot) {
		t.Fatal("recycling the runner mutated a previously returned trace")
	}
}

// TestRunReplicasRecycledEqualsFresh pins the replica sweep contract end to
// end: results at Workers=1 equal results at Workers=N, and both equal
// fresh unpooled runs of each replica seed.
func TestRunReplicasRecycledEqualsFresh(t *testing.T) {
	cfg := Config{Nodes: 25, Superframes: 3, Seed: 21}
	const n = 5
	serial, err := RunReplicas(context.Background(), cfg, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunReplicas(context.Background(), cfg, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("replica sets differ between worker counts:\n%v\n%v", serial, parallel)
	}
	seeds := ReplicaSeeds(cfg.Seed, n)
	for i, s := range seeds {
		c := cfg
		c.Seed = s
		if want := NewRunner().Run(c); !resultsEqual(serial.Results[i], want) {
			t.Fatalf("replica %d diverges from a fresh unpooled run", i)
		}
	}
}
