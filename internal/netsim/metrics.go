package netsim

import "dense802154/internal/telemetry"

// Package-level run telemetry. The hot loops count into plain int fields on
// the runner-local env (zero cost beyond the increment); foldRunMetrics
// moves the totals into these shared atomics exactly once per Run, so the
// per-run allocation budget (~6 allocs per pooled run) is untouched and the
// atomics never sit on a per-event path.
var (
	runsTotal          telemetry.Counter
	eventsTotal        telemetry.Counter
	ccaTotal           telemetry.Counter
	backoffsTotal      telemetry.Counter
	pruneFallbackTotal telemetry.Counter
	heapDepthMax       telemetry.MaxGauge
)

// RegisterMetrics exposes the simulator's process-wide run counters in r:
//
//	wsn_netsim_runs_total                  counter  completed simulation runs
//	wsn_netsim_events_total                counter  DES events dispatched
//	wsn_netsim_cca_attempts_total          counter  clear channel assessments
//	wsn_netsim_backoffs_total              counter  CSMA/CA backoff draws
//	wsn_netsim_prune_fallback_total        counter  out-of-order medium queries
//	                                                that fell back to a full scan
//	wsn_netsim_heap_depth_max              gauge    deepest event heap across runs
//
// The counters are owned by this package and shared by every registry they
// are registered into, so multiple servers in one process scrape one truth.
func RegisterMetrics(r *telemetry.Registry) {
	r.RegisterCounter("wsn_netsim_runs_total", "Completed network simulation runs.", &runsTotal)
	r.RegisterCounter("wsn_netsim_events_total", "Discrete events dispatched across all runs.", &eventsTotal)
	r.RegisterCounter("wsn_netsim_cca_attempts_total", "Clear channel assessments performed across all runs.", &ccaTotal)
	r.RegisterCounter("wsn_netsim_backoffs_total", "CSMA/CA backoff draws across all runs.", &backoffsTotal)
	r.RegisterCounter("wsn_netsim_prune_fallback_total", "Out-of-order medium queries that fell back to a full active-set scan.", &pruneFallbackTotal)
	r.RegisterMaxGauge("wsn_netsim_heap_depth_max", "Deepest the DES event heap has grown in any run.", &heapDepthMax)
}

// foldRunMetrics folds one finished run's local counters into the shared
// totals: six atomic adds, no allocation.
func foldRunMetrics(e *env) {
	runsTotal.Inc()
	eventsTotal.Add(e.sim.Fired())
	ccaTotal.Add(uint64(e.ccaAttempts))
	backoffsTotal.Add(uint64(e.backoffs))
	pruneFallbackTotal.Add(uint64(e.med.fallbacks))
	heapDepthMax.Observe(int64(e.sim.MaxHeapDepth()))
}
