package netsim

import (
	"context"
	"math"
	"testing"
	"time"

	"dense802154/internal/channel"
)

func replicaTestConfig() Config {
	return Config{Nodes: 20, Superframes: 4, Seed: 7}
}

func TestRunReplicasFirstReplicaMatchesRun(t *testing.T) {
	cfg := replicaTestConfig()
	rs, err := RunReplicas(context.Background(), cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	direct := Run(cfg)
	if rs.Results[0].AvgPowerPerNode != direct.AvgPowerPerNode ||
		rs.Results[0].PacketsDelivered != direct.PacketsDelivered {
		t.Fatalf("replica 0 diverges from Run at the base seed:\n%v\n%v",
			rs.Results[0], direct)
	}
	if rs.Seeds[0] != cfg.Seed {
		t.Fatalf("seed[0] = %d, want base %d", rs.Seeds[0], cfg.Seed)
	}
}

func TestRunReplicasWorkerCountIndependent(t *testing.T) {
	cfg := replicaTestConfig()
	serial, err := RunReplicas(context.Background(), cfg, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunReplicas(context.Background(), cfg, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if serial.AvgPowerUW != parallel.AvgPowerUW ||
		serial.DeliveryRatio != parallel.DeliveryRatio ||
		serial.PrCF != parallel.PrCF {
		t.Fatalf("replica statistics depend on worker count:\n1 worker: %v\n4 workers: %v",
			serial, parallel)
	}
	for i := range serial.Results {
		if serial.Results[i].AvgPowerPerNode != parallel.Results[i].AvgPowerPerNode {
			t.Fatalf("replica %d differs between worker counts", i)
		}
	}
}

func TestRunReplicasPrefixStability(t *testing.T) {
	// Growing the replica count must not change the replicas already
	// computed: seeds depend only on (base, index).
	cfg := replicaTestConfig()
	small, err := RunReplicas(context.Background(), cfg, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	large, err := RunReplicas(context.Background(), cfg, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range small.Results {
		if small.Seeds[i] != large.Seeds[i] {
			t.Fatalf("seed %d changed with replica count", i)
		}
		if small.Results[i].DeliveryRatio != large.Results[i].DeliveryRatio {
			t.Fatalf("replica %d changed with replica count", i)
		}
	}
}

func TestRunReplicasStatistics(t *testing.T) {
	rs, err := RunReplicas(context.Background(), replicaTestConfig(), 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Replicas != 5 || len(rs.Results) != 5 || len(rs.Seeds) != 5 {
		t.Fatalf("shape: %d replicas, %d results, %d seeds", rs.Replicas, len(rs.Results), len(rs.Seeds))
	}
	if rs.AvgPowerUW.Mean <= 0 {
		t.Fatalf("mean power %v not positive", rs.AvgPowerUW)
	}
	if rs.DeliveryRatio.Mean <= 0 || rs.DeliveryRatio.Mean > 1 {
		t.Fatalf("delivery ratio %v outside (0,1]", rs.DeliveryRatio)
	}
	if rs.AvgPowerUW.Min > rs.AvgPowerUW.Mean || rs.AvgPowerUW.Max < rs.AvgPowerUW.Mean {
		t.Fatalf("mean outside [min,max]: %+v", rs.AvgPowerUW)
	}
	if rs.AvgPowerUW.CI95 < 0 {
		t.Fatalf("negative CI: %+v", rs.AvgPowerUW)
	}
}

func TestRunReplicasCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := replicaTestConfig()
	cfg.Superframes = 50
	done := make(chan error, 1)
	go func() {
		_, err := RunReplicas(ctx, cfg, 64, 1)
		done <- err
	}()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunReplicas did not honor cancellation")
	}
}

// TestRunReplicasSingleReplica pins the degenerate statistics contract:
// one replica yields zero-width confidence intervals — not NaN — with mean,
// min and max all equal to the single observation.
func TestRunReplicasSingleReplica(t *testing.T) {
	cfg := Config{Nodes: 5, Superframes: 3, Seed: 9}
	rs, err := RunReplicas(context.Background(), cfg, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Replicas != 1 || len(rs.Results) != 1 {
		t.Fatalf("replicas = %d, results = %d", rs.Replicas, len(rs.Results))
	}
	stats := map[string]ReplicaStat{
		"power":    rs.AvgPowerUW,
		"delivery": rs.DeliveryRatio,
		"prfail":   rs.PrFail,
		"prcf":     rs.PrCF,
		"prcol":    rs.PrCol,
		"ncca":     rs.NCCA,
		"tcont":    rs.TcontMS,
		"delay":    rs.MeanDelayMS,
	}
	for name, s := range stats {
		if math.IsNaN(s.Mean) || math.IsNaN(s.CI95) {
			t.Errorf("%s: NaN statistic %+v", name, s)
		}
		if s.CI95 != 0 {
			t.Errorf("%s: single replica must have zero-width CI, got %v", name, s.CI95)
		}
		if s.Mean != s.Min || s.Mean != s.Max {
			t.Errorf("%s: mean %v outside min/max %v/%v", name, s.Mean, s.Min, s.Max)
		}
	}
}

// TestRunReplicasClampsNonPositiveN: n ≤ 0 clamps to one replica instead of
// producing an empty (all-NaN) set.
func TestRunReplicasClampsNonPositiveN(t *testing.T) {
	cfg := Config{Nodes: 3, Superframes: 2, Seed: 9}
	for _, n := range []int{0, -5} {
		rs, err := RunReplicas(context.Background(), cfg, n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if rs.Replicas != 1 || len(rs.Results) != 1 {
			t.Errorf("n=%d: replicas = %d, results = %d", n, rs.Replicas, len(rs.Results))
		}
		if math.IsNaN(rs.AvgPowerUW.Mean) || rs.AvgPowerUW.Mean <= 0 {
			t.Errorf("n=%d: power stat %+v", n, rs.AvgPowerUW)
		}
	}
}

// TestNoDeliveriesNoNaN: a simulation where nothing is ever delivered (all
// nodes far out of range) reports zero delays and ratios, not NaN — the
// stats.Percentile empty-input path.
func TestNoDeliveriesNoNaN(t *testing.T) {
	cfg := Config{
		Nodes: 3, Superframes: 3, Seed: 9,
		Deployment: channel.UniformLoss{MinDB: 140, MaxDB: 150},
	}
	r := Run(cfg)
	if r.PacketsDelivered != 0 {
		t.Skipf("unexpected delivery at 140+ dB loss: %d", r.PacketsDelivered)
	}
	if r.MeanDelay != 0 || r.P95Delay != 0 {
		t.Errorf("undelivered run reports delays %v/%v", r.MeanDelay, r.P95Delay)
	}
	if math.IsNaN(r.DeliveryRatio) || math.IsNaN(r.PrFailPerAttempt) {
		t.Errorf("undelivered run reports NaN ratios: %+v", r)
	}
}
