package netsim

import (
	"context"
	"testing"
	"time"
)

func replicaTestConfig() Config {
	return Config{Nodes: 20, Superframes: 4, Seed: 7}
}

func TestRunReplicasFirstReplicaMatchesRun(t *testing.T) {
	cfg := replicaTestConfig()
	rs, err := RunReplicas(context.Background(), cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	direct := Run(cfg)
	if rs.Results[0].AvgPowerPerNode != direct.AvgPowerPerNode ||
		rs.Results[0].PacketsDelivered != direct.PacketsDelivered {
		t.Fatalf("replica 0 diverges from Run at the base seed:\n%v\n%v",
			rs.Results[0], direct)
	}
	if rs.Seeds[0] != cfg.Seed {
		t.Fatalf("seed[0] = %d, want base %d", rs.Seeds[0], cfg.Seed)
	}
}

func TestRunReplicasWorkerCountIndependent(t *testing.T) {
	cfg := replicaTestConfig()
	serial, err := RunReplicas(context.Background(), cfg, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunReplicas(context.Background(), cfg, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if serial.AvgPowerUW != parallel.AvgPowerUW ||
		serial.DeliveryRatio != parallel.DeliveryRatio ||
		serial.PrCF != parallel.PrCF {
		t.Fatalf("replica statistics depend on worker count:\n1 worker: %v\n4 workers: %v",
			serial, parallel)
	}
	for i := range serial.Results {
		if serial.Results[i].AvgPowerPerNode != parallel.Results[i].AvgPowerPerNode {
			t.Fatalf("replica %d differs between worker counts", i)
		}
	}
}

func TestRunReplicasPrefixStability(t *testing.T) {
	// Growing the replica count must not change the replicas already
	// computed: seeds depend only on (base, index).
	cfg := replicaTestConfig()
	small, err := RunReplicas(context.Background(), cfg, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	large, err := RunReplicas(context.Background(), cfg, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range small.Results {
		if small.Seeds[i] != large.Seeds[i] {
			t.Fatalf("seed %d changed with replica count", i)
		}
		if small.Results[i].DeliveryRatio != large.Results[i].DeliveryRatio {
			t.Fatalf("replica %d changed with replica count", i)
		}
	}
}

func TestRunReplicasStatistics(t *testing.T) {
	rs, err := RunReplicas(context.Background(), replicaTestConfig(), 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Replicas != 5 || len(rs.Results) != 5 || len(rs.Seeds) != 5 {
		t.Fatalf("shape: %d replicas, %d results, %d seeds", rs.Replicas, len(rs.Results), len(rs.Seeds))
	}
	if rs.AvgPowerUW.Mean <= 0 {
		t.Fatalf("mean power %v not positive", rs.AvgPowerUW)
	}
	if rs.DeliveryRatio.Mean <= 0 || rs.DeliveryRatio.Mean > 1 {
		t.Fatalf("delivery ratio %v outside (0,1]", rs.DeliveryRatio)
	}
	if rs.AvgPowerUW.Min > rs.AvgPowerUW.Mean || rs.AvgPowerUW.Max < rs.AvgPowerUW.Mean {
		t.Fatalf("mean outside [min,max]: %+v", rs.AvgPowerUW)
	}
	if rs.AvgPowerUW.CI95 < 0 {
		t.Fatalf("negative CI: %+v", rs.AvgPowerUW)
	}
}

func TestRunReplicasCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := replicaTestConfig()
	cfg.Superframes = 50
	done := make(chan error, 1)
	go func() {
		_, err := RunReplicas(ctx, cfg, 64, 1)
		done <- err
	}()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunReplicas did not honor cancellation")
	}
}
