package netsim

import (
	"math"
	"testing"

	"dense802154/internal/channel"
	"dense802154/internal/radio"
)

func TestAttemptsDistributionShape(t *testing.T) {
	// The empirical Ptr(i) of eqs. (7)-(8): most packets succeed on the
	// first transmission, with a decaying tail of retries.
	r := Run(Config{Nodes: 100, Superframes: 20, Seed: 21})
	dist := r.AttemptsDistribution()
	if len(dist) != r.Config.NMax {
		t.Fatalf("distribution length %d, want NMax=%d", len(dist), r.Config.NMax)
	}
	sum := 0.0
	for _, p := range dist {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("distribution sums to %v", sum)
	}
	if dist[0] < 0.5 {
		t.Errorf("first-attempt success %v, want majority", dist[0])
	}
	// Weakly decreasing tail (allow noise on the last bins).
	if dist[1] > dist[0] {
		t.Errorf("retry mass %v exceeds first-attempt mass %v", dist[1], dist[0])
	}
	t.Logf("empirical Ptr(i): %v", dist)
}

func TestAttemptsDistributionRoughlyGeometric(t *testing.T) {
	// Eq. (7): Ptr(i) = p^(i-1)(1-p). Estimate p from the first bin and
	// check the second bin against the geometric prediction. The
	// simulator's retry correlation (colliders retry in lockstep) makes
	// the tail heavier, so the tolerance is loose.
	r := Run(Config{Nodes: 100, Superframes: 30, Seed: 22})
	dist := r.AttemptsDistribution()
	p := 1 - dist[0]
	if p <= 0 || p >= 1 {
		t.Skipf("degenerate retry probability %v", p)
	}
	predicted2 := p * dist[0] / (1 - math.Pow(p, float64(len(dist)))) // renormalized
	if dist[1] < predicted2/4 || dist[1] > predicted2*4 {
		t.Errorf("Ptr(2) = %v vs geometric prediction %v: off by >4x", dist[1], predicted2)
	}
	t.Logf("retry probability p=%.3f, Ptr(2) empirical %.4f vs geometric %.4f", p, dist[1], predicted2)
}

func TestAttemptsDistributionEmpty(t *testing.T) {
	var r Result
	if r.AttemptsDistribution() != nil {
		t.Fatal("empty result must yield nil distribution")
	}
}

func TestLowPowerListenSavesEnergy(t *testing.T) {
	scalable := radio.CC2420().WithScalableReceiver(0.5)
	base := Run(Config{Nodes: 50, Superframes: 10, Seed: 23, Radio: scalable})
	lp := Run(Config{Nodes: 50, Superframes: 10, Seed: 23, Radio: scalable, LowPowerListen: true})
	if lp.AvgPowerPerNode >= base.AvgPowerPerNode {
		t.Fatalf("low-power listen %v not below full listen %v",
			lp.AvgPowerPerNode, base.AvgPowerPerNode)
	}
	// The saving must come from contention and ack phases only.
	if lp.Ledger.ByPhase[radio.PhaseContention] >= base.Ledger.ByPhase[radio.PhaseContention] {
		t.Error("contention energy did not shrink")
	}
	if lp.Ledger.ByPhase[radio.PhaseAck] >= base.Ledger.ByPhase[radio.PhaseAck] {
		t.Error("ack energy did not shrink")
	}
	if lp.Ledger.ByPhase[radio.PhaseBeacon] != base.Ledger.ByPhase[radio.PhaseBeacon] {
		t.Error("beacon energy must be untouched by the listen mode")
	}
	// Delivery statistics are identical: the listen mode changes power,
	// not protocol behaviour.
	if lp.PacketsDelivered != base.PacketsDelivered || lp.Collisions != base.Collisions {
		t.Error("listen mode altered protocol behaviour")
	}
}

func TestLowPowerListenOnStockRadioIsNeutral(t *testing.T) {
	// The stock CC2420 has ListenPower == RXPower: engaging the flag must
	// change nothing.
	base := Run(Config{Nodes: 20, Superframes: 5, Seed: 24})
	lp := Run(Config{Nodes: 20, Superframes: 5, Seed: 24, LowPowerListen: true})
	if lp.AvgPowerPerNode != base.AvgPowerPerNode {
		t.Fatalf("listen flag changed power on stock radio: %v vs %v",
			lp.AvgPowerPerNode, base.AvgPowerPerNode)
	}
}

func TestScalableReceiverSimVsModelDirection(t *testing.T) {
	// End-to-end check of the §5 second improvement in the simulator: a
	// scalable receiver at listen ×0.5 should save roughly 10-20% (the
	// model says 15.8%).
	dep := channel.UniformLoss{MinDB: 55, MaxDB: 95}
	base := Run(Config{Nodes: 100, Superframes: 15, Seed: 25, Deployment: dep})
	lp := Run(Config{Nodes: 100, Superframes: 15, Seed: 25, Deployment: dep,
		Radio: radio.CC2420().WithScalableReceiver(0.5), LowPowerListen: true})
	saving := 1 - float64(lp.AvgPowerPerNode)/float64(base.AvgPowerPerNode)
	if saving < 0.05 || saving > 0.30 {
		t.Fatalf("simulated scalable-receiver saving = %.1f%%, want ≈10-20%%", saving*100)
	}
	t.Logf("simulated scalable-receiver saving: %.1f%% (model: 15.8%%, paper: 15%%)", saving*100)
}
