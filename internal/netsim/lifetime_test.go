package netsim

import (
	"reflect"
	"testing"
	"time"
)

func epochTestConfig() Config {
	return Config{Nodes: 12, Superframes: 6, Seed: 77}
}

// RunEpoch at epoch 0 with everyone alive and no budgets is the plain run:
// same traffic streams, same arena path, bit-identical Result. This is the
// invariant that lets lifetime runs share every netsim golden.
func TestRunEpochZeroMatchesRun(t *testing.T) {
	cfg := epochTestConfig()
	plain := Run(cfg)
	er := RunEpoch(cfg, EpochSpec{Epoch: 0})
	if !reflect.DeepEqual(plain, er.Result) {
		t.Fatalf("epoch-0 RunEpoch diverged from Run:\nplain: %+v\nepoch: %+v", plain, er.Result)
	}
	if len(er.Deaths) != 0 {
		t.Fatalf("unbudgeted epoch recorded %d deaths", len(er.Deaths))
	}
	n := cfg.withDefaults().Nodes
	if len(er.EnergyJ) != n {
		t.Fatalf("EnergyJ length %d, want %d", len(er.EnergyJ), n)
	}
	var total float64
	for _, e := range er.EnergyJ {
		if e <= 0 {
			t.Fatal("alive node with non-positive epoch energy")
		}
		total += e
	}
	if agg := float64(plain.Ledger.TotalEnergy()); total < agg*0.999 || total > agg*1.001 {
		t.Fatalf("per-node energy sums to %v J, aggregate ledger says %v J", total, agg)
	}
}

// Later epochs re-root the traffic streams: same deployment, fresh
// randomness, still deterministic per (seed, epoch).
func TestRunEpochReroot(t *testing.T) {
	cfg := epochTestConfig()
	e0 := RunEpoch(cfg, EpochSpec{Epoch: 0})
	e1 := RunEpoch(cfg, EpochSpec{Epoch: 1})
	e1again := RunEpoch(cfg, EpochSpec{Epoch: 1})
	if !reflect.DeepEqual(e1, e1again) {
		t.Fatal("epoch 1 is not deterministic")
	}
	if reflect.DeepEqual(e0.Result, e1.Result) {
		t.Fatal("epoch 1 reused epoch 0 traffic streams")
	}
}

// Exhausted budgets kill at beacon granularity: the mask flips in place,
// deaths arrive in time order, and a dead node's epoch energy is exactly
// the budget it had left.
func TestRunEpochBudgetKills(t *testing.T) {
	cfg := epochTestConfig()
	n := cfg.withDefaults().Nodes

	alive := make([]bool, n)
	budget := make([]float64, n)
	for i := range alive {
		alive[i] = true
		budget[i] = 1e-5 // microscopic: everyone dies at the second beacon
	}
	er := RunEpoch(cfg, EpochSpec{Epoch: 0, Alive: alive, BudgetJ: budget})
	if len(er.Deaths) != n {
		t.Fatalf("%d deaths, want the whole population (%d)", len(er.Deaths), n)
	}
	var last time.Duration
	for _, d := range er.Deaths {
		if d.At < last {
			t.Fatal("deaths out of time order")
		}
		last = d.At
		if alive[d.Node] {
			t.Fatalf("node %d died but mask still alive", d.Node)
		}
		if er.EnergyJ[d.Node] != budget[d.Node] {
			t.Fatalf("dead node %d energy %v, want its budget %v", d.Node, er.EnergyJ[d.Node], budget[d.Node])
		}
	}
}

// Nodes dead at entry never wake: zero energy, no traffic, and the
// survivors' run is deterministic under the shrunken contention population.
func TestRunEpochDeadAtEntry(t *testing.T) {
	cfg := epochTestConfig()
	n := cfg.withDefaults().Nodes

	mask := func() []bool {
		m := make([]bool, n)
		for i := range m {
			m[i] = i%2 == 0
		}
		return m
	}
	a, b := mask(), mask()
	r1 := RunEpoch(cfg, EpochSpec{Epoch: 0, Alive: a})
	r2 := RunEpoch(cfg, EpochSpec{Epoch: 0, Alive: b})
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("masked epoch is not deterministic")
	}
	for i := 0; i < n; i++ {
		if i%2 == 1 && r1.EnergyJ[i] != 0 {
			t.Fatalf("dead node %d accrued %v J", i, r1.EnergyJ[i])
		}
		if i%2 == 0 && r1.EnergyJ[i] <= 0 {
			t.Fatalf("alive node %d accrued no energy", i)
		}
	}
	full := RunEpoch(cfg, EpochSpec{Epoch: 0})
	if full.Result.PacketsOffered <= r1.Result.PacketsOffered {
		t.Fatal("halving the population did not reduce offered traffic")
	}
}
