package netsim

import (
	"context"
	"fmt"
	"time"

	"dense802154/internal/engine"
	"dense802154/internal/stats"
)

// ReplicaStat is the across-replica summary of one scalar: sample mean,
// normal-approximation 95% confidence half-width, and the observed range.
type ReplicaStat struct {
	Mean, CI95, Min, Max float64
}

// String implements fmt.Stringer.
func (s ReplicaStat) String() string {
	return fmt.Sprintf("%.4g ±%.2g", s.Mean, s.CI95)
}

// accumulate folds observations into a ReplicaStat.
func accumulate(xs []float64) ReplicaStat {
	var a stats.Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	return ReplicaStat{Mean: a.Mean(), CI95: a.CI95(), Min: a.Min(), Max: a.Max()}
}

// ReplicaSet is the merged outcome of n independent replications of one
// simulation configuration: the per-replica results (in replica order, each
// under its own derived seed) and the across-replica statistics of the
// headline metrics.
type ReplicaSet struct {
	Config   Config
	Replicas int
	Seeds    []int64
	Results  []Result

	AvgPowerUW    ReplicaStat // per-node average power [µW]
	DeliveryRatio ReplicaStat
	PrFail        ReplicaStat // per-attempt transaction failure
	PrCF          ReplicaStat // contention access failure
	PrCol         ReplicaStat // residual collision probability
	NCCA          ReplicaStat // mean CCAs per contention procedure
	TcontMS       ReplicaStat // mean contention duration [ms]
	MeanDelayMS   ReplicaStat // mean delivery delay [ms]
}

// String implements fmt.Stringer with the headline across-replica means.
func (rs ReplicaSet) String() string {
	return fmt.Sprintf("netsim replicas: n=%d power=%.1f µW (±%.1f) delivery=%.3f (±%.3f) Prcf=%.3f (±%.3f)",
		rs.Replicas, rs.AvgPowerUW.Mean, rs.AvgPowerUW.CI95,
		rs.DeliveryRatio.Mean, rs.DeliveryRatio.CI95,
		rs.PrCF.Mean, rs.PrCF.CI95)
}

// ReplicaSeeds derives the n replica seeds from a base seed. Replica 0
// keeps the base seed — a 1-replica run is bit-identical to Run(cfg) — and
// the rest use engine.DeriveSeed, so any replica count reuses the same
// streams: growing n refines the confidence intervals without changing the
// replicas already computed.
func ReplicaSeeds(base int64, n int) []int64 {
	seeds := make([]int64, n)
	if n == 0 {
		return seeds
	}
	seeds[0] = base
	for i := 1; i < n; i++ {
		seeds[i] = engine.DeriveSeed(base, int64(i))
	}
	return seeds
}

// RunReplicas executes n independent replications of cfg concurrently on a
// pool of workers goroutines (0 ⇒ runtime.NumCPU()) and merges them into
// across-replica mean and 95% confidence statistics. Replica i runs with
// ReplicaSeeds(cfg.Seed, n)[i]; results are bit-identical at any worker
// count. A canceled ctx stops the batch promptly with ctx.Err().
func RunReplicas(ctx context.Context, cfg Config, n, workers int) (ReplicaSet, error) {
	if n < 1 {
		n = 1
	}
	seeds := ReplicaSeeds(cfg.Seed, n)
	results, err := engine.MapSlice(ctx, workers, seeds,
		func(i int, s int64) (Result, error) {
			c := cfg
			c.Seed = s
			return Run(c), nil
		})
	if err != nil {
		return ReplicaSet{}, err
	}
	return Merge(cfg, seeds, results), nil
}

// Merge folds already-computed replica results (results[i] run under
// seeds[i]) into a ReplicaSet with the across-replica statistics RunReplicas
// reports. It is the assembly half of RunReplicas, split out so callers that
// schedule the replicas themselves (the unified query planner streams them
// one by one) produce a ReplicaSet bit-identical to RunReplicas.
func Merge(cfg Config, seeds []int64, results []Result) ReplicaSet {
	n := len(results)
	rs := ReplicaSet{Config: cfg, Replicas: n, Seeds: seeds, Results: results}
	obs := func(f func(Result) float64) ReplicaStat {
		xs := make([]float64, n)
		for i, r := range results {
			xs[i] = f(r)
		}
		return accumulate(xs)
	}
	rs.AvgPowerUW = obs(func(r Result) float64 { return r.AvgPowerPerNode.MicroWatts() })
	rs.DeliveryRatio = obs(func(r Result) float64 { return r.DeliveryRatio })
	rs.PrFail = obs(func(r Result) float64 { return r.PrFailPerAttempt })
	rs.PrCF = obs(func(r Result) float64 { return r.Contention.PrCF })
	rs.PrCol = obs(func(r Result) float64 { return r.Contention.PrCol })
	rs.NCCA = obs(func(r Result) float64 { return r.Contention.NCCA })
	rs.TcontMS = obs(func(r Result) float64 {
		return float64(r.Contention.Tcont) / float64(time.Millisecond)
	})
	rs.MeanDelayMS = obs(func(r Result) float64 {
		return float64(r.MeanDelay) / float64(time.Millisecond)
	})
	return rs
}
