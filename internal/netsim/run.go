package netsim

import (
	"math/rand"
	"sync"
	"time"

	"dense802154/internal/channel"
	"dense802154/internal/contention"
	"dense802154/internal/engine"
	"dense802154/internal/frame"
	"dense802154/internal/mac"
	"dense802154/internal/phy"
	"dense802154/internal/radio"
	"dense802154/internal/stats"
	"dense802154/internal/units"
)

// Event kinds of the typed dispatch scheme: every scheduled event is a
// (kind, node, instant) triple, so the des kernel never stores a per-event
// closure. The instant payload is the event's protocol time (a slot
// boundary, a transmission end), which often differs from the firing time —
// CCA events, for instance, fire one idle→RX turnaround before the boundary
// they assess.
const (
	evBeacon int32 = iota // actor -1, arg = beacon instant
	evBeginContention
	evDoCCA
	evTransmit
	evFinishTx
	evAckReceived
	evAckTimeout
)

// dispatchEvent routes typed events to the model handlers (des.Dispatcher).
func (e *env) dispatchEvent(kind, actor int32, arg time.Duration) {
	if kind == evBeacon {
		e.beacon(arg)
		return
	}
	n := &e.nodes[actor]
	switch kind {
	case evBeginContention:
		n.beginContention(arg)
	case evDoCCA:
		n.doCCA(arg)
	case evTransmit:
		n.transmit(arg)
	case evFinishTx:
		n.finishTransmit(arg)
	case evAckReceived:
		n.ackReceived(arg)
	case evAckTimeout:
		n.ackTimeout(arg)
	}
}

// Runner is a reusable simulation arena: the des event storage, the medium
// index, the node population (radio devices included) and the bookkeeping
// slices all persist across runs, so a recycled Run performs only a handful
// of allocations instead of the ~1.5 per node a cold start pays. A Runner
// is not safe for concurrent use; give each worker goroutine its own (or go
// through Run, which recycles Runners from an internal sync.Pool).
//
// Recycling is behavior-free by construction: every random stream is a pure
// function of (Config.Seed, node index), and reset restores all mutable
// state, so NewRunner().Run(cfg) and an arbitrarily reused runner.Run(cfg)
// return bit-identical Results.
type Runner struct {
	e env
	// setupRNG re-seeds per run for deployment sampling — the one cold
	// path needing the full math/rand API (see Run's population comment).
	setupRNG *rand.Rand
}

// NewRunner returns an empty arena. Storage grows to the largest Config the
// Runner has executed and is reused from there on.
func NewRunner() *Runner {
	return &Runner{setupRNG: rand.New(rand.NewSource(1))}
}

// runnerPool recycles arenas across Run calls. Pooled state is fully reset
// per run, so pooling is invisible in results; it only removes the per-run
// setup allocations under replica-style workloads.
var runnerPool = sync.Pool{New: func() any { return NewRunner() }}

// Run executes the simulation and aggregates the results. It draws a
// recycled arena from an internal pool; the returned Result shares no
// memory with it.
func Run(cfg Config) Result {
	r := runnerPool.Get().(*Runner)
	res := r.Run(cfg)
	runnerPool.Put(r)
	return res
}

// Run executes one simulation on the recycled arena.
func (r *Runner) Run(cfg Config) Result {
	return r.run(cfg, nil)
}

// run is the shared body of Run and RunEpoch. A nil spec is a plain run; a
// non-nil spec installs the epoch's alive mask and per-node energy budgets
// and (for Epoch > 0) re-roots the traffic streams so successive epochs
// draw fresh randomness while the deployment — and so node identity —
// stays fixed by cfg.Seed.
func (r *Runner) run(cfg Config, spec *EpochSpec) Result {
	cfg = cfg.withDefaults()
	e := &r.e
	e.reset(cfg)
	if spec != nil {
		e.alive = spec.Alive
		e.budgetJ = spec.BudgetJ
	}
	tr, _ := cfg.Radio.Transition(radio.Idle, radio.RX)
	e.tia = tr.Duration
	tr, _ = cfg.Radio.Transition(radio.Idle, radio.TX)
	e.tiaTx = tr.Duration
	tr, _ = cfg.Radio.Transition(radio.Shutdown, radio.Idle)
	e.tsi = tr.Duration
	e.tpacket = frame.PaperPacketDuration(cfg.PayloadBytes)
	e.tbeacon = phy.TxDuration(cfg.BeaconBytes)
	e.tack = frame.AckDuration

	// Build the population. Deployment sampling is the one cold path that
	// needs the full math/rand API, so the run seed's stream is upgraded
	// through a re-seeded rand.Rand here; the per-node hot-path streams are
	// value-embedded engine.RNGs. Node streams derive from a
	// domain-separated root (DeriveSeed(seed, -1)) rather than cfg.Seed
	// directly, so they can never collide with the contention package's
	// shard streams DeriveSeed(seed, shard) when both models run a
	// cross-validation study off one seed.
	r.setupRNG.Seed(cfg.Seed + 1)
	nodeRoot := engine.DeriveSeed(cfg.Seed, -1)
	if spec != nil && spec.Epoch > 0 {
		// Later epochs re-root the per-node traffic streams under a second
		// domain (-2) so no epoch root can collide with a node stream of the
		// -1 domain; epoch 0 keeps the plain root, so RunEpoch at epoch 0
		// with everyone alive is bit-identical to Run.
		nodeRoot = engine.DeriveSeed(engine.DeriveSeed(cfg.Seed, -2), int64(spec.Epoch))
	}
	for i := range e.nodes {
		loss := cfg.Deployment.Sample(r.setupRNG)
		level, _ := cfg.Radio.LevelIndexFor(cfg.TargetPRxDBm + loss)
		prx := channel.ReceivedPowerDBm(cfg.Radio.TXLevels[level].DBm, loss)
		per := phy.PacketErrorRateBytes(cfg.BER.BitErrorRate(prx), frame.ErrorProneBytes(cfg.PayloadBytes))
		n := &e.nodes[i]
		*n = node{
			id:   i,
			env:  e,
			rng:  engine.NewRNG(engine.DeriveSeed(nodeRoot, int64(i))),
			loss: loss, level: level, per: per,
			traced: cfg.TraceNode == i+1,
		}
		n.dev.Init(cfg.Radio, radio.Shutdown)
		n.dev.SetTXLevelIndex(level)
		n.dev.SetPhase(radio.PhaseSleep)
	}

	// Schedule the superframes.
	tib := cfg.Superframe.BeaconInterval()
	for k := 0; k < cfg.Superframes; k++ {
		beaconAt := time.Duration(k) * tib
		e.sim.AtEvent(beaconAt, evBeacon, -1, beaconAt)
	}
	horizon := time.Duration(cfg.Superframes) * tib
	e.sim.RunUntil(horizon)

	// Close the books: every living node sleeps out the horizon. Dead
	// nodes are frozen where they died — an exhausted battery pays no
	// further leakage.
	for i := range e.nodes {
		if e.alive != nil && !e.alive[i] {
			continue
		}
		e.nodes[i].advance(horizon)
	}
	foldRunMetrics(e)
	return e.collect(horizon)
}

// beacon is the coordinator's superframe start: it occupies the medium and
// triggers every node's per-superframe procedure. Under a lifetime epoch it
// is also the death check: a non-busy node whose accrued radio energy —
// ledger plus the shutdown dwell pending since its watermark — has reached
// its budget shuts down for good, leaving the contention population before
// this superframe's draws. Busy nodes finish their straddling exchange
// first and are checked at the next beacon.
func (e *env) beacon(at time.Duration) {
	e.med.prune(at)
	e.med.add(transmission{start: at, end: at + e.tbeacon})
	for i := range e.nodes {
		if e.alive != nil {
			if !e.alive[i] {
				continue
			}
			n := &e.nodes[i]
			if e.budgetJ != nil && !n.busy {
				spent := float64(n.dev.Ledger().TotalEnergy())
				if pend := at - n.last; pend > 0 {
					spent += float64(e.cfg.Radio.StatePower(radio.Shutdown, n.level)) * pend.Seconds()
				}
				if spent >= e.budgetJ[i] {
					e.alive[i] = false
					e.deaths = append(e.deaths, NodeDeath{Node: i, At: at})
					continue
				}
			}
		}
		e.nodes[i].startSuperframe(at)
	}
}

// startSuperframe runs one node's activation policy for the superframe
// beginning with the beacon at tb.
func (n *node) startSuperframe(tb time.Duration) {
	e := n.env
	if n.busy {
		// A MAC exchange is straddling the beacon (a retry chain ran past
		// the superframe edge); let it finish and skip this beacon.
		if n.hasPkt && !n.pkt.delivered {
			n.pkt.superframes++
		}
		return
	}
	// Refresh the application packet.
	if n.hasPkt && !n.pkt.delivered {
		n.pkt.superframes++
		if n.pkt.superframes > e.cfg.MaxPacketSuperframes {
			e.dropped++
			n.hasPkt = false
		}
	}
	if !n.hasPkt || n.pkt.delivered {
		if n.rng.Float64() < e.cfg.TransmitProb {
			n.pkt = packet{readyAt: tb, superframes: 1}
			n.hasPkt = true
			e.offered++
		} else {
			n.hasPkt = false
		}
	}
	if !n.hasPkt {
		return
	}

	// The node wakes preemptively so the receiver is live at the beacon:
	// shutdown→idle→RX completes exactly at tb. The beacon event fires at
	// tb, so the wake lead is accounted retroactively: the watermark
	// stands at some earlier sleep instant.
	wakeAt := tb - e.tsi - e.tia
	if wakeAt < n.last {
		wakeAt = n.last // first superframe: no pre-history
	}
	n.advance(wakeAt)
	n.dev.SetPhase(radio.PhaseBeacon)
	n.transition(radio.Idle)
	n.advance(tb) // residual idle until beacon start
	n.transition(radio.RX)
	n.advance(tb + e.tbeacon) // beacon reception
	n.dev.SetPhase(radio.PhaseSleep)
	n.transition(radio.Idle)
	n.transition(radio.Shutdown)

	// Draw the arrival instant (statistical multiplexing) and begin the
	// contention procedure at the following slot boundary.
	tibEnd := tb + e.cfg.Superframe.BeaconInterval()
	margin := e.tpacket + 32*phy.UnitBackoffPeriod + e.tsi
	earliest := tb + e.tbeacon + e.tsi
	latest := tibEnd - margin
	if latest <= earliest {
		latest = earliest + phy.UnitBackoffPeriod
	}
	arrival := earliest + time.Duration(n.rng.Int63n(int64(latest-earliest)))
	e.sim.AtEvent(arrival-e.tsi, evBeginContention, int32(n.id), arrival)
}

// beginContention wakes the node and starts the CSMA/CA transaction.
func (n *node) beginContention(arrival time.Duration) {
	e := n.env
	n.busy = true
	n.advance(e.sim.Now())
	n.dev.SetPhase(radio.PhaseContention)
	n.transition(radio.Idle)
	n.txn.Init(e.cfg.CSMA, &n.rng)
	n.attempts = 0
	n.contStart = arrival
	// The first assessable boundary must leave room for the idle→RX
	// turnaround preceding the CCA.
	first := e.slotAfter(arrival + e.tia)
	for !n.txn.CCADue() {
		n.txn.AdvanceSlot()
		first += phy.UnitBackoffPeriod
	}
	e.sim.AtEvent(first-e.tia, evDoCCA, int32(n.id), first)
}

// doCCA performs one clear channel assessment at slot boundary b.
func (n *node) doCCA(b time.Duration) {
	e := n.env
	n.advance(e.sim.Now()) // idle until RX turnaround begins
	n.dev.SetPhase(radio.PhaseContention)
	if e.cfg.LowPowerListen {
		n.dev.SetLowPowerListen(true)
	}
	n.transition(radio.RX)
	n.advance(b + phy.CCADuration)
	e.med.prune(b)
	e.ccaAttempts++
	busy := e.med.busyWindow(b, b+phy.CCADuration)
	n.transition(radio.Idle)
	n.dev.SetLowPowerListen(false)

	switch n.txn.CCAResult(busy) {
	case mac.OutcomeNextCCA:
		next := b + phy.UnitBackoffPeriod
		e.sim.AtEvent(next-e.tia, evDoCCA, int32(n.id), next)
	case mac.OutcomeTransmit:
		start := b + phy.UnitBackoffPeriod
		e.sim.AtEvent(start-e.tiaTx, evTransmit, int32(n.id), start)
	case mac.OutcomeBackoff:
		e.backoffs++
		next := b + phy.UnitBackoffPeriod
		for !n.txn.CCADue() {
			n.txn.AdvanceSlot()
			next += phy.UnitBackoffPeriod
		}
		e.sim.AtEvent(next-e.tia, evDoCCA, int32(n.id), next)
	case mac.OutcomeFailure:
		// Channel access failure: report to the application, sleep.
		e.accessFailures++
		e.txnFailures++
		e.txnTotal++
		e.recordContention(n, b, false)
		n.sleep()
	}
}

// transmit sends the packet at the slot boundary.
func (n *node) transmit(start time.Duration) {
	e := n.env
	n.advance(e.sim.Now())
	n.dev.SetPhase(radio.PhaseTransmit)
	n.transition(radio.TX)
	end := start + e.tpacket
	n.txCollided = false
	e.med.prune(start)
	e.med.add(transmission{start: start, end: end, node: n})
	e.transmissions++
	n.attempts++
	e.recordContention(n, start, true)
	e.sim.AtEvent(end, evFinishTx, int32(n.id), end)
}

// finishTransmit evaluates reception and handles the acknowledgment.
func (n *node) finishTransmit(end time.Duration) {
	e := n.env
	n.advance(end)
	collided := n.txCollided
	corrupted := n.rng.Float64() < n.per
	ok := !collided && !corrupted
	if collided {
		e.collisions++
		e.contCol.Observe(true)
	} else {
		e.contCol.Observe(false)
	}
	if corrupted && !collided {
		e.corrupted++
	}

	// TX→RX turnaround covers exactly t_ack−. The scalable receiver
	// listens for the acknowledgment in its low-power mode.
	n.dev.SetPhase(radio.PhaseAck)
	if e.cfg.LowPowerListen {
		n.dev.SetLowPowerListen(true)
	}
	n.transition(radio.RX)
	ackStart := end + mac.AckWaitMin
	if ok {
		ackEnd := ackStart + e.tack
		e.med.add(transmission{start: ackStart, end: ackEnd})
		e.sim.AtEvent(ackEnd, evAckReceived, int32(n.id), ackEnd)
	} else {
		deadline := end + mac.AckWaitMax
		e.sim.AtEvent(deadline, evAckTimeout, int32(n.id), deadline)
	}
}

// ackReceived completes a successful delivery.
func (n *node) ackReceived(at time.Duration) {
	e := n.env
	n.advance(at)
	e.txnTotal++
	e.delivered++
	n.pkt.delivered = true
	e.delays = append(e.delays, (at - n.pkt.readyAt).Seconds())
	if n.attempts >= 1 && n.attempts <= len(e.attemptsHist) {
		e.attemptsHist[n.attempts-1]++
	}
	// Inter-frame spacing in idle, then sleep.
	n.dev.SetPhase(radio.PhaseIFS)
	n.transition(radio.Idle)
	n.dev.SetLowPowerListen(false)
	ifs := mac.IFSFor(frame.PaperPacketBytes(e.cfg.PayloadBytes) - phy.HeaderBytes)
	n.advance(at + ifs)
	n.sleep()
}

// ackTimeout handles a failed attempt: retry through a fresh contention or
// give up for this superframe.
func (n *node) ackTimeout(at time.Duration) {
	e := n.env
	n.advance(at)
	n.transition(radio.Idle)
	n.dev.SetLowPowerListen(false)
	if n.attempts >= e.cfg.NMax {
		e.txnFailures++
		e.txnTotal++
		n.sleep()
		return
	}
	// Immediate retransmission attempt: new contention procedure.
	n.dev.SetPhase(radio.PhaseContention)
	n.txn.Init(e.cfg.CSMA, &n.rng)
	n.contStart = at
	first := e.slotAfter(at + e.tia)
	for !n.txn.CCADue() {
		n.txn.AdvanceSlot()
		first += phy.UnitBackoffPeriod
	}
	e.sim.AtEvent(first-e.tia, evDoCCA, int32(n.id), first)
}

// sleep returns the node to shutdown and closes the MAC exchange.
func (n *node) sleep() {
	n.busy = false
	n.advance(n.env.sim.Now())
	n.dev.SetPhase(radio.PhaseSleep)
	if n.dev.State() != radio.Idle {
		n.transition(radio.Idle)
	}
	n.transition(radio.Shutdown)
}

// recordContention logs one contention procedure's statistics.
func (e *env) recordContention(n *node, endedAt time.Duration, granted bool) {
	e.contDur.Add((endedAt - n.contStart).Seconds())
	e.contCCA.Add(float64(n.txn.CCAs()))
	e.contCF.Observe(!granted)
}

// collect aggregates the run into a Result.
func (e *env) collect(horizon time.Duration) Result {
	var ledger radio.Ledger
	for i := range e.nodes {
		ledger.Merge(e.nodes[i].dev.Ledger())
	}
	r := Result{
		Config:           e.cfg,
		Ledger:           ledger,
		PacketsOffered:   e.offered,
		PacketsDelivered: e.delivered,
		PacketsDropped:   e.dropped,
		Transmissions:    e.transmissions,
		Collisions:       e.collisions,
		AccessFailures:   e.accessFailures,
		CorruptedFrames:  e.corrupted,
	}
	r.PacketsExpired = e.offered - e.delivered - e.dropped
	if e.offered > 0 {
		r.DeliveryRatio = float64(e.delivered) / float64(e.offered)
	}
	if e.txnTotal > 0 {
		r.PrFailPerAttempt = float64(e.txnFailures) / float64(e.txnTotal)
	}
	if len(e.delays) > 0 {
		var acc float64
		for _, d := range e.delays {
			acc += d
		}
		r.MeanDelay = time.Duration(acc / float64(len(e.delays)) * float64(time.Second))
		p95 := stats.Percentile(e.delays, 0.95)
		r.P95Delay = time.Duration(p95 * float64(time.Second))
	}
	energyPerNode := float64(ledger.TotalEnergy()) / float64(e.cfg.Nodes)
	r.AvgPowerPerNode = units.Power(energyPerNode / horizon.Seconds())
	r.AttemptsHist = append([]int(nil), e.attemptsHist...)
	// Copy the trace out of the arena: Result must not alias recycled
	// storage (append of an empty trace stays nil and allocates nothing).
	r.Trace = append([]TraceEvent(nil), e.trace...)
	r.Contention = contention.Stats{
		Tcont: time.Duration(e.contDur.Mean() * float64(time.Second)),
		NCCA:  e.contCCA.Mean(),
		PrCF:  e.contCF.Value(),
		PrCol: e.contCol.Value(),
	}
	return r
}
