package netsim

import (
	"context"
	"testing"
)

// TestRunAllocBudget is the allocation-regression guard for the pooled run
// path: once the runner pool is warm, a Run call must stay within a fixed
// allocation budget (the Result's histogram copy plus the default radio
// characterization — a handful, versus the ~1.5 per node a cold arena
// pays). A regression that reintroduces per-run device or slice setup fails
// this test rather than silently landing.
func TestRunAllocBudget(t *testing.T) {
	cfg := Config{Nodes: 50, Superframes: 2, Seed: 7}
	// Warm the pool and size the reusable arena storage.
	for i := 0; i < 3; i++ {
		Run(cfg)
	}
	seed := int64(100)
	allocs := testing.AllocsPerRun(20, func() {
		c := cfg
		c.Seed = seed
		seed++
		Run(c)
	})
	// Steady state measures ~6 allocs; the budget leaves headroom for a GC
	// emptying the sync.Pool mid-run without tolerating a setup
	// regression (which costs one-plus per node).
	const budget = 16
	if allocs > budget {
		t.Fatalf("Run allocated %v per run, budget %d", allocs, budget)
	}
	t.Logf("Run steady-state allocations per run: %v", allocs)
}

// TestRunReplicasAllocBudget guards the replica sweep: n pooled runs plus
// merge bookkeeping must stay near n times the single-run budget, so the
// recycling win survives in the workload that motivated it.
func TestRunReplicasAllocBudget(t *testing.T) {
	cfg := Config{Nodes: 50, Superframes: 2, Seed: 7}
	const n = 4
	if _, err := RunReplicas(context.Background(), cfg, n, 1); err != nil {
		t.Fatal(err)
	}
	seed := int64(500)
	allocs := testing.AllocsPerRun(10, func() {
		c := cfg
		c.Seed = seed
		seed++
		if _, err := RunReplicas(context.Background(), c, n, 1); err != nil {
			t.Fatal(err)
		}
	})
	// n pooled runs (~6 each) plus the seed slice, engine.MapSlice result
	// slice and the eight ReplicaStat observation slices.
	const budget = 16*n + 24
	if allocs > budget {
		t.Fatalf("RunReplicas(n=%d) allocated %v per call, budget %d", n, allocs, budget)
	}
	t.Logf("RunReplicas(n=%d) steady-state allocations per call: %v", n, allocs)
}
