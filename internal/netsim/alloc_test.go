package netsim

import (
	"context"
	"testing"
)

// TestRunAllocBudget is the allocation-regression guard for the pooled run
// path: once the runner pool is warm, a Run call must stay within a fixed
// allocation budget (the Result's histogram copy plus the default radio
// characterization — a handful, versus the ~1.5 per node a cold arena
// pays). A regression that reintroduces per-run device or slice setup fails
// this test rather than silently landing.
func TestRunAllocBudget(t *testing.T) {
	cfg := Config{Nodes: 50, Superframes: 2, Seed: 7}
	// Warm the pool and size the reusable arena storage.
	for i := 0; i < 3; i++ {
		Run(cfg)
	}
	seed := int64(100)
	allocs := testing.AllocsPerRun(20, func() {
		c := cfg
		c.Seed = seed
		seed++
		Run(c)
	})
	// The budget (build-tagged: the race detector makes sync.Pool lossy)
	// tolerates a GC emptying the pool mid-run but not a setup regression
	// (which costs one-plus per node). The telemetry fold
	// (foldRunMetrics: six atomic ops once per run) must not move this —
	// run counters live in plain env ints on the hot paths.
	if allocs > runAllocBudget {
		t.Fatalf("Run allocated %v per run, budget %d", allocs, runAllocBudget)
	}
	t.Logf("Run steady-state allocations per run: %v", allocs)
}

// TestRunTelemetryFold checks that every run folds its counters into the
// package totals exactly once, with values consistent with the run's own
// Result, and that the fold itself adds no allocations (covered by
// TestRunAllocBudget, which runs with folding active).
func TestRunTelemetryFold(t *testing.T) {
	cfg := Config{Nodes: 20, Superframes: 2, Seed: 11}
	runs0 := runsTotal.Value()
	events0 := eventsTotal.Value()
	cca0 := ccaTotal.Value()
	res := Run(cfg)
	if got := runsTotal.Value() - runs0; got != 1 {
		t.Errorf("runs_total advanced by %d, want 1", got)
	}
	if eventsTotal.Value() == events0 {
		t.Error("events_total did not advance")
	}
	// Every transmission passed at least one CCA, so the CCA delta must
	// dominate the run's transmission count.
	ccaDelta := ccaTotal.Value() - cca0
	if ccaDelta < uint64(res.Transmissions) {
		t.Errorf("cca_attempts_total advanced by %d, below %d transmissions", ccaDelta, res.Transmissions)
	}
	if heapDepthMax.Value() <= 0 {
		t.Errorf("heap_depth_max = %d, want > 0", heapDepthMax.Value())
	}
}

// TestRunReplicasAllocBudget guards the replica sweep: n pooled runs plus
// merge bookkeeping must stay near n times the single-run budget, so the
// recycling win survives in the workload that motivated it.
func TestRunReplicasAllocBudget(t *testing.T) {
	cfg := Config{Nodes: 50, Superframes: 2, Seed: 7}
	const n = 4
	if _, err := RunReplicas(context.Background(), cfg, n, 1); err != nil {
		t.Fatal(err)
	}
	seed := int64(500)
	allocs := testing.AllocsPerRun(10, func() {
		c := cfg
		c.Seed = seed
		seed++
		if _, err := RunReplicas(context.Background(), c, n, 1); err != nil {
			t.Fatal(err)
		}
	})
	// n pooled runs (at the build-tagged per-run budget) plus the seed
	// slice, engine.MapSlice result slice and the eight ReplicaStat
	// observation slices.
	const budget = runAllocBudget*n + 24
	if allocs > budget {
		t.Fatalf("RunReplicas(n=%d) allocated %v per call, budget %d", n, allocs, budget)
	}
	t.Logf("RunReplicas(n=%d) steady-state allocations per call: %v", n, allocs)
}
