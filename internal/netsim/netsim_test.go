package netsim

import (
	"math"
	"testing"
	"time"

	"dense802154/internal/channel"
	"dense802154/internal/core"
	"dense802154/internal/mac"
	"dense802154/internal/radio"
)

func smallRun(seed int64) Result {
	return Run(Config{Nodes: 20, Superframes: 10, Seed: seed})
}

func TestRunBasics(t *testing.T) {
	r := smallRun(1)
	if r.PacketsOffered == 0 {
		t.Fatal("no packets offered")
	}
	if r.PacketsDelivered == 0 {
		t.Fatal("nothing delivered")
	}
	if r.DeliveryRatio <= 0.5 {
		t.Fatalf("delivery ratio %v too low for 20 nodes", r.DeliveryRatio)
	}
	if r.AvgPowerPerNode <= 0 {
		t.Fatal("no power accounted")
	}
	if r.MeanDelay <= 0 {
		t.Fatal("no delay measured")
	}
	if r.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestEnergyConservation(t *testing.T) {
	r := smallRun(2)
	l := r.Ledger
	// Total accounted time must equal nodes × horizon.
	horizon := time.Duration(r.Config.Superframes) * r.Config.Superframe.BeaconInterval()
	want := time.Duration(r.Config.Nodes) * horizon
	got := l.TotalTime()
	if d := got - want; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("accounted time %v != %v", got, want)
	}
	// Phase energies must sum to state energies.
	var phaseSum float64
	for _, e := range l.ByPhase {
		phaseSum += float64(e)
	}
	if math.Abs(phaseSum-float64(l.TotalEnergy()))/float64(l.TotalEnergy()) > 1e-9 {
		t.Fatalf("phase sum %v != total %v", phaseSum, float64(l.TotalEnergy()))
	}
}

func TestDeterminism(t *testing.T) {
	a, b := smallRun(3), smallRun(3)
	if a.AvgPowerPerNode != b.AvgPowerPerNode || a.PacketsDelivered != b.PacketsDelivered ||
		a.Collisions != b.Collisions {
		t.Fatal("same seed produced different runs")
	}
	c := smallRun(4)
	if c.AvgPowerPerNode == a.AvgPowerPerNode && c.Collisions == a.Collisions {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestSparseNetworkIsQuiet(t *testing.T) {
	// 2 nodes with small packets: almost no contention, no collisions,
	// delivery ≈ 100%.
	r := Run(Config{Nodes: 2, PayloadBytes: 20, Superframes: 20, Seed: 5,
		Deployment: channel.UniformLoss{MinDB: 55, MaxDB: 70}})
	if r.Collisions > 0 {
		t.Errorf("collisions in a 2-node network: %d", r.Collisions)
	}
	if r.DeliveryRatio < 0.99 {
		t.Errorf("delivery ratio %v in a quiet network", r.DeliveryRatio)
	}
	if r.AccessFailures > 0 {
		t.Errorf("access failures in a quiet network: %d", r.AccessFailures)
	}
	// Contention statistics: ≈2 CCAs, tiny Tcont.
	if r.Contention.NCCA < 2 || r.Contention.NCCA > 2.2 {
		t.Errorf("NCCA = %v, want ≈2", r.Contention.NCCA)
	}
}

func TestDenseNetworkContends(t *testing.T) {
	dense := Run(Config{Nodes: 100, Superframes: 10, Seed: 6})
	sparse := Run(Config{Nodes: 10, Superframes: 10, Seed: 6})
	if dense.Contention.PrCF <= sparse.Contention.PrCF {
		t.Error("dense network must fail channel access more")
	}
	if dense.Contention.NCCA <= sparse.Contention.NCCA {
		t.Error("dense network must need more CCAs")
	}
	if dense.Collisions == 0 {
		t.Error("dense network must collide sometimes")
	}
}

func TestCleanLinksNoCorruption(t *testing.T) {
	// All nodes at 55 dB with a -87 dBm target: BER negligible.
	r := Run(Config{Nodes: 10, Superframes: 10, Seed: 7,
		Deployment: channel.UniformLoss{MinDB: 55, MaxDB: 56}})
	if r.CorruptedFrames > 0 {
		t.Errorf("corrupted frames on clean links: %d", r.CorruptedFrames)
	}
}

func TestWeakLinksCorrupt(t *testing.T) {
	// Path loss beyond the power budget: corruption and redelivery.
	r := Run(Config{Nodes: 10, Superframes: 20, Seed: 8,
		Deployment: channel.UniformLoss{MinDB: 92, MaxDB: 94}})
	if r.CorruptedFrames == 0 {
		t.Error("no corruption at 92-94 dB")
	}
	if r.DeliveryRatio >= 1 {
		t.Error("perfect delivery at 92-94 dB is implausible")
	}
}

func TestChannelInversionPicksLevels(t *testing.T) {
	// Near nodes must use low levels, far nodes the maximum.
	near := Run(Config{Nodes: 5, Superframes: 5, Seed: 9,
		Deployment: channel.UniformLoss{MinDB: 55, MaxDB: 56}})
	far := Run(Config{Nodes: 5, Superframes: 5, Seed: 9,
		Deployment: channel.UniformLoss{MinDB: 90, MaxDB: 91}})
	// Energy per delivered packet must be lower for near nodes.
	if near.AvgPowerPerNode >= far.AvgPowerPerNode {
		t.Errorf("near power %v not below far power %v",
			near.AvgPowerPerNode, far.AvgPowerPerNode)
	}
}

func TestPhaseSharesShape(t *testing.T) {
	// The Fig. 9a shape must also emerge from the event-level simulation:
	// transmit below 60%, every other phase present.
	r := Run(Config{Nodes: 100, Superframes: 15, Seed: 10})
	tot := float64(r.Ledger.TotalEnergy())
	share := func(p radio.Phase) float64 { return float64(r.Ledger.ByPhase[p]) / tot }
	if s := share(radio.PhaseTransmit); s < 0.3 || s > 0.65 {
		t.Errorf("transmit share = %v", s)
	}
	if s := share(radio.PhaseBeacon); s < 0.08 || s > 0.3 {
		t.Errorf("beacon share = %v", s)
	}
	if s := share(radio.PhaseContention); s < 0.08 || s > 0.35 {
		t.Errorf("contention share = %v", s)
	}
	if s := share(radio.PhaseAck); s < 0.05 || s > 0.25 {
		t.Errorf("ack share = %v", s)
	}
	// State dwell: shutdown must dominate.
	frac := float64(r.Ledger.TimeIn[radio.Shutdown]) / float64(r.Ledger.TotalTime())
	if frac < 0.97 {
		t.Errorf("shutdown fraction = %v, want > 0.97", frac)
	}
}

func TestModelAgreement(t *testing.T) {
	// The VAL experiment in miniature: the event-level average power of
	// the 100-node population must agree with the analytical case study
	// within 20%.
	sim := Run(Config{Nodes: 100, Superframes: 20, Seed: 11})
	p := core.DefaultParams()
	cs, err := core.RunCaseStudy(p, core.DefaultCaseStudy())
	if err != nil {
		t.Fatal(err)
	}
	simP := sim.AvgPowerPerNode.MicroWatts()
	modP := cs.AvgPower.MicroWatts()
	if math.Abs(simP-modP)/modP > 0.20 {
		t.Fatalf("sim %v µW vs model %v µW: >20%% apart", simP, modP)
	}
	t.Logf("sim %.1f µW vs model %.1f µW (paper: 211 µW)", simP, modP)
}

func TestTransmitProbScalesLoad(t *testing.T) {
	full := Run(Config{Nodes: 50, Superframes: 10, Seed: 12})
	half := Run(Config{Nodes: 50, Superframes: 10, Seed: 12, TransmitProb: 0.5})
	if half.PacketsOffered >= full.PacketsOffered {
		t.Error("transmit probability did not thin the offering")
	}
	if half.AvgPowerPerNode >= full.AvgPowerPerNode {
		t.Error("halved traffic must cut average power")
	}
}

func TestHigherBeaconOrderCutsPower(t *testing.T) {
	sf7, _ := mac.NewSuperframe(7, 7)
	base := Run(Config{Nodes: 20, Superframes: 10, Seed: 13})
	slower := Run(Config{Nodes: 20, Superframes: 5, Seed: 13, Superframe: sf7})
	if slower.AvgPowerPerNode >= base.AvgPowerPerNode {
		t.Errorf("BO=7 power %v not below BO=6 %v",
			slower.AvgPowerPerNode, base.AvgPowerPerNode)
	}
}

func TestImprovedRadiosInSimulation(t *testing.T) {
	base := Run(Config{Nodes: 50, Superframes: 10, Seed: 14})
	fast := Run(Config{Nodes: 50, Superframes: 10, Seed: 14,
		Radio: radio.CC2420().WithTransitionScale(0.5)})
	scalable := Run(Config{Nodes: 50, Superframes: 10, Seed: 14,
		Radio: radio.CC2420().WithScalableReceiver(0.5)})
	if fast.AvgPowerPerNode >= base.AvgPowerPerNode {
		t.Error("faster transitions must cut simulated power")
	}
	_ = scalable // scalable receiver needs the low-power listen engaged:
	// the netsim nodes use full RX for CCA (physical accounting), so the
	// benefit shows only through core's analytical path; just ensure the
	// run completes.
}

func TestDelayStatistics(t *testing.T) {
	r := Run(Config{Nodes: 50, Superframes: 15, Seed: 15})
	if r.P95Delay < r.MeanDelay/2 {
		t.Fatalf("p95 %v implausibly below mean %v", r.P95Delay, r.MeanDelay)
	}
	// Delays must be below the application retry cap.
	cap := time.Duration(r.Config.MaxPacketSuperframes+1) * r.Config.Superframe.BeaconInterval()
	if r.P95Delay > cap {
		t.Fatalf("p95 delay %v beyond the retry cap %v", r.P95Delay, cap)
	}
}

func TestPacketConservation(t *testing.T) {
	r := Run(Config{Nodes: 100, Superframes: 10, Seed: 16})
	if r.PacketsDelivered+r.PacketsDropped+r.PacketsExpired != r.PacketsOffered {
		t.Fatalf("packet bookkeeping: %d + %d + %d != %d",
			r.PacketsDelivered, r.PacketsDropped, r.PacketsExpired, r.PacketsOffered)
	}
}
