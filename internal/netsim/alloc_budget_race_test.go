//go:build race

package netsim

// Under the race detector sync.Pool intentionally drops a quarter of Puts,
// so a fraction of the measured runs pay cold-arena setup no matter how
// warm the pool is. The wider budget absorbs that sampling noise while
// still failing on a per-node setup regression, which costs one-plus
// allocation per node (50+) on every run.
const runAllocBudget = 40
