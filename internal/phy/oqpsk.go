package phy

import (
	"math"
	"math/rand"
)

// Waveform-level O-QPSK model. The 2450 MHz PHY transmits chips with
// half-sine pulse shaping and a half-chip offset between the I and Q
// rails (§6.5.2.3), making the modulation MSK-like: with coherent
// demodulation and matched filtering, each chip is an antipodal decision
// at energy Ec. This file implements that signal chain explicitly —
// modulator, AWGN, correlating demodulator — to validate the binary-
// symmetric-channel abstraction used by the Monte-Carlo Bench: the
// waveform simulation and Q(sqrt(2·Ec/N0)) must agree.

// samplesPerChip is the oversampling of the baseband waveform.
const samplesPerChip = 4

// Waveform is an I/Q baseband signal sampled at samplesPerChip per chip.
type Waveform struct {
	I, Q []float64
}

// Len reports the number of samples per rail.
func (w Waveform) Len() int { return len(w.I) }

// ModulateChips produces the O-QPSK baseband waveform of a 32-chip
// sequence: even-indexed chips modulate the I rail, odd-indexed the Q
// rail delayed by half a chip, each shaped by a half-sine over two chip
// periods (the MSK view of O-QPSK).
func ModulateChips(chips uint32) Waveform {
	// Each rail carries 16 chips over 32 chip periods; a rail pulse
	// spans 2 chip periods = 2*samplesPerChip samples.
	n := (ChipsPerSymbol + 1) * samplesPerChip // + half-chip Q tail rounding
	w := Waveform{I: make([]float64, n), Q: make([]float64, n)}
	pulse := 2 * samplesPerChip
	for k := 0; k < ChipsPerSymbol; k++ {
		bit := float64(1)
		if chips>>uint(k)&1 == 0 {
			bit = -1
		}
		// Chip k occupies rail position k/2 on its rail; rail pulses are
		// spaced 2 chip periods apart on each rail.
		start := (k / 2) * pulse
		rail := w.I
		if k%2 == 1 {
			rail = w.Q
			start += samplesPerChip / 2 // the half-chip offset
		}
		for s := 0; s < pulse && start+s < n; s++ {
			rail[start+s] += bit * math.Sin(math.Pi*float64(s)/float64(pulse))
		}
	}
	return w
}

// AddAWGN adds white Gaussian noise of the given standard deviation per
// sample to both rails.
func (w Waveform) AddAWGN(sigma float64, rng *rand.Rand) Waveform {
	out := Waveform{I: make([]float64, len(w.I)), Q: make([]float64, len(w.Q))}
	for i := range w.I {
		out.I[i] = w.I[i] + rng.NormFloat64()*sigma
		out.Q[i] = w.Q[i] + rng.NormFloat64()*sigma
	}
	return out
}

// DemodulateChips recovers the 32 chips by correlating each rail position
// against the half-sine matched filter (coherent detection, perfect
// timing).
func DemodulateChips(w Waveform) uint32 {
	var chips uint32
	pulse := 2 * samplesPerChip
	for k := 0; k < ChipsPerSymbol; k++ {
		start := (k / 2) * pulse
		rail := w.I
		if k%2 == 1 {
			rail = w.Q
			start += samplesPerChip / 2
		}
		var corr float64
		for s := 0; s < pulse && start+s < len(rail); s++ {
			corr += rail[start+s] * math.Sin(math.Pi*float64(s)/float64(pulse))
		}
		if corr > 0 {
			chips |= 1 << uint(k)
		}
	}
	return chips
}

// chipEnergy is the matched-filter output energy of one half-sine pulse:
// sum over the pulse of sin², used to translate Ec/N0 into a per-sample
// noise sigma.
func chipEnergy() float64 {
	pulse := 2 * samplesPerChip
	var e float64
	for s := 0; s < pulse; s++ {
		v := math.Sin(math.Pi * float64(s) / float64(pulse))
		e += v * v
	}
	return e
}

// WaveformChipError measures the chip error rate of the waveform chain at
// a linear Ec/N0, over the given number of random symbols. It exists to
// validate the BSC abstraction: the result should match
// Q(sqrt(2·Ec/N0)) within Monte-Carlo error.
//
// With matched filtering, the decision SNR is Ep/σ² where Ep is the pulse
// energy; antipodal signalling at Ec/N0 corresponds to
// σ = sqrt(Ep / (2·Ec/N0)).
func WaveformChipError(ecn0 float64, symbols int, rng *rand.Rand) float64 {
	if ecn0 <= 0 {
		return 0.5
	}
	sigma := math.Sqrt(chipEnergy() / (2 * ecn0))
	errors, total := 0, 0
	for i := 0; i < symbols; i++ {
		sym := byte(rng.Intn(16))
		chips := ChipSequence(sym)
		rx := DemodulateChips(ModulateChips(chips).AddAWGN(sigma, rng))
		errors += HammingDistance(chips, rx)
		total += ChipsPerSymbol
	}
	return float64(errors) / float64(total)
}

// WaveformBER measures the end-to-end bit error rate of the full waveform
// chain (modulate, AWGN, demodulate, despread) at a linear Ec/N0.
func WaveformBER(ecn0 float64, symbols int, rng *rand.Rand) float64 {
	// Non-positive Ec/N0 means the signal is buried: use a noise level
	// large enough that chip decisions are effectively coin flips.
	sigma := 1e6
	if ecn0 > 0 {
		sigma = math.Sqrt(chipEnergy() / (2 * ecn0))
	}
	errors, bits := 0, 0
	for i := 0; i < symbols; i++ {
		sym := byte(rng.Intn(16))
		rx := DemodulateChips(ModulateChips(ChipSequence(sym)).AddAWGN(sigma, rng))
		dec, _ := DespreadSymbol(rx)
		diff := (sym ^ dec) & 0xF
		for diff != 0 {
			errors += int(diff & 1)
			diff >>= 1
		}
		bits += BitsPerSymbol
	}
	return float64(errors) / float64(bits)
}
