// Package phy models the IEEE 802.15.4-2003 physical layer as used by the
// paper: the 2450 MHz O-QPSK/DSSS PHY timing, the 32-chip pseudo-noise
// spreading, bit-error-rate models (including the paper's measured
// regression, eq. 1), and a chip-level Monte-Carlo test bench that mirrors
// the wired-attenuator BER characterization of the paper's section 3.
//
// The 868/915 MHz BPSK PHYs are included for completeness; the paper (and
// all experiments) use the 2450 MHz band, which offers 16 channels and the
// highest data rate.
package phy

import (
	"fmt"
	"time"
)

// 2450 MHz O-QPSK PHY constants (IEEE 802.15.4-2003 §6.5).
const (
	// BitsPerSymbol is the number of data bits carried per O-QPSK symbol.
	BitsPerSymbol = 4
	// ChipsPerSymbol is the DSSS spreading factor.
	ChipsPerSymbol = 32
	// SymbolsPerByte is the number of symbols per octet.
	SymbolsPerByte = 2
	// ChipRate is the 2450 MHz chip rate in chip/s.
	ChipRate = 2_000_000
	// SymbolRate is the symbol rate in symbol/s (62.5 ksymbol/s).
	SymbolRate = ChipRate / ChipsPerSymbol
	// BitRate is the gross PHY bit rate in bit/s (250 kb/s).
	BitRate = SymbolRate * BitsPerSymbol

	// SymbolPeriod is the duration of one symbol (Ts = 16 µs).
	SymbolPeriod = 16 * time.Microsecond
	// BytePeriod is the duration of one octet on air (TB = 32 µs).
	BytePeriod = SymbolsPerByte * SymbolPeriod

	// UnitBackoffSymbols is aUnitBackoffPeriod in symbols.
	UnitBackoffSymbols = 20
	// UnitBackoffPeriod is the CSMA backoff slot duration (Tslot = 320 µs).
	UnitBackoffPeriod = UnitBackoffSymbols * SymbolPeriod

	// TurnaroundSymbols is aTurnaroundTime in symbols.
	TurnaroundSymbols = 12
	// TurnaroundTime is the RX/TX turnaround duration (192 µs).
	TurnaroundTime = TurnaroundSymbols * SymbolPeriod

	// CCASymbols is the CCA detection time in symbols (8 symbols).
	CCASymbols = 8
	// CCADuration is the duration of a single clear channel assessment.
	CCADuration = CCASymbols * SymbolPeriod

	// PreambleBytes is the synchronization preamble length.
	PreambleBytes = 4
	// SFDBytes is the start-of-frame delimiter length.
	SFDBytes = 1
	// PHRBytes is the PHY header (frame length) size.
	PHRBytes = 1
	// HeaderBytes is the total PHY-level overhead prepended to the MPDU.
	HeaderBytes = PreambleBytes + SFDBytes + PHRBytes

	// MaxPHYPacketSize is aMaxPHYPacketSize: the largest MPDU in octets.
	MaxPHYPacketSize = 127
)

// TxDuration reports the on-air duration of totalBytes octets (including any
// PHY header bytes the caller accounts for) at the 2450 MHz rate.
func TxDuration(totalBytes int) time.Duration {
	return time.Duration(totalBytes) * BytePeriod
}

// Band describes one of the three 802.15.4-2003 frequency bands.
type Band struct {
	Name          string
	CenterMHz     float64 // first channel center frequency
	Channels      int     // number of channels in the band
	FirstChannel  int     // channel numbering offset in the standard
	BitRate       float64 // gross PHY rate, bit/s
	SymbolRate    float64 // symbol/s
	ChipRate      float64 // chip/s
	BitsPerSymbol int
	Modulation    string
}

// The three bands of 802.15.4-2003. The paper's dense scenario uses
// Band2450 (16 channels, 250 kb/s).
var (
	Band868 = Band{
		Name: "868MHz", CenterMHz: 868.3, Channels: 1, FirstChannel: 0,
		BitRate: 20_000, SymbolRate: 20_000, ChipRate: 300_000,
		BitsPerSymbol: 1, Modulation: "BPSK",
	}
	Band915 = Band{
		Name: "915MHz", CenterMHz: 906, Channels: 10, FirstChannel: 1,
		BitRate: 40_000, SymbolRate: 40_000, ChipRate: 600_000,
		BitsPerSymbol: 1, Modulation: "BPSK",
	}
	Band2450 = Band{
		Name: "2450MHz", CenterMHz: 2405, Channels: 16, FirstChannel: 11,
		BitRate: BitRate, SymbolRate: SymbolRate, ChipRate: ChipRate,
		BitsPerSymbol: BitsPerSymbol, Modulation: "O-QPSK",
	}
)

// SymbolPeriodOf reports the symbol duration of the band.
func (b Band) SymbolPeriodOf() time.Duration {
	return time.Duration(float64(time.Second) / b.SymbolRate)
}

// ByteDuration reports the on-air time of one octet in the band.
func (b Band) ByteDuration() time.Duration {
	return time.Duration(8 * float64(time.Second) / b.BitRate)
}

// String implements fmt.Stringer.
func (b Band) String() string {
	return fmt.Sprintf("%s (%s, %.0f kb/s, %d channels)",
		b.Name, b.Modulation, b.BitRate/1000, b.Channels)
}
