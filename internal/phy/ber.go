package phy

import (
	"math"
)

// Q is the Gaussian tail function Q(x) = P[N(0,1) > x].
func Q(x float64) float64 { return 0.5 * math.Erfc(x/math.Sqrt2) }

// BERModel maps a received power (dBm) to a bit error probability.
type BERModel interface {
	BitErrorRate(prxDBm float64) float64
}

// ExponentialBER is the regression form of the paper's eq. (1):
//
//	Pr_bit = A · exp(B · P_Rx[dBm])
//
// clamped to the physically meaningful range [0, 0.5]. With B < 0 the error
// rate falls as the received power rises (P_Rx is negative in dBm, so the
// exponent grows as the signal weakens).
type ExponentialBER struct {
	A, B float64
}

// BitErrorRate implements BERModel.
func (m ExponentialBER) BitErrorRate(prxDBm float64) float64 {
	ber := m.A * math.Exp(m.B*prxDBm)
	if ber > 0.5 {
		return 0.5
	}
	if ber < 0 {
		return 0
	}
	return ber
}

// Eq1 is the paper's measured CC2420 bit-error model (eq. 1): the
// exponential regression of the wired-attenuator test bench of Fig. 4,
// Pr_bit = 2.35e-30 · exp(-0.659 · P_Rx). At -94 dBm it gives ≈1.9e-3 and
// at -85 dBm ≈5e-6, matching the measured span of Fig. 4.
var Eq1 = ExponentialBER{A: 2.35e-30, B: -0.659}

// ThermalNoiseDBmHz is the thermal noise density kT at 290 K in dBm/Hz.
const ThermalNoiseDBmHz = -174.0

// AWGNBER is the textbook soft-decision bound for the 2450 MHz O-QPSK DSSS
// PHY over an AWGN channel: the half-sine O-QPSK demodulator behaves like
// antipodal signalling at the bit level, BER = Q(sqrt(2·Eb/N0)), with Eb/N0
// derived from the received power and an effective receiver noise figure.
// It serves as the analytic companion to the Monte-Carlo Bench and to the
// measured Eq1 regression.
type AWGNBER struct {
	// NoiseFigureDB is the effective receiver noise figure, i.e. the
	// implementation loss folded into the noise density.
	NoiseFigureDB float64
}

// EbN0 reports the linear Eb/N0 at the given received power.
func (m AWGNBER) EbN0(prxDBm float64) float64 {
	n0 := ThermalNoiseDBmHz + m.NoiseFigureDB // dBm/Hz
	ebDBm := prxDBm - 10*math.Log10(BitRate)  // energy per bit, dBm·s
	return math.Pow(10, (ebDBm-n0)/10)
}

// BitErrorRate implements BERModel.
func (m AWGNBER) BitErrorRate(prxDBm float64) float64 {
	return Q(math.Sqrt(2 * m.EbN0(prxDBm)))
}

// PacketErrorRate converts a bit error probability into a packet error
// probability over n independent bits: 1 - (1-ber)^n.
func PacketErrorRate(ber float64, nBits int) float64 {
	if nBits <= 0 || ber <= 0 {
		return 0
	}
	if ber >= 1 {
		return 1
	}
	// Use log1p/expm1 for numerical stability at small ber.
	return -math.Expm1(float64(nBits) * math.Log1p(-ber))
}

// PacketErrorRateBytes is PacketErrorRate over 8·nBytes bits. The paper's
// eq. (10) applies it to the packet length minus the 4-byte preamble, whose
// corruption is absorbed by synchronization.
func PacketErrorRateBytes(ber float64, nBytes int) float64 {
	return PacketErrorRate(ber, 8*nBytes)
}

// Sensitivity returns the received power (dBm) at which the model's packet
// error rate for a reference 20-byte PSDU reaches 1% — the 802.15.4
// receiver sensitivity definition (§6.5.3.3). It scans downward in 0.1 dB
// steps from 0 dBm and returns -120 if never met (model too pessimistic).
func Sensitivity(m BERModel) float64 {
	for prx := 0.0; prx >= -120; prx -= 0.1 {
		if PacketErrorRateBytes(m.BitErrorRate(prx), 20) > 0.01 {
			return prx
		}
	}
	return -120
}
