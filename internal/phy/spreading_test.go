package phy

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBaseSequenceMatchesStandard(t *testing.T) {
	// IEEE 802.15.4-2003 Table 24, symbol 0:
	// 1101 1001 1100 0011 0101 0010 0010 1110 (chip 0 first).
	want := "11011001110000110101001000101110"
	seq := ChipSequence(0)
	for i := 0; i < 32; i++ {
		got := byte('0' + (seq>>uint(i))&1)
		if got != want[i] {
			t.Fatalf("chip %d = %c, want %c", i, got, want[i])
		}
	}
}

func TestSymbol1IsCyclicShift(t *testing.T) {
	s0, s1 := ChipSequence(0), ChipSequence(1)
	for i := 0; i < 32; i++ {
		want := (s0 >> uint((i+28)%32)) & 1 // chip i of s1 = chip i-4 of s0
		got := (s1 >> uint(i)) & 1
		if got != want {
			t.Fatalf("symbol 1 chip %d = %d, want %d", i, got, want)
		}
	}
}

func TestSymbol8IsConjugate(t *testing.T) {
	// Symbols 8-15 invert every odd-indexed chip of symbols 0-7.
	for s := 0; s < 8; s++ {
		a, b := ChipSequence(byte(s)), ChipSequence(byte(s+8))
		if a^b != 0xAAAAAAAA {
			t.Fatalf("symbol %d vs %d differ in %032b, want odd chips only", s, s+8, a^b)
		}
	}
}

func TestAllSequencesDistinctAndBalanced(t *testing.T) {
	seen := map[uint32]bool{}
	for s := 0; s < 16; s++ {
		seq := ChipSequence(byte(s))
		if seen[seq] {
			t.Fatalf("duplicate sequence for symbol %d", s)
		}
		seen[seq] = true
		if w := bits.OnesCount32(seq); w != 16 {
			t.Fatalf("symbol %d weight = %d, want 16 (balanced)", s, w)
		}
	}
}

func TestMinCodeDistance(t *testing.T) {
	d := MinCodeDistance()
	if d < 10 || d > 20 {
		t.Fatalf("MinCodeDistance = %d, outside the plausible 802.15.4 range", d)
	}
	t.Logf("min pairwise chip distance: %d (corrects %d chip errors)", d, (d-1)/2)
}

func TestDespreadCleanRoundTrip(t *testing.T) {
	for s := 0; s < 16; s++ {
		dec, dist := DespreadSymbol(ChipSequence(byte(s)))
		if dec != byte(s) || dist != 0 {
			t.Fatalf("despread(symbol %d) = (%d, %d)", s, dec, dist)
		}
	}
}

func TestDespreadCorrectsGuaranteedErrors(t *testing.T) {
	// Hard-decision decoding corrects up to (dmin-1)/2 chip errors.
	dmin := MinCodeDistance()
	correctable := (dmin - 1) / 2
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		s := byte(rng.Intn(16))
		chips := ChipSequence(s)
		// Flip exactly `correctable` distinct chips.
		perm := rng.Perm(32)
		for i := 0; i < correctable; i++ {
			chips ^= 1 << uint(perm[i])
		}
		dec, _ := DespreadSymbol(chips)
		if dec != s {
			t.Fatalf("symbol %d not recovered after %d chip errors", s, correctable)
		}
	}
}

func TestSpreadByteNibbleOrder(t *testing.T) {
	lo, hi := SpreadByte(0xA3)
	if lo != ChipSequence(0x3) {
		t.Fatal("low nibble must be transmitted first")
	}
	if hi != ChipSequence(0xA) {
		t.Fatal("high nibble second")
	}
}

func TestSpreadDespreadBytes(t *testing.T) {
	data := []byte{0x00, 0xFF, 0xA5, 0x5A, 0x13, 0x7E}
	chips := SpreadBytes(data)
	if len(chips) != 2*len(data) {
		t.Fatalf("chip stream length %d, want %d", len(chips), 2*len(data))
	}
	back := DespreadBytes(chips)
	if string(back) != string(data) {
		t.Fatalf("round trip: got % x, want % x", back, data)
	}
}

// Property: spread/despread is the identity on arbitrary byte strings.
func TestPropertySpreadRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		back := DespreadBytes(SpreadBytes(data))
		if len(back) != len(data) {
			return false
		}
		for i := range data {
			if back[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHammingDistance(t *testing.T) {
	if d := HammingDistance(0, 0); d != 0 {
		t.Fatalf("d(0,0) = %d", d)
	}
	if d := HammingDistance(0, 0xFFFFFFFF); d != 32 {
		t.Fatalf("d(0,ones) = %d", d)
	}
	if d := HammingDistance(0b1010, 0b0101); d != 4 {
		t.Fatalf("d = %d, want 4", d)
	}
}
