package phy

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTimingConstants(t *testing.T) {
	if SymbolPeriod != 16*time.Microsecond {
		t.Error("symbol period must be 16µs")
	}
	if BytePeriod != 32*time.Microsecond {
		t.Error("byte period must be 32µs")
	}
	if UnitBackoffPeriod != 320*time.Microsecond {
		t.Error("backoff slot must be 320µs")
	}
	if TurnaroundTime != 192*time.Microsecond {
		t.Error("turnaround must be 192µs")
	}
	if CCADuration != 128*time.Microsecond {
		t.Error("CCA must be 128µs")
	}
	if BitRate != 250_000 {
		t.Error("bit rate must be 250kb/s")
	}
	if SymbolRate != 62_500 {
		t.Error("symbol rate must be 62.5k/s")
	}
	if HeaderBytes != 6 {
		t.Error("PHY overhead must be 6 bytes")
	}
}

func TestTxDuration(t *testing.T) {
	// The paper: a maximal 123-byte payload packet takes about 4 ms.
	// 123 payload + 13 overhead = 136 bytes => 4.352 ms.
	d := TxDuration(136)
	if d != 4352*time.Microsecond {
		t.Fatalf("TxDuration(136) = %v", d)
	}
}

func TestQFunction(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.15866},
		{2, 0.02275},
		{3, 0.00135},
		{-1, 0.84134},
	}
	for _, c := range cases {
		if got := Q(c.x); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("Q(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestEq1MatchesPaperWindow(t *testing.T) {
	// Fig. 4 spans roughly BER 1e-6..1e-2 between -94 and -85 dBm.
	at94 := Eq1.BitErrorRate(-94)
	at85 := Eq1.BitErrorRate(-85)
	if at94 < 1e-4 || at94 > 1e-2 {
		t.Errorf("Eq1(-94 dBm) = %v, outside Fig. 4 window", at94)
	}
	if at85 < 1e-7 || at85 > 1e-4 {
		t.Errorf("Eq1(-85 dBm) = %v, outside Fig. 4 window", at85)
	}
	if at94 <= at85 {
		t.Error("BER must fall as received power rises")
	}
}

func TestExponentialBERClamping(t *testing.T) {
	if got := Eq1.BitErrorRate(-200); got != 0.5 {
		t.Errorf("very weak signal must clamp to 0.5, got %v", got)
	}
	if got := Eq1.BitErrorRate(0); got < 0 || got > 1e-15 {
		t.Errorf("strong signal BER = %v, want ≈0", got)
	}
}

// Property: ExponentialBER is monotone non-increasing in received power and
// always within [0, 0.5].
func TestPropertyEq1Monotone(t *testing.T) {
	f := func(a, b float64) bool {
		lo := math.Min(math.Mod(a, 120)-60, math.Mod(b, 120)-60)
		hi := math.Max(math.Mod(a, 120)-60, math.Mod(b, 120)-60)
		bLo := Eq1.BitErrorRate(hi)
		bHi := Eq1.BitErrorRate(lo)
		return bLo <= bHi && bLo >= 0 && bHi <= 0.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAWGNBER(t *testing.T) {
	m := AWGNBER{NoiseFigureDB: DefaultNoiseFigureDB}
	// Must be monotone decreasing and span sensible values.
	prev := 1.0
	for p := -100.0; p <= -80; p += 1 {
		ber := m.BitErrorRate(p)
		if ber > prev {
			t.Fatalf("AWGN BER not monotone at %v dBm", p)
		}
		prev = ber
	}
	if b := m.BitErrorRate(-110); b < 1e-3 {
		t.Errorf("BER at -110 dBm = %v, want near 0.5", b)
	}
	if b := m.BitErrorRate(-70); b > 1e-9 {
		t.Errorf("BER at -70 dBm = %v, want ≈0", b)
	}
}

func TestPacketErrorRate(t *testing.T) {
	if got := PacketErrorRate(0, 1000); got != 0 {
		t.Errorf("PER(ber=0) = %v", got)
	}
	if got := PacketErrorRate(1, 10); got != 1 {
		t.Errorf("PER(ber=1) = %v", got)
	}
	if got := PacketErrorRate(0.5, 0); got != 0 {
		t.Errorf("PER(0 bits) = %v", got)
	}
	// Exact small case: 1-(1-0.1)^2 = 0.19.
	if got, want := PacketErrorRate(0.1, 2), 0.19; math.Abs(got-want) > 1e-12 {
		t.Errorf("PER = %v, want %v", got, want)
	}
	// Stability for tiny BER: PER ≈ n·ber.
	got := PacketErrorRate(1e-12, 1000)
	if math.Abs(got-1e-9)/1e-9 > 1e-6 {
		t.Errorf("tiny-BER PER = %v, want ≈1e-9", got)
	}
}

func TestPacketErrorRateBytes(t *testing.T) {
	ber := 1e-4
	if got, want := PacketErrorRateBytes(ber, 129), PacketErrorRate(ber, 129*8); got != want {
		t.Errorf("bytes variant mismatch: %v vs %v", got, want)
	}
}

// Property: PER is monotone in both BER and packet length.
func TestPropertyPERMonotone(t *testing.T) {
	f := func(rawBer float64, n uint8, m uint8) bool {
		ber := math.Abs(math.Mod(rawBer, 1))
		n1, n2 := int(n)+1, int(n)+1+int(m)
		p1 := PacketErrorRate(ber, n1)
		p2 := PacketErrorRate(ber, n2)
		return p2 >= p1-1e-15 && p1 >= 0 && p2 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSensitivityEq1(t *testing.T) {
	// The CC2420 data sheet reports ≈ -95 dBm typical sensitivity; the
	// regression of eq. (1) should place the 1% PER point within a few dB.
	s := Sensitivity(Eq1)
	if s > -85 || s < -105 {
		t.Fatalf("Sensitivity(Eq1) = %v dBm, outside the plausible window", s)
	}
	t.Logf("Eq1 sensitivity: %.1f dBm", s)
}

func TestBandTable(t *testing.T) {
	if Band2450.Channels != 16 {
		t.Error("2450 MHz band must have 16 channels")
	}
	if Band915.Channels != 10 || Band868.Channels != 1 {
		t.Error("sub-GHz channel counts")
	}
	if Band2450.ByteDuration() != 32*time.Microsecond {
		t.Errorf("2450 byte duration = %v", Band2450.ByteDuration())
	}
	if Band868.ByteDuration() != 400*time.Microsecond {
		t.Errorf("868 byte duration = %v", Band868.ByteDuration())
	}
	if Band2450.SymbolPeriodOf() != 16*time.Microsecond {
		t.Errorf("2450 symbol period = %v", Band2450.SymbolPeriodOf())
	}
	for _, b := range []Band{Band868, Band915, Band2450} {
		if b.String() == "" {
			t.Error("empty band string")
		}
	}
}
