package phy

import (
	"math"
	"math/rand"
	"testing"
)

func TestModulateDemodulateClean(t *testing.T) {
	// Without noise, every chip sequence round-trips through the
	// waveform chain.
	for s := 0; s < 16; s++ {
		chips := ChipSequence(byte(s))
		rx := DemodulateChips(ModulateChips(chips))
		if rx != chips {
			t.Fatalf("symbol %d: waveform round trip %032b -> %032b", s, chips, rx)
		}
	}
}

func TestModulateArbitraryChips(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		chips := rng.Uint32()
		if rx := DemodulateChips(ModulateChips(chips)); rx != chips {
			t.Fatalf("round trip failed for %032b", chips)
		}
	}
}

func TestWaveformEnergyBalanced(t *testing.T) {
	// Each rail carries 16 half-sine pulses; total waveform energy is
	// 32 pulse energies regardless of the chip pattern.
	want := 32 * chipEnergy()
	for _, chips := range []uint32{0, 0xFFFFFFFF, ChipSequence(0), 0xAAAAAAAA} {
		w := ModulateChips(chips)
		var e float64
		for i := range w.I {
			e += w.I[i]*w.I[i] + w.Q[i]*w.Q[i]
		}
		// Adjacent rail pulses overlap only across distinct chips on the
		// same rail spaced 2 chip periods apart: no overlap at all, so
		// the energy is exact.
		if math.Abs(e-want)/want > 1e-9 {
			t.Fatalf("waveform energy %v, want %v (chips %08x)", e, want, chips)
		}
	}
}

func TestWaveformChipErrorMatchesTheory(t *testing.T) {
	// The whole point of the waveform model: the simulated chip error
	// rate must match the antipodal bound Q(sqrt(2·Ec/N0)).
	rng := rand.New(rand.NewSource(2))
	for _, ecn0DB := range []float64{-2, 0, 2} {
		ecn0 := math.Pow(10, ecn0DB/10)
		want := Q(math.Sqrt(2 * ecn0))
		got := WaveformChipError(ecn0, 3000, rng)
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("Ec/N0=%vdB: waveform chip error %v vs theory %v", ecn0DB, got, want)
		}
	}
}

func TestWaveformChipErrorZeroSNR(t *testing.T) {
	if got := WaveformChipError(0, 10, rand.New(rand.NewSource(3))); got != 0.5 {
		t.Fatalf("zero Ec/N0 must report 0.5, got %v", got)
	}
}

func TestWaveformBERBelowChipError(t *testing.T) {
	// Despreading must repair chip errors: symbol-level BER far below
	// the raw chip error rate at moderate SNR.
	rng := rand.New(rand.NewSource(4))
	ecn0 := math.Pow(10, -1.0/10) // -1 dB: chip errors ≈ 10%
	chipErr := WaveformChipError(ecn0, 2000, rng)
	ber := WaveformBER(ecn0, 2000, rng)
	if chipErr < 0.05 {
		t.Fatalf("chip error %v unexpectedly low", chipErr)
	}
	if ber > chipErr/2 {
		t.Errorf("BER %v not well below chip error %v: DSSS gain missing", ber, chipErr)
	}
}

func TestWaveformBERCleanAndHopeless(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if ber := WaveformBER(100, 200, rng); ber != 0 {
		t.Errorf("BER at +20dB Ec/N0 = %v, want 0", ber)
	}
	if ber := WaveformBER(0, 500, rng); ber < 0.2 {
		t.Errorf("BER at zero SNR = %v, want ≈0.46 (random symbol picks)", ber)
	}
}

func TestWaveformAgreesWithBSCBench(t *testing.T) {
	// End-to-end: the waveform chain and the BSC-based Bench must agree
	// on BER at equal chip error probability.
	rng := rand.New(rand.NewSource(6))
	// -3 dB: chip errors ≈ 16%, so both chains produce hundreds of bit
	// errors and the comparison is statistically meaningful.
	ecn0 := math.Pow(10, -0.3)
	waveBER := WaveformBER(ecn0, 4000, rng)

	// Configure a Bench whose ChipErrorProb equals the theory at this
	// Ec/N0 by inverting its link budget: p = Q(sqrt(2·Ec/N0)).
	p := Q(math.Sqrt(2 * ecn0))
	b := NewBench(7)
	// Directly exercise the BSC path via corruptChips at probability p.
	errors, bits := 0, 0
	for i := 0; i < 4000; i++ {
		sym := byte(b.rng.Intn(16))
		rx := b.corruptChips(ChipSequence(sym), p)
		dec, _ := DespreadSymbol(rx)
		diff := (sym ^ dec) & 0xF
		for diff != 0 {
			errors += int(diff & 1)
			diff >>= 1
		}
		bits += 4
	}
	bscBER := float64(errors) / float64(bits)
	if waveBER == 0 && bscBER == 0 {
		return // both clean: agreement trivially holds
	}
	hi, lo := math.Max(waveBER, bscBER), math.Min(waveBER, bscBER)
	if lo == 0 || hi/lo > 2.5 {
		t.Errorf("waveform BER %v vs BSC BER %v: abstraction mismatch", waveBER, bscBER)
	}
}

func BenchmarkWaveformSymbol(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(8))
	sigma := math.Sqrt(chipEnergy() / 2)
	for i := 0; i < b.N; i++ {
		DemodulateChips(ModulateChips(ChipSequence(byte(i&0xF))).AddAWGN(sigma, rng))
	}
}
