package phy

import (
	"testing"

	"dense802154/internal/fit"
)

func TestChipErrorProbMonotone(t *testing.T) {
	b := NewBench(1)
	prev := 1.0
	for p := -110.0; p <= -70; p += 2 {
		cp := b.ChipErrorProb(p)
		if cp > prev {
			t.Fatalf("chip error prob not monotone at %v dBm", p)
		}
		if cp < 0 || cp > 0.5 {
			t.Fatalf("chip error prob %v out of range", cp)
		}
		prev = cp
	}
}

func TestMeasureBERCleanChannel(t *testing.T) {
	b := NewBench(2)
	ber, bits := b.MeasureBER(-40, 100, 20000)
	if ber != 0 {
		t.Fatalf("BER at -40 dBm = %v, want 0", ber)
	}
	if bits != 20000 {
		t.Fatalf("bits sent = %d, want full budget", bits)
	}
}

func TestMeasureBERNoisyChannel(t *testing.T) {
	b := NewBench(3)
	ber, _ := b.MeasureBER(-100, 200, 2_000_000)
	if ber <= 0 {
		t.Fatal("BER at -100 dBm must be positive")
	}
	if ber > 0.5 {
		t.Fatalf("BER = %v exceeds 0.5", ber)
	}
}

func TestMeasureBERStopsAtTargetErrors(t *testing.T) {
	b := NewBench(4)
	_, bits := b.MeasureBER(-105, 10, 100_000_000)
	if bits >= 100_000_000 {
		t.Fatal("did not stop after reaching the error target")
	}
}

func TestBenchCurveInFig4Window(t *testing.T) {
	// The calibrated synthetic bench must land in the measured window of
	// Fig. 4: BER between 1e-4 and 1e-1 near -94 dBm, and below 1e-3 near
	// -85 dBm, with a steep negative slope in between.
	b := NewBench(5)
	berLow, _ := b.MeasureBER(-94, 500, 5_000_000)
	berHigh, _ := b.MeasureBER(-85, 500, 5_000_000)
	if berLow == 0 {
		t.Fatal("no errors at -94 dBm; noise calibration off")
	}
	if berLow < 1e-5 || berLow > 1e-1 {
		t.Errorf("BER(-94) = %v, outside Fig. 4 window", berLow)
	}
	if berHigh > 1e-3 {
		t.Errorf("BER(-85) = %v, want < 1e-3", berHigh)
	}
	if berHigh >= berLow {
		t.Error("BER must decrease with received power")
	}
}

func TestSweepAndRegressionRecoverEq1Form(t *testing.T) {
	// Regenerate the Fig. 4 pipeline: sweep, then exponential regression.
	// The synthetic radio is not the CC2420, so we only require the same
	// form: negative slope of comparable magnitude and a good fit.
	b := NewBench(6)
	points := b.Sweep(-96, -88, 1, 300, 2_000_000)
	if len(points) != 9 {
		t.Fatalf("sweep returned %d points, want 9", len(points))
	}
	var xs, ys []float64
	for _, p := range points {
		if p.BER > 0 {
			xs = append(xs, p.PRxDBm)
			ys = append(ys, p.BER)
		}
	}
	if len(xs) < 4 {
		t.Fatalf("only %d positive-BER points", len(xs))
	}
	e, err := fit.FitExponential(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if e.B >= -0.2 || e.B < -3 {
		t.Errorf("regression slope B = %v, want strongly negative like eq. (1)", e.B)
	}
	if e.R2 < 0.9 {
		t.Errorf("regression R2 = %v, want > 0.9", e.R2)
	}
	t.Logf("synthetic eq.(1): BER = %.3g·exp(%.3f·PRx), R2=%.3f (paper: 2.35e-30·exp(-0.659·PRx))", e.A, e.B, e.R2)
}

func TestMeasureBERZeroBudget(t *testing.T) {
	b := NewBench(7)
	ber, bits := b.MeasureBER(-90, 10, 0)
	if ber != 0 || bits != 0 {
		t.Fatalf("zero budget => (0,0), got (%v,%d)", ber, bits)
	}
}

func TestCorruptChipsExtremes(t *testing.T) {
	b := NewBench(8)
	chips := ChipSequence(5)
	if got := b.corruptChips(chips, 0); got != chips {
		t.Fatal("p=0 must not corrupt")
	}
	flipped := b.corruptChips(chips, 1)
	if HammingDistance(chips, flipped) != 32 {
		t.Fatal("p=1 must flip all chips")
	}
}

func TestAWGNAndBenchAgreeOnOrdering(t *testing.T) {
	// The soft-decision bound must be optimistic (lower BER) relative to
	// the hard-decision Monte-Carlo at equal noise figure.
	bench := NewBench(9)
	model := AWGNBER{NoiseFigureDB: bench.NoiseFigureDB}
	for _, prx := range []float64{-96, -94, -92} {
		mc, _ := bench.MeasureBER(prx, 300, 2_000_000)
		soft := model.BitErrorRate(prx)
		if mc > 0 && soft > mc*2 {
			t.Errorf("soft-decision bound %v not below MC %v at %v dBm", soft, mc, prx)
		}
	}
}

func BenchmarkDespreadSymbol(b *testing.B) {
	b.ReportAllocs()
	chips := ChipSequence(11) ^ 0x00010010
	for i := 0; i < b.N; i++ {
		DespreadSymbol(chips)
	}
}

func BenchmarkMeasureBERPoint(b *testing.B) {
	b.ReportAllocs()
	bench := NewBench(10)
	for i := 0; i < b.N; i++ {
		bench.MeasureBER(-92, 50, 100_000)
	}
}
