package phy

import "math/bits"

// The 2450 MHz PHY maps each 4-bit data symbol onto one of sixteen nearly
// orthogonal 32-chip pseudo-noise sequences (IEEE 802.15.4-2003 Table 24).
// A sequence is stored in a uint32 with chip index i at bit position i
// (chip 0 in the least significant bit).
//
// Symbol 0 uses the base sequence below; symbols 1-7 are obtained by a
// cyclic shift of four chips per symbol increment, and symbols 8-15 reuse
// sequences 0-7 with every odd-indexed chip inverted (the "conjugated"
// sequences that carry the fourth data bit on the Q chips).

// baseChips is the symbol-0 sequence,
// chips c0..c31 = 1101 1001 1100 0011 0101 0010 0010 1110.
const baseChips uint32 = 0x744AC39B // bit i = chip i of the sequence above

// oddChipMask selects the odd-indexed (Q-channel) chips.
const oddChipMask uint32 = 0xAAAAAAAA

// chipTable holds the sixteen spreading sequences, indexed by data symbol.
var chipTable = buildChipTable()

func buildChipTable() [16]uint32 {
	var t [16]uint32
	for s := 0; s < 8; s++ {
		// A cyclic shift of the chip stream by 4·s positions: chip i of
		// symbol s equals chip (i-4s mod 32) of symbol 0, i.e. a left
		// rotation of the LSB-first packed word.
		t[s] = bits.RotateLeft32(baseChips, 4*s)
		t[s+8] = t[s] ^ oddChipMask
	}
	return t
}

// ChipSequence returns the 32-chip PN sequence of a data symbol (0..15).
func ChipSequence(symbol byte) uint32 {
	return chipTable[symbol&0xF]
}

// SpreadSymbol maps a 4-bit data symbol onto its chip sequence.
func SpreadSymbol(symbol byte) uint32 { return ChipSequence(symbol) }

// SpreadByte maps one octet onto its two chip sequences. The low nibble is
// transmitted first (LSB-first symbol order, §6.5.2.2).
func SpreadByte(b byte) (first, second uint32) {
	return ChipSequence(b & 0xF), ChipSequence(b >> 4)
}

// SpreadBytes spreads a byte string into a chip-sequence stream, two
// sequences per byte, low nibble first.
func SpreadBytes(data []byte) []uint32 {
	out := make([]uint32, 0, 2*len(data))
	for _, b := range data {
		lo, hi := SpreadByte(b)
		out = append(out, lo, hi)
	}
	return out
}

// HammingDistance reports the number of differing chips between two packed
// sequences.
func HammingDistance(a, b uint32) int { return bits.OnesCount32(a ^ b) }

// DespreadSymbol performs hard-decision despreading: it returns the data
// symbol whose PN sequence is closest in Hamming distance to the received
// chips, together with that distance. Ties resolve to the lowest symbol.
func DespreadSymbol(chips uint32) (symbol byte, distance int) {
	best := 33
	var bestSym byte
	for s := 0; s < 16; s++ {
		d := bits.OnesCount32(chips ^ chipTable[s])
		if d < best {
			best = d
			bestSym = byte(s)
		}
	}
	return bestSym, best
}

// DespreadBytes reconstructs a byte string from a chip-sequence stream as
// produced by SpreadBytes. The stream length must be even.
func DespreadBytes(chips []uint32) []byte {
	out := make([]byte, 0, len(chips)/2)
	for i := 0; i+1 < len(chips); i += 2 {
		lo, _ := DespreadSymbol(chips[i])
		hi, _ := DespreadSymbol(chips[i+1])
		out = append(out, lo|hi<<4)
	}
	return out
}

// MinCodeDistance reports the minimum pairwise Hamming distance of the
// sixteen-sequence code family. Hard-decision despreading corrects up to
// (MinCodeDistance()-1)/2 chip errors per symbol.
func MinCodeDistance() int {
	min := 32
	for i := 0; i < 16; i++ {
		for j := i + 1; j < 16; j++ {
			if d := HammingDistance(chipTable[i], chipTable[j]); d < min {
				min = d
			}
		}
	}
	return min
}
