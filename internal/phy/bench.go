package phy

import (
	"math"
	"math/rand"
)

// Bench is a chip-level Monte-Carlo bit-error test bench. It reproduces the
// methodology of the paper's section 3 — two radios connected through a
// calibrated attenuator over an effectively AWGN channel — with a synthetic
// substitute: data symbols are spread onto 32-chip PN sequences, each chip
// passes through a binary symmetric channel whose crossover probability
// follows from the received power, and the receiver performs hard-decision
// minimum-Hamming-distance despreading.
//
// The resulting BER-vs-power curve is then regressed exponentially exactly
// as the paper derives eq. (1) from Fig. 4.
type Bench struct {
	// NoiseFigureDB positions the curve on the received-power axis; the
	// default (see NewBench) is calibrated so the curve falls in the
	// measured Fig. 4 window (BER 1e-6..1e-2 between -94 and -85 dBm).
	NoiseFigureDB float64
	rng           *rand.Rand
}

// DefaultNoiseFigureDB calibrates the synthetic receiver so its BER curve
// overlaps the CC2420 measurements of Fig. 4.
const DefaultNoiseFigureDB = 18.5

// NewBench returns a test bench with the given seed and the calibrated
// default noise figure.
func NewBench(seed int64) *Bench {
	return &Bench{NoiseFigureDB: DefaultNoiseFigureDB, rng: rand.New(rand.NewSource(seed))}
}

// ChipErrorProb reports the binary-symmetric-channel crossover probability
// for a chip received at prxDBm: p = Q(sqrt(2·Ec/N0)) with
// Ec/N0 = P_Rx / (N0 · chip rate).
func (b *Bench) ChipErrorProb(prxDBm float64) float64 {
	n0 := ThermalNoiseDBmHz + b.NoiseFigureDB
	ecDBm := prxDBm - 10*math.Log10(ChipRate)
	ecn0 := math.Pow(10, (ecDBm-n0)/10)
	return Q(math.Sqrt(2 * ecn0))
}

// corruptChips flips each of the 32 chips independently with probability p.
func (b *Bench) corruptChips(chips uint32, p float64) uint32 {
	if p <= 0 {
		return chips
	}
	var flip uint32
	for i := 0; i < ChipsPerSymbol; i++ {
		if b.rng.Float64() < p {
			flip |= 1 << uint(i)
		}
	}
	return chips ^ flip
}

// MeasureBER estimates the bit error rate at the given received power by
// transmitting random symbols until either targetErrors bit errors have
// been observed or maxBits bits have been sent. It returns the estimate and
// the number of bits actually simulated.
func (b *Bench) MeasureBER(prxDBm float64, targetErrors, maxBits int) (ber float64, bitsSent int) {
	p := b.ChipErrorProb(prxDBm)
	errors := 0
	for bitsSent < maxBits && errors < targetErrors {
		sym := byte(b.rng.Intn(16))
		rx := b.corruptChips(ChipSequence(sym), p)
		dec, _ := DespreadSymbol(rx)
		diff := (sym ^ dec) & 0xF
		for diff != 0 {
			errors += int(diff & 1)
			diff >>= 1
		}
		bitsSent += BitsPerSymbol
	}
	if bitsSent == 0 {
		return 0, 0
	}
	return float64(errors) / float64(bitsSent), bitsSent
}

// SweepPoint is one measurement of a BER sweep.
type SweepPoint struct {
	PRxDBm float64
	BER    float64
	Bits   int
}

// Sweep measures the BER over a range of received powers (inclusive ends,
// fixed step), mirroring the attenuator sweep of the paper's test bench.
func (b *Bench) Sweep(fromDBm, toDBm, stepDB float64, targetErrors, maxBits int) []SweepPoint {
	var out []SweepPoint
	for p := fromDBm; p <= toDBm+1e-9; p += stepDB {
		ber, n := b.MeasureBER(p, targetErrors, maxBits)
		out = append(out, SweepPoint{PRxDBm: p, BER: ber, Bits: n})
	}
	return out
}
