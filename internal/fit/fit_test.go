package fit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearExact(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 3*v - 2
	}
	line, err := Linear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(line.Slope-3) > 1e-12 || math.Abs(line.Intercept+2) > 1e-12 {
		t.Fatalf("fit = %+v, want slope 3 intercept -2", line)
	}
	if math.Abs(line.R2-1) > 1e-12 {
		t.Fatalf("R2 = %v, want 1", line.R2)
	}
}

func TestLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var x, y []float64
	for i := 0; i < 500; i++ {
		xi := float64(i) / 10
		x = append(x, xi)
		y = append(y, -0.659*xi+4+rng.NormFloat64()*0.01)
	}
	line, err := Linear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(line.Slope+0.659) > 0.01 {
		t.Fatalf("slope = %v, want ≈ -0.659", line.Slope)
	}
	if line.R2 < 0.99 {
		t.Fatalf("R2 = %v, want > 0.99", line.R2)
	}
}

func TestLinearDegenerate(t *testing.T) {
	if _, err := Linear([]float64{1}, []float64{1}); err == nil {
		t.Error("single point must fail")
	}
	if _, err := Linear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("zero x-variance must fail")
	}
	if _, err := Linear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch must fail")
	}
}

func TestLinearConstantY(t *testing.T) {
	line, err := Linear([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if line.Slope != 0 || line.Intercept != 5 || line.R2 != 1 {
		t.Fatalf("constant fit = %+v", line)
	}
}

func TestFitExponentialRecoversPaperStyleModel(t *testing.T) {
	// Synthesize data from an eq.(1)-style model:
	// BER = A*exp(B*PRx) with B = -0.659 (PRx in dBm, so BER falls as the
	// received power rises: PRx more negative => larger BER).
	a, b := 2.35e-30, -0.659
	var x, y []float64
	for p := -94.0; p <= -85.0; p += 0.5 {
		x = append(x, p)
		y = append(y, a*math.Exp(b*p))
	}
	e, err := FitExponential(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.B-b) > 1e-9 {
		t.Fatalf("B = %v, want %v", e.B, b)
	}
	if math.Abs(math.Log(e.A)-math.Log(a)) > 1e-6 {
		t.Fatalf("A = %v, want %v", e.A, a)
	}
	// Eval round-trip.
	if got, want := e.Eval(-90), a*math.Exp(b*-90); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("Eval = %v, want %v", got, want)
	}
}

func TestFitExponentialSkipsNonPositive(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{math.Exp(1), 0, math.Exp(3), -5}
	e, err := FitExponential(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.B-1) > 1e-9 {
		t.Fatalf("B = %v, want 1", e.B)
	}
}

func TestFitExponentialAllNonPositive(t *testing.T) {
	if _, err := FitExponential([]float64{1, 2}, []float64{0, -1}); err == nil {
		t.Fatal("expected error for all-non-positive y")
	}
}

func TestCrossingSimple(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y1 := []float64{0, 1, 2, 3}   // y = x
	y2 := []float64{3, 2, 1, 0}   // y = 3 - x
	xc, ok := Crossing(x, y1, y2) // cross at 1.5
	if !ok || math.Abs(xc-1.5) > 1e-12 {
		t.Fatalf("crossing = (%v,%v), want 1.5", xc, ok)
	}
}

func TestCrossingNone(t *testing.T) {
	x := []float64{0, 1, 2}
	y1 := []float64{0, 1, 2}
	y2 := []float64{5, 6, 7}
	if _, ok := Crossing(x, y1, y2); ok {
		t.Fatal("no crossing expected")
	}
}

func TestCrossingAtSample(t *testing.T) {
	x := []float64{0, 1, 2}
	y1 := []float64{1, 1, 3}
	y2 := []float64{1, 2, 2} // equal at x=0
	xc, ok := Crossing(x, y1, y2)
	if !ok || xc != 0 {
		t.Fatalf("crossing = (%v, %v), want (0, true)", xc, ok)
	}
}

func TestCrossingBadInput(t *testing.T) {
	if _, ok := Crossing([]float64{1}, []float64{1}, []float64{1}); ok {
		t.Fatal("single sample cannot cross")
	}
	if _, ok := Crossing([]float64{1, 2}, []float64{1}, []float64{1, 2}); ok {
		t.Fatal("length mismatch must report !ok")
	}
}

func TestInterp(t *testing.T) {
	xs := []float64{0, 10, 20}
	ys := []float64{0, 100, 400}
	cases := []struct{ x, want float64 }{
		{-5, 0},   // clamp low
		{25, 400}, // clamp high
		{0, 0},    // exact
		{5, 50},   // interp
		{15, 250}, // interp
		{10, 100}, // knot
		{20, 400}, // end
	}
	for _, c := range cases {
		if got := Interp(xs, ys, c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Interp(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if !math.IsNaN(Interp(nil, nil, 1)) {
		t.Error("Interp on empty grid must be NaN")
	}
}

// Property: interpolation at grid points returns the grid value, and
// between points the result is within [min,max] of the bracketing values.
func TestPropertyInterpBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		x := 0.0
		for i := 0; i < n; i++ {
			x += 0.1 + rng.Float64()
			xs[i] = x
			ys[i] = rng.NormFloat64() * 10
		}
		for trial := 0; trial < 20; trial++ {
			q := xs[0] + rng.Float64()*(xs[n-1]-xs[0])
			v := Interp(xs, ys, q)
			// Locate bracket.
			j := 0
			for j < n-1 && xs[j+1] < q {
				j++
			}
			lo, hi := math.Min(ys[j], ys[j+1]), math.Max(ys[j], ys[j+1])
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
