// Package fit implements the small regression toolbox the reproduction
// needs: ordinary least-squares lines, the exponential regression used to
// derive the paper's bit-error model (eq. 1) from test-bench data, and a
// curve-crossing finder used to locate the transmit-power switching
// thresholds of Fig. 7.
package fit

import (
	"errors"
	"math"
)

// ErrDegenerate is returned when a fit is requested on data that does not
// determine a unique solution (too few points or zero variance in x).
var ErrDegenerate = errors.New("fit: degenerate input")

// Line is a least-squares line y = Slope*x + Intercept with coefficient of
// determination R2.
type Line struct {
	Slope, Intercept float64
	R2               float64
}

// Linear fits y = a*x + b by ordinary least squares.
func Linear(x, y []float64) (Line, error) {
	if len(x) != len(y) {
		return Line{}, errors.New("fit: length mismatch")
	}
	n := float64(len(x))
	if len(x) < 2 {
		return Line{}, ErrDegenerate
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Line{}, ErrDegenerate
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	r2 := 1.0
	if syy > 0 {
		ssRes := syy - slope*sxy
		r2 = 1 - ssRes/syy
	}
	return Line{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// Exponential is a fit y = A * exp(B*x) obtained by log-linear regression.
type Exponential struct {
	A, B float64
	R2   float64 // in log space
}

// Eval evaluates the fitted model at x.
func (e Exponential) Eval(x float64) float64 { return e.A * math.Exp(e.B*x) }

// FitExponential fits y = A*exp(B*x) to strictly positive y values by linear
// regression on (x, ln y). This mirrors the exponential regression of the
// paper's Fig. 4, where the measured bit error rate is fitted against the
// received power in dBm.
func FitExponential(x, y []float64) (Exponential, error) {
	if len(x) != len(y) {
		return Exponential{}, errors.New("fit: length mismatch")
	}
	logy := make([]float64, 0, len(y))
	xs := make([]float64, 0, len(x))
	for i := range y {
		if y[i] > 0 {
			xs = append(xs, x[i])
			logy = append(logy, math.Log(y[i]))
		}
	}
	line, err := Linear(xs, logy)
	if err != nil {
		return Exponential{}, err
	}
	return Exponential{A: math.Exp(line.Intercept), B: line.Slope, R2: line.R2}, nil
}

// Crossing locates the first x at which curve y1 crosses curve y2, assuming
// both are sampled at the same strictly increasing x grid. The crossing
// point is linearly interpolated. ok is false when the curves never cross
// inside the grid.
func Crossing(x, y1, y2 []float64) (xc float64, ok bool) {
	if len(x) < 2 || len(x) != len(y1) || len(x) != len(y2) {
		return 0, false
	}
	d0 := y1[0] - y2[0]
	for i := 1; i < len(x); i++ {
		d1 := y1[i] - y2[i]
		if d0 == 0 {
			return x[i-1], true
		}
		if (d0 < 0 && d1 >= 0) || (d0 > 0 && d1 <= 0) {
			// Linear interpolation between samples i-1 and i.
			t := d0 / (d0 - d1)
			return x[i-1] + t*(x[i]-x[i-1]), true
		}
		d0 = d1
	}
	return 0, false
}

// Interp performs piecewise-linear interpolation of (xs, ys) at x, clamping
// outside the grid. xs must be strictly increasing.
func Interp(xs, ys []float64, x float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	if x <= xs[0] {
		return ys[0]
	}
	if x >= xs[n-1] {
		return ys[n-1]
	}
	// Binary search for the bracketing interval.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if xs[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	t := (x - xs[lo]) / (xs[hi] - xs[lo])
	return ys[lo] + t*(ys[hi]-ys[lo])
}
