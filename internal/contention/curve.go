package contention

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"dense802154/internal/engine"
	"dense802154/internal/fit"
)

// Stats is the tuple of contention-side quantities the analytical energy
// model consumes (the paper's T̄cont, N̄CCA, Pr_cf, Pr_col).
type Stats struct {
	Tcont time.Duration
	NCCA  float64
	PrCF  float64
	PrCol float64
}

// Source yields contention statistics for a payload size and offered load.
// The analytical model (internal/core) is parameterized over this
// interface; the paper characterizes the relation empirically by
// Monte-Carlo simulation (MCSource), and Approx provides a closed-form
// baseline for comparison.
//
// Implementations must be safe for concurrent use: the model's sweep entry
// points evaluate grid points on a worker pool (core.Params.Workers, which
// defaults to runtime.NumCPU()) and call Contention from many goroutines.
// MCSource and Approx satisfy this; a custom source that memoizes must
// either lock or run the sweep with Workers = 1.
type Source interface {
	Contention(payloadBytes int, load float64) Stats
}

// Curve is the Monte-Carlo characterization of one packet size across a
// load sweep — one set of the four Fig. 6 series.
type Curve struct {
	PayloadBytes int
	Loads        []float64
	TcontSec     []float64
	NCCA         []float64
	PrCF         []float64
	PrCol        []float64
	Results      []Result
}

// BuildCurve simulates the contention procedure for the given payload at
// each target load. base supplies the superframe, CSMA parameters, arrival
// model, run length, seed and worker count; its PayloadBytes/TargetLoad are
// overridden. The load points run concurrently on base.Workers goroutines
// with point seeds derived from base.Seed, so the curve is identical at any
// worker count.
func BuildCurve(payload int, loads []float64, base Config) Curve {
	c := Curve{PayloadBytes: payload}
	// When the curve fans out over several load points, run each point's
	// Simulate serially so total concurrency stays at base.Workers instead
	// of multiplying point workers by shard workers. Results are identical
	// either way — Workers never changes statistics.
	pointCfg := base
	if len(loads) > 1 {
		pointCfg.Workers = 1
	}
	// Point simulations cannot fail and the context is never canceled.
	results, _ := engine.MapSlice(context.Background(), base.Workers, loads,
		func(i int, l float64) (Result, error) {
			cfg := pointCfg
			cfg.PayloadBytes = payload
			cfg.TargetLoad = l
			cfg.Seed = base.Seed + int64(i)*7919
			return Simulate(cfg), nil
		})
	for i, l := range loads {
		r := results[i]
		c.Loads = append(c.Loads, l)
		c.TcontSec = append(c.TcontSec, r.MeanContention.Seconds())
		c.NCCA = append(c.NCCA, r.MeanCCAs)
		c.PrCF = append(c.PrCF, r.PrCF)
		c.PrCol = append(c.PrCol, r.PrCol)
		c.Results = append(c.Results, r)
	}
	return c
}

// At interpolates the curve at the given load (clamping outside the grid).
func (c *Curve) At(load float64) Stats {
	return Stats{
		Tcont: time.Duration(fit.Interp(c.Loads, c.TcontSec, load) * float64(time.Second)),
		NCCA:  fit.Interp(c.Loads, c.NCCA, load),
		PrCF:  fit.Interp(c.Loads, c.PrCF, load),
		PrCol: fit.Interp(c.Loads, c.PrCol, load),
	}
}

// mcKey identifies one Monte-Carlo characterization point in the shared
// contention cache: the full simulation config (with the per-point fields
// normalized out) plus the payload and the quantized load. Workers is
// excluded because the sharded simulation is worker-count independent — the
// same statistics are produced, and may be shared, at any parallelism.
type mcKey struct {
	base      Config
	payload   int
	loadMilli int
}

// mcCache is the process-wide memoized contention cache: every MCSource —
// and therefore every sweep of the analytical model — shares it, so
// identical contention statistics are simulated once per sweep instead of
// once per point, even when many engine workers request the same point
// concurrently (single-flight semantics).
var mcCache engine.Cache[mcKey, Stats]

// ResetCache drops the shared Monte-Carlo contention cache. Long-running
// services sweeping unbounded (payload, load, config) spaces should call it
// between sweeps to bound memory — or install a standing bound with
// SetCacheLimit; tests use it to force re-simulation.
func ResetCache() { mcCache.Reset() }

// CacheLen reports the number of cached contention characterizations.
func CacheLen() int { return mcCache.Len() }

// SetCacheLimit bounds the shared contention cache to at most n
// characterizations with least-recently-used eviction; n ≤ 0 removes the
// bound. Services sweeping unbounded parameter spaces set this once at
// startup instead of calling ResetCache between sweeps.
func SetCacheLimit(n int) { mcCache.SetLimit(n) }

// CacheStats snapshots the shared contention cache's hit/miss/eviction
// counters and current size.
func CacheStats() engine.CacheStats { return mcCache.Stats() }

// MCSource is a Monte-Carlo-backed Source with memoization. It simulates
// on demand at the requested (payload, load) point; results are cached on a
// quantized key in the process-wide shared cache, so sweeps of the
// analytical model — including concurrent batch sweeps — do not
// re-simulate identical points.
type MCSource struct {
	// Base supplies superframe, CSMA parameters, arrival model, run
	// length, seed and worker count.
	Base Config
}

// NewMCSource builds a memoized Monte-Carlo source.
func NewMCSource(base Config) *MCSource {
	return &MCSource{Base: base}
}

// Contention implements Source. It is safe for concurrent use; concurrent
// requests for the same point block on one simulation and share its result.
func (s *MCSource) Contention(payloadBytes int, load float64) Stats {
	key := mcKey{base: s.Base, payload: payloadBytes, loadMilli: int(math.Round(load * 1000))}
	key.base.PayloadBytes = 0
	key.base.TargetLoad = 0
	key.base.Workers = 0
	return mcCache.Get(key, func() Stats {
		cfg := s.Base
		cfg.PayloadBytes = payloadBytes
		cfg.TargetLoad = load
		r := Simulate(cfg)
		return Stats{Tcont: r.MeanContention, NCCA: r.MeanCCAs, PrCF: r.PrCF, PrCol: r.PrCol}
	})
}

// String implements fmt.Stringer.
func (s *MCSource) String() string { return "monte-carlo" }

// CurveSource serves lookups by interpolating pre-built curves, one per
// payload size; payloads between curves use the nearest curve.
type CurveSource struct {
	Curves []Curve // must be sorted by PayloadBytes
}

// NewCurveSource sorts and wraps pre-built curves.
func NewCurveSource(curves ...Curve) *CurveSource {
	cs := &CurveSource{Curves: append([]Curve(nil), curves...)}
	sort.Slice(cs.Curves, func(i, j int) bool {
		return cs.Curves[i].PayloadBytes < cs.Curves[j].PayloadBytes
	})
	return cs
}

// Contention implements Source.
func (s *CurveSource) Contention(payloadBytes int, load float64) Stats {
	if len(s.Curves) == 0 {
		panic("contention: empty CurveSource")
	}
	best := 0
	bestDist := math.Abs(float64(s.Curves[0].PayloadBytes - payloadBytes))
	for i := 1; i < len(s.Curves); i++ {
		if d := math.Abs(float64(s.Curves[i].PayloadBytes - payloadBytes)); d < bestDist {
			best, bestDist = i, d
		}
	}
	return s.Curves[best].At(load)
}

// String implements fmt.Stringer.
func (s *CurveSource) String() string {
	sizes := make([]string, len(s.Curves))
	for i, c := range s.Curves {
		sizes[i] = fmt.Sprintf("%dB", c.PayloadBytes)
	}
	return fmt.Sprintf("curves(%v)", sizes)
}
