package contention

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"dense802154/internal/fit"
)

// Stats is the tuple of contention-side quantities the analytical energy
// model consumes (the paper's T̄cont, N̄CCA, Pr_cf, Pr_col).
type Stats struct {
	Tcont time.Duration
	NCCA  float64
	PrCF  float64
	PrCol float64
}

// Source yields contention statistics for a payload size and offered load.
// The analytical model (internal/core) is parameterized over this
// interface; the paper characterizes the relation empirically by
// Monte-Carlo simulation (MCSource), and Approx provides a closed-form
// baseline for comparison.
type Source interface {
	Contention(payloadBytes int, load float64) Stats
}

// Curve is the Monte-Carlo characterization of one packet size across a
// load sweep — one set of the four Fig. 6 series.
type Curve struct {
	PayloadBytes int
	Loads        []float64
	TcontSec     []float64
	NCCA         []float64
	PrCF         []float64
	PrCol        []float64
	Results      []Result
}

// BuildCurve simulates the contention procedure for the given payload at
// each target load. base supplies the superframe, CSMA parameters, arrival
// model, run length and seed; its PayloadBytes/TargetLoad are overridden.
func BuildCurve(payload int, loads []float64, base Config) Curve {
	c := Curve{PayloadBytes: payload}
	for i, l := range loads {
		cfg := base
		cfg.PayloadBytes = payload
		cfg.TargetLoad = l
		cfg.Seed = base.Seed + int64(i)*7919
		r := Simulate(cfg)
		c.Loads = append(c.Loads, l)
		c.TcontSec = append(c.TcontSec, r.MeanContention.Seconds())
		c.NCCA = append(c.NCCA, r.MeanCCAs)
		c.PrCF = append(c.PrCF, r.PrCF)
		c.PrCol = append(c.PrCol, r.PrCol)
		c.Results = append(c.Results, r)
	}
	return c
}

// At interpolates the curve at the given load (clamping outside the grid).
func (c *Curve) At(load float64) Stats {
	return Stats{
		Tcont: time.Duration(fit.Interp(c.Loads, c.TcontSec, load) * float64(time.Second)),
		NCCA:  fit.Interp(c.Loads, c.NCCA, load),
		PrCF:  fit.Interp(c.Loads, c.PrCF, load),
		PrCol: fit.Interp(c.Loads, c.PrCol, load),
	}
}

// MCSource is a Monte-Carlo-backed Source with memoization. It simulates
// on demand at the requested (payload, load) point; results are cached on a
// quantized key so sweeps of the analytical model do not re-simulate.
type MCSource struct {
	// Base supplies superframe, CSMA parameters, arrival model, run
	// length and seed.
	Base Config

	mu    sync.Mutex
	cache map[[2]int]Stats
}

// NewMCSource builds a memoized Monte-Carlo source.
func NewMCSource(base Config) *MCSource {
	return &MCSource{Base: base, cache: make(map[[2]int]Stats)}
}

// Contention implements Source.
func (s *MCSource) Contention(payloadBytes int, load float64) Stats {
	key := [2]int{payloadBytes, int(math.Round(load * 1000))}
	s.mu.Lock()
	if st, ok := s.cache[key]; ok {
		s.mu.Unlock()
		return st
	}
	s.mu.Unlock()

	cfg := s.Base
	cfg.PayloadBytes = payloadBytes
	cfg.TargetLoad = load
	r := Simulate(cfg)
	st := Stats{Tcont: r.MeanContention, NCCA: r.MeanCCAs, PrCF: r.PrCF, PrCol: r.PrCol}

	s.mu.Lock()
	s.cache[key] = st
	s.mu.Unlock()
	return st
}

// String implements fmt.Stringer.
func (s *MCSource) String() string { return "monte-carlo" }

// CurveSource serves lookups by interpolating pre-built curves, one per
// payload size; payloads between curves use the nearest curve.
type CurveSource struct {
	Curves []Curve // must be sorted by PayloadBytes
}

// NewCurveSource sorts and wraps pre-built curves.
func NewCurveSource(curves ...Curve) *CurveSource {
	cs := &CurveSource{Curves: append([]Curve(nil), curves...)}
	sort.Slice(cs.Curves, func(i, j int) bool {
		return cs.Curves[i].PayloadBytes < cs.Curves[j].PayloadBytes
	})
	return cs
}

// Contention implements Source.
func (s *CurveSource) Contention(payloadBytes int, load float64) Stats {
	if len(s.Curves) == 0 {
		panic("contention: empty CurveSource")
	}
	best := 0
	bestDist := math.Abs(float64(s.Curves[0].PayloadBytes - payloadBytes))
	for i := 1; i < len(s.Curves); i++ {
		if d := math.Abs(float64(s.Curves[i].PayloadBytes - payloadBytes)); d < bestDist {
			best, bestDist = i, d
		}
	}
	return s.Curves[best].At(load)
}

// String implements fmt.Stringer.
func (s *CurveSource) String() string {
	sizes := make([]string, len(s.Curves))
	for i, c := range s.Curves {
		sizes[i] = fmt.Sprintf("%dB", c.PayloadBytes)
	}
	return fmt.Sprintf("curves(%v)", sizes)
}
