package contention

import (
	"reflect"
	"runtime"
	"testing"
)

// statFields strips the Config echo (whose Workers field legitimately
// differs between runs) so results can be compared bit-for-bit.
func statFields(r Result) Result {
	r.Config = Config{}
	return r
}

func TestSimulateWorkerCountInvariance(t *testing.T) {
	base := Config{PayloadBytes: 120, TargetLoad: 0.42, Superframes: 24, Seed: 42}
	want := Simulate(withWorkers(base, 1))
	for _, w := range []int{2, 4, runtime.NumCPU(), 0} {
		got := Simulate(withWorkers(base, w))
		if !reflect.DeepEqual(statFields(got), statFields(want)) {
			t.Fatalf("workers=%d diverged:\n got %+v\nwant %+v", w, got, want)
		}
	}
}

func withWorkers(c Config, w int) Config {
	c.Workers = w
	return c
}

func TestBuildCurveWorkerCountInvariance(t *testing.T) {
	// The Fig. 6 construction: same seed must give byte-identical curves at
	// Workers = 1, 4 and NumCPU.
	loads := []float64{0.1, 0.3, 0.5, 0.7}
	base := Config{Superframes: 16, Seed: 2005}
	want := BuildCurve(50, loads, withWorkers(base, 1))
	for _, w := range []int{4, runtime.NumCPU()} {
		got := BuildCurve(50, loads, withWorkers(base, w))
		if !reflect.DeepEqual(got.TcontSec, want.TcontSec) ||
			!reflect.DeepEqual(got.NCCA, want.NCCA) ||
			!reflect.DeepEqual(got.PrCF, want.PrCF) ||
			!reflect.DeepEqual(got.PrCol, want.PrCol) {
			t.Fatalf("workers=%d produced a different Fig. 6 curve", w)
		}
	}
}

func TestSharedCacheServesIdenticalPointsOnce(t *testing.T) {
	ResetCache()
	defer ResetCache()
	base := Config{Superframes: 8, Seed: 7}
	s1 := NewMCSource(base)
	a := s1.Contention(120, 0.4)
	if CacheLen() != 1 {
		t.Fatalf("cache len = %d after first point, want 1", CacheLen())
	}
	// A second source with the same base config — and any worker count —
	// must hit the shared entry rather than re-simulating.
	s2 := NewMCSource(withWorkers(base, 4))
	b := s2.Contention(120, 0.4)
	if CacheLen() != 1 {
		t.Fatalf("cache len = %d after identical point, want 1 (re-simulated)", CacheLen())
	}
	if a != b {
		t.Fatalf("shared cache returned different stats: %+v vs %+v", a, b)
	}
	// A different load is a different point.
	s1.Contention(120, 0.6)
	if CacheLen() != 2 {
		t.Fatalf("cache len = %d after second point, want 2", CacheLen())
	}
	// A different base config must not alias.
	s3 := NewMCSource(Config{Superframes: 8, Seed: 8})
	s3.Contention(120, 0.4)
	if CacheLen() != 3 {
		t.Fatalf("cache len = %d after third point, want 3", CacheLen())
	}
}
