// Package contention characterizes the slotted CSMA/CA algorithm by
// Monte-Carlo simulation, reproducing the methodology behind the paper's
// Fig. 6: for a given network load λ (aggregate on-air time relative to the
// beacon interval) and packet size, it measures
//
//   - T̄cont: the mean duration of the contention procedure,
//   - N̄CCA:  the mean number of clear channel assessments per procedure,
//   - Pr_cf: the channel access failure probability,
//   - Pr_col: the residual collision probability of granted transmissions.
//
// The simulator works on the backoff-slot grid of one channel: packets
// arrive (by default) uniformly over the inter-beacon period, every node is
// in range of every other (star topology, no hidden terminals), a CCA at a
// slot boundary senses any transmission overlapping that boundary
// (including one starting at it, since its energy fills the CCA window),
// and collisions therefore occur exactly when several granted nodes start
// on the same boundary.
package contention

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"dense802154/internal/engine"
	"dense802154/internal/frame"
	"dense802154/internal/mac"
	"dense802154/internal/phy"
	"dense802154/internal/stats"
)

// ArrivalModel selects when packets become ready inside a superframe.
type ArrivalModel int

// Arrival models.
const (
	// ArrivalUniform spreads packet arrivals uniformly over the
	// inter-beacon period — the statistical multiplexing of sparse sensor
	// data the paper's §2 describes. This is the default.
	ArrivalUniform ArrivalModel = iota
	// ArrivalAtBeacon makes every packet contend right after the beacon,
	// the worst-case burst used as an ablation.
	ArrivalAtBeacon
)

// String implements fmt.Stringer.
func (a ArrivalModel) String() string {
	switch a {
	case ArrivalUniform:
		return "uniform"
	case ArrivalAtBeacon:
		return "at-beacon"
	default:
		return fmt.Sprintf("arrival(%d)", int(a))
	}
}

// Config parameterizes one Monte-Carlo run.
type Config struct {
	// PayloadBytes is the data payload L; the on-air packet is
	// Lo + L bytes (paper accounting).
	PayloadBytes int
	// Superframe fixes the slot grid (the paper uses BO = SO = 6).
	Superframe mac.Superframe
	// CSMA are the algorithm parameters (defaults to mac.PaperParams).
	CSMA mac.CSMAParams
	// Arrival selects the arrival model.
	Arrival ArrivalModel
	// TargetLoad is the offered load λ; the simulator offers
	// λ·Tib/Tpacket packets per superframe.
	TargetLoad float64
	// Superframes is the number of beacon intervals to simulate.
	Superframes int
	// BeaconBytes is the beacon's on-air size; the channel is busy for
	// that long after each beacon boundary. Defaults to a minimal beacon.
	BeaconBytes int
	// Seed drives the deterministic RNG.
	Seed int64
	// Workers bounds the goroutines simulating superframe shards: 1 runs
	// serially, 0 (or negative) uses runtime.NumCPU(). The simulation is
	// sharded into fixed blocks of superframes with per-shard seeds derived
	// from Seed, so the result is bit-identical at any worker count —
	// Workers only changes wall-clock time, never statistics.
	Workers int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.CSMA == (mac.CSMAParams{}) {
		c.CSMA = mac.PaperParams()
	}
	if c.Superframe == (mac.Superframe{}) {
		sf, err := mac.NewSuperframe(6, 6)
		if err != nil {
			panic(err)
		}
		c.Superframe = sf
	}
	if c.Superframes == 0 {
		c.Superframes = 50
	}
	if c.BeaconBytes == 0 {
		c.BeaconBytes = frame.BeaconOnAirBytes(0, 0, 0, 0)
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 120
	}
	return c
}

// PacketDuration reports the on-air time of one packet.
func (c Config) PacketDuration() time.Duration {
	return frame.PaperPacketDuration(c.PayloadBytes)
}

// PacketsPerSuperframe reports the offered packets per beacon interval that
// realize TargetLoad.
func (c Config) PacketsPerSuperframe() float64 {
	cc := c.withDefaults()
	return cc.TargetLoad * float64(cc.Superframe.BeaconInterval()) / float64(cc.PacketDuration())
}

// Result is the aggregate outcome of a run.
type Result struct {
	Config       Config
	OfferedLoad  float64 // realized offered load
	Transactions int
	Granted      int
	Failed       int
	Collided     int

	MeanContention time.Duration // T̄cont
	ContentionCI95 time.Duration
	MeanCCAs       float64 // N̄CCA
	CCAsCI95       float64
	PrCF           float64 // channel access failure probability
	PrCFCI95       float64
	PrCol          float64 // collision probability among granted
	PrColCI95      float64
}

// String implements fmt.Stringer.
func (r Result) String() string {
	return fmt.Sprintf("λ=%.3f L=%dB: Tcont=%v NCCA=%.2f Prcf=%.3f Prcol=%.3f (n=%d)",
		r.OfferedLoad, r.Config.PayloadBytes, r.MeanContention.Round(time.Microsecond),
		r.MeanCCAs, r.PrCF, r.PrCol, r.Transactions)
}

// event kinds, ordered so that within a slot transmission starts are
// processed before CCAs (a transmission beginning at a boundary is detected
// by a CCA at that boundary).
const (
	evTxStart = iota
	evCCA
)

// event is one value-typed entry of a shard's flat event heap; txn indexes
// the shard's transaction slice, so the queue carries no pointers.
type event struct {
	slot int64
	seq  int32
	kind uint8
	txn  int32
}

// evBefore is the heap order: (slot, kind, seq).
func evBefore(a, b *event) bool {
	if a.slot != b.slot {
		return a.slot < b.slot
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.seq < b.seq
}

// txn is one packet's channel-access attempt. The mac.Transaction is
// embedded by value and re-initialized in place, so a shard's whole
// population lives in one flat slice with no per-packet allocation.
type txn struct {
	t           mac.Transaction
	arrivalSlot int64
	endSlot     int64
	granted     bool
	failed      bool
	collided    bool
}

// shard is the reusable state of one Monte-Carlo shard: the value-typed
// 4-ary event heap, the flat transaction population, the same-slot starter
// scratch list and the shard's own single-word RNG. Shards are recycled
// through shardPool, so a steady stream of Simulate calls reuses the same
// backing arrays instead of re-growing them.
type shard struct {
	rng      engine.RNG
	events   []event
	txns     []txn
	starters []int32
}

var shardPool = sync.Pool{New: func() any { return new(shard) }}

func (s *shard) reset(seed int64) {
	s.rng = engine.NewRNG(seed)
	s.events = s.events[:0]
	s.txns = s.txns[:0]
	s.starters = s.starters[:0]
}

// push sifts a new event into the 4-ary min-heap. The sift logic is a
// deliberate sibling of internal/des's (siftUp/siftDown): each copy is
// specialized to its own event key so the hottest comparison stays inlined
// and interface-free — change one, check the other.
func (s *shard) push(ev event) {
	h := append(s.events, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !evBefore(&ev, &h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ev
	s.events = h
}

// pop removes and returns the heap minimum.
func (s *shard) pop() event {
	h := s.events
	min := h[0]
	n := len(h) - 1
	ev := h[n]
	s.events = h[:n]
	if n == 0 {
		return min
	}
	h = h[:n]
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if evBefore(&h[c], &h[best]) {
				best = c
			}
		}
		if !evBefore(&h[best], &ev) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = ev
	return min
}

// shardSuperframes is the fixed shard width of the parallel Monte-Carlo
// mode: Simulate cuts the run into independent blocks of this many
// superframes, each seeded from Config.Seed and its shard index. The
// decomposition depends only on Config.Superframes — never on Workers — so
// shard results merge to the same statistics at any worker count.
//
// Shards are statistically independent replicas: each starts with an idle
// channel and drains its deferred transactions against arrival-free
// superframes past its last beacon, so contention backlog does not carry
// across shard boundaries. At high load this biases Pr_cf/T̄cont slightly
// low versus one continuous run; the bias shrinks with the shard width and
// sits well inside the reproduction tolerances (the Monte-Carlo run is
// itself an approximation of the paper's unspecified simulator).
const shardSuperframes = 8

// Simulate runs the Monte-Carlo characterization. The run is sharded into
// independent superframe blocks executed on Config.Workers goroutines;
// results are bit-identical for every worker count (see Config.Workers).
//
// Shard state (event heap, transaction population, RNG) is pooled and
// reused across calls, and the per-shard statistics are folded shard by
// shard in index order — there is no merged transaction slice at all, so
// steady-state Simulate calls allocate only the small shard-pointer table.
func Simulate(cfg Config) Result {
	cfg = cfg.withDefaults()
	if cfg.TargetLoad < 0 {
		panic("contention: negative target load")
	}
	nShards := (cfg.Superframes + shardSuperframes - 1) / shardSuperframes
	shards := make([]*shard, nShards)
	// The shard closure cannot fail and the context is never canceled, so
	// Map's error is structurally nil.
	_ = engine.Map(context.Background(), cfg.Workers, nShards, func(i int) error {
		sf := shardSuperframes
		if i == nShards-1 {
			sf = cfg.Superframes - i*shardSuperframes
		}
		st := shardPool.Get().(*shard)
		simulateShard(cfg, sf, engine.DeriveSeed(cfg.Seed, int64(i)), st)
		shards[i] = st
		return nil
	})
	r := aggregate(cfg, shards)
	for _, st := range shards {
		shardPool.Put(st)
	}
	return r
}

// simulateShard runs the event loop over one independent block of
// superframes with its own RNG; it is the unit of parallelism. The shard's
// backing arrays are reused from call to call; the loop itself performs no
// steady-state allocation (see TestSimulateShardAllocFree).
func simulateShard(cfg Config, superframes int, seed int64, st *shard) {
	st.reset(seed)
	rng := &st.rng

	sfSlots := int64(cfg.Superframe.BeaconInterval() / phy.UnitBackoffPeriod)
	packetSlots := float64(cfg.PacketDuration()) / float64(phy.UnitBackoffPeriod)
	beaconSlots := float64(phy.TxDuration(cfg.BeaconBytes)) / float64(phy.UnitBackoffPeriod)
	perSF := cfg.PacketsPerSuperframe()

	// Integer slot bounds: for an integer slot s and a real bound x,
	// s < x ⇔ s < ⌈x⌉, so every busy-window comparison below runs on
	// precomputed integers while deciding exactly like the real-valued
	// original.
	packetCeil := int64(math.Ceil(packetSlots))
	beaconCeil := int64(math.Ceil(beaconSlots))

	seq := int32(0)
	push := func(slot int64, kind uint8, ti int32) {
		st.push(event{slot: slot, seq: seq, kind: kind, txn: ti})
		seq++
	}

	spawn := func(arrival int64) {
		st.txns = append(st.txns, txn{arrivalSlot: arrival})
		ti := int32(len(st.txns) - 1)
		t := &st.txns[ti]
		t.t.Init(cfg.CSMA, rng)
		// The first CCA occurs after the initial random backoff.
		first := arrival
		for !t.t.CCADue() {
			t.t.AdvanceSlot()
			first++
		}
		push(first, evCCA, ti)
	}

	// Generate arrivals for every superframe of the shard up front.
	for k := 0; k < superframes; k++ {
		base := int64(k) * sfSlots
		n := int(perSF)
		if rng.Float64() < perSF-float64(n) {
			n++
		}
		for i := 0; i < n; i++ {
			switch cfg.Arrival {
			case ArrivalAtBeacon:
				spawn(base)
			default:
				spawn(base + rng.Int63n(sfSlots))
			}
		}
	}

	// Channel occupancy: transmissions never overlap except when they
	// start on the same boundary, so one (start, until) pair suffices.
	busyStart := int64(-1)
	busyUntil := int64(math.MinInt64)
	lastStartSlot := int64(-1)

	channelBusy := func(slot int64) bool {
		if slot < busyUntil && slot >= busyStart {
			return true
		}
		return slot%sfSlots < beaconCeil
	}
	flushStarters := func() {
		if len(st.starters) > 1 {
			for _, ti := range st.starters {
				st.txns[ti].collided = true
			}
		}
		st.starters = st.starters[:0]
	}

	for len(st.events) > 0 {
		ev := st.pop()
		if ev.slot != lastStartSlot {
			flushStarters()
		}
		switch ev.kind {
		case evTxStart:
			t := &st.txns[ev.txn]
			// Defer if the packet cannot finish before the next beacon:
			// resume with fresh CCAs right after that beacon.
			phase := ev.slot % sfSlots
			if phase+packetCeil > sfSlots {
				resume := (ev.slot/sfSlots+1)*sfSlots + beaconCeil
				push(resume, evCCA, ev.txn)
				// Re-arm the contention window: the transaction object
				// cannot be rewound, so count the grant only when the
				// transmission really starts.
				t.granted = false
				continue
			}
			t.granted = true
			t.endSlot = ev.slot + packetCeil
			busyStart = ev.slot
			if until := ev.slot + packetCeil; until > busyUntil {
				busyUntil = until
			}
			lastStartSlot = ev.slot
			st.starters = append(st.starters, ev.txn)
		case evCCA:
			t := &st.txns[ev.txn]
			if t.t.Done() {
				// A deferred transaction resuming after a beacon: grant
				// immediately at this boundary (its CCAs already
				// succeeded); re-check fit via the evTxStart path.
				push(ev.slot, evTxStart, ev.txn)
				continue
			}
			busy := channelBusy(ev.slot)
			switch t.t.CCAResult(busy) {
			case mac.OutcomeNextCCA:
				push(ev.slot+1, evCCA, ev.txn)
			case mac.OutcomeTransmit:
				push(ev.slot+1, evTxStart, ev.txn)
			case mac.OutcomeBackoff:
				next := ev.slot + 1
				for !t.t.CCADue() {
					t.t.AdvanceSlot()
					next++
				}
				push(next, evCCA, ev.txn)
			case mac.OutcomeFailure:
				t.failed = true
				t.endSlot = ev.slot
			}
		}
	}
	flushStarters()
}

// aggregate folds the per-shard transaction populations into a Result; the
// serial in-order fold (shard order, then arrival order within each shard)
// visits transactions exactly as the old merged slice did, keeping
// floating-point sums worker-count independent.
func aggregate(cfg Config, shards []*shard) Result {
	sfSlots := int64(cfg.Superframe.BeaconInterval() / phy.UnitBackoffPeriod)
	packetSlots := float64(cfg.PacketDuration()) / float64(phy.UnitBackoffPeriod)
	packetCeil := math.Ceil(packetSlots)

	var cont stats.Accumulator
	var ccas stats.Accumulator
	var cf, col stats.Proportion
	total, granted, failed, collided := 0, 0, 0, 0
	for _, st := range shards {
		total += len(st.txns)
		for i := range st.txns {
			t := &st.txns[i]
			ccas.Add(float64(t.t.CCAs()))
			cf.Observe(t.failed)
			if t.failed {
				failed++
				cont.Add(float64(t.endSlot-t.arrivalSlot) * phy.UnitBackoffPeriod.Seconds())
			}
			if t.granted {
				granted++
				col.Observe(t.collided)
				if t.collided {
					collided++
				}
				txStart := float64(t.endSlot) - packetCeil
				cont.Add((txStart - float64(t.arrivalSlot)) * phy.UnitBackoffPeriod.Seconds())
			}
		}
	}
	offered := float64(total) * packetSlots / float64(int64(cfg.Superframes)*sfSlots)
	return Result{
		Config:         cfg,
		OfferedLoad:    offered,
		Transactions:   total,
		Granted:        granted,
		Failed:         failed,
		Collided:       collided,
		MeanContention: time.Duration(cont.Mean() * float64(time.Second)),
		ContentionCI95: time.Duration(cont.CI95() * float64(time.Second)),
		MeanCCAs:       ccas.Mean(),
		CCAsCI95:       ccas.CI95(),
		PrCF:           cf.Value(),
		PrCFCI95:       cf.CI95(),
		PrCol:          col.Value(),
		PrColCI95:      col.CI95(),
	}
}
