// Package contention characterizes the slotted CSMA/CA algorithm by
// Monte-Carlo simulation, reproducing the methodology behind the paper's
// Fig. 6: for a given network load λ (aggregate on-air time relative to the
// beacon interval) and packet size, it measures
//
//   - T̄cont: the mean duration of the contention procedure,
//   - N̄CCA:  the mean number of clear channel assessments per procedure,
//   - Pr_cf: the channel access failure probability,
//   - Pr_col: the residual collision probability of granted transmissions.
//
// The simulator works on the backoff-slot grid of one channel: packets
// arrive (by default) uniformly over the inter-beacon period, every node is
// in range of every other (star topology, no hidden terminals), a CCA at a
// slot boundary senses any transmission overlapping that boundary
// (including one starting at it, since its energy fills the CCA window),
// and collisions therefore occur exactly when several granted nodes start
// on the same boundary.
package contention

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"dense802154/internal/engine"
	"dense802154/internal/frame"
	"dense802154/internal/mac"
	"dense802154/internal/phy"
	"dense802154/internal/stats"
)

// ArrivalModel selects when packets become ready inside a superframe.
type ArrivalModel int

// Arrival models.
const (
	// ArrivalUniform spreads packet arrivals uniformly over the
	// inter-beacon period — the statistical multiplexing of sparse sensor
	// data the paper's §2 describes. This is the default.
	ArrivalUniform ArrivalModel = iota
	// ArrivalAtBeacon makes every packet contend right after the beacon,
	// the worst-case burst used as an ablation.
	ArrivalAtBeacon
)

// String implements fmt.Stringer.
func (a ArrivalModel) String() string {
	switch a {
	case ArrivalUniform:
		return "uniform"
	case ArrivalAtBeacon:
		return "at-beacon"
	default:
		return fmt.Sprintf("arrival(%d)", int(a))
	}
}

// Config parameterizes one Monte-Carlo run.
type Config struct {
	// PayloadBytes is the data payload L; the on-air packet is
	// Lo + L bytes (paper accounting).
	PayloadBytes int
	// Superframe fixes the slot grid (the paper uses BO = SO = 6).
	Superframe mac.Superframe
	// CSMA are the algorithm parameters (defaults to mac.PaperParams).
	CSMA mac.CSMAParams
	// Arrival selects the arrival model.
	Arrival ArrivalModel
	// TargetLoad is the offered load λ; the simulator offers
	// λ·Tib/Tpacket packets per superframe.
	TargetLoad float64
	// Superframes is the number of beacon intervals to simulate.
	Superframes int
	// BeaconBytes is the beacon's on-air size; the channel is busy for
	// that long after each beacon boundary. Defaults to a minimal beacon.
	BeaconBytes int
	// Seed drives the deterministic RNG.
	Seed int64
	// Workers bounds the goroutines simulating superframe shards: 1 runs
	// serially, 0 (or negative) uses runtime.NumCPU(). The simulation is
	// sharded into fixed blocks of superframes with per-shard seeds derived
	// from Seed, so the result is bit-identical at any worker count —
	// Workers only changes wall-clock time, never statistics.
	Workers int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.CSMA == (mac.CSMAParams{}) {
		c.CSMA = mac.PaperParams()
	}
	if c.Superframe == (mac.Superframe{}) {
		sf, err := mac.NewSuperframe(6, 6)
		if err != nil {
			panic(err)
		}
		c.Superframe = sf
	}
	if c.Superframes == 0 {
		c.Superframes = 50
	}
	if c.BeaconBytes == 0 {
		c.BeaconBytes = frame.BeaconOnAirBytes(0, 0, 0, 0)
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 120
	}
	return c
}

// PacketDuration reports the on-air time of one packet.
func (c Config) PacketDuration() time.Duration {
	return frame.PaperPacketDuration(c.PayloadBytes)
}

// PacketsPerSuperframe reports the offered packets per beacon interval that
// realize TargetLoad.
func (c Config) PacketsPerSuperframe() float64 {
	cc := c.withDefaults()
	return cc.TargetLoad * float64(cc.Superframe.BeaconInterval()) / float64(cc.PacketDuration())
}

// Result is the aggregate outcome of a run.
type Result struct {
	Config       Config
	OfferedLoad  float64 // realized offered load
	Transactions int
	Granted      int
	Failed       int
	Collided     int

	MeanContention time.Duration // T̄cont
	ContentionCI95 time.Duration
	MeanCCAs       float64 // N̄CCA
	CCAsCI95       float64
	PrCF           float64 // channel access failure probability
	PrCFCI95       float64
	PrCol          float64 // collision probability among granted
	PrColCI95      float64
}

// String implements fmt.Stringer.
func (r Result) String() string {
	return fmt.Sprintf("λ=%.3f L=%dB: Tcont=%v NCCA=%.2f Prcf=%.3f Prcol=%.3f (n=%d)",
		r.OfferedLoad, r.Config.PayloadBytes, r.MeanContention.Round(time.Microsecond),
		r.MeanCCAs, r.PrCF, r.PrCol, r.Transactions)
}

// event kinds, ordered so that within a slot transmission starts are
// processed before CCAs (a transmission beginning at a boundary is detected
// by a CCA at that boundary).
const (
	evTxStart = iota
	evCCA
)

type event struct {
	slot int64
	kind int
	seq  int
	txn  *txn
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].slot != h[j].slot {
		return h[i].slot < h[j].slot
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// txn is one packet's channel-access attempt.
type txn struct {
	t           *mac.Transaction
	arrivalSlot int64
	endSlot     int64
	granted     bool
	failed      bool
	collided    bool
}

// shardSuperframes is the fixed shard width of the parallel Monte-Carlo
// mode: Simulate cuts the run into independent blocks of this many
// superframes, each seeded from Config.Seed and its shard index. The
// decomposition depends only on Config.Superframes — never on Workers — so
// shard results merge to the same statistics at any worker count.
//
// Shards are statistically independent replicas: each starts with an idle
// channel and drains its deferred transactions against arrival-free
// superframes past its last beacon, so contention backlog does not carry
// across shard boundaries. At high load this biases Pr_cf/T̄cont slightly
// low versus one continuous run; the bias shrinks with the shard width and
// sits well inside the reproduction tolerances (the Monte-Carlo run is
// itself an approximation of the paper's unspecified simulator).
const shardSuperframes = 8

// Simulate runs the Monte-Carlo characterization. The run is sharded into
// independent superframe blocks executed on Config.Workers goroutines;
// results are bit-identical for every worker count (see Config.Workers).
func Simulate(cfg Config) Result {
	cfg = cfg.withDefaults()
	if cfg.TargetLoad < 0 {
		panic("contention: negative target load")
	}
	nShards := (cfg.Superframes + shardSuperframes - 1) / shardSuperframes
	shards := make([][]*txn, nShards)
	// The shard closure cannot fail and the context is never canceled, so
	// Map's error is structurally nil.
	_ = engine.Map(context.Background(), cfg.Workers, nShards, func(i int) error {
		sf := shardSuperframes
		if i == nShards-1 {
			sf = cfg.Superframes - i*shardSuperframes
		}
		shards[i] = simulateShard(cfg, sf, engine.DeriveSeed(cfg.Seed, int64(i)))
		return nil
	})
	var all []*txn
	for _, s := range shards {
		all = append(all, s...)
	}
	return aggregate(cfg, all)
}

// simulateShard runs the event loop over one independent block of
// superframes with its own RNG; it is the unit of parallelism.
func simulateShard(cfg Config, superframes int, seed int64) []*txn {
	rng := rand.New(rand.NewSource(seed))

	sfSlots := int64(cfg.Superframe.BeaconInterval() / phy.UnitBackoffPeriod)
	packetSlots := float64(cfg.PacketDuration()) / float64(phy.UnitBackoffPeriod)
	beaconSlots := float64(phy.TxDuration(cfg.BeaconBytes)) / float64(phy.UnitBackoffPeriod)
	perSF := cfg.PacketsPerSuperframe()

	var events eventHeap
	seq := 0
	push := func(slot int64, kind int, t *txn) {
		events = append(events, event{slot: slot, kind: kind, seq: seq, txn: t})
		seq++
		heap.Fix(&events, len(events)-1)
	}
	scheduleCCA := func(t *txn, at int64) { push(at, evCCA, t) }

	var all []*txn
	spawn := func(arrival int64) {
		t := &txn{t: mac.NewTransaction(cfg.CSMA, rng), arrivalSlot: arrival}
		all = append(all, t)
		// The first CCA occurs after the initial random backoff.
		first := arrival
		for !t.t.CCADue() {
			t.t.AdvanceSlot()
			first++
		}
		scheduleCCA(t, first)
	}

	// Generate arrivals for every superframe of the shard up front.
	for k := 0; k < superframes; k++ {
		base := int64(k) * sfSlots
		n := int(perSF)
		if rng.Float64() < perSF-float64(n) {
			n++
		}
		for i := 0; i < n; i++ {
			switch cfg.Arrival {
			case ArrivalAtBeacon:
				spawn(base)
			default:
				spawn(base + rng.Int63n(sfSlots))
			}
		}
	}
	heap.Init(&events)

	// Channel occupancy: transmissions never overlap except when they
	// start on the same boundary, so one (start, until) pair suffices.
	busyStart := int64(-1)
	busyUntil := float64(math.Inf(-1))
	var startersThisSlot []*txn
	lastStartSlot := int64(-1)

	channelBusy := func(slot int64) bool {
		if float64(slot) < busyUntil && slot >= busyStart {
			return true
		}
		phase := slot % sfSlots
		return float64(phase) < beaconSlots
	}
	flushStarters := func() {
		if len(startersThisSlot) > 1 {
			for _, t := range startersThisSlot {
				t.collided = true
			}
		}
		startersThisSlot = startersThisSlot[:0]
	}

	for events.Len() > 0 {
		ev := heap.Pop(&events).(event)
		if ev.slot != lastStartSlot {
			flushStarters()
		}
		switch ev.kind {
		case evTxStart:
			t := ev.txn
			// Defer if the packet cannot finish before the next beacon:
			// resume with fresh CCAs right after that beacon.
			phase := ev.slot % sfSlots
			if float64(phase)+packetSlots > float64(sfSlots) {
				resume := (ev.slot/sfSlots+1)*sfSlots + int64(math.Ceil(beaconSlots))
				scheduleCCA(t, resume)
				// Re-arm the contention window: the transaction object
				// cannot be rewound, so count the grant only when the
				// transmission really starts.
				t.granted = false
				continue
			}
			t.granted = true
			t.endSlot = ev.slot + int64(math.Ceil(packetSlots))
			busyStart = ev.slot
			if until := float64(ev.slot) + packetSlots; until > busyUntil {
				busyUntil = until
			}
			lastStartSlot = ev.slot
			startersThisSlot = append(startersThisSlot, t)
		case evCCA:
			t := ev.txn
			if t.t.Done() {
				// A deferred transaction resuming after a beacon: grant
				// immediately at this boundary (its CCAs already
				// succeeded); re-check fit via the evTxStart path.
				push(ev.slot, evTxStart, t)
				continue
			}
			busy := channelBusy(ev.slot)
			switch t.t.CCAResult(busy) {
			case mac.OutcomeNextCCA:
				scheduleCCA(t, ev.slot+1)
			case mac.OutcomeTransmit:
				push(ev.slot+1, evTxStart, t)
			case mac.OutcomeBackoff:
				next := ev.slot + 1
				for !t.t.CCADue() {
					t.t.AdvanceSlot()
					next++
				}
				scheduleCCA(t, next)
			case mac.OutcomeFailure:
				t.failed = true
				t.endSlot = ev.slot
			}
		}
	}
	flushStarters()
	return all
}

// aggregate folds the merged per-shard transaction lists into a Result; the
// serial in-order fold keeps floating-point sums worker-count independent.
func aggregate(cfg Config, all []*txn) Result {
	sfSlots := int64(cfg.Superframe.BeaconInterval() / phy.UnitBackoffPeriod)
	packetSlots := float64(cfg.PacketDuration()) / float64(phy.UnitBackoffPeriod)

	var cont stats.Accumulator
	var ccas stats.Accumulator
	var cf, col stats.Proportion
	granted, failed, collided := 0, 0, 0
	for _, t := range all {
		ccas.Add(float64(t.t.CCAs()))
		cf.Observe(t.failed)
		if t.failed {
			failed++
			cont.Add(float64(t.endSlot-t.arrivalSlot) * phy.UnitBackoffPeriod.Seconds())
		}
		if t.granted {
			granted++
			col.Observe(t.collided)
			if t.collided {
				collided++
			}
			txStart := float64(t.endSlot) - math.Ceil(packetSlots)
			cont.Add((txStart - float64(t.arrivalSlot)) * phy.UnitBackoffPeriod.Seconds())
		}
	}
	offered := float64(len(all)) * packetSlots / float64(int64(cfg.Superframes)*sfSlots)
	return Result{
		Config:         cfg,
		OfferedLoad:    offered,
		Transactions:   len(all),
		Granted:        granted,
		Failed:         failed,
		Collided:       collided,
		MeanContention: time.Duration(cont.Mean() * float64(time.Second)),
		ContentionCI95: time.Duration(cont.CI95() * float64(time.Second)),
		MeanCCAs:       ccas.Mean(),
		CCAsCI95:       ccas.CI95(),
		PrCF:           cf.Value(),
		PrCFCI95:       cf.CI95(),
		PrCol:          col.Value(),
		PrColCI95:      col.CI95(),
	}
}
