package contention

import (
	"testing"
)

// TestSimulateAllocBudget is the allocation-regression guard for the
// Monte-Carlo event loop: once the shard pool is warm, a serial Simulate
// call must stay within a fixed allocation budget (the shard-pointer table
// plus pool bookkeeping — a couple of allocations, versus hundreds per
// superframe before the value-typed rewrite). A regression that reintroduces
// per-event or per-packet boxing fails this test rather than silently
// landing.
func TestSimulateAllocBudget(t *testing.T) {
	cfg := Config{TargetLoad: 0.433, Superframes: 8, Seed: 1, Workers: 1}
	// Warm the shard pool and size the reusable arrays.
	for i := 0; i < 3; i++ {
		Simulate(cfg)
	}
	seed := int64(100)
	allocs := testing.AllocsPerRun(20, func() {
		c := cfg
		c.Seed = seed
		seed++
		Simulate(c)
	})
	// Steady state measures ~2 allocs; the budget leaves headroom for a GC
	// emptying the sync.Pool mid-run without tolerating a boxing
	// regression (which costs hundreds).
	const budget = 40
	if allocs > budget {
		t.Fatalf("Simulate allocated %v per run, budget %d", allocs, budget)
	}
	t.Logf("Simulate steady-state allocations per run: %v", allocs)
}

// BenchmarkSimulateShard measures the per-shard event loop in isolation —
// the unit of Monte-Carlo parallelism (8 superframes at case-study load).
func BenchmarkSimulateShard(b *testing.B) {
	b.ReportAllocs()
	cfg := Config{TargetLoad: 0.433, Superframes: shardSuperframes, Seed: 1, Workers: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		Simulate(cfg)
	}
}
