package contention

import (
	"testing"
	"time"

	"dense802154/internal/mac"
)

func TestBuildCurveAndInterp(t *testing.T) {
	base := Config{Superframes: 15, Seed: 7}
	curve := BuildCurve(120, []float64{0.1, 0.3, 0.5}, base)
	if len(curve.Loads) != 3 || len(curve.Results) != 3 {
		t.Fatalf("curve size: %d", len(curve.Loads))
	}
	// Interpolation between grid points must be bracketed.
	mid := curve.At(0.2)
	if mid.PrCF < curve.PrCF[0]-1e-9 || mid.PrCF > curve.PrCF[1]+1e-9 {
		t.Errorf("interpolated PrCF %v outside bracket [%v,%v]", mid.PrCF, curve.PrCF[0], curve.PrCF[1])
	}
	// Clamping outside the grid.
	lo := curve.At(0.01)
	if lo.NCCA != curve.NCCA[0] {
		t.Error("clamp low")
	}
	hi := curve.At(0.99)
	if hi.NCCA != curve.NCCA[2] {
		t.Error("clamp high")
	}
}

func TestMCSourceCaching(t *testing.T) {
	src := NewMCSource(Config{Superframes: 10, Seed: 3})
	a := src.Contention(120, 0.42)
	b := src.Contention(120, 0.42)
	if a != b {
		t.Fatal("cache miss on identical query")
	}
	if a.Tcont <= 0 || a.NCCA < 2 {
		t.Fatalf("implausible stats: %+v", a)
	}
	if src.String() == "" {
		t.Fatal("String")
	}
}

func TestCurveSourcePicksNearestPayload(t *testing.T) {
	base := Config{Superframes: 10, Seed: 11}
	c10 := BuildCurve(10, []float64{0.1, 0.5}, base)
	c100 := BuildCurve(100, []float64{0.1, 0.5}, base)
	src := NewCurveSource(c100, c10) // constructor must sort
	if src.Curves[0].PayloadBytes != 10 {
		t.Fatal("curves not sorted")
	}
	got := src.Contention(95, 0.3)
	want := c100.At(0.3)
	if got != want {
		t.Fatalf("nearest-payload lookup: got %+v, want %+v", got, want)
	}
	if src.String() == "" {
		t.Fatal("String")
	}
}

func TestCurveSourceEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty CurveSource must panic")
		}
	}()
	(&CurveSource{}).Contention(120, 0.4)
}

func TestApproxQualitativeShape(t *testing.T) {
	a := Approx{}
	low := a.Contention(120, 0.05)
	high := a.Contention(120, 0.7)
	if low.PrCF >= high.PrCF {
		t.Error("approx Prcf must grow with load")
	}
	if low.NCCA >= high.NCCA {
		t.Error("approx NCCA must grow with load")
	}
	if low.Tcont >= high.Tcont {
		t.Error("approx Tcont must grow with load")
	}
	if low.PrCol >= high.PrCol {
		t.Error("approx Prcol must grow with load")
	}
	// At zero load: exactly CW CCAs, no failures.
	zero := a.Contention(120, 0)
	if zero.NCCA != 2 || zero.PrCF != 0 || zero.PrCol != 0 {
		t.Errorf("zero-load approx: %+v", zero)
	}
	if a.String() == "" {
		t.Fatal("String")
	}
}

func TestApproxRoughlyTracksMonteCarlo(t *testing.T) {
	// The closed form is a baseline, not a replacement: require only
	// order-of-magnitude agreement at moderate load.
	mc := NewMCSource(Config{Superframes: 40, Seed: 5})
	ap := Approx{}
	m := mc.Contention(120, 0.3)
	g := ap.Contention(120, 0.3)
	if g.NCCA < m.NCCA/3 || g.NCCA > m.NCCA*3 {
		t.Errorf("approx NCCA %v vs MC %v: off by >3x", g.NCCA, m.NCCA)
	}
	if g.Tcont < m.Tcont/5 || g.Tcont > m.Tcont*5 {
		t.Errorf("approx Tcont %v vs MC %v: off by >5x", g.Tcont, m.Tcont)
	}
}

func TestApproxBLEShrinksBackoff(t *testing.T) {
	p := mac.PaperParams()
	p.BatteryLifeExt = true
	ble := Approx{CSMA: p}.Contention(120, 0.4)
	std := Approx{}.Contention(120, 0.4)
	if ble.Tcont >= std.Tcont {
		t.Errorf("BLE backoff %v not shorter than standard %v", ble.Tcont, std.Tcont)
	}
}

func TestPacketsPerSuperframe(t *testing.T) {
	cfg := Config{PayloadBytes: 120, TargetLoad: 0.433, Seed: 1}
	// λ·Tib/Tpacket = 0.433·983.04ms/4.256ms ≈ 100 packets.
	got := cfg.PacketsPerSuperframe()
	if got < 95 || got > 105 {
		t.Fatalf("packets per superframe = %v, want ≈100", got)
	}
	if cfg.PacketDuration() != 4256*time.Microsecond {
		t.Fatalf("packet duration = %v", cfg.PacketDuration())
	}
}
