package contention

import (
	"math"
	"time"

	"dense802154/internal/frame"
	"dense802154/internal/mac"
	"dense802154/internal/phy"
)

// Approx is a closed-form approximation of the slotted CSMA/CA behaviour,
// provided as the analytical baseline against which the Monte-Carlo
// characterization is compared (DESIGN.md ablation #1).
//
// Assumptions (all deliberately simple):
//   - a CCA finds the channel busy with probability equal to the channel
//     occupancy p = λ (Poisson traffic, no backoff correlation);
//   - an access attempt (up to CW consecutive CCAs) succeeds with
//     probability (1-p)^CW, and attempts are independent;
//   - grants arrive as a Poisson stream, so a granted transmission
//     collides when at least one other grant lands on its boundary.
//
// The Monte-Carlo results deviate from this model exactly where the
// paper's mechanism matters: backoff synchronization after busy periods
// raises both the collision rate and the CCA count at high load.
type Approx struct {
	// CSMA are the algorithm parameters (defaults to mac.PaperParams
	// when zero).
	CSMA mac.CSMAParams
}

// Contention implements Source.
func (a Approx) Contention(payloadBytes int, load float64) Stats {
	p := a.CSMA
	if p == (mac.CSMAParams{}) {
		p = mac.PaperParams()
	}
	occ := math.Min(math.Max(load, 0), 0.999)
	cw := float64(p.CW)

	// Per-attempt grant and busy probabilities.
	grant := math.Pow(1-occ, cw)
	busy := 1 - grant

	// Attempts are capped at MaxBackoffs+1.
	maxAttempts := p.MaxBackoffs + 1
	// Pr_cf: every attempt finds the channel busy.
	prcf := math.Pow(busy, float64(maxAttempts))

	// Expected number of attempts (truncated geometric).
	var eAttempts float64
	for i := 0; i < maxAttempts; i++ {
		eAttempts += math.Pow(busy, float64(i))
	}

	// Expected CCAs per attempt: the attempt stops at the first busy CCA.
	// E = sum_{k=1..CW} P(reach CCA k) = sum_{k=0..CW-1} (1-occ)^k.
	var ccaPerAttempt float64
	for k := 0; k < p.CW; k++ {
		ccaPerAttempt += math.Pow(1-occ, float64(k))
	}
	ncca := eAttempts * ccaPerAttempt

	// Expected backoff delay: attempt i draws uniform [0, 2^BE_i - 1].
	be := p.MinBE
	var delaySlots float64
	reach := 1.0
	for i := 0; i < maxAttempts; i++ {
		cappedBE := be
		if p.BatteryLifeExt && cappedBE > 2 {
			cappedBE = 2
		}
		window := float64(int(1)<<uint(cappedBE)) - 1
		delaySlots += reach * window / 2
		reach *= busy
		if be < p.MaxBE {
			be++
		}
	}
	// CCA slots themselves.
	delaySlots += ncca

	// Residual collision probability: grants form a Poisson stream of
	// rate λ/D per slot (D = packet duration in slots); a grant collides
	// when another grant shares its boundary.
	d := float64(frame.PaperPacketDuration(payloadBytes)) / float64(phy.UnitBackoffPeriod)
	g := occ / d
	prcol := 1 - math.Exp(-g)

	return Stats{
		Tcont: time.Duration(delaySlots * float64(phy.UnitBackoffPeriod)),
		NCCA:  ncca,
		PrCF:  prcf,
		PrCol: prcol,
	}
}

// String implements fmt.Stringer.
func (a Approx) String() string { return "closed-form" }
