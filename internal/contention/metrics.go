package contention

import "dense802154/internal/telemetry"

// RegisterMetrics exposes the process-wide Monte-Carlo characterization
// cache in r, read from CacheStats at scrape time (the cache already keeps
// mutex-consistent counters; no second set of atomics is needed):
//
//	wsn_contention_cache_hits_total       counter  single-flight cache hits
//	wsn_contention_cache_misses_total     counter  characterizations computed
//	wsn_contention_cache_evictions_total  counter  LRU evictions
//	wsn_contention_cache_entries          gauge    resident characterizations
//	wsn_contention_cache_limit            gauge    configured bound (0 = none)
func RegisterMetrics(r *telemetry.Registry) {
	r.CounterFunc("wsn_contention_cache_hits_total", "Contention characterization cache hits.",
		func() float64 { return float64(CacheStats().Hits) })
	r.CounterFunc("wsn_contention_cache_misses_total", "Contention characterizations computed (cache misses).",
		func() float64 { return float64(CacheStats().Misses) })
	r.CounterFunc("wsn_contention_cache_evictions_total", "Contention characterization cache LRU evictions.",
		func() float64 { return float64(CacheStats().Evictions) })
	r.GaugeFunc("wsn_contention_cache_entries", "Contention characterizations currently cached.",
		func() float64 { return float64(CacheStats().Entries) })
	r.GaugeFunc("wsn_contention_cache_limit", "Configured contention cache bound (0 means unbounded).",
		func() float64 { return float64(CacheStats().Limit) })
}
