package contention

import (
	"math"
	"testing"
	"time"

	"dense802154/internal/mac"
)

func lightCfg(load float64, payload int) Config {
	return Config{
		PayloadBytes: payload,
		TargetLoad:   load,
		Superframes:  20,
		Seed:         42,
	}
}

func TestLowLoadBehaviour(t *testing.T) {
	r := Simulate(lightCfg(0.02, 120))
	if r.Transactions == 0 {
		t.Fatal("no transactions simulated")
	}
	// At 2% load contention is almost always immediate: ~2 CCAs, rare
	// failures and collisions.
	if r.MeanCCAs < 2 || r.MeanCCAs > 2.5 {
		t.Errorf("NCCA at 2%% load = %v, want ≈2", r.MeanCCAs)
	}
	if r.PrCF > 0.02 {
		t.Errorf("Prcf at 2%% load = %v, want ≈0", r.PrCF)
	}
	if r.PrCol > 0.05 {
		t.Errorf("Prcol at 2%% load = %v, want small", r.PrCol)
	}
	// Mean contention: initial backoff mean 3.5 slots + 2 CCA slots + 1
	// turnaround slot ≈ 6.5 slots ≈ 2.1 ms; allow slack.
	if r.MeanContention < 500*time.Microsecond || r.MeanContention > 5*time.Millisecond {
		t.Errorf("Tcont at 2%% load = %v", r.MeanContention)
	}
}

func TestMetricsGrowWithLoad(t *testing.T) {
	low := Simulate(lightCfg(0.1, 120))
	high := Simulate(lightCfg(0.7, 120))
	if high.MeanCCAs <= low.MeanCCAs {
		t.Errorf("NCCA must grow with load: %v -> %v", low.MeanCCAs, high.MeanCCAs)
	}
	if high.PrCF <= low.PrCF {
		t.Errorf("Prcf must grow with load: %v -> %v", low.PrCF, high.PrCF)
	}
	if high.MeanContention <= low.MeanContention {
		t.Errorf("Tcont must grow with load: %v -> %v", low.MeanContention, high.MeanContention)
	}
	if high.PrCol <= low.PrCol {
		t.Errorf("Prcol must grow with load: %v -> %v", low.PrCol, high.PrCol)
	}
}

func TestOfferedLoadMatchesTarget(t *testing.T) {
	for _, target := range []float64{0.1, 0.42, 0.8} {
		cfg := lightCfg(target, 120)
		cfg.Superframes = 50
		r := Simulate(cfg)
		if math.Abs(r.OfferedLoad-target)/target > 0.15 {
			t.Errorf("offered load %v vs target %v", r.OfferedLoad, target)
		}
	}
}

func TestCaseStudyOperatingPoint(t *testing.T) {
	// The paper's §5 scenario: 100 nodes × 120 B at BO=6 → λ≈0.43,
	// Pr_cf around 10-25% ("probability of transmission failure of 16%"
	// is dominated by Pr_cf at mid loads), collisions a few percent.
	cfg := lightCfg(0.433, 120)
	cfg.Superframes = 100
	r := Simulate(cfg)
	t.Logf("case study contention: %v", r)
	if r.PrCF < 0.02 || r.PrCF > 0.4 {
		t.Errorf("Prcf = %v, outside plausible window for the 42%% scenario", r.PrCF)
	}
	if r.MeanCCAs < 2 || r.MeanCCAs > 6 {
		t.Errorf("NCCA = %v, outside plausible window", r.MeanCCAs)
	}
	if r.MeanContention < time.Millisecond || r.MeanContention > 30*time.Millisecond {
		t.Errorf("Tcont = %v, outside plausible window", r.MeanContention)
	}
}

func TestCollisionsNeedSimultaneousStart(t *testing.T) {
	// With exactly one packet offered per superframe there is nobody to
	// collide with and access never fails.
	cfg := lightCfg(0.004, 120) // ≈1 packet per superframe
	cfg.Superframes = 50
	r := Simulate(cfg)
	if r.PrCol != 0 {
		t.Errorf("lone transmitter collided: %v", r.PrCol)
	}
	if r.PrCF > 0.01 {
		t.Errorf("lone transmitter failed access: %v", r.PrCF)
	}
}

func TestAtBeaconArrivalIsWorse(t *testing.T) {
	uniform := lightCfg(0.3, 120)
	uniform.Superframes = 30
	burst := uniform
	burst.Arrival = ArrivalAtBeacon
	ru := Simulate(uniform)
	rb := Simulate(burst)
	// A synchronized burst must collide and fail far more often.
	if rb.PrCol <= ru.PrCol {
		t.Errorf("burst Prcol %v not worse than uniform %v", rb.PrCol, ru.PrCol)
	}
	if rb.MeanContention <= ru.MeanContention {
		t.Errorf("burst Tcont %v not worse than uniform %v", rb.MeanContention, ru.MeanContention)
	}
}

func TestBatteryLifeExtCollides(t *testing.T) {
	// The paper rejects BLE "in dense network conditions" because the
	// tiny backoff window (BE ≤ 2) cannot separate many simultaneous
	// contenders. The effect is starkest for burst arrivals: nodes that
	// wake with the beacon draw initial delays from only 4 slots.
	normal := lightCfg(0.42, 120)
	normal.Superframes = 40
	normal.Arrival = ArrivalAtBeacon
	ble := normal
	p := mac.PaperParams()
	p.BatteryLifeExt = true
	ble.CSMA = p
	rn := Simulate(normal)
	rb := Simulate(ble)
	t.Logf("normal: %v", rn)
	t.Logf("BLE:    %v", rb)
	// Compare overall transaction loss (collision or access failure):
	// restricting to collisions alone is misleading because BLE's extra
	// access failures remove would-be colliders.
	lossN := 1 - (1-rn.PrCF)*(1-rn.PrCol)
	lossB := 1 - (1-rb.PrCF)*(1-rb.PrCol)
	if lossB <= lossN {
		t.Errorf("BLE loss %v not worse than normal %v", lossB, lossN)
	}
}

func TestDeterminism(t *testing.T) {
	a := Simulate(lightCfg(0.4, 50))
	b := Simulate(lightCfg(0.4, 50))
	if a.PrCF != b.PrCF || a.MeanCCAs != b.MeanCCAs || a.Transactions != b.Transactions {
		t.Fatal("same seed must reproduce identical results")
	}
	c := lightCfg(0.4, 50)
	c.Seed = 43
	d := Simulate(c)
	if d.Transactions == a.Transactions && d.MeanContention == a.MeanContention && d.PrCF == a.PrCF {
		t.Fatal("different seed produced identical run (suspicious)")
	}
}

func TestSmallPacketsLowerCollisionCost(t *testing.T) {
	// At equal load, small packets mean more transmissions but shorter
	// busy periods; the failure probability should be no worse than with
	// large packets.
	small := Simulate(lightCfg(0.5, 10))
	large := Simulate(lightCfg(0.5, 100))
	t.Logf("small: %v", small)
	t.Logf("large: %v", large)
	if small.Transactions <= large.Transactions {
		t.Error("equal load with small packets must mean more transactions")
	}
}

func TestResultString(t *testing.T) {
	r := Simulate(lightCfg(0.1, 20))
	if r.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestNegativeLoadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative load must panic")
		}
	}()
	Simulate(lightCfg(-0.1, 120))
}

func TestArrivalModelString(t *testing.T) {
	if ArrivalUniform.String() == "" || ArrivalAtBeacon.String() == "" || ArrivalModel(9).String() == "" {
		t.Fatal("arrival strings")
	}
}
