package frame

// The 802.15.4 frame check sequence is the 16-bit ITU-T CRC
// (x^16 + x^12 + x^5 + 1) computed LSB-first with initial value 0 and no
// final inversion — the "KERMIT" CRC-16 variant. The FCS is appended least
// significant byte first.

// fcsPoly is the bit-reflected ITU-T polynomial.
const fcsPoly = 0x8408

// fcsTable is the byte-at-a-time lookup table.
var fcsTable = buildFCSTable()

func buildFCSTable() [256]uint16 {
	var t [256]uint16
	for b := 0; b < 256; b++ {
		crc := uint16(b)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ fcsPoly
			} else {
				crc >>= 1
			}
		}
		t[b] = crc
	}
	return t
}

// FCS computes the 802.15.4 frame check sequence over data (the MHR plus
// MAC payload).
func FCS(data []byte) uint16 {
	var crc uint16
	for _, b := range data {
		crc = crc>>8 ^ fcsTable[byte(crc)^b]
	}
	return crc
}

// AppendFCS appends the FCS of data to data, least significant byte first,
// and returns the extended slice.
func AppendFCS(data []byte) []byte {
	crc := FCS(data)
	return append(data, byte(crc), byte(crc>>8))
}

// CheckFCS reports whether the trailing two bytes of mpdu are the valid FCS
// of the preceding bytes.
func CheckFCS(mpdu []byte) bool {
	if len(mpdu) < FCSLength {
		return false
	}
	body := mpdu[:len(mpdu)-FCSLength]
	want := uint16(mpdu[len(mpdu)-2]) | uint16(mpdu[len(mpdu)-1])<<8
	return FCS(body) == want
}
