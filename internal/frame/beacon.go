package frame

import (
	"errors"
	"fmt"
)

// SuperframeSpec is the 16-bit superframe specification field carried in
// every beacon (§7.2.2.1.2).
type SuperframeSpec struct {
	BeaconOrder     uint8 // BO, 0..15; 15 = no beacons
	SuperframeOrder uint8 // SO, 0..15; 15 = superframe inactive
	FinalCAPSlot    uint8 // last slot of the contention access period
	BatteryLifeExt  bool  // BLE mode: backoff exponent limited to 0-2
	PANCoordinator  bool
	AssocPermit     bool
}

// Encode packs the superframe specification.
func (s SuperframeSpec) Encode() uint16 {
	v := uint16(s.BeaconOrder&0xF) |
		uint16(s.SuperframeOrder&0xF)<<4 |
		uint16(s.FinalCAPSlot&0xF)<<8
	if s.BatteryLifeExt {
		v |= 1 << 12
	}
	if s.PANCoordinator {
		v |= 1 << 14
	}
	if s.AssocPermit {
		v |= 1 << 15
	}
	return v
}

// DecodeSuperframeSpec unpacks a superframe specification field.
func DecodeSuperframeSpec(v uint16) SuperframeSpec {
	return SuperframeSpec{
		BeaconOrder:     uint8(v & 0xF),
		SuperframeOrder: uint8(v >> 4 & 0xF),
		FinalCAPSlot:    uint8(v >> 8 & 0xF),
		BatteryLifeExt:  v&(1<<12) != 0,
		PANCoordinator:  v&(1<<14) != 0,
		AssocPermit:     v&(1<<15) != 0,
	}
}

// GTSDescriptor allocates guaranteed time slots to one device (§7.2.2.1.3).
type GTSDescriptor struct {
	ShortAddr uint16
	StartSlot uint8 // 0..15
	Length    uint8 // number of superframe slots, 1..15
}

// MaxGTSDescriptors is the standard's cap of seven GTS allocations per
// beacon — the reason GTS cannot serve hundreds of nodes (paper §2).
const MaxGTSDescriptors = 7

// BeaconPayload is the parsed MAC payload of a beacon frame: superframe
// specification, GTS fields and pending-address fields, plus an optional
// application beacon payload.
type BeaconPayload struct {
	Superframe    SuperframeSpec
	GTSPermit     bool
	GTS           []GTSDescriptor
	GTSDirections uint8 // bit i: direction of descriptor i (1 = RX-only)
	PendingShort  []uint16
	PendingExt    []uint64
	Extra         []byte // application payload
}

// Beacon field errors.
var (
	ErrTooManyGTS     = errors.New("frame: more than 7 GTS descriptors")
	ErrTooManyPending = errors.New("frame: more than 7 pending addresses of one kind")
)

// Encode serializes the beacon MAC payload.
func (b *BeaconPayload) Encode() ([]byte, error) {
	if len(b.GTS) > MaxGTSDescriptors {
		return nil, ErrTooManyGTS
	}
	if len(b.PendingShort) > 7 || len(b.PendingExt) > 7 {
		return nil, ErrTooManyPending
	}
	out := make([]byte, 0, 16)
	out = appendUint16(out, b.Superframe.Encode())
	gtsSpec := byte(len(b.GTS) & 0x7)
	if b.GTSPermit {
		gtsSpec |= 1 << 7
	}
	out = append(out, gtsSpec)
	if len(b.GTS) > 0 {
		out = append(out, b.GTSDirections&0x7F)
		for _, d := range b.GTS {
			out = appendUint16(out, d.ShortAddr)
			out = append(out, d.StartSlot&0xF|d.Length<<4)
		}
	}
	out = append(out, byte(len(b.PendingShort)&0x7)|byte(len(b.PendingExt)&0x7)<<4)
	for _, a := range b.PendingShort {
		out = appendUint16(out, a)
	}
	for _, a := range b.PendingExt {
		out = appendUint64(out, a)
	}
	out = append(out, b.Extra...)
	return out, nil
}

// DecodeBeaconPayload parses a beacon MAC payload.
func DecodeBeaconPayload(p []byte) (*BeaconPayload, error) {
	if len(p) < 4 {
		return nil, ErrTooShort
	}
	b := &BeaconPayload{}
	b.Superframe = DecodeSuperframeSpec(uint16(p[0]) | uint16(p[1])<<8)
	i := 2
	gtsSpec := p[i]
	i++
	nGTS := int(gtsSpec & 0x7)
	b.GTSPermit = gtsSpec&(1<<7) != 0
	if nGTS > 0 {
		if i+1+3*nGTS > len(p) {
			return nil, ErrTooShort
		}
		b.GTSDirections = p[i] & 0x7F
		i++
		for k := 0; k < nGTS; k++ {
			d := GTSDescriptor{
				ShortAddr: uint16(p[i]) | uint16(p[i+1])<<8,
				StartSlot: p[i+2] & 0xF,
				Length:    p[i+2] >> 4,
			}
			b.GTS = append(b.GTS, d)
			i += 3
		}
	}
	if i >= len(p) {
		return nil, ErrTooShort
	}
	pend := p[i]
	i++
	nShort := int(pend & 0x7)
	nExt := int(pend >> 4 & 0x7)
	if i+2*nShort+8*nExt > len(p) {
		return nil, ErrTooShort
	}
	for k := 0; k < nShort; k++ {
		b.PendingShort = append(b.PendingShort, uint16(p[i])|uint16(p[i+1])<<8)
		i += 2
	}
	for k := 0; k < nExt; k++ {
		var v uint64
		for j := 0; j < 8; j++ {
			v |= uint64(p[i+j]) << (8 * j)
		}
		b.PendingExt = append(b.PendingExt, v)
		i += 8
	}
	b.Extra = append([]byte(nil), p[i:]...)
	return b, nil
}

// NewBeacon builds a beacon frame from a coordinator source address.
// Beacons carry source addressing only (§7.2.2.1.1).
func NewBeacon(seq uint8, src Address, payload *BeaconPayload) (*Frame, error) {
	p, err := payload.Encode()
	if err != nil {
		return nil, err
	}
	return &Frame{
		Header: Header{
			Control: Control{Type: TypeBeacon},
			Seq:     seq,
			Src:     src,
		},
		Payload: p,
	}, nil
}

// CommandID identifies a MAC command frame (§7.3).
type CommandID uint8

// MAC command identifiers (2003).
const (
	CmdAssociationRequest  CommandID = 0x01
	CmdAssociationResponse CommandID = 0x02
	CmdDisassociation      CommandID = 0x03
	CmdDataRequest         CommandID = 0x04
	CmdPANIDConflict       CommandID = 0x05
	CmdOrphan              CommandID = 0x06
	CmdBeaconRequest       CommandID = 0x07
	CmdCoordinatorRealign  CommandID = 0x08
	CmdGTSRequest          CommandID = 0x09
)

// String implements fmt.Stringer.
func (c CommandID) String() string {
	switch c {
	case CmdAssociationRequest:
		return "association-request"
	case CmdAssociationResponse:
		return "association-response"
	case CmdDisassociation:
		return "disassociation"
	case CmdDataRequest:
		return "data-request"
	case CmdPANIDConflict:
		return "pan-id-conflict"
	case CmdOrphan:
		return "orphan"
	case CmdBeaconRequest:
		return "beacon-request"
	case CmdCoordinatorRealign:
		return "coordinator-realignment"
	case CmdGTSRequest:
		return "gts-request"
	default:
		return fmt.Sprintf("command(0x%02x)", uint8(c))
	}
}

// NewCommand builds a MAC command frame, e.g. the data request used for
// indirect (downlink) transmission.
func NewCommand(seq uint8, dst, src Address, id CommandID, params []byte, ackRequest bool) *Frame {
	payload := append([]byte{byte(id)}, params...)
	return &Frame{
		Header: Header{
			Control: Control{
				Type:       TypeCommand,
				AckRequest: ackRequest,
				IntraPAN:   dst.Mode != AddrNone && src.Mode != AddrNone && dst.PAN == src.PAN,
			},
			Seq: seq,
			Dst: dst,
			Src: src,
		},
		Payload: payload,
	}
}
