package frame

import (
	"bytes"
	"testing"
	"testing/quick"

	"dense802154/internal/phy"
)

func TestControlRoundTrip(t *testing.T) {
	cases := []Control{
		{Type: TypeData, AckRequest: true, IntraPAN: true, DstMode: AddrShort, SrcMode: AddrShort},
		{Type: TypeBeacon, SrcMode: AddrShort},
		{Type: TypeAck, FramePending: true},
		{Type: TypeCommand, Security: true, DstMode: AddrExtended, SrcMode: AddrExtended},
	}
	for _, c := range cases {
		back := DecodeControl(c.Encode())
		if back != c {
			t.Errorf("round trip %+v -> %+v", c, back)
		}
	}
}

// Property: every syntactically valid control field round-trips.
func TestPropertyControlRoundTrip(t *testing.T) {
	f := func(raw uint16) bool {
		c := DecodeControl(raw)
		if c.DstMode == 1 || c.SrcMode == 1 {
			return true // reserved mode: not encodable, skip
		}
		return DecodeControl(c.Encode()) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDataFrameRoundTrip(t *testing.T) {
	dst := ShortAddress(0x1234, 0x0001)
	src := ShortAddress(0x1234, 0x0042)
	f := NewData(7, dst, src, []byte("hello sensor"), true)
	mpdu := f.Encode()
	back, err := Decode(mpdu)
	if err != nil {
		t.Fatal(err)
	}
	if back.Header.Control.Type != TypeData || !back.Header.Control.AckRequest {
		t.Fatalf("control = %+v", back.Header.Control)
	}
	if !back.Header.Control.IntraPAN {
		t.Fatal("same-PAN data frame must set intra-PAN")
	}
	if back.Header.Seq != 7 {
		t.Fatalf("seq = %d", back.Header.Seq)
	}
	if back.Header.Dst != dst {
		t.Fatalf("dst = %+v", back.Header.Dst)
	}
	// Intra-PAN elides the source PAN; the decoder reconstructs it.
	if back.Header.Src.PAN != 0x1234 || back.Header.Src.Short != 0x0042 {
		t.Fatalf("src = %+v", back.Header.Src)
	}
	if string(back.Payload) != "hello sensor" {
		t.Fatalf("payload = %q", back.Payload)
	}
}

func TestIntraPANSavesTwoBytes(t *testing.T) {
	dst := ShortAddress(0x1234, 1)
	srcSame := ShortAddress(0x1234, 2)
	srcOther := Address{Mode: AddrShort, PAN: 0x9999, Short: 2}
	same := NewData(0, dst, srcSame, nil, false).Encode()
	other := NewData(0, dst, srcOther, nil, false).Encode()
	if len(other)-len(same) != 2 {
		t.Fatalf("intra-PAN elision saves %d bytes, want 2", len(other)-len(same))
	}
}

func TestExtendedAddressRoundTrip(t *testing.T) {
	dst := ExtendedAddress(0xBEEF, 0x1122334455667788)
	src := ExtendedAddress(0xCAFE, 0x8877665544332211)
	f := NewData(200, dst, src, []byte{1, 2, 3}, false)
	back, err := Decode(f.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Header.Dst.Extended != dst.Extended || back.Header.Src.Extended != src.Extended {
		t.Fatalf("extended addresses: %+v / %+v", back.Header.Dst, back.Header.Src)
	}
	if back.Header.Src.PAN != 0xCAFE {
		t.Fatal("cross-PAN source PAN must be preserved")
	}
}

func TestAckFrame(t *testing.T) {
	a := NewAck(99, true)
	mpdu := a.Encode()
	if len(mpdu) != AckMPDUBytes {
		t.Fatalf("ACK MPDU = %d bytes, want %d", len(mpdu), AckMPDUBytes)
	}
	back, err := Decode(mpdu)
	if err != nil {
		t.Fatal(err)
	}
	if back.Header.Control.Type != TypeAck || back.Header.Seq != 99 {
		t.Fatalf("ack decode: %+v", back.Header)
	}
	if !back.Header.Control.FramePending {
		t.Fatal("frame pending lost")
	}
}

func TestDecodeRejectsBadFCS(t *testing.T) {
	f := NewData(1, ShortAddress(1, 2), ShortAddress(1, 3), []byte{1}, false)
	mpdu := f.Encode()
	mpdu[len(mpdu)-1] ^= 0xFF
	if _, err := Decode(mpdu); err != ErrBadFCS {
		t.Fatalf("err = %v, want ErrBadFCS", err)
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	if _, err := Decode([]byte{1, 2}); err != ErrTooShort {
		t.Fatalf("err = %v, want ErrTooShort", err)
	}
	// Control field promises addressing that is not present. Craft a body
	// announcing a short dst with only 1 byte after the header, then a
	// valid FCS so the length check is what trips.
	ctl := Control{Type: TypeData, DstMode: AddrShort}
	body := []byte{byte(ctl.Encode()), byte(ctl.Encode() >> 8), 0 /*seq*/, 0xAA}
	mpdu := AppendFCS(body)
	if _, err := Decode(mpdu); err != ErrTooShort {
		t.Fatalf("err = %v, want ErrTooShort", err)
	}
}

func TestMHRLength(t *testing.T) {
	cases := []struct {
		dst, src AddrMode
		intra    bool
		want     int
	}{
		{AddrNone, AddrNone, false, 3},
		{AddrShort, AddrNone, false, 7},
		{AddrNone, AddrShort, false, 7},
		{AddrShort, AddrShort, false, 11},
		{AddrShort, AddrShort, true, 9},
		{AddrExtended, AddrExtended, true, 21},
		{AddrExtended, AddrExtended, false, 23},
	}
	for _, c := range cases {
		if got := MHRLength(c.dst, c.src, c.intra); got != c.want {
			t.Errorf("MHRLength(%d,%d,%v) = %d, want %d", c.dst, c.src, c.intra, got, c.want)
		}
	}
}

func TestMHRLengthMatchesEncoding(t *testing.T) {
	combos := []struct {
		dst, src Address
		intra    bool
	}{
		{ShortAddress(5, 6), ShortAddress(5, 7), true},
		{ShortAddress(5, 6), ShortAddress(9, 7), false},
		{ExtendedAddress(5, 6), ShortAddress(5, 7), true},
		{Address{}, ShortAddress(5, 7), false},
		{ShortAddress(5, 6), Address{}, false},
	}
	for _, c := range combos {
		h := Header{
			Control: Control{Type: TypeData, IntraPAN: c.intra},
			Dst:     c.dst,
			Src:     c.src,
		}
		got := len(h.EncodeMHR())
		want := MHRLength(c.dst.Mode, c.src.Mode, c.intra)
		if got != want {
			t.Errorf("encoded MHR %d bytes, MHRLength says %d (%+v)", got, want, c)
		}
	}
}

// Property: data frames round-trip for arbitrary payloads and addresses.
func TestPropertyDataFrameRoundTrip(t *testing.T) {
	f := func(seq uint8, dpan, dsh, span, ssh uint16, payload []byte, ack bool) bool {
		if len(payload) > 100 {
			payload = payload[:100]
		}
		fr := NewData(seq, ShortAddress(dpan, dsh), ShortAddress(span, ssh), payload, ack)
		back, err := Decode(fr.Encode())
		if err != nil {
			return false
		}
		return back.Header.Seq == seq &&
			back.Header.Dst.Short == dsh &&
			back.Header.Src.Short == ssh &&
			bytes.Equal(back.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTypeStrings(t *testing.T) {
	if TypeBeacon.String() != "beacon" || TypeData.String() != "data" ||
		TypeAck.String() != "ack" || TypeCommand.String() != "command" {
		t.Fatal("type strings")
	}
	if Type(7).String() == "" {
		t.Fatal("unknown type string")
	}
}

func TestAddrModeLength(t *testing.T) {
	if AddrNone.Length() != 0 || AddrShort.Length() != 2 || AddrExtended.Length() != 8 {
		t.Fatal("mode lengths")
	}
}

func TestPaperSizes(t *testing.T) {
	// Paper: Lo = 13 bytes, max payload 123 bytes, 120-byte packet on air
	// (13+120)·32µs = 4.256 ms; ACK = 11 bytes on air = 352 µs.
	if PaperPacketBytes(120) != 133 {
		t.Fatal("PaperPacketBytes(120)")
	}
	if got := PaperPacketDuration(120).Microseconds(); got != 4256 {
		t.Fatalf("PaperPacketDuration(120) = %dµs", got)
	}
	if AckOnAirBytes != 11 {
		t.Fatalf("AckOnAirBytes = %d", AckOnAirBytes)
	}
	if AckDuration.Microseconds() != 352 {
		t.Fatalf("AckDuration = %v", AckDuration)
	}
	if ErrorProneBytes(120) != 129 {
		t.Fatalf("ErrorProneBytes(120) = %d", ErrorProneBytes(120))
	}
	if MaxDataPayload != 123 {
		t.Fatal("MaxDataPayload")
	}
}

func TestStandardExactVsPaperAccounting(t *testing.T) {
	// The paper's Lo=13 (short addressing, 4 address bytes, FCS folded in)
	// differs from a standard-exact intra-PAN short/short data frame:
	// PHY 6 + MHR 9 + FCS 2 = 17 bytes of overhead.
	exact := DataOnAirBytes(120, AddrShort, AddrShort, true)
	if exact != 137 {
		t.Fatalf("standard-exact on-air bytes = %d, want 137", exact)
	}
	f := NewData(0, ShortAddress(1, 2), ShortAddress(1, 3), make([]byte, 120), true)
	if f.OnAirBytes() != exact {
		t.Fatalf("OnAirBytes %d != DataOnAirBytes %d", f.OnAirBytes(), exact)
	}
	if f.Duration() != phy.TxDuration(exact) {
		t.Fatal("Duration mismatch")
	}
}
