// Package frame implements IEEE 802.15.4-2003 MAC frames: the frame control
// field, the four frame types (beacon, data, acknowledgment, MAC command),
// short/extended addressing, the beacon's superframe/GTS/pending-address
// fields, and the CRC-16 frame check sequence.
//
// It serves two roles in the reproduction:
//   - the network simulator exchanges real, byte-exact frames;
//   - the analytical model needs exact on-air lengths; the paper's
//     Lo = 13 byte overhead accounting (Fig. 5) is provided alongside the
//     standard-exact lengths.
package frame

import (
	"errors"
	"fmt"
)

// Type is the 802.15.4 frame type (frame control bits 0-2).
type Type uint8

// Frame types.
const (
	TypeBeacon  Type = 0
	TypeData    Type = 1
	TypeAck     Type = 2
	TypeCommand Type = 3
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeBeacon:
		return "beacon"
	case TypeData:
		return "data"
	case TypeAck:
		return "ack"
	case TypeCommand:
		return "command"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// AddrMode is an addressing mode (frame control bits 10-11 / 14-15).
type AddrMode uint8

// Addressing modes. The value 1 is reserved by the standard.
const (
	AddrNone     AddrMode = 0
	AddrShort    AddrMode = 2
	AddrExtended AddrMode = 3
)

// Length reports the number of bytes the address itself occupies (without
// the PAN identifier).
func (m AddrMode) Length() int {
	switch m {
	case AddrShort:
		return 2
	case AddrExtended:
		return 8
	default:
		return 0
	}
}

// FCSLength is the size of the frame check sequence.
const FCSLength = 2

// Control is the decoded 16-bit frame control field.
type Control struct {
	Type         Type
	Security     bool
	FramePending bool
	AckRequest   bool
	IntraPAN     bool
	DstMode      AddrMode
	SrcMode      AddrMode
}

// Encode packs the frame control field (2003 layout).
func (c Control) Encode() uint16 {
	v := uint16(c.Type) & 0x7
	if c.Security {
		v |= 1 << 3
	}
	if c.FramePending {
		v |= 1 << 4
	}
	if c.AckRequest {
		v |= 1 << 5
	}
	if c.IntraPAN {
		v |= 1 << 6
	}
	v |= uint16(c.DstMode&0x3) << 10
	v |= uint16(c.SrcMode&0x3) << 14
	return v
}

// DecodeControl unpacks a frame control field.
func DecodeControl(v uint16) Control {
	return Control{
		Type:         Type(v & 0x7),
		Security:     v&(1<<3) != 0,
		FramePending: v&(1<<4) != 0,
		AckRequest:   v&(1<<5) != 0,
		IntraPAN:     v&(1<<6) != 0,
		DstMode:      AddrMode(v >> 10 & 0x3),
		SrcMode:      AddrMode(v >> 14 & 0x3),
	}
}

// Address is one addressing entry (destination or source).
type Address struct {
	Mode     AddrMode
	PAN      uint16
	Short    uint16
	Extended uint64
}

// ShortAddress builds a short address in a PAN.
func ShortAddress(pan, short uint16) Address {
	return Address{Mode: AddrShort, PAN: pan, Short: short}
}

// ExtendedAddress builds a 64-bit extended address in a PAN.
func ExtendedAddress(pan uint16, ext uint64) Address {
	return Address{Mode: AddrExtended, PAN: pan, Extended: ext}
}

// Header is the MAC header (MHR).
type Header struct {
	Control Control
	Seq     uint8
	Dst     Address
	Src     Address
}

// Frame is a complete MAC frame before FCS attachment.
type Frame struct {
	Header  Header
	Payload []byte
}

// Decode errors.
var (
	ErrTooShort = errors.New("frame: truncated frame")
	ErrBadFCS   = errors.New("frame: FCS mismatch")
)

func appendUint16(b []byte, v uint16) []byte {
	return append(b, byte(v), byte(v>>8))
}

func appendUint64(b []byte, v uint64) []byte {
	for i := 0; i < 8; i++ {
		b = append(b, byte(v>>(8*i)))
	}
	return b
}

// EncodeMHR serializes the MAC header. The addressing modes in the frame
// control field must agree with the Dst/Src modes; Encode synchronizes them
// from the Address values. With IntraPAN set and both addresses present,
// the source PAN identifier is elided per §7.2.1.1.5.
func (h *Header) EncodeMHR() []byte {
	h.Control.DstMode = h.Dst.Mode
	h.Control.SrcMode = h.Src.Mode
	out := make([]byte, 0, 23)
	out = appendUint16(out, h.Control.Encode())
	out = append(out, h.Seq)
	if h.Dst.Mode != AddrNone {
		out = appendUint16(out, h.Dst.PAN)
		if h.Dst.Mode == AddrShort {
			out = appendUint16(out, h.Dst.Short)
		} else {
			out = appendUint64(out, h.Dst.Extended)
		}
	}
	if h.Src.Mode != AddrNone {
		if !(h.Control.IntraPAN && h.Dst.Mode != AddrNone) {
			out = appendUint16(out, h.Src.PAN)
		}
		if h.Src.Mode == AddrShort {
			out = appendUint16(out, h.Src.Short)
		} else {
			out = appendUint64(out, h.Src.Extended)
		}
	}
	return out
}

// Encode serializes the full MPDU: MHR, payload and FCS.
func (f *Frame) Encode() []byte {
	out := f.Header.EncodeMHR()
	out = append(out, f.Payload...)
	return AppendFCS(out)
}

// Decode parses and validates an MPDU (including FCS check).
func Decode(mpdu []byte) (*Frame, error) {
	if len(mpdu) < 3+FCSLength {
		return nil, ErrTooShort
	}
	if !CheckFCS(mpdu) {
		return nil, ErrBadFCS
	}
	body := mpdu[:len(mpdu)-FCSLength]
	ctl := DecodeControl(uint16(body[0]) | uint16(body[1])<<8)
	f := &Frame{Header: Header{Control: ctl, Seq: body[2]}}
	i := 3
	need := func(n int) error {
		if i+n > len(body) {
			return ErrTooShort
		}
		return nil
	}
	readU16 := func() uint16 {
		v := uint16(body[i]) | uint16(body[i+1])<<8
		i += 2
		return v
	}
	readU64 := func() uint64 {
		var v uint64
		for k := 0; k < 8; k++ {
			v |= uint64(body[i+k]) << (8 * k)
		}
		i += 8
		return v
	}
	if ctl.DstMode != AddrNone {
		if err := need(2 + ctl.DstMode.Length()); err != nil {
			return nil, err
		}
		f.Header.Dst.Mode = ctl.DstMode
		f.Header.Dst.PAN = readU16()
		if ctl.DstMode == AddrShort {
			f.Header.Dst.Short = readU16()
		} else {
			f.Header.Dst.Extended = readU64()
		}
	}
	if ctl.SrcMode != AddrNone {
		f.Header.Src.Mode = ctl.SrcMode
		if !(ctl.IntraPAN && ctl.DstMode != AddrNone) {
			if err := need(2); err != nil {
				return nil, err
			}
			f.Header.Src.PAN = readU16()
		} else {
			f.Header.Src.PAN = f.Header.Dst.PAN
		}
		if err := need(ctl.SrcMode.Length()); err != nil {
			return nil, err
		}
		if ctl.SrcMode == AddrShort {
			f.Header.Src.Short = readU16()
		} else {
			f.Header.Src.Extended = readU64()
		}
	}
	f.Payload = append([]byte(nil), body[i:]...)
	return f, nil
}

// MHRLength reports the MAC header size for the given addressing layout.
func MHRLength(dst, src AddrMode, intraPAN bool) int {
	n := 3 // frame control + sequence number
	if dst != AddrNone {
		n += 2 + dst.Length()
	}
	if src != AddrNone {
		if !(intraPAN && dst != AddrNone) {
			n += 2
		}
		n += src.Length()
	}
	return n
}

// NewData builds an uplink data frame.
func NewData(seq uint8, dst, src Address, payload []byte, ackRequest bool) *Frame {
	return &Frame{
		Header: Header{
			Control: Control{
				Type:       TypeData,
				AckRequest: ackRequest,
				IntraPAN:   dst.Mode != AddrNone && src.Mode != AddrNone && dst.PAN == src.PAN,
			},
			Seq: seq,
			Dst: dst,
			Src: src,
		},
		Payload: append([]byte(nil), payload...),
	}
}

// NewAck builds an acknowledgment frame for the given sequence number.
// An ACK carries no addressing: MPDU is 5 bytes (§7.2.2.3).
func NewAck(seq uint8, framePending bool) *Frame {
	return &Frame{
		Header: Header{
			Control: Control{Type: TypeAck, FramePending: framePending},
			Seq:     seq,
		},
	}
}
