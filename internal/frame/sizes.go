package frame

import (
	"time"

	"dense802154/internal/phy"
)

// This file collects the on-air length accounting used by the analytical
// model. Two views coexist:
//
//   - the standard-exact lengths (EncodeMHR + payload + FCS + PHY header),
//     used by the network simulator;
//   - the paper's accounting of Fig. 5 / eq. (3): a fixed Lo = 13 byte
//     overhead (4 preamble + 1 SFD + 1 PHY header + 2 frame control +
//     1 sequence + 4 short addressing) added to the payload, with the FCS
//     folded into the addressing allowance. The model uses this by default
//     so that T_packet = (Lo + L) · T_B reproduces the paper.

// PaperOverheadBytes is the paper's Lo: the PHY+MAC overhead per data
// packet with short addresses (Fig. 5).
const PaperOverheadBytes = 13

// MaxDataPayload is the largest MAC data payload the paper considers
// (123 bytes, bounded by aMaxPHYPacketSize).
const MaxDataPayload = 123

// PaperPacketBytes reports the total on-air bytes of a data packet with an
// L-byte payload under the paper's accounting: Lpacket = Lo + L.
func PaperPacketBytes(payload int) int { return PaperOverheadBytes + payload }

// PaperPacketDuration reports T_packet = (Lo + L)·T_B (eq. 3).
func PaperPacketDuration(payload int) time.Duration {
	return phy.TxDuration(PaperPacketBytes(payload))
}

// ErrorProneBytes reports the byte count exposed to bit errors in the
// paper's eq. (10): the full packet minus the 4-byte preamble.
func ErrorProneBytes(payload int) int {
	return PaperPacketBytes(payload) - phy.PreambleBytes
}

// AckMPDUBytes is the MPDU size of an acknowledgment (§7.2.2.3):
// frame control + sequence + FCS.
const AckMPDUBytes = 5

// AckOnAirBytes is an acknowledgment's total on-air size.
const AckOnAirBytes = AckMPDUBytes + phy.HeaderBytes

// AckDuration is the on-air time of an acknowledgment frame (352 µs).
var AckDuration = phy.TxDuration(AckOnAirBytes)

// DataOnAirBytes reports the standard-exact on-air size of a data frame.
func DataOnAirBytes(payload int, dst, src AddrMode, intraPAN bool) int {
	return phy.HeaderBytes + MHRLength(dst, src, intraPAN) + payload + FCSLength
}

// OnAirBytes reports the standard-exact on-air size of an encoded frame.
func (f *Frame) OnAirBytes() int {
	return phy.HeaderBytes + len(f.Encode())
}

// Duration reports the standard-exact on-air duration of the frame at the
// 2450 MHz rate.
func (f *Frame) Duration() time.Duration {
	return phy.TxDuration(f.OnAirBytes())
}

// BeaconOnAirBytes reports the on-air size of a beacon with src short
// addressing, g GTS descriptors, ps pending short and pe pending extended
// addresses, and an extra application payload of x bytes.
func BeaconOnAirBytes(g, ps, pe, x int) int {
	mhr := MHRLength(AddrNone, AddrShort, false)
	payload := 2 + 1 + 1 + x // superframe spec + GTS spec + pending spec
	if g > 0 {
		payload += 1 + 3*g // directions byte + descriptors
	}
	payload += 2*ps + 8*pe
	return phy.HeaderBytes + mhr + payload + FCSLength
}

// BeaconDuration reports the on-air duration of such a beacon.
func BeaconDuration(g, ps, pe, x int) time.Duration {
	return phy.TxDuration(BeaconOnAirBytes(g, ps, pe, x))
}
