package frame

import (
	"testing"
	"testing/quick"
)

func TestFCSKnownVector(t *testing.T) {
	// The 802.15.4 FCS is the KERMIT CRC-16: check("123456789") = 0x2189.
	if got := FCS([]byte("123456789")); got != 0x2189 {
		t.Fatalf("FCS = %#04x, want 0x2189", got)
	}
}

func TestFCSEmpty(t *testing.T) {
	if got := FCS(nil); got != 0 {
		t.Fatalf("FCS(nil) = %#04x, want 0", got)
	}
}

func TestAppendCheckRoundTrip(t *testing.T) {
	data := []byte{0x01, 0x88, 0x42, 0xAA, 0x55}
	mpdu := AppendFCS(append([]byte(nil), data...))
	if len(mpdu) != len(data)+2 {
		t.Fatalf("AppendFCS length %d", len(mpdu))
	}
	if !CheckFCS(mpdu) {
		t.Fatal("CheckFCS rejects a freshly generated FCS")
	}
}

func TestCheckFCSDetectsCorruption(t *testing.T) {
	mpdu := AppendFCS([]byte{0xDE, 0xAD, 0xBE, 0xEF})
	for i := range mpdu {
		for bit := 0; bit < 8; bit++ {
			bad := append([]byte(nil), mpdu...)
			bad[i] ^= 1 << uint(bit)
			if CheckFCS(bad) {
				t.Fatalf("single-bit corruption at byte %d bit %d undetected", i, bit)
			}
		}
	}
}

func TestCheckFCSTooShort(t *testing.T) {
	if CheckFCS(nil) || CheckFCS([]byte{1}) {
		t.Fatal("short inputs must fail the check")
	}
}

// Property: any payload round-trips through AppendFCS/CheckFCS.
func TestPropertyFCSRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		return CheckFCS(AppendFCS(append([]byte(nil), data...)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
