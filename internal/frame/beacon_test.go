package frame

import (
	"testing"
	"testing/quick"
)

func TestSuperframeSpecRoundTrip(t *testing.T) {
	s := SuperframeSpec{
		BeaconOrder:     6,
		SuperframeOrder: 6,
		FinalCAPSlot:    15,
		BatteryLifeExt:  false,
		PANCoordinator:  true,
		AssocPermit:     true,
	}
	back := DecodeSuperframeSpec(s.Encode())
	if back != s {
		t.Fatalf("round trip: %+v -> %+v", s, back)
	}
}

// Property: all field combinations of the superframe spec round-trip.
func TestPropertySuperframeSpec(t *testing.T) {
	f := func(bo, so, cap uint8, ble, pc, ap bool) bool {
		s := SuperframeSpec{
			BeaconOrder:     bo & 0xF,
			SuperframeOrder: so & 0xF,
			FinalCAPSlot:    cap & 0xF,
			BatteryLifeExt:  ble,
			PANCoordinator:  pc,
			AssocPermit:     ap,
		}
		return DecodeSuperframeSpec(s.Encode()) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBeaconPayloadRoundTrip(t *testing.T) {
	b := &BeaconPayload{
		Superframe: SuperframeSpec{BeaconOrder: 6, SuperframeOrder: 6, FinalCAPSlot: 15, PANCoordinator: true},
		GTSPermit:  true,
		GTS: []GTSDescriptor{
			{ShortAddr: 0x0010, StartSlot: 13, Length: 2},
			{ShortAddr: 0x0020, StartSlot: 15, Length: 1},
		},
		GTSDirections: 0b01,
		PendingShort:  []uint16{0x0042, 0x0043},
		PendingExt:    []uint64{0x1122334455667788},
		Extra:         []byte{0xAB},
	}
	enc, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBeaconPayload(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Superframe != b.Superframe {
		t.Fatalf("superframe: %+v", back.Superframe)
	}
	if !back.GTSPermit || len(back.GTS) != 2 || back.GTS[0] != b.GTS[0] || back.GTS[1] != b.GTS[1] {
		t.Fatalf("GTS: %+v", back.GTS)
	}
	if back.GTSDirections != 0b01 {
		t.Fatalf("directions: %b", back.GTSDirections)
	}
	if len(back.PendingShort) != 2 || back.PendingShort[0] != 0x0042 {
		t.Fatalf("pending short: %v", back.PendingShort)
	}
	if len(back.PendingExt) != 1 || back.PendingExt[0] != 0x1122334455667788 {
		t.Fatalf("pending ext: %v", back.PendingExt)
	}
	if len(back.Extra) != 1 || back.Extra[0] != 0xAB {
		t.Fatalf("extra: %v", back.Extra)
	}
}

func TestBeaconPayloadMinimal(t *testing.T) {
	b := &BeaconPayload{Superframe: SuperframeSpec{BeaconOrder: 6, SuperframeOrder: 6}}
	enc, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// superframe(2) + gts spec(1) + pending spec(1) = 4 bytes minimum.
	if len(enc) != 4 {
		t.Fatalf("minimal beacon payload = %d bytes, want 4", len(enc))
	}
	back, err := DecodeBeaconPayload(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.GTS) != 0 || len(back.PendingShort) != 0 {
		t.Fatal("minimal beacon must have no GTS/pending entries")
	}
}

func TestBeaconLimits(t *testing.T) {
	b := &BeaconPayload{GTS: make([]GTSDescriptor, 8)}
	if _, err := b.Encode(); err != ErrTooManyGTS {
		t.Fatalf("err = %v, want ErrTooManyGTS", err)
	}
	b = &BeaconPayload{PendingShort: make([]uint16, 8)}
	if _, err := b.Encode(); err != ErrTooManyPending {
		t.Fatalf("err = %v, want ErrTooManyPending", err)
	}
}

func TestDecodeBeaconPayloadTruncated(t *testing.T) {
	if _, err := DecodeBeaconPayload([]byte{1, 2}); err != ErrTooShort {
		t.Fatalf("err = %v", err)
	}
	// GTS spec promising descriptors that are missing.
	bad := []byte{0, 0, 0x03, 0}
	if _, err := DecodeBeaconPayload(bad); err != ErrTooShort {
		t.Fatalf("err = %v", err)
	}
	// Pending spec promising addresses that are missing.
	bad = []byte{0, 0, 0x00, 0x12}
	if _, err := DecodeBeaconPayload(bad); err != ErrTooShort {
		t.Fatalf("err = %v", err)
	}
}

func TestNewBeaconFullFrame(t *testing.T) {
	payload := &BeaconPayload{
		Superframe: SuperframeSpec{BeaconOrder: 6, SuperframeOrder: 6, FinalCAPSlot: 15, PANCoordinator: true},
	}
	f, err := NewBeacon(5, ShortAddress(0x1234, 0x0000), payload)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(f.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Header.Control.Type != TypeBeacon {
		t.Fatal("type")
	}
	if back.Header.Dst.Mode != AddrNone || back.Header.Src.Mode != AddrShort {
		t.Fatal("beacon addressing must be source-only")
	}
	bp, err := DecodeBeaconPayload(back.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if bp.Superframe.BeaconOrder != 6 {
		t.Fatal("beacon order lost")
	}
}

func TestBeaconOnAirBytes(t *testing.T) {
	// Minimal beacon: PHY 6 + MHR 7 (fc2+seq1+srcPAN2+src2) + payload 4 +
	// FCS 2 = 19 bytes.
	if got := BeaconOnAirBytes(0, 0, 0, 0); got != 19 {
		t.Fatalf("minimal beacon = %d bytes, want 19", got)
	}
	// Must agree with an actually encoded beacon.
	payload := &BeaconPayload{}
	f, err := NewBeacon(0, ShortAddress(1, 0), payload)
	if err != nil {
		t.Fatal(err)
	}
	if f.OnAirBytes() != 19 {
		t.Fatalf("encoded minimal beacon = %d bytes", f.OnAirBytes())
	}
	// With GTS and pending entries.
	payload = &BeaconPayload{
		GTS:          []GTSDescriptor{{ShortAddr: 1, StartSlot: 14, Length: 2}},
		PendingShort: []uint16{0x10, 0x20},
		Extra:        []byte{1, 2, 3},
	}
	f, err = NewBeacon(0, ShortAddress(1, 0), payload)
	if err != nil {
		t.Fatal(err)
	}
	want := BeaconOnAirBytes(1, 2, 0, 3)
	if f.OnAirBytes() != want {
		t.Fatalf("beacon with options = %d bytes, want %d", f.OnAirBytes(), want)
	}
}

func TestCommandFrame(t *testing.T) {
	f := NewCommand(3, ShortAddress(1, 0), ShortAddress(1, 9), CmdDataRequest, nil, true)
	back, err := Decode(f.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Header.Control.Type != TypeCommand {
		t.Fatal("type")
	}
	if len(back.Payload) != 1 || CommandID(back.Payload[0]) != CmdDataRequest {
		t.Fatalf("payload: %v", back.Payload)
	}
}

func TestCommandIDStrings(t *testing.T) {
	ids := []CommandID{
		CmdAssociationRequest, CmdAssociationResponse, CmdDisassociation,
		CmdDataRequest, CmdPANIDConflict, CmdOrphan, CmdBeaconRequest,
		CmdCoordinatorRealign, CmdGTSRequest, CommandID(0x77),
	}
	for _, id := range ids {
		if id.String() == "" {
			t.Fatalf("empty string for %d", uint8(id))
		}
	}
}

func TestMaxGTSDescriptorsIsSeven(t *testing.T) {
	// The paper's §2 argument that GTS cannot serve hundreds of nodes.
	if MaxGTSDescriptors != 7 {
		t.Fatal("the standard caps GTS descriptors at 7")
	}
}
