// Package buildinfo derives version identification for the nine cmd/*
// binaries and the service healthz/metrics surfaces from the build's own
// metadata (runtime/debug.ReadBuildInfo): the main module version, the VCS
// revision and commit time stamped by the go tool, and the Go toolchain
// version. No ldflags plumbing is required — a plain `go build` or
// `go install` carries everything.
package buildinfo

import (
	"runtime"
	"runtime/debug"
)

// Info is the resolved build identification.
type Info struct {
	// Version is the main module version ("(devel)" for a source build).
	Version string
	// Revision is the VCS commit hash, "" when not stamped (e.g. a build
	// outside a checkout or from the module cache without VCS info).
	Revision string
	// Time is the VCS commit time in RFC 3339 form, "" when not stamped.
	Time string
	// Dirty reports uncommitted local modifications at build time.
	Dirty bool
	// GoVersion is the toolchain that built the binary.
	GoVersion string
}

// Read resolves the build info once per call; it never fails (fields are
// empty or "(devel)" when the runtime has nothing to report).
func Read() Info {
	info := Info{Version: "(devel)", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}

// String renders the one-line -version output: name, module version,
// revision (short), commit time and toolchain.
func String(name string) string {
	i := Read()
	out := name + " " + i.Version
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		out += " (" + rev
		if i.Dirty {
			out += "-dirty"
		}
		if i.Time != "" {
			out += ", " + i.Time
		}
		out += ")"
	}
	return out + " " + i.GoVersion
}
