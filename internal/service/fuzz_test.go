package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"dense802154/internal/query"
	"dense802154/internal/store"
)

// The service decodes attacker-controlled JSON. These fuzz targets pin the
// decoder's crash-safety contract: malformed bodies, hostile numbers and
// absent fields must produce a structured error or a defaulted value —
// never a panic. Seed corpora live in testdata/fuzz/<Target>/; run the
// fuzzers locally with
//
//	go test ./internal/service -fuzz FuzzParamsWireDecode -fuzztime 30s

// strictDecode mirrors decodeJSON's settings (unknown-field rejection,
// trailing-garbage detection) without the HTTP plumbing.
func strictDecode(data []byte, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return err
	}
	if dec.More() {
		return errTrailing
	}
	return nil
}

var errTrailing = &Error{Message: "trailing data"}

// FuzzFloatRoundTrip: any byte string the Float decoder accepts must
// re-encode and decode back to the identical bits — including ±Inf and NaN.
func FuzzFloatRoundTrip(f *testing.F) {
	for _, seed := range []string{
		`1.5`, `-0`, `1e308`, `-1e-308`, `"+Inf"`, `"-Inf"`, `"NaN"`, `"Inf"`,
		`"1.25"`, `3.141592653589793`, `""`, `"x"`, `[1]`, `{`, `5e-324`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var v Float
		if err := json.Unmarshal(data, &v); err != nil {
			return // rejection is fine; panics are not
		}
		enc, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("accepted %q but cannot re-encode: %v", data, err)
		}
		var back Float
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatalf("re-encoded %q → %q does not decode: %v", data, enc, err)
		}
		if math.Float64bits(float64(back)) != math.Float64bits(float64(v)) {
			t.Fatalf("round-trip %q → %v → %q → %v changed bits", data, float64(v), enc, float64(back))
		}
	})
}

// FuzzParamsWireDecode: the evaluate/batch request codec must never panic,
// and any body it accepts must materialize into validated core.Params (or a
// structured *Error) — defaulting included.
func FuzzParamsWireDecode(f *testing.F) {
	for _, seed := range []string{
		`{}`,
		`{"payload_bytes":60,"load":0.25}`,
		`{"load":"+Inf"}`,
		`{"path_loss_db":"NaN","tx_level":-1}`,
		`{"superframe":{"bo":6,"so":6},"contention":{"source":"approx"}}`,
		`{"contention":{"source":"montecarlo","superframes":12,"seed":7,"arrival":"at-beacon"}}`,
		`{"radio":"cc2420-improved","ber":"awgn","n_max":100}`,
		`{"wakeup_lead_ns":-1}`,
		`{"beacon_bytes":0}`,
		`{"payload_bytes":null}`,
		`{"unknown_field":1}`,
		`{"workers":9999999}`,
		`{"load":1e999}`,
		`{} trailing`,
		`[{"payload_bytes":1}]`,
		`{"superframe":{"bo":255,"so":255}}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var pw ParamsWire
		if err := strictDecode(data, &pw); err != nil {
			return
		}
		p, aerr := pw.Params(2, 1)
		if aerr != nil {
			if aerr.Message == "" {
				t.Fatalf("empty validation error for %q", data)
			}
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted body %q produced invalid params: %v", data, err)
		}
	})
}

// FuzzSimConfigWireDecode: the /v1/simulate codec must never panic and must
// bound-check every accepted field.
func FuzzSimConfigWireDecode(f *testing.F) {
	for _, seed := range []string{
		`{}`,
		`{"nodes":100,"superframes":20,"seed":1}`,
		`{"nodes":0}`,
		`{"nodes":10001}`,
		`{"min_loss_db":"+Inf","max_loss_db":"-Inf"}`,
		`{"min_loss_db":95,"max_loss_db":55}`,
		`{"transmit_prob":"NaN"}`,
		`{"superframe":{"bo":3,"so":9}}`,
		`{"radio":"bogus"}`,
		`{"payload_bytes":124}`,
		`{"max_packet_superframes":0,"low_power_listen":true}`,
		`{"target_prx_dbm":-87,"n_max":5,"beacon_bytes":30}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var sw SimConfigWire
		if err := strictDecode(data, &sw); err != nil {
			return
		}
		cfg, aerr := (&sw).Config()
		if aerr != nil {
			if aerr.Message == "" {
				t.Fatalf("empty validation error for %q", data)
			}
			return
		}
		// Accepted configs must stay inside the wire bounds after
		// defaulting (a panic or a bound escape here would let a client
		// pin a worker forever).
		if cfg.Nodes < 0 || cfg.Nodes > 10000 {
			t.Fatalf("accepted body %q produced %d nodes", data, cfg.Nodes)
		}
		if cfg.Superframes < 0 || cfg.Superframes > 100000 {
			t.Fatalf("accepted body %q produced %d superframes", data, cfg.Superframes)
		}
		if sw.TransmitProb != nil && !(cfg.TransmitProb >= 0 && cfg.TransmitProb <= 1) {
			t.Fatalf("accepted body %q produced transmit prob %v", data, cfg.TransmitProb)
		}
	})
}

// FuzzQueryDecode: the v2 unified-query decoder must never panic, must
// reject NaN/Inf grid inputs and unknown kinds with structured errors, and
// any body it compiles must have materialized every spec into validated
// model inputs (Compile runs the full builder chain).
func FuzzQueryDecode(f *testing.F) {
	for _, seed := range []string{
		`{}`,
		`{"kind":"evaluate"}`,
		`{"kind":"evaluate","params":{"payload_bytes":60,"load":0.25}}`,
		`{"version":2,"kind":"batch","batch":[{},{"payload_bytes":20}]}`,
		`{"version":1,"kind":"evaluate"}`,
		`{"kind":"bogus"}`,
		`{"kind":"casestudy","config":{"nodes":1600,"loss_grid_points":11}}`,
		`{"kind":"pathloss-sweep","losses":{"from":55,"to":95,"points":81}}`,
		`{"kind":"pathloss-sweep","losses":{"values":["NaN"]}}`,
		`{"kind":"pathloss-sweep","losses":{"from":"-Inf","to":"+Inf","points":5}}`,
		`{"kind":"thresholds","losses":{"from":60,"to":80,"step":0.5}}`,
		`{"kind":"payload-sweep","payloads":{"from":5,"to":123,"step":2}}`,
		`{"kind":"payload-sweep","payloads":{"values":[20,60,120]}}`,
		`{"kind":"payload-sweep","payloads":{"from":0,"to":9223372036854775807}}`,
		`{"kind":"payload-sweep","payloads":{"from":9223372036854775806,"to":9223372036854775807,"step":5}}`,
		`{"kind":"simulate","sim":{"nodes":100,"superframes":20,"seed":1}}`,
		`{"kind":"simulate","sim":{"min_loss_db":"NaN"}}`,
		`{"kind":"replicas","sim":{"nodes":10},"replicas":4096}`,
		`{"kind":"replicas","replicas":4097}`,
		`{"kind":"lifetime","sim":{"nodes":8,"superframes":2},"lifetime":{"capacity_j":0.3,"epoch_superframes":4},"replicas":2}`,
		`{"kind":"lifetime","lifetime":{"capacity_j":"NaN"}}`,
		`{"kind":"lifetime","lifetime":{"threshold_j":-0.5}}`,
		`{"kind":"lifetime","lifetime":{"supply":"harvester","harvest_uw":100,"partition_frac":0.25}}`,
		`{"kind":"lifetime","lifetime":{"supply":"fusion"}}`,
		`{"kind":"simulate","lifetime":{"capacity_j":1}}`,
		`{"kind":"lifetime","params":{"payload_bytes":60}}`,
		`{"kind":"scenario","scenario":"baseline-case-study","diff":true}`,
		`{"kind":"scenario","scenario":"nope"}`,
		`{"kind":"experiment","experiment":"fig8","quick":true,"seed":7}`,
		`{"kind":"evaluate","replicas":1}`,
		`{"kind":"evaluate","params":{"load":"+Inf"}}`,
		`{"kind":"batch","batch":[]}`,
		`{"kind":"grid","params":{"contention":{"superframes":8,"seed":3}},"losses":{"values":[55,70]},"payloads":{"values":[20,100]}}`,
		`{"kind":"grid","losses":{"from":55,"to":95,"points":5},"bos":{"values":[6,9]},"nodes":{"values":[10,50]}}`,
		`{"kind":"grid","losses":{"from":40,"to":240,"points":201},"payloads":{"from":5,"to":123,"step":1}}`,
		`{"kind":"grid","losses":{"values":["NaN"]}}`,
		`{"kind":"grid","bos":{"values":[0]},"replicas":2}`,
		`{"kind":"evaluate","timeout_ms":1000}`,
		`{"kind":"evaluate","timeout_ms":-5}`,
		`{"kind":"replicas","sim":{"nodes":10},"replicas":4,"timeout_ms":9223372036854775807}`,
		`{"unknown":1}`,
		`{"kind":"evaluate"} trailing`,
		`{"kind":"evaluate","workers":8}`,
		`{"kind":"evaluate","trace":true}`,
		`{"kind":"evaluate","workers":4,"trace":true,"timeout_ms":60000}`,
		`{"version":2,"kind":"grid","losses":{"values":[55,70]},"workers":16,"trace":true}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var q query.Query
		if err := strictDecode(data, &q); err != nil {
			return // rejection is fine; panics are not
		}
		// Content-key stability (internal/store leans on this): the
		// canonical form is deterministic, and the key-neutral fields —
		// workers, trace, timeout_ms — never change it or the derived key.
		can1, ok1 := q.Canonical()
		can2, ok2 := q.Canonical()
		if ok1 != ok2 || !bytes.Equal(can1, can2) {
			t.Fatalf("canonical form of %q not deterministic", data)
		}
		if ok1 {
			neutral := q
			neutral.Workers = q.Workers + 3
			neutral.Trace = !q.Trace
			neutral.TimeoutMS = q.TimeoutMS + 1000
			can3, ok3 := neutral.Canonical()
			if !ok3 || !bytes.Equal(can1, can3) {
				t.Fatalf("key-neutral fields changed the canonical form of %q", data)
			}
			k1, kok1 := store.KeyFor(q)
			k3, kok3 := store.KeyFor(neutral)
			if !kok1 || !kok3 || k1 != k3 {
				t.Fatalf("key-neutral fields changed the content key of %q", data)
			}
		}
		plan, err := query.Compile(q)
		if err != nil {
			var aerr *Error
			if errors.As(err, &aerr) && aerr.Message == "" {
				t.Fatalf("empty validation error for %q", data)
			}
			return
		}
		// A compiled plan must have a known kind and at least one task,
		// and unknown/empty kinds must never compile.
		if plan.NumTasks() < 1 {
			t.Fatalf("accepted body %q produced %d tasks", data, plan.NumTasks())
		}
		known := false
		for _, k := range query.Kinds() {
			if q.Kind == k {
				known = true
				break
			}
		}
		if !known {
			t.Fatalf("accepted body %q with unknown kind %q", data, q.Kind)
		}
		if q.Version != 0 && q.Version != query.Version {
			t.Fatalf("accepted body %q with version %d", data, q.Version)
		}
		// Grid axes must have expanded to finite points within bounds.
		if q.Losses != nil {
			grid, aerr := q.Losses.Grid("losses", query.DefaultLossGrid)
			if aerr != nil {
				t.Fatalf("compiled body %q but its axis fails to expand: %v", data, aerr)
			}
			if len(grid) > query.MaxGridPoints {
				t.Fatalf("accepted body %q with %d grid points", data, len(grid))
			}
			for _, x := range grid {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					t.Fatalf("accepted body %q with non-finite grid point %v", data, x)
				}
			}
		}
	})
}

// FuzzCaseStudyConfigWireDecode: the /v1/casestudy codec must never panic.
func FuzzCaseStudyConfigWireDecode(f *testing.F) {
	for _, seed := range []string{
		`{}`,
		`{"nodes":1600,"channels":16}`,
		`{"nodes":-1}`,
		`{"min_loss_db":60,"max_loss_db":60}`,
		`{"loss_grid_points":1}`,
		`{"data_bytes_per_second":"+Inf"}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var cw CaseStudyConfigWire
		if err := strictDecode(data, &cw); err != nil {
			return
		}
		if _, aerr := (&cw).Config(); aerr != nil && aerr.Message == "" {
			t.Fatalf("empty validation error for %q", data)
		}
	})
}
