package service

import (
	"net/http"

	"dense802154/internal/scenario"
)

// ---- GET /v1/scenarios ----

type scenarioListResponse struct {
	Scenarios []scenario.Scenario `json:"scenarios"`
}

func (s *Server) handleScenarioList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, scenarioListResponse{Scenarios: scenario.Catalog()})
}

// ---- GET /v1/scenarios/{name} ----

// The GET form serves the committed golden result — the pinned cross-model
// outcome this build ships — without computing anything.
func (s *Server) handleScenarioGolden(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	b, ok := scenario.Golden(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown scenario "+name, "name")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
}

// ---- POST /v1/scenarios/{name} ----

type scenarioRunRequest struct {
	// Workers is the requested parallelism (clamped to the server pool;
	// results never depend on it).
	Workers int `json:"workers,omitempty"`
	// Diff additionally scores the fresh run against the committed golden.
	Diff bool `json:"diff,omitempty"`
}

type scenarioRunResponse struct {
	Result *scenario.Result     `json:"result"`
	Diff   *scenario.DiffReport `json:"diff,omitempty"`
}

func (s *Server) handleScenarioRun(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sc, ok := scenario.ByName(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown scenario "+name, "name")
		return
	}
	var req scenarioRunRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	got, release, okW := s.acquireWorkers(w, r, req.Workers)
	if !okW {
		return
	}
	defer release()

	res, err := scenario.Run(r.Context(), sc, got)
	if err != nil {
		if r.Context().Err() != nil {
			writeCtxError(w, r.Context().Err())
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error(), "")
		return
	}
	resp := scenarioRunResponse{Result: res}
	if req.Diff {
		rep, err := scenario.Diff(res)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error(), "")
			return
		}
		resp.Diff = &rep
	}
	writeJSON(w, http.StatusOK, resp)
}
