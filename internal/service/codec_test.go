package service

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"dense802154/internal/contention"
	"dense802154/internal/core"
)

func TestFloatRoundTripsBitExactly(t *testing.T) {
	values := []float64{
		0, 1, -1, 0.1, 1.0 / 3.0, math.Pi, 2.35e-30,
		math.MaxFloat64, math.SmallestNonzeroFloat64,
		-math.MaxFloat64, 1e-323, // subnormal
		math.Inf(1), math.Inf(-1),
	}
	for _, v := range values {
		b, err := json.Marshal(Float(v))
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var got Float
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if math.Float64bits(float64(got)) != math.Float64bits(v) {
			t.Errorf("round trip %v via %s gave %v", v, b, float64(got))
		}
	}

	b, err := json.Marshal(Float(math.NaN()))
	if err != nil {
		t.Fatal(err)
	}
	var nan Float
	if err := json.Unmarshal(b, &nan); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(nan)) {
		t.Errorf("NaN round trip gave %v", float64(nan))
	}

	// Plain JSON numbers from hand-written clients must also parse.
	var f Float
	if err := json.Unmarshal([]byte("0.433"), &f); err != nil || f != 0.433 {
		t.Errorf("numeric literal: %v %v", f, err)
	}
	if err := json.Unmarshal([]byte(`"bogus"`), &f); err == nil {
		t.Error("bogus string accepted")
	}
}

func TestParamsWireDefaultsMatchDefaultParams(t *testing.T) {
	p, aerr := ParamsWire{}.Params(3, 3)
	if aerr != nil {
		t.Fatal(aerr)
	}
	want := core.DefaultParams()
	if p.PayloadBytes != want.PayloadBytes || p.Load != want.Load ||
		p.PathLossDB != want.PathLossDB || p.TXLevelIndex != want.TXLevelIndex ||
		p.NMax != want.NMax || p.BeaconBytes != want.BeaconBytes ||
		p.WakeupLead != want.WakeupLead || p.CCAListen != want.CCAListen ||
		p.PaperAckAccounting != want.PaperAckAccounting ||
		p.IncludeIFS != want.IncludeIFS ||
		p.IncludeShutdownLeakage != want.IncludeShutdownLeakage ||
		p.Superframe != want.Superframe {
		t.Fatalf("wire defaults diverge from DefaultParams:\n%+v\n%+v", p, want)
	}
	if p.Workers != 3 {
		t.Fatalf("Workers = %d, want the granted 3", p.Workers)
	}
	mc, ok := p.Contention.(*contention.MCSource)
	if !ok {
		t.Fatalf("contention source is %T, want *MCSource", p.Contention)
	}
	if mc.Base.Superframes != 60 || mc.Base.Seed != 2005 || mc.Base.Workers != 3 {
		t.Fatalf("MC base = %+v, want 60 superframes / seed 2005 / workers 3", mc.Base)
	}
	if p.Radio.Name != "CC2420" {
		t.Fatalf("radio = %q", p.Radio.Name)
	}
}

func TestParamsWireOverridesAndErrors(t *testing.T) {
	payload := 40
	load := Float(0.25)
	tx := 2
	w := ParamsWire{
		Radio:        "cc2420-fast",
		BER:          "awgn",
		Contention:   &ContentionWire{Source: "approx"},
		PayloadBytes: &payload,
		Load:         &load,
		TXLevel:      &tx,
	}
	p, aerr := w.Params(1, 1)
	if aerr != nil {
		t.Fatal(aerr)
	}
	if p.PayloadBytes != 40 || p.Load != 0.25 || p.TXLevelIndex != 2 {
		t.Fatalf("overrides not applied: %+v", p)
	}
	if _, ok := p.Contention.(contention.Approx); !ok {
		t.Fatalf("contention source is %T, want Approx", p.Contention)
	}
	if p.Radio.Name == "CC2420" {
		t.Fatal("fast radio not selected")
	}

	bad := []struct {
		w     ParamsWire
		field string
	}{
		{ParamsWire{Radio: "nrf24"}, "radio"},
		{ParamsWire{BER: "rayleigh"}, "ber"},
		{ParamsWire{Contention: &ContentionWire{Source: "oracle"}}, "contention.source"},
		{ParamsWire{Contention: &ContentionWire{Arrival: "bursty"}}, "contention.arrival"},
		{ParamsWire{Contention: &ContentionWire{Superframes: -4}}, "contention.superframes"},
		{ParamsWire{Superframe: &SuperframeWire{BO: 3, SO: 9}}, "superframe"},
		{ParamsWire{PayloadBytes: intp(0)}, "params"},
		{ParamsWire{PayloadBytes: intp(5000)}, "params"},
		{ParamsWire{Load: floatp(1.5)}, "params"},
		{ParamsWire{TXLevel: intp(99)}, "params"},
		{ParamsWire{NMax: intp(0)}, "params"},
		{ParamsWire{BeaconBytes: intp(-1)}, "beacon_bytes"},
		{ParamsWire{WakeupLead: int64p(-5)}, "wakeup_lead_ns"},
	}
	for _, tc := range bad {
		_, aerr := tc.w.Params(1, 1)
		if aerr == nil {
			t.Errorf("%+v accepted, want error on %s", tc.w, tc.field)
			continue
		}
		if aerr.Field != tc.field {
			t.Errorf("%+v: error field %q, want %q", tc.w, aerr.Field, tc.field)
		}
	}
}

func TestMetricsWireRoundTrip(t *testing.T) {
	p := core.DefaultParams()
	p.Workers = 1
	p.Contention = contention.Approx{}
	m, err := core.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(metricsWire(m))
	if err != nil {
		t.Fatal(err)
	}
	var w MetricsWire
	if err := json.Unmarshal(b, &w); err != nil {
		t.Fatal(err)
	}
	if got := w.Metrics(); !reflect.DeepEqual(got, m) {
		t.Fatalf("metrics changed across the wire:\n got %+v\nwant %+v", got, m)
	}
}

func TestMetricsWireCarriesInfiniteEnergy(t *testing.T) {
	p := core.DefaultParams()
	p.Workers = 1
	p.Contention = contention.Approx{}
	p.PathLossDB = 130 // far out of range: delay and energy diverge
	m, err := core.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(m.EnergyPerBitJ, 1) {
		t.Skipf("expected +Inf energy at 130 dB, got %v", m.EnergyPerBitJ)
	}
	b, err := json.Marshal(metricsWire(m))
	if err != nil {
		t.Fatalf("marshal with +Inf: %v", err)
	}
	var w MetricsWire
	if err := json.Unmarshal(b, &w); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(float64(w.EnergyPerBitJ), 1) {
		t.Fatalf("energy lost its infinity: %v", float64(w.EnergyPerBitJ))
	}
	if !reflect.DeepEqual(w.Metrics(), m) {
		t.Fatal("out-of-range metrics changed across the wire")
	}
}

func TestSimConfigWireValidation(t *testing.T) {
	if _, aerr := (&SimConfigWire{MinLossDB: floatp(90), MaxLossDB: floatp(60)}).Config(); aerr == nil {
		t.Error("inverted loss bounds accepted")
	}
	if _, aerr := (&SimConfigWire{Radio: "bogus"}).Config(); aerr == nil || aerr.Field != "config.radio" {
		t.Errorf("bogus radio: %v", aerr)
	}
	if _, aerr := (&SimConfigWire{Nodes: intp(-2)}).Config(); aerr == nil {
		t.Error("negative nodes accepted")
	}
	cfg, aerr := (&SimConfigWire{Nodes: intp(30), Seed: int64p(9)}).Config()
	if aerr != nil {
		t.Fatal(aerr)
	}
	if cfg.Nodes != 30 || cfg.Seed != 9 {
		t.Fatalf("config = %+v", cfg)
	}
	// nil wire = all simulator defaults.
	if _, aerr := (*SimConfigWire)(nil).Config(); aerr != nil {
		t.Fatal(aerr)
	}
}

func TestCaseStudyConfigWireValidation(t *testing.T) {
	cfg, aerr := (*CaseStudyConfigWire)(nil).Config()
	if aerr != nil {
		t.Fatal(aerr)
	}
	if cfg != core.DefaultCaseStudy() {
		t.Fatalf("nil wire = %+v, want paper defaults", cfg)
	}
	if _, aerr := (&CaseStudyConfigWire{LossGridPoints: intp(1)}).Config(); aerr == nil {
		t.Error("degenerate grid accepted")
	}
	if _, aerr := (&CaseStudyConfigWire{MinLossDB: floatp(95), MaxLossDB: floatp(55)}).Config(); aerr == nil {
		t.Error("inverted loss bounds accepted")
	}
}

func intp(v int) *int         { return &v }
func int64p(v int64) *int64   { return &v }
func floatp(v float64) *Float { f := Float(v); return &f }
