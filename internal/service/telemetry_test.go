package service

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"

	"dense802154/internal/telemetry"
)

// syncWriter serializes writes from the server's logging goroutines with
// the test's reads.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// requiredFamilies is the metric coverage contract of GET /metrics: every
// layer — HTTP service, worker pool, engine, contention cache, simulator —
// must be represented in a scrape. The CI bench-smoke lint asserts the same
// list against a live server.
var requiredFamilies = []string{
	"wsn_http_requests_total",
	"wsn_http_request_duration_seconds",
	"wsn_http_requests_in_flight",
	"wsn_query_total",
	"wsn_query_tasks_total",
	"wsn_worker_pool_capacity",
	"wsn_worker_pool_in_use",
	"wsn_worker_acquires_total",
	"wsn_worker_wait_seconds",
	"wsn_uptime_seconds",
	"wsn_build_info",
	"wsn_engine_batches_total",
	"wsn_engine_task_seconds",
	"wsn_engine_task_wait_seconds",
	"wsn_contention_cache_hits_total",
	"wsn_contention_cache_misses_total",
	"wsn_contention_cache_evictions_total",
	"wsn_contention_cache_entries",
	"wsn_contention_cache_limit",
	"wsn_netsim_runs_total",
	"wsn_netsim_events_total",
	"wsn_netsim_cca_attempts_total",
	"wsn_netsim_backoffs_total",
	"wsn_netsim_prune_fallback_total",
	"wsn_netsim_heap_depth_max",
	"wsn_lifetime_runs_total",
	"wsn_lifetime_epochs_total",
	"wsn_lifetime_deaths_total",
	"wsn_lifetime_simulated_seconds_total",
	"wsn_lifetime_fast_forward_seconds_total",
	"wsn_store_hits_total",
	"wsn_store_misses_total",
	"wsn_store_puts_total",
	"wsn_store_evictions_total",
	"wsn_store_disk_hits_total",
	"wsn_store_disk_errors_total",
	"wsn_store_bytes",
	"wsn_store_entries",
}

// TestMetricsEndpoint drives a small workload through the server, scrapes
// GET /metrics, and checks the exposition parses, covers every layer's
// families and reflects the workload in the counters.
func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})

	// A v2 simulate query (touches netsim), an evaluate (touches the
	// contention cache via the analytic model) and a 404.
	status, body := postJSON(t, ts.URL+"/v2/query",
		`{"kind":"simulate","sim":{"nodes":10,"superframes":2}}`)
	if status != http.StatusOK {
		t.Fatalf("simulate query: status %d: %s", status, body)
	}
	if status, body = postJSON(t, ts.URL+"/v2/query", `{"kind":"nope"}`); status != http.StatusBadRequest {
		t.Fatalf("invalid kind: status %d: %s", status, body)
	}
	resp, err := http.Get(ts.URL + "/no/such/route")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Errorf("content type %q, want %q", ct, telemetry.ContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := telemetry.ParseText(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("scrape does not parse: %v\n%s", err, raw)
	}
	have := map[string][]telemetry.Sample{}
	for _, f := range fams {
		have[f.Name] = f.Samples
	}
	for _, name := range requiredFamilies {
		if _, ok := have[name]; !ok {
			t.Errorf("scrape missing family %s", name)
		}
	}

	// Round trip: re-encoding the parsed families reproduces the bytes.
	var re bytes.Buffer
	if err := telemetry.EncodeFamilies(&re, fams); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, re.Bytes()) {
		t.Error("re-encoded scrape differs from served bytes")
	}

	// Workload visibility: the simulate query and the netsim run it drove.
	sampleValue := func(name string, labels ...string) (float64, bool) {
	outer:
		for _, s := range have[name] {
			for i := 0; i+1 < len(labels); i += 2 {
				found := false
				for _, l := range s.Labels {
					if l.Name == labels[i] && l.Value == labels[i+1] {
						found = true
					}
				}
				if !found {
					continue outer
				}
			}
			if s.Suffix == "" {
				return s.Value, true
			}
		}
		return 0, false
	}
	if v, ok := sampleValue("wsn_query_total", "kind", "simulate"); !ok || v < 1 {
		t.Errorf("wsn_query_total{kind=simulate} = %v %v, want ≥ 1", v, ok)
	}
	if v, ok := sampleValue("wsn_http_requests_total", "route", "POST /v2/query", "code", "200"); !ok || v < 1 {
		t.Errorf("requests_total{POST /v2/query,200} = %v %v, want ≥ 1", v, ok)
	}
	if v, ok := sampleValue("wsn_http_requests_total", "route", "unmatched", "code", "404"); !ok || v < 1 {
		t.Errorf("requests_total{unmatched,404} = %v %v, want ≥ 1", v, ok)
	}
	if v, ok := sampleValue("wsn_http_errors_total", "route", "POST /v2/query", "class", "4xx"); !ok || v < 1 {
		t.Errorf("errors_total{POST /v2/query,4xx} = %v %v, want ≥ 1", v, ok)
	}
	// Process-wide source: the simulate run folded into the shared netsim
	// counters (other tests may have run too, so ≥ 1).
	if v, ok := sampleValue("wsn_netsim_runs_total"); !ok || v < 1 {
		t.Errorf("wsn_netsim_runs_total = %v %v, want ≥ 1", v, ok)
	}
}

// TestStructuredRequestLog checks the slog pipeline: one JSON record per
// request with id, route, status and duration, and the same id echoed in
// the X-Request-Id response header.
func TestStructuredRequestLog(t *testing.T) {
	var buf bytes.Buffer
	var mu syncWriter
	mu.w = &buf
	logger := slog.New(slog.NewJSONHandler(&mu, nil))
	ts := newTestServer(t, Config{Workers: 1, Logger: logger})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	rid := resp.Header.Get("X-Request-Id")
	if rid == "" {
		t.Fatal("no X-Request-Id header")
	}

	mu.mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.mu.Unlock()
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no log output")
	}
	var rec struct {
		Msg    string `json:"msg"`
		ID     string `json:"id"`
		Method string `json:"method"`
		Path   string `json:"path"`
		Route  string `json:"route"`
		Status int    `json:"status"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &rec); err != nil {
		t.Fatalf("log line not JSON: %v: %s", err, lines[len(lines)-1])
	}
	if rec.Msg != "request" || rec.ID != rid || rec.Method != "GET" ||
		rec.Path != "/healthz" || rec.Route != "GET /healthz" || rec.Status != 200 {
		t.Fatalf("log record %+v (want id %s)", rec, rid)
	}
}

// TestHealthzBuildInfoAndStatsSnapshot checks the enriched healthz body and
// the new atomic stats fields.
func TestHealthzBuildInfoAndStatsSnapshot(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Version == "" || hz.GoVersion == "" {
		t.Fatalf("healthz = %+v", hz)
	}

	// One 400 to move the error ledger.
	if status, _ := postJSON(t, ts.URL+"/v2/query", `{"kind":"nope"}`); status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", status)
	}
	status, body := postJSON(t, ts.URL+"/v1/evaluate", `{}`)
	if status != http.StatusOK {
		t.Fatalf("evaluate: %d: %s", status, body)
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests < 3 {
		t.Errorf("requests_total = %d, want ≥ 3", st.Requests)
	}
	if st.Responses4xx < 1 {
		t.Errorf("responses_4xx_total = %d, want ≥ 1", st.Responses4xx)
	}
	if st.WorkerAcquires < 1 {
		t.Errorf("worker_acquires_total = %d, want ≥ 1", st.WorkerAcquires)
	}
	if st.WorkerBudget != 2 {
		t.Errorf("worker_budget = %d, want 2", st.WorkerBudget)
	}
}

// TestStreamTraceOnDoneLine checks the opt-in trace rides the stream's done
// line and stays off by default.
func TestStreamTraceOnDoneLine(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})

	status, body := postJSON(t, ts.URL+"/v2/query/stream",
		`{"kind":"replicas","sim":{"nodes":8,"superframes":2},"replicas":3,"trace":true}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	var done queryStreamLine
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &done); err != nil {
		t.Fatal(err)
	}
	if !done.Done || done.Count != 3 {
		t.Fatalf("done line %+v", done)
	}
	if done.Trace == nil || done.Trace.Tasks != 3 || len(done.Trace.Spans) != 3 {
		t.Fatalf("trace %+v, want 3 spans", done.Trace)
	}

	// Without the opt-in the done line carries no trace.
	status, body = postJSON(t, ts.URL+"/v2/query/stream",
		`{"kind":"replicas","sim":{"nodes":8,"superframes":2},"replicas":3}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	lines = strings.Split(strings.TrimSpace(string(body)), "\n")
	done = queryStreamLine{}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &done); err != nil {
		t.Fatal(err)
	}
	if done.Trace != nil {
		t.Fatal("trace present without opt-in")
	}
}
