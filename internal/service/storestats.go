package service

import (
	"net/http"

	"dense802154/internal/store"
)

// ---- GET /v2/store/stats ----
//
// A JSON snapshot of the content-addressed result store: the process-wide
// wsn_store_* counters (every Store in the process folds into the same
// totals — telemetry's shared-source idiom) plus this server's configured
// store and its in-memory tier occupancy. The counter fields mirror the
// Prometheus families one for one, so a dashboard and a curl read the same
// truth; the endpoint exists for clients that want the numbers without
// parsing the text exposition format.

// storeStatsResponse is the /v2/store/stats body.
type storeStatsResponse struct {
	// Configured reports whether this server was built with a result store;
	// when false the memory block is absent and the process-wide counters
	// reflect other stores in the process (or zeros).
	Configured bool `json:"configured"`

	Hits       uint64 `json:"hits_total"`
	Misses     uint64 `json:"misses_total"`
	Puts       uint64 `json:"puts_total"`
	Evictions  uint64 `json:"evictions_total"`
	DiskHits   uint64 `json:"disk_hits_total"`
	DiskErrors uint64 `json:"disk_errors_total"`

	Memory *storeMemoryWire `json:"memory,omitempty"`
}

// storeMemoryWire is the in-memory tier occupancy of this server's store.
type storeMemoryWire struct {
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

func (s *Server) handleStoreStats(w http.ResponseWriter, r *http.Request) {
	resp := storeStatsResponse{
		Hits:       store.HitsTotal.Value(),
		Misses:     store.MissesTotal.Value(),
		Puts:       store.PutsTotal.Value(),
		Evictions:  store.EvictionsTotal.Value(),
		DiskHits:   store.DiskHitsTotal.Value(),
		DiskErrors: store.DiskErrorsTotal.Value(),
	}
	if s.cfg.Store != nil {
		resp.Configured = true
		st := s.cfg.Store.Stats()
		resp.Memory = &storeMemoryWire{Entries: st.Entries, Bytes: st.Bytes}
	}
	writeJSON(w, http.StatusOK, resp)
}
