package service

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dense802154/internal/store"
	"dense802154/internal/telemetry"
)

const storeGridBody = `{"kind":"grid","params":{"contention":{"superframes":8,"seed":3}},"losses":{"values":[55,70,85]},"payloads":{"values":[20,100]}}`

// newStoreServer is newTestServer with a fresh memory-only result store.
func newStoreServer(t *testing.T, cfg Config) (*httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.New(store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = st
	return newTestServer(t, cfg), st
}

// metricValue scrapes /metrics and returns the (unlabeled) value of one
// family.
func metricValue(t *testing.T, url, family string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	fams, err := telemetry.ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fams {
		if f.Name != family {
			continue
		}
		for _, s := range f.Samples {
			if s.Suffix == "" && len(s.Labels) == 0 {
				return s.Value
			}
		}
	}
	t.Fatalf("family %s not in scrape", family)
	return 0
}

// TestQueryStoreWarmHit is the tentpole's service-level acceptance test: the
// second identical /v2/query is answered from the store byte-identically,
// with wsn_store_hits_total moving and zero engine batches executed — the
// hit path runs no task at all.
func TestQueryStoreWarmHit(t *testing.T) {
	plain := newTestServer(t, Config{Workers: 2})
	_, want := postJSON(t, plain.URL+"/v2/query", storeGridBody)

	ts, _ := newStoreServer(t, Config{Workers: 2})
	status, cold := postJSON(t, ts.URL+"/v2/query", storeGridBody)
	if status != http.StatusOK {
		t.Fatalf("cold query: %d: %s", status, cold)
	}
	if !bytes.Equal(cold, want) {
		t.Fatal("cold store-backed response deviates from storeless server")
	}

	hits0 := metricValue(t, ts.URL, "wsn_store_hits_total")
	batches0 := metricValue(t, ts.URL, "wsn_engine_batches_total")
	status, warm := postJSON(t, ts.URL+"/v2/query", storeGridBody)
	if status != http.StatusOK {
		t.Fatalf("warm query: %d", status)
	}
	if !bytes.Equal(warm, want) {
		t.Fatal("warm response deviates from cold response")
	}
	if d := metricValue(t, ts.URL, "wsn_store_hits_total") - hits0; d < 1 {
		t.Errorf("wsn_store_hits_total moved by %v, want ≥ 1", d)
	}
	if d := metricValue(t, ts.URL, "wsn_engine_batches_total") - batches0; d != 0 {
		t.Errorf("warm query executed %v engine batches, want 0", d)
	}

	// Worker count and timeout are key-neutral: a differently-parallel
	// identical query is the same cache line.
	reworked := strings.Replace(storeGridBody, `{"kind"`, `{"workers":1,"timeout_ms":60000,"kind"`, 1)
	status, alt := postJSON(t, ts.URL+"/v2/query", reworked)
	if status != http.StatusOK {
		t.Fatalf("reworked query: %d", status)
	}
	if !bytes.Equal(alt, want) {
		t.Fatal("key-neutral variant missed the cache or deviated")
	}
}

// TestQueryStreamStoreReplay: a completed stream persists the whole-query
// result, and the next identical stream replays byte-identically from the
// store.
func TestQueryStreamStoreReplay(t *testing.T) {
	plain := newTestServer(t, Config{Workers: 2})
	_, want := postJSON(t, plain.URL+"/v2/query/stream", storeGridBody)

	ts, _ := newStoreServer(t, Config{Workers: 2})
	_, cold := postJSON(t, ts.URL+"/v2/query/stream", storeGridBody)
	if !bytes.Equal(cold, want) {
		t.Fatal("cold stream deviates from storeless server")
	}
	hits0 := metricValue(t, ts.URL, "wsn_store_hits_total")
	_, warm := postJSON(t, ts.URL+"/v2/query/stream", storeGridBody)
	if !bytes.Equal(warm, want) {
		t.Fatal("replayed stream deviates from fresh stream")
	}
	if d := metricValue(t, ts.URL, "wsn_store_hits_total") - hits0; d < 1 {
		t.Errorf("stream replay moved wsn_store_hits_total by %v, want ≥ 1", d)
	}

	// The non-streaming route shares the cache line: same query, same
	// stored ResultSet.
	status, body := postJSON(t, ts.URL+"/v2/query", storeGridBody)
	if status != http.StatusOK {
		t.Fatalf("query after stream: %d", status)
	}
	_, plainBody := postJSON(t, plain.URL+"/v2/query", storeGridBody)
	if !bytes.Equal(body, plainBody) {
		t.Fatal("non-streaming response after stream deviates")
	}
}

// TestQueryStreamResume: a client that disconnects mid-stream and retries
// gets the full byte-identical stream, resumed from the per-task results the
// interrupted attempt persisted.
func TestQueryStreamResume(t *testing.T) {
	plain := newTestServer(t, Config{Workers: 2})
	_, want := postJSON(t, plain.URL+"/v2/query/stream", storeGridBody)

	ts, st := newStoreServer(t, Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v2/query/stream", strings.NewReader(storeGridBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one line, then walk away mid-stream.
	buf := make([]byte, 1)
	for {
		if _, err := resp.Body.Read(buf); err != nil || buf[0] == '\n' {
			break
		}
	}
	cancel()
	resp.Body.Close()

	if st.Stats().Entries == 0 {
		t.Fatal("interrupted stream persisted nothing")
	}
	hits0 := store.HitsTotal.Value()
	_, retry := postJSON(t, ts.URL+"/v2/query/stream", storeGridBody)
	if !bytes.Equal(retry, want) {
		t.Fatal("resumed stream deviates from a fresh one")
	}
	if store.HitsTotal.Value() == hits0 {
		t.Error("resumed stream reused no persisted task")
	}
}

// TestTraceBypassesResultCache: traced responses carry measured wall times,
// so they must never be served from (or into) the whole-query byte cache a
// key-equal untraced query populated.
func TestTraceBypassesResultCache(t *testing.T) {
	ts, _ := newStoreServer(t, Config{Workers: 2})
	status, body := postJSON(t, ts.URL+"/v2/query", storeGridBody)
	if status != http.StatusOK {
		t.Fatalf("untraced query: %d", status)
	}
	if bytes.Contains(body, []byte(`"trace"`)) {
		t.Fatal("untraced response carries a trace")
	}
	traced := strings.Replace(storeGridBody, `{"kind"`, `{"trace":true,"kind"`, 1)
	for i := 0; i < 2; i++ {
		status, body = postJSON(t, ts.URL+"/v2/query", traced)
		if status != http.StatusOK {
			t.Fatalf("traced query %d: %d", i, status)
		}
		if !bytes.Contains(body, []byte(`"trace"`)) {
			t.Fatalf("traced query %d served a trace-less cached body", i)
		}
	}
	// And the untraced line is still served untraced afterwards.
	status, body = postJSON(t, ts.URL+"/v2/query", storeGridBody)
	if status != http.StatusOK || bytes.Contains(body, []byte(`"trace"`)) {
		t.Fatalf("untraced query after traced ones: %d, trace=%v", status, bytes.Contains(body, []byte(`"trace"`)))
	}
}

// flakyWriter fails exactly one Write call (the failAt-th, 1-based) and
// records everything else — the shape of a broken pipe surfacing through a
// buffering proxy: the failure is visible to the handler while later writes
// still "succeed" locally.
type flakyWriter struct {
	header http.Header
	buf    bytes.Buffer
	calls  int
	failAt int
}

func (w *flakyWriter) Header() http.Header { return w.header }
func (w *flakyWriter) WriteHeader(int)     {}
func (w *flakyWriter) Write(p []byte) (int, error) {
	w.calls++
	if w.calls == w.failAt {
		return 0, errors.New("write tcp: broken pipe")
	}
	return w.buf.Write(p)
}

// TestTasksStreamWriteFailureNotATaskError is the satellite-1 regression
// test: when writing a task line back to the coordinator fails before the
// request context is canceled, the worker must end the stream silently —
// a truncated stream re-dispatches — and never emit a TaskLine error, which
// the coordinator would treat as a deterministic compute failure and abort
// the whole query on.
func TestTasksStreamWriteFailureNotATaskError(t *testing.T) {
	app := NewServer(Config{Workers: 2})
	body := `{"query":` + storeGridBody + `,"from":0,"to":6,"workers":1}`
	w := &flakyWriter{header: http.Header{}, failAt: 2}
	r := httptest.NewRequest(http.MethodPost, "/v2/tasks", strings.NewReader(body))
	r.Header.Set("Content-Type", "application/json")
	app.ServeHTTP(w, r)

	out := w.buf.String()
	if !strings.Contains(out, `"result"`) {
		t.Fatalf("no task line before the injected failure:\n%s", out)
	}
	if strings.Contains(out, `"error"`) {
		t.Fatalf("stream-write failure reported as a task error line:\n%s", out)
	}
	if strings.Contains(out, `"done"`) {
		t.Fatalf("failed stream still claimed completion:\n%s", out)
	}
}

// TestTasksStreamShape pins the healthy shape next to the regression above:
// with no injected fault the same request streams every task line and the
// terminal done line — proving the sentinel branch fires only on actual
// write failures.
func TestTasksStreamShape(t *testing.T) {
	app := NewServer(Config{Workers: 2})
	body := `{"query":` + storeGridBody + `,"from":0,"to":6,"workers":1}`
	w := &flakyWriter{header: http.Header{}, failAt: 0} // never fails
	r := httptest.NewRequest(http.MethodPost, "/v2/tasks", strings.NewReader(body))
	r.Header.Set("Content-Type", "application/json")
	app.ServeHTTP(w, r)
	out := w.buf.String()
	if strings.Count(out, `"result"`) != 6 || !strings.Contains(out, `"done":true`) {
		t.Fatalf("healthy stream malformed:\n%s", out)
	}
}
