// Package service exposes the whole model surface of this repository as an
// HTTP JSON API — the batch-evaluation front-end the production deployment
// story needs: many clients submit analytical-model evaluations, paper
// sweeps, case-study integrations, discrete-event simulations and
// registered experiment drivers to one process that shares a bounded
// contention cache and a server-wide worker pool.
//
// # Endpoints
//
//	GET  /healthz                    liveness probe
//	GET  /v1/stats                   cache and request counters
//	POST /v1/evaluate                one Params → Metrics
//	POST /v1/batch                   many Params → []Metrics (NDJSON with ?stream=1)
//	POST /v1/casestudy               §5 population integration
//	POST /v1/sweep/pathloss          Fig. 7 energy-vs-path-loss curve family
//	POST /v1/sweep/thresholds        Fig. 7 link-adaptation switching points
//	POST /v1/sweep/payload           Fig. 8 energy-vs-payload curve
//	POST /v1/simulate                netsim with server-side parallel replications
//	GET  /v1/experiments             registered paper drivers
//	POST /v1/experiments/{name}      run one driver
//	GET  /v1/scenarios               the committed cross-model scenario catalog
//	GET  /v1/scenarios/{name}        the committed golden result for one scenario
//	POST /v1/scenarios/{name}        run one scenario fresh (optionally diffed vs its golden)
//	POST /v2/query                   one declarative Query → tagged ResultSet
//	POST /v2/query/stream            same Query, NDJSON TaskResults in plan order
//
// The v2 routes speak the unified query type of internal/query: one
// versioned request covers everything the v1 routes do (see the v1 → v2
// wire mapping in codec.go), and new parameter axes become Query fields
// instead of new endpoints. The v1 routes are maintained but frozen.
//
// # Concurrency model
//
// The server owns a pool of worker tokens (Config.Workers, default NumCPU).
// Every request acquires at least one token before computing and greedily
// takes as many as are free, up to what it asked for; concurrent clients
// therefore share the machine instead of each oversubscribing it. Because
// every sweep in the repository is worker-count independent, the grant
// changes only latency, never results: the JSON a client receives is bit
// for bit what an in-process Evaluate/EvaluateBatch/RunCaseStudy call
// returns. Request contexts flow into every sweep, so a disconnected
// client cancels its computation end to end; cancellation is observed
// between evaluation points, batch elements and simulation replicas — an
// in-flight Monte-Carlo contention characterization (bounded by the wire
// cap on its superframes) runs to completion and is cached for the next
// request.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"dense802154/internal/contention"
)

// Config parameterizes a Server.
type Config struct {
	// Workers is the server-wide worker-token budget shared by all
	// requests (0 ⇒ NumCPU).
	Workers int
	// CacheLimit bounds the process-wide contention cache to this many
	// Monte-Carlo characterizations with LRU eviction (0 = unbounded).
	// NewServer installs the bound unconditionally: the cache is process
	// state, so the most recently constructed server wins.
	CacheLimit int
	// RequestTimeout is the per-request computation deadline; requests
	// exceeding it are canceled (at the granularity the package doc
	// describes) and answered 503 (0 = no deadline).
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies (0 ⇒ 8 MiB).
	MaxBodyBytes int64
	// Log receives one line per request (nil disables logging).
	Log *log.Logger
}

// Server is the HTTP front-end. It implements http.Handler and is safe for
// concurrent use; construct it with NewServer.
type Server struct {
	cfg  Config
	pool *limiter
	mux  *http.ServeMux

	started  time.Time
	requests atomic.Uint64
	inflight atomic.Int64
}

// NewServer builds the service with its routes, worker pool and cache
// bound installed.
func NewServer(cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	s := &Server{
		cfg:     cfg,
		pool:    newLimiter(cfg.Workers),
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	contention.SetCacheLimit(cfg.CacheLimit)

	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/casestudy", s.handleCaseStudy)
	s.mux.HandleFunc("POST /v1/sweep/pathloss", s.handleSweepPathLoss)
	s.mux.HandleFunc("POST /v1/sweep/thresholds", s.handleSweepThresholds)
	s.mux.HandleFunc("POST /v1/sweep/payload", s.handleSweepPayload)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperimentList)
	s.mux.HandleFunc("POST /v1/experiments/{name}", s.handleExperimentRun)
	s.mux.HandleFunc("GET /v1/scenarios", s.handleScenarioList)
	s.mux.HandleFunc("GET /v1/scenarios/{name}", s.handleScenarioGolden)
	s.mux.HandleFunc("POST /v1/scenarios/{name}", s.handleScenarioRun)
	s.mux.HandleFunc("POST /v2/query", s.handleQuery)
	s.mux.HandleFunc("POST /v2/query/stream", s.handleQueryStream)
	return s
}

// ServeHTTP implements http.Handler: body cap, per-request deadline,
// in-flight accounting and logging around the route handlers.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if s.cfg.RequestTimeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	start := time.Now()
	s.mux.ServeHTTP(w, r)
	if s.cfg.Log != nil {
		s.cfg.Log.Printf("%s %s %v", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	}
}

// statsResponse is the /v1/stats body.
type statsResponse struct {
	UptimeSeconds Float `json:"uptime_seconds"`

	Requests uint64 `json:"requests_total"`
	InFlight int64  `json:"requests_in_flight"`

	WorkerBudget int `json:"worker_budget"`
	WorkersBusy  int `json:"workers_busy"`

	Cache cacheStatsWire `json:"contention_cache"`
}

// cacheStatsWire is the JSON form of engine.CacheStats.
type cacheStatsWire struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Limit     int    `json:"limit"`
	HitRate   Float  `json:"hit_rate"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	cs := contention.CacheStats()
	writeJSON(w, http.StatusOK, statsResponse{
		UptimeSeconds: Float(time.Since(s.started).Seconds()),
		Requests:      s.requests.Load(),
		InFlight:      s.inflight.Load(),
		WorkerBudget:  s.pool.capacity,
		WorkersBusy:   s.pool.inUse(),
		Cache: cacheStatsWire{
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Evictions: cs.Evictions,
			Entries:   cs.Entries,
			Limit:     cs.Limit,
			HitRate:   Float(cs.HitRate()),
		},
	})
}

// errorBody is the envelope of every non-2xx JSON response.
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Status  int    `json:"status"`
	Message string `json:"message"`
	Field   string `json:"field,omitempty"`
}

// writeError renders a structured error response.
func writeError(w http.ResponseWriter, status int, message, field string) {
	writeJSON(w, status, errorBody{Error: errorDetail{Status: status, Message: message, Field: field}})
}

// writeValidationError renders a codec *Error as a 400.
func writeValidationError(w http.ResponseWriter, err *Error) {
	writeError(w, http.StatusBadRequest, err.Message, err.Field)
}

// writeCtxError maps a context failure to 503 (deadline) or 499-style 503
// (client gone; the connection is usually dead anyway).
func writeCtxError(w http.ResponseWriter, err error) {
	writeError(w, http.StatusServiceUnavailable, err.Error(), "")
}

// writeJSON renders v with the JSON content type.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// decodeJSON parses the request body into dst with strict field checking.
// An empty body leaves dst at its zero value (every request type has full
// defaults). Malformed payloads, unknown fields and trailing garbage are
// 400s; an oversized body is a 413.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		if errors.Is(err, io.EOF) {
			return true // empty body: all defaults
		}
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds "+strconv.FormatInt(maxErr.Limit, 10)+" bytes", "")
			return false
		}
		writeError(w, http.StatusBadRequest, "malformed request: "+err.Error(), "")
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after JSON body", "")
		return false
	}
	return true
}
