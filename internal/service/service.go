// Package service exposes the whole model surface of this repository as an
// HTTP JSON API — the batch-evaluation front-end the production deployment
// story needs: many clients submit analytical-model evaluations, paper
// sweeps, case-study integrations, discrete-event simulations and
// registered experiment drivers to one process that shares a bounded
// contention cache and a server-wide worker pool.
//
// # Endpoints
//
//	GET  /healthz                    liveness probe (uptime + build info)
//	GET  /livez                      bare liveness probe (process is serving)
//	GET  /readyz                     readiness probe (503 while initializing or draining)
//	GET  /metrics                    Prometheus text-format metrics
//	GET  /v1/stats                   cache and request counters
//	POST /v1/evaluate                one Params → Metrics
//	POST /v1/batch                   many Params → []Metrics (NDJSON with ?stream=1)
//	POST /v1/casestudy               §5 population integration
//	POST /v1/sweep/pathloss          Fig. 7 energy-vs-path-loss curve family
//	POST /v1/sweep/thresholds        Fig. 7 link-adaptation switching points
//	POST /v1/sweep/payload           Fig. 8 energy-vs-payload curve
//	POST /v1/simulate                netsim with server-side parallel replications
//	GET  /v1/experiments             registered paper drivers
//	POST /v1/experiments/{name}      run one driver
//	GET  /v1/scenarios               the committed cross-model scenario catalog
//	GET  /v1/scenarios/{name}        the committed golden result for one scenario
//	POST /v1/scenarios/{name}        run one scenario fresh (optionally diffed vs its golden)
//	POST /v2/query                   one declarative Query → tagged ResultSet
//	POST /v2/query/stream            same Query, NDJSON TaskResults in plan order
//	POST /v2/tasks                   one task-index range of a compiled plan (NDJSON)
//	GET  /v2/store/stats             result-store counters and tier occupancy
//
// The v2 routes speak the unified query type of internal/query: one
// versioned request covers everything the per-endpoint v1 routes do (see
// the v1 → v2 wire mapping in codec.go), and new parameter axes become
// Query fields instead of new endpoints. The v1 routes are maintained but
// frozen.
//
// /v2/tasks is the worker half of distributed execution (internal/dist): a
// coordinator posts a query plus an index range and streams back the
// corresponding TaskResults in range order. When Config.Distributor is set,
// the /v2/query routes run through it instead of executing locally, so the
// same binary serves as coordinator or worker depending on configuration.
//
// Every route handler and metrics collector runs under panic recovery: a
// panic is logged with its stack, counted in wsn_http_panics_total, and
// answered with a structured 500 when no bytes have been written yet — one
// broken request never takes down the fleet member serving it.
//
// /readyz is the admission signal the distributed coordinator keys on: it
// answers 503 until the server is fully constructed and again after
// SetReady(false) during drain, so fleet membership changes are observed
// within one probe interval.
//
// # Observability
//
// Every server owns a telemetry.Registry scraped at GET /metrics in the
// Prometheus text format. The exported families:
//
//	wsn_http_requests_total{route,code}        counter    requests by route pattern and status
//	wsn_http_request_duration_seconds{route}   histogram  wall time per request
//	wsn_http_requests_in_flight                gauge      requests currently executing
//	wsn_http_errors_total{route,class}         counter    non-2xx responses, class 4xx or 5xx
//	wsn_http_panics_total                      counter    handler/collector panics recovered
//	wsn_query_total{kind}                      counter    v2 queries by query kind
//	wsn_query_tasks_total                      counter    plan tasks scheduled by v2 queries
//	wsn_worker_pool_capacity                   gauge      worker-token budget
//	wsn_worker_pool_in_use                     gauge      tokens currently held
//	wsn_worker_acquires_total                  counter    token-pool acquisitions
//	wsn_worker_wait_seconds                    histogram  wait for the first token
//	wsn_uptime_seconds                         gauge      seconds since server start
//	wsn_build_info{version,revision,goversion} gauge      constant 1, build identification
//
// plus the engine worker-pool metrics (wsn_engine_*), the contention cache
// (wsn_contention_cache_*), the simulator run counters (wsn_netsim_*), the
// network-lifetime counters (wsn_lifetime_*: runs, epochs, node deaths,
// simulated vs fast-forwarded seconds), the distributed-execution families
// (wsn_dist_*: queries, shard dispatches, retries, re-dispatches, straggler
// speculation, remote/local task counts, fleet membership) and the
// content-addressed result store (wsn_store_*: hits, misses, puts,
// evictions, disk hits/errors, resident bytes and entries); see the
// RegisterMetrics doc of each package. Those families read process-wide
// sources, so two servers in one process scrape one truth. The store
// counters are also served as JSON at GET /v2/store/stats.
//
// Request logging is structured (log/slog): one record per request with a
// monotone request id (also echoed in the X-Request-Id response header),
// method, path, matched route, status, byte count and duration.
//
// # Concurrency model
//
// The server owns a pool of worker tokens (Config.Workers, default NumCPU).
// Every request acquires at least one token before computing and greedily
// takes as many as are free, up to what it asked for; concurrent clients
// therefore share the machine instead of each oversubscribing it. Because
// every sweep in the repository is worker-count independent, the grant
// changes only latency, never results: the JSON a client receives is bit
// for bit what an in-process Evaluate/EvaluateBatch/RunCaseStudy call
// returns. Request contexts flow into every sweep, so a disconnected
// client cancels its computation end to end; cancellation is observed
// between evaluation points, batch elements and simulation replicas — an
// in-flight Monte-Carlo contention characterization (bounded by the wire
// cap on its superframes) runs to completion and is cached for the next
// request.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dense802154/internal/buildinfo"
	"dense802154/internal/contention"
	"dense802154/internal/dist"
	"dense802154/internal/engine"
	"dense802154/internal/lifetime"
	"dense802154/internal/netsim"
	"dense802154/internal/query"
	"dense802154/internal/store"
	"dense802154/internal/telemetry"
)

// Config parameterizes a Server.
type Config struct {
	// Workers is the server-wide worker-token budget shared by all
	// requests (0 ⇒ NumCPU).
	Workers int
	// CacheLimit bounds the process-wide contention cache to this many
	// Monte-Carlo characterizations with LRU eviction (0 = unbounded).
	// NewServer installs the bound unconditionally: the cache is process
	// state, so the most recently constructed server wins.
	CacheLimit int
	// RequestTimeout is the per-request computation deadline; requests
	// exceeding it are canceled (at the granularity the package doc
	// describes) and answered 503 (0 = no deadline).
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies (0 ⇒ 8 MiB).
	MaxBodyBytes int64
	// Logger receives one structured record per request (nil falls back
	// to Log, then to no logging).
	Logger *slog.Logger
	// Log is the legacy plain logger; when Logger is nil and Log is set,
	// requests are logged through a text slog handler on Log's writer.
	Log *log.Logger
	// Distributor, when set, executes /v2/query and /v2/query/stream plans
	// (a dist.Coordinator shards them across a worker fleet and merges the
	// results byte-identically to local execution). Nil runs every plan
	// locally.
	Distributor Distributor
	// QueryTimeout is the per-query execution deadline of the v2 query
	// routes (0 = none). Unlike RequestTimeout's 503, an exceeded query
	// deadline is answered with a structured 504; a query's own timeout_ms,
	// when tighter, wins.
	QueryTimeout time.Duration
	// Store, when set, is the content-addressed result store consulted by
	// the v2 routes: /v2/query and /v2/query/stream answer repeated
	// (untraced) queries from stored whole-query bytes in O(1), every
	// executed plan reuses and persists per-task results, and /v2/tasks
	// serves stored tasks without recomputing — which makes a worker fleet a
	// shared shard cache. Cached bytes equal freshly computed bytes always;
	// the store changes cost, never results.
	Store *store.Store
	// FaultExitAfterTasks, when positive, makes the process exit with
	// status 3 after serving this many /v2/tasks lines — a deterministic
	// mid-stream worker death for multi-process fault-injection tests.
	// Never set it on a server sharing a process with anything you care
	// about.
	FaultExitAfterTasks int
}

// Distributor executes a compiled plan on behalf of the v2 query routes —
// the seam where distributed execution plugs in. dist.Coordinator
// implements it; the contract is that of query.Plan.Execute: yield receives
// every TaskResult in plan order and the returned ResultSet encodes to the
// same bytes a local run produces.
type Distributor interface {
	Distribute(ctx context.Context, q query.Query, plan *query.Plan, localWorkers int, yield func(query.TaskResult) error) (*query.ResultSet, error)
}

// requestDurationBuckets spans the request range: sub-millisecond stats
// reads through multi-second Monte-Carlo sweeps.
var requestDurationBuckets = []float64{0.001, 0.01, 0.1, 1, 10, 60}

// workerWaitBuckets resolves queueing under load: instant grants through
// multi-second waits behind long sweeps.
var workerWaitBuckets = []float64{0.0001, 0.001, 0.01, 0.1, 1, 10}

// requestStats is the mutex-guarded request ledger behind /v1/stats. One
// lock covers every field, so a stats snapshot is a single consistent
// observation instead of a field-by-field read that can tear across
// concurrent requests (a request appearing in requests_total but not yet in
// responses_4xx, say).
type requestStats struct {
	mu       sync.Mutex
	requests uint64
	inflight int64
	resp4xx  uint64
	resp5xx  uint64
}

func (st *requestStats) begin() {
	st.mu.Lock()
	st.requests++
	st.inflight++
	st.mu.Unlock()
}

func (st *requestStats) end(status int) {
	st.mu.Lock()
	st.inflight--
	switch {
	case status >= 500:
		st.resp5xx++
	case status >= 400:
		st.resp4xx++
	}
	st.mu.Unlock()
}

// snapshot returns all fields under one lock acquisition.
func (st *requestStats) snapshot() (requests uint64, inflight int64, resp4xx, resp5xx uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.requests, st.inflight, st.resp4xx, st.resp5xx
}

func (st *requestStats) inFlight() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.inflight
}

// Server is the HTTP front-end. It implements http.Handler and is safe for
// concurrent use; construct it with NewServer.
type Server struct {
	cfg  Config
	pool *limiter
	mux  *http.ServeMux
	log  *slog.Logger

	started time.Time
	stats   requestStats
	reqSeq  atomic.Uint64
	ridBase string // request-id prefix, unique per server instance

	ready       atomic.Bool  // readiness gate behind GET /readyz
	tasksServed atomic.Int64 // /v2/tasks lines served (FaultExitAfterTasks)

	reg          *telemetry.Registry
	httpRequests *telemetry.CounterVec
	httpDuration *telemetry.HistogramVec
	httpInFlight *telemetry.Gauge
	httpErrors   *telemetry.CounterVec
	httpPanics   *telemetry.Counter
	queryKinds   *telemetry.CounterVec
	queryTasks   *telemetry.Counter
}

// NewServer builds the service with its routes, worker pool, cache bound
// and metrics registry installed.
func NewServer(cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	logger := cfg.Logger
	if logger == nil && cfg.Log != nil {
		logger = slog.New(slog.NewTextHandler(cfg.Log.Writer(), nil))
	}
	started := time.Now()
	s := &Server{
		cfg:     cfg,
		pool:    newLimiter(cfg.Workers),
		mux:     http.NewServeMux(),
		log:     logger,
		started: started,
		ridBase: strconv.FormatInt(started.UnixNano(), 36),
		reg:     telemetry.NewRegistry(),
	}
	contention.SetCacheLimit(cfg.CacheLimit)
	s.registerMetrics()

	s.handle("GET /healthz", s.handleHealthz)
	s.handle("GET /livez", s.handleLivez)
	s.handle("GET /readyz", s.handleReadyz)
	s.handle("GET /metrics", s.handleMetrics)
	s.handle("GET /v1/stats", s.handleStats)
	s.handle("POST /v1/evaluate", s.handleEvaluate)
	s.handle("POST /v1/batch", s.handleBatch)
	s.handle("POST /v1/casestudy", s.handleCaseStudy)
	s.handle("POST /v1/sweep/pathloss", s.handleSweepPathLoss)
	s.handle("POST /v1/sweep/thresholds", s.handleSweepThresholds)
	s.handle("POST /v1/sweep/payload", s.handleSweepPayload)
	s.handle("POST /v1/simulate", s.handleSimulate)
	s.handle("GET /v1/experiments", s.handleExperimentList)
	s.handle("POST /v1/experiments/{name}", s.handleExperimentRun)
	s.handle("GET /v1/scenarios", s.handleScenarioList)
	s.handle("GET /v1/scenarios/{name}", s.handleScenarioGolden)
	s.handle("POST /v1/scenarios/{name}", s.handleScenarioRun)
	s.handle("POST /v2/query", s.handleQuery)
	s.handle("POST /v2/query/stream", s.handleQueryStream)
	s.handle("POST /v2/tasks", s.handleTasks)
	s.handle("GET /v2/store/stats", s.handleStoreStats)
	s.ready.Store(true) // construction complete: worker pool and routes live
	return s
}

// SetReady flips the /readyz readiness gate. Servers construct ready;
// drain paths call SetReady(false) before shutdown so the distributed
// coordinator evicts the worker instead of dispatching into a dying
// process.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// registerMetrics wires the server-owned families plus the process-wide
// engine, contention-cache and simulator sources into this server's
// registry.
func (s *Server) registerMetrics() {
	r := s.reg
	s.httpRequests = r.CounterVec("wsn_http_requests_total", "HTTP requests by route pattern and status code.", "route", "code")
	s.httpDuration = r.HistogramVec("wsn_http_request_duration_seconds", "Request wall time by route pattern.", requestDurationBuckets, "route")
	s.httpInFlight = r.Gauge("wsn_http_requests_in_flight", "Requests currently executing.")
	s.httpErrors = r.CounterVec("wsn_http_errors_total", "Non-2xx responses by route pattern and class (4xx or 5xx).", "route", "class")
	s.httpPanics = r.Counter("wsn_http_panics_total", "Handler or collector panics recovered by the server.")
	s.queryKinds = r.CounterVec("wsn_query_total", "v2 queries accepted, by query kind.", "kind")
	s.queryTasks = r.Counter("wsn_query_tasks_total", "Plan tasks scheduled by accepted v2 queries.")

	r.GaugeFunc("wsn_worker_pool_capacity", "Worker-token budget shared by all requests.",
		func() float64 { return float64(s.pool.capacity) })
	r.GaugeFunc("wsn_worker_pool_in_use", "Worker tokens currently held by requests.",
		func() float64 { return float64(s.pool.inUse()) })
	r.RegisterCounter("wsn_worker_acquires_total", "Worker-token pool acquisitions.", &s.pool.acquires)
	r.RegisterHistogram("wsn_worker_wait_seconds", "Wait for the first worker token.", s.pool.waitHist)
	r.GaugeFunc("wsn_uptime_seconds", "Seconds since server start.",
		func() float64 { return time.Since(s.started).Seconds() })
	bi := buildinfo.Read()
	r.ConstGauge("wsn_build_info", "Build identification; value is constant 1.", 1,
		telemetry.Label{Name: "version", Value: bi.Version},
		telemetry.Label{Name: "revision", Value: bi.Revision},
		telemetry.Label{Name: "goversion", Value: bi.GoVersion})

	engine.RegisterMetrics(r)
	contention.RegisterMetrics(r)
	netsim.RegisterMetrics(r)
	lifetime.RegisterMetrics(r)
	dist.RegisterMetrics(r)
	store.RegisterMetrics(r)
}

// Metrics exposes the server's telemetry registry (tests and embedders
// scrape it without HTTP).
func (s *Server) Metrics() *telemetry.Registry { return s.reg }

// handle registers a route, stamping the pattern into the request's
// statusWriter so ServeHTTP-level metrics and logs see the matched route
// (http.Request.Pattern is only set on the handler's copy of the request).
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		if sw, ok := w.(*statusWriter); ok {
			sw.route = pattern
		}
		h(w, r)
	})
}

// statusWriter captures the response status, byte count and matched route
// for the metrics/logging epilogue. It forwards Flush so streaming handlers
// keep their per-line flushes.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	route  string
}

func (sw *statusWriter) WriteHeader(status int) {
	if sw.status == 0 {
		sw.status = status
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// Flush implements http.Flusher when the underlying writer does.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// ServeHTTP implements http.Handler: request id, body cap, per-request
// deadline, in-flight accounting, metrics and structured logging around the
// route handlers.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rid := s.ridBase + "-" + strconv.FormatUint(s.reqSeq.Add(1), 10)
	w.Header().Set("X-Request-Id", rid)

	s.stats.begin()
	s.httpInFlight.Add(1)
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()
	defer func() {
		status := sw.status
		if status == 0 {
			status = http.StatusOK // handler wrote nothing: net/http sends 200
		}
		elapsed := time.Since(start)
		route := sw.route
		if route == "" {
			route = "unmatched" // mux-level 404/405, before any registered handler
		}
		s.httpRequests.With(route, strconv.Itoa(status)).Inc()
		s.httpDuration.With(route).Observe(elapsed.Seconds())
		switch {
		case status >= 500:
			s.httpErrors.With(route, "5xx").Inc()
		case status >= 400:
			s.httpErrors.With(route, "4xx").Inc()
		}
		s.httpInFlight.Add(-1)
		s.stats.end(status)
		if s.log != nil {
			s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("id", rid),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", status),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("duration", elapsed.Round(time.Microsecond)))
		}
	}()

	// Registered after the metrics/logging defer above, so it runs first
	// (LIFO): the recovery writes the 500, then the epilogue counts it.
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if rec == http.ErrAbortHandler { // deliberate abort: not our panic
			panic(rec)
		}
		s.httpPanics.Inc()
		if s.log != nil {
			s.log.LogAttrs(r.Context(), slog.LevelError, "panic recovered",
				slog.String("id", rid),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Any("panic", rec),
				slog.String("stack", string(debug.Stack())))
		}
		if sw.status == 0 {
			writeError(sw, http.StatusInternalServerError, "internal error", "")
		}
	}()

	r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
	if s.cfg.RequestTimeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	s.mux.ServeHTTP(sw, r)
}

// statsResponse is the /v1/stats body. The request block is one atomic
// snapshot of the requestStats ledger; the worker block reads the limiter's
// own counters.
type statsResponse struct {
	UptimeSeconds Float `json:"uptime_seconds"`

	Requests     uint64 `json:"requests_total"`
	InFlight     int64  `json:"requests_in_flight"`
	Responses4xx uint64 `json:"responses_4xx_total"`
	Responses5xx uint64 `json:"responses_5xx_total"`

	WorkerBudget     int    `json:"worker_budget"`
	WorkersBusy      int    `json:"workers_busy"`
	WorkerAcquires   uint64 `json:"worker_acquires_total"`
	WorkerWaitTotalS Float  `json:"worker_wait_seconds_total"`

	Cache cacheStatsWire `json:"contention_cache"`
}

// cacheStatsWire is the JSON form of engine.CacheStats.
type cacheStatsWire struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Limit     int    `json:"limit"`
	HitRate   Float  `json:"hit_rate"`
}

// healthzResponse is the /healthz body: liveness plus build identification.
type healthzResponse struct {
	Status        string `json:"status"`
	UptimeSeconds Float  `json:"uptime_seconds"`
	Version       string `json:"version"`
	Revision      string `json:"revision,omitempty"`
	GoVersion     string `json:"goversion"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	bi := buildinfo.Read()
	writeJSON(w, http.StatusOK, healthzResponse{
		Status:        "ok",
		UptimeSeconds: Float(time.Since(s.started).Seconds()),
		Version:       bi.Version,
		Revision:      bi.Revision,
		GoVersion:     bi.GoVersion,
	})
}

// handleLivez is the bare liveness probe: the process accepts requests.
// Distinct from /readyz — a draining server is still live but not ready.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the admission probe the distributed coordinator keys on:
// 200 only while the server is fully constructed and not draining.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "not-ready"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Render into a buffer first: a panicking GaugeFunc collector then
	// fires before any byte or header is written, so the recovery layer
	// can still answer a structured 500.
	var buf bytes.Buffer
	if err := s.reg.WritePrometheus(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error(), "")
		return
	}
	w.Header().Set("Content-Type", telemetry.ContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	cs := contention.CacheStats()
	requests, inflight, resp4xx, resp5xx := s.stats.snapshot()
	writeJSON(w, http.StatusOK, statsResponse{
		UptimeSeconds:    Float(time.Since(s.started).Seconds()),
		Requests:         requests,
		InFlight:         inflight,
		Responses4xx:     resp4xx,
		Responses5xx:     resp5xx,
		WorkerBudget:     s.pool.capacity,
		WorkersBusy:      s.pool.inUse(),
		WorkerAcquires:   s.pool.acquires.Value(),
		WorkerWaitTotalS: Float(s.pool.waitHist.Sum()),
		Cache: cacheStatsWire{
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Evictions: cs.Evictions,
			Entries:   cs.Entries,
			Limit:     cs.Limit,
			HitRate:   Float(cs.HitRate()),
		},
	})
}

// errorBody is the envelope of every non-2xx JSON response.
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Status  int    `json:"status"`
	Message string `json:"message"`
	Field   string `json:"field,omitempty"`
}

// writeError renders a structured error response.
func writeError(w http.ResponseWriter, status int, message, field string) {
	writeJSON(w, status, errorBody{Error: errorDetail{Status: status, Message: message, Field: field}})
}

// writeValidationError renders a codec *Error as a 400.
func writeValidationError(w http.ResponseWriter, err *Error) {
	writeError(w, http.StatusBadRequest, err.Message, err.Field)
}

// writeCtxError maps a context failure to 503 (deadline) or 499-style 503
// (client gone; the connection is usually dead anyway).
func writeCtxError(w http.ResponseWriter, err error) {
	writeError(w, http.StatusServiceUnavailable, err.Error(), "")
}

// writeJSON renders v with the JSON content type.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// decodeJSON parses the request body into dst with strict field checking.
// An empty body leaves dst at its zero value (every request type has full
// defaults). Malformed payloads, unknown fields and trailing garbage are
// 400s; an oversized body is a 413.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		if errors.Is(err, io.EOF) {
			return true // empty body: all defaults
		}
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds "+strconv.FormatInt(maxErr.Limit, 10)+" bytes", "")
			return false
		}
		writeError(w, http.StatusBadRequest, "malformed request: "+err.Error(), "")
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after JSON body", "")
		return false
	}
	return true
}
