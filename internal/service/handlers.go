package service

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"

	"dense802154/internal/channel"
	"dense802154/internal/core"
	"dense802154/internal/engine"
	"dense802154/internal/experiments"
	"dense802154/internal/netsim"
	"dense802154/internal/stats"
)

// maxBatchParams caps one /v1/batch request; larger workloads page or
// stream across several requests.
const maxBatchParams = 10000

// acquireWorkers is the request prologue: block (under the request context)
// for a share of the server worker pool.
func (s *Server) acquireWorkers(w http.ResponseWriter, r *http.Request, want int) (int, func(), bool) {
	got, release, err := s.pool.acquire(r.Context(), want)
	if err != nil {
		writeCtxError(w, err)
		return 0, nil, false
	}
	return got, release, true
}

// ---- POST /v1/evaluate ----

type evaluateRequest struct {
	Params ParamsWire `json:"params"`
}

type evaluateResponse struct {
	Metrics MetricsWire `json:"metrics"`
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req evaluateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	got, release, ok := s.acquireWorkers(w, r, req.Params.Workers)
	if !ok {
		return
	}
	defer release()
	p, aerr := req.Params.Params(got, got)
	if aerr != nil {
		writeValidationError(w, aerr)
		return
	}
	// Route through the batch path so the request context is honored (an
	// expired deadline or a gone client is observed before work starts).
	ms, err := core.EvaluateBatch(r.Context(), got, []core.Params{p})
	if err != nil {
		if r.Context().Err() != nil {
			writeCtxError(w, r.Context().Err())
			return
		}
		writeError(w, http.StatusBadRequest, err.Error(), "params")
		return
	}
	writeJSON(w, http.StatusOK, evaluateResponse{Metrics: metricsWire(ms[0])})
}

// ---- POST /v1/batch ----

type batchRequest struct {
	Params []ParamsWire `json:"params"`
	// Stream switches the response to NDJSON, one line per result as it
	// completes (also selectable with the ?stream=1 query parameter).
	Stream bool `json:"stream,omitempty"`
}

type batchResponse struct {
	Metrics []MetricsWire `json:"metrics"`
}

// batchLine is one NDJSON streaming record. Result lines carry index (the
// Params element) plus metrics or error, in completion order; the final
// summary line carries done=true and the count, with no index.
type batchLine struct {
	Index   *int         `json:"index,omitempty"`
	Metrics *MetricsWire `json:"metrics,omitempty"`
	Error   string       `json:"error,omitempty"`
	Done    bool         `json:"done,omitempty"`
	Count   int          `json:"count,omitempty"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Params) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch: params must hold at least one element", "params")
		return
	}
	if len(req.Params) > maxBatchParams {
		writeError(w, http.StatusBadRequest, "batch too large", "params")
		return
	}
	want := 0
	for _, pw := range req.Params {
		if pw.Workers > want {
			want = pw.Workers
		}
	}
	got, release, ok := s.acquireWorkers(w, r, want)
	if !ok {
		return
	}
	defer release()

	ps := make([]core.Params, len(req.Params))
	for i, pw := range req.Params {
		p, aerr := pw.Params(got, 1)
		if aerr != nil {
			aerr.Field = "params[" + strconv.Itoa(i) + "]." + aerr.Field
			writeValidationError(w, aerr)
			return
		}
		ps[i] = p
	}

	stream := req.Stream
	if v := r.URL.Query().Get("stream"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "stream must be a boolean", "stream")
			return
		}
		stream = b
	}
	if stream {
		s.streamBatch(r.Context(), w, ps, got)
		return
	}

	ms, err := core.EvaluateBatch(r.Context(), got, ps)
	if err != nil {
		if r.Context().Err() != nil {
			writeCtxError(w, r.Context().Err())
			return
		}
		writeError(w, http.StatusBadRequest, err.Error(), "params")
		return
	}
	out := make([]MetricsWire, len(ms))
	for i, m := range ms {
		out[i] = metricsWire(m)
	}
	writeJSON(w, http.StatusOK, batchResponse{Metrics: out})
}

// streamBatch emits NDJSON, one batchLine per element as its evaluation
// completes; a summary line with done=true closes the stream. Each line is
// flushed so clients see results while the batch is still computing.
func (s *Server) streamBatch(ctx context.Context, w http.ResponseWriter, ps []core.Params, workers int) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	lines := make(chan batchLine, workers)
	go func() {
		defer close(lines)
		// Evaluation errors travel as per-line records, so the Map
		// callback only fails on cancellation.
		_ = engine.Map(ctx, workers, len(ps), func(i int) error {
			m, err := core.Evaluate(ps[i])
			idx := i
			ln := batchLine{Index: &idx}
			if err != nil {
				ln.Error = err.Error()
			} else {
				mw := metricsWire(m)
				ln.Metrics = &mw
			}
			select {
			case lines <- ln:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		})
	}()

	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	count := 0
	for ln := range lines {
		if err := enc.Encode(ln); err != nil {
			return // client went away; Map sees ctx cancellation
		}
		count++
		if flusher != nil {
			flusher.Flush()
		}
	}
	if ctx.Err() == nil {
		_ = enc.Encode(batchLine{Done: true, Count: count})
	}
}

// ---- POST /v1/casestudy ----

type caseStudyRequest struct {
	Params ParamsWire           `json:"params"`
	Config *CaseStudyConfigWire `json:"config,omitempty"`
}

type caseStudyResponse struct {
	Result CaseStudyResultWire `json:"result"`
}

func (s *Server) handleCaseStudy(w http.ResponseWriter, r *http.Request) {
	var req caseStudyRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	cfg, aerr := req.Config.Config()
	if aerr != nil {
		writeValidationError(w, aerr)
		return
	}
	got, release, ok := s.acquireWorkers(w, r, req.Params.Workers)
	if !ok {
		return
	}
	defer release()
	p, aerr := req.Params.Params(got, 1)
	if aerr != nil {
		writeValidationError(w, aerr)
		return
	}
	res, err := core.RunCaseStudyCtx(r.Context(), p, cfg)
	if err != nil {
		if r.Context().Err() != nil {
			writeCtxError(w, r.Context().Err())
			return
		}
		writeError(w, http.StatusBadRequest, err.Error(), "")
		return
	}
	writeJSON(w, http.StatusOK, caseStudyResponse{Result: caseStudyResultWire(res)})
}

// ---- POST /v1/sweep/{pathloss,thresholds,payload} ----

type pathLossSweepRequest struct {
	Params ParamsWire `json:"params"`
	// Losses is the path-loss grid in dB (default: 55..95 in 0.5 dB
	// steps, the case-study population).
	Losses []Float `json:"losses,omitempty"`
}

type energyCurveWire struct {
	LevelIndex int     `json:"level_index"`
	LevelDBm   Float   `json:"level_dbm"`
	LossDB     []Float `json:"loss_db"`
	EnergyJ    []Float `json:"energy_j_per_bit"`
}

type pathLossSweepResponse struct {
	Curves []energyCurveWire `json:"curves"`
}

type thresholdWire struct {
	FromLevel int   `json:"from_level"`
	ToLevel   int   `json:"to_level"`
	FromDBm   Float `json:"from_dbm"`
	ToDBm     Float `json:"to_dbm"`
	LossDB    Float `json:"loss_db"`
}

type thresholdsResponse struct {
	Thresholds []thresholdWire `json:"thresholds"`
}

type payloadSweepRequest struct {
	Params ParamsWire `json:"params"`
	// Sizes is the payload grid in bytes (default: the Fig. 8 grid,
	// 5..123).
	Sizes []int `json:"sizes,omitempty"`
}

type payloadSweepResponse struct {
	SizesBytes []int   `json:"sizes_bytes"`
	EnergyJ    []Float `json:"energy_j_per_bit"`
}

// defaultLossGrid is the case-study population grid, derived from the same
// scenario constants RunCaseStudy integrates over so the service default
// cannot drift from the in-process one.
func defaultLossGrid() []float64 {
	cfg := core.DefaultCaseStudy()
	return channel.LossGrid(cfg.MinLossDB, cfg.MaxLossDB, cfg.LossGridPoints)
}

// defaultPayloadSizes is the Fig. 8 payload grid, shared with the fig8
// experiment driver.
func defaultPayloadSizes() []int { return experiments.Fig8Sizes() }

// sweepGrid validates the request grid or falls back to the default.
func sweepGrid(losses []Float) ([]float64, *Error) {
	if len(losses) == 0 {
		return defaultLossGrid(), nil
	}
	if len(losses) > 100000 {
		return nil, errf("losses", "grid too large (%d points)", len(losses))
	}
	return float64s(losses), nil
}

func (s *Server) handleSweepPathLoss(w http.ResponseWriter, r *http.Request) {
	var req pathLossSweepRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	losses, aerr := sweepGrid(req.Losses)
	if aerr != nil {
		writeValidationError(w, aerr)
		return
	}
	got, release, ok := s.acquireWorkers(w, r, req.Params.Workers)
	if !ok {
		return
	}
	defer release()
	p, aerr := req.Params.Params(got, 1)
	if aerr != nil {
		writeValidationError(w, aerr)
		return
	}
	curves, err := core.EnergyVsPathLossCtx(r.Context(), p, losses)
	if err != nil {
		if r.Context().Err() != nil {
			writeCtxError(w, r.Context().Err())
			return
		}
		writeError(w, http.StatusBadRequest, err.Error(), "")
		return
	}
	out := make([]energyCurveWire, len(curves))
	for i, c := range curves {
		out[i] = energyCurveWire{
			LevelIndex: c.LevelIndex,
			LevelDBm:   Float(c.LevelDBm),
			LossDB:     floats(c.LossDB),
			EnergyJ:    floats(c.EnergyJ),
		}
	}
	writeJSON(w, http.StatusOK, pathLossSweepResponse{Curves: out})
}

func (s *Server) handleSweepThresholds(w http.ResponseWriter, r *http.Request) {
	var req pathLossSweepRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	losses, aerr := sweepGrid(req.Losses)
	if aerr != nil {
		writeValidationError(w, aerr)
		return
	}
	got, release, ok := s.acquireWorkers(w, r, req.Params.Workers)
	if !ok {
		return
	}
	defer release()
	p, aerr := req.Params.Params(got, 1)
	if aerr != nil {
		writeValidationError(w, aerr)
		return
	}
	ths, err := core.ThresholdsCtx(r.Context(), p, losses)
	if err != nil {
		if r.Context().Err() != nil {
			writeCtxError(w, r.Context().Err())
			return
		}
		writeError(w, http.StatusBadRequest, err.Error(), "")
		return
	}
	out := make([]thresholdWire, len(ths))
	for i, t := range ths {
		out[i] = thresholdWire{
			FromLevel: t.FromLevel,
			ToLevel:   t.ToLevel,
			FromDBm:   Float(t.FromDBm),
			ToDBm:     Float(t.ToDBm),
			LossDB:    Float(t.LossDB),
		}
	}
	writeJSON(w, http.StatusOK, thresholdsResponse{Thresholds: out})
}

func (s *Server) handleSweepPayload(w http.ResponseWriter, r *http.Request) {
	var req payloadSweepRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	sizes := req.Sizes
	if len(sizes) == 0 {
		sizes = defaultPayloadSizes()
	}
	if len(sizes) > 100000 {
		writeError(w, http.StatusBadRequest, "grid too large", "sizes")
		return
	}
	got, release, ok := s.acquireWorkers(w, r, req.Params.Workers)
	if !ok {
		return
	}
	defer release()
	p, aerr := req.Params.Params(got, 1)
	if aerr != nil {
		writeValidationError(w, aerr)
		return
	}
	series, err := core.EnergyVsPayloadCtx(r.Context(), p, sizes)
	if err != nil {
		if r.Context().Err() != nil {
			writeCtxError(w, r.Context().Err())
			return
		}
		writeError(w, http.StatusBadRequest, err.Error(), "")
		return
	}
	writeJSON(w, http.StatusOK, payloadSweepResponse{
		SizesBytes: sizes,
		EnergyJ:    floats(series.Y),
	})
}

// ---- POST /v1/simulate ----

type simulateRequest struct {
	Config *SimConfigWire `json:"config,omitempty"`
	// Replicas is the number of independent replications merged into the
	// confidence statistics (default 1).
	Replicas int `json:"replicas,omitempty"`
	// Workers is the requested parallelism (clamped to the server pool).
	Workers int `json:"workers,omitempty"`
}

type simulateResponse struct {
	Replicas int             `json:"replicas"`
	Seeds    []int64         `json:"seeds"`
	Results  []SimResultWire `json:"results"`

	AvgPowerUW    ReplicaStatWire `json:"avg_power_uw"`
	DeliveryRatio ReplicaStatWire `json:"delivery_ratio"`
	PrFail        ReplicaStatWire `json:"pr_fail"`
	PrCF          ReplicaStatWire `json:"pr_cf"`
	PrCol         ReplicaStatWire `json:"pr_col"`
	NCCA          ReplicaStatWire `json:"ncca"`
	TcontMS       ReplicaStatWire `json:"tcont_ms"`
	MeanDelayMS   ReplicaStatWire `json:"mean_delay_ms"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req simulateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	cfg, aerr := req.Config.Config()
	if aerr != nil {
		writeValidationError(w, aerr)
		return
	}
	if req.Replicas < 0 || req.Replicas > 4096 {
		writeError(w, http.StatusBadRequest, "replicas outside 0..4096", "replicas")
		return
	}
	n := req.Replicas
	if n < 1 {
		n = 1
	}
	got, release, ok := s.acquireWorkers(w, r, req.Workers)
	if !ok {
		return
	}
	defer release()

	rs, err := netsim.RunReplicas(r.Context(), cfg, n, got)
	if err != nil {
		writeCtxError(w, err)
		return
	}
	resp := simulateResponse{
		Replicas:      rs.Replicas,
		Seeds:         rs.Seeds,
		Results:       make([]SimResultWire, len(rs.Results)),
		AvgPowerUW:    replicaStatWire(rs.AvgPowerUW),
		DeliveryRatio: replicaStatWire(rs.DeliveryRatio),
		PrFail:        replicaStatWire(rs.PrFail),
		PrCF:          replicaStatWire(rs.PrCF),
		PrCol:         replicaStatWire(rs.PrCol),
		NCCA:          replicaStatWire(rs.NCCA),
		TcontMS:       replicaStatWire(rs.TcontMS),
		MeanDelayMS:   replicaStatWire(rs.MeanDelayMS),
	}
	for i, res := range rs.Results {
		resp.Results[i] = simResultWire(rs.Seeds[i], res)
	}
	writeJSON(w, http.StatusOK, resp)
}

// ---- GET /v1/experiments, POST /v1/experiments/{name} ----

type experimentInfo struct {
	Name        string `json:"name"`
	Title       string `json:"title"`
	Description string `json:"description"`
}

type experimentListResponse struct {
	Experiments []experimentInfo `json:"experiments"`
}

type experimentRunRequest struct {
	// Quick shrinks grids and Monte-Carlo runs as in ExperimentOpts.
	Quick bool `json:"quick,omitempty"`
	// Seed drives all randomized components (default 2005).
	Seed *int64 `json:"seed,omitempty"`
	// Workers is the requested parallelism (clamped to the server pool).
	Workers int `json:"workers,omitempty"`
}

type experimentRunResponse struct {
	Name   string         `json:"name"`
	Tables []*stats.Table `json:"tables"`
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	all := experiments.All()
	resp := experimentListResponse{Experiments: make([]experimentInfo, len(all))}
	for i, e := range all {
		resp.Experiments[i] = experimentInfo{Name: e.Name, Title: e.Title, Description: e.Description}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExperimentRun(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	exp, ok := experiments.ByName(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown experiment "+name, "name")
		return
	}
	var req experimentRunRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	got, release, okW := s.acquireWorkers(w, r, req.Workers)
	if !okW {
		return
	}
	defer release()

	opt := experiments.DefaultOptions()
	opt.Quick = req.Quick
	if req.Seed != nil {
		opt.Seed = *req.Seed
	}
	opt.Workers = got
	opt.Context = r.Context()
	tables, err := exp.Run(opt)
	if err != nil {
		if r.Context().Err() != nil {
			writeCtxError(w, r.Context().Err())
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error(), "")
		return
	}
	writeJSON(w, http.StatusOK, experimentRunResponse{Name: name, Tables: tables})
}
