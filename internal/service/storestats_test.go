package service

import (
	"encoding/json"
	"net/http"
	"testing"
)

// getStoreStats fetches and decodes GET /v2/store/stats.
func getStoreStats(t *testing.T, url string) storeStatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/v2/store/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("store stats status %d", resp.StatusCode)
	}
	var st storeStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStoreStatsEndpoint pins GET /v2/store/stats against the wsn_store_*
// scrape: the JSON counters equal the Prometheus samples read back to back
// (both views of the same process-wide sources), and the memory block
// matches the store's own occupancy.
func TestStoreStatsEndpoint(t *testing.T) {
	ts, st := newStoreServer(t, Config{Workers: 2})

	// A cold query populates the store; an identical warm one hits it.
	for i := 0; i < 2; i++ {
		if status, body := postJSON(t, ts.URL+"/v2/query", storeGridBody); status != http.StatusOK {
			t.Fatalf("query %d: %d: %s", i, status, body)
		}
	}

	got := getStoreStats(t, ts.URL)
	if !got.Configured {
		t.Fatal("store-backed server reports configured=false")
	}
	if got.Puts == 0 {
		t.Error("puts_total = 0 after a cold query")
	}
	if got.Hits == 0 {
		t.Error("hits_total = 0 after a repeated query")
	}
	for name, want := range map[string]uint64{
		"wsn_store_hits_total":        got.Hits,
		"wsn_store_misses_total":      got.Misses,
		"wsn_store_puts_total":        got.Puts,
		"wsn_store_evictions_total":   got.Evictions,
		"wsn_store_disk_hits_total":   got.DiskHits,
		"wsn_store_disk_errors_total": got.DiskErrors,
	} {
		if v := metricValue(t, ts.URL, name); uint64(v) != want {
			t.Errorf("%s = %v in scrape, %d in JSON", name, v, want)
		}
	}
	if got.Memory == nil {
		t.Fatal("no memory block on a store-backed server")
	}
	stats := st.Stats()
	if got.Memory.Entries != stats.Entries || got.Memory.Bytes != stats.Bytes {
		t.Errorf("memory block %+v, store reports %+v", *got.Memory, stats)
	}
	if got.Memory.Entries == 0 || got.Memory.Bytes == 0 {
		t.Errorf("empty memory tier after a stored query: %+v", *got.Memory)
	}
}

// TestStoreStatsWithoutStore checks the endpoint degrades gracefully on a
// server built without a result store: configured=false and no memory block,
// while the process-wide counters still render.
func TestStoreStatsWithoutStore(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1})
	got := getStoreStats(t, ts.URL)
	if got.Configured {
		t.Fatal("storeless server reports configured=true")
	}
	if got.Memory != nil {
		t.Fatalf("storeless server carries a memory block: %+v", *got.Memory)
	}
}
