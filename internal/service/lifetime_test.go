package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dense802154/internal/query"
)

const lifetimeQueryBody = `{"kind":"lifetime","sim":{"nodes":6,"superframes":2,"seed":9},` +
	`"lifetime":{"capacity_j":0.3,"epoch_superframes":4,"max_epochs":64},"replicas":3}`

// TestLifetimeQueryHTTPMatchesInProcess pins the transport contract for the
// lifetime kind: the /v2/query body is byte-identical to an in-process Run's
// Encode, and it carries the lifetime summary block.
func TestLifetimeQueryHTTPMatchesInProcess(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{Workers: 2}))
	defer ts.Close()

	status, httpBytes := postJSON(t, ts.URL+"/v2/query", lifetimeQueryBody)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, httpBytes)
	}
	if !bytes.Contains(httpBytes, []byte(`"lifetime_summary"`)) {
		t.Fatalf("response carries no lifetime summary: %s", httpBytes)
	}

	var q query.Query
	if err := json.Unmarshal([]byte(lifetimeQueryBody), &q); err != nil {
		t.Fatal(err)
	}
	rs, err := query.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	inproc, err := rs.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(httpBytes, inproc) {
		t.Fatalf("HTTP body deviates from in-process Encode:\n http: %s\n proc: %s", httpBytes, inproc)
	}
}

// TestLifetimeQueryStream checks the NDJSON form: one line per replica equal
// to the non-streaming results[i] bytes, and the done line carrying the same
// lifetime summary subtree.
func TestLifetimeQueryStream(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{Workers: 2}))
	defer ts.Close()

	status, plain := postJSON(t, ts.URL+"/v2/query", lifetimeQueryBody)
	if status != http.StatusOK {
		t.Fatalf("plain status = %d: %s", status, plain)
	}
	var rsWire struct {
		Results         []json.RawMessage `json:"results"`
		LifetimeSummary json.RawMessage   `json:"lifetime_summary"`
	}
	if err := json.Unmarshal(plain, &rsWire); err != nil {
		t.Fatal(err)
	}
	if len(rsWire.LifetimeSummary) == 0 {
		t.Fatal("non-streaming body carries no lifetime_summary")
	}

	resp, err := http.Post(ts.URL+"/v2/query/stream", "application/json", strings.NewReader(lifetimeQueryBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	var lines [][]byte
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<22), 1<<22)
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(rsWire.Results)+1 {
		t.Fatalf("stream has %d lines for %d results", len(lines), len(rsWire.Results))
	}
	for i, raw := range rsWire.Results {
		if !bytes.Equal(lines[i], []byte(raw)) {
			t.Fatalf("stream line %d deviates from results[%d]:\n line: %s\n body: %s", i, i, lines[i], raw)
		}
	}
	var done struct {
		Done            bool            `json:"done"`
		Count           int             `json:"count"`
		LifetimeSummary json.RawMessage `json:"lifetime_summary"`
	}
	if err := json.Unmarshal(lines[len(lines)-1], &done); err != nil {
		t.Fatal(err)
	}
	if !done.Done || done.Count != len(rsWire.Results) {
		t.Fatalf("done line = %s", lines[len(lines)-1])
	}
	if !bytes.Equal(done.LifetimeSummary, rsWire.LifetimeSummary) {
		t.Fatalf("lifetime summary deviates:\n stream: %s\n body:   %s", done.LifetimeSummary, rsWire.LifetimeSummary)
	}
}

// TestLifetimeQueryValidation400s checks hostile lifetime specs answer as
// structured field-scoped 400s over HTTP.
func TestLifetimeQueryValidation400s(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{Workers: 1}))
	defer ts.Close()

	cases := []struct {
		body  string
		field string
	}{
		{`{"kind":"lifetime","lifetime":{"capacity_j":"NaN"}}`, "lifetime.capacity_j"},
		{`{"kind":"lifetime","lifetime":{"threshold_j":-0.5}}`, "lifetime.threshold_j"},
		{`{"kind":"lifetime","lifetime":{"supply":"fusion"}}`, "lifetime.supply"},
		{`{"kind":"simulate","lifetime":{"capacity_j":1}}`, "lifetime"},
	}
	for _, tc := range cases {
		status, body := postJSON(t, ts.URL+"/v2/query", tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.body, status)
			continue
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil {
			t.Errorf("%s: unstructured error %s", tc.body, body)
			continue
		}
		if !strings.HasPrefix(eb.Error.Field, tc.field) {
			t.Errorf("%s: error field %q, want prefix %q", tc.body, eb.Error.Field, tc.field)
		}
	}
}
