package service

import (
	"context"
	"time"

	"dense802154/internal/engine"
	"dense802154/internal/telemetry"
)

// limiter is the server-wide worker-token pool: every request that fans out
// onto engine goroutines first acquires tokens here, so N concurrent
// clients share one CPU budget instead of each spawning NumCPU workers.
// Because every sweep in the repository is worker-count independent, a
// request granted fewer workers than it asked for computes the exact same
// bytes, only slower.
type limiter struct {
	capacity int
	tokens   chan struct{}

	// acquires counts successful grants; waitHist observes the wait for
	// the first token (the queueing delay a request experiences under
	// load). Both are read by /v1/stats and the metrics registry.
	acquires telemetry.Counter
	waitHist *telemetry.Histogram
}

// newLimiter builds a pool of capacity tokens (≤ 0 selects NumCPU, via the
// shared engine.ResolveWorkers rule).
func newLimiter(capacity int) *limiter {
	capacity = engine.ResolveWorkers(capacity)
	l := &limiter{
		capacity: capacity,
		tokens:   make(chan struct{}, capacity),
		waitHist: telemetry.NewHistogram(workerWaitBuckets...),
	}
	for i := 0; i < capacity; i++ {
		l.tokens <- struct{}{}
	}
	return l
}

// acquire blocks until at least one token is free, then greedily takes up
// to want tokens (want ≤ 0 asks for the whole pool). It returns the number
// granted and a release function; a canceled ctx aborts the wait with
// ctx.Err(). Requests therefore queue under load instead of oversubscribing
// the CPUs, and a lone request still gets the whole machine.
func (l *limiter) acquire(ctx context.Context, want int) (int, func(), error) {
	if want <= 0 || want > l.capacity {
		want = l.capacity
	}
	// An already-dead context never gets a grant: when both a token and
	// ctx.Done are ready, select would pick at random.
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	waitStart := time.Now()
	select {
	case <-l.tokens:
	case <-ctx.Done():
		return 0, nil, ctx.Err()
	}
	l.waitHist.Observe(time.Since(waitStart).Seconds())
	l.acquires.Inc()
	got := 1
greedy:
	for got < want {
		select {
		case <-l.tokens:
			got++
		default:
			break greedy
		}
	}
	release := func() {
		for i := 0; i < got; i++ {
			l.tokens <- struct{}{}
		}
	}
	return got, release, nil
}

// inUse reports how many tokens are currently held by requests.
func (l *limiter) inUse() int { return l.capacity - len(l.tokens) }
