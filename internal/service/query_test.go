package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"dense802154/internal/query"
)

// tree decodes JSON into the generic form for structural comparison.
func tree(t *testing.T, b []byte) any {
	t.Helper()
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatalf("bad JSON %q: %v", b, err)
	}
	return v
}

// dig walks a decoded JSON tree by object keys and array indices.
func dig(t *testing.T, v any, path ...any) any {
	t.Helper()
	for _, p := range path {
		switch k := p.(type) {
		case string:
			m, ok := v.(map[string]any)
			if !ok {
				t.Fatalf("dig %v: not an object at %v", path, p)
			}
			v = m[k]
		case int:
			a, ok := v.([]any)
			if !ok || k >= len(a) {
				t.Fatalf("dig %v: not an array at %v", path, p)
			}
			v = a[k]
		}
	}
	return v
}

// TestQueryV2MatchesV1 proves the redesign is observationally equivalent:
// for every query kind, the v2 /query response carries the same values the
// corresponding frozen v1 endpoint returns for the same inputs.
func TestQueryV2MatchesV1(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{Workers: 2}))
	defer ts.Close()

	const p = `{"contention":{"superframes":8,"seed":3}}`
	const pQuick = `{"contention":{"superframes":8,"seed":3},"payload_bytes":60}`
	cases := []struct {
		kind    string
		v1Path  string
		v1Body  string
		v2Body  string
		v1Field []any // path to the comparable subtree in the v1 response
		v2Field []any // path in the v2 response
	}{
		{
			kind: "evaluate", v1Path: "/v1/evaluate",
			v1Body:  `{"params":` + p + `}`,
			v2Body:  `{"kind":"evaluate","params":` + p + `}`,
			v1Field: []any{"metrics"},
			v2Field: []any{"results", 0, "metrics"},
		},
		{
			kind: "batch", v1Path: "/v1/batch",
			v1Body:  `{"params":[` + p + `,` + pQuick + `]}`,
			v2Body:  `{"kind":"batch","batch":[` + p + `,` + pQuick + `]}`,
			v1Field: []any{"metrics", 1},
			v2Field: []any{"results", 1, "metrics"},
		},
		{
			kind: "casestudy", v1Path: "/v1/casestudy",
			v1Body:  `{"params":` + p + `,"config":{"loss_grid_points":11}}`,
			v2Body:  `{"kind":"casestudy","params":` + p + `,"config":{"loss_grid_points":11}}`,
			v1Field: []any{"result"},
			v2Field: []any{"results", 0, "casestudy"},
		},
		{
			kind: "pathloss-sweep", v1Path: "/v1/sweep/pathloss",
			v1Body:  `{"params":` + p + `,"losses":[60,75,90]}`,
			v2Body:  `{"kind":"pathloss-sweep","params":` + p + `,"losses":{"values":[60,75,90]}}`,
			v1Field: []any{"curves"},
			v2Field: []any{"results", 0, "curves"},
		},
		{
			kind: "thresholds", v1Path: "/v1/sweep/thresholds",
			v1Body:  `{"params":` + p + `,"losses":[60,62,64,66,68,70,72,74,76,78,80]}`,
			v2Body:  `{"kind":"thresholds","params":` + p + `,"losses":{"from":60,"to":80,"points":11}}`,
			v1Field: []any{"thresholds"},
			v2Field: []any{"results", 0, "thresholds"},
		},
		{
			kind: "payload-sweep", v1Path: "/v1/sweep/payload",
			v1Body:  `{"params":` + p + `,"sizes":[20,60,120]}`,
			v2Body:  `{"kind":"payload-sweep","params":` + p + `,"payloads":{"values":[20,60,120]}}`,
			v1Field: []any{},
			v2Field: []any{"results", 0, "payload"},
		},
		{
			kind: "simulate", v1Path: "/v1/simulate",
			v1Body:  `{"config":{"nodes":10,"superframes":4,"seed":7}}`,
			v2Body:  `{"kind":"simulate","sim":{"nodes":10,"superframes":4,"seed":7}}`,
			v1Field: []any{"results", 0},
			v2Field: []any{"results", 0, "sim"},
		},
		{
			kind: "replicas", v1Path: "/v1/simulate",
			v1Body:  `{"config":{"nodes":10,"superframes":4},"replicas":3}`,
			v2Body:  `{"kind":"replicas","sim":{"nodes":10,"superframes":4},"replicas":3}`,
			v1Field: []any{"results", 2},
			v2Field: []any{"results", 2, "sim"},
		},
		{
			kind: "scenario", v1Path: "/v1/scenarios/sparse-idle",
			v1Body:  `{"diff":true}`,
			v2Body:  `{"kind":"scenario","scenario":"sparse-idle","diff":true}`,
			v1Field: []any{},
			v2Field: []any{"results", 0, "scenario"},
		},
		{
			kind: "experiment", v1Path: "/v1/experiments/fig8",
			v1Body:  `{"quick":true}`,
			v2Body:  `{"kind":"experiment","experiment":"fig8","quick":true}`,
			v1Field: []any{"tables"},
			v2Field: []any{"results", 0, "experiment", "tables"},
		},
	}

	for _, tc := range cases {
		t.Run(tc.kind, func(t *testing.T) {
			s1, b1 := postJSON(t, ts.URL+tc.v1Path, tc.v1Body)
			if s1 != http.StatusOK {
				t.Fatalf("v1 = %d: %s", s1, b1)
			}
			s2, b2 := postJSON(t, ts.URL+"/v2/query", tc.v2Body)
			if s2 != http.StatusOK {
				t.Fatalf("v2 = %d: %s", s2, b2)
			}
			v2 := tree(t, b2)
			if got := dig(t, v2, "kind"); got != tc.kind {
				t.Fatalf("v2 kind = %v", got)
			}
			want := dig(t, tree(t, b1), tc.v1Field...)
			got := dig(t, v2, tc.v2Field...)
			if tc.kind == "payload-sweep" {
				// v1 flattens the two arrays into the response root.
				want = map[string]any{
					"sizes_bytes":      dig(t, want, "sizes_bytes"),
					"energy_j_per_bit": dig(t, want, "energy_j_per_bit"),
				}
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("v2 deviates from v1:\n v1: %v\n v2: %v", want, got)
			}
			// The replicas summary must carry the v1 across-replica stats.
			if tc.kind == "replicas" {
				for _, stat := range []string{"avg_power_uw", "delivery_ratio", "pr_fail", "pr_cf", "pr_col", "ncca", "tcont_ms", "mean_delay_ms"} {
					w := dig(t, tree(t, b1), stat)
					g := dig(t, v2, "summary", stat)
					if !reflect.DeepEqual(g, w) {
						t.Fatalf("summary.%s deviates: v1 %v, v2 %v", stat, w, g)
					}
				}
			}
		})
	}
}

// TestQueryHTTPMatchesInProcess pins the transport contract: the /v2/query
// body is byte-identical to an in-process Run's Encode.
func TestQueryHTTPMatchesInProcess(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{Workers: 2}))
	defer ts.Close()

	body := `{"kind":"replicas","sim":{"nodes":10,"superframes":4},"replicas":3}`
	status, httpBytes := postJSON(t, ts.URL+"/v2/query", body)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, httpBytes)
	}

	var q query.Query
	if err := json.Unmarshal([]byte(body), &q); err != nil {
		t.Fatal(err)
	}
	rs, err := query.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	inproc, err := rs.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(httpBytes, inproc) {
		t.Fatalf("HTTP body deviates from in-process Encode:\n http: %s\n proc: %s", httpBytes, inproc)
	}
}

// TestQueryStreamBitIdentical proves the NDJSON stream carries exactly the
// non-streaming body: line i equals the raw results[i] subtree byte for
// byte, and the final line carries the same summary.
func TestQueryStreamBitIdentical(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{Workers: 2}))
	defer ts.Close()

	body := `{"kind":"replicas","sim":{"nodes":10,"superframes":4},"replicas":3}`
	status, plain := postJSON(t, ts.URL+"/v2/query", body)
	if status != http.StatusOK {
		t.Fatalf("plain status = %d: %s", status, plain)
	}
	var rsWire struct {
		Results []json.RawMessage `json:"results"`
		Summary json.RawMessage   `json:"summary"`
	}
	if err := json.Unmarshal(plain, &rsWire); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/v2/query/stream", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	var lines [][]byte
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<22), 1<<22)
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(rsWire.Results)+1 {
		t.Fatalf("stream has %d lines for %d results", len(lines), len(rsWire.Results))
	}
	for i, raw := range rsWire.Results {
		if !bytes.Equal(lines[i], []byte(raw)) {
			t.Fatalf("stream line %d deviates from results[%d]:\n line: %s\n body: %s", i, i, lines[i], raw)
		}
	}
	var done struct {
		Done    bool            `json:"done"`
		Count   int             `json:"count"`
		Summary json.RawMessage `json:"summary"`
	}
	if err := json.Unmarshal(lines[len(lines)-1], &done); err != nil {
		t.Fatal(err)
	}
	if !done.Done || done.Count != len(rsWire.Results) {
		t.Fatalf("done line = %s", lines[len(lines)-1])
	}
	if !bytes.Equal(done.Summary, rsWire.Summary) {
		t.Fatalf("summary deviates:\n stream: %s\n body:   %s", done.Summary, rsWire.Summary)
	}
}

// TestQueryStreamClientDisconnect: a client that walks away mid-stream
// cancels the remaining plan tasks — the server's worker tokens drain
// instead of computing the rest of a large batch for nobody.
func TestQueryStreamClientDisconnect(t *testing.T) {
	srv := NewServer(Config{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// 48 distinct heavy-ish Monte-Carlo points: far more work than the
	// drain deadline allows, so the test only passes if cancellation is
	// observed.
	var sb strings.Builder
	sb.WriteString(`{"kind":"batch","batch":[`)
	for i := 0; i < 48; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		// Distinct seeds defeat the contention cache, so every element is
		// a fresh Monte-Carlo run.
		sb.WriteString(`{"contention":{"superframes":2000,"seed":` + strconv.Itoa(1000+i) + `}}`)
	}
	sb.WriteString(`]}`)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v2/query/stream", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one result line, then vanish.
	br := bufio.NewReaderSize(resp.Body, 1<<20)
	if _, err := br.ReadBytes('\n'); err != nil {
		t.Fatalf("first stream line: %v", err)
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(15 * time.Second)
	for srv.stats.inFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("request still in flight %v after disconnect", 15*time.Second)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if srv.pool.inUse() != 0 {
		t.Fatalf("%d worker tokens still held after disconnect", srv.pool.inUse())
	}
}

// TestQueryValidation400s pins the structured-error contract of the v2
// surface.
func TestQueryValidation400s(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{Workers: 1}))
	defer ts.Close()

	cases := []struct {
		body  string
		field string
	}{
		{`{"kind":"bogus"}`, "kind"},
		{`{}`, "kind"},
		{`{"version":3,"kind":"evaluate"}`, "version"},
		{`{"kind":"evaluate","replicas":5}`, "replicas"},
		{`{"kind":"batch","batch":[]}`, "batch"},
		{`{"kind":"evaluate","params":{"radio":"bogus"}}`, "radio"},
		{`{"kind":"pathloss-sweep","losses":{"values":["NaN"]}}`, "losses.values"},
		{`{"kind":"pathloss-sweep","losses":{"from":"-Inf","to":95,"points":5}}`, "losses"},
		{`{"kind":"scenario","scenario":"nope"}`, "scenario"},
		{`{"kind":"experiment"}`, "experiment"},
		{`{"kind":"replicas","replicas":100000}`, "replicas"},
	}
	for _, tc := range cases {
		status, body := postJSON(t, ts.URL+"/v2/query", tc.body)
		if status != http.StatusBadRequest {
			t.Fatalf("%s → %d (%s), want 400", tc.body, status, body)
		}
		var e errorBody
		if err := json.Unmarshal(body, &e); err != nil {
			t.Fatalf("unstructured error for %s: %s", tc.body, body)
		}
		if e.Error.Field != tc.field {
			t.Fatalf("%s → field %q, want %q", tc.body, e.Error.Field, tc.field)
		}
		if e.Error.Message == "" {
			t.Fatalf("%s → empty message", tc.body)
		}
	}
}
