package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"dense802154/internal/contention"
	"dense802154/internal/core"
	"dense802154/internal/netsim"
)

// newTestServer starts the service over a real listener with an unbounded
// cache and no request deadline.
func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewServer(cfg))
	t.Cleanup(ts.Close)
	return ts
}

// postJSON round-trips one request and decodes the response body.
func postJSON(t *testing.T, url string, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// fig8BatchWire builds a multi-point Fig. 8 workload: payload sizes at two
// network loads, with a short Monte-Carlo run so the test stays quick.
func fig8BatchWire() []ParamsWire {
	var out []ParamsWire
	for _, load := range []float64{0.10, 0.42} {
		for _, payload := range []int{20, 60, 120} {
			payload, load := payload, load
			l := Float(load)
			out = append(out, ParamsWire{
				PayloadBytes: &payload,
				Load:         &l,
				Contention:   &ContentionWire{Superframes: 16, Seed: int64p(7)},
			})
		}
	}
	return out
}

func TestBatchBitIdenticalToInProcess(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})

	wires := fig8BatchWire()
	body, _ := json.Marshal(batchRequest{Params: wires})
	status, respBody := postJSON(t, ts.URL+"/v1/batch", string(body))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, respBody)
	}
	var resp batchResponse
	if err := json.Unmarshal(respBody, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Metrics) != len(wires) {
		t.Fatalf("%d metrics for %d params", len(resp.Metrics), len(wires))
	}

	// The same workload computed in process, at a different worker count.
	ps := make([]core.Params, len(wires))
	for i, w := range wires {
		p, aerr := w.Params(1, 1)
		if aerr != nil {
			t.Fatal(aerr)
		}
		ps[i] = p
	}
	want, err := core.EvaluateBatch(context.Background(), 1, ps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got := resp.Metrics[i].Metrics(); !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("batch[%d] over HTTP diverges from in-process EvaluateBatch:\n got %+v\nwant %+v",
				i, got, want[i])
		}
	}
}

func TestEvaluateMatchesBatchElement(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})
	status, body := postJSON(t, ts.URL+"/v1/evaluate",
		`{"params":{"payload_bytes":60,"load":0.42,"contention":{"superframes":16,"seed":7}}}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp evaluateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	payload, load := 60, Float(0.42)
	p, aerr := ParamsWire{
		PayloadBytes: &payload, Load: &load,
		Contention: &ContentionWire{Superframes: 16, Seed: int64p(7)},
	}.Params(1, 1)
	if aerr != nil {
		t.Fatal(aerr)
	}
	want, err := core.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Metrics.Metrics(); !reflect.DeepEqual(got, want) {
		t.Fatalf("evaluate over HTTP diverges:\n got %+v\nwant %+v", got, want)
	}
}

func TestCaseStudyBitIdenticalToInProcess(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})
	req := `{
		"params": {"contention": {"superframes": 16, "seed": 7}},
		"config": {"loss_grid_points": 11}
	}`
	status, body := postJSON(t, ts.URL+"/v1/casestudy", req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp caseStudyResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}

	p, aerr := ParamsWire{Contention: &ContentionWire{Superframes: 16, Seed: int64p(7)}}.Params(1, 1)
	if aerr != nil {
		t.Fatal(aerr)
	}
	cfg := core.DefaultCaseStudy()
	cfg.LossGridPoints = 11
	direct, err := core.RunCaseStudy(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := caseStudyResultWire(direct); !reflect.DeepEqual(resp.Result, want) {
		t.Fatalf("case study over HTTP diverges:\n got %+v\nwant %+v", resp.Result, want)
	}
	if resp.Result.AvgPowerW <= 0 {
		t.Fatal("nonpositive average power")
	}
}

func TestBatchStreamingMatchesNonStreaming(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})
	wires := fig8BatchWire()
	body, _ := json.Marshal(batchRequest{Params: wires, Stream: true})
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}

	got := make(map[int]MetricsWire)
	var done bool
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ln batchLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if ln.Done {
			done = true
			if ln.Count != len(wires) {
				t.Fatalf("done count %d, want %d", ln.Count, len(wires))
			}
			if ln.Index != nil {
				t.Fatalf("summary line carries an index: %s", sc.Text())
			}
			continue
		}
		if ln.Index == nil {
			t.Fatalf("result line without index: %s", sc.Text())
		}
		if ln.Error != "" {
			t.Fatalf("line %d carries error %q", *ln.Index, ln.Error)
		}
		if _, dup := got[*ln.Index]; dup {
			t.Fatalf("index %d streamed twice", *ln.Index)
		}
		got[*ln.Index] = *ln.Metrics
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !done || len(got) != len(wires) {
		t.Fatalf("stream ended with %d lines, done=%v", len(got), done)
	}

	ps := make([]core.Params, len(wires))
	for i, w := range wires {
		p, aerr := w.Params(1, 1)
		if aerr != nil {
			t.Fatal(aerr)
		}
		ps[i] = p
	}
	want, err := core.EvaluateBatch(context.Background(), 1, ps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i].Metrics(), want[i]) {
			t.Fatalf("streamed[%d] diverges from in-process batch", i)
		}
	}
}

func TestMalformedPayloadsAre400s(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name, path, body string
		wantStatus       int
		wantField        string
	}{
		{"syntax", "/v1/evaluate", `{"params":`, http.StatusBadRequest, ""},
		{"unknown field", "/v1/evaluate", `{"params":{"paylod_bytes":10}}`, http.StatusBadRequest, ""},
		{"trailing garbage", "/v1/evaluate", `{"params":{}} extra`, http.StatusBadRequest, ""},
		{"bad radio", "/v1/evaluate", `{"params":{"radio":"nrf24"}}`, http.StatusBadRequest, "radio"},
		{"bad payload", "/v1/evaluate", `{"params":{"payload_bytes":0}}`, http.StatusBadRequest, "params"},
		{"bad superframe", "/v1/evaluate", `{"params":{"superframe":{"bo":2,"so":9}}}`, http.StatusBadRequest, "superframe"},
		{"empty batch", "/v1/batch", `{"params":[]}`, http.StatusBadRequest, "params"},
		{"bad batch element", "/v1/batch", `{"params":[{},{"load":2.5}]}`, http.StatusBadRequest, "params[1].params"},
		{"bad casestudy grid", "/v1/casestudy", `{"config":{"loss_grid_points":1}}`, http.StatusBadRequest, "config.loss_grid_points"},
		{"bad sim prob", "/v1/simulate", `{"config":{"transmit_prob":1.5}}`, http.StatusBadRequest, "config.transmit_prob"},
		{"bad sim nmax", "/v1/simulate", `{"config":{"n_max":-1},"replicas":2}`, http.StatusBadRequest, "config.n_max"},
		{"bad sim payload", "/v1/simulate", `{"config":{"payload_bytes":4000}}`, http.StatusBadRequest, "config.payload_bytes"},
		{"bad replicas", "/v1/simulate", `{"replicas":99999}`, http.StatusBadRequest, "replicas"},
		{"bad stream flag", "/v1/batch?stream=maybe", `{"params":[{}]}`, http.StatusBadRequest, "stream"},
		{"unknown experiment", "/v1/experiments/fig99", `{}`, http.StatusNotFound, "name"},
	}
	for _, tc := range cases {
		status, body := postJSON(t, ts.URL+tc.path, tc.body)
		if status != tc.wantStatus {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, status, tc.wantStatus, body)
			continue
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil {
			t.Errorf("%s: non-JSON error body %q", tc.name, body)
			continue
		}
		if eb.Error.Message == "" || eb.Error.Status != tc.wantStatus {
			t.Errorf("%s: error body %+v", tc.name, eb)
		}
		if tc.wantField != "" && eb.Error.Field != tc.wantField {
			t.Errorf("%s: field %q, want %q", tc.name, eb.Error.Field, tc.wantField)
		}
	}
}

func TestSimulateReplicasOverHTTP(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})
	status, body := postJSON(t, ts.URL+"/v1/simulate",
		`{"config":{"nodes":20,"superframes":4,"seed":3},"replicas":3}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp simulateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Replicas != 3 || len(resp.Results) != 3 {
		t.Fatalf("got %d replicas / %d results", resp.Replicas, len(resp.Results))
	}
	if resp.Seeds[0] != 3 {
		t.Fatalf("seed[0] = %d, want the base seed 3", resp.Seeds[0])
	}
	if resp.AvgPowerUW.Mean <= 0 || resp.DeliveryRatio.Mean <= 0 {
		t.Fatalf("implausible stats: %+v", resp)
	}
	// Replica 0 must reproduce the direct simulation.
	direct := simResultWire(3, directSim(t))
	if !reflect.DeepEqual(resp.Results[0], direct) {
		t.Fatalf("replica 0 over HTTP diverges:\n got %+v\nwant %+v", resp.Results[0], direct)
	}
}

func directSim(t *testing.T) netsim.Result {
	t.Helper()
	cfg, aerr := (&SimConfigWire{Nodes: intp(20), Superframes: intp(4), Seed: int64p(3)}).Config()
	if aerr != nil {
		t.Fatal(aerr)
	}
	return netsim.Run(cfg)
}

func TestExperimentEndpoints(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list experimentListResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Experiments) == 0 {
		t.Fatal("no experiments registered")
	}
	names := make(map[string]bool)
	for _, e := range list.Experiments {
		names[e.Name] = true
	}
	if !names["casestudy"] || !names["fig8"] {
		t.Fatalf("expected casestudy and fig8 in %v", names)
	}

	status, body := postJSON(t, ts.URL+"/v1/experiments/casestudy", `{"quick":true}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var run experimentRunResponse
	if err := json.Unmarshal(body, &run); err != nil {
		t.Fatal(err)
	}
	if run.Name != "casestudy" || len(run.Tables) == 0 || len(run.Tables[0].Rows) == 0 {
		t.Fatalf("empty experiment result: %+v", run)
	}
}

func TestHealthzAndStats(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2, CacheLimit: 128})
	t.Cleanup(func() { contention.SetCacheLimit(0) })

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d", resp.StatusCode)
	}

	// Two identical evaluations: the second must hit the contention cache.
	body := `{"params":{"contention":{"superframes":12,"seed":99}}}`
	postJSON(t, ts.URL+"/v1/evaluate", body)
	postJSON(t, ts.URL+"/v1/evaluate", body)

	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests < 3 {
		t.Fatalf("requests_total = %d, want ≥ 3", st.Requests)
	}
	if st.WorkerBudget != 2 {
		t.Fatalf("worker budget %d, want 2", st.WorkerBudget)
	}
	if st.Cache.Limit != 128 {
		t.Fatalf("cache limit %d, want 128", st.Cache.Limit)
	}
	if st.Cache.Hits == 0 {
		t.Fatalf("no cache hits recorded after identical evaluations: %+v", st.Cache)
	}
}

func TestClientCancellationMidRequest(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1})
	// A slow request: a huge path-loss grid with the cheap closed-form
	// source — long enough to outlive the cancellation, cancelable
	// between grid points.
	req := `{
		"params": {"contention": {"source": "approx"}},
		"config": {"loss_grid_points": 100000}
	}`
	ctx, cancel := context.WithCancel(context.Background())
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/casestudy", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("Content-Type", "application/json")

	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(httpReq)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("request completed with %d despite cancellation", resp.StatusCode)
		}
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()

	select {
	case err := <-errCh:
		if !strings.Contains(err.Error(), "context canceled") {
			t.Fatalf("unexpected client error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled request did not return")
	}

	// The worker token must come back: a follow-up request succeeds.
	status, body := postJSON(t, ts.URL+"/v1/evaluate",
		`{"params":{"contention":{"source":"approx"}}}`)
	if status != http.StatusOK {
		t.Fatalf("post-cancel request: %d %s", status, body)
	}
}

func TestStreamFalseQueryKeepsJSONResponse(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1})
	status, body := postJSON(t, ts.URL+"/v1/batch?stream=0",
		`{"params":[{"contention":{"source":"approx"}}]}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp batchResponse
	if err := json.Unmarshal(body, &resp); err != nil || len(resp.Metrics) != 1 {
		t.Fatalf("?stream=0 did not produce the plain JSON batch response: %s", body)
	}
}

func TestRequestDeadlineIs503(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1, RequestTimeout: time.Nanosecond})
	// The deadline is checked both at worker acquisition and per grid
	// point inside the sweep, so a sweep request observes it reliably.
	status, body := postJSON(t, ts.URL+"/v1/casestudy",
		`{"params":{"contention":{"source":"approx"}},"config":{"loss_grid_points":10001}}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", status, body)
	}
}

func TestConcurrentClientsShareOnePool(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients*3)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := 20 + 10*(c%4)
			body := fmt.Sprintf(
				`{"params":{"payload_bytes":%d,"contention":{"superframes":8,"seed":5}}}`, payload)
			for i := 0; i < 3; i++ {
				resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json",
					strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d: %d %s", c, resp.StatusCode, b)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Identical requests from different clients must have produced
	// identical bytes: re-issue two and compare.
	_, a := postJSON(t, ts.URL+"/v1/evaluate", `{"params":{"payload_bytes":20,"contention":{"superframes":8,"seed":5}}}`)
	_, b := postJSON(t, ts.URL+"/v1/evaluate", `{"params":{"payload_bytes":20,"contention":{"superframes":8,"seed":5}}}`)
	if !bytes.Equal(a, b) {
		t.Fatalf("identical requests produced different bytes:\n%s\n%s", a, b)
	}
}
