package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"dense802154/internal/query"
	"dense802154/internal/store"
)

// ---- POST /v2/query, POST /v2/query/stream ----
//
// The versioned unified-query surface: one declarative request type
// (internal/query.Query) covers everything the per-endpoint v1 routes do.
// The non-streaming form answers with the byte-stable ResultSet encoding;
// the streaming form emits NDJSON — one TaskResult per line in plan order,
// then one summary line — with every line flushed as it completes.
// Backpressure is the same worker-token limiter the v1 routes share: a
// query acquires tokens before computing, so any number of v2 clients
// shares the server budget.

// decodeQuery parses and compiles the request body; errors are rendered as
// structured 400s.
func (s *Server) decodeQuery(w http.ResponseWriter, r *http.Request) (query.Query, *query.Plan, bool) {
	var q query.Query
	if !decodeJSON(w, r, &q) {
		return query.Query{}, nil, false
	}
	plan, err := query.Compile(q)
	if err != nil {
		var aerr *Error
		if errors.As(err, &aerr) {
			writeValidationError(w, aerr)
		} else {
			writeError(w, http.StatusBadRequest, err.Error(), "")
		}
		return query.Query{}, nil, false
	}
	return q, plan, true
}

// countQuery records an accepted (compiled) v2 query in the per-kind and
// task-volume counters.
func (s *Server) countQuery(plan *query.Plan) {
	s.queryKinds.With(string(plan.Kind)).Inc()
	s.queryTasks.Add(uint64(plan.NumTasks()))
}

// queryContext applies the server's per-query deadline (Config.QueryTimeout)
// to a v2 query execution; the query's own timeout_ms, when tighter, is
// applied underneath by the plan itself.
func (s *Server) queryContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.QueryTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
	}
	return context.WithCancel(r.Context())
}

// resultKey returns the whole-query store key of q when its response bytes
// are cacheable: a store is configured, the query has a canonical wire form
// (no Direct inputs) and tracing is off — traces carry measured wall times,
// which are never part of result bytes, so a traced query bypasses the
// whole-query cache entirely (its per-task results still flow through the
// plan-level store, which holds no trace data).
func (s *Server) resultKey(q query.Query) (store.Key, bool) {
	if s.cfg.Store == nil || q.Trace {
		return store.Key{}, false
	}
	return store.KeyFor(q)
}

// attachStore wires the per-task result store into a compiled plan so
// execution reuses stored tasks and persists computed ones. Tasks does its
// own cacheability gating (nil for Direct queries).
func (s *Server) attachStore(q query.Query, plan *query.Plan) {
	if s.cfg.Store != nil {
		plan.Store = s.cfg.Store.Tasks(q)
	}
}

// execQuery runs a compiled plan through the configured Distributor when one
// exists (coordinator mode), locally otherwise.
func (s *Server) execQuery(ctx context.Context, q query.Query, plan *query.Plan, workers int, yield func(query.TaskResult) error) (*query.ResultSet, error) {
	if s.cfg.Distributor != nil {
		return s.cfg.Distributor.Distribute(ctx, q, plan, workers, yield)
	}
	return plan.Execute(ctx, workers, yield)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, plan, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	s.countQuery(plan)
	// A whole-query store hit is served before any worker token is taken:
	// the stored bytes are the exact bytes a previous identical query
	// answered with, so the hit path is O(1) and executes nothing.
	key, cacheable := s.resultKey(q)
	if cacheable {
		if body, ok := s.cfg.Store.GetResult(key); ok {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(body)
			return
		}
	}
	s.attachStore(q, plan)
	got, release, ok := s.acquireWorkers(w, r, q.Workers)
	if !ok {
		return
	}
	defer release()

	ctx, cancel := s.queryContext(r)
	defer cancel()
	rs, err := s.execQuery(ctx, q, plan, got, nil)
	if err != nil {
		s.writeQueryError(w, r, err)
		return
	}
	body, err := rs.Encode()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error(), "")
		return
	}
	if cacheable {
		s.cfg.Store.PutResult(key, body)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// queryStreamLine is the final NDJSON record of a /v2/query/stream
// response: done=true, the task count, the replicas (or lifetime) summary
// when the plan has one, and the execution trace when the query opted in. The preceding
// lines are raw query.TaskResult encodings — exactly the elements of the
// non-streaming ResultSet.Results, byte for byte.
type queryStreamLine struct {
	Done            bool                       `json:"done"`
	Count           int                        `json:"count"`
	Summary         *query.ReplicaSummaryWire  `json:"summary,omitempty"`
	LifetimeSummary *query.LifetimeSummaryWire `json:"lifetime_summary,omitempty"`
	Trace           *query.PlanTraceWire       `json:"trace,omitempty"`
}

// writeStreamFromResult replays a stored ResultSet body as the NDJSON stream
// a fresh execution would produce: one line per task in plan order, then the
// done line. The per-line bytes are identical to a fresh stream because the
// stored elements re-encode exactly (the caller gates on Kind.WireExact).
// Returns false — without having written anything — when the stored bytes do
// not decode, so the caller falls through to a fresh computation.
func (s *Server) writeStreamFromResult(w http.ResponseWriter, body []byte) bool {
	var rs query.ResultSet
	if err := json.Unmarshal(body, &rs); err != nil {
		return false
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	for i := range rs.Results {
		if err := enc.Encode(rs.Results[i]); err != nil {
			return true // client went away mid-replay
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	_ = enc.Encode(queryStreamLine{Done: true, Count: len(rs.Results), Summary: rs.Summary, LifetimeSummary: rs.LifetimeSummary})
	return true
}

func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	q, plan, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	s.countQuery(plan)
	// A stored whole-query body replays as the stream without executing
	// anything — gated on kinds whose elements re-encode byte-identically.
	key, cacheable := s.resultKey(q)
	if cacheable && q.Kind.WireExact() {
		if body, ok := s.cfg.Store.GetResult(key); ok && s.writeStreamFromResult(w, body) {
			return
		}
	}
	// Attaching the per-task store is also what makes interrupted streams
	// resumable: every task computed before a disconnect was persisted, so
	// the retried stream reuses them and recomputes only the remainder.
	s.attachStore(q, plan)
	got, release, ok := s.acquireWorkers(w, r, q.Workers)
	if !ok {
		return
	}
	defer release()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)

	ctx, cancel := s.queryContext(r)
	defer cancel()
	count := 0
	var encodeErr error
	rs, err := s.execQuery(ctx, q, plan, got, func(tr query.TaskResult) error {
		if err := enc.Encode(tr); err != nil {
			encodeErr = err
			return err // client went away; execution cancels the rest
		}
		count++
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		// Headers are gone; a structured terminal error line (done stays
		// false) tells the client why the stream ended early, and its
		// absence — a hard truncation — still signals failure. A dead
		// client connection gets nothing, which is fine: nobody is reading.
		if encodeErr == nil {
			_ = enc.Encode(queryStreamErrorLine{Error: queryErrorDetail(r, err)})
			if flusher != nil {
				flusher.Flush()
			}
		}
		return
	}
	if cacheable {
		if body, err := rs.Encode(); err == nil {
			s.cfg.Store.PutResult(key, body)
		}
	}
	_ = enc.Encode(queryStreamLine{Done: true, Count: count, Summary: rs.Summary, LifetimeSummary: rs.LifetimeSummary, Trace: rs.Trace})
}

// queryStreamErrorLine is the terminal NDJSON record of a failed stream:
// done=false plus the same structured error detail the non-streaming route
// would have answered with.
type queryStreamErrorLine struct {
	Done  bool        `json:"done"`
	Error errorDetail `json:"error"`
}

// queryErrorDetail maps a v2 execution failure to its structured error: an
// exceeded query deadline is a 504 (the inputs were fine, the time budget
// was not), other context failures are 503s, validation errors keep their
// field, and anything else is a 400 (the model rejected the inputs).
func queryErrorDetail(r *http.Request, err error) errorDetail {
	if errors.Is(err, context.DeadlineExceeded) {
		return errorDetail{Status: http.StatusGatewayTimeout, Message: "query deadline exceeded"}
	}
	if cerr := r.Context().Err(); cerr != nil {
		return errorDetail{Status: http.StatusServiceUnavailable, Message: cerr.Error()}
	}
	var aerr *Error
	if errors.As(err, &aerr) {
		return errorDetail{Status: http.StatusBadRequest, Message: aerr.Message, Field: aerr.Field}
	}
	return errorDetail{Status: http.StatusBadRequest, Message: err.Error()}
}

// writeQueryError renders a v2 execution failure (see queryErrorDetail for
// the status mapping).
func (s *Server) writeQueryError(w http.ResponseWriter, r *http.Request, err error) {
	d := queryErrorDetail(r, err)
	writeError(w, d.Status, d.Message, d.Field)
}
