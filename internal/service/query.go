package service

import (
	"encoding/json"
	"errors"
	"net/http"

	"dense802154/internal/query"
)

// ---- POST /v2/query, POST /v2/query/stream ----
//
// The versioned unified-query surface: one declarative request type
// (internal/query.Query) covers everything the per-endpoint v1 routes do.
// The non-streaming form answers with the byte-stable ResultSet encoding;
// the streaming form emits NDJSON — one TaskResult per line in plan order,
// then one summary line — with every line flushed as it completes.
// Backpressure is the same worker-token limiter the v1 routes share: a
// query acquires tokens before computing, so any number of v2 clients
// shares the server budget.

// decodeQuery parses and compiles the request body; errors are rendered as
// structured 400s.
func (s *Server) decodeQuery(w http.ResponseWriter, r *http.Request) (query.Query, *query.Plan, bool) {
	var q query.Query
	if !decodeJSON(w, r, &q) {
		return query.Query{}, nil, false
	}
	plan, err := query.Compile(q)
	if err != nil {
		var aerr *Error
		if errors.As(err, &aerr) {
			writeValidationError(w, aerr)
		} else {
			writeError(w, http.StatusBadRequest, err.Error(), "")
		}
		return query.Query{}, nil, false
	}
	return q, plan, true
}

// countQuery records an accepted (compiled) v2 query in the per-kind and
// task-volume counters.
func (s *Server) countQuery(plan *query.Plan) {
	s.queryKinds.With(string(plan.Kind)).Inc()
	s.queryTasks.Add(uint64(plan.NumTasks()))
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, plan, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	s.countQuery(plan)
	got, release, ok := s.acquireWorkers(w, r, q.Workers)
	if !ok {
		return
	}
	defer release()

	rs, err := plan.Execute(r.Context(), got, nil)
	if err != nil {
		s.writeQueryError(w, r, err)
		return
	}
	body, err := rs.Encode()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error(), "")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// queryStreamLine is the final NDJSON record of a /v2/query/stream
// response: done=true, the task count, the replicas summary when the plan
// has one, and the execution trace when the query opted in. The preceding
// lines are raw query.TaskResult encodings — exactly the elements of the
// non-streaming ResultSet.Results, byte for byte.
type queryStreamLine struct {
	Done    bool                      `json:"done"`
	Count   int                       `json:"count"`
	Summary *query.ReplicaSummaryWire `json:"summary,omitempty"`
	Trace   *query.PlanTraceWire      `json:"trace,omitempty"`
}

func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	q, plan, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	s.countQuery(plan)
	got, release, ok := s.acquireWorkers(w, r, q.Workers)
	if !ok {
		return
	}
	defer release()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)

	count := 0
	rs, err := plan.Execute(r.Context(), got, func(tr query.TaskResult) error {
		if err := enc.Encode(tr); err != nil {
			return err // client went away; Execute cancels the rest
		}
		count++
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		// Headers are gone; the truncated stream (no done line) is the
		// client-visible error signal.
		return
	}
	_ = enc.Encode(queryStreamLine{Done: true, Count: count, Summary: rs.Summary, Trace: rs.Trace})
}

// writeQueryError maps an execution failure: context failures are 503s,
// anything else surfaces as a 400 (the model rejected the inputs).
func (s *Server) writeQueryError(w http.ResponseWriter, r *http.Request, err error) {
	if r.Context().Err() != nil {
		writeCtxError(w, r.Context().Err())
		return
	}
	var aerr *Error
	if errors.As(err, &aerr) {
		writeValidationError(w, aerr)
		return
	}
	writeError(w, http.StatusBadRequest, err.Error(), "")
}
