package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dense802154/internal/scenario"
)

// TestScenarioList returns the full committed catalog.
func TestScenarioList(t *testing.T) {
	srv := NewServer(Config{Workers: 2})
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/scenarios", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Scenarios []scenario.Scenario `json:"scenarios"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(resp.Scenarios) != len(scenario.Catalog()) {
		t.Fatalf("listed %d scenarios, catalog has %d", len(resp.Scenarios), len(scenario.Catalog()))
	}
	for i, sc := range scenario.Catalog() {
		if resp.Scenarios[i].Name != sc.Name {
			t.Errorf("scenario %d: %q vs catalog %q", i, resp.Scenarios[i].Name, sc.Name)
		}
	}
}

// TestScenarioGolden serves the committed golden bytes verbatim.
func TestScenarioGolden(t *testing.T) {
	srv := NewServer(Config{Workers: 2})
	name := scenario.Names()[0]
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/scenarios/"+name, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	want, _ := scenario.Golden(name)
	if !bytes.Equal(rec.Body.Bytes(), want) {
		t.Error("served golden differs from the embedded bytes")
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/scenarios/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown scenario: status %d", rec.Code)
	}
}

// TestScenarioRun runs a cheap scenario over HTTP with a golden diff and
// checks the fresh result is byte-identical to the committed golden —
// HTTP-vs-in-process parity for the whole cross-model pipeline.
func TestScenarioRun(t *testing.T) {
	srv := NewServer(Config{Workers: 2})
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/scenarios/sparse-light",
		strings.NewReader(`{"workers":2,"diff":true}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Result *scenario.Result     `json:"result"`
		Diff   *scenario.DiffReport `json:"diff"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Result == nil || !resp.Result.Pass {
		t.Fatalf("scenario run did not pass: %+v", resp.Result)
	}
	if resp.Diff == nil || !resp.Diff.ByteIdentical || !resp.Diff.Pass {
		t.Errorf("diff not byte-identical/passing: %+v", resp.Diff)
	}

	// Unknown name and malformed body are structured errors, not panics.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/scenarios/nope", strings.NewReader(`{}`)))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown scenario: status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/scenarios/sparse-light", strings.NewReader(`{"workers":`)))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed body: status %d", rec.Code)
	}
}
