package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dense802154/internal/dist"
)

// ---- liveness / readiness split ----

func TestLivezAndReadyz(t *testing.T) {
	app := NewServer(Config{Workers: 1})
	ts := httptest.NewServer(app)
	t.Cleanup(ts.Close)

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/livez"); got != http.StatusOK {
		t.Fatalf("/livez = %d", got)
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz = %d", got)
	}
	// Draining: not ready, but still live — the distinction the coordinator
	// and the process supervisor key on respectively.
	app.SetReady(false)
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", got)
	}
	if got := get("/livez"); got != http.StatusOK {
		t.Fatalf("/livez while draining = %d, want 200", got)
	}
	app.SetReady(true)
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz after readmission = %d", got)
	}
}

// ---- panic recovery middleware ----

func TestPanicRecoveryAnswers500AndCounts(t *testing.T) {
	app := NewServer(Config{Workers: 1})
	app.handle("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	ts := httptest.NewServer(app)
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("panic response is not structured JSON: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError || body.Error.Status != http.StatusInternalServerError {
		t.Fatalf("panic answered %d / %d, want 500", resp.StatusCode, body.Error.Status)
	}
	if got := app.httpPanics.Value(); got != 1 {
		t.Fatalf("wsn_http_panics_total = %d, want 1", got)
	}
	_, _, _, resp5xx := app.stats.snapshot()
	if resp5xx != 1 {
		t.Fatalf("recovered panic not in the 5xx ledger (got %d)", resp5xx)
	}
	// The server survived: a normal route still answers.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz after a panic = %d", resp.StatusCode)
	}
}

func TestMetricsCollectorPanicRecovered(t *testing.T) {
	// /metrics renders into a buffer, so a panicking GaugeFunc collector
	// fires before any byte is written and the recovery layer can still
	// answer a structured 500 instead of a truncated scrape.
	app := NewServer(Config{Workers: 1})
	app.reg.GaugeFunc("test_exploding_gauge", "Panics on collection.", func() float64 {
		panic("collector boom")
	})
	ts := httptest.NewServer(app)
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var body errorBody
	decErr := json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError || decErr != nil {
		t.Fatalf("collector panic answered %d (decode err %v), want structured 500", resp.StatusCode, decErr)
	}
	if got := app.httpPanics.Value(); got != 1 {
		t.Fatalf("wsn_http_panics_total = %d, want 1", got)
	}
}

// ---- per-query deadline: structured 504 ----

// slowQuery is a workload far beyond a 1 ms budget.
const slowQuery = `{"kind":"replicas","sim":{"nodes":40,"superframes":50},"replicas":40`

func TestQueryTimeoutMSAnswers504(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})
	status, body := postJSON(t, ts.URL+"/v2/query", slowQuery+`,"timeout_ms":1}`)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("timed-out query answered %d: %s", status, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error.Status != http.StatusGatewayTimeout {
		t.Fatalf("504 body not structured: %s", body)
	}
}

func TestServerQueryTimeoutAnswers504(t *testing.T) {
	// The -request-timeout server deadline, with no timeout_ms in the query.
	ts := newTestServer(t, Config{Workers: 2, QueryTimeout: time.Millisecond})
	status, body := postJSON(t, ts.URL+"/v2/query", slowQuery+`}`)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("timed-out query answered %d: %s", status, body)
	}
}

func TestQueryStreamTimeoutDrainsCleanly(t *testing.T) {
	// The stream form already answered 200 when the deadline fires, so the
	// failure must arrive as a terminal NDJSON error line — the stream ends
	// cleanly instead of hanging or truncating without explanation.
	ts := newTestServer(t, Config{Workers: 2})
	resp, err := http.Post(ts.URL+"/v2/query/stream", "application/json",
		strings.NewReader(slowQuery+`,"timeout_ms":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream answered %d before the deadline could fire", resp.StatusCode)
	}
	var last string
	br := bufio.NewReader(resp.Body)
	for {
		line, err := br.ReadString('\n')
		if strings.TrimSpace(line) != "" {
			last = line
		}
		if err != nil {
			break // drained to EOF: the server closed the stream cleanly
		}
	}
	var terminal queryStreamErrorLine
	if err := json.Unmarshal([]byte(last), &terminal); err != nil {
		t.Fatalf("terminal line %q not a stream error line: %v", last, err)
	}
	if terminal.Done || terminal.Error.Status != http.StatusGatewayTimeout {
		t.Fatalf("terminal line = %+v, want done=false status=504", terminal)
	}
}

// ---- POST /v2/tasks: the worker half of distribution ----

func TestTasksStreamsRangeInOrder(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})
	body := `{"query":{"kind":"grid",` +
		`"params":{"contention":{"superframes":8,"seed":3}},` +
		`"losses":{"values":[55,70,85]},"payloads":{"values":[20,100]}},` +
		`"from":1,"to":4}`
	status, raw := postJSON(t, ts.URL+"/v2/tasks", body)
	if status != http.StatusOK {
		t.Fatalf("/v2/tasks answered %d: %s", status, raw)
	}
	var lines []dist.TaskLine
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	for dec.More() {
		var l dist.TaskLine
		if err := dec.Decode(&l); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, l)
	}
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 3 tasks + done", len(lines))
	}
	for i, l := range lines[:3] {
		if l.Result == nil || l.Index != 1+i || l.Result.Index != 1+i {
			t.Fatalf("line %d = %+v, want result for plan index %d", i, l, 1+i)
		}
		if l.WallMS < 0 {
			t.Fatalf("line %d reports negative wall time", i)
		}
	}
	if done := lines[3]; !done.Done || done.Count != 3 {
		t.Fatalf("terminal line = %+v, want done=true count=3", done)
	}
}

func TestTasksRejections(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})
	grid := `"query":{"kind":"grid","params":{"contention":{"superframes":8,"seed":3}},"losses":{"values":[55,70]}}`
	for name, body := range map[string]string{
		"inverted range":  `{` + grid + `,"from":2,"to":1}`,
		"past plan end":   `{` + grid + `,"from":0,"to":99}`,
		"negative from":   `{` + grid + `,"from":-1,"to":1}`,
		"broken query":    `{"query":{"kind":"nope"},"from":0,"to":1}`,
		"malformed range": `{` + grid + `,"from":"zero"}`,
	} {
		status, raw := postJSON(t, ts.URL+"/v2/tasks", body)
		if status != http.StatusBadRequest {
			t.Fatalf("%s: answered %d (%s), want 400", name, status, raw)
		}
	}
}
