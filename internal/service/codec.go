package service

import (
	"fmt"

	"dense802154/internal/contention"
	"dense802154/internal/core"
	"dense802154/internal/netsim"
	"dense802154/internal/query"
	"dense802154/internal/wire"
)

// The request/response codecs live in internal/query — the unified query
// layer and this HTTP front-end share one wire vocabulary, so the v1
// endpoints and the v2 /query surface cannot drift apart. The aliases below
// keep the v1 wire names this package has always exported.
//
// # v1 → v2 wire mapping
//
// Every v1 endpoint is expressible as a v2 Query; the request fields carry
// over verbatim (same JSON names, same defaults, same validation bounds):
//
//	POST /v1/evaluate   {"params":P}            → {"kind":"evaluate","params":P}
//	POST /v1/batch      {"params":[P...]}       → {"kind":"batch","batch":[P...]}
//	POST /v1/casestudy  {"params":P,"config":C} → {"kind":"casestudy","params":P,"config":C}
//	POST /v1/sweep/pathloss   {"params":P,"losses":[..]}  → {"kind":"pathloss-sweep","params":P,"losses":{"values":[..]}}
//	POST /v1/sweep/thresholds {"params":P,"losses":[..]}  → {"kind":"thresholds","params":P,"losses":{"values":[..]}}
//	POST /v1/sweep/payload    {"params":P,"sizes":[..]}   → {"kind":"payload-sweep","params":P,"payloads":{"values":[..]}}
//	POST /v1/simulate   {"config":S}              → {"kind":"simulate","sim":S}
//	POST /v1/simulate   {"config":S,"replicas":n} → {"kind":"replicas","sim":S,"replicas":n}
//	POST /v1/scenarios/{name} {"diff":d}          → {"kind":"scenario","scenario":name,"diff":d}
//	POST /v1/experiments/{name} {"quick":q,"seed":s} → {"kind":"experiment","experiment":name,"quick":q,"seed":s}
//
// v2 additionally expresses grid axes as ranges ({"from":55,"to":95,
// "points":81} or {"from":5,"to":123,"step":2}), not just explicit lists.
// Responses change shape: v2 wraps every outcome in one tagged ResultSet
// ({"version":2,"kind":...,"results":[...]}) whose per-task payloads reuse
// the v1 response structs below, and /v2/query/stream emits exactly those
// TaskResults as NDJSON lines followed by a summary line. The v1 endpoints
// are maintained but frozen: new axes land as Query fields, not new
// routes.
type (
	// Error is a structured request-validation failure rendered as a 400.
	Error = query.Error
	// SuperframeWire selects the beacon structure.
	SuperframeWire = query.SuperframeWire
	// ContentionWire selects and parameterizes the contention source.
	ContentionWire = query.ContentionWire
	// ParamsWire is the JSON form of core.Params.
	ParamsWire = query.ParamsWire
	// ContStatsWire is the JSON form of contention.Stats.
	ContStatsWire = query.ContStatsWire
	// BreakdownWire is the JSON form of core.Breakdown.
	BreakdownWire = query.BreakdownWire
	// StateTimesWire is the JSON form of core.StateTimes.
	StateTimesWire = query.StateTimesWire
	// MetricsWire is the JSON form of core.Metrics.
	MetricsWire = query.MetricsWire
	// CaseStudyConfigWire is the JSON form of core.CaseStudyConfig.
	CaseStudyConfigWire = query.CaseStudyConfigWire
	// CaseStudyResultWire is the JSON form of core.CaseStudyResult.
	CaseStudyResultWire = query.CaseStudyResultWire
	// SimConfigWire is the JSON form of netsim.Config.
	SimConfigWire = query.SimConfigWire
	// SimResultWire is the JSON headline of one netsim.Result replica.
	SimResultWire = query.SimResultWire
	// ReplicaStatWire is the JSON form of netsim.ReplicaStat.
	ReplicaStatWire = query.ReplicaStatWire
)

// Float is the exact-round-trip JSON float shared with the scenario golden
// files; see internal/wire for the encoding contract.
type Float = wire.Float

// maxMCSuperframes caps one Monte-Carlo characterization requested over
// HTTP (see query.MaxMCSuperframes).
const maxMCSuperframes = query.MaxMCSuperframes

func contStatsWire(s contention.Stats) ContStatsWire { return query.WireContStats(s) }
func metricsWire(m core.Metrics) MetricsWire         { return query.WireMetrics(m) }
func caseStudyResultWire(r core.CaseStudyResult) CaseStudyResultWire {
	return query.WireCaseStudyResult(r)
}
func simResultWire(seed int64, r netsim.Result) SimResultWire { return query.WireSimResult(seed, r) }
func replicaStatWire(s netsim.ReplicaStat) ReplicaStatWire    { return query.WireReplicaStat(s) }

// errf builds a field-scoped validation Error.
func errf(field, format string, args ...any) *Error {
	return &Error{Field: field, Message: fmt.Sprintf(format, args...)}
}

// floats converts a float64 slice to the exact-round-trip wire type.
func floats(xs []float64) []Float { return wire.Floats(xs) }

// float64s converts back.
func float64s(xs []Float) []float64 { return wire.Float64s(xs) }
