package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"

	"dense802154/internal/dist"
	"dense802154/internal/query"
)

// errStreamWrite marks a failure writing a task line back to the
// coordinator. It exists to keep the two failure families apart: a stream
// write failure is a transport fault (the coordinator re-dispatches the
// range elsewhere), while an error from a task itself is deterministic (the
// same pure task fails identically anywhere, so the coordinator aborts).
// Without the sentinel, a broken pipe surfacing through the ExecuteRange
// yield before r.Context() is canceled would be reported as a TaskLine
// error — and if that line partially landed (e.g. through a buffering
// proxy), the coordinator would abort the whole query instead of retrying
// the shard.
var errStreamWrite = errors.New("service: task stream write failed")

// ---- POST /v2/tasks ----
//
// The worker half of distributed execution: a coordinator posts a full
// query plus a task index range, and the worker streams back one NDJSON
// dist.TaskLine per task in range order, then a terminal done line. Because
// plan tasks are pure functions of (query, index), the worker recompiles
// the query locally and computes exactly the requested slice — there is no
// session state, so any worker can serve any shard at any time, which is
// what re-dispatch and speculative execution lean on. The range-order
// stream is load-bearing too: a connection that dies after k lines has
// delivered exactly the first k tasks of the range, so the coordinator
// resumes from the first missing index instead of recomputing the shard.

func (s *Server) handleTasks(w http.ResponseWriter, r *http.Request) {
	var req dist.TaskRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	plan, err := query.Compile(req.Query)
	if err != nil {
		var aerr *Error
		if errors.As(err, &aerr) {
			writeValidationError(w, aerr)
		} else {
			writeError(w, http.StatusBadRequest, err.Error(), "")
		}
		return
	}
	if req.From < 0 || req.To > plan.NumTasks() || req.From >= req.To {
		writeError(w, http.StatusBadRequest, "task range outside plan", "range")
		return
	}
	// Worker-side store: tasks another query (or another coordinator) left
	// behind are served without recomputing, and everything computed here is
	// stored — the fleet-wide shared shard cache.
	s.attachStore(req.Query, plan)
	got, release, ok := s.acquireWorkers(w, r, req.Workers)
	if !ok {
		return
	}
	defer release()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)

	count := 0
	err = plan.ExecuteRange(r.Context(), got, req.From, req.To, func(tr query.TaskResult, wallMS float64) error {
		res := tr
		if err := enc.Encode(dist.TaskLine{Index: tr.Index, WallMS: wallMS, Result: &res}); err != nil {
			return fmt.Errorf("%w: %v", errStreamWrite, err)
		}
		count++
		dist.TasksServedTotal.Inc()
		if flusher != nil {
			flusher.Flush()
		}
		if n := s.cfg.FaultExitAfterTasks; n > 0 && s.tasksServed.Add(1) >= int64(n) {
			// Fault-injection knob: die mid-stream, deterministically, after
			// the Nth served line — the multi-process tests' worker crash.
			os.Exit(3)
		}
		return nil
	})
	if err != nil {
		if errors.Is(err, errStreamWrite) || r.Context().Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Coordinator gone, write failed or deadline hit: the truncated
			// stream is the signal; the range is transport-retryable
			// elsewhere. Emitting a TaskLine error here would misreport a
			// transport fault as a deterministic compute failure and make the
			// coordinator abort instead of re-dispatching.
			return
		}
		// A compute error is deterministic — the same pure task fails the
		// same way anywhere — so report it for the coordinator to abort on.
		_ = enc.Encode(dist.TaskLine{Error: err.Error()})
		return
	}
	_ = enc.Encode(dist.TaskLine{Done: true, Count: count})
}
