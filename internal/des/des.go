// Package des implements a small deterministic discrete-event simulation
// kernel used by the network simulator and the Monte-Carlo contention
// characterizer.
//
// Design:
//   - Simulated time is a time.Duration measured from the start of the
//     simulation; 802.15.4 timing (16 µs symbols, 320 µs backoff slots) is
//     exactly representable in nanoseconds.
//   - Events scheduled for the same instant fire in scheduling order
//     (FIFO), which makes runs reproducible for a fixed seed.
//   - The kernel is single-goroutine by design: handlers run synchronously
//     inside Step/Run and may schedule or cancel further events.
package des

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Handler is a callback invoked when an event fires.
type Handler func()

// Event is a scheduled callback. It is returned by Schedule/At and can be
// cancelled. The zero value is not a valid event.
type Event struct {
	at      time.Duration
	seq     uint64
	index   int // heap index, -1 when not queued
	fn      Handler
	stopped bool
}

// Time reports the instant the event is (or was) scheduled to fire.
func (e *Event) Time() time.Duration { return e.at }

// Cancelled reports whether the event has been cancelled.
func (e *Event) Cancelled() bool { return e.stopped }

// eventQueue is a min-heap ordered by (time, sequence).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Simulator is a discrete-event simulator instance.
type Simulator struct {
	now   time.Duration
	queue eventQueue
	seq   uint64
	rng   *rand.Rand
	fired uint64
}

// New returns a simulator whose random source is seeded with seed.
// Identical seeds and identical scheduling sequences produce identical runs.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now reports the current simulated time.
func (s *Simulator) Now() time.Duration { return s.now }

// Rand exposes the simulator's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Fired reports the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending reports the number of events currently queued.
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule queues fn to run after delay. It panics on negative delays:
// scheduling into the past is always a bug in the calling model.
func (s *Simulator) Schedule(delay time.Duration, fn Handler) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v", delay))
	}
	return s.At(s.now+delay, fn)
}

// At queues fn to run at absolute simulated time t (>= Now).
func (s *Simulator) At(t time.Duration, fn Handler) *Event {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("des: nil handler")
	}
	e := &Event{at: t, seq: s.seq, fn: fn, index: -1}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.stopped {
		return
	}
	e.stopped = true
	if e.index >= 0 {
		heap.Remove(&s.queue, e.index)
	}
}

// Step fires the next pending event, advancing the clock to its timestamp.
// It reports whether an event was executed.
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.stopped {
			continue
		}
		s.now = e.at
		e.stopped = true
		s.fired++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to the deadline. Events scheduled after the deadline remain queued.
func (s *Simulator) RunUntil(deadline time.Duration) {
	for {
		e := s.peek()
		if e == nil || e.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// peek returns the next non-cancelled event without firing it.
func (s *Simulator) peek() *Event {
	for len(s.queue) > 0 {
		if s.queue[0].stopped {
			heap.Pop(&s.queue)
			continue
		}
		return s.queue[0]
	}
	return nil
}
