// Package des implements a small deterministic discrete-event simulation
// kernel used by the network simulator and the Monte-Carlo contention
// characterizer.
//
// Design:
//   - Simulated time is a time.Duration measured from the start of the
//     simulation; 802.15.4 timing (16 µs symbols, 320 µs backoff slots) is
//     exactly representable in nanoseconds.
//   - Events scheduled for the same instant fire in scheduling order
//     (FIFO), which makes runs reproducible for a fixed seed.
//   - The kernel is single-goroutine by design: handlers run synchronously
//     inside Step/Run and may schedule or cancel further events.
//
// # Zero-allocation event engine
//
// The event queue is a flat 4-ary min-heap of value-typed events — no
// per-event heap nodes, no container/heap boxing through `any`, no pointer
// chasing during sift. Steady-state scheduling therefore allocates nothing:
// pushing reuses the slice capacity, and popped events are plain struct
// copies.
//
// # Idle fast-forward: the parked far band
//
// Long quiescent spans — a lifetime run ticking through thousands of
// pre-scheduled beacons with almost no traffic between them — would pay a
// full heap sift per beacon even though the beacons arrive pre-sorted. The
// queue therefore has two bands. An event pushed at or after the latest
// parked instant appends to the far band, a sorted FIFO consumed from the
// front: O(1) push, O(1) pop. Anything earlier goes through the 4-ary near
// heap as before. Step and peek always compare the near root against the
// far head under the same (at, seq) order and take the global minimum, so
// the firing sequence is identical to a single heap, event for event — the
// split is purely a cost optimization and can never reorder a run. A model
// that pre-schedules its timeline in ascending order (netsim's beacon
// grid, lifetime epochs) parks it for free and fast-forwards across idle
// spans at one comparison per event instead of one sift.
//
// Handlers come in two flavours:
//
//   - Typed dispatch (the hot path): the model registers one Dispatcher
//     function and schedules events as an (kind, actor, arg) triple via
//     AtEvent/ScheduleEvent. No closure is allocated per event; the
//     dispatcher demultiplexes on the small kind enum. This is how netsim
//     drives its per-node state machines.
//   - Closure handlers (the convenience path): At/Schedule accept a func().
//     The event storage itself is still allocation-free; only the closure
//     the caller constructs escapes.
//
// Cancellation works through EventID handles backed by a generation-checked
// slot table with a free list: cancelled or fired slots are recycled for
// later events, and a stale EventID (whose slot has been reused) is
// harmlessly ignored. Cancelled events are removed lazily when they surface
// at the heap root.
package des

import (
	"fmt"
	"time"

	"dense802154/internal/engine"
)

// Handler is a callback invoked when an event fires.
type Handler func()

// Dispatcher receives typed events scheduled with AtEvent/ScheduleEvent:
// kind is the model's event enum, actor identifies the entity the event
// concerns (a node index, say; -1 for global events) and arg carries the
// event's time payload (which often differs from the firing instant — a
// CCA event fires one turnaround early but targets a slot boundary).
type Dispatcher func(kind, actor int32, arg time.Duration)

// EventID is a cancellable handle to a scheduled event. The zero value is
// not a valid handle and cancelling it is a no-op.
type EventID struct {
	slot int32
	gen  uint32
}

// event is one value-typed entry of the flat event heap.
type event struct {
	at    time.Duration
	seq   uint64
	slot  int32 // index into Simulator.slots
	kind  int32
	actor int32
	arg   time.Duration
	fn    Handler // nil ⇒ typed dispatch
}

// slot states.
const (
	slotPending uint8 = iota
	slotCancelled
)

// slot tracks the lifecycle of one scheduled event for cancellation; slots
// are recycled through a free list once their event fires or its
// cancellation is collected.
type slot struct {
	gen   uint32
	state uint8
}

// Simulator is a discrete-event simulator instance.
type Simulator struct {
	now      time.Duration
	heap     []event // near band: 4-ary min-heap
	far      []event // far band: sorted FIFO, consumed from farHead
	farHead  int
	slots    []slot
	free     []int32
	live     int // scheduled and not cancelled
	seq      uint64
	rng      engine.RNG
	fired    uint64
	maxDepth int // deepest the two bands have grown together this run
	dispatch Dispatcher
}

// New returns a simulator whose random source is seeded with seed.
// Identical seeds and identical scheduling sequences produce identical runs.
func New(seed int64) *Simulator {
	return &Simulator{rng: engine.NewRNG(seed)}
}

// Reset rewinds the simulator to the state New(seed) would produce while
// keeping the heap, slot-table and free-list backing storage, so a recycled
// simulator schedules its next run without growing allocations. The
// registered dispatcher is kept. Every outstanding EventID is invalidated
// (slot generations are bumped, exactly as if the events had fired);
// holding a handle across Reset and cancelling it later is a harmless
// no-op, the same guarantee stale handles already have.
func (s *Simulator) Reset(seed int64) {
	for i := range s.heap {
		s.heap[i] = event{} // drop closure and payload references
	}
	s.heap = s.heap[:0]
	for i := s.farHead; i < len(s.far); i++ {
		s.far[i] = event{}
	}
	s.far = s.far[:0]
	s.farHead = 0
	s.free = s.free[:0]
	for i := range s.slots {
		s.slots[i].gen++
		s.slots[i].state = slotPending
		s.free = append(s.free, int32(i))
	}
	s.now = 0
	s.live = 0
	s.seq = 0
	s.fired = 0
	s.maxDepth = 0
	s.rng = engine.NewRNG(seed)
}

// SetDispatcher registers the typed-event dispatcher. It must be set before
// the first AtEvent/ScheduleEvent call.
func (s *Simulator) SetDispatcher(d Dispatcher) { s.dispatch = d }

// Now reports the current simulated time.
func (s *Simulator) Now() time.Duration { return s.now }

// Rand exposes the simulator's deterministic random source.
func (s *Simulator) Rand() *engine.RNG { return &s.rng }

// Fired reports the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// MaxHeapDepth reports the deepest the event queue has grown since the last
// Reset — the peak number of simultaneously pending entries across both
// bands, a direct measure of scheduling pressure.
func (s *Simulator) MaxHeapDepth() int { return s.maxDepth }

// FarDepth reports the number of entries currently parked in the far band
// (cancelled entries included until they are lazily collected). It exists
// for tests and benchmarks that assert the fast-forward band is actually
// absorbing a pre-scheduled timeline.
func (s *Simulator) FarDepth() int { return len(s.far) - s.farHead }

// Pending reports the number of events currently scheduled (cancelled
// events are excluded even before their slots are collected).
func (s *Simulator) Pending() int { return s.live }

// Schedule queues fn to run after delay. It panics on negative delays:
// scheduling into the past is always a bug in the calling model.
func (s *Simulator) Schedule(delay time.Duration, fn Handler) EventID {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v", delay))
	}
	return s.At(s.now+delay, fn)
}

// At queues fn to run at absolute simulated time t (>= Now).
func (s *Simulator) At(t time.Duration, fn Handler) EventID {
	if fn == nil {
		panic("des: nil handler")
	}
	return s.push(t, 0, 0, 0, fn)
}

// ScheduleEvent queues a typed event after delay (see Dispatcher).
func (s *Simulator) ScheduleEvent(delay time.Duration, kind, actor int32, arg time.Duration) EventID {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v", delay))
	}
	return s.AtEvent(s.now+delay, kind, actor, arg)
}

// AtEvent queues a typed event at absolute simulated time t (>= Now). The
// (kind, actor, arg) triple is delivered to the registered Dispatcher when
// the event fires. Unlike closure scheduling, AtEvent allocates nothing in
// steady state.
func (s *Simulator) AtEvent(t time.Duration, kind, actor int32, arg time.Duration) EventID {
	if s.dispatch == nil {
		panic("des: AtEvent without a dispatcher (call SetDispatcher first)")
	}
	return s.push(t, kind, actor, arg, nil)
}

// push allocates a slot (reusing the free list) and routes the event to a
// band: an event at or after the latest parked instant appends to the far
// band in O(1); anything earlier sifts into the near heap.
func (s *Simulator) push(t time.Duration, kind, actor int32, arg time.Duration, fn Handler) EventID {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", t, s.now))
	}
	var id int32
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.slots = append(s.slots, slot{gen: 1})
		id = int32(len(s.slots) - 1)
	}
	sl := &s.slots[id]
	sl.state = slotPending
	ev := event{at: t, seq: s.seq, slot: id, kind: kind, actor: actor, arg: arg, fn: fn}
	s.seq++
	s.live++
	if n := len(s.far); n == s.farHead || !before(&ev, &s.far[n-1]) {
		// Keeps the far band sorted: seq is monotone, so an event at or
		// after the tail instant extends the sorted order.
		if s.farHead == n {
			s.far = s.far[:0]
			s.farHead = 0
		}
		s.far = append(s.far, ev)
	} else {
		s.heap = append(s.heap, ev)
		s.siftUp(len(s.heap) - 1)
	}
	if depth := len(s.heap) + len(s.far) - s.farHead; depth > s.maxDepth {
		s.maxDepth = depth
	}
	return EventID{slot: id, gen: sl.gen}
}

// Cancel removes a pending event. Cancelling an already-fired,
// already-cancelled or zero-valued handle is a no-op.
func (s *Simulator) Cancel(id EventID) {
	if id.gen == 0 || int(id.slot) >= len(s.slots) {
		return
	}
	sl := &s.slots[id.slot]
	if sl.gen != id.gen || sl.state != slotPending {
		return
	}
	sl.state = slotCancelled
	s.live--
}

// Cancelled reports whether the event was cancelled before firing. A handle
// whose event has already fired reports false; the zero handle reports
// false.
func (s *Simulator) Cancelled(id EventID) bool {
	if id.gen == 0 || int(id.slot) >= len(s.slots) {
		return false
	}
	sl := &s.slots[id.slot]
	return sl.gen == id.gen && sl.state == slotCancelled
}

// release recycles a slot for reuse; bumping the generation invalidates any
// outstanding EventID.
func (s *Simulator) release(id int32) {
	s.slots[id].gen++
	s.free = append(s.free, id)
}

// farMin reports whether the next pending entry is the far head: the far
// band is non-empty and the near heap is empty or ordered after it. The
// (at, seq) comparison is what makes the two-band split invisible — the pop
// sequence is exactly a single heap's.
func (s *Simulator) farMin() bool {
	if s.farHead >= len(s.far) {
		return false
	}
	return len(s.heap) == 0 || before(&s.far[s.farHead], &s.heap[0])
}

// popFar removes the far-band head.
func (s *Simulator) popFar() event {
	ev := s.far[s.farHead]
	s.far[s.farHead] = event{} // drop closure and payload references
	s.farHead++
	if s.farHead == len(s.far) {
		s.far = s.far[:0]
		s.farHead = 0
	}
	return ev
}

// popNext removes and returns the globally earliest entry across both
// bands, collecting cancelled entries along the way.
func (s *Simulator) popNext() (event, bool) {
	for {
		var ev event
		switch {
		case s.farMin():
			ev = s.popFar()
		case len(s.heap) > 0:
			ev = s.heap[0]
			s.popRoot()
		default:
			return event{}, false
		}
		if s.slots[ev.slot].state == slotCancelled {
			s.release(ev.slot)
			continue
		}
		return ev, true
	}
}

// Step fires the next pending event, advancing the clock to its timestamp.
// It reports whether an event was executed.
func (s *Simulator) Step() bool {
	ev, ok := s.popNext()
	if !ok {
		return false
	}
	s.release(ev.slot)
	s.live--
	s.now = ev.at
	s.fired++
	if ev.fn != nil {
		ev.fn()
	} else {
		s.dispatch(ev.kind, ev.actor, ev.arg)
	}
	return true
}

// Run executes events until the queue is empty.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to the deadline. Events scheduled after the deadline remain queued.
func (s *Simulator) RunUntil(deadline time.Duration) {
	for {
		at, ok := s.peek()
		if !ok || at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// peek reports the timestamp of the next non-cancelled event, collecting
// cancelled entries from both bands along the way.
func (s *Simulator) peek() (time.Duration, bool) {
	for {
		var ev *event
		far := s.farMin()
		if far {
			ev = &s.far[s.farHead]
		} else if len(s.heap) > 0 {
			ev = &s.heap[0]
		} else {
			return 0, false
		}
		if s.slots[ev.slot].state == slotCancelled {
			s.release(ev.slot)
			if far {
				s.popFar()
			} else {
				s.popRoot()
			}
			continue
		}
		return ev.at, true
	}
}

// ---- flat 4-ary min-heap, ordered by (at, seq) ----
//
// A 4-ary layout halves the tree depth of a binary heap; with value-typed
// events the four-child comparison loop stays in one or two cache lines, so
// pops touch fewer lines than a deeper binary sift would.

// before reports heap ordering between two events.
func before(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *Simulator) siftUp(i int) {
	h := s.heap
	ev := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !before(&ev, &h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ev
}

// popRoot removes the heap minimum.
func (s *Simulator) popRoot() {
	h := s.heap
	n := len(h) - 1
	if n > 0 {
		h[0] = h[n]
	}
	h[n] = event{} // clear the vacated tail (drops closure references)
	s.heap = h[:n]
	if n > 1 {
		s.siftDown(0)
	}
}

func (s *Simulator) siftDown(i int) {
	h := s.heap
	n := len(h)
	ev := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if before(&h[c], &h[best]) {
				best = c
			}
		}
		if !before(&h[best], &ev) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = ev
}
