package des

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// The parked far band is a pure cost optimization: Step must pop the global
// (at, seq) minimum across both bands, so the firing sequence of any
// schedule — including ones that interleave parked timelines, out-of-order
// inserts and cancellations — is identical to a single sorted queue's. The
// tests below pin that equivalence against an independent reference
// implementation, and pin the skip path's zero-allocation contract.

// scheduler is the surface a recorded scenario drives; both the real
// Simulator and the reference queue implement it.
type scheduler interface {
	Now() time.Duration
	At(t time.Duration, fn func()) (cancel func())
	Run()
}

// simBackend adapts Simulator.
type simBackend struct{ s *Simulator }

func (b simBackend) Now() time.Duration { return b.s.Now() }
func (b simBackend) At(t time.Duration, fn func()) func() {
	id := b.s.At(t, fn)
	return func() { b.s.Cancel(id) }
}
func (b simBackend) Run() { b.s.Run() }

// refEvent is one entry of the reference queue.
type refEvent struct {
	at        time.Duration
	seq       uint64
	cancelled bool
	fn        func()
}

// refQueue is the reference semantics: one flat slice, popped by a full
// linear scan for the (at, seq) minimum — no heaps, no bands, nothing to
// share a bug with the real kernel.
type refQueue struct {
	now    time.Duration
	seq    uint64
	events []*refEvent
}

func (q *refQueue) Now() time.Duration { return q.now }

func (q *refQueue) At(t time.Duration, fn func()) func() {
	ev := &refEvent{at: t, seq: q.seq, fn: fn}
	q.seq++
	q.events = append(q.events, ev)
	return func() { ev.cancelled = true }
}

func (q *refQueue) Run() {
	for {
		best := -1
		for i, ev := range q.events {
			if ev.cancelled {
				continue
			}
			if best < 0 || ev.at < q.events[best].at ||
				(ev.at == q.events[best].at && ev.seq < q.events[best].seq) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		ev := q.events[best]
		q.events = append(q.events[:best], q.events[best+1:]...)
		q.now = ev.at
		ev.fn()
	}
}

// driveScenario replays one recorded random schedule on a backend: a
// pre-sorted beacon timeline (the far band's reason to exist) whose handlers
// schedule bursts of near-future work and cancel a pseudo-random subset of
// it. All randomness comes from the caller's seed, so the same scenario runs
// on both backends event for event.
func driveScenario(sc scheduler, seed int64) []time.Duration {
	rng := rand.New(rand.NewSource(seed))
	var log []time.Duration
	var pending []func()

	record := func(tag time.Duration) {
		// Fold the firing instant and a tag into the trace; any divergence
		// in order or time shows up as a trace mismatch.
		log = append(log, sc.Now()*1000+tag)
	}
	burst := func() {
		record(1)
		for k := rng.Intn(4); k > 0; k-- {
			d := time.Duration(rng.Intn(900)) * time.Microsecond
			cancel := sc.At(sc.Now()+d, func() { record(2) })
			pending = append(pending, cancel)
		}
		if len(pending) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(pending))
			pending[i]()
			pending[i] = pending[len(pending)-1]
			pending = pending[:len(pending)-1]
		}
	}
	// The parked timeline: 300 strictly ascending beacon instants.
	for i := 0; i < 300; i++ {
		sc.At(time.Duration(i)*time.Millisecond, burst)
	}
	sc.Run()
	return log
}

// TestFarBandReplayIdentity proves the two-band queue fires recorded random
// schedules in exactly the order the reference single-queue semantics does.
func TestFarBandReplayIdentity(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		got := driveScenario(simBackend{New(0)}, seed)
		want := driveScenario(&refQueue{}, seed)
		if len(got) != len(want) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: firing trace diverges at event %d: %v vs %v", seed, i, got[i], want[i])
			}
		}
	}
}

// TestFarBandRouting pins the band routing itself: an ascending timeline
// parks entirely in the far band, one earlier insert sifts into the near
// heap without disturbing the parked run, and consumption drains both in
// global order.
func TestFarBandRouting(t *testing.T) {
	s := New(0)
	s.SetDispatcher(func(kind, actor int32, arg time.Duration) {})
	for i := 1; i <= 50; i++ {
		s.AtEvent(time.Duration(i)*time.Millisecond, 0, 0, 0)
	}
	if got := s.FarDepth(); got != 50 {
		t.Fatalf("ascending timeline parked %d entries, want 50", got)
	}
	s.AtEvent(500*time.Microsecond, 0, 0, 0) // before the parked head: near heap
	if got := s.FarDepth(); got != 50 {
		t.Fatalf("earlier insert changed the far band: depth %d, want 50", got)
	}
	s.AtEvent(51*time.Millisecond, 0, 0, 0) // at/after the parked tail: far band
	if got := s.FarDepth(); got != 51 {
		t.Fatalf("later insert missed the far band: depth %d, want 51", got)
	}
	s.Run()
	if s.Fired() != 52 || s.FarDepth() != 0 {
		t.Fatalf("Fired = %d FarDepth = %d, want 52 and 0", s.Fired(), s.FarDepth())
	}
}

// TestFarBandSkipAllocFree extends the kernel's allocation guard to the
// fast-forward path: parking a pre-sorted timeline and draining it through
// Step must not allocate once the band storage has warmed up — the skip
// path is O(1) appends and O(1) pops, with no sift and no growth.
func TestFarBandSkipAllocFree(t *testing.T) {
	s := New(1)
	s.SetDispatcher(func(kind, actor int32, arg time.Duration) {})
	// Warm-up: grow far band and slot table to steady-state capacity.
	for i := 0; i < 256; i++ {
		s.ScheduleEvent(time.Duration(i)*time.Millisecond, 0, 0, 0)
	}
	s.Run()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 128; i++ {
			s.ScheduleEvent(time.Duration(i)*time.Millisecond, 0, 0, 0)
		}
		if s.FarDepth() != 128 {
			t.Fatal("timeline not parked in the far band")
		}
		s.Run()
	})
	if allocs != 0 {
		t.Fatalf("far-band skip path allocated %v per cycle, want 0", allocs)
	}
}

// TestFarBandOrderAgainstSort cross-checks a bulk out-of-order schedule: the
// pop order equals the stable (at, seq) sort of everything pushed.
func TestFarBandOrderAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := New(0)
	type stamped struct {
		at  time.Duration
		seq int
	}
	var want []stamped
	var got []stamped
	n := 0
	// Half a parked ascending run, half random inserts landing before it.
	for i := 0; i < 400; i++ {
		var at time.Duration
		if i%2 == 0 {
			at = time.Duration(1000+i) * time.Millisecond
		} else {
			at = time.Duration(rng.Intn(2000)) * time.Millisecond
		}
		seq := n
		n++
		want = append(want, stamped{at, seq})
		s.At(at, func() { got = append(got, stamped{s.Now(), seq}) })
	}
	sort.SliceStable(want, func(i, j int) bool {
		if want[i].at != want[j].at {
			return want[i].at < want[j].at
		}
		return want[i].seq < want[j].seq
	})
	s.Run()
	if len(got) != len(want) {
		t.Fatalf("fired %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pop order diverges from stable sort at %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}
