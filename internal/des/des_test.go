package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New(1)
	var order []time.Duration
	delays := []time.Duration{50, 10, 30, 20, 40}
	for _, d := range delays {
		d := d
		s.Schedule(d*time.Microsecond, func() {
			order = append(order, s.Now())
		})
	}
	s.Run()
	if len(order) != len(delays) {
		t.Fatalf("fired %d events, want %d", len(order), len(delays))
	}
	if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
		t.Fatalf("events out of order: %v", order)
	}
	if s.Now() != 50*time.Microsecond {
		t.Fatalf("final time %v, want 50µs", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		s.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time ordering violated at %d: got %d", i, v)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.Schedule(time.Millisecond, func() { fired = true })
	s.Cancel(e)
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	// Double cancel and nil cancel are no-ops.
	s.Cancel(e)
	s.Cancel(nil)
}

func TestCancelFromHandler(t *testing.T) {
	s := New(1)
	fired := false
	var victim *Event
	s.Schedule(time.Microsecond, func() { s.Cancel(victim) })
	victim = s.Schedule(time.Millisecond, func() { fired = true })
	s.Run()
	if fired {
		t.Fatal("event cancelled from a handler still fired")
	}
}

func TestScheduleFromHandler(t *testing.T) {
	s := New(1)
	var times []time.Duration
	s.Schedule(time.Millisecond, func() {
		times = append(times, s.Now())
		s.Schedule(time.Millisecond, func() {
			times = append(times, s.Now())
		})
	})
	s.Run()
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	if len(times) != 2 || times[0] != want[0] || times[1] != want[1] {
		t.Fatalf("got %v, want %v", times, want)
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	s.RunUntil(5 * time.Millisecond)
	if count != 5 {
		t.Fatalf("RunUntil fired %d events, want 5", count)
	}
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("now %v, want 5ms", s.Now())
	}
	if s.Pending() != 5 {
		t.Fatalf("pending %d, want 5", s.Pending())
	}
	s.Run()
	if count != 10 {
		t.Fatalf("total fired %d, want 10", count)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := New(1)
	s.RunUntil(42 * time.Second)
	if s.Now() != 42*time.Second {
		t.Fatalf("now %v, want 42s", s.Now())
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative delay")
		}
	}()
	New(1).Schedule(-time.Second, func() {})
}

func TestPastAtPanics(t *testing.T) {
	s := New(1)
	s.Schedule(time.Second, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on scheduling in the past")
		}
	}()
	s.At(time.Millisecond, func() {})
}

func TestNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on nil handler")
		}
	}()
	New(1).Schedule(time.Second, nil)
}

func TestDeterminismForFixedSeed(t *testing.T) {
	run := func(seed int64) []time.Duration {
		s := New(seed)
		var out []time.Duration
		var spawn func()
		n := 0
		spawn = func() {
			out = append(out, s.Now())
			n++
			if n < 200 {
				d := time.Duration(s.Rand().Intn(1000)) * time.Microsecond
				s.Schedule(d, spawn)
			}
		}
		s.Schedule(0, spawn)
		s.Run()
		return out
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("different lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFiredCounter(t *testing.T) {
	s := New(1)
	for i := 0; i < 7; i++ {
		s.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	s.Run()
	if s.Fired() != 7 {
		t.Fatalf("Fired = %d, want 7", s.Fired())
	}
}

// Property: for any set of non-negative delays, events fire sorted by time
// and the number fired equals the number scheduled.
func TestPropertyOrderedFiring(t *testing.T) {
	f := func(raw []uint16) bool {
		s := New(3)
		var fired []time.Duration
		for _, r := range raw {
			s.Schedule(time.Duration(r)*time.Microsecond, func() {
				fired = append(fired, s.Now())
			})
		}
		s.Run()
		if len(fired) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: cancelling a random subset fires exactly the complement.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(n uint8, mask uint64) bool {
		count := int(n%64) + 1
		s := New(5)
		firedCount := 0
		events := make([]*Event, count)
		for i := 0; i < count; i++ {
			events[i] = s.Schedule(time.Duration(i)*time.Microsecond, func() { firedCount++ })
		}
		cancelled := 0
		for i := 0; i < count; i++ {
			if mask&(1<<uint(i)) != 0 {
				s.Cancel(events[i])
				cancelled++
			}
		}
		s.Run()
		return firedCount == count-cancelled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHeapStressRandomOrder(t *testing.T) {
	s := New(9)
	rng := rand.New(rand.NewSource(42))
	const n = 5000
	var last time.Duration
	ok := true
	for i := 0; i < n; i++ {
		s.Schedule(time.Duration(rng.Intn(1_000_000))*time.Nanosecond, func() {
			if s.Now() < last {
				ok = false
			}
			last = s.Now()
		})
	}
	s.Run()
	if !ok {
		t.Fatal("heap delivered events out of order under stress")
	}
}
