package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New(1)
	var order []time.Duration
	delays := []time.Duration{50, 10, 30, 20, 40}
	for _, d := range delays {
		s.Schedule(d*time.Microsecond, func() {
			order = append(order, s.Now())
		})
	}
	s.Run()
	if len(order) != len(delays) {
		t.Fatalf("fired %d events, want %d", len(order), len(delays))
	}
	if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
		t.Fatalf("events out of order: %v", order)
	}
	if s.Now() != 50*time.Microsecond {
		t.Fatalf("final time %v, want 50µs", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		s.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time ordering violated at %d: got %d", i, v)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.Schedule(time.Millisecond, func() { fired = true })
	s.Cancel(e)
	if !s.Cancelled(e) {
		t.Fatal("event not marked cancelled")
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after cancel, want 0", s.Pending())
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double cancel and zero-handle cancel are no-ops.
	s.Cancel(e)
	s.Cancel(EventID{})
	if s.Cancelled(EventID{}) {
		t.Fatal("zero handle reports cancelled")
	}
}

func TestCancelFromHandler(t *testing.T) {
	s := New(1)
	fired := false
	var victim EventID
	s.Schedule(time.Microsecond, func() { s.Cancel(victim) })
	victim = s.Schedule(time.Millisecond, func() { fired = true })
	s.Run()
	if fired {
		t.Fatal("event cancelled from a handler still fired")
	}
}

func TestStaleHandleIsIgnored(t *testing.T) {
	// After an event fires, its slot is recycled; a retained handle must
	// not cancel the slot's next occupant.
	s := New(1)
	first := s.Schedule(time.Microsecond, func() {})
	s.Run()
	fired := false
	s.Schedule(time.Microsecond, func() { fired = true })
	s.Cancel(first) // stale: the slot now belongs to the second event
	if s.Cancelled(first) {
		t.Fatal("stale handle reports cancelled")
	}
	s.Run()
	if !fired {
		t.Fatal("stale cancel hit the recycled slot")
	}
}

func TestScheduleFromHandler(t *testing.T) {
	s := New(1)
	var times []time.Duration
	s.Schedule(time.Millisecond, func() {
		times = append(times, s.Now())
		s.Schedule(time.Millisecond, func() {
			times = append(times, s.Now())
		})
	})
	s.Run()
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	if len(times) != 2 || times[0] != want[0] || times[1] != want[1] {
		t.Fatalf("got %v, want %v", times, want)
	}
}

func TestTypedDispatch(t *testing.T) {
	s := New(1)
	type rec struct {
		kind, actor int32
		arg, at     time.Duration
	}
	var got []rec
	s.SetDispatcher(func(kind, actor int32, arg time.Duration) {
		got = append(got, rec{kind, actor, arg, s.Now()})
	})
	s.AtEvent(2*time.Millisecond, 7, 42, 5*time.Millisecond)
	s.ScheduleEvent(time.Millisecond, 3, -1, 0)
	s.Run()
	want := []rec{
		{3, -1, 0, time.Millisecond},
		{7, 42, 5 * time.Millisecond, 2 * time.Millisecond},
	}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("typed dispatch got %v, want %v", got, want)
	}
}

func TestTypedAndClosureInterleave(t *testing.T) {
	s := New(1)
	var order []string
	s.SetDispatcher(func(kind, actor int32, arg time.Duration) {
		order = append(order, "typed")
	})
	s.Schedule(time.Millisecond, func() { order = append(order, "closure") })
	s.ScheduleEvent(time.Millisecond, 0, 0, 0)
	s.Schedule(2*time.Millisecond, func() { order = append(order, "closure") })
	s.Run()
	want := []string{"closure", "typed", "closure"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("interleave order %v, want %v", order, want)
		}
	}
}

func TestTypedCancel(t *testing.T) {
	s := New(1)
	count := 0
	s.SetDispatcher(func(kind, actor int32, arg time.Duration) { count++ })
	keep := s.AtEvent(time.Millisecond, 0, 0, 0)
	drop := s.AtEvent(2*time.Millisecond, 0, 1, 0)
	s.Cancel(drop)
	s.Run()
	if count != 1 {
		t.Fatalf("fired %d typed events, want 1", count)
	}
	_ = keep
}

func TestAtEventWithoutDispatcherPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on AtEvent without dispatcher")
		}
	}()
	New(1).AtEvent(time.Millisecond, 0, 0, 0)
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	s.RunUntil(5 * time.Millisecond)
	if count != 5 {
		t.Fatalf("RunUntil fired %d events, want 5", count)
	}
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("now %v, want 5ms", s.Now())
	}
	if s.Pending() != 5 {
		t.Fatalf("pending %d, want 5", s.Pending())
	}
	s.Run()
	if count != 10 {
		t.Fatalf("total fired %d, want 10", count)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := New(1)
	s.RunUntil(42 * time.Second)
	if s.Now() != 42*time.Second {
		t.Fatalf("now %v, want 42s", s.Now())
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative delay")
		}
	}()
	New(1).Schedule(-time.Second, func() {})
}

func TestPastAtPanics(t *testing.T) {
	s := New(1)
	s.Schedule(time.Second, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on scheduling in the past")
		}
	}()
	s.At(time.Millisecond, func() {})
}

func TestNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on nil handler")
		}
	}()
	New(1).Schedule(time.Second, nil)
}

func TestDeterminismForFixedSeed(t *testing.T) {
	run := func(seed int64) []time.Duration {
		s := New(seed)
		var out []time.Duration
		var spawn func()
		n := 0
		spawn = func() {
			out = append(out, s.Now())
			n++
			if n < 200 {
				d := time.Duration(s.Rand().Intn(1000)) * time.Microsecond
				s.Schedule(d, spawn)
			}
		}
		s.Schedule(0, spawn)
		s.Run()
		return out
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("different lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFiredCounter(t *testing.T) {
	s := New(1)
	for i := 0; i < 7; i++ {
		s.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	s.Run()
	if s.Fired() != 7 {
		t.Fatalf("Fired = %d, want 7", s.Fired())
	}
}

func TestMaxHeapDepth(t *testing.T) {
	s := New(1)
	if s.MaxHeapDepth() != 0 {
		t.Fatalf("fresh MaxHeapDepth = %d, want 0", s.MaxHeapDepth())
	}
	for i := 0; i < 9; i++ {
		s.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	s.Run()
	if s.MaxHeapDepth() != 9 {
		t.Fatalf("MaxHeapDepth = %d, want 9 (all scheduled before any fired)", s.MaxHeapDepth())
	}
	s.Reset(1)
	if s.MaxHeapDepth() != 0 {
		t.Fatalf("MaxHeapDepth after Reset = %d, want 0", s.MaxHeapDepth())
	}
	// Interleaved schedule/fire: the mark tracks the peak, not the total.
	s.Schedule(time.Millisecond, func() { s.Schedule(time.Millisecond, func() {}) })
	s.Run()
	if s.Fired() != 2 || s.MaxHeapDepth() != 1 {
		t.Fatalf("Fired = %d MaxHeapDepth = %d, want 2 and 1", s.Fired(), s.MaxHeapDepth())
	}
}

// Property: for any set of non-negative delays, events fire sorted by time
// and the number fired equals the number scheduled.
func TestPropertyOrderedFiring(t *testing.T) {
	f := func(raw []uint16) bool {
		s := New(3)
		var fired []time.Duration
		for _, r := range raw {
			s.Schedule(time.Duration(r)*time.Microsecond, func() {
				fired = append(fired, s.Now())
			})
		}
		s.Run()
		if len(fired) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: cancelling a random subset fires exactly the complement.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(n uint8, mask uint64) bool {
		count := int(n%64) + 1
		s := New(5)
		firedCount := 0
		events := make([]EventID, count)
		for i := 0; i < count; i++ {
			events[i] = s.Schedule(time.Duration(i)*time.Microsecond, func() { firedCount++ })
		}
		cancelled := 0
		for i := 0; i < count; i++ {
			if mask&(1<<uint(i)) != 0 {
				s.Cancel(events[i])
				cancelled++
			}
		}
		if s.Pending() != count-cancelled {
			return false
		}
		s.Run()
		return firedCount == count-cancelled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHeapStressRandomOrder(t *testing.T) {
	s := New(9)
	rng := rand.New(rand.NewSource(42))
	const n = 5000
	var last time.Duration
	ok := true
	for i := 0; i < n; i++ {
		s.Schedule(time.Duration(rng.Intn(1_000_000))*time.Nanosecond, func() {
			if s.Now() < last {
				ok = false
			}
			last = s.Now()
		})
	}
	s.Run()
	if !ok {
		t.Fatal("heap delivered events out of order under stress")
	}
}

func TestHeapStressInterleavedCancel(t *testing.T) {
	// Schedule, cancel a third, schedule more from handlers; order and
	// counts must hold with slot recycling under churn.
	s := New(11)
	rng := rand.New(rand.NewSource(7))
	fired, spawned := 0, 0
	s.SetDispatcher(func(kind, actor int32, arg time.Duration) { fired++ })
	var ids []EventID
	for i := 0; i < 3000; i++ {
		ids = append(ids, s.ScheduleEvent(time.Duration(rng.Intn(1_000_000)), 0, int32(i), 0))
	}
	cancelled := 0
	for i := 0; i < len(ids); i += 3 {
		s.Cancel(ids[i])
		cancelled++
	}
	// Handlers that respawn: every 10th firing schedules a fresh event.
	s.Schedule(0, func() {})
	var respawn func()
	respawn = func() {
		spawned++
		if spawned < 100 {
			s.Schedule(time.Duration(rng.Intn(500_000)), respawn)
		}
	}
	s.Schedule(0, respawn)
	s.Run()
	if fired != 3000-cancelled {
		t.Fatalf("typed fired = %d, want %d", fired, 3000-cancelled)
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after Run", s.Pending())
	}
}

// TestTypedEventLoopAllocFree is the allocation-regression guard for the
// kernel: a steady-state schedule→fire cycle through the typed path must
// not allocate once the heap and slot table have warmed up.
func TestTypedEventLoopAllocFree(t *testing.T) {
	s := New(1)
	s.SetDispatcher(func(kind, actor int32, arg time.Duration) {
		if kind < 8 {
			s.ScheduleEvent(time.Duration(s.Rand().Intn(1000))*time.Microsecond, kind+1, actor, arg)
		}
	})
	// Warm up the internal slices.
	for i := 0; i < 64; i++ {
		s.ScheduleEvent(time.Duration(i)*time.Microsecond, 0, int32(i), 0)
	}
	s.Run()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			s.ScheduleEvent(time.Duration(i)*time.Microsecond, 0, int32(i), 0)
		}
		s.Run()
	})
	if allocs != 0 {
		t.Fatalf("typed event loop allocated %v per cycle, want 0", allocs)
	}
}

func BenchmarkScheduleFire(b *testing.B) {
	b.ReportAllocs()
	s := New(1)
	s.SetDispatcher(func(kind, actor int32, arg time.Duration) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScheduleEvent(time.Duration(i%64)*time.Microsecond, 0, 0, 0)
		if i%64 == 63 {
			s.Run()
		}
	}
	s.Run()
}

func BenchmarkScheduleFireClosure(b *testing.B) {
	b.ReportAllocs()
	s := New(1)
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(time.Duration(i%64)*time.Microsecond, fn)
		if i%64 == 63 {
			s.Run()
		}
	}
	s.Run()
}

func TestResetReplaysIdentically(t *testing.T) {
	// A reset simulator must replay a schedule exactly as a fresh one,
	// reusing its storage: same firing order, same clock, same RNG stream,
	// and stale pre-reset handles must stay inert.
	run := func(s *Simulator) ([]int32, uint64) {
		var order []int32
		s.SetDispatcher(func(kind, actor int32, arg time.Duration) {
			order = append(order, actor)
			if kind == 1 {
				s.AtEvent(s.Now()+3*time.Millisecond, 0, actor+100, 0)
			}
		})
		s.AtEvent(2*time.Millisecond, 1, 1, 0)
		s.AtEvent(1*time.Millisecond, 0, 2, 0)
		id := s.AtEvent(5*time.Millisecond, 0, 3, 0)
		s.Cancel(id)
		s.Run()
		return order, s.rng.Uint64()
	}

	fresh := New(42)
	wantOrder, wantDraw := run(fresh)

	s := New(7)
	s.SetDispatcher(func(kind, actor int32, arg time.Duration) {})
	stale := s.AtEvent(time.Millisecond, 0, 0, 0)
	s.AtEvent(2*time.Millisecond, 0, 0, 0)
	s.Run()
	s.Reset(42)
	if s.Now() != 0 || s.Fired() != 0 || s.Pending() != 0 {
		t.Fatalf("Reset left state behind: now=%v fired=%d pending=%d", s.Now(), s.Fired(), s.Pending())
	}
	gotOrder, gotDraw := run(s)
	if len(gotOrder) != len(wantOrder) {
		t.Fatalf("firing counts differ: %v vs %v", gotOrder, wantOrder)
	}
	for i := range gotOrder {
		if gotOrder[i] != wantOrder[i] {
			t.Fatalf("firing order differs after Reset: %v vs %v", gotOrder, wantOrder)
		}
	}
	if gotDraw != wantDraw {
		t.Fatalf("RNG stream differs after Reset: %d vs %d", gotDraw, wantDraw)
	}
	// The pre-reset handle's slot generation was bumped: cancelling it now
	// must not disturb anything scheduled after the reset.
	s.Cancel(stale)
	if s.Cancelled(stale) {
		t.Fatal("stale pre-Reset handle reported cancelled")
	}
}

func TestResetReusesStorage(t *testing.T) {
	s := New(1)
	s.SetDispatcher(func(kind, actor int32, arg time.Duration) {})
	churn := func() {
		for i := 0; i < 256; i++ {
			s.ScheduleEvent(time.Duration(i)*time.Microsecond, 0, int32(i), 0)
		}
		s.Run()
	}
	churn()
	s.Reset(2)
	allocs := testing.AllocsPerRun(10, func() {
		churn()
		s.Reset(2)
	})
	if allocs > 0 {
		t.Fatalf("reset simulator allocated %v per cycle, want 0", allocs)
	}
}
