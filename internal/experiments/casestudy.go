package experiments

import (
	"fmt"
	"time"

	"dense802154/internal/core"
	"dense802154/internal/stats"
)

func init() {
	register(Experiment{
		Name:        "casestudy",
		Title:       "§5 headline: the 1600-node dense network",
		Description: "1600 nodes / 16 channels / 1 byte per 8 ms, 120-byte buffered packets at BO=6 (λ≈42%), path loss uniform 55-95 dB with link adaptation: average power, failure probability, delivery delay.",
		Run:         runCaseStudy,
	})
}

func runCaseStudy(opt Options) ([]*stats.Table, error) {
	p := caseStudyParams(opt)
	cfg := caseStudyConfig(opt)
	res, err := core.RunCaseStudyCtx(opt.ctx(), p, cfg)
	if err != nil {
		return nil, err
	}

	tbl := stats.NewTable("Case study: paper vs this reproduction",
		"metric", "paper", "reproduced")
	tbl.AddRow("channel load λ", "42%", fmt.Sprintf("%.1f%%", res.Load*100))
	tbl.AddRow("average power", "211 µW", res.AvgPower.String())
	tbl.AddRow("transmission failure", "16%", fmt.Sprintf("%.1f%%", res.MeanPrFail*100))
	tbl.AddRow("delivery delay", "1.45 s", res.MeanDelay.Round(10*time.Millisecond).String())
	tbl.AddRow("  (median)", "", res.MedianDelay.Round(10*time.Millisecond).String())
	tbl.AddRow("  (Tib/(1-P̄fail))", "", res.NominalDelay.Round(10*time.Millisecond).String())
	tbl.AddRow("energy per bit (mean)", "135-220 nJ/bit span", fmt.Sprintf("%.0f nJ/bit", res.MeanEnergyJ*1e9))
	tbl.AddRow("coverage", "efficient to 88 dB", fmt.Sprintf("%.1f%%", res.Coverage*100))
	tbl.AddRow("buffering delay", "960 ms", cfg.BufferingDelay(p.PayloadBytes).String())
	tbl.AddNote("the 100 µW energy-scavenging goal is missed by ≈2x, as the paper concludes")

	grid := stats.NewTable("Per-path-loss detail", "loss [dB]", "power [µW]", "PrFail", "TX level [dBm]")
	step := len(res.LossGrid) / 9
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(res.LossGrid); i += step {
		grid.AddRow(res.LossGrid[i], res.PowerUW[i], res.PrFail[i],
			p.Radio.TXLevels[res.LevelUsed[i]].DBm)
	}
	return []*stats.Table{tbl, grid}, nil
}
