package experiments

import (
	"fmt"

	"dense802154/internal/contention"
	"dense802154/internal/core"
	"dense802154/internal/stats"
)

func init() {
	register(Experiment{
		Name:        "fig8",
		Title:       "Fig. 8: energy per bit vs packet payload size",
		Description: "The MAC-overhead amortization study: link-adapted energy per bit as a function of payload size at several network loads; the paper finds a monotone decrease up to the 123-byte maximum.",
		Run:         runFig8,
	})
}

// Fig8Sizes returns the paper's Fig. 8 payload grid (bytes); the HTTP
// service uses it as the default /v1/sweep/payload grid.
func Fig8Sizes() []int {
	return []int{5, 10, 15, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120, 123}
}

func runFig8(opt Options) ([]*stats.Table, error) {
	sizes := Fig8Sizes()
	if opt.Quick {
		sizes = []int{10, 40, 80, 123}
	}
	src := contention.NewMCSource(mcConfig(opt))

	cols := []string{"payload [B]"}
	for _, l := range fig7Loads {
		cols = append(cols, fmt.Sprintf("λ=%.2f [nJ/bit]", l))
	}
	tbl := stats.NewTable("Fig. 8: energy per bit vs payload (path loss 75 dB)", cols...)
	curves := make([]stats.Series, len(fig7Loads))
	for li, l := range fig7Loads {
		p := core.DefaultParams()
		p.Workers = opt.Workers
		p.Contention = src
		p.Load = l
		s, err := core.EnergyVsPayloadCtx(opt.ctx(), p, sizes)
		if err != nil {
			return nil, err
		}
		curves[li] = s
	}
	for i, L := range sizes {
		row := []any{L}
		for li := range fig7Loads {
			row = append(row, curves[li].Y[i]*1e9)
		}
		tbl.AddRow(row...)
	}

	opt2 := stats.NewTable("Optimal payload per load", "load λ", "optimal payload [B]", "energy [nJ/bit]")
	for _, l := range fig7Loads {
		p := core.DefaultParams()
		p.Workers = opt.Workers
		p.Contention = src
		p.Load = l
		L, e, err := core.OptimalPayload(p, 10)
		if err != nil {
			return nil, err
		}
		opt2.AddRow(l, L, e*1e9)
	}
	opt2.AddNote("paper: 'the energy per bit decreases monotonically up to a packet payload size of 123 bytes'; 'reaching the optimum requires a larger packet size' than the standard allows")
	return []*stats.Table{tbl, opt2}, nil
}
