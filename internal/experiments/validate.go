package experiments

import (
	"fmt"
	"time"

	"dense802154/internal/core"
	"dense802154/internal/netsim"
	"dense802154/internal/radio"
	"dense802154/internal/stats"
)

func init() {
	register(Experiment{
		Name:        "validate",
		Title:       "VAL: analytical model vs discrete-event simulation",
		Description: "The case-study population run through both the paper's expected-value model (internal/core) and the cycle-accurate event simulator (internal/netsim); agreement validates the activation-policy accounting.",
		Run:         runValidate,
	})
}

func runValidate(opt Options) ([]*stats.Table, error) {
	superframes := 40
	if opt.Quick {
		superframes = 8
	}
	sim := netsim.Run(netsim.Config{
		Nodes:       100,
		Superframes: superframes,
		Seed:        opt.Seed,
	})
	params := caseStudyParams(opt)
	cs, err := core.RunCaseStudyCtx(opt.ctx(), params, caseStudyConfig(opt))
	if err != nil {
		return nil, err
	}
	modelCont := params.Contention.Contention(params.PayloadBytes, cs.Load)

	tbl := stats.NewTable("Model vs simulation (100-node channel, BO=6, 120 B)",
		"metric", "analytical model", "event simulation")
	tbl.AddRow("average power/node",
		cs.AvgPower.String(), sim.AvgPowerPerNode.String())
	tbl.AddRow("delivery delay (mean)",
		cs.MeanDelay.Round(time.Millisecond).String(), sim.MeanDelay.Round(time.Millisecond).String())
	tbl.AddRow("contention T̄cont",
		modelCont.Tcont.Round(time.Microsecond).String(), sim.Contention.Tcont.Round(time.Microsecond).String())
	tbl.AddRow("contention N̄CCA",
		fmt.Sprintf("%.2f", modelCont.NCCA), fmt.Sprintf("%.2f", sim.Contention.NCCA))
	tbl.AddRow("channel access failure",
		fmt.Sprintf("%.3f", modelCont.PrCF), fmt.Sprintf("%.3f", sim.Contention.PrCF))
	tbl.AddRow("delivery ratio (after app retries)", "—", fmt.Sprintf("%.1f%%", sim.DeliveryRatio*100))
	tbl.AddNote("the simulator retries collisions immediately, so its per-attempt collision rate exceeds the first-attempt Monte-Carlo figure; energy agreement is the validation target")

	// Phase shares side by side.
	shM := cs.Breakdown.Share()
	tot := float64(sim.Ledger.TotalEnergy())
	share := func(ph radio.Phase) float64 { return float64(sim.Ledger.ByPhase[ph]) / tot }
	simActive := share(radio.PhaseBeacon) + share(radio.PhaseContention) +
		share(radio.PhaseTransmit) + share(radio.PhaseAck) + share(radio.PhaseIFS)
	ph := stats.NewTable("Phase shares: model vs simulation", "phase", "model", "simulation")
	rows := []struct {
		name  string
		model float64
		sim   radio.Phase
	}{
		{"beacon", shM[0], radio.PhaseBeacon},
		{"contention", shM[1], radio.PhaseContention},
		{"transmit", shM[2], radio.PhaseTransmit},
		{"ack", shM[3], radio.PhaseAck},
		{"ifs", shM[4], radio.PhaseIFS},
	}
	for _, r := range rows {
		ph.AddRow(r.name, pct(r.model), pct(share(r.sim)/simActive))
	}
	return []*stats.Table{tbl, ph}, nil
}
