package experiments

import (
	"fmt"
	"time"

	"dense802154/internal/contention"
	"dense802154/internal/core"
	"dense802154/internal/mac"
	"dense802154/internal/stats"
)

// Extension experiments: quantifications of claims the paper makes in
// passing (§2), plus the design-choice ablations of DESIGN.md §5.

func init() {
	register(Experiment{
		Name:        "ble",
		Title:       "EXT1: Battery Life Extension mode in dense conditions",
		Description: "The paper rejects BLE (backoff exponent capped at 2) because dense contention would collide excessively; this quantifies collision/failure rates with and without BLE under burst arrivals.",
		Run:         runBLE,
	})
	register(Experiment{
		Name:        "gts",
		Title:       "EXT2: guaranteed time slots vs contention access",
		Description: "The paper's §2 argument that GTS cannot serve dense networks: the 7-descriptor capacity bound, plus the per-node energy a GTS grant would save compared to CSMA/CA.",
		Run:         runGTS,
	})
	register(Experiment{
		Name:        "contmodel",
		Title:       "ABL1: Monte-Carlo vs closed-form contention model",
		Description: "DESIGN.md ablation: the analytical energy model fed by the Fig. 6 Monte-Carlo characterization versus a memoryless closed-form approximation of slotted CSMA/CA.",
		Run:         runContModel,
	})
	register(Experiment{
		Name:        "arrival",
		Title:       "ABL2: packet arrival model",
		Description: "DESIGN.md ablation: contention statistics under statistically multiplexed (uniform) arrivals versus the all-at-beacon burst.",
		Run:         runArrival,
	})
}

func runBLE(opt Options) ([]*stats.Table, error) {
	base := mcConfig(opt)
	base.Arrival = contention.ArrivalAtBeacon
	base.TargetLoad = 0.42
	bleParams := mac.PaperParams()
	bleParams.BatteryLifeExt = true

	tbl := stats.NewTable("BLE vs standard CSMA/CA (burst arrivals, λ=0.42, 120 B)",
		"CSMA variant", "Pr_col", "Pr_cf", "loss (col∪cf)", "T̄cont [ms]")
	for _, row := range []struct {
		name string
		p    mac.CSMAParams
	}{
		{"standard (BE 3..5)", mac.PaperParams()},
		{"battery life extension (BE ≤ 2)", bleParams},
	} {
		cfg := base
		cfg.CSMA = row.p
		r := contention.Simulate(cfg)
		loss := 1 - (1-r.PrCF)*(1-r.PrCol)
		tbl.AddRow(row.name, r.PrCol, r.PrCF, loss, r.MeanContention.Seconds()*1e3)
	}
	tbl.AddNote("paper §2: 'in dense network conditions, this mode would result into an excessive collision rate'")
	return []*stats.Table{tbl}, nil
}

// zeroContention models a GTS transmission: no CCAs, no backoff, no
// collisions — the slot is dedicated.
type zeroContention struct{}

func (zeroContention) Contention(int, float64) contention.Stats {
	return contention.Stats{}
}

func runGTS(opt Options) ([]*stats.Table, error) {
	sf, err := mac.NewSuperframe(6, 6)
	if err != nil {
		return nil, err
	}
	capTbl := stats.NewTable("GTS capacity per superframe", "slots per node", "nodes served", "nodes wanting")
	for _, slots := range []uint8{1, 2, 3} {
		capTbl.AddRow(slots, mac.MaxNodesServed(sf, slots), 100)
	}
	capTbl.AddNote("at most 7 GTS descriptors exist (§7.2.2.1.3); the 100-node channel cannot be served — the paper's §2 argument")

	// Energy comparison: a GTS-served node skips the whole contention
	// procedure and never collides.
	p := caseStudyParams(opt)
	csma, err := core.Evaluate(p)
	if err != nil {
		return nil, err
	}
	q := p
	q.Contention = zeroContention{}
	gts, err := core.Evaluate(q)
	if err != nil {
		return nil, err
	}
	en := stats.NewTable("Per-node energy: CSMA/CA vs dedicated GTS (path loss 75 dB)",
		"access", "avg power", "PrFail", "delay")
	en.AddRow("slotted CSMA/CA", csma.AvgPower.String(),
		fmt.Sprintf("%.3f", csma.PrFail), csma.Delay.Round(time.Millisecond).String())
	en.AddRow("guaranteed time slot", gts.AvgPower.String(),
		fmt.Sprintf("%.3f", gts.PrFail), gts.Delay.Round(time.Millisecond).String())
	en.AddNote("GTS removes the ≈25%% contention share but only 7 of 100 nodes could have one")
	return []*stats.Table{capTbl, en}, nil
}

func runContModel(opt Options) ([]*stats.Table, error) {
	mc := contention.NewMCSource(mcConfig(opt))
	ap := contention.Approx{}

	cont := stats.NewTable("Contention statistics: Monte-Carlo vs closed form (120 B)",
		"load λ", "T̄cont MC [ms]", "T̄cont CF [ms]", "N̄CCA MC", "N̄CCA CF", "Pr_cf MC", "Pr_cf CF")
	for _, l := range []float64{0.1, 0.25, 0.42, 0.6, 0.8} {
		m := mc.Contention(120, l)
		a := ap.Contention(120, l)
		cont.AddRow(l, m.Tcont.Seconds()*1e3, a.Tcont.Seconds()*1e3,
			m.NCCA, a.NCCA, m.PrCF, a.PrCF)
	}

	// End-to-end effect on the headline number.
	power := stats.NewTable("Case-study average power by contention source",
		"contention source", "avg power", "PrFail")
	for _, row := range []struct {
		name string
		src  contention.Source
	}{
		{"Monte-Carlo (paper's method)", mc},
		{"closed-form approximation", ap},
	} {
		p := caseStudyParams(opt)
		p.Contention = row.src
		res, err := core.RunCaseStudyCtx(opt.ctx(), p, caseStudyConfig(opt))
		if err != nil {
			return nil, err
		}
		power.AddRow(row.name, res.AvgPower.String(), fmt.Sprintf("%.3f", res.MeanPrFail))
	}
	power.AddNote("the memoryless closed form ignores backoff synchronization after busy periods, underestimating contention cost at high load")
	return []*stats.Table{cont, power}, nil
}

func runArrival(opt Options) ([]*stats.Table, error) {
	tbl := stats.NewTable("Arrival model ablation (λ=0.42, 120 B)",
		"arrival", "T̄cont [ms]", "N̄CCA", "Pr_cf", "Pr_col")
	for _, row := range []struct {
		name string
		a    contention.ArrivalModel
	}{
		{"uniform in superframe (statistical multiplexing)", contention.ArrivalUniform},
		{"burst at beacon", contention.ArrivalAtBeacon},
	} {
		cfg := mcConfig(opt)
		cfg.TargetLoad = 0.42
		cfg.Arrival = row.a
		r := contention.Simulate(cfg)
		tbl.AddRow(row.name, r.MeanContention.Seconds()*1e3, r.MeanCCAs, r.PrCF, r.PrCol)
	}
	tbl.AddNote("the paper's 0.47%% idle-time share (Fig. 9b) requires the uniform model: an at-beacon burst would multiply contention time")
	return []*stats.Table{tbl}, nil
}
