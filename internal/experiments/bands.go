package experiments

import (
	"fmt"
	"time"

	"dense802154/internal/core"
	"dense802154/internal/frame"
	"dense802154/internal/netsim"
	"dense802154/internal/phy"
	"dense802154/internal/radio"
	"dense802154/internal/stats"
)

func init() {
	register(Experiment{
		Name:        "bands",
		Title:       "EXT6: why the 2450 MHz band (paper §2)",
		Description: "Time-on-air, transmit energy and channel capacity of the three 802.15.4-2003 bands for the case-study packet: the quantitative form of '2450 MHz allows higher datarate and offers more channels ... well suited for sensor networks with high network load'.",
		Run:         runBands,
	})
	register(Experiment{
		Name:        "ptr",
		Title:       "VAL2: transmission-count distribution (eqs. 7-8)",
		Description: "The geometric Ptr(i) of the model versus the empirical attempts histogram from the discrete-event simulator.",
		Run:         runPtr,
	})
}

func runBands(Options) ([]*stats.Table, error) {
	r := radio.CC2420()
	txPower := r.TXPowerAt(r.MaxTXLevel())
	onAir := frame.PaperPacketBytes(120)

	tbl := stats.NewTable("Band comparison for a 133-byte case-study packet",
		"band", "rate", "channels", "time on air", "TX energy", "nodes/ch at λ=0.42 (BO=6-eq.)")
	for _, b := range []phy.Band{phy.Band868, phy.Band915, phy.Band2450} {
		dur := time.Duration(onAir) * b.ByteDuration()
		e := txPower.Times(dur)
		// How many one-packet-per-983ms nodes fit at 42% occupancy.
		nodes := int(0.42 * 983.04e-3 / dur.Seconds())
		tbl.AddRow(b.Name,
			fmt.Sprintf("%.0f kb/s", b.BitRate/1000),
			b.Channels, dur.Round(time.Microsecond).String(), e.String(), nodes)
	}
	tbl.AddNote("the sub-GHz bands cost 6-12x more transmit energy per packet and support 16-119x fewer node-channels: the dense 1600-node scenario only closes in the 2450 MHz band")
	return []*stats.Table{tbl}, nil
}

func runPtr(opt Options) ([]*stats.Table, error) {
	superframes := 40
	if opt.Quick {
		superframes = 10
	}
	// Empirical distribution from the event simulator.
	sim := netsim.Run(netsim.Config{Nodes: 100, Superframes: superframes, Seed: opt.Seed})
	dist := sim.AttemptsDistribution()

	// Model prediction: Ptr(i) = p^(i-1)(1-p) with p = PrTF at the
	// population-median path loss, renormalized over delivered packets.
	p := caseStudyParams(opt)
	m, err := core.Evaluate(p)
	if err != nil {
		return nil, err
	}
	tbl := stats.NewTable("Ptr(i): model (eq. 7) vs event simulation",
		"transmissions i", "model Ptr(i|delivered)", "simulated")
	norm := 1 - pow(m.PrTF, p.NMax)
	for i := 1; i <= p.NMax; i++ {
		pred := pow(m.PrTF, i-1) * (1 - m.PrTF) / norm
		simv := 0.0
		if i-1 < len(dist) {
			simv = dist[i-1]
		}
		tbl.AddRow(i, pred, simv)
	}
	tbl.AddRow("E[tx]", m.ExpectedTx, "")
	tbl.AddNote("the simulated tail is heavier: colliding nodes retry in lockstep, correlating successive failures — a mechanism outside the model's independence assumption")
	return []*stats.Table{tbl}, nil
}

func pow(x float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= x
	}
	return out
}
