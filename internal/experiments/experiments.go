// Package experiments contains one driver per table and figure of the
// paper, each regenerating the corresponding rows/series from this
// repository's implementations, plus the validation and extension
// experiments listed in DESIGN.md §4.
//
// Every driver returns printable stats.Tables; cmd/wsn-experiments renders
// them to stdout and CSV, and the repository's top-level benchmarks invoke
// the same drivers.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"dense802154/internal/contention"
	"dense802154/internal/stats"
)

// Options tune an experiment run.
type Options struct {
	// Quick shrinks Monte-Carlo runs and sweep grids so the full suite
	// finishes in seconds (used by tests); the defaults reproduce the
	// paper-scale figures.
	Quick bool
	// Seed drives all randomized components.
	Seed int64
	// Workers bounds the goroutines of every concurrent stage (model
	// sweeps, Monte-Carlo shards, curve points): 1 runs serially, 0 uses
	// runtime.NumCPU(). Results are identical at any worker count.
	Workers int
	// Context, when non-nil, cancels the driver's sweeps: paper-scale
	// runs started on behalf of a remote client (the HTTP service) stop
	// promptly with Context.Err() when the client disconnects. A nil
	// Context means context.Background().
	Context context.Context
}

// ctx returns the run context, defaulting to context.Background().
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// DefaultOptions returns the paper-scale settings.
func DefaultOptions() Options { return Options{Seed: 2005} }

// Experiment is one registered driver.
type Experiment struct {
	// Name is the CLI identifier (e.g. "fig6").
	Name string
	// Title is the paper artifact it reproduces.
	Title string
	// Description summarizes what is computed.
	Description string
	// Run executes the driver.
	Run func(Options) ([]*stats.Table, error)
}

var registry = map[string]Experiment{}

// register adds an experiment at init time.
func register(e Experiment) {
	if _, dup := registry[e.Name]; dup {
		panic(fmt.Sprintf("experiments: duplicate %q", e.Name))
	}
	registry[e.Name] = e
}

// All returns the registered experiments sorted by name.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName looks up one experiment.
func ByName(name string) (Experiment, bool) {
	e, ok := registry[name]
	return e, ok
}

// mcSuperframes returns the Monte-Carlo run length for the options.
func mcSuperframes(opt Options) int {
	if opt.Quick {
		return 12
	}
	return 80
}

// mcConfig returns the base Monte-Carlo contention configuration for the
// options: run length, seed and worker count.
func mcConfig(opt Options) contention.Config {
	return contention.Config{
		Superframes: mcSuperframes(opt),
		Seed:        opt.Seed,
		Workers:     opt.Workers,
	}
}
