package experiments

import (
	"fmt"
	"time"

	"dense802154/internal/channel"
	"dense802154/internal/netsim"
	"dense802154/internal/radio"
	"dense802154/internal/stats"
)

func init() {
	register(Experiment{
		Name:        "fig5",
		Title:       "Fig. 5: MAC overheads of one uplink transaction",
		Description: "The radio state timeline of a single node's superframe — preemptive wake-up, beacon reception, contention (CCAs in RX, backoff in idle), transmission, acknowledgment, sleep — traced from the event simulator.",
		Run:         runFig5,
	})
}

func runFig5(opt Options) ([]*stats.Table, error) {
	// A two-node quiet channel so the traced transaction is clean.
	res := netsim.Run(netsim.Config{
		Nodes:       2,
		Superframes: 2,
		Seed:        opt.Seed,
		Deployment:  channel.UniformLoss{MinDB: 70, MaxDB: 71},
		TraceNode:   1,
	})
	if len(res.Trace) == 0 {
		return nil, fmt.Errorf("fig5: empty trace")
	}

	tbl := stats.NewTable("Uplink transaction timeline (one node, quiet channel)",
		"t", "radio state", "protocol phase")
	var prev netsim.TraceEvent
	for i, ev := range res.Trace {
		if i > 0 && ev.At == prev.At && ev.State == prev.State {
			continue
		}
		tbl.AddRow(ev.At.Round(time.Microsecond).String(), ev.State.String(), ev.Phase.String())
		prev = ev
		if i > 40 {
			tbl.AddNote("trace truncated after the first transactions")
			break
		}
	}
	tbl.AddNote("reading: shutdown→idle 970 µs before the beacon, RX for the beacon, idle/RX alternation during contention (each CCA = 194 µs turnaround + 128 µs assessment), idle→TX for the packet, TX→RX turnaround = t_ack−, sleep after the acknowledgment — the Fig. 5 sequence")

	// A summary of the phases observed in the first superframe.
	sum := stats.NewTable("Observed per-phase energy of the traced run (2 nodes)",
		"phase", "energy")
	for ph := 0; ph < radio.NumPhases; ph++ {
		if res.Ledger.ByPhase[ph] == 0 {
			continue
		}
		sum.AddRow(radio.Phase(ph).String(), res.Ledger.ByPhase[ph].String())
	}
	return []*stats.Table{tbl, sum}, nil
}
