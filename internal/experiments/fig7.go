package experiments

import (
	"fmt"

	"dense802154/internal/channel"
	"dense802154/internal/contention"
	"dense802154/internal/core"
	"dense802154/internal/stats"
)

func init() {
	register(Experiment{
		Name:        "fig7",
		Title:       "Fig. 7: optimal energy per bit vs path loss; link-adaptation thresholds",
		Description: "Link-adapted energy per bit across path loss for several network loads, the TX-level switching thresholds (crossings of the per-level curves), and the load-independence check.",
		Run:         runFig7,
	})
}

// fig7Loads follow the paper's "different network loads" families.
var fig7Loads = []float64{0.1, 0.25, 0.42, 0.6}

func runFig7(opt Options) ([]*stats.Table, error) {
	grid := channel.LossGrid(40, 95, 56)
	if opt.Quick {
		grid = channel.LossGrid(40, 95, 12)
	}
	src := contention.NewMCSource(mcConfig(opt))

	cols := []string{"path loss [dB]"}
	for _, l := range fig7Loads {
		cols = append(cols, fmt.Sprintf("λ=%.2f [nJ/bit]", l))
	}
	energy := stats.NewTable("Fig. 7: link-adapted energy per bit (120 B packets)", cols...)
	series := make([]stats.Series, len(fig7Loads))
	for li, l := range fig7Loads {
		p := core.DefaultParams()
		p.Workers = opt.Workers
		p.Contention = src
		p.Load = l
		s, err := core.AdaptedEnergySeriesCtx(opt.ctx(), p, grid)
		if err != nil {
			return nil, err
		}
		series[li] = s
	}
	for i, a := range grid {
		row := []any{a}
		for li := range fig7Loads {
			row = append(row, series[li].Y[i]*1e9)
		}
		energy.AddRow(row...)
	}
	energy.AddNote("paper: 135 nJ/bit below 55 dB to 220 nJ/bit at 88 dB; transmission efficient up to ≈88 dB")

	thr := stats.NewTable("Fig. 7 circles: TX power switching thresholds",
		"switch", "λ=0.10 [dB]", "λ=0.42 [dB]", "Δ [dB]")
	p := core.DefaultParams()
	p.Workers = opt.Workers
	p.Contention = src
	p.Load = 0.10
	th1, err := core.ThresholdsCtx(opt.ctx(), p, grid)
	if err != nil {
		return nil, err
	}
	p.Load = 0.42
	th2, err := core.ThresholdsCtx(opt.ctx(), p, grid)
	if err != nil {
		return nil, err
	}
	n := len(th1)
	if len(th2) < n {
		n = len(th2)
	}
	for i := 0; i < n; i++ {
		thr.AddRow(fmt.Sprintf("%+g→%+g dBm", th1[i].FromDBm, th1[i].ToDBm),
			th1[i].LossDB, th2[i].LossDB, th2[i].LossDB-th1[i].LossDB)
	}
	thr.AddNote("paper: 'the thresholds are independent of the network load' — Δ column should be ≈0")

	sav := stats.NewTable("Link adaptation savings vs always-0-dBm", "path loss [dB]", "savings")
	for _, a := range []float64{45, 55, 65, 75, 85} {
		p := core.DefaultParams()
		p.Workers = opt.Workers
		p.Contention = src
		s, err := core.AdaptationSavings(p, a)
		if err != nil {
			return nil, err
		}
		sav.AddRow(a, fmt.Sprintf("%.1f%%", s*100))
	}
	sav.AddNote("paper: 'adaptation of the transmit power can save up to 40%% of the total energy'")
	return []*stats.Table{energy, thr, sav}, nil
}
