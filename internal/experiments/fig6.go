package experiments

import (
	"fmt"

	"dense802154/internal/contention"
	"dense802154/internal/stats"
)

func init() {
	register(Experiment{
		Name:        "fig6",
		Title:       "Fig. 6: slotted CSMA/CA behaviour vs load and packet size",
		Description: "Monte-Carlo characterization of T̄cont, N̄CCA, Pr_cf and Pr_col for 10/20/50/100-byte packets across network loads (100-node channel, BO=6).",
		Run:         runFig6,
	})
}

// fig6Payloads are the packet sizes of the paper's Fig. 6.
var fig6Payloads = []int{10, 20, 50, 100}

func fig6Loads(opt Options) []float64 {
	if opt.Quick {
		return []float64{0.1, 0.4, 0.7}
	}
	return []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.6, 0.7, 0.8, 0.9}
}

func runFig6(opt Options) ([]*stats.Table, error) {
	loads := fig6Loads(opt)
	base := mcConfig(opt)
	curves := make([]contention.Curve, 0, len(fig6Payloads))
	for _, L := range fig6Payloads {
		curves = append(curves, contention.BuildCurve(L, loads, base))
	}

	mk := func(title, unit string, pick func(contention.Curve, int) float64) *stats.Table {
		cols := []string{"load λ"}
		for _, L := range fig6Payloads {
			cols = append(cols, fmt.Sprintf("%d B %s", L, unit))
		}
		t := stats.NewTable(title, cols...)
		for i, l := range loads {
			row := []any{l}
			for _, c := range curves {
				row = append(row, pick(c, i))
			}
			t.AddRow(row...)
		}
		return t
	}

	tcont := mk("Fig. 6a: mean contention duration T̄cont", "[ms]",
		func(c contention.Curve, i int) float64 { return c.TcontSec[i] * 1e3 })
	ncca := mk("Fig. 6b: mean CCAs per procedure N̄CCA", "",
		func(c contention.Curve, i int) float64 { return c.NCCA[i] })
	prcf := mk("Fig. 6c: channel access failure probability Pr_cf", "",
		func(c contention.Curve, i int) float64 { return c.PrCF[i] })
	prcol := mk("Fig. 6d: residual collision probability Pr_col", "",
		func(c contention.Curve, i int) float64 { return c.PrCol[i] })
	prcol.AddNote("all metrics grow with load; larger packets raise T̄cont and Pr_cf at equal load (longer busy periods)")
	return []*stats.Table{tcont, ncca, prcf, prcol}, nil
}
