package experiments

import (
	"fmt"
	"time"

	"dense802154/internal/battery"
	"dense802154/internal/core"
	"dense802154/internal/frame"
	"dense802154/internal/mac"
	"dense802154/internal/phy"
	"dense802154/internal/radio"
	"dense802154/internal/stats"
	"dense802154/internal/units"
)

func init() {
	register(Experiment{
		Name:        "bosweep",
		Title:       "EXT3: beacon order exploration (eq. 12)",
		Description: "Average power, failure probability and delivery delay across beacon orders: the power/latency trade of the superframe structure the paper fixes at BO=6.",
		Run:         runBOSweep,
	})
	register(Experiment{
		Name:        "lifetime",
		Title:       "EXT4: battery lifetime and the 100 µW scavenging budget",
		Description: "What the case-study power means in supply terms: coin-cell and AA lifetimes, the vibration-harvesting budget, and how far the §5 improvements move the node toward self-powered operation.",
		Run:         runLifetime,
	})
	register(Experiment{
		Name:        "downlink",
		Title:       "EXT5: indirect (downlink) transmission cost",
		Description: "The Fig. 1b indirect delivery: pending-address advertising, data request, downlink frame — per-exchange radio-on time and energy, versus the uplink transaction.",
		Run:         runDownlink,
	})
}

func runBOSweep(opt Options) ([]*stats.Table, error) {
	tbl := stats.NewTable("Beacon order sweep (100 nodes, 120 B, path loss 75 dB)",
		"BO", "Tib", "load λ", "avg power", "PrFail", "delay")
	p := caseStudyParams(opt)
	for bo := uint8(2); bo <= 10; bo++ {
		sf, err := mac.NewSuperframe(bo, bo)
		if err != nil {
			return nil, err
		}
		q := p
		q.Superframe = sf
		// One packet per node per superframe: the load follows Tib.
		q.Load = sf.ChannelLoad(100, frame.PaperPacketDuration(q.PayloadBytes))
		if q.Load > 1 {
			tbl.AddRow(bo, sf.BeaconInterval().String(),
				fmt.Sprintf("%.2f", q.Load), "overloaded", "—", "—")
			continue
		}
		m, err := core.Evaluate(q)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(bo, sf.BeaconInterval().String(), fmt.Sprintf("%.3f", q.Load),
			m.AvgPower.String(), fmt.Sprintf("%.3f", m.PrFail),
			m.Delay.Round(time.Millisecond).String())
	}
	tbl.AddNote("the paper picks BO=6: the smallest interval at which one 120 B packet per node per superframe stays below ≈42%% load")
	return []*stats.Table{tbl}, nil
}

func runLifetime(opt Options) ([]*stats.Table, error) {
	p := caseStudyParams(opt)
	cfg := caseStudyConfig(opt)
	imp, err := core.EvaluateImprovements(p, cfg, core.DefaultImprovements())
	if err != nil {
		return nil, err
	}

	powers := []struct {
		name string
		p    units.Power
	}{
		{"CC2420 baseline", imp.Baseline},
		{imp.Rows[0].Name, imp.Rows[0].AvgPower},
		{imp.Rows[1].Name, imp.Rows[1].AvgPower},
		{imp.Rows[2].Name, imp.Rows[2].AvgPower},
		{"scavenging budget", 100 * units.MicroWatt},
	}
	coin := battery.CoinCellCR2032()
	aa := battery.AACell()
	harv := battery.VibrationHarvester()
	aaHarv := aa.WithHarvest(100 * units.MicroWatt)

	tbl := stats.NewTable("Supply implications of the case-study node",
		"node", "power", "CR2032", "AA", "AA + 100 µW harvest", "self-powered?")
	for _, row := range powers {
		dc, _ := coin.Lifetime(row.p)
		da, _ := aa.Lifetime(row.p)
		dh, _ := aaHarv.Lifetime(row.p)
		tbl.AddRow(row.name, row.p.String(),
			battery.LifetimeString(dc), battery.LifetimeString(da),
			battery.LifetimeString(dh),
			fmt.Sprintf("%v", harv.Sustainable(row.p)))
	}
	tbl.AddNote("paper: 'an existing goal is ... on the order of 100 µW, which would allow the device to obtain its power from the environment by energy scavenging'")
	return []*stats.Table{tbl}, nil
}

func runDownlink(opt Options) ([]*stats.Table, error) {
	r := radio.CC2420()
	tia, _ := r.Transition(radio.Idle, radio.RX)

	tbl := stats.NewTable("Indirect downlink exchange (node side, per delivery)",
		"payload [B]", "request on air", "data on air", "node RX time", "node TX time", "radio energy")
	for _, L := range []int{5, 20, 60, 100} {
		ex := mac.NewDownlinkExchange(L)
		// Radio energy: RX (plus two turnarounds) and TX at full power.
		rxE := r.RXPower.Times(ex.RxOnTime + 2*tia.Duration)
		txE := r.TXPowerAt(r.MaxTXLevel()).Times(ex.TxOnTime)
		tbl.AddRow(L,
			phy.TxDuration(ex.RequestBytes).String(),
			phy.TxDuration(ex.DataBytes).String(),
			ex.RxOnTime.String(), ex.TxOnTime.String(),
			(rxE + txE).String())
	}
	tbl.AddNote("plus one CSMA contention for the data request — the uplink machinery reused; the paper models the uplink only because data-gathering traffic dominates")

	q := mac.NewIndirectQueue(0)
	for i := 0; i < 9; i++ {
		_ = q.Queue(uint16(i%7+1), []byte{byte(i)}, 0)
	}
	cap := stats.NewTable("Coordinator pending queue", "property", "value")
	cap.AddRow("max advertised destinations", mac.MaxPendingAddresses)
	cap.AddRow("queued frames (9 offered to 7 devices)", q.Len())
	cap.AddRow("beacon pending list", fmt.Sprintf("%v", q.Pending()))
	cap.AddNote("like GTS, the 7-entry pending list bounds downlink fan-out per beacon in a dense network")
	return []*stats.Table{tbl, cap}, nil
}
