package experiments

import (
	"fmt"

	"dense802154/internal/contention"
	"dense802154/internal/core"
	"dense802154/internal/stats"
)

func init() {
	register(Experiment{
		Name:        "fig9",
		Title:       "Fig. 9: energy-per-phase and time-per-state breakdowns",
		Description: "The case-study breakdowns: share of energy per protocol phase (9a) and share of time per radio state (9b), population-averaged over the 55-95 dB path-loss range.",
		Run:         runFig9,
	})
}

func caseStudyParams(opt Options) core.Params {
	p := core.DefaultParams()
	p.Workers = opt.Workers
	p.Contention = contention.NewMCSource(mcConfig(opt))
	return p
}

func caseStudyConfig(opt Options) core.CaseStudyConfig {
	cfg := core.DefaultCaseStudy()
	if opt.Quick {
		cfg.LossGridPoints = 11
	}
	return cfg
}

func runFig9(opt Options) ([]*stats.Table, error) {
	res, err := core.RunCaseStudyCtx(opt.ctx(), caseStudyParams(opt), caseStudyConfig(opt))
	if err != nil {
		return nil, err
	}
	sh := res.Breakdown.Share()
	phases := stats.NewTable("Fig. 9a: energy per protocol phase (population average)",
		"phase", "share", "paper")
	phases.AddRow("beacon", pct(sh[0]), "≈20%")
	phases.AddRow("contention", pct(sh[1]), "≈25%")
	phases.AddRow("transmit", pct(sh[2]), "<50%")
	phases.AddRow("ack", pct(sh[3]), "≈15%")
	phases.AddRow("ifs", pct(sh[4]), "(small)")
	phases.AddNote("paper: 'the effective transmission uses less than 50%% of the total energy'")

	fr := res.States.Fractions()
	states := stats.NewTable("Fig. 9b: time per radio state (population average)",
		"state", "share", "paper")
	states.AddRow("shutdown", pct(fr[0]), "98.77%")
	states.AddRow("idle", pct(fr[1]), "0.47%")
	states.AddRow("rx", pct(fr[2]), "0.28%")
	states.AddRow("tx", pct(fr[3]), "0.48%")
	return []*stats.Table{phases, states}, nil
}

func pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }
