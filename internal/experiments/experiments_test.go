package experiments

import (
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Quick: true, Seed: 7} }

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"arrival", "bands", "ble", "bosweep", "casestudy", "contmodel",
		"downlink", "drift", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "gts", "improvements", "join", "lifetime", "ptr",
		"shadowing", "sosweep", "validate",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.Name != want[i] {
			t.Errorf("experiment %d = %q, want %q", i, e.Name, want[i])
		}
		if e.Title == "" || e.Description == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("fig6"); !ok {
		t.Fatal("fig6 not found")
	}
	if _, ok := ByName("nonsense"); ok {
		t.Fatal("phantom experiment")
	}
}

// TestAllExperimentsRunQuick smoke-runs every driver at reduced scale and
// sanity-checks the emitted tables.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			tables, err := e.Run(quickOpts())
			if err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s returned no tables", e.Name)
			}
			for _, tb := range tables {
				if tb.Title == "" {
					t.Errorf("%s: table without title", e.Name)
				}
				if len(tb.Rows) == 0 {
					t.Errorf("%s: empty table %q", e.Name, tb.Title)
				}
				if tb.String() == "" || tb.CSV() == "" {
					t.Errorf("%s: unrenderable table %q", e.Name, tb.Title)
				}
			}
		})
	}
}

func TestFig3Content(t *testing.T) {
	tables, err := ByNameMust("fig3").Run(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := tables[0].String() + tables[1].String()
	for _, want := range []string{"35.28 mW", "712.8 µW", "144 nW", "970µs", "shutdown → idle"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig3 output missing %q", want)
		}
	}
}

func TestFig6Monotonicity(t *testing.T) {
	tables, err := ByNameMust("fig6").Run(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Table 2 (index 2) is Pr_cf: every column must grow down the rows.
	prcf := tables[2]
	if len(prcf.Rows) < 2 {
		t.Fatal("too few rows")
	}
	first := prcf.Rows[0]
	last := prcf.Rows[len(prcf.Rows)-1]
	for col := 1; col < len(first); col++ {
		if first[col] >= last[col] && first[col] != "0" {
			// String compare is crude; just require the last row nonzero.
			if last[col] == "0" {
				t.Errorf("Pr_cf column %d did not grow with load", col)
			}
		}
	}
}

func TestCaseStudyTableMentionsPaperNumbers(t *testing.T) {
	tables, err := ByNameMust("casestudy").Run(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := tables[0].String()
	for _, want := range []string{"211 µW", "16%", "1.45 s", "µW"} {
		if !strings.Contains(out, want) {
			t.Errorf("case study table missing %q:\n%s", want, out)
		}
	}
}

func TestGTSCapacityBound(t *testing.T) {
	tables, err := ByNameMust("gts").Run(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tables[0].String(), "7") {
		t.Error("GTS capacity table must show the 7-descriptor bound")
	}
}

// ByNameMust is a test helper.
func ByNameMust(name string) Experiment {
	e, ok := ByName(name)
	if !ok {
		panic("unknown experiment " + name)
	}
	return e
}
