package experiments

import (
	"fmt"
	"time"

	"dense802154/internal/core"
	"dense802154/internal/frame"
	"dense802154/internal/mac"
	"dense802154/internal/stats"
)

func init() {
	register(Experiment{
		Name:        "sosweep",
		Title:       "EXT7: duty-cycling the superframe (SO < BO)",
		Description: "The paper's §2 remark that beacon mode lets the transceiver sleep 'up to 15/16 of the time': shrinking the active period compresses the same traffic into a higher instantaneous load, trading failure probability for coordinator-side sleep.",
		Run:         runSOSweep,
	})
}

func runSOSweep(opt Options) ([]*stats.Table, error) {
	p := caseStudyParams(opt)
	tbl := stats.NewTable("Superframe order sweep at BO=6 (100 nodes, 120 B)",
		"SO", "duty cycle", "effective λ in CAP", "avg power", "PrFail", "delay")
	for so := uint8(6); ; so-- {
		sf, err := mac.NewSuperframe(6, so)
		if err != nil {
			return nil, err
		}
		// The same per-superframe traffic squeezed into the active
		// portion: the contention-relevant load scales by 2^(BO-SO).
		baseLoad := sf.ChannelLoad(100, frame.PaperPacketDuration(p.PayloadBytes))
		effLoad := baseLoad * float64(uint(1)<<(6-so))
		if effLoad >= 1 {
			tbl.AddRow(so, fmt.Sprintf("1/%d", 1<<(6-so)),
				fmt.Sprintf("%.2f", effLoad), "overloaded", "—", "—")
			if so == 0 {
				break
			}
			continue
		}
		q := p
		q.Superframe = sf
		q.Load = effLoad
		m, err := core.Evaluate(q)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(so, fmt.Sprintf("1/%d", 1<<(6-so)),
			fmt.Sprintf("%.3f", effLoad), m.AvgPower.String(),
			fmt.Sprintf("%.3f", m.PrFail), m.Delay.Round(time.Millisecond).String())
		if so == 0 {
			break
		}
	}
	tbl.AddNote("node-side power barely moves (the node sleeps outside its own transaction either way); the cost of duty-cycling is contention: at SO=4 the case-study channel is fully loaded")
	return []*stats.Table{tbl}, nil
}
