package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"dense802154/internal/channel"
	"dense802154/internal/core"
	"dense802154/internal/mac"
	"dense802154/internal/radio"
	"dense802154/internal/stats"
	"dense802154/internal/units"
)

func init() {
	register(Experiment{
		Name:        "join",
		Title:       "EXT8: network formation (association procedure)",
		Description: "The §7.5.3.1 association exchange each of the 1600 devices performs once: per-device radio cost and the coordinator's address-pool capacity.",
		Run:         runJoin,
	})
	register(Experiment{
		Name:        "drift",
		Title:       "EXT9: sleep-clock drift and the wake-up guard",
		Description: "The paper notes the CC2420's clock stops in shutdown, so 'additional hardware is required to stay synchronized': this quantifies the idle-energy cost of widening the preemptive wake-up lead to cover sleep-clock drift.",
		Run:         runDrift,
	})
	register(Experiment{
		Name:        "shadowing",
		Title:       "EXT10: link adaptation under stale channel estimates",
		Description: "Channel inversion assumes the beacon-measured path loss holds for the transmission; log-normal estimation error degrades the chosen level. Failure probability and power vs shadowing sigma.",
		Run:         runShadowing,
	})
}

func runJoin(Options) ([]*stats.Table, error) {
	ex := mac.NewAssociationExchange()
	r := radio.CC2420()
	txE := r.TXPowerAt(r.MaxTXLevel()).Times(ex.TxOnTime)
	rxE := r.RXPower.Times(ex.RxOnTime)
	idleE := r.IdlePower.Times(mac.ResponseWaitTime)

	tbl := stats.NewTable("Association exchange (device side)",
		"item", "value")
	tbl.AddRow("association request on air", fmt.Sprintf("%d B", ex.RequestBytes))
	tbl.AddRow("data-request poll on air", fmt.Sprintf("%d B", ex.PollBytes))
	tbl.AddRow("association response on air", fmt.Sprintf("%d B", ex.ResponseBytes))
	tbl.AddRow("device TX time", ex.TxOnTime.String())
	tbl.AddRow("device RX time", ex.RxOnTime.String())
	tbl.AddRow("response wait (idle)", mac.ResponseWaitTime.String())
	tbl.AddRow("radio energy (TX+RX)", (txE + rxE).String())
	tbl.AddRow("with idle response wait", (txE + rxE + idleE).String())
	tbl.AddNote("a one-time cost: ≈%.0f µJ ≈ the energy of %0.1f steady-state superframes",
		(txE + rxE + idleE).MicroJoules(), float64(txE+rxE+idleE)/(211e-6*0.983))

	pool := stats.NewTable("Coordinator address pool", "property", "value")
	p := mac.NewAddressPool(1)
	n := 0
	for {
		if _, err := p.Assign(); err != nil {
			break
		}
		n++
		if n > 70000 {
			break
		}
	}
	pool.AddRow("assignable short addresses", n)
	pool.AddRow("case-study population", 1600)
	pool.AddRow("pool utilization", fmt.Sprintf("%.1f%%", 1600.0/float64(n)*100))
	return []*stats.Table{tbl, pool}, nil
}

func runDrift(opt Options) ([]*stats.Table, error) {
	p := caseStudyParams(opt)
	tib := p.Superframe.BeaconInterval()
	tbl := stats.NewTable("Wake-up guard vs sleep-clock accuracy (BO=6)",
		"clock accuracy [ppm]", "guard time", "wake lead", "avg power", "Δ vs perfect")
	base := units.Power(0)
	for _, ppm := range []float64{0, 20, 40, 100, 250, 500} {
		guard := time.Duration(2 * ppm * 1e-6 * float64(tib))
		q := p
		q.WakeupLead = time.Millisecond + guard
		m, err := core.Evaluate(q)
		if err != nil {
			return nil, err
		}
		if ppm == 0 {
			base = m.AvgPower
		}
		tbl.AddRow(ppm, guard.Round(time.Microsecond).String(),
			q.WakeupLead.Round(time.Microsecond).String(), m.AvgPower.String(),
			fmt.Sprintf("+%.2f µW", (m.AvgPower-base).MicroWatts()))
	}
	tbl.AddNote("guard = 2·ppm·Tib of extra idle per superframe; even a 500 ppm RC sleep clock costs ≈0.7 µW at BO=6 — the paper's dedicated wake-up timer is cheap insurance, but the cost grows linearly with Tib")
	return []*stats.Table{tbl}, nil
}

func runShadowing(opt Options) ([]*stats.Table, error) {
	p := caseStudyParams(opt)
	rng := rand.New(rand.NewSource(opt.Seed))
	samples := 400
	if opt.Quick {
		samples = 60
	}
	tbl := stats.NewTable("Link adaptation with estimation error (population 55-95 dB)",
		"shadowing σ [dB]", "mean PrFail", "avg power", "mean level error")
	base := channel.UniformLoss{MinDB: 55, MaxDB: 95}
	for _, sigma := range []float64{0, 2, 4, 6, 8} {
		var prfail, power, lvlErr stats.Accumulator
		for i := 0; i < samples; i++ {
			estimated := base.Sample(rng)
			actual := estimated + rng.NormFloat64()*sigma
			if actual < 40 {
				actual = 40
			}
			// The node picks its level for the estimated loss...
			q := p
			q.PathLossDB = estimated
			lvl, err := core.OptimalTXLevel(q)
			if err != nil {
				return nil, err
			}
			// ...but experiences the actual loss.
			q.PathLossDB = actual
			q.TXLevelIndex = lvl
			m, err := core.Evaluate(q)
			if err != nil {
				return nil, err
			}
			// What it should have picked.
			q.TXLevelIndex = core.AutoTXLevel
			ideal, err := core.OptimalTXLevel(q)
			if err != nil {
				return nil, err
			}
			prfail.Add(m.PrFail)
			power.Add(float64(m.AvgPower))
			d := float64(lvl - ideal)
			if d < 0 {
				d = -d
			}
			lvlErr.Add(d)
		}
		tbl.AddRow(sigma, fmt.Sprintf("%.3f", prfail.Mean()),
			units.Power(power.Mean()).String(), fmt.Sprintf("%.2f", lvlErr.Mean()))
	}
	tbl.AddNote("stale estimates mainly hurt reliability (under-powered nodes near a threshold); the paper's slow-fading assumption (§3: coherence time exceeds the packet) is what keeps channel inversion viable")
	return []*stats.Table{tbl}, nil
}
