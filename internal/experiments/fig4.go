package experiments

import (
	"dense802154/internal/fit"
	"dense802154/internal/phy"
	"dense802154/internal/stats"
)

func init() {
	register(Experiment{
		Name:        "fig4",
		Title:       "Fig. 4 / eq. (1): bit error probability vs received power",
		Description: "Chip-level Monte-Carlo BER bench (the synthetic wired-attenuator testbed) swept over received power, with the exponential regression re-derived and compared to the paper's eq. (1).",
		Run:         runFig4,
	})
}

func runFig4(opt Options) ([]*stats.Table, error) {
	bench := phy.NewBench(opt.Seed)
	targetErrors, maxBits := 400, 4_000_000
	if opt.Quick {
		targetErrors, maxBits = 60, 400_000
	}
	points := bench.Sweep(-96, -86, 1, targetErrors, maxBits)

	tbl := stats.NewTable("BER vs received power (synthetic CC2420 bench, AWGN)",
		"PRx [dBm]", "measured BER", "eq.(1) BER", "bits simulated")
	var xs, ys []float64
	for _, p := range points {
		tbl.AddRow(p.PRxDBm, p.BER, phy.Eq1.BitErrorRate(p.PRxDBm), p.Bits)
		if p.BER > 0 {
			xs = append(xs, p.PRxDBm)
			ys = append(ys, p.BER)
		}
	}

	reg := stats.NewTable("Exponential regression (the paper's eq. 1 pipeline)",
		"model", "A", "B [1/dBm]", "R² (log)")
	if len(xs) >= 3 {
		e, err := fit.FitExponential(xs, ys)
		if err != nil {
			return nil, err
		}
		reg.AddRow("synthetic bench", e.A, e.B, e.R2)
	}
	reg.AddRow("paper eq.(1)", phy.Eq1.A, phy.Eq1.B, "n/a")
	reg.AddNote("the synthetic O-QPSK/DSSS bench has a steeper waterfall than the measured CC2420 (no analog impairments); shape and pipeline match, coefficients differ — see EXPERIMENTS.md")
	sens := stats.NewTable("Receiver sensitivity (1% PER, 20-byte PSDU)",
		"model", "sensitivity [dBm]")
	sens.AddRow("paper eq.(1) regression", phy.Sensitivity(phy.Eq1))
	sens.AddRow("CC2420 datasheet", -95.0)
	return []*stats.Table{tbl, reg, sens}, nil
}
