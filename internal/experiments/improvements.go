package experiments

import (
	"fmt"

	"dense802154/internal/core"
	"dense802154/internal/stats"
)

func init() {
	register(Experiment{
		Name:        "improvements",
		Title:       "§5-§6 improvement perspectives",
		Description: "The two radio-architecture ablations: 2x faster state transitions (paper: -12% average power) and a scalable receiver with a low-power listen mode for CCA/ACK-wait (paper: an additional -15%).",
		Run:         runImprovements,
	})
}

func runImprovements(opt Options) ([]*stats.Table, error) {
	p := caseStudyParams(opt)
	cfg := caseStudyConfig(opt)
	res, err := core.EvaluateImprovements(p, cfg, core.DefaultImprovements())
	if err != nil {
		return nil, err
	}
	tbl := stats.NewTable("Improvement perspectives (case-study scenario)",
		"radio", "avg power", "reduction", "paper")
	tbl.AddRow("CC2420 baseline", res.Baseline.String(), "—", "211 µW")
	paper := []string{"-12%", "-15% (additional)", ""}
	for i, r := range res.Rows {
		tbl.AddRow(r.Name, r.AvgPower.String(), fmt.Sprintf("-%.1f%%", r.Reduction*100), paper[i])
	}
	tbl.AddNote("paper §6: 'these physical level improvements combined with continued MAC optimizations will allow for energy efficient, self-powered sensor networks'")
	return []*stats.Table{tbl}, nil
}
