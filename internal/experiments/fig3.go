package experiments

import (
	"fmt"

	"dense802154/internal/radio"
	"dense802154/internal/stats"
)

func init() {
	register(Experiment{
		Name:        "fig3",
		Title:       "Fig. 3: CC2420 steady-state and transient characterization",
		Description: "Radio state powers, TX level currents, and state-transition times/energies embedded from the paper's measurements.",
		Run:         runFig3,
	})
}

func runFig3(Options) ([]*stats.Table, error) {
	c := radio.CC2420()

	states := stats.NewTable("CC2420 steady-state power (VDD = 1.8 V)",
		"state", "current", "power", "paper")
	states.AddRow("shutdown", "80 nA", c.ShutdownPower.String(), "144 nW")
	states.AddRow("idle", "396 µA", c.IdlePower.String(), "712 µW")
	states.AddRow("rx", "19.6 mA", c.RXPower.String(), "35.28 mW")
	for _, l := range c.TXLevels {
		idx, _ := c.LevelIndexFor(l.DBm)
		states.AddRow(fmt.Sprintf("tx @ %+g dBm", l.DBm),
			fmt.Sprintf("%.3g mA", l.CurrentA*1e3),
			c.TXPowerAt(idx).String(), "")
	}

	trans := stats.NewTable("CC2420 state transitions (E = T × P(arrival state))",
		"transition", "time", "energy", "paper")
	row := func(from, to radio.State, paper string) {
		tr, ok := c.Transition(from, to)
		if !ok {
			return
		}
		trans.AddRow(fmt.Sprintf("%v → %v", from, to), tr.Duration.String(), tr.Energy.String(), paper)
	}
	row(radio.Shutdown, radio.Idle, "970 µs / 691 nJ (printed pJ)")
	row(radio.Idle, radio.RX, "194 µs / 6.63 µJ")
	row(radio.Idle, radio.TX, "194 µs / 6.63 µJ")
	row(radio.RX, radio.TX, "aTurnaroundTime 192 µs")
	row(radio.TX, radio.RX, "aTurnaroundTime 192 µs")
	trans.AddNote("the paper's '691 pJ' is 970 µs × 712.8 µW = 691 nJ; the unit is treated as a typo")
	return []*stats.Table{states, trans}, nil
}
