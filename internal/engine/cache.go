package engine

import "sync"

// Cache is a memoizing single-flight map: Get computes the value for a key
// exactly once, even under concurrent requests, and serves every later
// request from memory. The zero value is an unbounded cache ready for use;
// SetLimit bounds it with LRU eviction. It backs the shared contention
// cache: a sweep that evaluates many model points at the same (payload,
// load, contention config) simulates the Monte-Carlo characterization once
// instead of once per point, and a long-running service sweeping an
// unbounded parameter space stays within a fixed memory budget.
type Cache[K comparable, V any] struct {
	mu    sync.Mutex
	limit int
	m     map[K]*cacheEntry[K, V]
	// Intrusive recency list: head is most recently used, tail least.
	head, tail *cacheEntry[K, V]

	hits, misses, evictions uint64
}

type cacheEntry[K comparable, V any] struct {
	key        K
	once       sync.Once
	val        V
	done       bool // guarded by Cache.mu; set after once completes
	prev, next *cacheEntry[K, V]
}

// CacheStats is a snapshot of a cache's counters.
type CacheStats struct {
	// Hits counts Gets served from an existing entry (including entries
	// still computing that the caller then waited on).
	Hits uint64
	// Misses counts Gets that had to create the entry and run compute.
	Misses uint64
	// Evictions counts entries dropped by the LRU bound (Reset not
	// included).
	Evictions uint64
	// Entries is the current number of cached keys.
	Entries int
	// Limit is the configured bound (0 = unbounded).
	Limit int
}

// HitRate reports Hits/(Hits+Misses), 0 when the cache is untouched.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// SetLimit bounds the cache to at most n entries, evicting least recently
// used entries when the bound is exceeded; n ≤ 0 removes the bound. The
// bound is enforced immediately and on every later insertion. Entries whose
// computation is still in flight are never evicted, so the instantaneous
// size can transiently exceed n by the number of concurrent computations.
func (c *Cache[K, V]) SetLimit(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 0 {
		n = 0
	}
	c.limit = n
	c.evictLocked()
}

// Limit reports the configured entry bound (0 = unbounded).
func (c *Cache[K, V]) Limit() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.limit
}

// Get returns the cached value for key, running compute under a per-key
// sync.Once on a miss. Concurrent callers with the same key block until the
// single computation finishes and then share its result. Get refreshes the
// key's recency; a miss may evict the least recently used completed entry
// when a limit is set.
func (c *Cache[K, V]) Get(key K, compute func() V) V {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*cacheEntry[K, V])
	}
	e, ok := c.m[key]
	if ok {
		c.hits++
		c.moveToFrontLocked(e)
	} else {
		c.misses++
		e = &cacheEntry[K, V]{key: key}
		c.m[key] = e
		c.pushFrontLocked(e)
		c.evictLocked()
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.val = compute()
		c.mu.Lock()
		e.done = true
		c.mu.Unlock()
	})
	return e.val
}

// Len reports the number of cached keys (including any still computing).
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats snapshots the cache counters.
func (c *Cache[K, V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.m),
		Limit:     c.limit,
	}
}

// Reset drops every cached entry, keeping the limit and the cumulative
// hit/miss/eviction counters. Long-running services sweeping unbounded
// parameter spaces can Reset between sweeps; with a SetLimit bound in place
// the cache also polices itself.
func (c *Cache[K, V]) Reset() {
	c.mu.Lock()
	c.m = nil
	c.head, c.tail = nil, nil
	c.mu.Unlock()
}

// pushFrontLocked inserts e at the recency head. Callers hold c.mu.
func (c *Cache[K, V]) pushFrontLocked(e *cacheEntry[K, V]) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// moveToFrontLocked refreshes e's recency. Callers hold c.mu.
func (c *Cache[K, V]) moveToFrontLocked(e *cacheEntry[K, V]) {
	if c.head == e {
		return
	}
	c.unlinkLocked(e)
	c.pushFrontLocked(e)
}

// unlinkLocked removes e from the recency list. Callers hold c.mu.
func (c *Cache[K, V]) unlinkLocked(e *cacheEntry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// evictLocked drops completed entries from the LRU tail until the bound
// holds. In-flight entries are skipped: evicting one would let a concurrent
// Get for the same key start a duplicate computation. Callers hold c.mu.
func (c *Cache[K, V]) evictLocked() {
	if c.limit <= 0 {
		return
	}
	for e := c.tail; e != nil && len(c.m) > c.limit; {
		prev := e.prev
		if e.done {
			c.unlinkLocked(e)
			delete(c.m, e.key)
			c.evictions++
		}
		e = prev
	}
}
