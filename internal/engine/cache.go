package engine

import "sync"

// Cache is a memoizing single-flight map: Get computes the value for a key
// exactly once, even under concurrent requests, and serves every later
// request from memory. The zero value is ready for use. It backs the shared
// contention cache: a sweep that evaluates many model points at the same
// (payload, load, contention config) simulates the Monte-Carlo
// characterization once instead of once per point.
type Cache[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*cacheEntry[V]
}

type cacheEntry[V any] struct {
	once sync.Once
	val  V
}

// Get returns the cached value for key, running compute under a per-key
// sync.Once on a miss. Concurrent callers with the same key block until the
// single computation finishes and then share its result.
func (c *Cache[K, V]) Get(key K, compute func() V) V {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*cacheEntry[V])
	}
	e, ok := c.m[key]
	if !ok {
		e = &cacheEntry[V]{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val = compute() })
	return e.val
}

// Len reports the number of cached keys (including any still computing).
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Reset drops every cached entry. Long-running services sweeping unbounded
// parameter spaces should Reset between sweeps to bound memory.
func (c *Cache[K, V]) Reset() {
	c.mu.Lock()
	c.m = nil
	c.mu.Unlock()
}
