package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheSingleFlightAndCounters(t *testing.T) {
	var c Cache[int, int]
	var computes atomic.Int64

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				got := c.Get(i%10, func() int {
					computes.Add(1)
					return i % 10 * 7
				})
				if got != i%10*7 {
					t.Errorf("Get(%d) = %d", i%10, got)
				}
			}
		}()
	}
	wg.Wait()

	if n := computes.Load(); n != 10 {
		t.Fatalf("computes = %d, want 10 (single flight)", n)
	}
	s := c.Stats()
	if s.Misses != 10 || s.Hits != 790 || s.Entries != 10 {
		t.Fatalf("stats = %+v, want 10 misses / 790 hits / 10 entries", s)
	}
	if hr := s.HitRate(); hr <= 0.9 {
		t.Fatalf("hit rate = %v, want > 0.9", hr)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	var c Cache[int, int]
	c.SetLimit(3)
	for i := 0; i < 5; i++ {
		c.Get(i, func() int { return i })
	}
	if got := c.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	s := c.Stats()
	if s.Evictions != 2 || s.Limit != 3 {
		t.Fatalf("stats = %+v, want 2 evictions at limit 3", s)
	}
	// 0 and 1 were least recently used and must have been evicted; 2-4
	// must still be resident (their compute funcs must not rerun).
	for i := 2; i < 5; i++ {
		if got := c.Get(i, func() int { return -1 }); got != i {
			t.Fatalf("entry %d was evicted (got %d)", i, got)
		}
	}
	// Touch 2 so 3 becomes the LRU victim of the next insertion.
	c.Get(2, func() int { return -1 })
	c.Get(99, func() int { return 99 })
	if got := c.Get(3, func() int { return -1 }); got != -1 {
		t.Fatal("entry 3 survived though it was the LRU victim")
	}
	if got := c.Get(2, func() int { return -1 }); got != 2 {
		t.Fatal("recently touched entry 2 was evicted")
	}
}

func TestCacheSetLimitShrinksImmediately(t *testing.T) {
	var c Cache[int, int]
	for i := 0; i < 10; i++ {
		c.Get(i, func() int { return i })
	}
	c.SetLimit(4)
	if got := c.Len(); got != 4 {
		t.Fatalf("Len after SetLimit(4) = %d, want 4", got)
	}
	c.SetLimit(0) // unbounded again
	for i := 0; i < 10; i++ {
		c.Get(100+i, func() int { return i })
	}
	if got := c.Len(); got != 14 {
		t.Fatalf("Len unbounded = %d, want 14", got)
	}
}

func TestCacheInFlightEntriesAreNotEvicted(t *testing.T) {
	var c Cache[int, int]
	c.SetLimit(1)

	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan int)
	go func() {
		done <- c.Get(1, func() int {
			close(started)
			<-release
			return 42
		})
	}()
	<-started
	// Insertions while key 1 is still computing cannot evict it.
	for i := 2; i < 6; i++ {
		c.Get(i, func() int { return i })
	}
	close(release)
	if got := <-done; got != 42 {
		t.Fatalf("in-flight Get = %d, want 42", got)
	}
	// Key 1 completed and must now be resident (it is the most recent
	// completion still linked); a second Get must not recompute.
	if got := c.Get(1, func() int { return -1 }); got != 42 {
		t.Fatalf("re-Get(1) = %d, want cached 42", got)
	}
}

func TestCacheResetKeepsLimitAndCounters(t *testing.T) {
	var c Cache[string, int]
	c.SetLimit(5)
	c.Get("a", func() int { return 1 })
	c.Get("a", func() int { return 2 })
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("Reset did not drop entries")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Limit != 5 {
		t.Fatalf("stats after Reset = %+v, want counters and limit kept", s)
	}
	if got := c.Get("a", func() int { return 3 }); got != 3 {
		t.Fatalf("Get after Reset = %d, want recomputed 3", got)
	}
}

func TestCacheConcurrentWithEviction(t *testing.T) {
	var c Cache[int, int]
	c.SetLimit(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (g*31 + i) % 40
				if got := c.Get(k, func() int { return k * 3 }); got != k*3 {
					t.Errorf("Get(%d) = %d", k, got)
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Len(); got > 8 {
		t.Fatalf("Len = %d, want ≤ 8 after all computations settle", got)
	}
}

func BenchmarkCacheGetHit(b *testing.B) {
	var c Cache[int, int]
	c.Get(1, func() int { return 1 })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Get(1, func() int { return 1 })
	}
}

func ExampleCache() {
	var c Cache[string, string]
	c.SetLimit(100)
	v := c.Get("fig6", func() string { return "simulated" })
	fmt.Println(v, c.Stats().Misses)
	// Output: simulated 1
}
