package engine

import (
	"math"
	"math/rand"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	a = NewRNG(42)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("adjacent seeds collided %d/1000 times", same)
	}
}

func TestRNGSeedResets(t *testing.T) {
	r := NewRNG(7)
	first := r.Uint64()
	r.Uint64()
	r.Seed(7)
	if got := r.Uint64(); got != first {
		t.Fatalf("Seed did not reset the stream: %d vs %d", got, first)
	}
}

func TestRNGZeroValueUsable(t *testing.T) {
	var r RNG
	if r.Uint64() == r.Uint64() {
		t.Fatal("zero-value RNG stuck")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	var min, max float64 = 1, 0
	for i := 0; i < 100_000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
	}
	if min > 0.01 || max < 0.99 {
		t.Fatalf("Float64 poorly spread: min=%v max=%v", min, max)
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(2)
	const n = 200_000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ≈0.5", mean)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for _, n := range []int{1, 2, 3, 7, 8, 1000} {
		seen := make([]bool, n)
		for i := 0; i < 50*n; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			seen[v] = true
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("Intn(%d) never produced %d", n, v)
			}
		}
	}
}

func TestRNGIntnUniform(t *testing.T) {
	// Chi-square smoke test over 10 buckets (non-power-of-two path).
	r := NewRNG(4)
	const n, buckets = 100_000, 10
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	expect := float64(n) / buckets
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expect
		chi2 += d * d / expect
	}
	// 9 degrees of freedom: p=0.001 critical value ≈ 27.9.
	if chi2 > 27.9 {
		t.Fatalf("Intn chi-square = %v over %v counts", chi2, counts)
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	r := NewRNG(1)
	r.Intn(0)
}

func TestRNGInt63nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int63n(-1) must panic")
		}
	}()
	r := NewRNG(1)
	r.Int63n(-1)
}

// TestRNGIsSource64 proves RNG plugs into math/rand for cold paths.
func TestRNGIsSource64(t *testing.T) {
	r := NewRNG(99)
	var src rand.Source64 = &r
	wrapped := rand.New(src)
	for i := 0; i < 1000; i++ {
		if f := wrapped.Float64(); f < 0 || f >= 1 {
			t.Fatalf("wrapped Float64 out of range: %v", f)
		}
		if v := wrapped.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("wrapped Intn out of range: %d", v)
		}
	}
}

// TestRNGAllocFree proves the generator itself never allocates.
func TestRNGAllocFree(t *testing.T) {
	r := NewRNG(5)
	allocs := testing.AllocsPerRun(1000, func() {
		_ = r.Uint64()
		_ = r.Float64()
		_ = r.Intn(17)
		_ = r.Int63n(1 << 20)
	})
	if allocs != 0 {
		t.Fatalf("RNG allocated %v per op, want 0", allocs)
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	b.ReportAllocs()
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkMathRandUint64(b *testing.B) {
	b.ReportAllocs()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
