package engine

import "testing"

// These property tests pin the domain-separation contract DeriveSeed's
// callers depend on: netsim derives per-node streams from
// DeriveSeed(DeriveSeed(seed, -1), node), the contention shards use
// DeriveSeed(seed, shard) and replica sets use DeriveSeed(seed, replica).
// Bit-identical worker-count independence only holds if none of those
// streams ever alias.

// propertyRoots samples the seed space: small, negative, large-magnitude
// and structured roots, plus the repository's conventional seeds.
var propertyRoots = []int64{0, 1, -1, 2, 2005, 31, -7044522787605953217, 1 << 62, -(1 << 62), 123456789}

// TestDeriveSeedStreamsShareNoPrefix: for one root, the RNG streams seeded
// by DeriveSeed(root, i) and DeriveSeed(root, j), i ≠ j, must not share a
// 64-bit output anywhere in their first 1000 draws — in particular no
// shared prefix, which would correlate "independent" replicas.
func TestDeriveSeedStreamsShareNoPrefix(t *testing.T) {
	const streams = 64
	const draws = 1000
	for _, root := range propertyRoots {
		seen := make(map[uint64]int, streams*draws) // value → stream index
		for i := 0; i < streams; i++ {
			rng := NewRNG(DeriveSeed(root, int64(i)))
			for d := 0; d < draws; d++ {
				v := rng.Uint64()
				if other, dup := seen[v]; dup && other != i {
					t.Fatalf("root %d: streams %d and %d both emit %#x within %d draws",
						root, other, i, v, draws)
				}
				seen[v] = i
			}
		}
	}
}

// TestDeriveSeedFirstDrawsDistinct: the very first draw of every derived
// stream is distinct — the "no shared prefix" property at its strictest.
func TestDeriveSeedFirstDrawsDistinct(t *testing.T) {
	const streams = 4096
	for _, root := range propertyRoots {
		first := make(map[uint64]int64, streams)
		for i := int64(0); i < streams; i++ {
			rng := NewRNG(DeriveSeed(root, i))
			v := rng.Uint64()
			if j, dup := first[v]; dup {
				t.Fatalf("root %d: streams %d and %d share first draw %#x", root, j, i, v)
			}
			first[v] = i
		}
	}
}

// TestDeriveSeedDomainSeparation: the node domain (a derived sub-root, as
// netsim uses via DeriveSeed(seed, -1)) must never collide with the shard
// domain (direct child streams of the same seed) — otherwise a
// cross-validation study driving both models off one seed would correlate
// a node's stream with a Monte-Carlo shard's.
func TestDeriveSeedDomainSeparation(t *testing.T) {
	const span = 1024
	for _, root := range propertyRoots {
		nodeRoot := DeriveSeed(root, -1)
		direct := make(map[int64]int64, span)
		for j := int64(0); j < span; j++ {
			direct[DeriveSeed(root, j)] = j
		}
		for i := int64(0); i < span; i++ {
			s := DeriveSeed(nodeRoot, i)
			if j, hit := direct[s]; hit {
				t.Fatalf("root %d: node stream %d collides with shard stream %d (seed %#x)",
					root, i, j, uint64(s))
			}
			if s == nodeRoot {
				t.Fatalf("root %d: node stream %d reproduces its own sub-root", root, i)
			}
		}
	}
}

// TestDeriveSeedDeterministicAndSensitive: the derivation is a pure
// function of (root, stream), and flipping either argument changes the
// child seed.
func TestDeriveSeedDeterministicAndSensitive(t *testing.T) {
	for _, root := range propertyRoots {
		for i := int64(0); i < 64; i++ {
			a, b := DeriveSeed(root, i), DeriveSeed(root, i)
			if a != b {
				t.Fatalf("DeriveSeed(%d, %d) not deterministic: %d vs %d", root, i, a, b)
			}
			if DeriveSeed(root, i) == DeriveSeed(root, i+1) {
				t.Fatalf("DeriveSeed(%d, %d) equals stream %d", root, i, i+1)
			}
			if DeriveSeed(root, i) == DeriveSeed(root+1, i) {
				t.Fatalf("DeriveSeed(%d, %d) equals root %d", root, i, root+1)
			}
		}
	}
}
