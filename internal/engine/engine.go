// Package engine provides the concurrent batch-evaluation primitives every
// layer of the repository shares: a bounded worker pool with deterministic
// result ordering (Map, MapSlice), a deterministic per-task seed derivation
// (DeriveSeed) and a memoizing single-flight cache (Cache).
//
// # Concurrency and determinism contract
//
// Every sweep in this repository — the Fig. 6 contention curves, the Fig. 7/8
// energy sweeps, the §5 case-study integration — is a batch of independent
// evaluations. The engine runs such batches on a pool of workers under the
// following contract:
//
//   - Results are identified by task index, never by completion order.
//     Map/MapSlice write task i's result into slot i, so the assembled output
//     is identical at any worker count.
//   - Randomized tasks must derive their seed from the run seed and their
//     task index via DeriveSeed, never from shared RNG state. A task's random
//     stream then depends only on (run seed, index), making the whole batch
//     bit-identical at Workers = 1, 4 or NumCPU.
//   - Errors are deterministic too: Map reports the error of the
//     lowest-indexed failing task, regardless of which worker hit it first.
//   - Cancellation is prompt: once ctx is canceled no new task starts, and
//     Map returns ctx.Err() after in-flight tasks drain.
//
// Expensive memoizable computations (one Monte-Carlo contention
// characterization per (payload, load, config) point, say) go through Cache,
// which guarantees a value is computed exactly once even when many workers
// request the same key concurrently.
package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ResolveWorkers normalizes a worker-count request: n ≥ 1 is used as given;
// zero or negative selects runtime.NumCPU(). It is the single authority on
// that rule — the core sweeps (via Map/MapSlice), netsim.RunReplicas and the
// service worker-token limiter all resolve their Workers knobs here, so "0
// means the whole machine" cannot drift between layers.
func ResolveWorkers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.NumCPU()
}

// Map runs fn(0), …, fn(n-1) on a pool of workers (0 ⇒ NumCPU) and waits for
// completion. fn must write any output it produces into caller-owned storage
// at its own index; the engine guarantees no index runs twice.
//
// If any task fails, the remaining tasks are abandoned and the error of the
// lowest-indexed failing task is returned. If ctx is canceled first, no new
// task starts and ctx.Err() is returned.
func Map(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = ResolveWorkers(workers)
	if workers > n {
		workers = n
	}
	taskBatches.Inc()
	batchStart := time.Now()
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			taskStart := time.Now()
			err := fn(i)
			observeTask(batchStart, taskStart, time.Now())
			if err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next   int64 = -1
		failed atomic.Bool
		errs   = make([]error, n)
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() || ctx.Err() != nil {
					return
				}
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				taskStart := time.Now()
				err := fn(i)
				observeTask(batchStart, taskStart, time.Now())
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// MapSlice applies fn to every element of in on a worker pool and returns
// the results in input order. See Map for the concurrency, determinism and
// error contract.
func MapSlice[T, R any](ctx context.Context, workers int, in []T, fn func(i int, v T) (R, error)) ([]R, error) {
	out := make([]R, len(in))
	err := Map(ctx, workers, len(in), func(i int) error {
		r, err := fn(i, in[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DeriveSeed maps a run seed and a task/stream index to an independent child
// seed with a splitmix64 finalizer. The derivation is pure, so any shard of
// a batch can recompute its seed from (root, stream) alone — the foundation
// of the worker-count-independent determinism contract.
func DeriveSeed(root, stream int64) int64 {
	z := uint64(root) + (uint64(stream)+1)*0x9E3779B97F4A7C15
	if z == 0 {
		// The splitmix64 finalizer fixes zero, so a zero pre-mix input
		// would hand the caller back seed 0 — and with it its own root:
		// DeriveSeed(0, -1) was 0, collapsing netsim's node-stream domain
		// onto the shard/replica domains for the default seed. Displace
		// the one degenerate input with a constant that is no reachable
		// multiple of the gamma (its gamma-quotient is ≈ 2^63), so the
		// displaced stream cannot alias another stream of the same root.
		z = 0xD1B54A32D192ED03
	}
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
