package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 0} {
		const n = 100
		counts := make([]int32, n)
		err := Map(context.Background(), workers, n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestMapResultsAreOrderDeterministic(t *testing.T) {
	const n = 64
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		got, err := MapSlice(context.Background(), workers, want, func(i, v int) (int, error) {
			return v, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	// Run many times: whichever worker fails first, the reported error must
	// be the lowest-indexed one among the recorded failures. With two
	// always-failing tasks the lowest index is only guaranteed to win when
	// it is recorded, so make every task beyond index 3 fail too and check
	// the winner is never from the tail.
	for trial := 0; trial < 20; trial++ {
		err := Map(context.Background(), 4, 32, func(i int) error {
			switch {
			case i == 3:
				return errLow
			case i > 24:
				return errHigh
			default:
				return nil
			}
		})
		if err == nil {
			t.Fatal("expected error")
		}
		if !errors.Is(err, errLow) && !errors.Is(err, errHigh) {
			t.Fatalf("unexpected error %v", err)
		}
		if errors.Is(err, errHigh) {
			// errHigh may only win if errLow was never recorded — but a
			// serial scan of errs favors index 3 whenever set; index 3 is
			// always attempted before 25+ can exhaust the pool of 4 workers
			// pulling indices in order, so errLow must be reported.
			t.Fatalf("trial %d: high-index error reported over low-index", trial)
		}
	}
}

func TestMapCancellationIsPrompt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	var ran int32
	done := make(chan error, 1)
	go func() {
		done <- Map(ctx, 2, 1000, func(i int) error {
			atomic.AddInt32(&ran, 1)
			select {
			case started <- struct{}{}:
			default:
			}
			select {
			case <-ctx.Done():
			case <-time.After(5 * time.Second):
			}
			return nil
		})
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Map did not return promptly after cancellation")
	}
	if n := atomic.LoadInt32(&ran); n >= 1000 {
		t.Fatalf("cancellation did not stop task issue (ran %d)", n)
	}
}

func TestMapPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Map(ctx, 1, 10, func(i int) error {
		t.Fatal("task ran under canceled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestMapEmpty(t *testing.T) {
	if err := Map(context.Background(), 4, 0, nil); err != nil {
		t.Fatal(err)
	}
}

// TestResolveWorkers pins the repo-wide worker-resolution semantics every
// layer (core sweeps, netsim.RunReplicas, the service limiter) shares:
// explicit counts are honored verbatim, zero and negatives mean NumCPU.
func TestResolveWorkers(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 64} {
		if got := ResolveWorkers(n); got != n {
			t.Fatalf("ResolveWorkers(%d) = %d, want the explicit count", n, got)
		}
	}
	for _, n := range []int{0, -1, -100} {
		if got := ResolveWorkers(n); got != runtime.NumCPU() {
			t.Fatalf("ResolveWorkers(%d) = %d, want NumCPU = %d", n, got, runtime.NumCPU())
		}
	}
}

func TestDeriveSeedIsPureAndSpreads(t *testing.T) {
	if DeriveSeed(2005, 3) != DeriveSeed(2005, 3) {
		t.Fatal("DeriveSeed is not pure")
	}
	seen := map[int64]bool{}
	for stream := int64(0); stream < 1000; stream++ {
		s := DeriveSeed(42, stream)
		if seen[s] {
			t.Fatalf("collision at stream %d", stream)
		}
		seen[s] = true
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("root seed does not influence derivation")
	}
}

func TestCacheSingleFlight(t *testing.T) {
	var c Cache[int, int]
	var computed int32
	var wg sync.WaitGroup
	const callers = 16
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func() {
			defer wg.Done()
			v := c.Get(7, func() int {
				atomic.AddInt32(&computed, 1)
				time.Sleep(10 * time.Millisecond)
				return 99
			})
			if v != 99 {
				t.Errorf("got %d", v)
			}
		}()
	}
	wg.Wait()
	if computed != 1 {
		t.Fatalf("computed %d times, want 1", computed)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}
