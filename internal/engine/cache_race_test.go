package engine

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestCacheCounterConsistencyUnderRace hammers one LRU-bounded cache from
// many concurrent clients — lookups over a key space larger than the
// bound, interleaved with limit churn, Stats snapshots and a Reset — and
// asserts the counters stayed coherent: every lookup was classified as
// exactly one hit or miss, evictions never exceeded insertions, and the
// final entry count respects the bound. Run it with -race (CI does) to
// also prove the single-flight compute path is data-race free.
func TestCacheCounterConsistencyUnderRace(t *testing.T) {
	const (
		clients = 8
		lookups = 2000
		keys    = 64
		limit   = 16
	)
	var c Cache[int, int]
	c.SetLimit(limit)

	var (
		total    atomic.Uint64 // lookups issued across all clients
		computes atomic.Uint64 // times a compute function actually ran
		wg       sync.WaitGroup
	)
	wg.Add(clients)
	for w := 0; w < clients; w++ {
		go func(w int) {
			defer wg.Done()
			rng := NewRNG(DeriveSeed(99, int64(w)))
			for i := 0; i < lookups; i++ {
				k := rng.Intn(keys)
				total.Add(1)
				v := c.Get(k, func() int {
					computes.Add(1)
					return k * 10
				})
				if v != k*10 {
					t.Errorf("Get(%d) = %d", k, v)
					return
				}
				// Sprinkle management operations through the lookup storm.
				switch {
				case i%701 == 0:
					c.SetLimit(limit / 2)
				case i%703 == 0:
					c.SetLimit(limit)
				case i%509 == 0:
					_ = c.Stats()
					_ = c.Len()
				case w == 0 && i == lookups/2:
					c.Reset()
				}
			}
		}(w)
	}
	wg.Wait()

	c.SetLimit(limit) // settle the bound now that nothing is in flight
	s := c.Stats()
	if got, want := s.Hits+s.Misses, total.Load(); got != want {
		t.Errorf("hits (%d) + misses (%d) = %d, want %d lookups", s.Hits, s.Misses, got, want)
	}
	// Every miss creates an entry and runs its compute exactly once
	// (single flight); a Reset may orphan an in-flight entry whose Get
	// was already counted, but computes can never exceed misses.
	if computes.Load() > s.Misses {
		t.Errorf("computes %d > misses %d: a compute ran without a recorded miss", computes.Load(), s.Misses)
	}
	if s.Evictions > s.Misses {
		t.Errorf("evictions %d > insertions %d", s.Evictions, s.Misses)
	}
	if s.Entries > limit {
		t.Errorf("entries %d exceed settled limit %d", s.Entries, limit)
	}
	if s.Entries != c.Len() {
		t.Errorf("Stats.Entries %d != Len %d at rest", s.Entries, c.Len())
	}
	if s.Limit != limit {
		t.Errorf("Stats.Limit = %d, want %d", s.Limit, limit)
	}
	// The workload guarantees far more lookups than distinct keys, so both
	// classes must be represented.
	if s.Hits == 0 || s.Misses == 0 {
		t.Errorf("degenerate counters: hits %d, misses %d", s.Hits, s.Misses)
	}
	if s.HitRate() <= 0 || s.HitRate() >= 1 {
		t.Errorf("hit rate %v outside (0,1)", s.HitRate())
	}
}
