package engine

import (
	"time"

	"dense802154/internal/telemetry"
)

// Package-level pool telemetry, fed by Map on both its serial and parallel
// paths. The histograms are package-owned so every registry in the process
// scrapes the same totals; Observe is atomic and allocation-free, keeping
// Map's per-task overhead to two clock reads.
var (
	taskBatches  telemetry.Counter
	taskExecHist = telemetry.NewHistogram(taskBuckets...)
	taskWaitHist = telemetry.NewHistogram(taskBuckets...)
)

// taskBuckets spans the observed task range: microsecond model evaluations
// through multi-second Monte-Carlo characterizations.
var taskBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}

// RegisterMetrics exposes the worker-pool metrics in r:
//
//	wsn_engine_batches_total        counter    Map/MapSlice batches executed
//	wsn_engine_task_seconds         histogram  per-task execution wall time
//	wsn_engine_task_wait_seconds    histogram  per-task queue wait (batch
//	                                           submission → task start)
func RegisterMetrics(r *telemetry.Registry) {
	r.RegisterCounter("wsn_engine_batches_total", "Worker-pool batches executed by Map/MapSlice.", &taskBatches)
	r.RegisterHistogram("wsn_engine_task_seconds", "Per-task execution wall time in the worker pool.", taskExecHist)
	r.RegisterHistogram("wsn_engine_task_wait_seconds", "Per-task wait from batch submission to task start.", taskWaitHist)
}

// observeTask records one completed task's queue wait and execution time.
func observeTask(batchStart, taskStart time.Time, end time.Time) {
	taskWaitHist.Observe(taskStart.Sub(batchStart).Seconds())
	taskExecHist.Observe(end.Sub(taskStart).Seconds())
}
