package engine

// RNG is the repository's deterministic pseudo-random number generator: a
// splitmix64 counter sequence (Steele, Lea & Flood, "Fast Splittable
// Pseudorandom Number Generators", OOPSLA 2014) whose entire state is one
// uint64. It exists so the hot simulation loops — the Monte-Carlo contention
// shards, the discrete-event kernel and every netsim node — can embed their
// random stream by value instead of chaining through a heap-allocated
// *rand.Rand (whose lagged-Fibonacci source alone weighs ~5 KiB).
//
// Properties that matter here:
//
//   - Zero allocation: RNG is a plain struct; embed it, copy it, pool it.
//   - Determinism: the stream is a pure function of the seed, so the
//     engine-wide contract holds — seed a shard with DeriveSeed(root, i)
//     and its stream depends only on (root, i), never on worker count.
//   - Stream independence: the output is a bijective avalanche mix of a
//     golden-gamma counter, so even adjacent seeds yield uncorrelated
//     streams (DeriveSeed applies the same mix one level up).
//
// RNG implements math/rand.Source64, so rand.New(&r) upgrades it to the
// full math/rand API for cold paths (e.g. deployment sampling at netsim
// setup); the hot paths use the direct Float64/Intn/Int63n methods.
//
// The zero value is a valid generator seeded with 0. RNG is not safe for
// concurrent use; give each goroutine its own (see DeriveSeed).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) RNG { return RNG{state: uint64(seed)} }

// Seed resets the generator to the given seed (math/rand.Source).
func (r *RNG) Seed(seed int64) { r.state = uint64(seed) }

// Uint64 advances the counter by the golden-ratio gamma and returns the
// avalanche mix of the new state (math/rand.Source64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// Int63 returns a uniform value in [0, 1<<63) (math/rand.Source).
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform value in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0. Like
// math/rand, it rejects the biased tail so every value is exactly equally
// likely.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("engine: Int63n with n <= 0")
	}
	if n&(n-1) == 0 { // power of two
		return r.Int63() & (n - 1)
	}
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := r.Int63()
	for v > max {
		v = r.Int63()
	}
	return v % n
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("engine: Intn with n <= 0")
	}
	return int(r.Int63n(int64(n)))
}
