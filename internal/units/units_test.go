package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestDBmToPowerKnownValues(t *testing.T) {
	cases := []struct {
		dbm   float64
		watts float64
	}{
		{0, 1e-3},
		{-30, 1e-6},
		{30, 1},
		{-10, 1e-4},
		{10, 1e-2},
		{-25, 3.1623e-6},
		{-94, 3.9811e-13},
	}
	for _, c := range cases {
		got := float64(DBmToPower(c.dbm))
		if !almostEqual(got, c.watts, 1e-4) {
			t.Errorf("DBmToPower(%v) = %v, want %v", c.dbm, got, c.watts)
		}
	}
}

func TestPowerToDBmRoundTrip(t *testing.T) {
	f := func(dbm float64) bool {
		// Restrict to a physically plausible range to avoid overflow.
		d := math.Mod(dbm, 200)
		p := DBmToPower(d)
		back := PowerToDBm(p)
		return almostEqual(back, d, 1e-9) || math.Abs(back-d) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowerToDBmNonPositive(t *testing.T) {
	if got := PowerToDBm(0); !math.IsInf(got, -1) {
		t.Errorf("PowerToDBm(0) = %v, want -Inf", got)
	}
	if got := PowerToDBm(-1); !math.IsInf(got, -1) {
		t.Errorf("PowerToDBm(-1) = %v, want -Inf", got)
	}
}

func TestDBLinearRoundTrip(t *testing.T) {
	f := func(db float64) bool {
		d := math.Mod(db, 300)
		return almostEqual(LinearToDB(DBToLinear(d)), d, 1e-9) ||
			math.Abs(LinearToDB(DBToLinear(d))-d) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinearToDBNonPositive(t *testing.T) {
	if got := LinearToDB(0); !math.IsInf(got, -1) {
		t.Errorf("LinearToDB(0) = %v, want -Inf", got)
	}
}

func TestEnergyPowerDuality(t *testing.T) {
	p := Power(35.28e-3) // CC2420 RX power
	d := 194 * time.Microsecond
	e := p.Times(d)
	if !almostEqual(float64(e), 35.28e-3*194e-6, 1e-12) {
		t.Fatalf("Times: got %v", e)
	}
	back := e.Over(d)
	if !almostEqual(float64(back), float64(p), 1e-12) {
		t.Fatalf("Over: got %v, want %v", back, p)
	}
}

func TestEnergyOverZeroDuration(t *testing.T) {
	if got := Energy(1).Over(0); got != 0 {
		t.Errorf("Over(0) = %v, want 0", got)
	}
	if got := Energy(1).Over(-time.Second); got != 0 {
		t.Errorf("Over(-1s) = %v, want 0", got)
	}
}

func TestFromCurrent(t *testing.T) {
	// Fig. 3: RX draws 19.6 mA at 1.8 V = 35.28 mW.
	p := FromCurrent(19.6e-3, 1.8)
	if !almostEqual(float64(p), 35.28e-3, 1e-9) {
		t.Fatalf("FromCurrent = %v, want 35.28mW", p)
	}
}

func TestPowerString(t *testing.T) {
	cases := []struct {
		p    Power
		want string
	}{
		{0, "0 W"},
		{144 * NanoWatt, "144 nW"},
		{712 * MicroWatt, "712 µW"},
		{35.28 * MilliWatt, "35.28 mW"},
		{2 * Watt, "2 W"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("(%g).String() = %q, want %q", float64(c.p), got, c.want)
		}
	}
}

func TestEnergyString(t *testing.T) {
	cases := []struct {
		e    Energy
		want string
	}{
		{0, "0 J"},
		{691 * PicoJoule, "691 pJ"},
		{691 * NanoJoule, "691 nJ"},
		{6.63 * MicroJoule, "6.63 µJ"},
		{2 * MilliJoule, "2 mJ"},
		{3 * Joule, "3 J"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("(%g).String() = %q, want %q", float64(c.e), got, c.want)
		}
	}
}

func TestDBmMethodMatchesFunction(t *testing.T) {
	p := DBmToPower(-15)
	if !almostEqual(p.DBm(), -15, 1e-9) {
		t.Fatalf("DBm() = %v, want -15", p.DBm())
	}
}

func TestScaleHelpers(t *testing.T) {
	p := Power(1e-3)
	if !almostEqual(p.MilliWatts(), 1, 1e-12) {
		t.Error("MilliWatts")
	}
	if !almostEqual(p.MicroWatts(), 1000, 1e-12) {
		t.Error("MicroWatts")
	}
	if !almostEqual(p.NanoWatts(), 1e6, 1e-12) {
		t.Error("NanoWatts")
	}
	e := Energy(1e-6)
	if !almostEqual(e.MicroJoules(), 1, 1e-12) {
		t.Error("MicroJoules")
	}
	if !almostEqual(e.NanoJoules(), 1000, 1e-12) {
		t.Error("NanoJoules")
	}
}
