// Package units provides the physical quantities used throughout the
// library: power, energy and decibel ratios, together with the conversions
// between logarithmic (dBm, dB) and linear (watt, joule) representations.
//
// Conventions:
//   - Power is expressed in watts, Energy in joules.
//   - Received/transmitted signal powers are usually carried around in dBm,
//     as in the paper (path loss is a plain dB value subtracted from a dBm
//     transmit power).
package units

import (
	"fmt"
	"math"
	"time"
)

// Power is an instantaneous power in watts.
type Power float64

// Energy is an amount of energy in joules.
type Energy float64

// Common power scales.
const (
	Watt      Power = 1
	MilliWatt Power = 1e-3
	MicroWatt Power = 1e-6
	NanoWatt  Power = 1e-9
)

// Common energy scales.
const (
	Joule      Energy = 1
	MilliJoule Energy = 1e-3
	MicroJoule Energy = 1e-6
	NanoJoule  Energy = 1e-9
	PicoJoule  Energy = 1e-12
)

// DBmToPower converts a power level in dBm to watts.
func DBmToPower(dbm float64) Power {
	return Power(1e-3 * math.Pow(10, dbm/10))
}

// PowerToDBm converts a power in watts to dBm.
// It returns -Inf for non-positive powers.
func PowerToDBm(p Power) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(float64(p)/1e-3)
}

// DBToLinear converts a dB ratio to a linear ratio.
func DBToLinear(db float64) float64 { return math.Pow(10, db/10) }

// LinearToDB converts a linear ratio to dB.
// It returns -Inf for non-positive ratios.
func LinearToDB(lin float64) float64 {
	if lin <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(lin)
}

// MilliWatts reports the power in milliwatts.
func (p Power) MilliWatts() float64 { return float64(p) * 1e3 }

// MicroWatts reports the power in microwatts.
func (p Power) MicroWatts() float64 { return float64(p) * 1e6 }

// NanoWatts reports the power in nanowatts.
func (p Power) NanoWatts() float64 { return float64(p) * 1e9 }

// DBm reports the power in dBm (-Inf for non-positive powers).
func (p Power) DBm() float64 { return PowerToDBm(p) }

// String renders the power with an automatically chosen SI prefix.
func (p Power) String() string {
	abs := math.Abs(float64(p))
	switch {
	case abs == 0:
		return "0 W"
	case abs < 1e-6:
		return fmt.Sprintf("%.4g nW", float64(p)*1e9)
	case abs < 1e-3:
		return fmt.Sprintf("%.4g µW", float64(p)*1e6)
	case abs < 1:
		return fmt.Sprintf("%.4g mW", float64(p)*1e3)
	default:
		return fmt.Sprintf("%.4g W", float64(p))
	}
}

// MicroJoules reports the energy in microjoules.
func (e Energy) MicroJoules() float64 { return float64(e) * 1e6 }

// NanoJoules reports the energy in nanojoules.
func (e Energy) NanoJoules() float64 { return float64(e) * 1e9 }

// String renders the energy with an automatically chosen SI prefix.
func (e Energy) String() string {
	abs := math.Abs(float64(e))
	switch {
	case abs == 0:
		return "0 J"
	case abs < 1e-9:
		return fmt.Sprintf("%.4g pJ", float64(e)*1e12)
	case abs < 1e-6:
		return fmt.Sprintf("%.4g nJ", float64(e)*1e9)
	case abs < 1e-3:
		return fmt.Sprintf("%.4g µJ", float64(e)*1e6)
	case abs < 1:
		return fmt.Sprintf("%.4g mJ", float64(e)*1e3)
	default:
		return fmt.Sprintf("%.4g J", float64(e))
	}
}

// Times returns the energy dissipated by power p applied for duration d.
func (p Power) Times(d time.Duration) Energy {
	return Energy(float64(p) * d.Seconds())
}

// Over returns the average power of energy e spread over duration d.
// It returns 0 for non-positive durations.
func (e Energy) Over(d time.Duration) Power {
	if d <= 0 {
		return 0
	}
	return Power(float64(e) / d.Seconds())
}

// FromCurrent returns the power drawn by a current (amperes) at a supply
// voltage (volts), as used when translating the CC2420 data-sheet and
// measurement currents of Fig. 3 into powers.
func FromCurrent(amps, volts float64) Power { return Power(amps * volts) }
