package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d, want 8", a.N())
	}
	if a.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", a.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if got, want := a.Variance(), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", a.Min(), a.Max())
	}
	if got := a.Sum(); math.Abs(got-40) > 1e-12 {
		t.Fatalf("Sum = %v, want 40", got)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.StdErr() != 0 {
		t.Fatal("empty accumulator must report zeros")
	}
}

func TestAccumulatorSingle(t *testing.T) {
	var a Accumulator
	a.Add(42)
	if a.Variance() != 0 {
		t.Fatal("single observation must have zero variance")
	}
	if a.Mean() != 42 {
		t.Fatal("mean of single observation")
	}
}

func TestAccumulatorAddN(t *testing.T) {
	var a, b Accumulator
	a.AddN(3, 5)
	for i := 0; i < 5; i++ {
		b.Add(3)
	}
	if a.N() != b.N() || a.Mean() != b.Mean() {
		t.Fatal("AddN must equal repeated Add")
	}
}

func TestMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var whole, left, right Accumulator
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 1
		whole.Add(x)
		if i%2 == 0 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(&right)
	if left.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", left.N(), whole.N())
	}
	if math.Abs(left.Mean()-whole.Mean()) > 1e-9 {
		t.Fatalf("merged mean %v vs %v", left.Mean(), whole.Mean())
	}
	if math.Abs(left.Variance()-whole.Variance()) > 1e-9 {
		t.Fatalf("merged variance %v vs %v", left.Variance(), whole.Variance())
	}
	if left.Min() != whole.Min() || left.Max() != whole.Max() {
		t.Fatal("merged min/max mismatch")
	}
}

func TestMergeEmptyCases(t *testing.T) {
	var a, b Accumulator
	a.Merge(&b) // both empty: no-op
	if a.N() != 0 {
		t.Fatal("merge of empties")
	}
	b.Add(5)
	a.Merge(&b)
	if a.N() != 1 || a.Mean() != 5 {
		t.Fatal("merge into empty")
	}
	var c Accumulator
	a.Merge(&c) // merging empty: no-op
	if a.N() != 1 {
		t.Fatal("merge of empty into non-empty")
	}
}

// Property: mean is within [min, max] and variance is non-negative.
func TestPropertyAccumulatorInvariants(t *testing.T) {
	f := func(xs []float64) bool {
		var a Accumulator
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
				a.Add(x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		return a.Mean() >= a.Min()-1e-9 && a.Mean() <= a.Max()+1e-9 && a.Variance() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProportion(t *testing.T) {
	var p Proportion
	for i := 0; i < 100; i++ {
		p.Observe(i < 16)
	}
	if p.Value() != 0.16 {
		t.Fatalf("Value = %v, want 0.16", p.Value())
	}
	if p.Trials() != 100 || p.Successes() != 16 {
		t.Fatal("counts")
	}
	if p.CI95() <= 0 || p.CI95() > 0.1 {
		t.Fatalf("CI95 = %v out of plausible range", p.CI95())
	}
}

func TestProportionObserveN(t *testing.T) {
	var p, q Proportion
	p.ObserveN(3, 10)
	for i := 0; i < 10; i++ {
		q.Observe(i < 3)
	}
	if p.Value() != q.Value() {
		t.Fatal("ObserveN mismatch")
	}
}

func TestProportionEmpty(t *testing.T) {
	var p Proportion
	if p.Value() != 0 || p.CI95() != 0 {
		t.Fatal("empty proportion must report zeros")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("Percentile(nil) must be NaN")
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	Percentile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestMeanHelper(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v, want 2", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) must be NaN")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1) // underflow
	h.Add(11) // overflow
	if h.Total() != 12 {
		t.Fatalf("Total = %d, want 12", h.Total())
	}
	for i := 0; i < 10; i++ {
		if h.Bin(i) != 1 {
			t.Fatalf("Bin(%d) = %d, want 1", i, h.Bin(i))
		}
	}
	if h.Underflow() != 1 || h.Overflow() != 1 {
		t.Fatal("under/overflow counts")
	}
	if got := h.BinCenter(0); got != 0.5 {
		t.Fatalf("BinCenter(0) = %v, want 0.5", got)
	}
	if h.NumBins() != 10 {
		t.Fatal("NumBins")
	}
}

func TestHistogramEdgeValue(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(math.Nextafter(1, 0)) // just below Hi must land in the last bin
	if h.Bin(3) != 1 {
		t.Fatal("value just below Hi not in last bin")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	q := h.Quantile(0.5)
	if q < 45 || q > 55 {
		t.Fatalf("median estimate %v too far from 50", q)
	}
	empty := NewHistogram(0, 1, 2)
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatal("empty histogram quantile must be NaN")
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for invalid histogram")
		}
	}()
	NewHistogram(1, 0, 10)
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.6)
	if s := h.String(); len(s) == 0 {
		t.Fatal("empty String()")
	}
}

func TestPercentileDegenerate(t *testing.T) {
	// A single observation is every percentile of itself.
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 1} {
		if got := Percentile([]float64{7.5}, q); got != 7.5 {
			t.Errorf("Percentile([7.5], %v) = %v", q, got)
		}
	}
	// Out-of-range q clamps to the extremes instead of indexing out of
	// bounds.
	xs := []float64{1, 2, 3}
	if got := Percentile(xs, -0.5); got != 1 {
		t.Errorf("Percentile(q<0) = %v, want 1", got)
	}
	if got := Percentile(xs, 1.5); got != 3 {
		t.Errorf("Percentile(q>1) = %v, want 3", got)
	}
	// Empty input is NaN for every q, not a panic.
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if !math.IsNaN(Percentile(nil, q)) {
			t.Errorf("Percentile(nil, %v) not NaN", q)
		}
		if !math.IsNaN(Percentile([]float64{}, q)) {
			t.Errorf("Percentile([], %v) not NaN", q)
		}
	}
}

func TestAccumulatorSingleCIZero(t *testing.T) {
	// One observation: variance, standard error and CI95 are exactly zero
	// — never NaN — so a 1-replica simulation reports a zero-width
	// confidence interval.
	var a Accumulator
	a.Add(3.25)
	if v := a.Variance(); v != 0 || math.IsNaN(v) {
		t.Errorf("Variance after one Add = %v", v)
	}
	if ci := a.CI95(); ci != 0 || math.IsNaN(ci) {
		t.Errorf("CI95 after one Add = %v", ci)
	}
}
