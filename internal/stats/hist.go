package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width binned histogram over [Lo, Hi). Observations
// outside the range are counted in the under/overflow bins.
type Histogram struct {
	Lo, Hi    float64
	bins      []int
	underflow int
	overflow  int
	total     int
}

// NewHistogram builds a histogram with n equal-width bins covering [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || !(hi > lo) {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v) with %d bins", lo, hi, n))
	}
	return &Histogram{Lo: lo, Hi: hi, bins: make([]int, n)}
}

// Add records an observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.underflow++
	case x >= h.Hi:
		h.overflow++
	default:
		i := int(float64(len(h.bins)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.bins) { // guard against float rounding at the edge
			i--
		}
		h.bins[i]++
	}
}

// Total reports the number of observations, including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// Bin reports the count in bin i.
func (h *Histogram) Bin(i int) int { return h.bins[i] }

// NumBins reports the number of in-range bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// Underflow reports the count of observations below Lo.
func (h *Histogram) Underflow() int { return h.underflow }

// Overflow reports the count of observations at or above Hi.
func (h *Histogram) Overflow() int { return h.overflow }

// BinCenter reports the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.bins))
	return h.Lo + (float64(i)+0.5)*w
}

// Quantile returns an approximate q-th quantile (0..1) from the binned data,
// using bin centers. Out-of-range mass is clamped to the range edges.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	target := q * float64(h.total)
	cum := float64(h.underflow)
	if cum >= target {
		return h.Lo
	}
	for i, c := range h.bins {
		cum += float64(c)
		if cum >= target {
			return h.BinCenter(i)
		}
	}
	return h.Hi
}

// String renders a small ASCII sketch of the histogram, mainly for debugging
// and example programs.
func (h *Histogram) String() string {
	var b strings.Builder
	maxCount := 1
	for _, c := range h.bins {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range h.bins {
		bar := strings.Repeat("#", c*40/maxCount)
		fmt.Fprintf(&b, "%12.4g |%-40s| %d\n", h.BinCenter(i), bar, c)
	}
	return b.String()
}
