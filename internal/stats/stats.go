// Package stats provides the statistical accumulators and tabular result
// types used by the Monte-Carlo characterizer, the network simulator and the
// experiment harness that regenerates the paper's figures.
package stats

import (
	"math"
	"sort"
)

// Accumulator computes running mean and variance with Welford's algorithm.
// The zero value is an empty accumulator ready for use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// AddN records the same observation n times.
func (a *Accumulator) AddN(x float64, n int) {
	for i := 0; i < n; i++ {
		a.Add(x)
	}
}

// N reports the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean reports the sample mean (0 when empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Sum reports the total of all observations.
func (a *Accumulator) Sum() float64 { return a.mean * float64(a.n) }

// Min reports the smallest observation (0 when empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max reports the largest observation (0 when empty).
func (a *Accumulator) Max() float64 { return a.max }

// Variance reports the unbiased sample variance (0 for fewer than two
// observations).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev reports the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr reports the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// CI95 reports the half-width of the normal-approximation 95% confidence
// interval of the mean.
func (a *Accumulator) CI95() float64 { return 1.96 * a.StdErr() }

// Merge folds another accumulator into this one (parallel Welford merge).
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	mean := a.mean + delta*float64(b.n)/float64(n)
	m2 := a.m2 + b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	mn, mx := a.min, a.max
	if b.min < mn {
		mn = b.min
	}
	if b.max > mx {
		mx = b.max
	}
	a.n, a.mean, a.m2, a.min, a.max = n, mean, m2, mn, mx
}

// Proportion is a Bernoulli success-rate accumulator.
type Proportion struct {
	trials    int
	successes int
}

// Observe records one trial.
func (p *Proportion) Observe(success bool) {
	p.trials++
	if success {
		p.successes++
	}
}

// ObserveN records n trials with k successes.
func (p *Proportion) ObserveN(k, n int) {
	p.trials += n
	p.successes += k
}

// Trials reports the number of recorded trials.
func (p *Proportion) Trials() int { return p.trials }

// Successes reports the number of recorded successes.
func (p *Proportion) Successes() int { return p.successes }

// Value reports the success rate (0 when empty).
func (p *Proportion) Value() float64 {
	if p.trials == 0 {
		return 0
	}
	return float64(p.successes) / float64(p.trials)
}

// CI95 reports the half-width of the normal-approximation 95% confidence
// interval of the proportion.
func (p *Proportion) CI95() float64 {
	if p.trials == 0 {
		return 0
	}
	v := p.Value()
	return 1.96 * math.Sqrt(v*(1-v)/float64(p.trials))
}

// Percentile returns the q-th percentile (0..1) of xs using linear
// interpolation between closest ranks. It returns NaN for empty input.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	return acc.Mean()
}
