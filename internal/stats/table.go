package stats

import (
	"fmt"
	"strings"
)

// Table is a simple column-oriented result table used by the experiment
// harness to print the rows/series the paper's figures report and to emit
// CSV for external plotting.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Values are rendered with %v; float64 values with %g.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.6g", x)
		case float32:
			row[i] = fmt.Sprintf("%.6g", x)
		case string:
			row[i] = x
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote attaches a free-form footnote rendered after the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes only where needed).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*note: %s*\n", n)
	}
	return b.String()
}

// Series is an (x, y) sequence, one curve of a figure.
type Series struct {
	Label string
	X, Y  []float64
}

// Append adds one point to the series.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len reports the number of points.
func (s *Series) Len() int { return len(s.X) }

// MinY returns the minimum y value and its x position (NaN-free input
// assumed); ok is false for an empty series.
func (s *Series) MinY() (x, y float64, ok bool) {
	if len(s.Y) == 0 {
		return 0, 0, false
	}
	x, y = s.X[0], s.Y[0]
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] < y {
			x, y = s.X[i], s.Y[i]
		}
	}
	return x, y, true
}
