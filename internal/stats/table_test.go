package stats

import (
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tb := NewTable("Demo", "x", "y")
	tb.AddRow(1, 2.5)
	tb.AddRow("a", "b")
	tb.AddNote("hello %d", 7)
	s := tb.String()
	for _, want := range []string{"Demo", "x", "y", "2.5", "a", "note: hello 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("plain", "with,comma")
	tb.AddRow(`quote"inside`, 3)
	csv := tb.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3", len(lines))
	}
	if lines[0] != "a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], `"with,comma"`) {
		t.Fatalf("comma not quoted: %q", lines[1])
	}
	if !strings.Contains(lines[2], `"quote""inside"`) {
		t.Fatalf("quote not escaped: %q", lines[2])
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Fig X", "col")
	tb.AddRow(1)
	tb.AddNote("n")
	md := tb.Markdown()
	for _, want := range []string{"### Fig X", "| col |", "| --- |", "| 1 |", "*note: n*"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q:\n%s", want, md)
		}
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(0.000211)
	if got := tb.Rows[0][0]; got != "0.000211" {
		t.Fatalf("float rendered as %q", got)
	}
	tb.AddRow(float32(2))
	if got := tb.Rows[1][0]; got != "2" {
		t.Fatalf("float32 rendered as %q", got)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Label = "load 0.42"
	s.Append(1, 10)
	s.Append(2, 5)
	s.Append(3, 8)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	x, y, ok := s.MinY()
	if !ok || x != 2 || y != 5 {
		t.Fatalf("MinY = (%v,%v,%v), want (2,5,true)", x, y, ok)
	}
	var empty Series
	if _, _, ok := empty.MinY(); ok {
		t.Fatal("MinY on empty series must report !ok")
	}
}
