package battery

import (
	"math"
	"strings"
	"testing"
	"time"

	"dense802154/internal/units"
)

func TestLifetimeBasics(t *testing.T) {
	// 2430 J at 211 µW with 1%/yr self-discharge: ≈ 133 days.
	s := CoinCellCR2032()
	d, ok := s.Lifetime(211 * units.MicroWatt)
	if !ok {
		t.Fatal("no lifetime")
	}
	days := d.Hours() / 24
	if days < 100 || days > 160 {
		t.Fatalf("CR2032 at 211 µW lives %v days, want ≈133", days)
	}
}

func TestLifetimeScalesInversely(t *testing.T) {
	s := AACell()
	d1, _ := s.Lifetime(200 * units.MicroWatt)
	d2, _ := s.Lifetime(100 * units.MicroWatt)
	ratio := float64(d2) / float64(d1)
	// Self-discharge bends this slightly below 2.
	if ratio < 1.7 || ratio > 2.1 {
		t.Fatalf("halving load scaled lifetime by %v, want ≈2", ratio)
	}
}

func TestHarvesterSustainability(t *testing.T) {
	h := VibrationHarvester()
	if !h.Sustainable(90 * units.MicroWatt) {
		t.Error("90 µW must be sustainable on the 100 µW harvester")
	}
	if h.Sustainable(211 * units.MicroWatt) {
		t.Error("211 µW must not be sustainable — the paper's gap")
	}
	if h.Margin(211*units.MicroWatt) >= 0 {
		t.Error("margin must be negative at 211 µW")
	}
	d, ok := h.Lifetime(90 * units.MicroWatt)
	if !ok || d != time.Duration(math.MaxInt64) {
		t.Fatalf("sustainable load lifetime = (%v, %v), want indefinite", d, ok)
	}
	// Harvester with no battery under overload: instant death.
	if d, _ := h.Lifetime(211 * units.MicroWatt); d != 0 {
		t.Fatalf("battery-less overload lifetime = %v, want 0", d)
	}
}

func TestHarvestedBattery(t *testing.T) {
	// Battery + harvester: only the net load drains the cell.
	s := CoinCellCR2032().WithHarvest(100 * units.MicroWatt)
	dPlain, _ := CoinCellCR2032().Lifetime(211 * units.MicroWatt)
	dBoost, _ := s.Lifetime(211 * units.MicroWatt)
	if dBoost <= dPlain {
		t.Fatal("harvester must extend battery life")
	}
	// Net 111 µW vs 211 µW: ≈ 1.9x.
	ratio := float64(dBoost) / float64(dPlain)
	if ratio < 1.6 || ratio > 2.2 {
		t.Fatalf("harvest boost ratio %v", ratio)
	}
}

func TestLifetimeEdgeCases(t *testing.T) {
	s := CoinCellCR2032()
	if _, ok := s.Lifetime(0); ok {
		t.Error("zero load must report !ok")
	}
	if _, ok := s.Lifetime(-1); ok {
		t.Error("negative load must report !ok")
	}
	// Tiny load beyond the 1e12 s guard: indefinite.
	d, ok := Supply{CapacityJ: 1e9}.Lifetime(1 * units.NanoWatt)
	if !ok || d != time.Duration(math.MaxInt64) {
		t.Errorf("immense lifetime must clamp to indefinite, got %v", d)
	}
}

func TestLifetimeString(t *testing.T) {
	if got := LifetimeString(time.Duration(math.MaxInt64)); got != "indefinite" {
		t.Errorf("indefinite: %q", got)
	}
	if got := LifetimeString(400 * 24 * time.Hour); !strings.Contains(got, "years") {
		t.Errorf("years: %q", got)
	}
	if got := LifetimeString(48 * time.Hour); !strings.Contains(got, "days") {
		t.Errorf("days: %q", got)
	}
	if got := LifetimeString(30 * time.Minute); !strings.Contains(got, "m") {
		t.Errorf("minutes: %q", got)
	}
}

func TestSupplyPresets(t *testing.T) {
	if CoinCellCR2032().CapacityJ < 2000 || CoinCellCR2032().CapacityJ > 3000 {
		t.Error("CR2032 capacity")
	}
	if AACell().CapacityJ < 12000 || AACell().CapacityJ > 15000 {
		t.Error("AA capacity")
	}
	if VibrationHarvester().Harvest != 100*units.MicroWatt {
		t.Error("harvester budget")
	}
}
