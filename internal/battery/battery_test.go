package battery

import (
	"math"
	"strings"
	"testing"
	"time"

	"dense802154/internal/units"
)

func TestLifetimeBasics(t *testing.T) {
	// 2430 J at 211 µW with 1%/yr self-discharge: ≈ 133 days.
	s := CoinCellCR2032()
	d, ok := s.Lifetime(211 * units.MicroWatt)
	if !ok {
		t.Fatal("no lifetime")
	}
	days := d.Hours() / 24
	if days < 100 || days > 160 {
		t.Fatalf("CR2032 at 211 µW lives %v days, want ≈133", days)
	}
}

func TestLifetimeScalesInversely(t *testing.T) {
	s := AACell()
	d1, _ := s.Lifetime(200 * units.MicroWatt)
	d2, _ := s.Lifetime(100 * units.MicroWatt)
	ratio := float64(d2) / float64(d1)
	// Self-discharge bends this slightly below 2.
	if ratio < 1.7 || ratio > 2.1 {
		t.Fatalf("halving load scaled lifetime by %v, want ≈2", ratio)
	}
}

func TestHarvesterSustainability(t *testing.T) {
	h := VibrationHarvester()
	if !h.Sustainable(90 * units.MicroWatt) {
		t.Error("90 µW must be sustainable on the 100 µW harvester")
	}
	if h.Sustainable(211 * units.MicroWatt) {
		t.Error("211 µW must not be sustainable — the paper's gap")
	}
	if h.Margin(211*units.MicroWatt) >= 0 {
		t.Error("margin must be negative at 211 µW")
	}
	d, ok := h.Lifetime(90 * units.MicroWatt)
	if !ok || d != time.Duration(math.MaxInt64) {
		t.Fatalf("sustainable load lifetime = (%v, %v), want indefinite", d, ok)
	}
	// A supply with no declared capacity models an unconstrained source:
	// there is no finite battery to exhaust, so even an overload reports
	// indefinite (Sustainable and Margin still expose the deficit).
	if d, ok := h.Lifetime(211 * units.MicroWatt); !ok || d != time.Duration(math.MaxInt64) {
		t.Fatalf("capacity-less overload lifetime = (%v, %v), want indefinite", d, ok)
	}
}

func TestHarvestedBattery(t *testing.T) {
	// Battery + harvester: only the net load drains the cell.
	s := CoinCellCR2032().WithHarvest(100 * units.MicroWatt)
	dPlain, _ := CoinCellCR2032().Lifetime(211 * units.MicroWatt)
	dBoost, _ := s.Lifetime(211 * units.MicroWatt)
	if dBoost <= dPlain {
		t.Fatal("harvester must extend battery life")
	}
	// Net 111 µW vs 211 µW: ≈ 1.9x.
	ratio := float64(dBoost) / float64(dPlain)
	if ratio < 1.6 || ratio > 2.2 {
		t.Fatalf("harvest boost ratio %v", ratio)
	}
}

func TestLifetimeEdgeCases(t *testing.T) {
	s := CoinCellCR2032()
	if _, ok := s.Lifetime(0); ok {
		t.Error("zero load must report !ok")
	}
	if _, ok := s.Lifetime(-1); ok {
		t.Error("negative load must report !ok")
	}
	// Tiny load beyond the 1e12 s guard: indefinite.
	d, ok := Supply{CapacityJ: 1e9}.Lifetime(1 * units.NanoWatt)
	if !ok || d != time.Duration(math.MaxInt64) {
		t.Errorf("immense lifetime must clamp to indefinite, got %v", d)
	}
}

// TestLifetimeDegenerateSupplies pins the divide-by-zero and non-finite
// corners: no input combination may surface a NaN-backed Duration, and
// supplies without a finite battery constraint (zero, negative or infinite
// capacity) always report an indefinite lifetime.
func TestLifetimeDegenerateSupplies(t *testing.T) {
	indefinite := time.Duration(math.MaxInt64)
	load := 211 * units.MicroWatt
	cases := []struct {
		name   string
		s      Supply
		load   units.Power
		wantD  time.Duration
		wantOK bool
	}{
		{"zero-capacity", Supply{}, load, indefinite, true},
		{"zero-capacity with self-discharge", Supply{SelfDischargePerYear: 0.02}, load, indefinite, true},
		{"negative capacity", Supply{CapacityJ: -5}, load, indefinite, true},
		{"infinite capacity", Supply{CapacityJ: math.Inf(1), SelfDischargePerYear: 0.01}, load, indefinite, true},
		{"NaN capacity", Supply{CapacityJ: math.NaN()}, load, indefinite, true},
		{"harvest covers load", Supply{CapacityJ: 10, Harvest: load}, load, indefinite, true},
		{"harvest exceeds load", Supply{Harvest: 2 * load}, load, indefinite, true},
		{"NaN load", CoinCellCR2032(), units.Power(math.NaN()), 0, false},
		{"infinite load", CoinCellCR2032(), units.Power(math.Inf(1)), 0, false},
		{"NaN self-discharge", Supply{CapacityJ: 2430, SelfDischargePerYear: math.NaN()}, load, indefinite, true},
	}
	for _, tc := range cases {
		d, ok := tc.s.Lifetime(tc.load)
		if ok != tc.wantOK || d != tc.wantD {
			t.Errorf("%s: Lifetime = (%v, %v), want (%v, %v)", tc.name, d, ok, tc.wantD, tc.wantOK)
		}
		if d < 0 {
			t.Errorf("%s: negative duration %v (NaN leak)", tc.name, d)
		}
	}
}

// TestSelfDischargeDrainConsistency: integrating CapacityJ at a constant
// load plus SelfDischargeDrain must land on the same instant Lifetime
// predicts — the contract per-node battery integrations rely on.
func TestSelfDischargeDrainConsistency(t *testing.T) {
	s := CoinCellCR2032()
	load := 211 * units.MicroWatt
	d, ok := s.Lifetime(load)
	if !ok {
		t.Fatal("no lifetime")
	}
	integrated := s.CapacityJ / float64(load+s.SelfDischargeDrain())
	if got := d.Seconds(); math.Abs(got-integrated) > 1 {
		t.Fatalf("Lifetime %v s vs integrated %v s", got, integrated)
	}
	if (Supply{}).SelfDischargeDrain() != 0 {
		t.Error("capacity-less supply must have zero self-discharge drain")
	}
}

func TestLifetimeString(t *testing.T) {
	if got := LifetimeString(time.Duration(math.MaxInt64)); got != "indefinite" {
		t.Errorf("indefinite: %q", got)
	}
	if got := LifetimeString(400 * 24 * time.Hour); !strings.Contains(got, "years") {
		t.Errorf("years: %q", got)
	}
	if got := LifetimeString(48 * time.Hour); !strings.Contains(got, "days") {
		t.Errorf("days: %q", got)
	}
	if got := LifetimeString(30 * time.Minute); !strings.Contains(got, "m") {
		t.Errorf("minutes: %q", got)
	}
}

func TestSupplyPresets(t *testing.T) {
	if CoinCellCR2032().CapacityJ < 2000 || CoinCellCR2032().CapacityJ > 3000 {
		t.Error("CR2032 capacity")
	}
	if AACell().CapacityJ < 12000 || AACell().CapacityJ > 15000 {
		t.Error("AA capacity")
	}
	if VibrationHarvester().Harvest != 100*units.MicroWatt {
		t.Error("harvester budget")
	}
}
