// Package battery models the energy supply side of the paper's
// motivation: microsensor nodes are too small and too numerous for
// battery replacement, so the target average power is the ≈100 µW an
// energy-scavenging source can sustain indefinitely. This package
// quantifies what a given node power means in battery lifetime and
// against a harvesting budget.
package battery

import (
	"fmt"
	"math"
	"time"

	"dense802154/internal/units"
)

// Supply is an energy source: a finite battery, optionally recharged by a
// continuous harvester.
type Supply struct {
	// CapacityJ is the usable battery energy in joules.
	CapacityJ float64
	// SelfDischargePerYear is the fraction of remaining charge lost per
	// year (typical lithium coin cells: 1-2%).
	SelfDischargePerYear float64
	// Harvest is the continuous scavenged power (0 for pure battery).
	Harvest units.Power
}

// CoinCellCR2032 returns a 225 mAh, 3 V lithium coin cell, a common
// microsensor supply (≈2430 J usable).
func CoinCellCR2032() Supply {
	return Supply{CapacityJ: 0.225 * 3600 * 3, SelfDischargePerYear: 0.01}
}

// AACell returns a 2500 mAh, 1.5 V alkaline cell (≈13.5 kJ).
func AACell() Supply {
	return Supply{CapacityJ: 2.5 * 3600 * 1.5, SelfDischargePerYear: 0.03}
}

// VibrationHarvester returns the paper's reference scavenging budget: a
// vibration-driven source sustaining ≈100 µW ([4] S. Roundy et al.).
func VibrationHarvester() Supply {
	return Supply{Harvest: 100 * units.MicroWatt}
}

// WithHarvest attaches a harvester to a battery supply.
func (s Supply) WithHarvest(p units.Power) Supply {
	s.Harvest = p
	return s
}

// Sustainable reports whether the load can run forever on harvest alone.
func (s Supply) Sustainable(load units.Power) bool {
	return s.Harvest >= load
}

// Margin reports harvest minus load (negative when the battery drains).
func (s Supply) Margin(load units.Power) units.Power {
	return s.Harvest - load
}

// Lifetime reports how long the supply sustains a constant load. It
// returns (0, false) for a non-positive or non-finite load with no
// meaning, and (∞-like, true)=(math.MaxInt64, true) when the supply is
// unconstrained: the harvester alone covers the load, the capacity is
// unbounded, or no finite battery is modeled at all (CapacityJ <= 0, the
// zero-value Supply — absent a declared capacity there is nothing to
// exhaust).
func (s Supply) Lifetime(load units.Power) (time.Duration, bool) {
	if load <= 0 || math.IsNaN(float64(load)) || math.IsInf(float64(load), 1) {
		return 0, false
	}
	net := float64(load - s.Harvest)
	if net <= 0 {
		return time.Duration(math.MaxInt64), true
	}
	if s.CapacityJ <= 0 || math.IsInf(s.CapacityJ, 1) {
		return time.Duration(math.MaxInt64), true
	}
	// Self-discharge as an equivalent constant drain of the mean charge
	// (a first-order approximation; exact treatment is exponential).
	selfDrain := s.CapacityJ / 2 * s.SelfDischargePerYear / (365.25 * 24 * 3600)
	seconds := s.CapacityJ / (net + selfDrain)
	if !(seconds <= 1e12) { // catches NaN from hostile field values too
		return time.Duration(math.MaxInt64), true
	}
	return time.Duration(seconds * float64(time.Second)), true
}

// SelfDischargeDrain reports the supply's self-discharge as an equivalent
// constant power drain of the mean charge — the same first-order
// approximation Lifetime folds into its denominator, exported so per-node
// battery integrations (internal/lifetime) deplete consistently with the
// closed-form answer. It is zero when no finite capacity is modeled.
func (s Supply) SelfDischargeDrain() units.Power {
	if s.CapacityJ <= 0 || math.IsInf(s.CapacityJ, 1) || math.IsNaN(s.CapacityJ) {
		return 0
	}
	return units.Power(s.CapacityJ / 2 * s.SelfDischargePerYear / (365.25 * 24 * 3600))
}

// LifetimeString renders a lifetime in calendar units.
func LifetimeString(d time.Duration) string {
	if d == time.Duration(math.MaxInt64) {
		return "indefinite"
	}
	days := d.Hours() / 24
	switch {
	case days >= 365.25:
		return fmt.Sprintf("%.1f years", days/365.25)
	case days >= 1:
		return fmt.Sprintf("%.1f days", days)
	default:
		return d.Round(time.Minute).String()
	}
}
