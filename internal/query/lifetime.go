package query

import (
	"context"
	"math"
	"strconv"

	"dense802154/internal/battery"
	"dense802154/internal/lifetime"
	"dense802154/internal/netsim"
	"dense802154/internal/units"
)

// LifetimeWire parameterizes a network-lifetime query (kind lifetime) on
// top of the shared Sim base configuration. Every field is optional; the
// supply preset resolves first, then explicit battery fields override it.
type LifetimeWire struct {
	// Supply names a battery preset: "cr2032" (default), "aa" or
	// "harvester" (the paper's 100 µW scavenging budget, no finite cell).
	Supply string `json:"supply,omitempty"`
	// CapacityJ overrides the preset's usable battery energy in joules.
	CapacityJ *Float `json:"capacity_j,omitempty"`
	// SelfDischargePerYear overrides the preset's fractional charge loss
	// per year.
	SelfDischargePerYear *Float `json:"self_discharge_per_year,omitempty"`
	// HarvestUW overrides the preset's continuous scavenged power in µW.
	HarvestUW *Float `json:"harvest_uw,omitempty"`
	// ThresholdJ is the shutdown threshold in joules (default 0).
	ThresholdJ *Float `json:"threshold_j,omitempty"`
	// PartitionFrac is the alive fraction below which the network counts
	// as partitioned (default 0.5).
	PartitionFrac *Float `json:"partition_frac,omitempty"`
	// EpochSuperframes is the live-simulated superframes per sampled epoch
	// (default 16).
	EpochSuperframes *int `json:"epoch_superframes,omitempty"`
	// MaxEpochs bounds the live-simulated epochs per replica (default 512).
	MaxEpochs *int `json:"max_epochs,omitempty"`
	// HorizonHours optionally caps the covered network time.
	HorizonHours *Float `json:"horizon_hours,omitempty"`
}

// MaxLifetimeEpochSuperframes caps one epoch's live simulation length.
const MaxLifetimeEpochSuperframes = 10000

// MaxLifetimeEpochs caps the live-simulated epochs of one replica.
const MaxLifetimeEpochs = 100000

// Config materializes the wire form into a lifetime.Config over the given
// simulator base.
func (w *LifetimeWire) Config(sim netsim.Config) (lifetime.Config, *Error) {
	cfg := lifetime.Config{Sim: sim, Supply: battery.CoinCellCR2032()}
	if w == nil {
		return cfg, nil
	}
	switch w.Supply {
	case "", "cr2032":
		cfg.Supply = battery.CoinCellCR2032()
	case "aa":
		cfg.Supply = battery.AACell()
	case "harvester":
		cfg.Supply = battery.VibrationHarvester()
	default:
		return cfg, errf("lifetime.supply", "unknown supply %q (want cr2032, aa or harvester)", w.Supply)
	}
	if w.CapacityJ != nil {
		if v := float64(*w.CapacityJ); math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return cfg, errf("lifetime.capacity_j", "%g not a finite non-negative capacity", v)
		}
		cfg.Supply.CapacityJ = float64(*w.CapacityJ)
	}
	if w.SelfDischargePerYear != nil {
		if v := float64(*w.SelfDischargePerYear); !(v >= 0 && v <= 1) { // also rejects NaN
			return cfg, errf("lifetime.self_discharge_per_year", "%g outside [0,1]", v)
		}
		cfg.Supply.SelfDischargePerYear = float64(*w.SelfDischargePerYear)
	}
	if w.HarvestUW != nil {
		if v := float64(*w.HarvestUW); math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return cfg, errf("lifetime.harvest_uw", "%g not a finite non-negative power", v)
		}
		cfg.Supply.Harvest = units.Power(*w.HarvestUW) * units.MicroWatt
	}
	if w.ThresholdJ != nil {
		if v := float64(*w.ThresholdJ); math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return cfg, errf("lifetime.threshold_j", "%g not a finite non-negative threshold", v)
		}
		cfg.ThresholdJ = float64(*w.ThresholdJ)
	}
	if w.PartitionFrac != nil {
		if v := float64(*w.PartitionFrac); !(v > 0 && v <= 1) { // also rejects NaN
			return cfg, errf("lifetime.partition_frac", "%g outside (0,1]", v)
		}
		cfg.PartitionFrac = float64(*w.PartitionFrac)
	}
	if w.EpochSuperframes != nil {
		if *w.EpochSuperframes < 1 || *w.EpochSuperframes > MaxLifetimeEpochSuperframes {
			return cfg, errf("lifetime.epoch_superframes", "%d outside 1..%d", *w.EpochSuperframes, MaxLifetimeEpochSuperframes)
		}
		cfg.EpochSuperframes = *w.EpochSuperframes
	}
	if w.MaxEpochs != nil {
		if *w.MaxEpochs < 1 || *w.MaxEpochs > MaxLifetimeEpochs {
			return cfg, errf("lifetime.max_epochs", "%d outside 1..%d", *w.MaxEpochs, MaxLifetimeEpochs)
		}
		cfg.MaxEpochs = *w.MaxEpochs
	}
	if w.HorizonHours != nil {
		if v := float64(*w.HorizonHours); math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return cfg, errf("lifetime.horizon_hours", "%g not a finite non-negative horizon", v)
		}
		cfg.HorizonHours = float64(*w.HorizonHours)
	}
	return cfg, nil
}

// LifetimeCurvePointWire is one step of the alive-vs-time curve.
type LifetimeCurvePointWire struct {
	TimeS Float `json:"time_s"`
	Alive int   `json:"alive"`
}

// LifetimeResultWire is the JSON form of one lifetime.Result replica.
// Times travel in exact seconds ("+Inf" for never, per the wire.Float
// contract), so a summary merged from decoded shards is bit-identical to
// one merged in process.
type LifetimeResultWire struct {
	Seed  int64 `json:"seed"`
	Nodes int   `json:"nodes"`

	FirstDeathS Float `json:"first_death_s"`
	PartitionS  Float `json:"partition_s"`
	LastDeathS  Float `json:"last_death_s"`

	AliveAtEnd     int   `json:"alive_at_end"`
	AliveFracAtEnd Float `json:"alive_frac_at_end"`
	Deaths         int   `json:"deaths"`

	SimulatedS   Float `json:"simulated_s"`
	FastForwardS Float `json:"fast_forward_s"`
	Epochs       int   `json:"epochs"`
	Sustainable  bool  `json:"sustainable"`

	Curve []LifetimeCurvePointWire `json:"curve"`
}

// WireLifetimeResult converts to the wire form.
func WireLifetimeResult(r lifetime.Result) LifetimeResultWire {
	curve := make([]LifetimeCurvePointWire, len(r.Curve))
	for i, p := range r.Curve {
		curve[i] = LifetimeCurvePointWire{TimeS: Float(p.TimeS), Alive: p.Alive}
	}
	return LifetimeResultWire{
		Seed:           r.Seed,
		Nodes:          r.Nodes,
		FirstDeathS:    Float(r.FirstDeathS),
		PartitionS:     Float(r.PartitionS),
		LastDeathS:     Float(r.LastDeathS),
		AliveAtEnd:     r.AliveAtEnd,
		AliveFracAtEnd: Float(r.AliveFracAtEnd),
		Deaths:         r.Deaths,
		SimulatedS:     Float(r.SimulatedS),
		FastForwardS:   Float(r.FastForwardS),
		Epochs:         r.Epochs,
		Sustainable:    r.Sustainable,
		Curve:          curve,
	}
}

// Result reconstructs the lifetime.Result fields the wire form carries —
// exactly the observables lifetime.Merge folds. Fields the wire omits
// (the config, the curve fractions) stay zero.
func (w LifetimeResultWire) Result() lifetime.Result {
	curve := make([]lifetime.CurvePoint, len(w.Curve))
	for i, p := range w.Curve {
		curve[i] = lifetime.CurvePoint{TimeS: float64(p.TimeS), Alive: p.Alive}
		if w.Nodes > 0 {
			curve[i].Frac = float64(p.Alive) / float64(w.Nodes)
		}
	}
	return lifetime.Result{
		Seed:           w.Seed,
		Nodes:          w.Nodes,
		FirstDeathS:    float64(w.FirstDeathS),
		PartitionS:     float64(w.PartitionS),
		LastDeathS:     float64(w.LastDeathS),
		AliveAtEnd:     w.AliveAtEnd,
		AliveFracAtEnd: float64(w.AliveFracAtEnd),
		Deaths:         w.Deaths,
		SimulatedS:     float64(w.SimulatedS),
		FastForwardS:   float64(w.FastForwardS),
		Epochs:         w.Epochs,
		Sustainable:    w.Sustainable,
		Curve:          curve,
	}
}

// LifetimeSummaryWire is the across-replica statistics block of a lifetime
// query (the same merged statistics lifetime.RunReplicas reports, in
// hours).
type LifetimeSummaryWire struct {
	Replicas int     `json:"replicas"`
	Seeds    []int64 `json:"seeds"`

	FirstDeathHours ReplicaStatWire `json:"first_death_hours"`
	PartitionHours  ReplicaStatWire `json:"partition_hours"`
	LastDeathHours  ReplicaStatWire `json:"last_death_hours"`
	AliveFracAtEnd  ReplicaStatWire `json:"alive_frac_at_end"`
}

// WireLifetimeSummary converts a merged lifetime.ReplicaSet's statistics
// to the wire form.
func WireLifetimeSummary(rs lifetime.ReplicaSet) LifetimeSummaryWire {
	return LifetimeSummaryWire{
		Replicas:        rs.Replicas,
		Seeds:           rs.Seeds,
		FirstDeathHours: WireReplicaStat(rs.FirstDeathHours),
		PartitionHours:  WireReplicaStat(rs.PartitionHours),
		LastDeathHours:  WireReplicaStat(rs.LastDeathHours),
		AliveFracAtEnd:  WireReplicaStat(rs.AliveFracAtEnd),
	}
}

// buildLifetime compiles a lifetime query: one task per replica (each a
// full epoch-sampled lifetime run under its derived seed), merged into the
// across-replica summary — the same shape buildReplicas gives simulation
// replicas, so distributed sharding and the store work unchanged.
func (q *Query) buildLifetime(workers int) (*exec, *Error) {
	simCfg, aerr := q.simConfig()
	if aerr != nil {
		return nil, aerr
	}
	lcfg, aerr := q.Lifetime.Config(simCfg)
	if aerr != nil {
		return nil, aerr
	}
	if q.Direct == nil && (q.Replicas < 0 || q.Replicas > MaxReplicas) {
		return nil, errf("replicas", "%d outside 0..%d", q.Replicas, MaxReplicas)
	}
	n := q.Replicas
	if n < 1 {
		n = 1
	}
	seeds := netsim.ReplicaSeeds(simCfg.Seed, n)
	tasks := make([]task, n)
	for i := range tasks {
		seed := seeds[i]
		idx := i
		tasks[i] = task{label: "lifetime[" + strconv.Itoa(idx) + "]", seed: &seed, run: func(ctx context.Context) (TaskResult, error) {
			c := lcfg
			c.Sim.Seed = seed
			r := lifetime.Run(c)
			rw := WireLifetimeResult(r)
			return TaskResult{Lifetime: &rw, value: r}, nil
		}}
	}
	return &exec{tasks: tasks, assemble: func(rs *ResultSet) {
		results := make([]lifetime.Result, len(rs.Results))
		for i := range rs.Results {
			results[i] = rs.Results[i].value.(lifetime.Result)
		}
		set := lifetime.Merge(lcfg, seeds, results)
		summary := WireLifetimeSummary(set)
		rs.LifetimeSummary = &summary
		rs.value = set
	}, assembleWire: func(rs *ResultSet) *Error {
		// The wire payloads carry the merged observables in exact seconds,
		// so the summary recomputed here is bit-identical to the in-process
		// assemble above.
		results := make([]lifetime.Result, len(rs.Results))
		for i := range rs.Results {
			if rs.Results[i].Lifetime == nil {
				return errf("results", "task %d carries no lifetime payload", i)
			}
			results[i] = rs.Results[i].Lifetime.Result()
		}
		set := lifetime.Merge(lcfg, seeds, results)
		summary := WireLifetimeSummary(set)
		rs.LifetimeSummary = &summary
		return nil
	}}, nil
}
