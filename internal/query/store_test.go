package query

import (
	"bytes"
	"context"
	"testing"
)

// mapStore is an in-memory TaskStore recording traffic, for pinning when the
// plan consults and feeds the store.
type mapStore struct {
	m    map[int][]byte
	hits int
	puts int
}

func newMapStore() *mapStore { return &mapStore{m: map[int][]byte{}} }

func (s *mapStore) GetTask(index int) ([]byte, bool) {
	b, ok := s.m[index]
	if ok {
		s.hits++
	}
	return b, ok
}

func (s *mapStore) PutTask(index int, encoded []byte) {
	s.puts++
	s.m[index] = append([]byte(nil), encoded...)
}

func storeGridQuery() Query {
	return Query{
		Kind:     KindGrid,
		Params:   quickParams(),
		Losses:   &Axis{Values: []Float{55, 70, 85}},
		Payloads: &IntAxis{Values: []int{20, 100}},
	}
}

func encodeRun(t *testing.T, q Query, st TaskStore) ([]byte, *ResultSet) {
	t.Helper()
	plan, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	plan.Store = st
	rs, err := plan.Execute(context.Background(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rs.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return b, rs
}

// TestExecuteStoreByteIdentity is the tentpole invariant at the plan layer:
// a cold store-backed run, a fully warm run and a storeless run all encode
// to identical bytes, and the warm run computes nothing (every task is a
// hit, zero puts).
func TestExecuteStoreByteIdentity(t *testing.T) {
	q := storeGridQuery()
	want, _ := encodeRun(t, q, nil)

	st := newMapStore()
	cold, _ := encodeRun(t, q, st)
	if !bytes.Equal(cold, want) {
		t.Fatal("cold store-backed run deviates from storeless run")
	}
	n := len(st.m)
	if n == 0 || st.puts != n {
		t.Fatalf("cold run stored %d entries with %d puts", n, st.puts)
	}

	st.hits, st.puts = 0, 0
	warm, _ := encodeRun(t, q, st)
	if !bytes.Equal(warm, want) {
		t.Fatal("warm run deviates from storeless run")
	}
	if st.hits != n || st.puts != 0 {
		t.Fatalf("warm run: %d hits %d puts, want %d hits 0 puts", st.hits, st.puts, n)
	}
}

// TestExecuteStorePartialWarm seeds a strict subset of tasks and checks the
// run recomputes exactly the holes, still byte-identically.
func TestExecuteStorePartialWarm(t *testing.T) {
	q := storeGridQuery()
	want, _ := encodeRun(t, q, nil)

	full := newMapStore()
	encodeRun(t, q, full)
	n := len(full.m)

	partial := newMapStore()
	for i := 0; i < n; i += 2 {
		partial.m[i] = full.m[i]
	}
	seeded := len(partial.m)
	got, _ := encodeRun(t, q, partial)
	if !bytes.Equal(got, want) {
		t.Fatal("partially warm run deviates from storeless run")
	}
	if partial.puts != n-seeded {
		t.Fatalf("partial run put %d entries, want %d (the holes)", partial.puts, n-seeded)
	}
}

// TestExecuteRangeStore pins the worker-side path: ExecuteRange consults and
// feeds the store exactly like Execute, and warm ranges recompute nothing.
func TestExecuteRangeStore(t *testing.T) {
	q := storeGridQuery()
	plan, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	st := newMapStore()
	plan.Store = st
	n := plan.NumTasks()
	collect := func() []TaskResult {
		var out []TaskResult
		if err := plan.ExecuteRange(context.Background(), 2, 0, n, func(tr TaskResult, _ float64) error {
			out = append(out, tr)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	cold := collect()
	if st.puts != n {
		t.Fatalf("cold range put %d of %d", st.puts, n)
	}
	st.hits, st.puts = 0, 0
	warm := collect()
	if st.hits != n || st.puts != 0 {
		t.Fatalf("warm range: %d hits %d puts, want %d hits 0 puts", st.hits, st.puts, n)
	}
	for i := range cold {
		cb, _ := EncodeTaskResult(cold[i])
		wb, _ := EncodeTaskResult(warm[i])
		if !bytes.Equal(cb, wb) {
			t.Fatalf("task %d: warm range bytes deviate", i)
		}
	}
}

// TestReplicasStoreWarmAssemble runs the replicas kind warm from the store:
// assembly must go through the wire-side merger (store hits carry no
// in-process values) and still produce the identical summary bytes.
func TestReplicasStoreWarmAssemble(t *testing.T) {
	q := Query{
		Kind:     KindReplicas,
		Sim:      &SimConfigWire{Nodes: intPtr(10), Superframes: intPtr(4)},
		Replicas: 6,
	}
	want, wantRS := encodeRun(t, q, nil)
	if wantRS.Summary == nil {
		t.Fatal("replicas run produced no summary")
	}
	st := newMapStore()
	encodeRun(t, q, st)
	st.hits, st.puts = 0, 0
	warm, warmRS := encodeRun(t, q, st)
	if st.hits != 6 || st.puts != 0 {
		t.Fatalf("warm replicas run: %d hits %d puts", st.hits, st.puts)
	}
	if warmRS.Summary == nil {
		t.Fatal("warm replicas run lost the summary")
	}
	if !bytes.Equal(warm, want) {
		t.Fatal("warm replicas bytes deviate (wire-side assembly broken?)")
	}
}

// TestWireExactGatesStore: kinds whose task payloads are not proven to
// round-trip exactly (scenario, experiment) must never read or write the
// per-task store.
func TestWireExactGatesStore(t *testing.T) {
	for _, k := range Kinds() {
		want := k != KindScenario && k != KindExperiment
		if got := k.WireExact(); got != want {
			t.Errorf("%s.WireExact() = %v, want %v", k, got, want)
		}
	}
	q := Query{Kind: KindScenario, Scenario: "dense-cell"}
	plan, err := Compile(q)
	if err != nil {
		t.Skip("scenario catalog unavailable:", err)
	}
	st := newMapStore()
	plan.Store = st
	if _, err := plan.Execute(context.Background(), 2, nil); err != nil {
		t.Fatal(err)
	}
	if st.hits != 0 || st.puts != 0 {
		t.Fatalf("scenario run touched the store: %d hits %d puts", st.hits, st.puts)
	}
}

// TestTaskResultCodecStability: EncodeTaskResult is a fixed point through
// DecodeTaskResult — the identity the store's byte-identity contract
// reduces to.
func TestTaskResultCodecStability(t *testing.T) {
	q := storeGridQuery()
	plan, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := plan.Execute(context.Background(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range rs.Results {
		b1, err := EncodeTaskResult(tr)
		if err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
		dec, err := DecodeTaskResult(b1)
		if err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
		b2, err := EncodeTaskResult(dec)
		if err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("task %d: encode∘decode not a fixed point\n b1 %s\n b2 %s", i, b1, b2)
		}
	}
	if _, err := DecodeTaskResult([]byte("{broken")); err == nil {
		t.Fatal("broken bytes decoded")
	}
}

// TestStoreDecodeFailureIsMiss: a corrupt store entry degrades to a miss and
// a recompute, never a wrong result.
func TestStoreDecodeFailureIsMiss(t *testing.T) {
	q := storeGridQuery()
	want, _ := encodeRun(t, q, nil)
	st := newMapStore()
	encodeRun(t, q, st)
	st.m[0] = []byte("{definitely not a task result")
	st.m[3] = []byte{}
	st.hits, st.puts = 0, 0
	got, _ := encodeRun(t, q, st)
	if !bytes.Equal(got, want) {
		t.Fatal("corrupt entries changed result bytes")
	}
	if st.puts != 2 {
		t.Fatalf("corrupt entries re-stored %d times, want 2", st.puts)
	}
}
