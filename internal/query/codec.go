package query

import (
	"fmt"
	"math"
	"strings"
	"time"

	"dense802154/internal/channel"
	"dense802154/internal/contention"
	"dense802154/internal/core"
	"dense802154/internal/frame"
	"dense802154/internal/mac"
	"dense802154/internal/netsim"
	"dense802154/internal/phy"
	"dense802154/internal/radio"
	"dense802154/internal/scenario"
	"dense802154/internal/stats"
	"dense802154/internal/units"
	"dense802154/internal/wire"
)

// Error is a structured request-validation failure; the HTTP handlers
// render it as a 400 body {"error": {...}}.
type Error struct {
	Message string `json:"message"`
	// Field names the offending request field (JSON path), when known.
	Field string `json:"field,omitempty"`
}

// Error implements error.
func (e *Error) Error() string {
	if e.Field != "" {
		return e.Field + ": " + e.Message
	}
	return e.Message
}

// errf builds a field-scoped validation Error.
func errf(field, format string, args ...any) *Error {
	return &Error{Field: field, Message: fmt.Sprintf(format, args...)}
}

// Float is the exact-round-trip JSON float shared with the scenario golden
// files; see internal/wire for the encoding contract (shortest finite form,
// "+Inf"/"-Inf"/"NaN" strings for non-finite values).
type Float = wire.Float

// SuperframeWire selects the beacon structure.
type SuperframeWire struct {
	BO uint8 `json:"bo"`
	SO uint8 `json:"so"`
}

// ContentionWire selects and parameterizes the contention source.
type ContentionWire struct {
	// Source is "montecarlo" (default) or "approx" (the closed-form
	// baseline).
	Source string `json:"source,omitempty"`
	// Superframes is the Monte-Carlo run length (default 60, as in
	// DefaultParams).
	Superframes int `json:"superframes,omitempty"`
	// Seed drives the Monte-Carlo RNG (default 2005).
	Seed *int64 `json:"seed,omitempty"`
	// Arrival is "uniform" (default) or "at-beacon".
	Arrival string `json:"arrival,omitempty"`
}

// ParamsWire is the JSON form of core.Params: every field is optional and
// defaults to the paper's §5 case-study configuration (core.DefaultParams).
// Interface-typed model inputs (radio, BER model, contention source) are
// selected by name.
type ParamsWire struct {
	// Radio is "cc2420" (default), "cc2420-fast" (transitions halved),
	// "cc2420-scalable" (low-power listen at half RX power) or
	// "cc2420-improved" (both §5 improvement perspectives).
	Radio string `json:"radio,omitempty"`
	// BER is "eq1" (default, the paper's measured regression) or "awgn"
	// (the analytic O-QPSK bound).
	BER string `json:"ber,omitempty"`
	// Contention selects the contention source.
	Contention *ContentionWire `json:"contention,omitempty"`
	// Superframe sets BO/SO (default 6/6).
	Superframe *SuperframeWire `json:"superframe,omitempty"`

	PayloadBytes *int   `json:"payload_bytes,omitempty"`
	Load         *Float `json:"load,omitempty"`
	PathLossDB   *Float `json:"path_loss_db,omitempty"`
	// TXLevel is the transmit step index; -1 (the default) requests link
	// adaptation.
	TXLevel     *int   `json:"tx_level,omitempty"`
	NMax        *int   `json:"n_max,omitempty"`
	BeaconBytes *int   `json:"beacon_bytes,omitempty"`
	WakeupLead  *int64 `json:"wakeup_lead_ns,omitempty"`
	CCAListen   *int64 `json:"cca_listen_ns,omitempty"`

	PaperAckAccounting     *bool `json:"paper_ack_accounting,omitempty"`
	IncludeIFS             *bool `json:"include_ifs,omitempty"`
	IncludeShutdownLeakage *bool `json:"include_shutdown_leakage,omitempty"`

	// Workers is the parallelism the request asks for; the server clamps
	// it to its worker-token budget. Results never depend on it.
	Workers int `json:"workers,omitempty"`
}

// RadioByName resolves the named characterization through the shared
// radio.ByName registry into a field-scoped validation error.
func RadioByName(name string) (*radio.Characterization, *Error) {
	r, ok := radio.ByName(name)
	if !ok {
		return nil, errf("radio", "unknown radio %q (want %s)", name, strings.Join(radio.Names(), ", "))
	}
	return r, nil
}

// berByName resolves the named bit-error model.
func berByName(name string) (phy.BERModel, *Error) {
	switch name {
	case "", "eq1":
		return phy.Eq1, nil
	case "awgn":
		return phy.AWGNBER{NoiseFigureDB: phy.DefaultNoiseFigureDB}, nil
	}
	return nil, errf("ber", "unknown BER model %q (want eq1 or awgn)", name)
}

// MaxMCSuperframes caps one Monte-Carlo characterization requested over
// the wire. An in-flight characterization is not interruptible (it computes
// under the single-flight cache), so this bound also caps how long a
// canceled request can pin its worker tokens.
const MaxMCSuperframes = 20000

// source resolves the contention wire config.
func (w *ContentionWire) source(workers int) (contention.Source, *Error) {
	if w == nil {
		w = &ContentionWire{}
	}
	switch w.Source {
	case "", "montecarlo":
		cfg := contention.Config{Superframes: 60, Seed: 2005, Workers: workers}
		if w.Superframes != 0 {
			if w.Superframes < 1 || w.Superframes > MaxMCSuperframes {
				return nil, errf("contention.superframes", "%d outside 1..%d", w.Superframes, MaxMCSuperframes)
			}
			cfg.Superframes = w.Superframes
		}
		if w.Seed != nil {
			cfg.Seed = *w.Seed
		}
		switch w.Arrival {
		case "", "uniform":
			cfg.Arrival = contention.ArrivalUniform
		case "at-beacon":
			cfg.Arrival = contention.ArrivalAtBeacon
		default:
			return nil, errf("contention.arrival", "unknown arrival model %q (want uniform or at-beacon)", w.Arrival)
		}
		return contention.NewMCSource(cfg), nil
	case "approx":
		return contention.Approx{}, nil
	}
	return nil, errf("contention.source", "unknown source %q (want montecarlo or approx)", w.Source)
}

// Params materializes the wire form onto core.DefaultParams and validates
// the result. workers is the granted parallelism applied to the model sweep
// and mcWorkers the parallelism of one Monte-Carlo contention
// characterization. The two levels nest — each sweep goroutine can trigger
// a characterization — so callers pass the full grant to exactly one level
// (mcWorkers = 1 for sweeps and batches, workers = grant only for single
// evaluations) and total concurrency stays within the grant. Neither value
// ever changes the computed bytes.
func (w ParamsWire) Params(workers, mcWorkers int) (core.Params, *Error) {
	p := core.DefaultParams()
	p.Workers = workers

	r, aerr := RadioByName(w.Radio)
	if aerr != nil {
		return core.Params{}, aerr
	}
	p.Radio = r
	ber, aerr := berByName(w.BER)
	if aerr != nil {
		return core.Params{}, aerr
	}
	p.BER = ber
	src, aerr := w.Contention.source(mcWorkers)
	if aerr != nil {
		return core.Params{}, aerr
	}
	p.Contention = src

	if w.Superframe != nil {
		sf, err := mac.NewSuperframe(w.Superframe.BO, w.Superframe.SO)
		if err != nil {
			return core.Params{}, errf("superframe", "%v", err)
		}
		p.Superframe = sf
	}
	if w.PayloadBytes != nil {
		p.PayloadBytes = *w.PayloadBytes
	}
	if w.Load != nil {
		p.Load = float64(*w.Load)
	}
	if w.PathLossDB != nil {
		p.PathLossDB = float64(*w.PathLossDB)
	}
	if w.TXLevel != nil {
		p.TXLevelIndex = *w.TXLevel
	}
	if w.NMax != nil {
		p.NMax = *w.NMax
	}
	if w.BeaconBytes != nil {
		if *w.BeaconBytes < 1 || *w.BeaconBytes > 127 {
			return core.Params{}, errf("beacon_bytes", "%d outside 1..127", *w.BeaconBytes)
		}
		p.BeaconBytes = *w.BeaconBytes
	}
	if w.WakeupLead != nil {
		if *w.WakeupLead < 0 {
			return core.Params{}, errf("wakeup_lead_ns", "negative wake-up lead")
		}
		p.WakeupLead = time.Duration(*w.WakeupLead)
	}
	if w.CCAListen != nil {
		if *w.CCAListen < 0 {
			return core.Params{}, errf("cca_listen_ns", "negative CCA listen time")
		}
		p.CCAListen = time.Duration(*w.CCAListen)
	}
	if w.PaperAckAccounting != nil {
		p.PaperAckAccounting = *w.PaperAckAccounting
	}
	if w.IncludeIFS != nil {
		p.IncludeIFS = *w.IncludeIFS
	}
	if w.IncludeShutdownLeakage != nil {
		p.IncludeShutdownLeakage = *w.IncludeShutdownLeakage
	}

	if err := p.Validate(); err != nil {
		return core.Params{}, &Error{Message: err.Error(), Field: "params"}
	}
	return p, nil
}

// ContStatsWire is the JSON form of contention.Stats.
type ContStatsWire struct {
	TcontNS int64 `json:"tcont_ns"`
	NCCA    Float `json:"ncca"`
	PrCF    Float `json:"pr_cf"`
	PrCol   Float `json:"pr_col"`
}

// WireContStats converts to the wire form.
func WireContStats(s contention.Stats) ContStatsWire {
	return ContStatsWire{
		TcontNS: int64(s.Tcont),
		NCCA:    Float(s.NCCA),
		PrCF:    Float(s.PrCF),
		PrCol:   Float(s.PrCol),
	}
}

// Stats converts back to the model type.
func (w ContStatsWire) Stats() contention.Stats {
	return contention.Stats{
		Tcont: time.Duration(w.TcontNS),
		NCCA:  float64(w.NCCA),
		PrCF:  float64(w.PrCF),
		PrCol: float64(w.PrCol),
	}
}

// BreakdownWire is the JSON form of core.Breakdown (joules per phase).
type BreakdownWire struct {
	BeaconJ     Float `json:"beacon_j"`
	ContentionJ Float `json:"contention_j"`
	TransmitJ   Float `json:"transmit_j"`
	AckJ        Float `json:"ack_j"`
	IFSJ        Float `json:"ifs_j"`
	SleepJ      Float `json:"sleep_j"`
}

// WireBreakdown converts to the wire form.
func WireBreakdown(b core.Breakdown) BreakdownWire {
	return BreakdownWire{
		BeaconJ:     Float(b.Beacon),
		ContentionJ: Float(b.Contention),
		TransmitJ:   Float(b.Transmit),
		AckJ:        Float(b.Ack),
		IFSJ:        Float(b.IFS),
		SleepJ:      Float(b.Sleep),
	}
}

// Breakdown converts back to the model type.
func (w BreakdownWire) Breakdown() core.Breakdown {
	return core.Breakdown{
		Beacon:     units.Energy(w.BeaconJ),
		Contention: units.Energy(w.ContentionJ),
		Transmit:   units.Energy(w.TransmitJ),
		Ack:        units.Energy(w.AckJ),
		IFS:        units.Energy(w.IFSJ),
		Sleep:      units.Energy(w.SleepJ),
	}
}

// StateTimesWire is the JSON form of core.StateTimes (ns per state).
type StateTimesWire struct {
	ShutdownNS int64 `json:"shutdown_ns"`
	IdleNS     int64 `json:"idle_ns"`
	RXNS       int64 `json:"rx_ns"`
	TXNS       int64 `json:"tx_ns"`
}

// WireStateTimes converts to the wire form.
func WireStateTimes(s core.StateTimes) StateTimesWire {
	return StateTimesWire{
		ShutdownNS: int64(s.Shutdown),
		IdleNS:     int64(s.Idle),
		RXNS:       int64(s.RX),
		TXNS:       int64(s.TX),
	}
}

// StateTimes converts back to the model type.
func (w StateTimesWire) StateTimes() core.StateTimes {
	return core.StateTimes{
		Shutdown: time.Duration(w.ShutdownNS),
		Idle:     time.Duration(w.IdleNS),
		RX:       time.Duration(w.RXNS),
		TX:       time.Duration(w.TXNS),
	}
}

// MetricsWire is the JSON form of core.Metrics. Durations travel as exact
// nanosecond integers and floats as exact shortest-round-trip values, so a
// decoded MetricsWire reproduces the in-process Metrics bit for bit.
type MetricsWire struct {
	TXLevelIndex int   `json:"tx_level_index"`
	TXPowerDBm   Float `json:"tx_power_dbm"`
	PRxDBm       Float `json:"prx_dbm"`

	TpacketNS int64         `json:"tpacket_ns"`
	Cont      ContStatsWire `json:"contention"`

	PrBit      Float `json:"pr_bit"`
	PrE        Float `json:"pr_e"`
	PrTF       Float `json:"pr_tf"`
	PrCF       Float `json:"pr_cf"`
	ExpectedTx Float `json:"expected_tx"`

	TidleNS int64 `json:"tidle_ns"`
	TTxNS   int64 `json:"ttx_ns"`
	TRxNS   int64 `json:"trx_ns"`

	States          StateTimesWire `json:"states"`
	AvgPowerW       Float          `json:"avg_power_w"`
	EnergyPerFrameJ Float          `json:"energy_per_frame_j"`
	PrFail          Float          `json:"pr_fail"`
	DelayNS         int64          `json:"delay_ns"`
	EnergyPerBitJ   Float          `json:"energy_per_bit_j"`
	Breakdown       BreakdownWire  `json:"breakdown"`
}

// WireMetrics converts to the wire form.
func WireMetrics(m core.Metrics) MetricsWire {
	return MetricsWire{
		TXLevelIndex:    m.TXLevelIndex,
		TXPowerDBm:      Float(m.TXPowerDBm),
		PRxDBm:          Float(m.PRxDBm),
		TpacketNS:       int64(m.Tpacket),
		Cont:            WireContStats(m.Cont),
		PrBit:           Float(m.PrBit),
		PrE:             Float(m.PrE),
		PrTF:            Float(m.PrTF),
		PrCF:            Float(m.PrCF),
		ExpectedTx:      Float(m.ExpectedTx),
		TidleNS:         int64(m.Tidle),
		TTxNS:           int64(m.TTx),
		TRxNS:           int64(m.TRx),
		States:          WireStateTimes(m.States),
		AvgPowerW:       Float(m.AvgPower),
		EnergyPerFrameJ: Float(m.EnergyPerFrame),
		PrFail:          Float(m.PrFail),
		DelayNS:         int64(m.Delay),
		EnergyPerBitJ:   Float(m.EnergyPerBitJ),
		Breakdown:       WireBreakdown(m.Breakdown),
	}
}

// Metrics converts back to the model type.
func (w MetricsWire) Metrics() core.Metrics {
	return core.Metrics{
		TXLevelIndex:   w.TXLevelIndex,
		TXPowerDBm:     float64(w.TXPowerDBm),
		PRxDBm:         float64(w.PRxDBm),
		Tpacket:        time.Duration(w.TpacketNS),
		Cont:           w.Cont.Stats(),
		PrBit:          float64(w.PrBit),
		PrE:            float64(w.PrE),
		PrTF:           float64(w.PrTF),
		PrCF:           float64(w.PrCF),
		ExpectedTx:     float64(w.ExpectedTx),
		Tidle:          time.Duration(w.TidleNS),
		TTx:            time.Duration(w.TTxNS),
		TRx:            time.Duration(w.TRxNS),
		States:         w.States.StateTimes(),
		AvgPower:       units.Power(w.AvgPowerW),
		EnergyPerFrame: units.Energy(w.EnergyPerFrameJ),
		PrFail:         float64(w.PrFail),
		Delay:          time.Duration(w.DelayNS),
		EnergyPerBitJ:  float64(w.EnergyPerBitJ),
		Breakdown:      w.Breakdown.Breakdown(),
	}
}

// CaseStudyConfigWire is the JSON form of core.CaseStudyConfig; omitted
// fields default to the paper's 1600-node scenario.
type CaseStudyConfigWire struct {
	Nodes              *int   `json:"nodes,omitempty"`
	Channels           *int   `json:"channels,omitempty"`
	DataBytesPerSecond *Float `json:"data_bytes_per_second,omitempty"`
	MinLossDB          *Float `json:"min_loss_db,omitempty"`
	MaxLossDB          *Float `json:"max_loss_db,omitempty"`
	LossGridPoints     *int   `json:"loss_grid_points,omitempty"`
}

// Config materializes the wire form onto core.DefaultCaseStudy.
func (w *CaseStudyConfigWire) Config() (core.CaseStudyConfig, *Error) {
	cfg := core.DefaultCaseStudy()
	if w == nil {
		return cfg, nil
	}
	if w.Nodes != nil {
		cfg.Nodes = *w.Nodes
	}
	if w.Channels != nil {
		cfg.Channels = *w.Channels
	}
	if w.DataBytesPerSecond != nil {
		cfg.DataBytesPerSecond = float64(*w.DataBytesPerSecond)
	}
	if w.MinLossDB != nil {
		cfg.MinLossDB = float64(*w.MinLossDB)
	}
	if w.MaxLossDB != nil {
		cfg.MaxLossDB = float64(*w.MaxLossDB)
	}
	if w.LossGridPoints != nil {
		cfg.LossGridPoints = *w.LossGridPoints
	}
	if cfg.Nodes < 1 {
		return cfg, errf("config.nodes", "%d < 1", cfg.Nodes)
	}
	if cfg.Channels < 1 {
		return cfg, errf("config.channels", "%d < 1", cfg.Channels)
	}
	if cfg.MinLossDB >= cfg.MaxLossDB {
		return cfg, errf("config.min_loss_db", "min %g ≥ max %g", cfg.MinLossDB, cfg.MaxLossDB)
	}
	if cfg.LossGridPoints < 2 || cfg.LossGridPoints > 100000 {
		return cfg, errf("config.loss_grid_points", "%d outside 2..100000", cfg.LossGridPoints)
	}
	return cfg, nil
}

// CaseStudyResultWire is the JSON form of core.CaseStudyResult.
type CaseStudyResultWire struct {
	Load Float `json:"load"`

	AvgPowerW    Float `json:"avg_power_w"`
	MeanPrFail   Float `json:"mean_pr_fail"`
	Coverage     Float `json:"coverage"`
	MeanDelayNS  int64 `json:"mean_delay_ns"`
	MedianDelay  int64 `json:"median_delay_ns"`
	NominalDelay int64 `json:"nominal_delay_ns"`
	MeanEnergyJ  Float `json:"mean_energy_j_per_bit"`

	Breakdown BreakdownWire  `json:"breakdown"`
	States    StateTimesWire `json:"states"`

	LossGrid  []Float `json:"loss_grid_db"`
	PowerUW   []Float `json:"power_uw"`
	PrFail    []Float `json:"pr_fail"`
	LevelUsed []int   `json:"level_used"`
}

// WireCaseStudyResult converts to the wire form.
func WireCaseStudyResult(r core.CaseStudyResult) CaseStudyResultWire {
	return CaseStudyResultWire{
		Load:         Float(r.Load),
		AvgPowerW:    Float(r.AvgPower),
		MeanPrFail:   Float(r.MeanPrFail),
		Coverage:     Float(r.Coverage),
		MeanDelayNS:  int64(r.MeanDelay),
		MedianDelay:  int64(r.MedianDelay),
		NominalDelay: int64(r.NominalDelay),
		MeanEnergyJ:  Float(r.MeanEnergyJ),
		Breakdown:    WireBreakdown(r.Breakdown),
		States:       WireStateTimes(r.States),
		LossGrid:     wire.Floats(r.LossGrid),
		PowerUW:      wire.Floats(r.PowerUW),
		PrFail:       wire.Floats(r.PrFail),
		LevelUsed:    append([]int(nil), r.LevelUsed...),
	}
}

// SimConfigWire is the JSON form of netsim.Config; omitted fields use the
// simulator's 100-node channel defaults.
type SimConfigWire struct {
	Nodes                *int            `json:"nodes,omitempty"`
	PayloadBytes         *int            `json:"payload_bytes,omitempty"`
	Superframe           *SuperframeWire `json:"superframe,omitempty"`
	Radio                string          `json:"radio,omitempty"`
	MinLossDB            *Float          `json:"min_loss_db,omitempty"`
	MaxLossDB            *Float          `json:"max_loss_db,omitempty"`
	TargetPRxDBm         *Float          `json:"target_prx_dbm,omitempty"`
	NMax                 *int            `json:"n_max,omitempty"`
	TransmitProb         *Float          `json:"transmit_prob,omitempty"`
	Superframes          *int            `json:"superframes,omitempty"`
	BeaconBytes          *int            `json:"beacon_bytes,omitempty"`
	MaxPacketSuperframes *int            `json:"max_packet_superframes,omitempty"`
	LowPowerListen       *bool           `json:"low_power_listen,omitempty"`
	Seed                 *int64          `json:"seed,omitempty"`
}

// Config materializes the wire form into a netsim.Config (zero fields keep
// the simulator defaults).
func (w *SimConfigWire) Config() (netsim.Config, *Error) {
	var cfg netsim.Config
	if w == nil {
		w = &SimConfigWire{}
	}
	if w.Nodes != nil {
		if *w.Nodes < 1 || *w.Nodes > 10000 {
			return cfg, errf("config.nodes", "%d outside 1..10000", *w.Nodes)
		}
		cfg.Nodes = *w.Nodes
	}
	if w.PayloadBytes != nil {
		if *w.PayloadBytes < 1 || *w.PayloadBytes > frame.MaxDataPayload {
			return cfg, errf("config.payload_bytes", "%d outside 1..%d", *w.PayloadBytes, frame.MaxDataPayload)
		}
		cfg.PayloadBytes = *w.PayloadBytes
	}
	if w.Superframe != nil {
		sf, err := mac.NewSuperframe(w.Superframe.BO, w.Superframe.SO)
		if err != nil {
			return cfg, errf("config.superframe", "%v", err)
		}
		cfg.Superframe = sf
	}
	if w.Radio != "" {
		r, aerr := RadioByName(w.Radio)
		if aerr != nil {
			aerr.Field = "config.radio"
			return cfg, aerr
		}
		cfg.Radio = r
	}
	if w.MinLossDB != nil || w.MaxLossDB != nil {
		lo, hi := 55.0, 95.0
		if w.MinLossDB != nil {
			lo = float64(*w.MinLossDB)
		}
		if w.MaxLossDB != nil {
			hi = float64(*w.MaxLossDB)
		}
		// The comparison form rejects NaN and reversed/infinite ranges in
		// one go — a non-finite bound would feed garbage losses to every
		// node.
		if !(lo < hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			return cfg, errf("config.min_loss_db", "loss range %g..%g not a finite ascending interval", lo, hi)
		}
		cfg.Deployment = channel.UniformLoss{MinDB: lo, MaxDB: hi}
	}
	if w.TargetPRxDBm != nil {
		if v := float64(*w.TargetPRxDBm); math.IsNaN(v) || math.IsInf(v, 0) {
			return cfg, errf("config.target_prx_dbm", "must be finite")
		}
		cfg.TargetPRxDBm = float64(*w.TargetPRxDBm)
	}
	if w.NMax != nil {
		if *w.NMax < 1 || *w.NMax > 100 {
			return cfg, errf("config.n_max", "%d outside 1..100", *w.NMax)
		}
		cfg.NMax = *w.NMax
	}
	if w.TransmitProb != nil {
		if v := float64(*w.TransmitProb); !(v >= 0 && v <= 1) { // also rejects NaN
			return cfg, errf("config.transmit_prob", "%g outside [0,1]", v)
		}
		cfg.TransmitProb = float64(*w.TransmitProb)
	}
	if w.Superframes != nil {
		if *w.Superframes < 1 || *w.Superframes > 100000 {
			return cfg, errf("config.superframes", "%d outside 1..100000", *w.Superframes)
		}
		cfg.Superframes = *w.Superframes
	}
	if w.BeaconBytes != nil {
		if *w.BeaconBytes < 1 || *w.BeaconBytes > 127 {
			return cfg, errf("config.beacon_bytes", "%d outside 1..127", *w.BeaconBytes)
		}
		cfg.BeaconBytes = *w.BeaconBytes
	}
	if w.MaxPacketSuperframes != nil {
		if *w.MaxPacketSuperframes < 1 || *w.MaxPacketSuperframes > 100000 {
			return cfg, errf("config.max_packet_superframes", "%d outside 1..100000", *w.MaxPacketSuperframes)
		}
		cfg.MaxPacketSuperframes = *w.MaxPacketSuperframes
	}
	if w.LowPowerListen != nil {
		cfg.LowPowerListen = *w.LowPowerListen
	}
	if w.Seed != nil {
		cfg.Seed = *w.Seed
	}
	return cfg, nil
}

// SimResultWire is the JSON headline of one netsim.Result replica.
type SimResultWire struct {
	Seed             int64         `json:"seed"`
	AvgPowerW        Float         `json:"avg_power_w"`
	DeliveryRatio    Float         `json:"delivery_ratio"`
	PrFailPerAttempt Float         `json:"pr_fail_per_attempt"`
	PacketsOffered   int           `json:"packets_offered"`
	PacketsDelivered int           `json:"packets_delivered"`
	PacketsDropped   int           `json:"packets_dropped"`
	PacketsExpired   int           `json:"packets_expired"`
	Transmissions    int           `json:"transmissions"`
	Collisions       int           `json:"collisions"`
	AccessFailures   int           `json:"access_failures"`
	CorruptedFrames  int           `json:"corrupted_frames"`
	MeanDelayNS      int64         `json:"mean_delay_ns"`
	P95DelayNS       int64         `json:"p95_delay_ns"`
	Contention       ContStatsWire `json:"contention"`
}

// WireSimResult converts to the wire form.
func WireSimResult(seed int64, r netsim.Result) SimResultWire {
	return SimResultWire{
		Seed:             seed,
		AvgPowerW:        Float(r.AvgPowerPerNode),
		DeliveryRatio:    Float(r.DeliveryRatio),
		PrFailPerAttempt: Float(r.PrFailPerAttempt),
		PacketsOffered:   r.PacketsOffered,
		PacketsDelivered: r.PacketsDelivered,
		PacketsDropped:   r.PacketsDropped,
		PacketsExpired:   r.PacketsExpired,
		Transmissions:    r.Transmissions,
		Collisions:       r.Collisions,
		AccessFailures:   r.AccessFailures,
		CorruptedFrames:  r.CorruptedFrames,
		MeanDelayNS:      int64(r.MeanDelay),
		P95DelayNS:       int64(r.P95Delay),
		Contention:       WireContStats(r.Contention),
	}
}

// Result reconstructs the netsim.Result fields the wire form carries —
// exactly the observables netsim.Merge folds into the across-replica
// summary. Floats and durations round-trip exactly (wire.Float, integer
// nanoseconds), so a summary assembled from decoded shards is bit-identical
// to one assembled from in-process results; fields the wire omits (the
// ledger, the attempts histogram, traces) stay zero.
func (w SimResultWire) Result() netsim.Result {
	return netsim.Result{
		AvgPowerPerNode:  units.Power(w.AvgPowerW),
		DeliveryRatio:    float64(w.DeliveryRatio),
		PrFailPerAttempt: float64(w.PrFailPerAttempt),
		PacketsOffered:   w.PacketsOffered,
		PacketsDelivered: w.PacketsDelivered,
		PacketsDropped:   w.PacketsDropped,
		PacketsExpired:   w.PacketsExpired,
		Transmissions:    w.Transmissions,
		Collisions:       w.Collisions,
		AccessFailures:   w.AccessFailures,
		CorruptedFrames:  w.CorruptedFrames,
		MeanDelay:        time.Duration(w.MeanDelayNS),
		P95Delay:         time.Duration(w.P95DelayNS),
		Contention:       w.Contention.Stats(),
	}
}

// ReplicaStatWire is the JSON form of netsim.ReplicaStat.
type ReplicaStatWire struct {
	Mean Float `json:"mean"`
	CI95 Float `json:"ci95"`
	Min  Float `json:"min"`
	Max  Float `json:"max"`
}

// WireReplicaStat converts to the wire form.
func WireReplicaStat(s netsim.ReplicaStat) ReplicaStatWire {
	return ReplicaStatWire{Mean: Float(s.Mean), CI95: Float(s.CI95), Min: Float(s.Min), Max: Float(s.Max)}
}

// EnergyCurveWire is the JSON form of one core.EnergyCurve (a Fig. 7
// fixed-level energy-vs-path-loss curve).
type EnergyCurveWire struct {
	LevelIndex int     `json:"level_index"`
	LevelDBm   Float   `json:"level_dbm"`
	LossDB     []Float `json:"loss_db"`
	EnergyJ    []Float `json:"energy_j_per_bit"`
}

// WireEnergyCurve converts to the wire form.
func WireEnergyCurve(c core.EnergyCurve) EnergyCurveWire {
	return EnergyCurveWire{
		LevelIndex: c.LevelIndex,
		LevelDBm:   Float(c.LevelDBm),
		LossDB:     wire.Floats(c.LossDB),
		EnergyJ:    wire.Floats(c.EnergyJ),
	}
}

// ThresholdWire is the JSON form of one core.Threshold (a Fig. 7
// link-adaptation switching point).
type ThresholdWire struct {
	FromLevel int   `json:"from_level"`
	ToLevel   int   `json:"to_level"`
	FromDBm   Float `json:"from_dbm"`
	ToDBm     Float `json:"to_dbm"`
	LossDB    Float `json:"loss_db"`
}

// WireThreshold converts to the wire form.
func WireThreshold(t core.Threshold) ThresholdWire {
	return ThresholdWire{
		FromLevel: t.FromLevel,
		ToLevel:   t.ToLevel,
		FromDBm:   Float(t.FromDBm),
		ToDBm:     Float(t.ToDBm),
		LossDB:    Float(t.LossDB),
	}
}

// PayloadSeriesWire is the JSON form of the Fig. 8 energy-vs-payload series.
type PayloadSeriesWire struct {
	SizesBytes []int   `json:"sizes_bytes"`
	EnergyJ    []Float `json:"energy_j_per_bit"`
}

// WirePayloadSeries converts a payload grid and its stats.Series to the
// wire form.
func WirePayloadSeries(sizes []int, s stats.Series) PayloadSeriesWire {
	return PayloadSeriesWire{
		SizesBytes: append([]int(nil), sizes...),
		EnergyJ:    wire.Floats(s.Y),
	}
}

// ScenarioReportWire is the JSON form of one cross-model scenario run with
// its optional golden diff (the same shape POST /v1/scenarios/{name}
// returns).
type ScenarioReportWire struct {
	Result *scenario.Result     `json:"result"`
	Diff   *scenario.DiffReport `json:"diff,omitempty"`
}

// ExperimentReportWire is the JSON form of one experiment driver's output.
type ExperimentReportWire struct {
	Name   string         `json:"name"`
	Tables []*stats.Table `json:"tables"`
}
