package query

import (
	"bytes"
	"context"
	"errors"
	"math"
	"reflect"
	"strconv"
	"testing"

	"dense802154/internal/core"
	"dense802154/internal/netsim"
)

// quickParams is a ParamsWire with a short Monte-Carlo run so tests finish
// fast.
func quickParams() *ParamsWire {
	seed := int64(3)
	return &ParamsWire{Contention: &ContentionWire{Superframes: 8, Seed: &seed}}
}

func TestAxisExplicitValues(t *testing.T) {
	a := &Axis{Values: []Float{55, 60.5, 95}}
	got, aerr := a.Grid("losses", nil)
	if aerr != nil {
		t.Fatal(aerr)
	}
	if !reflect.DeepEqual(got, []float64{55, 60.5, 95}) {
		t.Fatalf("grid = %v", got)
	}
}

func TestAxisRangePointsMatchesLossGrid(t *testing.T) {
	from, to := Float(55), Float(95)
	points := 81
	a := &Axis{From: &from, To: &to, Points: &points}
	got, aerr := a.Grid("losses", nil)
	if aerr != nil {
		t.Fatal(aerr)
	}
	want := DefaultLossGrid()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("range axis does not reproduce the case-study grid: %d vs %d points", len(got), len(want))
	}
}

func TestAxisRangeStep(t *testing.T) {
	from, to, step := Float(1), Float(2), Float(0.25)
	a := &Axis{From: &from, To: &to, Step: &step}
	got, aerr := a.Grid("x", nil)
	if aerr != nil {
		t.Fatal(aerr)
	}
	if !reflect.DeepEqual(got, []float64{1, 1.25, 1.5, 1.75, 2}) {
		t.Fatalf("grid = %v", got)
	}
}

func TestAxisRejectsNonFinite(t *testing.T) {
	inf := Float(1)
	for _, a := range []*Axis{
		{Values: []Float{55, Float(nan())}},
		{From: &inf, To: floatPtr(infVal())},
		{From: floatPtr(-infVal()), To: &inf},
	} {
		if _, aerr := a.Grid("losses", nil); aerr == nil {
			t.Fatalf("axis %+v accepted non-finite input", a)
		}
	}
}

func TestAxisDefault(t *testing.T) {
	var a *Axis
	got, aerr := a.Grid("losses", DefaultLossGrid)
	if aerr != nil {
		t.Fatal(aerr)
	}
	if !reflect.DeepEqual(got, DefaultLossGrid()) {
		t.Fatal("nil axis must select the default grid")
	}
}

func TestIntAxisRejectsOverflowingRanges(t *testing.T) {
	// Hostile endpoints near MaxInt used to wrap the count arithmetic
	// negative (panicking the slice allocation) or wrap the walk into an
	// endless loop; the magnitude bound must reject them cleanly.
	huge := int(^uint(0) >> 1) // MaxInt
	for _, a := range []*IntAxis{
		{From: intPtr(0), To: intPtr(huge)},
		{From: intPtr(0), To: intPtr(huge), Step: intPtr(1)},
		{From: intPtr(huge - 1), To: intPtr(huge), Step: intPtr(5)},
		{From: intPtr(-huge), To: intPtr(huge)},
		{From: intPtr(0), To: intPtr(10), Step: intPtr(huge)},
	} {
		if _, aerr := a.Grid("payloads", nil); aerr == nil {
			t.Fatalf("axis %+v accepted an overflowing range", a)
		}
	}
}

func TestIntAxisForms(t *testing.T) {
	from, to, step := 5, 11, 3
	a := &IntAxis{From: &from, To: &to, Step: &step}
	got, aerr := a.Grid("payloads", nil)
	if aerr != nil {
		t.Fatal(aerr)
	}
	if !reflect.DeepEqual(got, []int{5, 8, 11}) {
		t.Fatalf("grid = %v", got)
	}
	if _, aerr := (&IntAxis{Values: []int{3}, From: &from}).Grid("payloads", nil); aerr == nil {
		t.Fatal("mixed forms must be rejected")
	}
}

func TestCompileRejectsUnknownKind(t *testing.T) {
	_, err := Compile(Query{Kind: "bogus"})
	var aerr *Error
	if !errors.As(err, &aerr) || aerr.Field != "kind" {
		t.Fatalf("err = %v", err)
	}
	if _, err := Compile(Query{}); err == nil {
		t.Fatal("missing kind must be rejected")
	}
}

func TestCompileRejectsWrongVersion(t *testing.T) {
	_, err := Compile(Query{Version: 1, Kind: KindEvaluate})
	var aerr *Error
	if !errors.As(err, &aerr) || aerr.Field != "version" {
		t.Fatalf("err = %v", err)
	}
	if _, err := Compile(Query{Version: Version, Kind: KindSimulate}); err != nil {
		t.Fatalf("explicit current version rejected: %v", err)
	}
}

func TestCompileRejectsForeignFields(t *testing.T) {
	cases := []Query{
		{Kind: KindEvaluate, Replicas: 3},
		{Kind: KindEvaluate, Sim: &SimConfigWire{}},
		{Kind: KindSimulate, Params: &ParamsWire{}},
		{Kind: KindScenario, Scenario: "baseline-case-study", Quick: true},
		{Kind: KindBatch, Batch: []ParamsWire{{}}, Losses: &Axis{}},
		{Kind: KindExperiment, Experiment: "fig8", Diff: true},
	}
	for _, q := range cases {
		if _, err := Compile(q); err == nil {
			t.Fatalf("kind %s accepted a foreign field: %+v", q.Kind, q)
		}
	}
}

func TestCompileValidatesEagerly(t *testing.T) {
	for _, q := range []Query{
		{Kind: KindBatch}, // empty batch
		{Kind: KindEvaluate, Params: &ParamsWire{Radio: "bogus"}},        // unknown radio
		{Kind: KindScenario, Scenario: "no-such-scenario"},               // unknown scenario
		{Kind: KindExperiment, Experiment: "no-such-experiment"},         // unknown experiment
		{Kind: KindReplicas, Replicas: MaxReplicas + 1},                  // replica bound
		{Kind: KindSimulate, Sim: &SimConfigWire{Nodes: intPtr(100001)}}, // sim bound
	} {
		if _, err := Compile(q); err == nil {
			t.Fatalf("query %+v compiled", q)
		}
	}
}

func TestEvaluateMatchesCore(t *testing.T) {
	// The spec path must agree with a hand-materialized core call — the
	// two go through different plumbing (plan task vs direct Evaluate).
	p, aerr := quickParams().Params(1, 1)
	if aerr != nil {
		t.Fatal(aerr)
	}
	want, err := core.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(context.Background(), Query{Kind: KindEvaluate, Params: quickParams(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := rs.Results[0].Value().(core.Metrics)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("query evaluate deviates from core.Evaluate:\n got %+v\nwant %+v", got, want)
	}
	if rs.Results[0].Metrics == nil {
		t.Fatal("wire payload missing")
	}
	if *rs.Results[0].Metrics != WireMetrics(want) {
		t.Fatal("wire payload deviates from WireMetrics of the core result")
	}
}

func TestReplicasMatchesRunReplicas(t *testing.T) {
	sim := &SimConfigWire{Nodes: intPtr(10), Superframes: intPtr(4)}
	cfg, aerr := sim.Config()
	if aerr != nil {
		t.Fatal(aerr)
	}
	want, err := netsim.RunReplicas(context.Background(), cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(context.Background(), Query{Kind: KindReplicas, Sim: sim, Replicas: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := rs.Value().(netsim.ReplicaSet)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("replicas query deviates from netsim.RunReplicas")
	}
	if rs.Summary == nil || rs.Summary.Replicas != 3 {
		t.Fatalf("summary = %+v", rs.Summary)
	}
	if len(rs.Results) != 3 {
		t.Fatalf("results = %d", len(rs.Results))
	}
}

// TestTraceBitIdentity pins the observability contract of Query.Trace: the
// trace reports the plan faithfully (task count, labels, replica seeds) and
// tracing never disturbs computed bytes — the Results of a traced run at
// any worker count are byte-identical to an untraced run's.
func TestTraceBitIdentity(t *testing.T) {
	base := Query{Kind: KindReplicas, Sim: &SimConfigWire{Nodes: intPtr(10), Superframes: intPtr(3)}, Replicas: 4}

	resultsJSON := func(rs *ResultSet) []byte {
		stripped := *rs
		stripped.Trace = nil
		b, err := stripped.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	plain, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Fatal("untraced query returned a trace")
	}
	want := resultsJSON(plain)

	for _, workers := range []int{1, 4} {
		q := base
		q.Workers = workers
		q.Trace = true
		rs, err := Run(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if got := resultsJSON(rs); !bytes.Equal(got, want) {
			t.Fatalf("traced run at workers=%d changed result bytes", workers)
		}
		tr := rs.Trace
		if tr == nil {
			t.Fatalf("workers=%d: no trace on a traced query", workers)
		}
		if tr.Kind != KindReplicas || tr.Tasks != 4 || len(tr.Spans) != 4 {
			t.Fatalf("trace shape = kind %s tasks %d spans %d", tr.Kind, tr.Tasks, len(tr.Spans))
		}
		cfg, _ := base.Sim.Config()
		seeds := netsim.ReplicaSeeds(cfg.Seed, 4)
		for i, sp := range tr.Spans {
			if sp.Index != i || sp.Label != "replica["+strconv.Itoa(i)+"]" {
				t.Fatalf("span %d: index %d label %q", i, sp.Index, sp.Label)
			}
			if sp.Seed == nil || *sp.Seed != seeds[i] {
				t.Fatalf("span %d: seed %v, want %d", i, sp.Seed, seeds[i])
			}
			if sp.WallMS < 0 {
				t.Fatalf("span %d: negative wall time %v", i, sp.WallMS)
			}
		}
	}
}

func TestStreamYieldsPlanOrder(t *testing.T) {
	batch := make([]ParamsWire, 6)
	for i := range batch {
		pb := 20 + 10*i
		pw := *quickParams()
		pw.PayloadBytes = &pb
		batch[i] = pw
	}
	var streamed []int
	rs, err := RunStream(context.Background(), Query{Kind: KindBatch, Batch: batch, Workers: 4},
		func(tr TaskResult) error {
			streamed = append(streamed, tr.Index)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(batch) {
		t.Fatalf("streamed %d of %d", len(streamed), len(batch))
	}
	for i, idx := range streamed {
		if idx != i {
			t.Fatalf("stream order %v not plan order", streamed)
		}
	}
	// The streamed values and the assembled set are the same objects.
	for i := range rs.Results {
		if rs.Results[i].Index != i || rs.Results[i].Metrics == nil {
			t.Fatalf("result %d malformed", i)
		}
	}
}

func TestStreamYieldErrorCancels(t *testing.T) {
	batch := make([]ParamsWire, 8)
	for i := range batch {
		pw := *quickParams()
		batch[i] = pw
	}
	boom := errors.New("boom")
	_, err := RunStream(context.Background(), Query{Kind: KindBatch, Batch: batch, Workers: 2},
		func(tr TaskResult) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the yield error", err)
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, Query{Kind: KindEvaluate, Params: quickParams()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestWorkerCountIndependence(t *testing.T) {
	q := Query{Kind: KindReplicas, Sim: &SimConfigWire{Nodes: intPtr(8), Superframes: intPtr(3)}, Replicas: 4}
	var bodies [][]byte
	for _, w := range []int{1, 3} {
		q.Workers = w
		rs, err := Run(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rs.Encode()
		if err != nil {
			t.Fatal(err)
		}
		bodies = append(bodies, b)
	}
	if string(bodies[0]) != string(bodies[1]) {
		t.Fatal("ResultSet bytes depend on the worker count")
	}
}

func TestEncodeByteStable(t *testing.T) {
	q := Query{Kind: KindEvaluate, Params: quickParams(), Workers: 1}
	rs1, err := Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := rs1.Encode()
	b2, _ := rs2.Encode()
	if string(b1) != string(b2) {
		t.Fatal("Encode is not byte-stable across runs")
	}
}

func intPtr(v int) *int         { return &v }
func floatPtr(v float64) *Float { f := Float(v); return &f }
func nan() float64              { return math.NaN() }
func infVal() float64           { return math.Inf(1) }
