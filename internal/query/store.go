package query

import (
	"bytes"
	"encoding/json"
)

// This file is the query side of the content-addressed result store seam
// (internal/store). The query package defines the canonical encoding and the
// narrow TaskStore interface the plan consults; the store package owns
// hashing, tiering and eviction. The dependency points one way only — store
// imports query, never the reverse.

// TaskStore is the per-task result cache a Plan consults during execution:
// already keyed to one query's content hash, indexed by plan task index.
// GetTask returns the canonical encoded TaskResult bytes of a stored task;
// PutTask stores freshly computed ones. Implementations must be safe for
// concurrent use; the returned bytes must not be mutated by either side.
// store.Store.Tasks produces one.
type TaskStore interface {
	GetTask(index int) ([]byte, bool)
	PutTask(index int, encoded []byte)
}

// Canonical returns the canonical byte encoding of the query — the exact
// bytes a content-addressed cache key hashes. Two queries with equal
// canonical bytes compute byte-identical results, because every field that
// can change result bytes is encoded and every field that cannot is
// normalized away first:
//
//   - workers is parallelism: results are bit-identical at any worker count
//     (the standing invariant), so it is zeroed.
//   - trace is observability: traces carry measured wall times and are
//     excluded from byte-identity, so it is zeroed (traced queries must not
//     be served whole from a byte cache — the caller checks, see
//     internal/service).
//   - timeout_ms is scheduling: a query either completes with its full
//     deterministic result or fails, so it is zeroed.
//   - version 0 means "current": it is normalized to Version, which also
//     keys every entry to the wire version that produced it — a future
//     version bump invalidates the whole store instead of serving bytes
//     across an encoding change.
//
// The encoding itself is the repository's byte-stable JSON form (compact,
// HTML escaping off, fixed struct field order, wire.Float floats, trailing
// newline), so equal queries always produce equal bytes. The second return
// is false when the query is not cacheable: a Direct query carries
// in-process inputs (interface-valued BER models, custom deployments) that
// have no wire form and therefore no canonical bytes.
func (q Query) Canonical() ([]byte, bool) {
	if q.Direct != nil {
		return nil, false
	}
	q.Version = Version
	q.Workers = 0
	q.Trace = false
	q.TimeoutMS = 0
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(q); err != nil {
		return nil, false
	}
	return buf.Bytes(), true
}

// WireExact reports whether the kind's per-task wire payloads decode and
// re-encode byte-identically — the property that lets a stored TaskResult
// stand in for a freshly computed one anywhere (the same property
// Plan.Assemble leans on to merge distributed shards). The numeric payload
// kinds hold it by construction (wire.Float round-trips exactly); scenario
// and experiment embed foreign report types whose round-trip is not pinned,
// so their per-task results are never cached — only their whole-query
// response bytes are (which store the served bytes verbatim).
func (k Kind) WireExact() bool {
	switch k {
	case KindScenario, KindExperiment:
		return false
	}
	return true
}

// EncodeTaskResult renders one TaskResult in the canonical byte form stored
// by a TaskStore: the same compact, HTML-escaping-off encoding (with
// trailing newline) the streaming surfaces emit, so stored bytes are
// directly comparable to stream lines.
func EncodeTaskResult(tr TaskResult) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(tr); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeTaskResult parses canonical TaskResult bytes back. The decoded
// result carries wire payloads only (Value() is nil), which is why
// store-enabled plans assemble through the wire path.
func DecodeTaskResult(b []byte) (TaskResult, error) {
	var tr TaskResult
	if err := json.Unmarshal(b, &tr); err != nil {
		return TaskResult{}, err
	}
	return tr, nil
}

// storeEnabled reports whether task-level store consultation is on for this
// plan: a store is attached and the kind's payloads round-trip exactly.
func (p *Plan) storeEnabled() bool {
	return p.Store != nil && p.Kind.WireExact()
}

// taskFromStore fetches task index from the attached store. Undecodable
// entries are treated as misses — the store may hold truncated or corrupt
// bytes (crash mid-write on the disk tier); a wrong byte must never surface,
// so anything suspect is recomputed.
func (p *Plan) taskFromStore(index int) (TaskResult, bool) {
	if !p.storeEnabled() {
		return TaskResult{}, false
	}
	b, ok := p.Store.GetTask(index)
	if !ok {
		return TaskResult{}, false
	}
	tr, err := DecodeTaskResult(b)
	if err != nil {
		return TaskResult{}, false
	}
	return tr, true
}

// storeTask stores a freshly computed task result (Index and Label already
// stamped). Encoding failures just skip the store: caching is an
// optimization, never a correctness dependency.
func (p *Plan) storeTask(tr TaskResult) {
	if !p.storeEnabled() {
		return
	}
	if b, err := EncodeTaskResult(tr); err == nil {
		p.Store.PutTask(tr.Index, b)
	}
}
