package query

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"time"

	"dense802154/internal/core"
	"dense802154/internal/engine"
	"dense802154/internal/experiments"
	"dense802154/internal/frame"
	"dense802154/internal/mac"
	"dense802154/internal/netsim"
	"dense802154/internal/scenario"
)

// TaskResult is one unit of a ResultSet: the outcome of one plan task,
// tagged by index in plan order. Exactly one payload field is set,
// according to the query kind. The streaming surfaces emit TaskResults one
// per line; the non-streaming ResultSet carries the same values in its
// Results slice, so the two transports are bit-identical element by
// element.
type TaskResult struct {
	Index int    `json:"index"`
	Label string `json:"label,omitempty"`

	Metrics    *MetricsWire          `json:"metrics,omitempty"`
	CaseStudy  *CaseStudyResultWire  `json:"casestudy,omitempty"`
	Curves     []EnergyCurveWire     `json:"curves,omitempty"`
	Thresholds []ThresholdWire       `json:"thresholds,omitempty"`
	Payload    *PayloadSeriesWire    `json:"payload,omitempty"`
	Sim        *SimResultWire        `json:"sim,omitempty"`
	Lifetime   *LifetimeResultWire   `json:"lifetime,omitempty"`
	Scenario   *ScenarioReportWire   `json:"scenario,omitempty"`
	Experiment *ExperimentReportWire `json:"experiment,omitempty"`

	// value is the in-process model result the facade wrappers unwrap;
	// it does not travel on the wire.
	value any
}

// Value returns the in-process result behind the wire payload: core.Metrics
// (evaluate, batch), core.CaseStudyResult, []core.EnergyCurve,
// []core.Threshold, stats.Series, netsim.Result (simulate, replicas),
// lifetime.Result (lifetime), *scenario.Result or []*stats.Table, per the
// query kind. It is nil on a TaskResult decoded from the wire.
func (t *TaskResult) Value() any { return t.value }

// ReplicaSummaryWire is the across-replica statistics block of a replicas
// query (the same merged statistics netsim.RunReplicas reports).
type ReplicaSummaryWire struct {
	Replicas int     `json:"replicas"`
	Seeds    []int64 `json:"seeds"`

	AvgPowerUW    ReplicaStatWire `json:"avg_power_uw"`
	DeliveryRatio ReplicaStatWire `json:"delivery_ratio"`
	PrFail        ReplicaStatWire `json:"pr_fail"`
	PrCF          ReplicaStatWire `json:"pr_cf"`
	PrCol         ReplicaStatWire `json:"pr_col"`
	NCCA          ReplicaStatWire `json:"ncca"`
	TcontMS       ReplicaStatWire `json:"tcont_ms"`
	MeanDelayMS   ReplicaStatWire `json:"mean_delay_ms"`
}

// WireReplicaSummary converts a merged ReplicaSet's statistics to the wire
// form.
func WireReplicaSummary(rs netsim.ReplicaSet) ReplicaSummaryWire {
	return ReplicaSummaryWire{
		Replicas:      rs.Replicas,
		Seeds:         rs.Seeds,
		AvgPowerUW:    WireReplicaStat(rs.AvgPowerUW),
		DeliveryRatio: WireReplicaStat(rs.DeliveryRatio),
		PrFail:        WireReplicaStat(rs.PrFail),
		PrCF:          WireReplicaStat(rs.PrCF),
		PrCol:         WireReplicaStat(rs.PrCol),
		NCCA:          WireReplicaStat(rs.NCCA),
		TcontMS:       WireReplicaStat(rs.TcontMS),
		MeanDelayMS:   WireReplicaStat(rs.MeanDelayMS),
	}
}

// TaskSpanWire is one task's timing inside a plan trace: its plan index and
// label, the seed it ran under where the plan assigns per-task seeds
// (replica tasks), and its wall time. Wall times are measured, not
// computed — two identical queries produce different spans — so traces are
// never part of the byte-identity contract.
type TaskSpanWire struct {
	Index  int    `json:"index"`
	Label  string `json:"label"`
	Seed   *int64 `json:"seed,omitempty"`
	WallMS Float  `json:"wall_ms"`
}

// PlanTraceWire is the opt-in execution trace of one query (Query.Trace):
// the plan shape, the worker grant it ran under, the end-to-end wall time
// and one TaskSpanWire per task in plan order.
type PlanTraceWire struct {
	Kind    Kind           `json:"kind"`
	Workers int            `json:"workers"`
	Tasks   int            `json:"tasks"`
	WallMS  Float          `json:"wall_ms"`
	Spans   []TaskSpanWire `json:"spans"`
}

// ResultSet is the tagged outcome of one Query: the per-task results in
// plan order plus, for replica plans, the across-replica summary.
type ResultSet struct {
	Version int                 `json:"version"`
	Kind    Kind                `json:"kind"`
	Results []TaskResult        `json:"results"`
	Summary *ReplicaSummaryWire `json:"summary,omitempty"`
	// LifetimeSummary is the across-replica statistics block of a lifetime
	// query (the lifetime analogue of Summary).
	LifetimeSummary *LifetimeSummaryWire `json:"lifetime_summary,omitempty"`
	Trace           *PlanTraceWire       `json:"trace,omitempty"`

	// value is the merged in-process result where one exists (a
	// netsim.ReplicaSet for kind replicas, a lifetime.ReplicaSet for kind
	// lifetime); see TaskResult.Value for the per-task payloads.
	value any
}

// Value returns the merged in-process result (netsim.ReplicaSet for kind
// replicas, lifetime.ReplicaSet for kind lifetime, nil otherwise).
func (rs *ResultSet) Value() any { return rs.value }

// Encode renders the byte-stable JSON form: compact, HTML escaping off,
// trailing newline. Struct field order is fixed, floats travel as
// internal/wire.Float and no maps are involved, so the same ResultSet
// always encodes to the same bytes — the property that makes the HTTP v2
// body, the streamed NDJSON lines and an in-process Run comparable with
// bytes.Equal.
func (rs *ResultSet) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(rs); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// task is one schedulable unit of a compiled plan.
type task struct {
	label string
	seed  *int64 // per-task seed, set where the plan derives one (replicas)
	run   func(ctx context.Context) (TaskResult, error)
}

// exec is one materialized execution: the tasks plus the optional assembly
// step that derives the merged summary from the per-task results.
// assemble consumes the in-process task values; assembleWire recomputes the
// same summary from the wire payloads alone, for results that crossed a
// machine boundary (Plan.Assemble) and therefore carry no values.
type exec struct {
	tasks        []task
	assemble     func(rs *ResultSet)
	assembleWire func(rs *ResultSet) *Error
}

// Plan is a compiled Query: a validated, deterministic list of engine
// tasks. Compile materializes the declarative specs once to validate them;
// Execute re-materializes with the granted worker count (worker counts
// never change computed bytes — only how fast they arrive) and runs the
// tasks on the shared engine pool.
type Plan struct {
	// Kind echoes the query kind.
	Kind Kind
	// Workers is the parallelism the query asked for (0 ⇒ NumCPU).
	Workers int
	// Trace carries the query's tracing opt-in; Execute attaches a
	// PlanTraceWire to the ResultSet when set.
	Trace bool
	// Timeout is the per-query execution deadline (Query.TimeoutMS;
	// 0 = none). Execute and ExecuteRange bound their context with it.
	Timeout time.Duration
	// Store, when set, is the per-task result cache of this plan's query
	// (store.Store.Tasks keys one to the query's content hash): Execute and
	// ExecuteRange consult it before computing a task and store what they
	// compute. Stored results carry wire payloads only, so a store-enabled
	// plan assembles through the wire path — bit-identical to the in-process
	// one by the exact-round-trip float contract. Attach it between Compile
	// and Execute; it never changes result bytes, only whether they are
	// recomputed.
	Store TaskStore

	numTasks int
	labels   []string
	build    func(workers int) (*exec, *Error)
}

// NumTasks reports how many tasks the plan schedules (batch elements,
// simulation replicas, or 1 for single-result kinds).
func (p *Plan) NumTasks() int { return p.numTasks }

// Labels lists the task labels in plan order.
func (p *Plan) Labels() []string { return append([]string(nil), p.labels...) }

// Compile validates q and lowers it to an execution plan. Validation
// failures return a field-scoped *Error suitable for a structured 400.
func Compile(q Query) (*Plan, error) {
	if aerr := q.validateShape(); aerr != nil {
		return nil, aerr
	}
	var build func(workers int) (*exec, *Error)
	switch q.Kind {
	case KindEvaluate:
		build = q.buildEvaluate
	case KindBatch:
		build = q.buildBatch
	case KindCaseStudy:
		build = q.buildCaseStudy
	case KindPathLossSweep:
		build = q.buildPathLossSweep
	case KindThresholds:
		build = q.buildThresholds
	case KindPayloadSweep:
		build = q.buildPayloadSweep
	case KindSimulate:
		build = q.buildSimulate
	case KindReplicas:
		build = q.buildReplicas
	case KindLifetime:
		build = q.buildLifetime
	case KindScenario:
		build = q.buildScenario
	case KindExperiment:
		build = q.buildExperiment
	case KindGrid:
		build = q.buildGrid
	}
	// Materialize once at the request's own parallelism to surface every
	// validation error before any work is scheduled.
	ex, aerr := build(engine.ResolveWorkers(q.Workers))
	if aerr != nil {
		return nil, aerr
	}
	// A timeout_ms past ~292 years would overflow the Duration multiply;
	// clamp to the maximum representable deadline (operationally: none).
	timeout := time.Duration(q.TimeoutMS) * time.Millisecond
	if q.TimeoutMS > math.MaxInt64/int64(time.Millisecond) {
		timeout = math.MaxInt64
	}
	p := &Plan{
		Kind: q.Kind, Workers: q.Workers, Trace: q.Trace,
		Timeout:  timeout,
		numTasks: len(ex.tasks), build: build,
	}
	for _, t := range ex.tasks {
		p.labels = append(p.labels, t.label)
	}
	return p, nil
}

// Execute runs the plan on workers goroutines (≤ 0 ⇒ NumCPU) and returns
// the assembled ResultSet. When yield is non-nil it receives every
// TaskResult in plan order as soon as it and all its predecessors have
// completed — tasks still run concurrently, the emission order is just
// pinned to the plan — and a yield error cancels the remaining tasks and is
// returned. A canceled ctx stops the plan promptly with ctx.Err().
func (p *Plan) Execute(ctx context.Context, workers int, yield func(TaskResult) error) (*ResultSet, error) {
	workers = engine.ResolveWorkers(workers)
	if p.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.Timeout)
		defer cancel()
	}
	ex, aerr := p.build(workers)
	if aerr != nil {
		return nil, aerr
	}
	n := len(ex.tasks)
	results := make([]TaskResult, n)
	var spans []TaskSpanWire
	var planStart time.Time
	if p.Trace {
		spans = make([]TaskSpanWire, n)
		planStart = time.Now()
	}
	runTask := func(ctx context.Context, i int) error {
		var taskStart time.Time
		if spans != nil {
			taskStart = time.Now()
		}
		r, hit := p.taskFromStore(i)
		var err error
		if !hit {
			r, err = ex.tasks[i].run(ctx)
		}
		if spans != nil {
			spans[i] = TaskSpanWire{
				Index:  i,
				Label:  ex.tasks[i].label,
				Seed:   ex.tasks[i].seed,
				WallMS: Float(time.Since(taskStart).Seconds() * 1e3),
			}
		}
		if err != nil {
			return err
		}
		r.Index = i
		r.Label = ex.tasks[i].label
		if !hit {
			p.storeTask(r)
		}
		results[i] = r
		return nil
	}

	if yield == nil {
		if err := engine.Map(ctx, workers, n, func(i int) error { return runTask(ctx, i) }); err != nil {
			return nil, err
		}
	} else {
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		done := make(chan int, n)
		var mapErr error
		go func() {
			defer close(done)
			mapErr = engine.Map(ctx, workers, n, func(i int) error {
				if err := runTask(ctx, i); err != nil {
					return err
				}
				select {
				case done <- i:
					return nil
				case <-ctx.Done():
					return ctx.Err()
				}
			})
		}()
		var yieldErr error
		ready := make([]bool, n)
		next := 0
		for i := range done {
			ready[i] = true
			for next < n && ready[next] {
				if yieldErr == nil {
					if err := yield(results[next]); err != nil {
						yieldErr = err
						cancel()
					}
				}
				next++
			}
		}
		if yieldErr != nil {
			return nil, yieldErr
		}
		if mapErr != nil {
			return nil, mapErr
		}
	}

	rs := &ResultSet{Version: Version, Kind: p.Kind, Results: results}
	if p.storeEnabled() && ex.assembleWire != nil {
		// Store hits carry wire payloads only (no in-process value), so the
		// summary is recomputed from the wire — bit-identical by the
		// exact-round-trip contract Plan.Assemble already relies on.
		if aerr := ex.assembleWire(rs); aerr != nil {
			return nil, aerr
		}
	} else if ex.assemble != nil {
		ex.assemble(rs)
	}
	if spans != nil {
		rs.Trace = &PlanTraceWire{
			Kind:    p.Kind,
			Workers: workers,
			Tasks:   n,
			WallMS:  Float(time.Since(planStart).Seconds() * 1e3),
			Spans:   spans,
		}
	}
	return rs, nil
}

// ExecuteRange runs only the tasks [from,to) of the plan on workers
// goroutines and yields each TaskResult in plan order as soon as it and all
// its range predecessors have completed, together with its measured wall
// time in milliseconds. It is the worker half of distributed execution: a
// shard of any compiled plan is a pure function of (query, range), so any
// machine that can compile the query can compute any shard, and the
// emission order lets a coordinator resume a partially-streamed shard from
// the first missing index. No assembly step runs — the coordinator merges
// shards with Assemble. A yield error cancels the remaining tasks.
func (p *Plan) ExecuteRange(ctx context.Context, workers, from, to int, yield func(tr TaskResult, wallMS float64) error) error {
	if from < 0 || to > p.numTasks || from >= to {
		return errf("range", "task range [%d,%d) outside plan of %d tasks", from, to, p.numTasks)
	}
	workers = engine.ResolveWorkers(workers)
	if p.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.Timeout)
		defer cancel()
	}
	ex, aerr := p.build(workers)
	if aerr != nil {
		return aerr
	}
	n := to - from
	results := make([]TaskResult, n)
	walls := make([]float64, n)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make(chan int, n)
	var mapErr error
	go func() {
		defer close(done)
		mapErr = engine.Map(ctx, workers, n, func(i int) error {
			idx := from + i
			start := time.Now()
			r, hit := p.taskFromStore(idx)
			if !hit {
				var err error
				r, err = ex.tasks[idx].run(ctx)
				if err != nil {
					return err
				}
			}
			walls[i] = time.Since(start).Seconds() * 1e3
			r.Index = idx
			r.Label = ex.tasks[idx].label
			if !hit {
				p.storeTask(r)
			}
			results[i] = r
			select {
			case done <- i:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		})
	}()
	var yieldErr error
	ready := make([]bool, n)
	next := 0
	for i := range done {
		ready[i] = true
		for next < n && ready[next] {
			if yieldErr == nil {
				if err := yield(results[next], walls[next]); err != nil {
					yieldErr = err
					cancel()
				}
			}
			next++
		}
	}
	if yieldErr != nil {
		return yieldErr
	}
	return mapErr
}

// Assemble merges already-computed per-task results (in plan order, e.g.
// collected from distributed ExecuteRange shards) into the same ResultSet
// Execute produces, byte for byte: the per-kind assembly step (the replicas
// summary) is recomputed from the wire payloads, whose exact-round-trip
// floats make the merged statistics bit-identical to a local run. Every
// task of the plan must be present with its payload set.
func (p *Plan) Assemble(results []TaskResult) (*ResultSet, error) {
	if len(results) != p.numTasks {
		return nil, errf("results", "%d results for a plan of %d tasks", len(results), p.numTasks)
	}
	ex, aerr := p.build(engine.ResolveWorkers(p.Workers))
	if aerr != nil {
		return nil, aerr
	}
	rs := &ResultSet{Version: Version, Kind: p.Kind, Results: results}
	if ex.assembleWire != nil {
		if err := ex.assembleWire(rs); err != nil {
			return nil, err
		}
	}
	return rs, nil
}

// Shardable reports whether the plan benefits from distributed execution:
// its kind fans out into per-task wire payloads that round-trip exactly
// (batch elements, simulation replicas, grid points) and it has more than
// one task. Single-task plans and the catalog/driver kinds always run where
// they were compiled.
func (p *Plan) Shardable() bool {
	switch p.Kind {
	case KindBatch, KindReplicas, KindLifetime, KindGrid:
		return p.numTasks > 1
	}
	return false
}

// Run compiles and executes q in one step with q.Workers goroutines.
func Run(ctx context.Context, q Query) (*ResultSet, error) {
	p, err := Compile(q)
	if err != nil {
		return nil, err
	}
	return p.Execute(ctx, q.Workers, nil)
}

// RunStream is Run with per-task streaming; see Plan.Execute.
func RunStream(ctx context.Context, q Query, yield func(TaskResult) error) (*ResultSet, error) {
	p, err := Compile(q)
	if err != nil {
		return nil, err
	}
	return p.Execute(ctx, q.Workers, yield)
}

// ---- per-kind builders ----

// baseParams materializes the shared analytic base point: the Direct value
// verbatim when present, the declarative spec (defaulting to the paper's §5
// configuration) otherwise.
func (q *Query) baseParams(workers, mcWorkers int) (core.Params, *Error) {
	if q.Direct != nil && q.Direct.Params != nil {
		return *q.Direct.Params, nil
	}
	w := q.Params
	if w == nil {
		w = &ParamsWire{}
	}
	return w.Params(workers, mcWorkers)
}

func (q *Query) buildEvaluate(workers int) (*exec, *Error) {
	// A lone evaluation has no sweep level, so the whole grant goes to its
	// Monte-Carlo contention characterization (as /v1/evaluate did).
	p, aerr := q.baseParams(workers, workers)
	if aerr != nil {
		return nil, aerr
	}
	return &exec{tasks: []task{{label: string(KindEvaluate), run: func(ctx context.Context) (TaskResult, error) {
		m, err := core.Evaluate(p)
		if err != nil {
			return TaskResult{}, err
		}
		mw := WireMetrics(m)
		return TaskResult{Metrics: &mw, value: m}, nil
	}}}}, nil
}

func (q *Query) buildBatch(workers int) (*exec, *Error) {
	var ps []core.Params
	if q.Direct != nil {
		// Direct batches arrive pre-validated from the in-process facade;
		// an empty one is a legal no-op (as core.EvaluateBatch treats it).
		ps = q.Direct.Batch
	} else {
		if len(q.Batch) == 0 {
			return nil, errf("batch", "empty batch: need at least one element")
		}
		if len(q.Batch) > MaxBatch {
			return nil, errf("batch", "batch too large (%d elements, max %d)", len(q.Batch), MaxBatch)
		}
		ps = make([]core.Params, len(q.Batch))
		for i, pw := range q.Batch {
			p, aerr := pw.Params(workers, 1)
			if aerr != nil {
				aerr.Field = "batch[" + strconv.Itoa(i) + "]." + aerr.Field
				return nil, aerr
			}
			ps[i] = p
		}
	}
	tasks := make([]task, len(ps))
	for i := range ps {
		p := ps[i]
		tasks[i] = task{label: "batch[" + strconv.Itoa(i) + "]", run: func(ctx context.Context) (TaskResult, error) {
			m, err := core.Evaluate(p)
			if err != nil {
				return TaskResult{}, err
			}
			mw := WireMetrics(m)
			return TaskResult{Metrics: &mw, value: m}, nil
		}}
	}
	return &exec{tasks: tasks}, nil
}

func (q *Query) buildCaseStudy(workers int) (*exec, *Error) {
	var cfg core.CaseStudyConfig
	if q.Direct != nil && q.Direct.CaseStudy != nil {
		cfg = *q.Direct.CaseStudy
	} else {
		var aerr *Error
		cfg, aerr = q.Config.Config()
		if aerr != nil {
			return nil, aerr
		}
	}
	p, aerr := q.baseParams(workers, 1)
	if aerr != nil {
		return nil, aerr
	}
	return &exec{tasks: []task{{label: string(KindCaseStudy), run: func(ctx context.Context) (TaskResult, error) {
		res, err := core.RunCaseStudyCtx(ctx, p, cfg)
		if err != nil {
			return TaskResult{}, err
		}
		rw := WireCaseStudyResult(res)
		return TaskResult{CaseStudy: &rw, value: res}, nil
	}}}}, nil
}

// lossGrid resolves the loss axis: Direct grid, declarative axis, or the
// case-study population default.
func (q *Query) lossGrid() ([]float64, *Error) {
	if q.Direct != nil && q.Direct.Losses != nil {
		return q.Direct.Losses, nil
	}
	return q.Losses.Grid("losses", DefaultLossGrid)
}

func (q *Query) buildPathLossSweep(workers int) (*exec, *Error) {
	losses, aerr := q.lossGrid()
	if aerr != nil {
		return nil, aerr
	}
	p, aerr := q.baseParams(workers, 1)
	if aerr != nil {
		return nil, aerr
	}
	return &exec{tasks: []task{{label: string(KindPathLossSweep), run: func(ctx context.Context) (TaskResult, error) {
		curves, err := core.EnergyVsPathLossCtx(ctx, p, losses)
		if err != nil {
			return TaskResult{}, err
		}
		out := make([]EnergyCurveWire, len(curves))
		for i, c := range curves {
			out[i] = WireEnergyCurve(c)
		}
		return TaskResult{Curves: out, value: curves}, nil
	}}}}, nil
}

func (q *Query) buildThresholds(workers int) (*exec, *Error) {
	losses, aerr := q.lossGrid()
	if aerr != nil {
		return nil, aerr
	}
	p, aerr := q.baseParams(workers, 1)
	if aerr != nil {
		return nil, aerr
	}
	return &exec{tasks: []task{{label: string(KindThresholds), run: func(ctx context.Context) (TaskResult, error) {
		ths, err := core.ThresholdsCtx(ctx, p, losses)
		if err != nil {
			return TaskResult{}, err
		}
		out := make([]ThresholdWire, len(ths))
		for i, t := range ths {
			out[i] = WireThreshold(t)
		}
		return TaskResult{Thresholds: out, value: ths}, nil
	}}}}, nil
}

func (q *Query) buildPayloadSweep(workers int) (*exec, *Error) {
	var sizes []int
	if q.Direct != nil && q.Direct.Payloads != nil {
		sizes = q.Direct.Payloads
	} else {
		var aerr *Error
		sizes, aerr = q.Payloads.Grid("payloads", DefaultPayloadSizes)
		if aerr != nil {
			return nil, aerr
		}
	}
	p, aerr := q.baseParams(workers, 1)
	if aerr != nil {
		return nil, aerr
	}
	return &exec{tasks: []task{{label: string(KindPayloadSweep), run: func(ctx context.Context) (TaskResult, error) {
		series, err := core.EnergyVsPayloadCtx(ctx, p, sizes)
		if err != nil {
			return TaskResult{}, err
		}
		pw := WirePayloadSeries(sizes, series)
		return TaskResult{Payload: &pw, value: series}, nil
	}}}}, nil
}

// simConfig materializes the simulator configuration.
func (q *Query) simConfig() (netsim.Config, *Error) {
	if q.Direct != nil && q.Direct.Sim != nil {
		return *q.Direct.Sim, nil
	}
	return q.Sim.Config()
}

func (q *Query) buildSimulate(workers int) (*exec, *Error) {
	cfg, aerr := q.simConfig()
	if aerr != nil {
		return nil, aerr
	}
	return &exec{tasks: []task{{label: string(KindSimulate), run: func(ctx context.Context) (TaskResult, error) {
		r := netsim.Run(cfg)
		rw := WireSimResult(cfg.Seed, r)
		return TaskResult{Sim: &rw, value: r}, nil
	}}}}, nil
}

func (q *Query) buildReplicas(workers int) (*exec, *Error) {
	cfg, aerr := q.simConfig()
	if aerr != nil {
		return nil, aerr
	}
	// The replica bound protects the wire surface; in-process facade
	// callers (Direct) keep the unbounded legacy semantics.
	if q.Direct == nil && (q.Replicas < 0 || q.Replicas > MaxReplicas) {
		return nil, errf("replicas", "%d outside 0..%d", q.Replicas, MaxReplicas)
	}
	n := q.Replicas
	if n < 1 {
		n = 1
	}
	seeds := netsim.ReplicaSeeds(cfg.Seed, n)
	tasks := make([]task, n)
	for i := range tasks {
		seed := seeds[i]
		idx := i
		tasks[i] = task{label: "replica[" + strconv.Itoa(idx) + "]", seed: &seed, run: func(ctx context.Context) (TaskResult, error) {
			c := cfg
			c.Seed = seed
			r := netsim.Run(c)
			rw := WireSimResult(seed, r)
			return TaskResult{Sim: &rw, value: r}, nil
		}}
	}
	return &exec{tasks: tasks, assemble: func(rs *ResultSet) {
		results := make([]netsim.Result, len(rs.Results))
		for i := range rs.Results {
			results[i] = rs.Results[i].value.(netsim.Result)
		}
		set := netsim.Merge(cfg, seeds, results)
		summary := WireReplicaSummary(set)
		rs.Summary = &summary
		rs.value = set
	}, assembleWire: func(rs *ResultSet) *Error {
		// The wire replica payloads round-trip the exact floats the merge
		// folds, so the summary recomputed here is bit-identical to the
		// in-process assemble above.
		results := make([]netsim.Result, len(rs.Results))
		for i := range rs.Results {
			if rs.Results[i].Sim == nil {
				return errf("results", "task %d carries no sim payload", i)
			}
			results[i] = rs.Results[i].Sim.Result()
		}
		set := netsim.Merge(cfg, seeds, results)
		summary := WireReplicaSummary(set)
		rs.Summary = &summary
		return nil
	}}, nil
}

func (q *Query) buildScenario(workers int) (*exec, *Error) {
	var sc scenario.Scenario
	if q.Direct != nil && q.Direct.Scenario != nil {
		sc = *q.Direct.Scenario
	} else {
		if q.Scenario == "" {
			return nil, errf("scenario", "missing scenario name")
		}
		var ok bool
		sc, ok = scenario.ByName(q.Scenario)
		if !ok {
			return nil, errf("scenario", "unknown scenario %q", q.Scenario)
		}
	}
	diff := q.Diff
	return &exec{tasks: []task{{label: string(KindScenario), run: func(ctx context.Context) (TaskResult, error) {
		res, err := scenario.Run(ctx, sc, workers)
		if err != nil {
			return TaskResult{}, err
		}
		report := ScenarioReportWire{Result: res}
		if diff {
			rep, err := scenario.Diff(res)
			if err != nil {
				return TaskResult{}, err
			}
			report.Diff = &rep
		}
		return TaskResult{Scenario: &report, value: res}, nil
	}}}}, nil
}

func (q *Query) buildExperiment(workers int) (*exec, *Error) {
	if q.Experiment == "" {
		return nil, errf("experiment", "missing experiment name")
	}
	e, ok := experiments.ByName(q.Experiment)
	if !ok {
		return nil, errf("experiment", "unknown experiment %q", q.Experiment)
	}
	var opt experiments.Options
	direct := q.Direct != nil && q.Direct.ExperimentOpts != nil
	if direct {
		opt = *q.Direct.ExperimentOpts
	} else {
		opt = experiments.DefaultOptions()
		opt.Quick = q.Quick
		if q.Seed != nil {
			opt.Seed = *q.Seed
		}
		opt.Workers = workers
	}
	name := q.Experiment
	return &exec{tasks: []task{{label: string(KindExperiment) + ":" + name, run: func(ctx context.Context) (TaskResult, error) {
		o := opt
		if !direct {
			o.Context = ctx
		}
		tables, err := e.Run(o)
		if err != nil {
			return TaskResult{}, err
		}
		return TaskResult{Experiment: &ExperimentReportWire{Name: name, Tables: tables}, value: tables}, nil
	}}}}, nil
}

// buildGrid materializes the joint product sweep — losses × payloads × BOs
// × node counts, one analytical evaluation per point — the paper-scale
// Fig. 6 surface generator. Axis order is fixed (nodes fastest, losses
// slowest), so task index i maps to a unique point and any shard of the
// plan is recomputable anywhere from (query, index range) alone. Omitted
// axes collapse to the base point: a grid over losses only is the batch of
// evaluations a client would otherwise page by hand.
func (q *Query) buildGrid(workers int) (*exec, *Error) {
	base, aerr := q.baseParams(workers, 1)
	if aerr != nil {
		return nil, aerr
	}
	losses, aerr := q.Losses.Grid("losses", func() []float64 { return []float64{base.PathLossDB} })
	if aerr != nil {
		return nil, aerr
	}
	payloads, aerr := q.Payloads.Grid("payloads", func() []int { return []int{base.PayloadBytes} })
	if aerr != nil {
		return nil, aerr
	}
	bos, aerr := q.BOs.Grid("bos", func() []int { return []int{int(base.Superframe.BO)} })
	if aerr != nil {
		return nil, aerr
	}
	nodes, aerr := q.Nodes.Grid("nodes", func() []int { return nil })
	if aerr != nil {
		return nil, aerr
	}
	// nil means "keep the base load"; materialize as one sentinel point.
	loadFromNodes := nodes != nil
	if !loadFromNodes {
		nodes = []int{0}
	}

	total := 1
	for _, l := range []int{len(losses), len(payloads), len(bos), len(nodes)} {
		total *= l
		if total > MaxGridTasks {
			return nil, errf("grid", "grid too large (> %d points); page across several queries", MaxGridTasks)
		}
	}
	if total < 1 {
		return nil, errf("grid", "empty grid")
	}

	// Pre-validate each point's parameter set so every error surfaces at
	// compile time, before any work is scheduled, and build the task list
	// in the fixed row-major order.
	tasks := make([]task, 0, total)
	for _, loss := range losses {
		for _, payload := range payloads {
			for _, bo := range bos {
				if bo < 0 || bo > int(mac.MaxBeaconOrder) {
					return nil, errf("bos", "beacon order %d outside 0..%d", bo, mac.MaxBeaconOrder)
				}
				sf, err := mac.NewSuperframe(uint8(bo), base.Superframe.SO)
				if err != nil {
					return nil, errf("bos", "bo=%d with base so=%d: %v", bo, base.Superframe.SO, err)
				}
				for _, n := range nodes {
					p := base
					p.PathLossDB = loss
					p.PayloadBytes = payload
					p.Superframe = sf
					label := fmt.Sprintf("grid[%d]:loss=%g,payload=%d,bo=%d", len(tasks), loss, payload, bo)
					if loadFromNodes {
						if n < 1 {
							return nil, errf("nodes", "population %d < 1", n)
						}
						p.Load = sf.ChannelLoad(n, frame.PaperPacketDuration(payload))
						label += fmt.Sprintf(",n=%d", n)
					}
					if err := p.Validate(); err != nil {
						return nil, errf("grid", "%s: %v", label, err)
					}
					pt := p
					tasks = append(tasks, task{label: label, run: func(ctx context.Context) (TaskResult, error) {
						m, err := core.Evaluate(pt)
						if err != nil {
							return TaskResult{}, err
						}
						mw := WireMetrics(m)
						return TaskResult{Metrics: &mw, value: m}, nil
					}})
				}
			}
		}
	}
	return &exec{tasks: tasks}, nil
}

// String implements fmt.Stringer with a one-line plan summary.
func (p *Plan) String() string {
	return fmt.Sprintf("query plan: kind=%s tasks=%d", p.Kind, p.numTasks)
}
