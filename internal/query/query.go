// Package query is the unified declarative layer over the whole model
// surface of this repository. One versioned Query value names an operating
// point (or a grid of them) in the paper's parameter space — radio, BER
// model, BO/SO, payload, load, path-loss population, improvement flags —
// and a kind selecting what to compute over it:
//
//	evaluate        one analytical-model evaluation (eqs. 3-14)
//	batch           many evaluations, one per batch element
//	casestudy       the §5 population integration
//	pathloss-sweep  the Fig. 7 energy-vs-path-loss curve family
//	thresholds      the Fig. 7 link-adaptation switching points
//	payload-sweep   the Fig. 8 energy-vs-payload series
//	simulate        one cycle-accurate discrete-event network simulation
//	replicas        n independent simulations with across-replica 95% CIs
//	lifetime        n battery-lifetime runs (node death, partition time, CIs)
//	scenario        one cross-model catalog scenario (optionally golden-diffed)
//	experiment      one registered paper-artifact driver
//	grid            the joint product sweep (losses × payloads × BO × node counts)
//
// Compile validates a Query and lowers it to a deterministic execution
// Plan — an ordered list of engine tasks (one per batch element or
// simulation replica, one for single-result kinds). Execute runs the plan
// on the shared engine worker pool with DeriveSeed-derived streams and the
// process-wide contention cache, so results are bit-identical at any worker
// count, and assembles one tagged ResultSet whose Encode is byte-stable
// (internal/wire.Float everywhere a float travels).
//
// Every consumer speaks this one type: dense802154.Run / RunStream wrap it
// in-process (the legacy facade functions are thin wrappers over Run),
// internal/service exposes it as POST /v2/query and /v2/query/stream, and
// cmd/wsn-query drives it from the command line. A new scenario axis is a
// new Query field — not a new function, endpoint, codec and flag set.
package query

import (
	"math"

	"dense802154/internal/channel"
	"dense802154/internal/core"
	"dense802154/internal/experiments"
	"dense802154/internal/netsim"
	"dense802154/internal/scenario"
)

// Version is the wire version this package implements; requests may carry
// it explicitly (POST /v2/query) or omit it (0 means "current").
const Version = 2

// Kind selects what a Query computes.
type Kind string

// The query kinds, one per computation the repository offers.
const (
	KindEvaluate      Kind = "evaluate"
	KindBatch         Kind = "batch"
	KindCaseStudy     Kind = "casestudy"
	KindPathLossSweep Kind = "pathloss-sweep"
	KindPayloadSweep  Kind = "payload-sweep"
	KindThresholds    Kind = "thresholds"
	KindSimulate      Kind = "simulate"
	KindReplicas      Kind = "replicas"
	KindLifetime      Kind = "lifetime"
	KindScenario      Kind = "scenario"
	KindExperiment    Kind = "experiment"
	KindGrid          Kind = "grid"
)

// Kinds lists every valid query kind in declaration order.
func Kinds() []Kind {
	return []Kind{
		KindEvaluate, KindBatch, KindCaseStudy, KindPathLossSweep,
		KindPayloadSweep, KindThresholds, KindSimulate, KindReplicas,
		KindLifetime, KindScenario, KindExperiment, KindGrid,
	}
}

// MaxBatch caps the batch elements of one query; larger workloads page
// across several queries.
const MaxBatch = 10000

// MaxGridTasks caps the task count of one grid query (the product of its
// axis lengths); larger surfaces page across several queries.
const MaxGridTasks = 10000

// MaxGridPoints caps one sweep axis.
const MaxGridPoints = 100000

// MaxReplicas caps one replicas query.
const MaxReplicas = 4096

// Axis declares a float64 grid: either an explicit Values list or a
// From/To range expanded with Points (an inclusive linspace, the same
// channel.LossGrid rule the case study integrates over) or a positive Step.
// Exactly one of the two forms may be used; every point must be finite.
type Axis struct {
	Values []Float `json:"values,omitempty"`
	From   *Float  `json:"from,omitempty"`
	To     *Float  `json:"to,omitempty"`
	Points *int    `json:"points,omitempty"`
	Step   *Float  `json:"step,omitempty"`
}

// Grid expands the axis (nil selects def()); field scopes validation errors.
func (a *Axis) Grid(field string, def func() []float64) ([]float64, *Error) {
	if a == nil {
		return def(), nil
	}
	if len(a.Values) > 0 {
		if a.From != nil || a.To != nil || a.Points != nil || a.Step != nil {
			return nil, errf(field, "values and from/to/points/step are mutually exclusive")
		}
		if len(a.Values) > MaxGridPoints {
			return nil, errf(field+".values", "grid too large (%d points, max %d)", len(a.Values), MaxGridPoints)
		}
		out := make([]float64, len(a.Values))
		for i, v := range a.Values {
			f := float64(v)
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return nil, errf(field+".values", "point %d is not finite", i)
			}
			out[i] = f
		}
		return out, nil
	}
	if a.From == nil || a.To == nil {
		return nil, errf(field, "a range axis needs both from and to")
	}
	from, to := float64(*a.From), float64(*a.To)
	if !(from < to) || math.IsInf(from, 0) || math.IsInf(to, 0) {
		return nil, errf(field, "range %g..%g not a finite ascending interval", from, to)
	}
	switch {
	case a.Points != nil && a.Step != nil:
		return nil, errf(field, "points and step are mutually exclusive")
	case a.Points != nil:
		if *a.Points < 2 || *a.Points > MaxGridPoints {
			return nil, errf(field+".points", "%d outside 2..%d", *a.Points, MaxGridPoints)
		}
		return channel.LossGrid(from, to, *a.Points), nil
	case a.Step != nil:
		step := float64(*a.Step)
		if !(step > 0) || math.IsInf(step, 0) {
			return nil, errf(field+".step", "%g not a positive finite step", step)
		}
		if (to-from)/step > MaxGridPoints {
			return nil, errf(field+".step", "step %g yields more than %d points", step, MaxGridPoints)
		}
		var out []float64
		for i := 0; ; i++ {
			x := from + float64(i)*step
			if x > to {
				break
			}
			out = append(out, x)
		}
		return out, nil
	}
	return nil, errf(field, "a range axis needs points or step")
}

// IntAxis declares an integer grid: an explicit Values list, or a From/To
// range walked with Step (default 1).
type IntAxis struct {
	Values []int `json:"values,omitempty"`
	From   *int  `json:"from,omitempty"`
	To     *int  `json:"to,omitempty"`
	Step   *int  `json:"step,omitempty"`
}

// Grid expands the axis (nil selects def()); field scopes validation errors.
func (a *IntAxis) Grid(field string, def func() []int) ([]int, *Error) {
	if a == nil {
		return def(), nil
	}
	if len(a.Values) > 0 {
		if a.From != nil || a.To != nil || a.Step != nil {
			return nil, errf(field, "values and from/to/step are mutually exclusive")
		}
		if len(a.Values) > MaxGridPoints {
			return nil, errf(field+".values", "grid too large (%d points, max %d)", len(a.Values), MaxGridPoints)
		}
		return append([]int(nil), a.Values...), nil
	}
	if a.From == nil || a.To == nil {
		return nil, errf(field, "a range axis needs both from and to")
	}
	from, to, step := *a.From, *a.To, 1
	if a.Step != nil {
		step = *a.Step
	}
	// The magnitude bound makes the span/count arithmetic below immune to
	// integer overflow (a hostile from/to near MaxInt would otherwise wrap
	// the count negative and panic the slice allocation, or wrap the walk
	// into an endless loop). 2^30 is far beyond any integer grid the model
	// accepts downstream.
	const maxAxisMagnitude = 1 << 30
	if from < -maxAxisMagnitude || from > maxAxisMagnitude || to < -maxAxisMagnitude || to > maxAxisMagnitude {
		return nil, errf(field, "range endpoints outside ±%d", maxAxisMagnitude)
	}
	if step < 1 || step > maxAxisMagnitude {
		return nil, errf(field+".step", "%d outside 1..%d", step, maxAxisMagnitude)
	}
	if from > to {
		return nil, errf(field, "range %d..%d not ascending", from, to)
	}
	count := (to-from)/step + 1
	if count > MaxGridPoints {
		return nil, errf(field, "range yields more than %d points", MaxGridPoints)
	}
	out := make([]int, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, from+i*step)
	}
	return out, nil
}

// Direct carries pre-materialized model inputs past the declarative specs.
// The legacy facade functions use it to route through Run without forcing
// their typed arguments (interface-valued BER models, custom deployments,
// arbitrary grids) through the wire codecs; it never travels over the wire.
type Direct struct {
	Params         *core.Params
	Batch          []core.Params
	CaseStudy      *core.CaseStudyConfig
	Sim            *netsim.Config
	Losses         []float64
	Payloads       []int
	Scenario       *scenario.Scenario
	ExperimentOpts *experiments.Options
}

// Query is the one declarative, versioned request type over the model, the
// simulator, the sweeps and the scenario catalog. Kind selects the
// computation; the remaining fields parameterize it (each kind accepts only
// its own fields — Compile rejects stray ones, so a typo'd request fails
// loudly instead of silently computing the default).
type Query struct {
	// Version is the wire version: 0 (meaning "current") or 2.
	Version int `json:"version,omitempty"`
	// Kind selects the computation; see Kinds.
	Kind Kind `json:"kind"`

	// Params is the shared analytic-model base point (kinds evaluate,
	// casestudy, pathloss-sweep, payload-sweep, thresholds); omitted
	// fields default to the paper's §5 configuration.
	Params *ParamsWire `json:"params,omitempty"`
	// Batch lists the parameter sets of a batch query (kind batch), one
	// task per element.
	Batch []ParamsWire `json:"batch,omitempty"`
	// Config tunes the §5 population integration (kind casestudy).
	Config *CaseStudyConfigWire `json:"config,omitempty"`
	// Sim configures the discrete-event simulator (kinds simulate,
	// replicas, lifetime).
	Sim *SimConfigWire `json:"sim,omitempty"`

	// Lifetime parameterizes the battery/death layer over Sim (kind
	// lifetime); omitted fields default to a CR2032 cell per node.
	Lifetime *LifetimeWire `json:"lifetime,omitempty"`

	// Losses is the path-loss grid axis in dB (kinds pathloss-sweep,
	// thresholds, grid; default: the case-study population grid, or the
	// base point for kind grid).
	Losses *Axis `json:"losses,omitempty"`
	// Payloads is the payload grid axis in bytes (kinds payload-sweep,
	// grid; default: the Fig. 8 grid, or the base point for kind grid).
	Payloads *IntAxis `json:"payloads,omitempty"`
	// BOs is the beacon-order grid axis (kind grid; default: the base
	// superframe's BO). Each point keeps the base SO, so BO > SO points
	// sweep the paper's duty-cycling lever.
	BOs *IntAxis `json:"bos,omitempty"`
	// Nodes is the per-channel population grid axis (kind grid). Each
	// point n sets the load to Superframe.ChannelLoad(n, Tpacket) — the
	// same rule the §5 case study applies — after the point's payload and
	// BO are in place. Omitted, the base Load is kept unchanged.
	Nodes *IntAxis `json:"nodes,omitempty"`
	// Replicas is the replication count (kinds replicas, lifetime;
	// default 1), one task per replica.
	Replicas int `json:"replicas,omitempty"`

	// Scenario names a catalog scenario (kind scenario); Diff additionally
	// scores the fresh run against its committed golden.
	Scenario string `json:"scenario,omitempty"`
	Diff     bool   `json:"diff,omitempty"`

	// Experiment names a registered paper driver (kind experiment); Quick
	// shrinks its grids and Seed drives its randomized components.
	Experiment string `json:"experiment,omitempty"`
	Quick      bool   `json:"quick,omitempty"`
	Seed       *int64 `json:"seed,omitempty"`

	// Workers is the parallelism the query asks for (0 ⇒ NumCPU in
	// process; servers clamp it to their token budget). Results never
	// depend on it.
	Workers int `json:"workers,omitempty"`

	// Trace opts into plan execution tracing: the ResultSet carries a
	// PlanTraceWire with per-task wall times. Like workers, it is legal on
	// every kind and never changes computed result bytes — traces are
	// observability, not results, and are excluded from byte-identity
	// comparisons.
	Trace bool `json:"trace,omitempty"`

	// TimeoutMS is the per-query execution deadline in milliseconds
	// (0 = none). Like workers and trace it is legal on every kind and
	// never changes computed result bytes — a query either completes with
	// its full deterministic result or fails with a deadline error (the
	// HTTP layer answers a structured 504). The deadline propagates into
	// every task context, locally and across distributed shards.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Direct carries pre-materialized inputs for the in-process facade
	// wrappers; it is not part of the wire form.
	Direct *Direct `json:"-"`
}

// queryField describes one kind-specific Query field for the strict
// field-compatibility check.
type queryField struct {
	name string
	set  func(*Query) bool
}

var queryFields = []queryField{
	{"params", func(q *Query) bool { return q.Params != nil }},
	{"batch", func(q *Query) bool { return q.Batch != nil }},
	{"config", func(q *Query) bool { return q.Config != nil }},
	{"sim", func(q *Query) bool { return q.Sim != nil }},
	{"lifetime", func(q *Query) bool { return q.Lifetime != nil }},
	{"losses", func(q *Query) bool { return q.Losses != nil }},
	{"payloads", func(q *Query) bool { return q.Payloads != nil }},
	{"bos", func(q *Query) bool { return q.BOs != nil }},
	{"nodes", func(q *Query) bool { return q.Nodes != nil }},
	{"replicas", func(q *Query) bool { return q.Replicas != 0 }},
	{"scenario", func(q *Query) bool { return q.Scenario != "" }},
	{"diff", func(q *Query) bool { return q.Diff }},
	{"experiment", func(q *Query) bool { return q.Experiment != "" }},
	{"quick", func(q *Query) bool { return q.Quick }},
	{"seed", func(q *Query) bool { return q.Seed != nil }},
}

// allowedFields maps each kind to the Query fields it consumes (version,
// kind and workers are always allowed).
var allowedFields = map[Kind][]string{
	KindEvaluate:      {"params"},
	KindBatch:         {"batch"},
	KindCaseStudy:     {"params", "config"},
	KindPathLossSweep: {"params", "losses"},
	KindThresholds:    {"params", "losses"},
	KindPayloadSweep:  {"params", "payloads"},
	KindSimulate:      {"sim"},
	KindReplicas:      {"sim", "replicas"},
	KindLifetime:      {"sim", "lifetime", "replicas"},
	KindScenario:      {"scenario", "diff"},
	KindExperiment:    {"experiment", "quick", "seed"},
	KindGrid:          {"params", "losses", "payloads", "bos", "nodes"},
}

// validateShape checks version, kind and kind/field compatibility.
func (q *Query) validateShape() *Error {
	if q.Version != 0 && q.Version != Version {
		return errf("version", "unsupported version %d (want %d, or omit)", q.Version, Version)
	}
	if q.TimeoutMS < 0 {
		return errf("timeout_ms", "negative deadline %d", q.TimeoutMS)
	}
	allowed, ok := allowedFields[q.Kind]
	if !ok {
		if q.Kind == "" {
			return errf("kind", "missing kind (want one of %s)", kindList())
		}
		return errf("kind", "unknown kind %q (want one of %s)", q.Kind, kindList())
	}
	for _, f := range queryFields {
		if !f.set(q) {
			continue
		}
		found := false
		for _, a := range allowed {
			if a == f.name {
				found = true
				break
			}
		}
		if !found {
			return errf(f.name, "field not valid for kind %q", q.Kind)
		}
	}
	return nil
}

// kindList renders the valid kinds for error messages.
func kindList() string {
	s := ""
	for i, k := range Kinds() {
		if i > 0 {
			s += ", "
		}
		s += string(k)
	}
	return s
}

// DefaultLossGrid is the case-study population grid, derived from the same
// scenario constants RunCaseStudy integrates over so the query default
// cannot drift from the in-process one.
func DefaultLossGrid() []float64 {
	cfg := core.DefaultCaseStudy()
	return channel.LossGrid(cfg.MinLossDB, cfg.MaxLossDB, cfg.LossGridPoints)
}

// DefaultPayloadSizes is the Fig. 8 payload grid, shared with the fig8
// experiment driver.
func DefaultPayloadSizes() []int { return experiments.Fig8Sizes() }
