package query

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"dense802154/internal/core"
	"dense802154/internal/frame"
	"dense802154/internal/mac"
)

func TestGridMatchesEvaluate(t *testing.T) {
	// Every grid point must agree byte for byte with a lone evaluate at the
	// same parameter point — the grid is a product of evaluations, nothing
	// more.
	q := Query{
		Kind:     KindGrid,
		Params:   quickParams(),
		Losses:   &Axis{Values: []Float{60, 80}},
		Payloads: &IntAxis{Values: []int{30, 90}},
		Workers:  2,
	}
	rs, err := Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Results) != 4 {
		t.Fatalf("grid produced %d tasks, want 4", len(rs.Results))
	}
	base, aerr := quickParams().Params(1, 1)
	if aerr != nil {
		t.Fatal(aerr)
	}
	i := 0
	for _, loss := range []float64{60, 80} {
		for _, payload := range []int{30, 90} {
			p := base
			p.PathLossDB = loss
			p.PayloadBytes = payload
			want, err := core.Evaluate(p)
			if err != nil {
				t.Fatal(err)
			}
			if *rs.Results[i].Metrics != WireMetrics(want) {
				t.Fatalf("grid point %d deviates from core.Evaluate", i)
			}
			if !strings.Contains(rs.Results[i].Label, "loss=") || !strings.Contains(rs.Results[i].Label, "payload=") {
				t.Fatalf("label %q missing axis coordinates", rs.Results[i].Label)
			}
			i++
		}
	}
}

func TestGridNodesAxisSetsChannelLoad(t *testing.T) {
	// The nodes axis must drive Load through the same §5 rule the case
	// study uses: ChannelLoad(n, PaperPacketDuration(payload)).
	q := Query{
		Kind:    KindGrid,
		Params:  quickParams(),
		Nodes:   &IntAxis{Values: []int{5, 20}},
		Workers: 1,
	}
	rs, err := Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	base, aerr := quickParams().Params(1, 1)
	if aerr != nil {
		t.Fatal(aerr)
	}
	for i, n := range []int{5, 20} {
		p := base
		p.Load = p.Superframe.ChannelLoad(n, frame.PaperPacketDuration(p.PayloadBytes))
		want, err := core.Evaluate(p)
		if err != nil {
			t.Fatal(err)
		}
		if *rs.Results[i].Metrics != WireMetrics(want) {
			t.Fatalf("nodes=%d deviates from ChannelLoad-derived evaluation", n)
		}
		if !strings.Contains(rs.Results[i].Label, "n=") {
			t.Fatalf("label %q missing node count", rs.Results[i].Label)
		}
	}
}

func TestGridBOAxis(t *testing.T) {
	q := Query{
		Kind:    KindGrid,
		Params:  quickParams(),
		BOs:     &IntAxis{Values: []int{6, 9}},
		Workers: 1,
	}
	rs, err := Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	base, aerr := quickParams().Params(1, 1)
	if aerr != nil {
		t.Fatal(aerr)
	}
	for i, bo := range []int{6, 9} {
		sf, err := mac.NewSuperframe(uint8(bo), base.Superframe.SO)
		if err != nil {
			t.Fatal(err)
		}
		p := base
		p.Superframe = sf
		want, err := core.Evaluate(p)
		if err != nil {
			t.Fatal(err)
		}
		if *rs.Results[i].Metrics != WireMetrics(want) {
			t.Fatalf("bo=%d deviates from direct evaluation", bo)
		}
	}
}

func TestGridRejections(t *testing.T) {
	for name, q := range map[string]Query{
		"too large": {Kind: KindGrid, Params: quickParams(),
			Losses:   &Axis{Values: manyFloats(200)},
			Payloads: &IntAxis{Values: manyInts(51, 20, 1)}},
		"bad bo":        {Kind: KindGrid, Params: quickParams(), BOs: &IntAxis{Values: []int{15}}},
		"bad nodes":     {Kind: KindGrid, Params: quickParams(), Nodes: &IntAxis{Values: []int{0}}},
		"foreign field": {Kind: KindGrid, Params: quickParams(), Replicas: 3},
	} {
		if _, err := Compile(q); err == nil {
			t.Fatalf("%s: compiled", name)
		}
	}
}

func TestGridShardable(t *testing.T) {
	grid, err := Compile(Query{Kind: KindGrid, Params: quickParams(), Losses: &Axis{Values: []Float{60, 70}}})
	if err != nil {
		t.Fatal(err)
	}
	if !grid.Shardable() {
		t.Fatal("multi-point grid must be shardable")
	}
	single, err := Compile(Query{Kind: KindGrid, Params: quickParams()})
	if err != nil {
		t.Fatal(err)
	}
	if single.NumTasks() != 1 || single.Shardable() {
		t.Fatalf("axis-less grid: tasks=%d shardable=%v, want 1/false", single.NumTasks(), single.Shardable())
	}
	scen, err := Compile(Query{Kind: KindEvaluate, Params: quickParams()})
	if err != nil {
		t.Fatal(err)
	}
	if scen.Shardable() {
		t.Fatal("evaluate must not be shardable")
	}
}

func TestNegativeTimeoutRejected(t *testing.T) {
	_, err := Compile(Query{Kind: KindEvaluate, Params: quickParams(), TimeoutMS: -1})
	if err == nil {
		t.Fatal("negative timeout_ms compiled")
	}
}

func TestHugeTimeoutClampedNotOverflowed(t *testing.T) {
	// timeout_ms beyond the Duration range must clamp to "effectively
	// none", not wrap into a garbage (possibly instantly-expired) deadline.
	plan, err := Compile(Query{Kind: KindEvaluate, Params: quickParams(), TimeoutMS: math.MaxInt64})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Timeout <= 0 {
		t.Fatalf("plan.Timeout = %v, overflowed", plan.Timeout)
	}
}

func TestTimeoutBoundsExecution(t *testing.T) {
	// A 1 ms budget cannot cover a 40-replica simulation: the plan must
	// fail with DeadlineExceeded instead of running to completion.
	q := Query{Kind: KindReplicas, Sim: &SimConfigWire{Nodes: intPtr(40), Superframes: intPtr(50)},
		Replicas: 40, TimeoutMS: 1}
	_, err := Run(context.Background(), q)
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestExecuteRangeAssembleBitIdentity is the foundation the distribution
// layer stands on: computing a plan in arbitrary index slices (the worker
// path) and merging the slices with Assemble must reproduce Execute's
// ResultSet byte for byte — including the replicas summary, which Assemble
// recomputes from wire payloads alone.
func TestExecuteRangeAssembleBitIdentity(t *testing.T) {
	queries := map[string]Query{
		"grid": {Kind: KindGrid, Params: quickParams(),
			Losses: &Axis{Values: []Float{55, 70, 85}}, Payloads: &IntAxis{Values: []int{20, 100}}},
		"replicas": {Kind: KindReplicas, Sim: &SimConfigWire{Nodes: intPtr(10), Superframes: intPtr(4)}, Replicas: 5},
	}
	for name, q := range queries {
		t.Run(name, func(t *testing.T) {
			plan, err := Compile(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := plan.Execute(context.Background(), 2, nil)
			if err != nil {
				t.Fatal(err)
			}
			wantBytes, err := want.Encode()
			if err != nil {
				t.Fatal(err)
			}

			// Compute the plan in three uneven slices, as three independent
			// workers would, round-tripping every result through its JSON
			// wire form (what the coordinator actually receives).
			n := plan.NumTasks()
			cuts := []int{0, 1, n - 1, n}
			results := make([]TaskResult, n)
			for c := 0; c+1 < len(cuts); c++ {
				from, to := cuts[c], cuts[c+1]
				if from >= to {
					continue
				}
				err := plan.ExecuteRange(context.Background(), 2, from, to, func(tr TaskResult, wallMS float64) error {
					if wallMS < 0 {
						t.Errorf("task %d: negative wall time", tr.Index)
					}
					rt, err := roundTrip(tr)
					if err != nil {
						return err
					}
					results[tr.Index] = rt
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			got, err := plan.Assemble(results)
			if err != nil {
				t.Fatal(err)
			}
			gotBytes, err := got.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotBytes, wantBytes) {
				t.Fatalf("sharded+assembled bytes deviate from Execute:\n got %s\nwant %s", gotBytes, wantBytes)
			}
		})
	}
}

func TestExecuteRangeRejectsBadRange(t *testing.T) {
	plan, err := Compile(Query{Kind: KindGrid, Params: quickParams(), Losses: &Axis{Values: []Float{55, 70}}})
	if err != nil {
		t.Fatal(err)
	}
	noop := func(TaskResult, float64) error { return nil }
	for _, r := range [][2]int{{-1, 1}, {0, 3}, {1, 1}, {2, 1}} {
		if err := plan.ExecuteRange(context.Background(), 1, r[0], r[1], noop); err == nil {
			t.Fatalf("range %v accepted", r)
		}
	}
}

func TestAssembleRejectsWrongShape(t *testing.T) {
	plan, err := Compile(Query{Kind: KindReplicas, Sim: &SimConfigWire{Nodes: intPtr(8), Superframes: intPtr(3)}, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Assemble(make([]TaskResult, 2)); err == nil {
		t.Fatal("short result list assembled")
	}
	// Right length but a missing sim payload must fail the replica merge.
	if _, err := plan.Assemble(make([]TaskResult, 3)); err == nil {
		t.Fatal("payload-less results assembled")
	}
}

// roundTrip pushes a TaskResult through its JSON encoding, as the NDJSON
// worker protocol does.
func roundTrip(tr TaskResult) (TaskResult, error) {
	b, err := json.Marshal(tr)
	if err != nil {
		return TaskResult{}, err
	}
	var out TaskResult
	if err := json.Unmarshal(b, &out); err != nil {
		return TaskResult{}, err
	}
	return out, nil
}

func manyFloats(n int) []Float {
	out := make([]Float, n)
	for i := range out {
		out[i] = Float(40 + i)
	}
	return out
}

func manyInts(n, base, step int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = base + i*step
	}
	return out
}
