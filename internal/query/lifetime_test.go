package query

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"dense802154/internal/lifetime"
)

// lifetimeTestQuery drains a tiny battery over a small population so a full
// replica set completes in milliseconds.
func lifetimeTestQuery() Query {
	return Query{
		Kind: KindLifetime,
		Sim:  &SimConfigWire{Nodes: intPtr(6), Seed: int64Ptr(9)},
		Lifetime: &LifetimeWire{
			CapacityJ:        floatPtr(0.3),
			EpochSuperframes: intPtr(4),
			MaxEpochs:        intPtr(64),
		},
		Replicas: 3,
	}
}

func TestLifetimeMatchesRunReplicas(t *testing.T) {
	q := lifetimeTestQuery()
	simCfg, aerr := q.Sim.Config()
	if aerr != nil {
		t.Fatal(aerr)
	}
	lcfg, aerr := q.Lifetime.Config(simCfg)
	if aerr != nil {
		t.Fatal(aerr)
	}
	want, err := lifetime.RunReplicas(context.Background(), lcfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	q.Workers = 2
	rs, err := Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	got := rs.Value().(lifetime.ReplicaSet)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("lifetime query deviates from lifetime.RunReplicas")
	}
	if rs.LifetimeSummary == nil || rs.LifetimeSummary.Replicas != 3 {
		t.Fatalf("lifetime summary = %+v", rs.LifetimeSummary)
	}
	if rs.Summary != nil {
		t.Fatal("lifetime query must not carry the sim-replica summary")
	}
	if len(rs.Results) != 3 {
		t.Fatalf("results = %d", len(rs.Results))
	}
	for i, tr := range rs.Results {
		if tr.Lifetime == nil {
			t.Fatalf("task %d carries no lifetime payload", i)
		}
		if tr.Lifetime.Deaths == 0 {
			t.Fatalf("task %d: a 0.3 J battery network must lose nodes", i)
		}
	}
}

func TestLifetimeWorkerIndependence(t *testing.T) {
	encode := func(workers int) []byte {
		q := lifetimeTestQuery()
		q.Workers = workers
		rs, err := Run(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rs.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(encode(1), encode(4)) {
		t.Fatal("lifetime result bytes depend on the worker count")
	}
}

// TestLifetimeAssembleWireBitIdentity pins the distributed path: assembling
// a lifetime plan from wire payloads alone (as the coordinator does with
// remote shards) reproduces the locally-executed ResultSet byte for byte.
func TestLifetimeAssembleWireBitIdentity(t *testing.T) {
	q := lifetimeTestQuery()
	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Shardable() {
		t.Fatal("a multi-replica lifetime plan must be shardable")
	}
	local, err := p.Execute(context.Background(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	wireOnly := make([]TaskResult, len(local.Results))
	for i, tr := range local.Results {
		wireOnly[i] = TaskResult{Index: tr.Index, Label: tr.Label, Lifetime: tr.Lifetime}
	}
	assembled, err := p.Assemble(wireOnly)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := local.Encode()
	if err != nil {
		t.Fatal(err)
	}
	ab, err := assembled.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lb, ab) {
		t.Fatal("wire-assembled lifetime ResultSet deviates from the local one")
	}
}

// TestLifetimeInfiniteTimesOnWire pins the +Inf contract end to end: a
// sustainable network's death times encode as "+Inf" strings and round-trip
// into an infinite across-replica mean.
func TestLifetimeInfiniteTimesOnWire(t *testing.T) {
	q := lifetimeTestQuery()
	q.Lifetime.Supply = "harvester"
	q.Lifetime.CapacityJ = nil
	q.Replicas = 2
	rs, err := Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rs.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"first_death_s":"+Inf"`)) {
		t.Fatalf("infinite first death not on the wire: %s", b)
	}
	if !math.IsInf(float64(rs.LifetimeSummary.FirstDeathHours.Mean), 1) {
		t.Fatalf("summary mean = %v, want +Inf", rs.LifetimeSummary.FirstDeathHours.Mean)
	}
	for _, tr := range rs.Results {
		if !tr.Lifetime.Sustainable {
			t.Fatal("harvester-only supply must report sustainable")
		}
	}
}

func TestLifetimeValidation(t *testing.T) {
	cases := []struct {
		name  string
		mut   func(*Query)
		field string
	}{
		{"nan capacity", func(q *Query) { q.Lifetime.CapacityJ = floatPtr(math.NaN()) }, "lifetime.capacity_j"},
		{"negative capacity", func(q *Query) { q.Lifetime.CapacityJ = floatPtr(-1) }, "lifetime.capacity_j"},
		{"negative threshold", func(q *Query) { q.Lifetime.ThresholdJ = floatPtr(-0.5) }, "lifetime.threshold_j"},
		{"nan threshold", func(q *Query) { q.Lifetime.ThresholdJ = floatPtr(math.NaN()) }, "lifetime.threshold_j"},
		{"unknown supply", func(q *Query) { q.Lifetime.Supply = "fusion" }, "lifetime.supply"},
		{"partition frac zero", func(q *Query) { q.Lifetime.PartitionFrac = floatPtr(0) }, "lifetime.partition_frac"},
		{"partition frac above one", func(q *Query) { q.Lifetime.PartitionFrac = floatPtr(1.5) }, "lifetime.partition_frac"},
		{"nan partition frac", func(q *Query) { q.Lifetime.PartitionFrac = floatPtr(math.NaN()) }, "lifetime.partition_frac"},
		{"zero epoch superframes", func(q *Query) { q.Lifetime.EpochSuperframes = intPtr(0) }, "lifetime.epoch_superframes"},
		{"huge max epochs", func(q *Query) { q.Lifetime.MaxEpochs = intPtr(MaxLifetimeEpochs + 1) }, "lifetime.max_epochs"},
		{"negative harvest", func(q *Query) { q.Lifetime.HarvestUW = floatPtr(-10) }, "lifetime.harvest_uw"},
		{"infinite horizon", func(q *Query) { q.Lifetime.HorizonHours = floatPtr(math.Inf(1)) }, "lifetime.horizon_hours"},
		{"nan self discharge", func(q *Query) { q.Lifetime.SelfDischargePerYear = floatPtr(math.NaN()) }, "lifetime.self_discharge_per_year"},
		{"too many replicas", func(q *Query) { q.Replicas = MaxReplicas + 1 }, "replicas"},
		{"lifetime field on simulate", func(q *Query) { q.Kind = KindSimulate }, "lifetime"},
		{"params field on lifetime", func(q *Query) { q.Params = &ParamsWire{} }, "params"},
	}
	for _, tc := range cases {
		q := lifetimeTestQuery()
		tc.mut(&q)
		_, err := Compile(q)
		if err == nil {
			t.Errorf("%s: compiled", tc.name)
			continue
		}
		aerr, ok := err.(*Error)
		if !ok {
			t.Errorf("%s: unstructured error %v", tc.name, err)
			continue
		}
		if !strings.HasPrefix(aerr.Field, tc.field) {
			t.Errorf("%s: error field %q, want prefix %q", tc.name, aerr.Field, tc.field)
		}
	}
}

func int64Ptr(v int64) *int64 { return &v }
