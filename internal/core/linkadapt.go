package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"dense802154/internal/engine"
	"dense802154/internal/fit"
	"dense802154/internal/stats"
)

// Link adaptation (§4-§5): with a fixed data rate, the energy-optimal
// policy is channel inversion — pick the lowest transmit level whose energy
// per bit at the measured path loss beats all others. The switching
// thresholds are the crossings of the per-level energy-vs-path-loss curves
// (the circles of Fig. 7); the paper observes they are independent of the
// network load.

// OptimalTXLevel returns the energy-per-bit-minimizing transmit level for
// p's path loss.
func OptimalTXLevel(p Params) (int, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	// Pick the finite minimum; when no level closes the link (deep in the
	// out-of-range tail), fall back to full power.
	best, bestE := -1, math.Inf(1)
	for i := 0; i <= p.Radio.MaxTXLevel(); i++ {
		q := p
		q.TXLevelIndex = i
		m := evaluateAtLevel(q)
		if !math.IsInf(m.EnergyPerBitJ, 0) && !math.IsNaN(m.EnergyPerBitJ) && m.EnergyPerBitJ < bestE {
			best, bestE = i, m.EnergyPerBitJ
		}
	}
	if best < 0 {
		best = p.Radio.MaxTXLevel()
	}
	return best, nil
}

// EnergyCurve is energy per bit versus path loss for one transmit level.
type EnergyCurve struct {
	LevelIndex int
	LevelDBm   float64
	LossDB     []float64
	EnergyJ    []float64 // J/bit
}

// EnergyVsPathLoss evaluates the model across a path-loss grid for every
// transmit level of the radio (one Fig. 7 family at p.Load). The
// (level, loss) cells are evaluated concurrently on p.Workers goroutines;
// every cell writes its own grid slot, so the curve family is identical at
// any worker count.
func EnergyVsPathLoss(p Params, losses []float64) ([]EnergyCurve, error) {
	return EnergyVsPathLossCtx(context.Background(), p, losses)
}

// EnergyVsPathLossCtx is EnergyVsPathLoss with cancellation: a canceled ctx
// stops the (level, loss) grid promptly and returns ctx.Err().
func EnergyVsPathLossCtx(ctx context.Context, p Params, losses []float64) ([]EnergyCurve, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	levels := p.Radio.MaxTXLevel() + 1
	curves := make([]EnergyCurve, levels)
	for i := range curves {
		curves[i] = EnergyCurve{
			LevelIndex: i,
			LevelDBm:   p.Radio.TXLevels[i].DBm,
			LossDB:     append([]float64(nil), losses...),
			EnergyJ:    make([]float64, len(losses)),
		}
	}
	// The evaluation closure cannot fail, so Map's error is the ctx's.
	err := engine.Map(ctx, p.Workers, levels*len(losses), func(k int) error {
		i, j := k/len(losses), k%len(losses)
		q := p
		q.TXLevelIndex = i
		q.PathLossDB = losses[j]
		curves[i].EnergyJ[j] = evaluateAtLevel(q).EnergyPerBitJ
		return nil
	})
	if err != nil {
		return nil, err
	}
	return curves, nil
}

// Threshold is one link-adaptation switching point: above LossDB the node
// should move from FromDBm to ToDBm.
type Threshold struct {
	FromLevel, ToLevel int
	FromDBm, ToDBm     float64
	LossDB             float64
}

// String implements fmt.Stringer.
func (t Threshold) String() string {
	return fmt.Sprintf("switch %g→%g dBm at %.1f dB path loss", t.FromDBm, t.ToDBm, t.LossDB)
}

// Thresholds locates the switching path losses between consecutive transmit
// levels by finding the crossings of their energy curves (the circles of
// Fig. 7). Levels whose curves never cross inside the grid are skipped.
func Thresholds(p Params, losses []float64) ([]Threshold, error) {
	return ThresholdsCtx(context.Background(), p, losses)
}

// ThresholdsCtx is Thresholds with cancellation.
func ThresholdsCtx(ctx context.Context, p Params, losses []float64) ([]Threshold, error) {
	curves, err := EnergyVsPathLossCtx(ctx, p, losses)
	if err != nil {
		return nil, err
	}
	var out []Threshold
	for i := 0; i+1 < len(curves); i++ {
		xc, ok := fit.Crossing(losses, curves[i].EnergyJ, curves[i+1].EnergyJ)
		if !ok {
			continue
		}
		out = append(out, Threshold{
			FromLevel: curves[i].LevelIndex,
			ToLevel:   curves[i+1].LevelIndex,
			FromDBm:   curves[i].LevelDBm,
			ToDBm:     curves[i+1].LevelDBm,
			LossDB:    xc,
		})
	}
	return out, nil
}

// AdaptationSavings quantifies the paper's "adaptation of the transmit
// power can save up to 40% of the total energy": the relative energy-per-
// bit reduction of the adapted policy versus always transmitting at full
// power, at the given path loss.
func AdaptationSavings(p Params, lossDB float64) (float64, error) {
	p.PathLossDB = lossDB
	p.TXLevelIndex = AutoTXLevel
	adapted, err := Evaluate(p)
	if err != nil {
		return 0, err
	}
	p.TXLevelIndex = p.Radio.MaxTXLevel()
	full, err := Evaluate(p)
	if err != nil {
		return 0, err
	}
	if full.EnergyPerBitJ == 0 {
		return 0, nil
	}
	return 1 - adapted.EnergyPerBitJ/full.EnergyPerBitJ, nil
}

// AdaptedEnergySeries evaluates the link-adapted (lower envelope) energy
// per bit across a path-loss grid — the solid curve of Fig. 7.
func AdaptedEnergySeries(p Params, losses []float64) (stats.Series, error) {
	return AdaptedEnergySeriesCtx(context.Background(), p, losses)
}

// AdaptedEnergySeriesCtx is AdaptedEnergySeries with cancellation.
func AdaptedEnergySeriesCtx(ctx context.Context, p Params, losses []float64) (stats.Series, error) {
	if err := p.Validate(); err != nil {
		return stats.Series{}, err
	}
	s := stats.Series{Label: fmt.Sprintf("load %.2f", p.Load)}
	ms, err := engine.MapSlice(ctx, p.Workers, losses,
		func(i int, a float64) (Metrics, error) {
			q := p
			q.PathLossDB = a
			q.TXLevelIndex = AutoTXLevel
			return Evaluate(q)
		})
	if err != nil {
		return stats.Series{}, err
	}
	for i, a := range losses {
		s.Append(a, ms[i].EnergyPerBitJ)
	}
	return s, nil
}

// DelayAt is a small helper exposing the model delay at a path loss (used
// by examples).
func DelayAt(p Params, lossDB float64) (time.Duration, error) {
	p.PathLossDB = lossDB
	m, err := Evaluate(p)
	if err != nil {
		return 0, err
	}
	return m.Delay, nil
}
