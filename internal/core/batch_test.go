package core

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"dense802154/internal/contention"
)

// quickParams returns a small-but-real configuration: Monte-Carlo
// contention at reduced scale so the tests stay fast.
func quickParams(workers int) Params {
	p := DefaultParams()
	p.Workers = workers
	p.Contention = contention.NewMCSource(contention.Config{
		Superframes: 12, Seed: 2005, Workers: workers,
	})
	return p
}

func TestRunCaseStudyWorkerCountInvariance(t *testing.T) {
	cfg := DefaultCaseStudy()
	cfg.LossGridPoints = 11

	run := func(workers int) CaseStudyResult {
		contention.ResetCache() // force a fresh Monte-Carlo run per worker count
		res, err := RunCaseStudy(quickParams(workers), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(1)
	for _, w := range []int{4, runtime.NumCPU()} {
		got := run(w)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Workers=%d produced a different CaseStudyResult:\n got %+v\nwant %+v", w, got, want)
		}
	}
	contention.ResetCache()
}

func TestEvaluateBatchMatchesSerialEvaluate(t *testing.T) {
	var ps []Params
	for _, loss := range []float64{55, 65, 75, 85, 95} {
		p := quickParams(1)
		p.PathLossDB = loss
		ps = append(ps, p)
	}
	got, err := EvaluateBatch(context.Background(), 4, ps)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		want, err := Evaluate(p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("batch[%d] != serial Evaluate:\n got %+v\nwant %+v", i, got[i], want)
		}
	}
}

func TestEvaluateBatchInvalidParamsError(t *testing.T) {
	ps := []Params{quickParams(1), {}} // second element fails validation
	if _, err := EvaluateBatch(context.Background(), 2, ps); err == nil {
		t.Fatal("invalid element must fail the batch")
	}
}

func TestEvaluateBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ps := make([]Params, 256)
	for i := range ps {
		ps[i] = quickParams(1)
	}
	start := time.Now()
	_, err := EvaluateBatch(ctx, 2, ps)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("canceled batch took %v to stop", d)
	}
}
