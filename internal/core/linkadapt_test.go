package core

import (
	"math"
	"testing"

	"dense802154/internal/channel"
	"dense802154/internal/contention"
	"dense802154/internal/radio"
)

func TestOptimalLevelGrowsWithLoss(t *testing.T) {
	p := testParams()
	prev := -1
	for _, a := range []float64{45, 60, 75, 85, 90} {
		p.PathLossDB = a
		lvl, err := OptimalTXLevel(p)
		if err != nil {
			t.Fatal(err)
		}
		if lvl < prev {
			t.Fatalf("optimal level decreased (%d -> %d) as loss grew to %v", prev, lvl, a)
		}
		prev = lvl
	}
	// Extremes: weakest level at short range, strongest beyond ~88 dB.
	p.PathLossDB = 45
	lo, _ := OptimalTXLevel(p)
	if lo != 0 {
		t.Errorf("optimal level at 45 dB = %d, want 0 (-25 dBm)", lo)
	}
	p.PathLossDB = 92
	hi, _ := OptimalTXLevel(p)
	if hi != p.Radio.MaxTXLevel() {
		t.Errorf("optimal level at 92 dB = %d, want max", hi)
	}
}

func TestOptimalLevelOutOfRangeFallsBackToMax(t *testing.T) {
	p := testParams()
	p.PathLossDB = 140
	lvl, err := OptimalTXLevel(p)
	if err != nil {
		t.Fatal(err)
	}
	if lvl != p.Radio.MaxTXLevel() {
		t.Fatalf("out-of-range fallback level = %d, want max", lvl)
	}
}

func TestEnergyVsPathLossShape(t *testing.T) {
	p := testParams()
	losses := channel.LossGrid(40, 95, 56)
	curves, err := EnergyVsPathLoss(p, losses)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 8 {
		t.Fatalf("curves = %d, want 8 levels", len(curves))
	}
	// At low loss the weakest level must be cheapest; at 90 dB the
	// strongest must win.
	idx0 := 0 // loss 40
	if curves[0].EnergyJ[idx0] >= curves[7].EnergyJ[idx0] {
		t.Error("weak level not cheapest at 40 dB")
	}
	idx90 := 50 // loss 90
	if curves[7].EnergyJ[idx90] >= curves[0].EnergyJ[idx90] {
		t.Error("strong level not cheapest at 90 dB")
	}
}

func TestThresholdsOrderedAndLoadIndependent(t *testing.T) {
	p := testParams()
	losses := channel.LossGrid(40, 95, 111)
	th1, err := Thresholds(p, losses)
	if err != nil {
		t.Fatal(err)
	}
	if len(th1) < 4 {
		t.Fatalf("only %d thresholds found", len(th1))
	}
	for _, th := range th1 {
		if th.LossDB < 40 || th.LossDB > 95 {
			t.Errorf("threshold %v outside grid", th)
		}
		if th.String() == "" {
			t.Error("empty threshold string")
		}
	}
	// Paper: "the thresholds are independent of the network load".
	// Compare against a much busier contention environment.
	q := p
	q.Load = 0.8
	q.Contention = fixedSource{contention.Stats{
		Tcont: 12e6, NCCA: 5, PrCF: 0.4, PrCol: 0.15,
	}}
	th2, err := Thresholds(q, losses)
	if err != nil {
		t.Fatal(err)
	}
	if len(th1) != len(th2) {
		t.Fatalf("threshold count changed with load: %d vs %d", len(th1), len(th2))
	}
	for i := range th1 {
		if math.Abs(th1[i].LossDB-th2[i].LossDB) > 1.5 {
			t.Errorf("threshold %d moved with load: %.2f vs %.2f dB",
				i, th1[i].LossDB, th2[i].LossDB)
		}
	}
}

func TestAdaptationSavings(t *testing.T) {
	p := testParams()
	// Paper: up to 40% savings at short range; our accounting yields
	// ≈25-35% (EXPERIMENTS.md records the exact figure).
	s, err := AdaptationSavings(p, 55)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.15 || s > 0.5 {
		t.Fatalf("savings at 55 dB = %v, want substantial", s)
	}
	// At the edge of range adaptation cannot help.
	s90, err := AdaptationSavings(p, 90)
	if err != nil {
		t.Fatal(err)
	}
	if s90 > 0.02 {
		t.Fatalf("savings at 90 dB = %v, want ≈0", s90)
	}
}

func TestAdaptedEnergySeriesMonotoneUpToEdge(t *testing.T) {
	p := testParams()
	losses := channel.LossGrid(45, 88, 44)
	s, err := AdaptedEnergySeries(p, losses)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 44 {
		t.Fatalf("series length %d", s.Len())
	}
	// Energy per bit grows (weakly) with path loss inside the efficient
	// region; allow small numerical wiggle at level switch points.
	for i := 1; i < s.Len(); i++ {
		if s.Y[i] < s.Y[i-1]*0.98 {
			t.Fatalf("adapted energy dropped sharply at %v dB: %v -> %v",
				s.X[i], s.Y[i-1], s.Y[i])
		}
	}
	// The paper's span: 135 nJ/bit at ≤55 dB to 220 nJ/bit at 88 dB —
	// our accounting lands slightly higher but must preserve the ratio.
	first, last := s.Y[4], s.Y[s.Len()-1] // ~49 dB and 88 dB
	ratio := last / first
	if ratio < 1.2 || ratio > 2.2 {
		t.Fatalf("88dB/50dB energy ratio = %v, paper has ≈1.6", ratio)
	}
}

func TestDelayAt(t *testing.T) {
	p := testParams()
	d, err := DelayAt(p, 60)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("non-positive delay")
	}
}

func TestThresholdsWithRealRadioOrdering(t *testing.T) {
	// The CC2420 levels -7 and -5 dBm are nearly equal in current
	// (12.17 vs 12.27 mA): their crossing may sit out of order; all
	// others must ascend.
	p := testParams()
	p.Radio = radio.CC2420()
	losses := channel.LossGrid(40, 95, 111)
	ths, err := Thresholds(p, losses)
	if err != nil {
		t.Fatal(err)
	}
	violations := 0
	for i := 1; i < len(ths); i++ {
		if ths[i].LossDB < ths[i-1].LossDB-0.5 {
			violations++
		}
	}
	if violations > 1 {
		t.Fatalf("%d threshold-order violations, want ≤1 (the -7/-5 dBm pair)", violations)
	}
}
