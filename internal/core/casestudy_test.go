package core

import (
	"math"
	"testing"
	"time"
)

func TestDefaultCaseStudyConfig(t *testing.T) {
	cfg := DefaultCaseStudy()
	if cfg.Nodes != 1600 || cfg.Channels != 16 {
		t.Fatal("population")
	}
	if cfg.NodesPerChannel() != 100 {
		t.Fatalf("nodes per channel = %d", cfg.NodesPerChannel())
	}
	// 1 byte per 8 ms = 125 B/s; 120 bytes buffer in 960 ms.
	if d := cfg.BufferingDelay(120); d != 960*time.Millisecond {
		t.Fatalf("buffering delay = %v", d)
	}
	// Degenerate rate.
	cfg.DataBytesPerSecond = 0
	if cfg.BufferingDelay(120) != 0 {
		t.Fatal("zero-rate buffering")
	}
	cfg.Channels = 0
	if cfg.NodesPerChannel() != 1600 {
		t.Fatal("zero channels")
	}
}

func TestCaseStudyHeadlineNumbers(t *testing.T) {
	// The paper's §5 headline: 211 µW, 16% failure, 1.45 s delay at 42%
	// load. Reproduction tolerance: power within ±25%, failure within
	// [0.08, 0.25], load ≈0.43, delay in 1-2 s.
	p := testParams()
	p.Contention = DefaultParams().Contention // real Monte-Carlo source
	res, err := RunCaseStudy(p, DefaultCaseStudy())
	if err != nil {
		t.Fatal(err)
	}
	if res.Load < 0.41 || res.Load > 0.45 {
		t.Errorf("load = %v, want ≈0.43", res.Load)
	}
	pw := res.AvgPower.MicroWatts()
	if pw < 211*0.75 || pw > 211*1.25 {
		t.Errorf("avg power = %.1f µW, want 211±25%%", pw)
	}
	if res.MeanPrFail < 0.08 || res.MeanPrFail > 0.25 {
		t.Errorf("PrFail = %v, want ≈0.16", res.MeanPrFail)
	}
	if res.MeanDelay < time.Second || res.MeanDelay > 2*time.Second {
		t.Errorf("delay = %v, want ≈1.45 s", res.MeanDelay)
	}
	if res.Coverage < 0.95 {
		t.Errorf("coverage = %v, want ≈1 for 55-95 dB with adaptation", res.Coverage)
	}
	t.Logf("case study: P=%.1fµW PrFail=%.3f delay=%v (paper: 211µW, 0.16, 1.45s)",
		pw, res.MeanPrFail, res.MeanDelay)
}

func TestCaseStudyBreakdownShape(t *testing.T) {
	// Fig. 9a: beacon ≈20%, contention ≈25%, transmit <50%, ack ≈15%.
	// Fig. 9b: shutdown 98.77%, idle 0.47%, TX 0.48%, RX 0.28%.
	p := testParams()
	p.Contention = DefaultParams().Contention
	res, err := RunCaseStudy(p, DefaultCaseStudy())
	if err != nil {
		t.Fatal(err)
	}
	sh := res.Breakdown.Share()
	beacon, cont, tx, ack := sh[0], sh[1], sh[2], sh[3]
	if beacon < 0.10 || beacon > 0.30 {
		t.Errorf("beacon share = %v, paper ≈0.20", beacon)
	}
	if cont < 0.10 || cont > 0.35 {
		t.Errorf("contention share = %v, paper ≈0.25", cont)
	}
	if tx < 0.35 || tx >= 0.60 {
		t.Errorf("transmit share = %v, paper <0.50", tx)
	}
	if ack < 0.08 || ack > 0.25 {
		t.Errorf("ack share = %v, paper ≈0.15", ack)
	}
	fr := res.States.Fractions()
	if fr[0] < 0.975 || fr[0] > 0.995 {
		t.Errorf("shutdown fraction = %v, paper 0.9877", fr[0])
	}
	if fr[1] > 0.015 {
		t.Errorf("idle fraction = %v, paper 0.0047", fr[1])
	}
	if fr[2] > 0.008 {
		t.Errorf("rx fraction = %v, paper 0.0028", fr[2])
	}
	if fr[3] < 0.002 || fr[3] > 0.010 {
		t.Errorf("tx fraction = %v, paper 0.0048", fr[3])
	}
	t.Logf("phases: beacon=%.3f cont=%.3f tx=%.3f ack=%.3f; states: %v", beacon, cont, tx, ack, fr)
}

func TestCaseStudyPerNodeMonotonicity(t *testing.T) {
	p := testParams()
	res, err := RunCaseStudy(p, DefaultCaseStudy())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PowerUW) != len(res.LossGrid) {
		t.Fatal("grid lengths")
	}
	// Power must be non-decreasing in path loss (higher TX levels).
	for i := 1; i < len(res.PowerUW); i++ {
		if res.PowerUW[i] < res.PowerUW[i-1]*0.999 {
			t.Fatalf("per-node power dropped at %v dB", res.LossGrid[i])
		}
	}
	// Levels non-decreasing.
	for i := 1; i < len(res.LevelUsed); i++ {
		if res.LevelUsed[i] < res.LevelUsed[i-1] {
			t.Fatalf("TX level dropped at %v dB", res.LossGrid[i])
		}
	}
}

func TestCaseStudyGridValidation(t *testing.T) {
	cfg := DefaultCaseStudy()
	cfg.LossGridPoints = 1
	if _, err := RunCaseStudy(testParams(), cfg); err == nil {
		t.Fatal("1-point grid accepted")
	}
}

func TestImprovementsMatchPaperDirections(t *testing.T) {
	// §5: transitions ×0.5 → ≈12% less power; scalable receiver → ≈15%
	// more. Require the right ordering and rough magnitude.
	p := testParams()
	p.Contention = DefaultParams().Contention
	res, err := EvaluateImprovements(p, DefaultCaseStudy(), DefaultImprovements())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	fast, scalable, both := res.Rows[0], res.Rows[1], res.Rows[2]
	if fast.Reduction < 0.04 || fast.Reduction > 0.25 {
		t.Errorf("fast transitions reduction = %v, paper ≈0.12", fast.Reduction)
	}
	if scalable.Reduction < 0.06 || scalable.Reduction > 0.30 {
		t.Errorf("scalable receiver reduction = %v, paper ≈0.15", scalable.Reduction)
	}
	if both.Reduction <= math.Max(fast.Reduction, scalable.Reduction) {
		t.Error("combined improvement must beat each alone")
	}
	for _, r := range res.Rows {
		if r.AvgPower >= res.Baseline {
			t.Errorf("%s did not reduce power", r.Name)
		}
	}
	t.Logf("baseline %.1fµW; fast -%.1f%%, scalable -%.1f%%, both -%.1f%% (paper: -12%%, -15%%)",
		res.Baseline.MicroWatts(), fast.Reduction*100, scalable.Reduction*100, both.Reduction*100)
}

func TestPacketSizeMonotoneDecrease(t *testing.T) {
	// Fig. 8: energy per bit decreases monotonically up to 123 bytes.
	p := testParams()
	sizes := []int{5, 10, 20, 40, 60, 80, 100, 120, 123}
	s, err := EnergyVsPayload(p, sizes)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < s.Len(); i++ {
		if s.Y[i] >= s.Y[i-1] {
			t.Fatalf("energy per bit rose from %dB to %dB: %v -> %v",
				sizes[i-1], sizes[i], s.Y[i-1], s.Y[i])
		}
	}
	opt, e, err := OptimalPayload(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 123 {
		t.Fatalf("optimal payload = %d, want 123 (the maximum)", opt)
	}
	if e <= 0 {
		t.Fatal("non-positive optimal energy")
	}
}

func TestEnergyVsPayloadValidates(t *testing.T) {
	p := testParams()
	p.NMax = 0
	if _, err := EnergyVsPayload(p, []int{10}); err == nil {
		t.Fatal("invalid params accepted")
	}
	if _, err := AdaptedEnergySeries(p, []float64{60}); err == nil {
		t.Fatal("invalid params accepted")
	}
	if _, err := EnergyVsPathLoss(p, []float64{60}); err == nil {
		t.Fatal("invalid params accepted")
	}
	if _, err := OptimalTXLevel(p); err == nil {
		t.Fatal("invalid params accepted")
	}
}
