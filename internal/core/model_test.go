package core

import (
	"math"
	"testing"
	"time"

	"dense802154/internal/contention"
	"dense802154/internal/frame"
	"dense802154/internal/mac"
	"dense802154/internal/phy"
	"dense802154/internal/radio"
)

// fixedSource returns constant contention statistics, making unit tests of
// the closed-form part of the model exact and fast.
type fixedSource struct{ s contention.Stats }

func (f fixedSource) Contention(int, float64) contention.Stats { return f.s }

// quietContention: a nearly empty channel.
func quietContention() contention.Source {
	return fixedSource{contention.Stats{
		Tcont: 2 * time.Millisecond,
		NCCA:  2,
		PrCF:  0,
		PrCol: 0,
	}}
}

func testParams() Params {
	p := DefaultParams()
	p.Contention = quietContention()
	return p
}

func TestValidate(t *testing.T) {
	if err := testParams().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Params){
		func(p *Params) { p.Radio = nil },
		func(p *Params) { p.BER = nil },
		func(p *Params) { p.Contention = nil },
		func(p *Params) { p.PayloadBytes = 0 },
		func(p *Params) { p.PayloadBytes = 200 },
		func(p *Params) { p.Load = -0.1 },
		func(p *Params) { p.Load = 1.5 },
		func(p *Params) { p.NMax = 0 },
		func(p *Params) { p.TXLevelIndex = 99 },
		func(p *Params) { p.Superframe = mac.Superframe{BO: 15} },
	}
	for i, mutate := range cases {
		p := testParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestEvaluateRejectsInvalid(t *testing.T) {
	p := testParams()
	p.PayloadBytes = -1
	if _, err := Evaluate(p); err == nil {
		t.Fatal("Evaluate accepted invalid params")
	}
}

func TestPacketTimingEq3(t *testing.T) {
	p := testParams()
	p.TXLevelIndex = 7
	m, err := Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	// Eq. (3): (13+120)·32µs = 4.256 ms.
	if m.Tpacket != 4256*time.Microsecond {
		t.Fatalf("Tpacket = %v", m.Tpacket)
	}
}

func TestErrorChainEqs7to10(t *testing.T) {
	// With a clean channel and no collisions, PrTF = PrE.
	p := testParams()
	p.TXLevelIndex = 7
	p.PathLossDB = 90 // PRx = -90 dBm, meaningful BER
	m, err := Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	wantBit := phy.Eq1.BitErrorRate(-90)
	if math.Abs(m.PrBit-wantBit)/wantBit > 1e-12 {
		t.Fatalf("PrBit = %v, want %v", m.PrBit, wantBit)
	}
	wantE := phy.PacketErrorRateBytes(wantBit, frame.ErrorProneBytes(120))
	if math.Abs(m.PrE-wantE)/wantE > 1e-12 {
		t.Fatalf("PrE = %v, want %v", m.PrE, wantE)
	}
	if math.Abs(m.PrTF-m.PrE) > 1e-15 {
		t.Fatalf("PrTF %v != PrE %v with no collisions", m.PrTF, m.PrE)
	}
	// E[tx] for truncated geometric: sum_{i=1..5} i p^{i-1}(1-p) + 5 p^5.
	pf := m.PrTF
	want := 0.0
	for i := 1; i <= 5; i++ {
		want += float64(i) * math.Pow(pf, float64(i-1)) * (1 - pf)
	}
	want += 5 * math.Pow(pf, 5)
	if math.Abs(m.ExpectedTx-want) > 1e-12 {
		t.Fatalf("ExpectedTx = %v, want %v", m.ExpectedTx, want)
	}
}

func TestDwellTimesCleanChannel(t *testing.T) {
	// With PrCF=0, PrCol=0 and a perfect link, exactly one transmission:
	// the eq. (4)-(6) terms are directly checkable.
	p := testParams()
	p.TXLevelIndex = 7
	p.PathLossDB = 40 // essentially error-free
	p.IncludeIFS = false
	m, err := Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.ExpectedTx-1) > 1e-9 {
		t.Fatalf("ExpectedTx = %v, want 1", m.ExpectedTx)
	}
	// T_idle = Tsi + 1·(Tcont + t_ack−).
	wantIdle := time.Millisecond + 2*time.Millisecond + mac.AckWaitMin
	if d := m.Tidle - wantIdle; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("Tidle = %v, want %v", m.Tidle, wantIdle)
	}
	// T_TX = Tpacket.
	if d := m.TTx - m.Tpacket; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("TTx = %v, want %v", m.TTx, m.Tpacket)
	}
	// T_RX = (Tia+Tbeacon) + 2·(Tia+Tcca) + (Tia + (t_ack+ − t_ack−)).
	tia := 194 * time.Microsecond
	wantRx := tia + phy.TxDuration(30) +
		2*(tia+phy.CCADuration) +
		tia + (mac.AckWaitMax - mac.AckWaitMin)
	if d := m.TRx - wantRx; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("TRx = %v, want %v", m.TRx, wantRx)
	}
	// State times are consistent with the beacon interval.
	total := m.States.Shutdown + m.States.Idle + m.States.RX + m.States.TX
	if total != p.Superframe.BeaconInterval() {
		t.Fatalf("state times sum %v != Tib %v", total, p.Superframe.BeaconInterval())
	}
}

func TestAveragePowerEq11ByHand(t *testing.T) {
	// Cross-check eq. (11) against a hand computation from the breakdown.
	p := testParams()
	p.TXLevelIndex = 3
	p.PathLossDB = 60
	m, err := Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	tib := p.Superframe.BeaconInterval()
	hand := float64(m.Breakdown.Total()) / tib.Seconds()
	if math.Abs(hand-float64(m.AvgPower))/hand > 1e-12 {
		t.Fatalf("AvgPower %v != breakdown/Tib %v", float64(m.AvgPower), hand)
	}
	// Energy per superframe must equal breakdown total.
	if m.EnergyPerFrame != m.Breakdown.Total() {
		t.Fatal("EnergyPerFrame != breakdown total")
	}
}

func TestRetransmissionsIncreaseEverything(t *testing.T) {
	bad := fixedSource{contention.Stats{
		Tcont: 4 * time.Millisecond, NCCA: 3, PrCF: 0.1, PrCol: 0.3,
	}}
	p := testParams()
	p.TXLevelIndex = 7
	p.PathLossDB = 60
	clean, err := Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Contention = bad
	noisy, err := Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if noisy.ExpectedTx <= clean.ExpectedTx {
		t.Error("collisions must raise the expected transmission count")
	}
	if noisy.TTx <= clean.TTx {
		t.Error("retransmissions must raise TX time")
	}
	if noisy.AvgPower <= clean.AvgPower {
		t.Error("retransmissions must raise power")
	}
	if noisy.PrFail <= clean.PrFail {
		t.Error("collisions must raise the failure probability")
	}
	if noisy.Delay <= clean.Delay {
		t.Error("failures must raise delay")
	}
}

func TestFailureProbabilityEq13(t *testing.T) {
	src := fixedSource{contention.Stats{Tcont: time.Millisecond, NCCA: 2, PrCF: 0.2, PrCol: 0.1}}
	p := testParams()
	p.Contention = src
	p.TXLevelIndex = 7
	p.PathLossDB = 40 // no bit errors: PrTF = PrCol
	m, err := Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - (1-0.2)*(1-math.Pow(0.1, 5))
	if math.Abs(m.PrFail-want) > 1e-9 {
		t.Fatalf("PrFail = %v, want %v", m.PrFail, want)
	}
	wantDelay := time.Duration(float64(p.Superframe.BeaconInterval()) / (1 - want))
	if d := m.Delay - wantDelay; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("Delay = %v, want %v", m.Delay, wantDelay)
	}
}

func TestOutOfRangeNodeSaturates(t *testing.T) {
	p := testParams()
	p.TXLevelIndex = 0 // -25 dBm
	p.PathLossDB = 110 // PRx = -135 dBm: hopeless
	m, err := Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if m.PrFail < 0.999 {
		t.Fatalf("PrFail = %v, want ≈1", m.PrFail)
	}
	if !math.IsInf(m.EnergyPerBitJ, 1) {
		t.Fatalf("energy per bit = %v, want +Inf", m.EnergyPerBitJ)
	}
	if m.Delay <= 0 {
		t.Fatalf("delay overflowed: %v", m.Delay)
	}
}

func TestHigherBeaconOrderLowersPower(t *testing.T) {
	// Longer inter-beacon periods amortize the per-superframe costs.
	p := testParams()
	p.TXLevelIndex = 7
	sf6, _ := mac.NewSuperframe(6, 6)
	sf8, _ := mac.NewSuperframe(8, 8)
	p.Superframe = sf6
	m6, err := Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Superframe = sf8
	m8, err := Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if m8.AvgPower >= m6.AvgPower {
		t.Errorf("power at BO=8 (%v) not below BO=6 (%v)", m8.AvgPower, m6.AvgPower)
	}
	// But delay grows.
	if m8.Delay <= m6.Delay {
		t.Error("delay must grow with the beacon interval")
	}
}

func TestShutdownLeakageToggle(t *testing.T) {
	p := testParams()
	p.TXLevelIndex = 7
	p.IncludeShutdownLeakage = true
	with, _ := Evaluate(p)
	p.IncludeShutdownLeakage = false
	without, _ := Evaluate(p)
	diff := float64(with.AvgPower - without.AvgPower)
	// The leakage floor is 144 nW; the shutdown fraction is ≈98.5%.
	if diff < 100e-9 || diff > 150e-9 {
		t.Fatalf("leakage contribution = %v W, want ≈0.14 µW", diff)
	}
}

func TestPaperAckAccountingIsWorstCase(t *testing.T) {
	p := testParams()
	p.TXLevelIndex = 7
	p.PaperAckAccounting = true
	worst, _ := Evaluate(p)
	p.PaperAckAccounting = false
	refined, _ := Evaluate(p)
	if worst.TRx <= refined.TRx {
		t.Errorf("paper ack accounting %v not above refined %v", worst.TRx, refined.TRx)
	}
}

func TestScalableReceiverReducesListenEnergy(t *testing.T) {
	p := testParams()
	p.TXLevelIndex = 7
	base, _ := Evaluate(p)
	p.Radio = radio.CC2420().WithScalableReceiver(0.5)
	scaled, _ := Evaluate(p)
	if scaled.AvgPower >= base.AvgPower {
		t.Error("scalable receiver must cut power")
	}
	// The beacon phase is unaffected (full RX power there).
	if math.Abs(float64(scaled.Breakdown.Beacon-base.Breakdown.Beacon)) > 1e-15 {
		t.Error("scalable receiver must not touch beacon reception")
	}
	if scaled.Breakdown.Contention >= base.Breakdown.Contention {
		t.Error("contention CCA energy must shrink")
	}
	if scaled.Breakdown.Ack >= base.Breakdown.Ack {
		t.Error("ack wait energy must shrink")
	}
}

func TestBreakdownSharesSumToOne(t *testing.T) {
	p := testParams()
	p.TXLevelIndex = 4
	m, _ := Evaluate(p)
	sh := m.Breakdown.Share()
	sum := 0.0
	for _, v := range sh {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v", sum)
	}
	fr := m.States.Fractions()
	sum = 0
	for _, v := range fr {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("state fractions sum to %v", sum)
	}
}

func TestBreakdownZeroTotals(t *testing.T) {
	var b Breakdown
	if b.Share() != [5]float64{} {
		t.Fatal("zero breakdown share")
	}
	var s StateTimes
	if s.Fractions() != [4]float64{} {
		t.Fatal("zero state fractions")
	}
}
