package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"dense802154/internal/channel"
	"dense802154/internal/engine"
	"dense802154/internal/frame"
	"dense802154/internal/stats"
	"dense802154/internal/units"
)

// The dense-network case study of §5: 1600 nodes uniformly distributed
// around a base station share 16 channels (100 nodes each); every node
// gathers 1 byte every 8 ms (1 kb/s), buffers until a 120-byte payload is
// full (one packet every 960 ms) and transmits it in the next superframe
// (BO = 6, Tib ≈ 983 ms, λ ≈ 42%). Path losses are uniform in 55-95 dB and
// every node link-adapts its transmit power.

// CaseStudyConfig describes the scenario.
type CaseStudyConfig struct {
	// Nodes is the total population (1600).
	Nodes int
	// Channels is the number of 2450 MHz channels shared (16).
	Channels int
	// DataBytesPerSecond is each node's sensing rate (125 B/s = 1 kb/s).
	DataBytesPerSecond float64
	// MinLossDB/MaxLossDB bound the uniform path-loss population.
	MinLossDB, MaxLossDB float64
	// LossGridPoints is the integration grid over the population.
	LossGridPoints int
}

// DefaultCaseStudy returns the paper's scenario.
func DefaultCaseStudy() CaseStudyConfig {
	return CaseStudyConfig{
		Nodes:              1600,
		Channels:           16,
		DataBytesPerSecond: 125,
		MinLossDB:          55,
		MaxLossDB:          95,
		LossGridPoints:     81, // 0.5 dB steps over 55-95
	}
}

// NodesPerChannel reports the per-channel population.
func (c CaseStudyConfig) NodesPerChannel() int {
	if c.Channels == 0 {
		return c.Nodes
	}
	return c.Nodes / c.Channels
}

// BufferingDelay reports how long a node takes to accumulate one payload.
func (c CaseStudyConfig) BufferingDelay(payloadBytes int) time.Duration {
	if c.DataBytesPerSecond <= 0 {
		return 0
	}
	return time.Duration(float64(payloadBytes) / c.DataBytesPerSecond * float64(time.Second))
}

// CaseStudyResult aggregates the population metrics the paper reports.
type CaseStudyResult struct {
	Config CaseStudyConfig
	Load   float64

	// Population averages (uniform over path loss).
	AvgPower units.Power // paper: 211 µW
	// MeanPrFail averages the per-node transmission failure probability
	// (paper: 16%).
	MeanPrFail float64
	// Coverage is the fraction of the population whose links close at
	// all (delay finite); nodes deep in the >88 dB tail never deliver.
	Coverage float64
	// MeanDelay/MedianDelay are over covered nodes (paper: 1.45 s; see
	// EXPERIMENTS.md for the reading of that figure).
	MeanDelay    time.Duration
	MedianDelay  time.Duration
	NominalDelay time.Duration // Tib / (1 - mean PrFail)
	MeanEnergyJ  float64       // J/bit, mean over covered nodes

	// Population breakdown, averaged (Fig. 9a/9b inputs).
	Breakdown Breakdown
	States    StateTimes

	// Per-loss-grid details for plotting.
	LossGrid  []float64
	PowerUW   []float64
	PrFail    []float64
	LevelUsed []int
}

// RunCaseStudy integrates the model over the path-loss population. The
// base Params supply radio, BER, contention source, superframe and worker
// count; load and payload come from the scenario. The path-loss grid is
// evaluated concurrently on p.Workers goroutines with worker-count-
// independent results.
func RunCaseStudy(p Params, cfg CaseStudyConfig) (CaseStudyResult, error) {
	return RunCaseStudyCtx(context.Background(), p, cfg)
}

// RunCaseStudyCtx is RunCaseStudy with cancellation: a canceled ctx stops
// the population sweep promptly and returns ctx.Err(), so paper-scale
// integrations started on behalf of a remote client (the HTTP service) are
// cancelable end to end when the client disconnects.
func RunCaseStudyCtx(ctx context.Context, p Params, cfg CaseStudyConfig) (CaseStudyResult, error) {
	if cfg.LossGridPoints < 2 {
		return CaseStudyResult{}, fmt.Errorf("core: loss grid needs ≥2 points")
	}
	// Per-channel load: N/ch packets of Tpacket per beacon interval.
	load := p.Superframe.ChannelLoad(cfg.NodesPerChannel(), frame.PaperPacketDuration(p.PayloadBytes))
	p.Load = load
	if err := p.Validate(); err != nil {
		return CaseStudyResult{}, err
	}

	res := CaseStudyResult{Config: cfg, Load: load}
	grid := channel.LossGrid(cfg.MinLossDB, cfg.MaxLossDB, cfg.LossGridPoints)

	// Evaluate the population concurrently; the grid order of the results
	// is fixed by index, so the serial fold below is worker-count
	// independent.
	ms, err := engine.MapSlice(ctx, p.Workers, grid,
		func(i int, a float64) (Metrics, error) {
			q := p
			q.PathLossDB = a
			q.TXLevelIndex = AutoTXLevel
			return Evaluate(q)
		})
	if err != nil {
		return CaseStudyResult{}, err
	}

	var power, prfail, energy stats.Accumulator
	var covered stats.Proportion
	var delays []float64
	var bd Breakdown
	var st StateTimes
	for i, a := range grid {
		m := ms[i]
		res.LossGrid = append(res.LossGrid, a)
		res.PowerUW = append(res.PowerUW, m.AvgPower.MicroWatts())
		res.PrFail = append(res.PrFail, m.PrFail)
		res.LevelUsed = append(res.LevelUsed, m.TXLevelIndex)

		power.Add(float64(m.AvgPower))
		prfail.Add(m.PrFail)
		finite := !math.IsInf(m.EnergyPerBitJ, 0)
		covered.Observe(finite)
		if finite {
			energy.Add(m.EnergyPerBitJ)
			delays = append(delays, m.Delay.Seconds())
		}

		bd.Beacon += m.Breakdown.Beacon
		bd.Contention += m.Breakdown.Contention
		bd.Transmit += m.Breakdown.Transmit
		bd.Ack += m.Breakdown.Ack
		bd.IFS += m.Breakdown.IFS
		bd.Sleep += m.Breakdown.Sleep
		st.Shutdown += m.States.Shutdown
		st.Idle += m.States.Idle
		st.RX += m.States.RX
		st.TX += m.States.TX
	}
	n := units.Energy(len(grid))
	res.AvgPower = units.Power(power.Mean())
	res.MeanPrFail = prfail.Mean()
	res.Coverage = covered.Value()
	res.MeanEnergyJ = energy.Mean()
	res.MeanDelay = time.Duration(stats.Mean(delays) * float64(time.Second))
	res.MedianDelay = time.Duration(stats.Percentile(delays, 0.5) * float64(time.Second))
	res.NominalDelay = time.Duration(float64(p.Superframe.BeaconInterval()) / (1 - res.MeanPrFail))
	res.Breakdown = Breakdown{
		Beacon:     bd.Beacon / n,
		Contention: bd.Contention / n,
		Transmit:   bd.Transmit / n,
		Ack:        bd.Ack / n,
		IFS:        bd.IFS / n,
		Sleep:      bd.Sleep / n,
	}
	k := time.Duration(len(grid))
	res.States = StateTimes{
		Shutdown: st.Shutdown / k,
		Idle:     st.Idle / k,
		RX:       st.RX / k,
		TX:       st.TX / k,
	}
	return res, nil
}
