package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"dense802154/internal/contention"
)

// Property-based tests of model invariants, driven by the closed-form
// contention approximation so evaluations are pure and fast.

func propParams() Params {
	p := DefaultParams()
	p.Contention = contention.Approx{}
	return p
}

// Property: failure probability, delay and energy per *delivered* bit are
// monotone non-decreasing in network load. (Average power is NOT monotone:
// at high load, channel access failures abort transactions before the
// expensive transmission, trading delivery for energy — which is exactly
// why the cost metric must be per delivered bit.)
func TestPropertyDeliveryCostMonotoneInLoad(t *testing.T) {
	f := func(a, b uint8) bool {
		l1 := float64(a%90) / 100
		l2 := l1 + float64(b%10+1)/100
		if l2 > 1 {
			l2 = 1
		}
		p := propParams()
		p.TXLevelIndex = 7
		p.Load = l1
		m1, err := Evaluate(p)
		if err != nil {
			return false
		}
		p.Load = l2
		m2, err := Evaluate(p)
		if err != nil {
			return false
		}
		if m2.PrFail < m1.PrFail-1e-12 || m2.Delay < m1.Delay {
			return false
		}
		return m2.EnergyPerBitJ >= m1.EnergyPerBitJ*(1-1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: at a fixed TX level, failure probability and delay are
// monotone in path loss.
func TestPropertyFailureMonotoneInLoss(t *testing.T) {
	f := func(a, b uint8) bool {
		a1 := 40 + float64(a%55)
		a2 := a1 + float64(b%10) + 0.5
		p := propParams()
		p.TXLevelIndex = 7
		p.PathLossDB = a1
		m1, err := Evaluate(p)
		if err != nil {
			return false
		}
		p.PathLossDB = a2
		m2, err := Evaluate(p)
		if err != nil {
			return false
		}
		return m2.PrFail >= m1.PrFail-1e-12 && m2.Delay >= m1.Delay
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the dwell times never exceed the beacon interval, and all
// probabilities stay in [0,1], for any corner of the parameter space.
func TestPropertyModelSanity(t *testing.T) {
	f := func(payload uint8, loadRaw, lossRaw uint16, level uint8, nmax uint8) bool {
		p := propParams()
		p.PayloadBytes = int(payload%123) + 1
		p.Load = float64(loadRaw%1000) / 1000
		p.PathLossDB = 30 + float64(lossRaw%900)/10 // 30..120 dB
		p.TXLevelIndex = int(level % 8)
		p.NMax = int(nmax%7) + 1
		m, err := Evaluate(p)
		if err != nil {
			return false
		}
		tib := p.Superframe.BeaconInterval()
		if m.Tidle < 0 || m.TTx < 0 || m.TRx < 0 {
			return false
		}
		if m.Tidle+m.TTx+m.TRx > 2*tib {
			// The expected-value dwell can exceed Tib only in absurd
			// retry regimes; twice Tib is a hard sanity bound.
			return false
		}
		for _, pr := range []float64{m.PrBit, m.PrE, m.PrTF, m.PrCF, m.PrFail} {
			if pr < 0 || pr > 1 || math.IsNaN(pr) {
				return false
			}
		}
		if m.ExpectedTx < 1 || m.ExpectedTx > float64(p.NMax) {
			return false
		}
		if m.AvgPower < 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the energy breakdown is non-negative and consistent with the
// per-frame energy.
func TestPropertyBreakdownConsistent(t *testing.T) {
	f := func(payload uint8, level uint8, lossRaw uint16) bool {
		p := propParams()
		p.PayloadBytes = int(payload%123) + 1
		p.TXLevelIndex = int(level % 8)
		p.PathLossDB = 40 + float64(lossRaw%500)/10
		m, err := Evaluate(p)
		if err != nil {
			return false
		}
		b := m.Breakdown
		for _, e := range []float64{
			float64(b.Beacon), float64(b.Contention), float64(b.Transmit),
			float64(b.Ack), float64(b.IFS), float64(b.Sleep),
		} {
			if e < 0 || math.IsNaN(e) {
				return false
			}
		}
		return math.Abs(float64(b.Total()-m.EnergyPerFrame)) < 1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: increasing NMax can only decrease the failure probability and
// increase (or hold) the energy.
func TestPropertyNMaxTradeoff(t *testing.T) {
	f := func(n uint8, lossRaw uint8) bool {
		n1 := int(n%5) + 1
		n2 := n1 + 1
		p := propParams()
		p.TXLevelIndex = 7
		p.PathLossDB = 80 + float64(lossRaw%12) // lossy region: retries matter
		p.NMax = n1
		m1, err := Evaluate(p)
		if err != nil {
			return false
		}
		p.NMax = n2
		m2, err := Evaluate(p)
		if err != nil {
			return false
		}
		return m2.PrFail <= m1.PrFail+1e-12 && m2.AvgPower >= m1.AvgPower-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: evaluation is a pure function — identical inputs give
// identical outputs (guards against hidden state in the model path).
func TestPropertyEvaluateDeterministic(t *testing.T) {
	f := func(payload uint8, level uint8) bool {
		p := propParams()
		p.PayloadBytes = int(payload%123) + 1
		p.TXLevelIndex = int(level % 8)
		m1, err1 := Evaluate(p)
		m2, err2 := Evaluate(p)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		return m1.AvgPower == m2.AvgPower && m1.PrFail == m2.PrFail &&
			m1.Delay == m2.Delay && m1.Tidle == m2.Tidle
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the GTS-style zero-contention source is a lower bound on
// failure probability and on energy per delivered bit versus any
// contention environment. (Raw average power is not bounded this way:
// frequent access failures abort before the costly transmission.)
func TestPropertyContentionIsPureOverhead(t *testing.T) {
	f := func(tcontMS uint8, ncca uint8, cfRaw, colRaw uint8) bool {
		src := fixedSource{contention.Stats{
			Tcont: time.Duration(tcontMS%20) * time.Millisecond,
			NCCA:  float64(ncca%6) + 2,
			PrCF:  float64(cfRaw%80) / 100,
			PrCol: float64(colRaw%50) / 100,
		}}
		p := propParams()
		p.TXLevelIndex = 7
		p.Contention = src
		busy, err := Evaluate(p)
		if err != nil {
			return false
		}
		p.Contention = fixedSource{contention.Stats{}}
		free, err := Evaluate(p)
		if err != nil {
			return false
		}
		if busy.PrFail < free.PrFail-1e-12 {
			return false
		}
		return busy.EnergyPerBitJ >= free.EnergyPerBitJ*(1-1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
