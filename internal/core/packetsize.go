package core

import (
	"context"

	"dense802154/internal/engine"
	"dense802154/internal/frame"
	"dense802154/internal/stats"
)

// Packet size optimization (§5, Fig. 8): small packets amortize the fixed
// MAC overhead poorly; large packets suffer more corruption and, at high
// load, more channel access failures. The paper finds the energy per bit
// nonetheless decreases monotonically up to the 123-byte maximum.

// EnergyVsPayload evaluates the link-adapted energy per bit across payload
// sizes at p's load and path loss — one Fig. 8 curve. The sizes are
// evaluated concurrently on p.Workers goroutines with worker-count-
// independent results.
func EnergyVsPayload(p Params, sizes []int) (stats.Series, error) {
	return EnergyVsPayloadCtx(context.Background(), p, sizes)
}

// EnergyVsPayloadCtx is EnergyVsPayload with cancellation: a canceled ctx
// stops the size sweep promptly and returns ctx.Err().
func EnergyVsPayloadCtx(ctx context.Context, p Params, sizes []int) (stats.Series, error) {
	if err := p.Validate(); err != nil {
		return stats.Series{}, err
	}
	ms, err := engine.MapSlice(ctx, p.Workers, sizes,
		func(i, L int) (Metrics, error) {
			q := p
			q.PayloadBytes = L
			q.TXLevelIndex = AutoTXLevel
			return Evaluate(q)
		})
	if err != nil {
		return stats.Series{}, err
	}
	s := stats.Series{}
	for i, L := range sizes {
		s.Append(float64(L), ms[i].EnergyPerBitJ)
	}
	return s, nil
}

// OptimalPayload reports the payload size minimizing energy per bit over
// the 1..frame.MaxDataPayload range, scanning the given step (≥1).
func OptimalPayload(p Params, step int) (int, float64, error) {
	if step < 1 {
		step = 1
	}
	var sizes []int
	for L := step; L <= frame.MaxDataPayload; L += step {
		sizes = append(sizes, L)
	}
	if sizes[len(sizes)-1] != frame.MaxDataPayload {
		sizes = append(sizes, frame.MaxDataPayload)
	}
	s, err := EnergyVsPayload(p, sizes)
	if err != nil {
		return 0, 0, err
	}
	x, y, _ := s.MinY()
	return int(x), y, nil
}
