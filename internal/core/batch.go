package core

import (
	"context"

	"dense802154/internal/engine"
)

// EvaluateBatch evaluates many parameter sets concurrently on a worker pool
// (workers ≤ 0 selects runtime.NumCPU()) and returns the metrics in input
// order. Each element is evaluated exactly as Evaluate would, so the batch
// output is identical to a serial loop at any worker count; a canceled ctx
// stops the batch promptly and returns ctx.Err().
//
// Contention sources shared between elements (the common case: one memoized
// Monte-Carlo source across a sweep) are queried concurrently; MCSource's
// single-flight cache guarantees each distinct (payload, load) point is
// simulated once for the whole batch.
func EvaluateBatch(ctx context.Context, workers int, ps []Params) ([]Metrics, error) {
	return engine.MapSlice(ctx, workers, ps, func(i int, p Params) (Metrics, error) {
		return Evaluate(p)
	})
}
