// Package core implements the paper's primary contribution: the analytical
// model of an IEEE 802.15.4 node's average power consumption and
// transmission reliability under the energy-aware activation policy of §4,
// together with the link adaptation, packet-size optimization, dense
// case-study and improvement analyses of §5.
//
// # Activation policy (paper §4)
//
// The node sleeps between superframes, wakes preemptively (WakeupLead
// before the beacon, covering the ~1 ms shutdown→idle transition), receives
// the beacon, idles between the clear channel assessments of the slotted
// CSMA/CA contention, transmits, waits t_ack− in idle and then in receive
// mode for the acknowledgment, and shuts down after the transaction.
//
// # Equations
//
// Evaluate computes eqs. (3)-(14): the expected per-superframe dwell times
// T_idle, T_TX, T_RX (with state-transition times folded into the active
// dwell of the arrival state, as the paper does), the average power
// (eq. 11), the transmission failure probability (eq. 13), the delivery
// delay and energy per bit (eqs. 13-14 of §5), the per-phase energy
// breakdown (Fig. 9a) and the per-state time breakdown (Fig. 9b).
//
// The contention-side quantities (T̄cont, N̄CCA, Pr_cf, Pr_col) come from a
// contention.Source — by default the Monte-Carlo characterization that
// reproduces Fig. 6.
package core

import (
	"fmt"
	"math"
	"time"

	"dense802154/internal/channel"
	"dense802154/internal/contention"
	"dense802154/internal/frame"
	"dense802154/internal/mac"
	"dense802154/internal/phy"
	"dense802154/internal/radio"
	"dense802154/internal/units"
)

// Params configures one model evaluation: one node at one path loss in a
// network of a given load.
type Params struct {
	// Radio is the transceiver characterization (default CC2420).
	Radio *radio.Characterization
	// BER maps received power to bit error probability (default the
	// paper's eq. 1 regression).
	BER phy.BERModel
	// Contention supplies the CSMA/CA statistics (default a Monte-Carlo
	// source at the paper's parameters).
	Contention contention.Source

	// Superframe sets BO/SO (default 6/6, the case study).
	Superframe mac.Superframe
	// PayloadBytes is the data payload L per packet (default 120).
	PayloadBytes int
	// Load is the network load λ seen by the contention procedure
	// (default 0.433: 100 nodes × 120 B at BO 6).
	Load float64
	// PathLossDB is the attenuation A to the coordinator (default 75 dB,
	// the middle of the case-study population).
	PathLossDB float64
	// TXLevelIndex programs the transmit step; AutoTXLevel selects the
	// energy-optimal level for the path loss (link adaptation).
	TXLevelIndex int
	// NMax is the maximum number of transmissions of one packet
	// (default 5, the paper's setting).
	NMax int

	// BeaconBytes is the on-air beacon size. The default, 30 bytes,
	// models the case-study coordinator beacon carrying superframe/GTS/
	// pending specifications plus network-maintenance payload (§2 calls
	// the beacon a small packet with service information); it also
	// reproduces the ≈20% beacon share of Fig. 9a.
	BeaconBytes int
	// WakeupLead is the preemptive wake-up before the beacon (1 ms in
	// the paper, covering the 970 µs shutdown→idle transition).
	WakeupLead time.Duration
	// CCAListen is the receiver-on time per CCA beyond the idle→RX
	// turnaround (8 symbols = 128 µs per the standard; the paper's
	// eq. (6) counts only the turnaround — set 0 for the literal form).
	CCAListen time.Duration
	// PaperAckAccounting charges the full acknowledgment window
	// (t_ack+ − t_ack−) in receive mode for every transmission attempt,
	// as the paper's worst-case eq. (6) does. When false, successful
	// attempts charge only the actual ACK reception and failed attempts
	// the full window.
	PaperAckAccounting bool
	// IncludeIFS adds the inter-frame space after each transmission in
	// idle mode (the "ifs" slice of Fig. 9a).
	IncludeIFS bool
	// IncludeShutdownLeakage adds the 144 nW shutdown floor (the paper
	// neglects it; it is ≈0.14 µW here).
	IncludeShutdownLeakage bool

	// Workers bounds the goroutines used by the sweep entry points
	// (RunCaseStudy, EnergyVsPathLoss, Thresholds, EnergyVsPayload,
	// EvaluateBatch): 1 runs serially, 0 (or negative) uses
	// runtime.NumCPU(). Results are deterministic — identical at any
	// worker count — because every task is keyed by its grid index and
	// all randomness sits behind seeded, memoized contention sources.
	Workers int
}

// AutoTXLevel requests link adaptation: the energy-optimal transmit level
// for the configured path loss.
const AutoTXLevel = -1

// DefaultParams returns the paper's §5 case-study configuration for a node
// at the middle of the path-loss population.
func DefaultParams() Params {
	sf, err := mac.NewSuperframe(6, 6)
	if err != nil {
		panic(err)
	}
	return Params{
		Radio:                  radio.CC2420(),
		BER:                    phy.Eq1,
		Contention:             contention.NewMCSource(contention.Config{Superframes: 60, Seed: 2005}),
		Superframe:             sf,
		PayloadBytes:           120,
		Load:                   0.433,
		PathLossDB:             75,
		TXLevelIndex:           AutoTXLevel,
		NMax:                   5,
		BeaconBytes:            30,
		WakeupLead:             time.Millisecond,
		CCAListen:              phy.CCADuration,
		PaperAckAccounting:     true,
		IncludeIFS:             true,
		IncludeShutdownLeakage: true,
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.Radio == nil || p.BER == nil || p.Contention == nil {
		return fmt.Errorf("core: nil radio/BER/contention")
	}
	if p.PayloadBytes < 1 || p.PayloadBytes > frame.MaxDataPayload {
		return fmt.Errorf("core: payload %d outside 1..%d", p.PayloadBytes, frame.MaxDataPayload)
	}
	if !(p.Load >= 0 && p.Load <= 1) { // the negated form also rejects NaN
		return fmt.Errorf("core: load %v outside [0,1]", p.Load)
	}
	if math.IsNaN(p.PathLossDB) {
		return fmt.Errorf("core: path loss is NaN")
	}
	if p.NMax < 1 {
		return fmt.Errorf("core: NMax %d < 1", p.NMax)
	}
	if p.TXLevelIndex != AutoTXLevel && (p.TXLevelIndex < 0 || p.TXLevelIndex > p.Radio.MaxTXLevel()) {
		return fmt.Errorf("core: TX level %d out of range", p.TXLevelIndex)
	}
	if err := p.Superframe.Validate(); err != nil {
		return err
	}
	return nil
}

// Breakdown is the per-superframe energy by protocol phase (Fig. 9a).
type Breakdown struct {
	Beacon     units.Energy
	Contention units.Energy
	Transmit   units.Energy
	Ack        units.Energy
	IFS        units.Energy
	Sleep      units.Energy
}

// Total sums all phases.
func (b Breakdown) Total() units.Energy {
	return b.Beacon + b.Contention + b.Transmit + b.Ack + b.IFS + b.Sleep
}

// ActiveTotal sums all phases except sleep.
func (b Breakdown) ActiveTotal() units.Energy { return b.Total() - b.Sleep }

// Share reports each active phase's fraction of the active total, in the
// order beacon, contention, transmit, ack, ifs.
func (b Breakdown) Share() [5]float64 {
	t := float64(b.ActiveTotal())
	if t == 0 {
		return [5]float64{}
	}
	return [5]float64{
		float64(b.Beacon) / t,
		float64(b.Contention) / t,
		float64(b.Transmit) / t,
		float64(b.Ack) / t,
		float64(b.IFS) / t,
	}
}

// StateTimes is the per-superframe dwell time by radio state (Fig. 9b).
type StateTimes struct {
	Shutdown, Idle, RX, TX time.Duration
}

// Fractions reports the four dwell fractions of the beacon interval.
func (s StateTimes) Fractions() [4]float64 {
	total := float64(s.Shutdown + s.Idle + s.RX + s.TX)
	if total == 0 {
		return [4]float64{}
	}
	return [4]float64{
		float64(s.Shutdown) / total,
		float64(s.Idle) / total,
		float64(s.RX) / total,
		float64(s.TX) / total,
	}
}

// Metrics is the model output for one configuration.
type Metrics struct {
	// Inputs echoed for reporting.
	TXLevelIndex int
	TXPowerDBm   float64
	PRxDBm       float64

	// Packet timing (eq. 3).
	Tpacket time.Duration

	// Contention-side statistics used (Fig. 6 quantities).
	Cont contention.Stats

	// Error chain (eqs. 7-10).
	PrBit      float64
	PrE        float64 // packet corruption probability
	PrTF       float64 // per-attempt transmission failure (eq. 9)
	PrCF       float64 // channel access failure
	ExpectedTx float64 // E[# transmissions] truncated at NMax

	// Dwell times (eqs. 4-6) and the derived averages (eqs. 11-14).
	Tidle, TTx, TRx time.Duration
	States          StateTimes
	AvgPower        units.Power
	EnergyPerFrame  units.Energy
	PrFail          float64       // eq. 13
	Delay           time.Duration // §5 eq. (13): Tib / (1 - PrFail)
	EnergyPerBitJ   float64       // §5 eq. (14)
	Breakdown       Breakdown
}

// Evaluate runs the analytical model. With TXLevelIndex = AutoTXLevel it
// first selects the energy-optimal transmit level for the path loss.
func Evaluate(p Params) (Metrics, error) {
	if err := p.Validate(); err != nil {
		return Metrics{}, err
	}
	if p.TXLevelIndex == AutoTXLevel {
		best, err := OptimalTXLevel(p)
		if err != nil {
			return Metrics{}, err
		}
		p.TXLevelIndex = best
	}
	return evaluateAtLevel(p), nil
}

// evaluateAtLevel computes the model with an explicit TX level; p must be
// validated.
func evaluateAtLevel(p Params) Metrics {
	r := p.Radio
	level := p.TXLevelIndex
	txDBm := r.TXLevels[level].DBm
	prx := channel.ReceivedPowerDBm(txDBm, p.PathLossDB)

	var m Metrics
	m.TXLevelIndex = level
	m.TXPowerDBm = txDBm
	m.PRxDBm = prx

	// Eq. (3): packet duration.
	m.Tpacket = frame.PaperPacketDuration(p.PayloadBytes)

	// Contention statistics at (packet size, load).
	m.Cont = p.Contention.Contention(p.PayloadBytes, p.Load)
	prcf := m.Cont.PrCF
	m.PrCF = prcf

	// Eqs. (1), (10), (9): the error chain.
	m.PrBit = p.BER.BitErrorRate(prx)
	m.PrE = phy.PacketErrorRateBytes(m.PrBit, frame.ErrorProneBytes(p.PayloadBytes))
	m.PrTF = 1 - (1-m.Cont.PrCol)*(1-m.PrE)

	// Eqs. (7)-(8): transmission count distribution, truncated at NMax.
	// E[tx] = sum i·Ptr(i) + NMax·Ptr(>NMax).
	prOver := math.Pow(m.PrTF, float64(p.NMax))
	expTx := 0.0
	for i := 1; i <= p.NMax; i++ {
		expTx += float64(i) * math.Pow(m.PrTF, float64(i-1)) * (1 - m.PrTF)
	}
	expTx += float64(p.NMax) * prOver
	m.ExpectedTx = expTx
	psucc := 1 - prOver // eventual success given channel access

	tib := p.Superframe.BeaconInterval()
	tia, _ := r.Transition(radio.Idle, radio.RX)
	tbeacon := phy.TxDuration(p.BeaconBytes)
	tcont := m.Cont.Tcont

	// Expected number of contention procedures: one if access fails,
	// otherwise one per transmission attempt.
	procedures := prcf + (1-prcf)*expTx

	// ---- Eq. (4): idle time ----
	ifs := time.Duration(0)
	if p.IncludeIFS {
		ifs = mac.IFSFor(frame.PaperPacketBytes(p.PayloadBytes) - phy.HeaderBytes)
	}
	contIdle := scale(tcont, procedures)
	ackIdle := scale(mac.AckWaitMin, (1-prcf)*expTx)
	ifsIdle := scale(ifs, (1-prcf)*expTx)
	tidle := p.WakeupLead + contIdle + ackIdle + ifsIdle
	m.Tidle = tidle

	// ---- Eq. (5): transmit time ----
	ttx := scale(m.Tpacket, (1-prcf)*expTx)
	m.TTx = ttx

	// ---- Eq. (6): receive time ----
	// Beacon tracking: turnaround + beacon reception, every superframe.
	beaconRx := tia.Duration + tbeacon
	// CCAs: each needs an idle→RX turnaround plus the assessment itself.
	ccaRx := scale(tia.Duration+p.CCAListen, procedures*m.Cont.NCCA)
	// Acknowledgment windows.
	ackWindow := mac.AckWaitMax - mac.AckWaitMin
	var ackRx time.Duration
	if p.PaperAckAccounting {
		// Worst case: the full window in RX for every attempt.
		ackRx = scale(tia.Duration+ackWindow, (1-prcf)*expTx)
	} else {
		failed := (1 - prcf) * (expTx - psucc)
		ackRx = scale(tia.Duration+ackWindow, failed) +
			scale(tia.Duration+frame.AckDuration, (1-prcf)*psucc)
	}
	trx := beaconRx + ccaRx + ackRx
	m.TRx = trx

	// ---- Eq. (11): average power, with the per-phase attribution ----
	pidle := r.IdlePower
	prxP := r.RXPower
	plisten := r.ListenPower
	ptx := r.TXPowerAt(level)

	var b Breakdown
	b.Beacon = prxP.Times(beaconRx) + pidle.Times(p.WakeupLead)
	b.Contention = pidle.Times(contIdle) + plisten.Times(ccaRx)
	b.Transmit = ptx.Times(ttx)
	b.Ack = pidle.Times(ackIdle) + plisten.Times(ackRx)
	b.IFS = pidle.Times(ifsIdle)

	shutdown := tib - tidle - ttx - trx
	if shutdown < 0 {
		shutdown = 0
	}
	if p.IncludeShutdownLeakage {
		b.Sleep = r.ShutdownPower.Times(shutdown)
	}
	m.Breakdown = b
	m.States = StateTimes{Shutdown: shutdown, Idle: tidle, RX: trx, TX: ttx}

	m.EnergyPerFrame = b.Total()
	m.AvgPower = m.EnergyPerFrame.Over(tib)

	// ---- Eq. (13): failure probability; §5: delay and energy/bit ----
	m.PrFail = 1 - (1-prcf)*psucc
	delaySec := math.Inf(1)
	if den := 1 - m.PrFail; den > 0 {
		delaySec = tib.Seconds() / den
	}
	if delaySec > maxDelaySeconds {
		// The node effectively never delivers (deep in the >88 dB tail).
		m.Delay = time.Duration(math.MaxInt64)
		m.EnergyPerBitJ = math.Inf(1)
	} else {
		m.Delay = time.Duration(delaySec * float64(time.Second))
		m.EnergyPerBitJ = float64(m.AvgPower) * delaySec /
			(8 * float64(p.PayloadBytes))
	}
	return m
}

// maxDelaySeconds caps the modeled delivery delay; beyond it a node is
// treated as out of range (delay = MaxInt64, energy per bit = +Inf).
const maxDelaySeconds = 1e6

// scale multiplies a duration by a non-negative expectation factor.
func scale(d time.Duration, factor float64) time.Duration {
	return time.Duration(float64(d) * factor)
}
