package core

import (
	"fmt"

	"dense802154/internal/units"
)

// Improvement perspectives (§5-§6): from the energy breakdown the paper
// proposes (a) halving the state transition times ("would decrease the
// total average power by 12%") and (b) a scalable receiver with a low-power
// mode for channel sensing and acknowledgment waiting ("an additional
// 15%"). Both are pure radio-architecture changes, so they are modeled as
// derived radio characterizations.

// Improvement is one ablation row.
type Improvement struct {
	Name      string
	AvgPower  units.Power
	Reduction float64 // vs the baseline
}

// ImprovementResult is the ablation set over the case-study scenario.
type ImprovementResult struct {
	Baseline units.Power
	Rows     []Improvement
}

// ImprovementOptions tunes the two perspectives.
type ImprovementOptions struct {
	// TransitionScale is the transition-time factor (0.5 = "reducing the
	// transition time between states by a factor two").
	TransitionScale float64
	// ListenScale is the scalable receiver's listen-power fraction for
	// CCA and acknowledgment waiting.
	ListenScale float64
}

// DefaultImprovements returns the paper's settings.
func DefaultImprovements() ImprovementOptions {
	return ImprovementOptions{TransitionScale: 0.5, ListenScale: 0.5}
}

// EvaluateImprovements reruns the case study with the modified radios and
// reports the average-power reductions.
func EvaluateImprovements(p Params, cfg CaseStudyConfig, opt ImprovementOptions) (ImprovementResult, error) {
	baseRes, err := RunCaseStudy(p, cfg)
	if err != nil {
		return ImprovementResult{}, err
	}
	out := ImprovementResult{Baseline: baseRes.AvgPower}

	run := func(name string, q Params) error {
		r, err := RunCaseStudy(q, cfg)
		if err != nil {
			return fmt.Errorf("improvement %q: %w", name, err)
		}
		out.Rows = append(out.Rows, Improvement{
			Name:      name,
			AvgPower:  r.AvgPower,
			Reduction: 1 - float64(r.AvgPower)/float64(out.Baseline),
		})
		return nil
	}

	// (a) Faster transitions. The preemptive wake-up lead shrinks with
	// the shutdown→idle transition it covers.
	fast := p
	fast.Radio = p.Radio.WithTransitionScale(opt.TransitionScale)
	fast.WakeupLead = scale(p.WakeupLead, opt.TransitionScale)
	if err := run(fmt.Sprintf("transitions ×%g", opt.TransitionScale), fast); err != nil {
		return ImprovementResult{}, err
	}

	// (b) Scalable receiver.
	scalable := p
	scalable.Radio = p.Radio.WithScalableReceiver(opt.ListenScale)
	if err := run(fmt.Sprintf("scalable receiver (listen ×%g)", opt.ListenScale), scalable); err != nil {
		return ImprovementResult{}, err
	}

	// (a) + (b) combined.
	both := fast
	both.Radio = fast.Radio.WithScalableReceiver(opt.ListenScale)
	if err := run("both", both); err != nil {
		return ImprovementResult{}, err
	}
	return out, nil
}
