package store

import (
	"crypto/sha256"
	"crypto/subtle"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"dense802154/internal/query"
)

// DefaultMaxBytes is the in-memory tier budget when Config.MaxBytes is 0.
const DefaultMaxBytes = 256 << 20

// resultIndex is the reserved entry index of a whole-query ResultSet body
// (task indexes are ≥ 0).
const resultIndex = -1

// entryOverhead approximates the fixed per-entry memory cost (map slot, key,
// list links) charged against the byte budget on top of the payload.
const entryOverhead = 128

// Config parameterizes a Store.
type Config struct {
	// MaxBytes bounds the in-memory tier (payload bytes plus a fixed
	// per-entry overhead), LRU-evicted; 0 selects DefaultMaxBytes.
	MaxBytes int64
	// Dir, when non-empty, enables the on-disk tier: every put is also
	// written (atomically) to one file per entry under Dir, and a memory
	// miss falls through to a checksum-verified disk read. The directory is
	// created if needed and may be shared across restarts — that is the
	// point.
	Dir string
}

// entryKey addresses one stored entry: the query's content key plus the plan
// task index (resultIndex for whole-query ResultSet bytes).
type entryKey struct {
	key   Key
	index int
}

// entry is one in-memory cache line on the intrusive recency list.
type entry struct {
	k          entryKey
	b          []byte
	prev, next *entry
}

// Stats is a point-in-time snapshot of the in-memory tier.
type Stats struct {
	Entries int
	Bytes   int64
}

// Store is the two-tier content-addressed result store. All methods are safe
// for concurrent use. Byte slices cross the API boundary uncopied on Get
// (the hit path allocates nothing) and are copied on Put; callers must treat
// returned bytes as immutable.
type Store struct {
	cfg Config

	mu      sync.Mutex
	entries map[entryKey]*entry
	root    entry // sentinel: root.next is most recent, root.prev least
	bytes   int64
}

// New builds a Store, creating the on-disk tier directory when configured.
func New(cfg Config) (*Store, error) {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, err
		}
	}
	s := &Store{cfg: cfg, entries: make(map[entryKey]*entry)}
	s.root.prev = &s.root
	s.root.next = &s.root
	return s, nil
}

// Stats snapshots the in-memory tier.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Entries: len(s.entries), Bytes: s.bytes}
}

// GetTask returns the stored encoded TaskResult of (key, index), or false on
// a miss. Memory hits cost no allocation; memory misses fall through to the
// disk tier, whose hits are promoted into memory.
func (s *Store) GetTask(key Key, index int) ([]byte, bool) {
	if index < 0 {
		return nil, false
	}
	return s.get(entryKey{key, index})
}

// PutTask stores the encoded TaskResult of (key, index). The bytes are
// copied; negative indexes (reserved for whole-query entries) are dropped.
func (s *Store) PutTask(key Key, index int, b []byte) {
	if index < 0 {
		return
	}
	s.put(entryKey{key, index}, b)
}

// GetResult returns the stored whole-query ResultSet bytes of key.
func (s *Store) GetResult(key Key) ([]byte, bool) {
	return s.get(entryKey{key, resultIndex})
}

// PutResult stores the whole-query ResultSet bytes of key — the exact bytes
// served, so a later hit is byte-identical by construction.
func (s *Store) PutResult(key Key, b []byte) {
	s.put(entryKey{key, resultIndex}, b)
}

// taskView adapts one query's slice of the store to query.TaskStore.
type taskView struct {
	s   *Store
	key Key
}

func (v *taskView) GetTask(index int) ([]byte, bool)  { return v.s.GetTask(v.key, index) }
func (v *taskView) PutTask(index int, encoded []byte) { v.s.PutTask(v.key, index, encoded) }

// Tasks returns the per-task store view of q for attaching to a compiled
// Plan (Plan.Store), or nil when q is not cacheable (Direct inputs) or the
// store itself is nil — both safe to assign to Plan.Store directly.
func (s *Store) Tasks(q query.Query) query.TaskStore {
	if s == nil {
		return nil
	}
	key, ok := KeyFor(q)
	if !ok {
		return nil
	}
	return &taskView{s: s, key: key}
}

// get looks up k memory-first, then disk.
func (s *Store) get(k entryKey) ([]byte, bool) {
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		s.unlink(e)
		s.pushFront(e)
		s.mu.Unlock()
		HitsTotal.Inc()
		return e.b, true
	}
	s.mu.Unlock()
	if s.cfg.Dir != "" {
		if b, ok := s.diskRead(k); ok {
			HitsTotal.Inc()
			DiskHitsTotal.Inc()
			s.insert(k, b)
			return b, true
		}
	}
	MissesTotal.Inc()
	return nil, false
}

// put copies b, installs it in the memory tier and mirrors it to disk.
func (s *Store) put(k entryKey, b []byte) {
	PutsTotal.Inc()
	c := make([]byte, len(b))
	copy(c, b)
	s.insert(k, c)
	if s.cfg.Dir != "" {
		s.diskWrite(k, c)
	}
}

// insert installs owned bytes into the memory tier and evicts from the cold
// end while over budget. An entry larger than the whole budget skips the
// memory tier (it would evict everything and then itself); the disk tier
// still holds it.
func (s *Store) insert(k entryKey, b []byte) {
	cost := int64(len(b)) + entryOverhead
	if cost > s.cfg.MaxBytes {
		return
	}
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		s.bytes += int64(len(b)) - int64(len(e.b))
		BytesGauge.Add(int64(len(b)) - int64(len(e.b)))
		e.b = b
		s.unlink(e)
		s.pushFront(e)
	} else {
		e = &entry{k: k, b: b}
		s.entries[k] = e
		s.pushFront(e)
		s.bytes += cost
		BytesGauge.Add(cost)
		EntriesGauge.Add(1)
	}
	for s.bytes > s.cfg.MaxBytes {
		old := s.root.prev
		if old == &s.root {
			break
		}
		s.unlink(old)
		delete(s.entries, old.k)
		s.bytes -= int64(len(old.b)) + entryOverhead
		BytesGauge.Add(-(int64(len(old.b)) + entryOverhead))
		EntriesGauge.Add(-1)
		EvictionsTotal.Inc()
	}
	s.mu.Unlock()
}

func (s *Store) unlink(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (s *Store) pushFront(e *entry) {
	e.prev = &s.root
	e.next = s.root.next
	e.prev.next = e
	e.next.prev = e
}

// ---- on-disk tier ----
//
// One file per entry: payload bytes followed by their SHA-256. Writes go to
// a temp file in the same directory and rename into place, so a reader only
// ever sees a complete former or current entry — a crash mid-write leaves a
// temp file, never a short entry file. Reads verify the trailing checksum
// and delete anything that fails it (truncation, bit rot, a foreign file
// under the entry's name): the result is a miss and a recompute, never a
// wrong byte.

// diskPath names the entry file: <hex key>.<index>, with the whole-query
// entry as <hex key>.result.
func (s *Store) diskPath(k entryKey) string {
	suffix := "result"
	if k.index >= 0 {
		suffix = strconv.Itoa(k.index)
	}
	return filepath.Join(s.cfg.Dir, k.key.String()+"."+suffix)
}

func (s *Store) diskRead(k entryKey) ([]byte, bool) {
	path := s.diskPath(k)
	raw, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			DiskErrorsTotal.Inc()
		}
		return nil, false
	}
	n := len(raw) - sha256.Size
	if n < 0 {
		DiskErrorsTotal.Inc()
		_ = os.Remove(path)
		return nil, false
	}
	sum := sha256.Sum256(raw[:n])
	if subtle.ConstantTimeCompare(sum[:], raw[n:]) != 1 {
		DiskErrorsTotal.Inc()
		_ = os.Remove(path)
		return nil, false
	}
	return raw[:n:n], true
}

func (s *Store) diskWrite(k entryKey, b []byte) {
	tmp, err := os.CreateTemp(s.cfg.Dir, ".tmp-*")
	if err != nil {
		DiskErrorsTotal.Inc()
		return
	}
	sum := sha256.Sum256(b)
	_, werr := tmp.Write(b)
	if werr == nil {
		_, werr = tmp.Write(sum[:])
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), s.diskPath(k))
	}
	if werr != nil {
		DiskErrorsTotal.Inc()
		_ = os.Remove(tmp.Name())
	}
}
