// Package store is the content-addressed result store: queries encode
// deterministically, so the SHA-256 of a query's canonical bytes is a
// complete cache key for its ResultSet bytes and — via the plan's fixed task
// order — for every per-task result. Repeated sweeps become O(1) lookups,
// partially-overlapping grids reuse per-task results, an interrupted
// /v2/query/stream resumes from persisted tasks, and the distributed
// coordinator treats the fleet as a shared shard cache: a re-dispatched or
// speculated range whose tasks are stored anywhere is a lookup, not a
// recompute.
//
// The store is two-tiered: a bytes-bounded in-memory LRU (the engine.Cache
// recency idiom, bounded by bytes instead of entries) over an optional
// on-disk tier (wsn-serve -store-dir). Disk writes are atomic (temp file +
// rename) and reads are corruption-tolerant: every entry carries a trailing
// checksum, and a truncated or corrupt file is a miss plus recompute — never
// a wrong byte. The standing invariant is absolute: cached bytes equal
// freshly computed bytes at any worker count.
package store

import (
	"crypto/sha256"
	"encoding/hex"

	"dense802154/internal/query"
)

// Key is the content address of one query: the SHA-256 of its canonical
// encoding. Hash equality is equivalent to canonical-bytes equality (modulo
// SHA-256 collisions, which nothing on this planet produces by accident):
// equal bytes hash equally by construction, and the key-hygiene tests pin
// that byte-distinct queries key distinctly.
type Key [sha256.Size]byte

// String renders the key as lowercase hex (also the on-disk file stem).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// KeyFor computes the content key of q. The second return is false when the
// query has no canonical form (a Direct query carrying in-process inputs)
// and therefore cannot be cached.
func KeyFor(q query.Query) (Key, bool) {
	b, ok := q.Canonical()
	if !ok {
		return Key{}, false
	}
	return sha256.Sum256(b), true
}

// keyRelevant classifies every wire field of query.Query by JSON name:
// true means the field participates in the canonical hash (it can change
// result bytes), false means it is normalized away by Query.Canonical (it
// must never change result bytes — workers is parallelism, trace is
// observability, timeout_ms is scheduling, version is normalized to the
// current wire version). TestKeyFieldClassification enforces that every
// Query field appears here, so a new field cannot silently poison keys: an
// unclassified field fails the build's tests until someone decides which
// side it belongs on.
var keyRelevant = map[string]bool{
	"version":    false,
	"kind":       true,
	"params":     true,
	"batch":      true,
	"config":     true,
	"sim":        true,
	"lifetime":   true,
	"losses":     true,
	"payloads":   true,
	"bos":        true,
	"nodes":      true,
	"replicas":   true,
	"scenario":   true,
	"diff":       true,
	"experiment": true,
	"quick":      true,
	"seed":       true,
	"workers":    false,
	"trace":      false,
	"timeout_ms": false,
}
