package store

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"dense802154/internal/query"
)

func gridQuery() query.Query {
	seed := int64(3)
	return query.Query{
		Kind:     query.KindGrid,
		Params:   &query.ParamsWire{Contention: &query.ContentionWire{Superframes: 8, Seed: &seed}},
		Losses:   &query.Axis{Values: []query.Float{55, 70, 85}},
		Payloads: &query.IntAxis{Values: []int{20, 100}},
	}
}

func intPtr(v int) *int { return &v }

// queriesAllKinds builds one representative query per kind. They need not
// all compile — content keys are a pure function of the wire form — but the
// shardable ones are real workloads reused by the execution tests.
func queriesAllKinds() []query.Query {
	seed := int64(3)
	return []query.Query{
		{Kind: query.KindEvaluate, Params: &query.ParamsWire{Contention: &query.ContentionWire{Superframes: 8, Seed: &seed}}},
		{Kind: query.KindBatch, Batch: []query.ParamsWire{{}, {}}},
		{Kind: query.KindCaseStudy, Config: &query.CaseStudyConfigWire{}},
		{Kind: query.KindPathLossSweep, Losses: &query.Axis{Values: []query.Float{60, 75}}},
		{Kind: query.KindPayloadSweep, Payloads: &query.IntAxis{Values: []int{20, 60}}},
		{Kind: query.KindThresholds, Losses: &query.Axis{Values: []query.Float{60, 70, 80}}},
		{Kind: query.KindSimulate, Sim: &query.SimConfigWire{Nodes: intPtr(10), Superframes: intPtr(4)}},
		{Kind: query.KindReplicas, Sim: &query.SimConfigWire{Nodes: intPtr(10), Superframes: intPtr(4)}, Replicas: 4},
		{Kind: query.KindLifetime, Sim: &query.SimConfigWire{Nodes: intPtr(6)}, Lifetime: &query.LifetimeWire{EpochSuperframes: intPtr(4)}, Replicas: 2},
		{Kind: query.KindScenario, Scenario: "dense-cell"},
		{Kind: query.KindExperiment, Experiment: "fig7"},
		gridQuery(),
	}
}

// TestKeyFieldClassification enumerates every wire field of query.Query by
// reflection and pins its key classification: mutating a key-relevant field
// must change the canonical bytes (and so the key), mutating a key-excluded
// one must not. A field added to Query without a classification here and in
// keyRelevant fails the test, so the cache-correctness decision can never be
// skipped silently.
func TestKeyFieldClassification(t *testing.T) {
	mutations := map[string]func(*query.Query){
		// version is normalized into the canonical form: 0 means "current",
		// so spelling the current version out must not change the key.
		"version":    func(q *query.Query) { q.Version = query.Version },
		"kind":       func(q *query.Query) { q.Kind = query.KindBatch },
		"params":     func(q *query.Query) { q.Params = &query.ParamsWire{} },
		"batch":      func(q *query.Query) { q.Batch = []query.ParamsWire{{}} },
		"config":     func(q *query.Query) { q.Config = &query.CaseStudyConfigWire{} },
		"sim":        func(q *query.Query) { q.Sim = &query.SimConfigWire{} },
		"lifetime":   func(q *query.Query) { q.Lifetime = &query.LifetimeWire{} },
		"losses":     func(q *query.Query) { q.Losses = &query.Axis{Values: []query.Float{60}} },
		"payloads":   func(q *query.Query) { q.Payloads = &query.IntAxis{Values: []int{20}} },
		"bos":        func(q *query.Query) { q.BOs = &query.IntAxis{Values: []int{5}} },
		"nodes":      func(q *query.Query) { q.Nodes = &query.IntAxis{Values: []int{8}} },
		"replicas":   func(q *query.Query) { q.Replicas = 3 },
		"scenario":   func(q *query.Query) { q.Scenario = "dense-cell" },
		"diff":       func(q *query.Query) { q.Diff = true },
		"experiment": func(q *query.Query) { q.Experiment = "fig7" },
		"quick":      func(q *query.Query) { q.Quick = true },
		"seed":       func(q *query.Query) { s := int64(7); q.Seed = &s },
		"workers":    func(q *query.Query) { q.Workers = 7 },
		"trace":      func(q *query.Query) { q.Trace = true },
		"timeout_ms": func(q *query.Query) { q.TimeoutMS = 1234 },
	}
	typ := reflect.TypeOf(query.Query{})
	seen := 0
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		tag, _, _ := strings.Cut(f.Tag.Get("json"), ",")
		if tag == "-" {
			continue // Direct: no wire form; Canonical refuses the whole query
		}
		if tag == "" {
			t.Fatalf("Query field %s has no json tag", f.Name)
		}
		relevant, ok := keyRelevant[tag]
		if !ok {
			t.Fatalf("Query field %s (%q) missing from keyRelevant: classify it", f.Name, tag)
		}
		mut, ok := mutations[tag]
		if !ok {
			t.Fatalf("Query field %s (%q) has no mutation in this test: add one", f.Name, tag)
		}
		seen++

		q := query.Query{Kind: query.KindEvaluate}
		before, bok := q.Canonical()
		if !bok {
			t.Fatal("base query not canonicalizable")
		}
		mut(&q)
		after, aok := q.Canonical()
		if !aok {
			t.Fatalf("%s: mutated query not canonicalizable", tag)
		}
		if changed := !bytes.Equal(before, after); changed != relevant {
			t.Errorf("field %q: canonical changed=%v, classified key-relevant=%v", tag, changed, relevant)
		}
	}
	if seen != len(keyRelevant) {
		t.Errorf("classified %d wire fields, keyRelevant lists %d", seen, len(keyRelevant))
	}
}

// TestKeyEqualityMatchesCanonicalBytes pins the hash contract across every
// query kind: two queries share a key exactly when their canonical encodings
// are byte-equal, and re-keying the same query is deterministic.
func TestKeyEqualityMatchesCanonicalBytes(t *testing.T) {
	qs := queriesAllKinds()
	if len(qs) != len(query.Kinds()) {
		t.Fatalf("%d sample queries for %d kinds", len(qs), len(query.Kinds()))
	}
	type keyed struct {
		key Key
		can []byte
	}
	ks := make([]keyed, len(qs))
	for i, q := range qs {
		can, ok := q.Canonical()
		if !ok {
			t.Fatalf("query %d (%s) not canonicalizable", i, q.Kind)
		}
		key, ok := KeyFor(q)
		if !ok {
			t.Fatalf("query %d (%s) not keyable", i, q.Kind)
		}
		key2, _ := KeyFor(q)
		if key != key2 {
			t.Fatalf("query %d (%s): key not deterministic", i, q.Kind)
		}
		ks[i] = keyed{key, can}
	}
	for i := range ks {
		for j := range ks {
			sameKey := ks[i].key == ks[j].key
			sameCan := bytes.Equal(ks[i].can, ks[j].can)
			if sameKey != sameCan {
				t.Errorf("queries %d/%d: key equality %v but canonical equality %v", i, j, sameKey, sameCan)
			}
			if i != j && sameKey {
				t.Errorf("distinct kinds %s/%s collide", qs[i].Kind, qs[j].Kind)
			}
		}
	}
}

// TestKeyNeutralFields pins the invariant the store leans on: workers, trace
// and timeout_ms never change computed result bytes, so they never change
// the key either — a traced 4-worker run warms the cache for an untraced
// single-worker one.
func TestKeyNeutralFields(t *testing.T) {
	base := gridQuery()
	want, ok := KeyFor(base)
	if !ok {
		t.Fatal("grid query not keyable")
	}
	variants := []func(*query.Query){
		func(q *query.Query) { q.Workers = 1 },
		func(q *query.Query) { q.Workers = 32 },
		func(q *query.Query) { q.Trace = true },
		func(q *query.Query) { q.TimeoutMS = 60_000 },
		func(q *query.Query) { q.Workers = 8; q.Trace = true; q.TimeoutMS = 5_000 },
	}
	for i, v := range variants {
		q := gridQuery()
		v(&q)
		got, ok := KeyFor(q)
		if !ok {
			t.Fatalf("variant %d not keyable", i)
		}
		if got != want {
			t.Errorf("variant %d: neutral field changed the key", i)
		}
	}
	direct := gridQuery()
	direct.Direct = &query.Direct{}
	if _, ok := KeyFor(direct); ok {
		t.Error("query with Direct inputs must not be keyable")
	}
}

// TestMemoryTierLRU exercises the byte budget: least-recently-used entries
// leave first, a hit refreshes recency, and the charge never exceeds the
// budget.
func TestMemoryTierLRU(t *testing.T) {
	const payload = 100
	st, err := New(Config{MaxBytes: 3 * (payload + entryOverhead)})
	if err != nil {
		t.Fatal(err)
	}
	var key Key
	key[0] = 1
	blob := func(i int) []byte {
		b := bytes.Repeat([]byte{byte(i)}, payload)
		return b
	}
	for i := 0; i < 3; i++ {
		st.PutTask(key, i, blob(i))
	}
	if s := st.Stats(); s.Entries != 3 {
		t.Fatalf("entries = %d, want 3", s.Entries)
	}
	// Touch 0 so 1 becomes the cold end, then push it out with 3.
	if _, ok := st.GetTask(key, 0); !ok {
		t.Fatal("entry 0 missing before eviction")
	}
	st.PutTask(key, 3, blob(3))
	if s := st.Stats(); s.Entries != 3 || s.Bytes > 3*(payload+entryOverhead) {
		t.Fatalf("stats after eviction = %+v", s)
	}
	if _, ok := st.GetTask(key, 1); ok {
		t.Error("LRU entry 1 survived over-budget insert")
	}
	for _, i := range []int{0, 2, 3} {
		b, ok := st.GetTask(key, i)
		if !ok || !bytes.Equal(b, blob(i)) {
			t.Errorf("entry %d lost or corrupted after eviction", i)
		}
	}
	// Replacing an entry in place adjusts the charge instead of duplicating.
	st.PutTask(key, 3, blob(3)[:payload/2])
	if s := st.Stats(); s.Entries != 3 {
		t.Fatalf("entries after replace = %d, want 3", s.Entries)
	}
}

// TestPutCopiesBytes: the store owns its copies; callers mutating their
// slice after Put must not corrupt the stored entry.
func TestPutCopiesBytes(t *testing.T) {
	st, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	var key Key
	b := []byte("immutable")
	st.PutResult(key, b)
	b[0] = 'X'
	got, ok := st.GetResult(key)
	if !ok || string(got) != "immutable" {
		t.Fatalf("stored bytes follow the caller's slice: %q", got)
	}
}

// TestOversizedEntrySkipsMemory: an entry larger than the whole budget never
// enters the memory tier (it would evict everything for nothing) but is
// still served from disk.
func TestOversizedEntrySkipsMemory(t *testing.T) {
	st, err := New(Config{MaxBytes: 256, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	var key Key
	big := bytes.Repeat([]byte{7}, 1024)
	st.PutResult(key, big)
	if s := st.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("oversized entry charged to memory: %+v", s)
	}
	got, ok := st.GetResult(key)
	if !ok || !bytes.Equal(got, big) {
		t.Fatal("oversized entry not served from disk")
	}
}

// TestDiskTierPersistsAcrossRestart: a fresh Store over the same directory
// serves what a previous one put — the restart-survival contract of
// -store-dir.
func TestDiskTierPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st1, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var key Key
	key[3] = 9
	st1.PutTask(key, 4, []byte("task four"))
	st1.PutResult(key, []byte("whole body"))

	st2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if b, ok := st2.GetTask(key, 4); !ok || string(b) != "task four" {
		t.Fatalf("task entry lost across restart: %q %v", b, ok)
	}
	if b, ok := st2.GetResult(key); !ok || string(b) != "whole body" {
		t.Fatalf("result entry lost across restart: %q %v", b, ok)
	}
}

// TestDiskCrashSafety corrupts entries the way crashes and bit rot do and
// checks every failure mode degrades to a miss — never a wrong byte — with
// the bad file removed so the next write heals it.
func TestDiskCrashSafety(t *testing.T) {
	dir := t.TempDir()
	st, err := New(Config{MaxBytes: 256, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var key Key
	key[0] = 0xAB
	payload := bytes.Repeat([]byte("abc"), 100) // oversized: memory skipped, disk only
	st.PutTask(key, 0, payload)
	st.PutTask(key, 1, payload)
	st.PutTask(key, 2, payload)

	paths := make([]string, 3)
	for i := range paths {
		m, err := filepath.Glob(filepath.Join(dir, "*."+strconv.Itoa(i)))
		if err != nil || len(m) != 1 {
			t.Fatalf("entry file for index %d: %v %v", i, m, err)
		}
		paths[i] = m[0]
	}

	// Truncation (crash mid-write of a non-atomic filesystem, torn file).
	if err := os.Truncate(paths[0], 10); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.GetTask(key, 0); ok {
		t.Error("truncated entry served")
	}
	if _, err := os.Stat(paths[0]); !os.IsNotExist(err) {
		t.Error("truncated entry file not removed")
	}

	// Bit rot: flip one payload byte; the trailing checksum must catch it.
	p1 := paths[1]
	raw, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	raw[5] ^= 0xFF
	if err := os.WriteFile(p1, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.GetTask(key, 1); ok {
		t.Error("corrupted entry served")
	}

	// The intact sibling is unaffected, and re-putting heals the bad slots.
	if b, ok := st.GetTask(key, 2); !ok || !bytes.Equal(b, payload) {
		t.Error("intact entry damaged by sibling corruption")
	}
	st.PutTask(key, 0, payload)
	if b, ok := st.GetTask(key, 0); !ok || !bytes.Equal(b, payload) {
		t.Error("re-put after corruption not served")
	}
}

// TestTasksView covers the query.TaskStore adapter: nil store and
// non-cacheable queries yield a nil view (safe to assign to Plan.Store), and
// the view round-trips bytes under the query's key.
func TestTasksView(t *testing.T) {
	var nilStore *Store
	if v := nilStore.Tasks(gridQuery()); v != nil {
		t.Fatal("nil store must yield a nil view")
	}
	st, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	direct := gridQuery()
	direct.Direct = &query.Direct{}
	if v := st.Tasks(direct); v != nil {
		t.Fatal("Direct query must yield a nil view")
	}
	v := st.Tasks(gridQuery())
	if v == nil {
		t.Fatal("cacheable query yielded no view")
	}
	if _, ok := v.GetTask(0); ok {
		t.Fatal("hit on empty store")
	}
	v.PutTask(0, []byte("r0"))
	if b, ok := v.GetTask(0); !ok || string(b) != "r0" {
		t.Fatalf("view round trip: %q %v", b, ok)
	}
	// A second view of the same query shares the entries; a different query
	// does not.
	if b, ok := st.Tasks(gridQuery()).GetTask(0); !ok || string(b) != "r0" {
		t.Fatalf("second view of same query: %q %v", b, ok)
	}
	other := gridQuery()
	other.Payloads = &query.IntAxis{Values: []int{20, 101}}
	if _, ok := st.Tasks(other).GetTask(0); ok {
		t.Fatal("different query shares entries")
	}
	// Negative indexes are reserved for whole-query entries.
	v.PutTask(-1, []byte("nope"))
	if _, ok := v.GetTask(-1); ok {
		t.Fatal("negative index stored through task view")
	}
}
