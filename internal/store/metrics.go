package store

import "dense802154/internal/telemetry"

// Metrics are the store's package-level counters and gauges (telemetry's
// shared-source idiom): every Store instance in the process folds into the
// same totals, so any number of registries can expose one truth.
var (
	// HitsTotal counts lookups served from the store (memory or disk tier).
	HitsTotal telemetry.Counter
	// MissesTotal counts lookups served by neither tier.
	MissesTotal telemetry.Counter
	// PutsTotal counts entries stored (task results and whole-query bodies).
	PutsTotal telemetry.Counter
	// EvictionsTotal counts in-memory entries evicted by the byte budget.
	EvictionsTotal telemetry.Counter
	// DiskHitsTotal counts hits that fell through memory to the disk tier.
	DiskHitsTotal telemetry.Counter
	// DiskErrorsTotal counts disk-tier failures: unreadable, truncated or
	// checksum-failing entries (each treated as a miss) and failed writes.
	DiskErrorsTotal telemetry.Counter
	// BytesGauge and EntriesGauge track the in-memory tier's current charge
	// against its byte budget and its entry count.
	BytesGauge   telemetry.Gauge
	EntriesGauge telemetry.Gauge
)

// RegisterMetrics exposes the wsn_store_* families on r.
func RegisterMetrics(r *telemetry.Registry) {
	r.RegisterCounter("wsn_store_hits_total", "Result-store lookups served from the store (memory or disk tier).", &HitsTotal)
	r.RegisterCounter("wsn_store_misses_total", "Result-store lookups served by neither tier.", &MissesTotal)
	r.RegisterCounter("wsn_store_puts_total", "Entries stored: per-task results and whole-query bodies.", &PutsTotal)
	r.RegisterCounter("wsn_store_evictions_total", "In-memory entries evicted by the byte budget.", &EvictionsTotal)
	r.RegisterCounter("wsn_store_disk_hits_total", "Hits served by the on-disk tier after a memory miss.", &DiskHitsTotal)
	r.RegisterCounter("wsn_store_disk_errors_total", "Disk-tier failures: corrupt or truncated entries and failed writes.", &DiskErrorsTotal)
	r.GaugeFunc("wsn_store_bytes", "In-memory tier bytes currently charged against the budget.", func() float64 {
		return float64(BytesGauge.Value())
	})
	r.GaugeFunc("wsn_store_entries", "In-memory tier entries currently resident.", func() float64 {
		return float64(EntriesGauge.Value())
	})
}
