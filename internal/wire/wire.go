// Package wire holds the JSON primitives shared by every serialized
// surface of the repository — the HTTP service (internal/service), the
// scenario golden files (internal/scenario) and their CLI front-ends. The
// types here guarantee byte-stable, bit-exact round-trips: encoding a value
// and decoding it back reproduces the original float64 bits, and encoding
// the same value twice produces the same bytes, which is what lets golden
// files be compared with bytes.Equal.
package wire

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
)

// Float is a float64 that survives JSON round-trips bit-exactly, including
// the non-finite values the model uses for out-of-range nodes (+Inf energy
// per bit), which encoding/json rejects. Finite values are emitted with the
// shortest representation that parses back to the same bits; non-finite
// values are emitted as the strings "+Inf", "-Inf" and "NaN".
type Float float64

// MarshalJSON implements json.Marshaler.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *Float) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "+Inf", "Inf":
			*f = Float(math.Inf(1))
			return nil
		case "-Inf":
			*f = Float(math.Inf(-1))
			return nil
		case "NaN":
			*f = Float(math.NaN())
			return nil
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("invalid float %q", s)
		}
		*f = Float(v)
		return nil
	}
	v, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return err
	}
	*f = Float(v)
	return nil
}

// Floats converts a float64 slice to the exact-round-trip wire type.
func Floats(xs []float64) []Float {
	out := make([]Float, len(xs))
	for i, x := range xs {
		out[i] = Float(x)
	}
	return out
}

// Float64s converts back.
func Float64s(xs []Float) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
