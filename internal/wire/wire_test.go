package wire

import (
	"encoding/json"
	"math"
	"testing"
)

// TestFloatRoundTrip proves the bit-exactness contract: marshal → unmarshal
// reproduces the original float64 bits for finite, denormal, negative-zero
// and non-finite values alike.
func TestFloatRoundTrip(t *testing.T) {
	cases := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.1, 1.0 / 3.0, math.Pi,
		math.MaxFloat64, math.SmallestNonzeroFloat64,
		math.Inf(1), math.Inf(-1), math.NaN(),
		4.2563e-3, 983.04e-3, 1e308, -1e-308,
	}
	for _, v := range cases {
		b, err := json.Marshal(Float(v))
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back Float
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if math.Float64bits(float64(back)) != math.Float64bits(v) {
			t.Errorf("round-trip %v → %s → %v: bits changed", v, b, float64(back))
		}
		// Encoding is byte-stable: marshal twice, same bytes.
		b2, _ := json.Marshal(Float(v))
		if string(b) != string(b2) {
			t.Errorf("marshal %v not byte-stable: %s vs %s", v, b, b2)
		}
	}
}

// TestFloatDecodesStringForms accepts quoted numbers and the named
// non-finite spellings.
func TestFloatDecodesStringForms(t *testing.T) {
	var f Float
	for in, want := range map[string]float64{
		`"1.5"`:  1.5,
		`"Inf"`:  math.Inf(1),
		`"+Inf"`: math.Inf(1),
		`"-Inf"`: math.Inf(-1),
	} {
		if err := json.Unmarshal([]byte(in), &f); err != nil {
			t.Fatalf("unmarshal %s: %v", in, err)
		}
		if float64(f) != want {
			t.Errorf("unmarshal %s = %v, want %v", in, float64(f), want)
		}
	}
	if err := json.Unmarshal([]byte(`"NaN"`), &f); err != nil || !math.IsNaN(float64(f)) {
		t.Errorf(`unmarshal "NaN" = %v, %v`, float64(f), err)
	}
	if err := json.Unmarshal([]byte(`"bogus"`), &f); err == nil {
		t.Error("unmarshal bogus string succeeded")
	}
	if err := json.Unmarshal([]byte(`{}`), &f); err == nil {
		t.Error("unmarshal object succeeded")
	}
}

// TestSliceHelpers round-trips a slice through both converters.
func TestSliceHelpers(t *testing.T) {
	in := []float64{1, 2.5, math.Inf(1)}
	out := Float64s(Floats(in))
	for i := range in {
		if math.Float64bits(out[i]) != math.Float64bits(in[i]) {
			t.Errorf("slice round-trip changed element %d: %v → %v", i, in[i], out[i])
		}
	}
}
