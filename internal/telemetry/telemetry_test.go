package telemetry

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentIncrementScrape hammers every metric kind from many
// goroutines while scraping concurrently; under -race this proves the
// registry and all hot paths are race-free, and afterwards the totals must
// be exact (no lost updates).
func TestConcurrentIncrementScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_level", "level")
	h := r.Histogram("test_latency_seconds", "latency", 0.001, 0.01, 0.1, 1)
	vec := r.CounterVec("test_routed_total", "routed", "route")
	var mg MaxGauge
	r.RegisterMaxGauge("test_depth_max", "depth", &mg)

	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			route := vec.With("r" + string(rune('a'+w%2)))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%100) / 100)
				route.Inc()
				mg.Observe(int64(i))
			}
		}(w)
	}
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			if _, err := ParseText(&buf); err != nil {
				t.Errorf("mid-flight scrape does not parse: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	scrapeWG.Wait()

	const total = workers * perWorker
	if got := c.Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	if got := mg.Value(); got != perWorker-1 {
		t.Errorf("max gauge = %d, want %d", got, perWorker-1)
	}
	sum := vec.With("ra").Value() + vec.With("rb").Value()
	if sum != total {
		t.Errorf("vec sum = %d, want %d", sum, total)
	}
}

// TestEncoderGolden pins the full exposition format byte-for-byte,
// including label escaping (backslash, quote, newline), family sorting,
// series sorting within a vec, histogram suffix layout and float
// rendering. Any byte-level drift in the encoder breaks scrape diffing and
// must show up here.
func TestEncoderGolden(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("zz_requests_total", "Requests by route.", "route", "code")
	vec.With(`POST /v2/query`, "200").Add(7)
	vec.With("esc\\ape\"q\nuote", "500").Inc()
	h := r.Histogram("aa_seconds", "A histogram with \\ and\nnewline help.", 0.25, 0.5)
	h.Observe(0.1)
	h.Observe(0.25) // boundary: le buckets are inclusive
	h.Observe(9)
	r.ConstGauge("mm_build_info", "Build info.", 1, Label{"version", "(devel)"})
	r.GaugeFunc("mm_uptime_seconds", "Uptime.", func() float64 { return 1.5 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP aa_seconds A histogram with \\ and\nnewline help.`,
		`# TYPE aa_seconds histogram`,
		`aa_seconds_bucket{le="0.25"} 2`,
		`aa_seconds_bucket{le="0.5"} 2`,
		`aa_seconds_bucket{le="+Inf"} 3`,
		`aa_seconds_sum 9.35`,
		`aa_seconds_count 3`,
		`# HELP mm_build_info Build info.`,
		`# TYPE mm_build_info gauge`,
		`mm_build_info{version="(devel)"} 1`,
		`# HELP mm_uptime_seconds Uptime.`,
		`# TYPE mm_uptime_seconds gauge`,
		`mm_uptime_seconds 1.5`,
		`# HELP zz_requests_total Requests by route.`,
		`# TYPE zz_requests_total counter`,
		`zz_requests_total{route="POST /v2/query",code="200"} 7`,
		`zz_requests_total{route="esc\\ape\"q\nuote",code="500"} 1`,
		``,
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("encoding mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Byte stability: a second scrape of unchanged state is identical.
	var again bytes.Buffer
	if err := r.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two scrapes of unchanged state differ")
	}
}

// TestHistogramBucketProperty is a randomized property test of bucket
// placement: for random bound layouts and random observations, every
// cumulative bucket must equal the count of observations ≤ its bound,
// _count must match the total, and _sum the float sum.
func TestHistogramBucketProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		nb := 1 + rng.Intn(6)
		bounds := make([]float64, nb)
		x := rng.Float64() * 2
		for i := range bounds {
			bounds[i] = x
			x += 0.01 + rng.Float64()
		}
		h := NewHistogram(bounds...)
		n := 1 + rng.Intn(200)
		obs := make([]float64, n)
		for i := range obs {
			switch rng.Intn(4) {
			case 0: // exactly on a bound: must land in that bucket (≤)
				obs[i] = bounds[rng.Intn(nb)]
			case 1: // beyond the last bound: +Inf bucket only
				obs[i] = bounds[nb-1] + 1 + rng.Float64()
			default:
				obs[i] = rng.Float64() * (bounds[nb-1] + 1)
			}
			h.Observe(obs[i])
		}
		samples := h.snapshot(nil)
		if len(samples) != nb+3 {
			t.Fatalf("trial %d: %d samples, want %d", trial, len(samples), nb+3)
		}
		wantSum := 0.0
		for _, v := range obs {
			wantSum += v
		}
		for i, b := range bounds {
			want := 0
			for _, v := range obs {
				if v <= b {
					want++
				}
			}
			if got := samples[i].Value; got != float64(want) {
				t.Errorf("trial %d: bucket le=%v = %v, want %d", trial, b, got, want)
			}
		}
		if inf := samples[nb].Value; inf != float64(n) {
			t.Errorf("trial %d: +Inf bucket = %v, want %d", trial, inf, n)
		}
		if sum := samples[nb+1].Value; math.Abs(sum-wantSum) > 1e-9*math.Max(1, math.Abs(wantSum)) {
			t.Errorf("trial %d: sum = %v, want %v", trial, sum, wantSum)
		}
		if cnt := samples[nb+2].Value; cnt != float64(n) {
			t.Errorf("trial %d: count = %v, want %d", trial, cnt, n)
		}
	}
}

// TestNewHistogramRejectsBadBounds covers the panic contract.
func TestNewHistogramRejectsBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{
		{1, 1},
		{2, 1},
		{math.NaN()},
		{math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

// TestParseRoundTrip: encode → parse → encode must be byte identity, and
// the parser must reject structural violations.
func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("rt_requests_total", "Requests.", "route")
	vec.With("GET /metrics").Add(3)
	vec.With(`q"uo\te` + "\n").Inc()
	h := r.Histogram("rt_wait_seconds", "Wait.", 0.001, 0.1)
	h.Observe(0.0005)
	h.Observe(5)
	r.Gauge("rt_in_flight", "In flight.").Set(2)

	var first bytes.Buffer
	if err := r.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, first.String())
	}
	var second bytes.Buffer
	if err := EncodeFamilies(&second, fams); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("round trip not byte-identical:\n--- first ---\n%s\n--- second ---\n%s", first.String(), second.String())
	}

	bad := []struct{ name, text string }{
		{"sample without family", "foo 1\n"},
		{"type before help", "# TYPE foo counter\n"},
		{"duplicate series", "# HELP foo f\n# TYPE foo counter\nfoo 1\nfoo 2\n"},
		{"unknown type", "# HELP foo f\n# TYPE foo summary\n"},
		{"histogram without +Inf", "# HELP foo f\n# TYPE foo histogram\nfoo_bucket{le=\"1\"} 1\nfoo_count 1\n"},
		{"non-cumulative buckets", "# HELP foo f\n# TYPE foo histogram\nfoo_bucket{le=\"1\"} 5\nfoo_bucket{le=\"+Inf\"} 3\nfoo_count 3\n"},
		{"count disagrees with +Inf", "# HELP foo f\n# TYPE foo histogram\nfoo_bucket{le=\"+Inf\"} 3\nfoo_count 4\n"},
		{"suffix on counter", "# HELP foo f\n# TYPE foo counter\nfoo_bucket{le=\"1\"} 1\n"},
	}
	for _, tc := range bad {
		if _, err := ParseText(strings.NewReader(tc.text)); err == nil {
			t.Errorf("%s: parse accepted invalid input", tc.name)
		}
	}
}

// TestRegistryConflicts pins the duplicate-registration contract: matching
// metadata appends a collector, conflicting metadata panics.
func TestRegistryConflicts(t *testing.T) {
	r := NewRegistry()
	var a, b Counter
	a.Add(2)
	b.Add(3)
	r.RegisterCounter("dup_total", "d", &a)
	r.RegisterCounter("dup_total", "d", &b) // same metadata: allowed, two samples
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\ndup_total "); got != 2 {
		t.Errorf("want 2 dup_total samples, got %d in:\n%s", got, buf.String())
	}
	defer func() {
		if recover() == nil {
			t.Error("conflicting registration did not panic")
		}
	}()
	r.CounterFunc("dup_total", "different help", func() float64 { return 0 })
}
