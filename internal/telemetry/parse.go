package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ParseText reads the Prometheus text exposition format this package writes
// and validates its structural invariants:
//
//   - every sample line belongs to a family declared by a preceding
//     # TYPE line (histogram samples may use the _bucket/_sum/_count
//     suffixes, nothing else may);
//   - a family's # HELP precedes its # TYPE and neither repeats;
//   - no series (name + label set) appears twice;
//   - every histogram series has a le="+Inf" bucket with cumulative,
//     non-decreasing bucket counts that agree with its _count.
//
// It returns the families in input order with their samples in input
// order, so EncodeFamilies over the result reproduces the input bytes —
// the round-trip property the CI scrape lint asserts.
func ParseText(r io.Reader) ([]Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	var fams []Family
	byName := map[string]*Family{}
	help := map[string]string{}
	seen := map[string]bool{} // series dedup: name + rendered labels
	lineNo := 0

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			return nil, fmt.Errorf("line %d: blank line", lineNo)
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := line[len("# HELP "):]
			name, h, ok := strings.Cut(rest, " ")
			if !ok || !validMetricName(name) {
				return nil, fmt.Errorf("line %d: malformed HELP line", lineNo)
			}
			if _, dup := help[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
			}
			if _, typed := byName[name]; typed {
				return nil, fmt.Errorf("line %d: HELP for %s after its TYPE", lineNo, name)
			}
			uh, err := unescapeHelp(h)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			help[name] = uh
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := line[len("# TYPE "):]
			name, t, ok := strings.Cut(rest, " ")
			if !ok || !validMetricName(name) {
				return nil, fmt.Errorf("line %d: malformed TYPE line", lineNo)
			}
			typ := Type(t)
			if typ != TypeCounter && typ != TypeGauge && typ != TypeHistogram {
				return nil, fmt.Errorf("line %d: unknown type %q for %s", lineNo, t, name)
			}
			if _, dup := byName[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			h, ok := help[name]
			if !ok {
				return nil, fmt.Errorf("line %d: TYPE for %s without a preceding HELP", lineNo, name)
			}
			fams = append(fams, Family{Name: name, Help: h, Type: typ})
			byName[name] = &fams[len(fams)-1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			return nil, fmt.Errorf("line %d: unexpected comment %q", lineNo, line)
		}

		sample, sampleName, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam, suffix, err := resolveFamily(byName, sampleName)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		sample.Suffix = suffix
		key := line[:strings.LastIndexByte(line, ' ')]
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true
		fam.Samples = append(fam.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i := range fams {
		if fams[i].Type == TypeHistogram {
			if err := checkHistogram(&fams[i]); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// resolveFamily finds the declared family a sample name belongs to,
// honoring the histogram suffixes.
func resolveFamily(byName map[string]*Family, name string) (*Family, string, error) {
	if f, ok := byName[name]; ok {
		if f.Type == TypeHistogram {
			return nil, "", fmt.Errorf("histogram %s sampled without a suffix", name)
		}
		return f, "", nil
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, found := strings.CutSuffix(name, suffix)
		if !found {
			continue
		}
		if f, ok := byName[base]; ok {
			if f.Type != TypeHistogram {
				return nil, "", fmt.Errorf("suffix %s on non-histogram %s", suffix, base)
			}
			return f, suffix, nil
		}
	}
	return nil, "", fmt.Errorf("sample %s has no declared family", name)
}

// parseSampleLine splits `name{labels} value` into its parts.
func parseSampleLine(line string) (Sample, string, error) {
	var s Sample
	rest := line
	nameEnd := strings.IndexAny(rest, "{ ")
	if nameEnd <= 0 {
		return s, "", fmt.Errorf("malformed sample %q", line)
	}
	name := rest[:nameEnd]
	if !validMetricName(name) {
		return s, "", fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[nameEnd:]
	if rest[0] == '{' {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return s, "", err
		}
		s.Labels = labels
		rest = rest[end:]
	}
	if len(rest) == 0 || rest[0] != ' ' {
		return s, "", fmt.Errorf("missing value in %q", line)
	}
	valStr := rest[1:]
	v, err := parseValue(valStr)
	if err != nil {
		return s, "", err
	}
	s.Value = v
	return s, name, nil
}

// parseLabels scans a {name="value",...} block starting at s[0] == '{' and
// returns the index just past the closing brace.
func parseLabels(s string) (int, []Label, error) {
	var labels []Label
	i := 1
	for {
		if i >= len(s) {
			return 0, nil, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, labels, nil
		}
		if len(labels) > 0 {
			if s[i] != ',' {
				return 0, nil, fmt.Errorf("expected ',' in label block at %q", s[i:])
			}
			i++
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq <= 0 {
			return 0, nil, fmt.Errorf("malformed label at %q", s[i:])
		}
		name := s[i : i+eq]
		if !validLabelName(name) {
			return 0, nil, fmt.Errorf("invalid label name %q", name)
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("label %s value not quoted", name)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(s) {
				return 0, nil, fmt.Errorf("unterminated value for label %s", name)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return 0, nil, fmt.Errorf("dangling escape in label %s", name)
				}
				switch s[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("unknown escape \\%c in label %s", s[i+1], name)
				}
				i += 2
				continue
			}
			b.WriteByte(c)
			i++
		}
		labels = append(labels, Label{Name: name, Value: b.String()})
	}
}

// parseValue reads a sample value, accepting the spellings formatFloat
// emits.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", s)
	}
	return v, nil
}

// checkHistogram validates one histogram family: per label set (excluding
// le), cumulative non-decreasing buckets ending at le="+Inf", whose total
// matches the series' _count.
func checkHistogram(f *Family) error {
	type state struct {
		last    float64
		lastLe  float64
		infSeen bool
		inf     float64
		count   *float64
	}
	states := map[string]*state{}
	get := func(labels []Label) *state {
		var b strings.Builder
		for _, l := range labels {
			if l.Name == "le" {
				continue
			}
			b.WriteString(l.Name)
			b.WriteByte('=')
			b.WriteString(l.Value)
			b.WriteByte(';')
		}
		k := b.String()
		st, ok := states[k]
		if !ok {
			st = &state{lastLe: math.Inf(-1)}
			states[k] = st
		}
		return st
	}
	for _, s := range f.Samples {
		switch s.Suffix {
		case "_bucket":
			le := ""
			for _, l := range s.Labels {
				if l.Name == "le" {
					le = l.Value
				}
			}
			if le == "" {
				return fmt.Errorf("%s: bucket without le label", f.Name)
			}
			bound, err := parseValue(le)
			if err != nil {
				return fmt.Errorf("%s: bad le %q", f.Name, le)
			}
			st := get(s.Labels)
			if bound <= st.lastLe {
				return fmt.Errorf("%s: le bounds not ascending (%q)", f.Name, le)
			}
			if s.Value < st.last {
				return fmt.Errorf("%s: bucket counts not cumulative at le=%q", f.Name, le)
			}
			st.lastLe = bound
			st.last = s.Value
			if math.IsInf(bound, 1) {
				st.infSeen = true
				st.inf = s.Value
			}
		case "_count":
			v := s.Value
			get(s.Labels).count = &v
		case "_sum":
			// No invariant beyond being a float.
		}
	}
	for _, st := range states {
		if !st.infSeen {
			return fmt.Errorf("%s: histogram series missing le=\"+Inf\" bucket", f.Name)
		}
		if st.count != nil && *st.count != st.inf {
			return fmt.Errorf("%s: _count %v disagrees with +Inf bucket %v", f.Name, *st.count, st.inf)
		}
	}
	return nil
}

// unescapeHelp reverses escapeHelp.
func unescapeHelp(s string) (string, error) {
	if !strings.Contains(s, "\\") {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		if i+1 >= len(s) {
			return "", fmt.Errorf("dangling escape in HELP text")
		}
		switch s[i+1] {
		case '\\':
			b.WriteByte('\\')
		case 'n':
			b.WriteByte('\n')
		default:
			return "", fmt.Errorf("unknown escape \\%c in HELP text", s[i+1])
		}
		i++
	}
	return b.String(), nil
}

// validLabelName enforces the Prometheus label-name charset.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
