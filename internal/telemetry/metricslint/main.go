// Command metricslint validates a Prometheus text-format scrape the way CI
// uses it: parse with telemetry.ParseText (which enforces the structural
// invariants — HELP/TYPE ordering, series uniqueness, cumulative histogram
// buckets with le="+Inf"), re-encode, and require byte identity with the
// input; then require every metric family named on the command line to be
// present.
//
// Usage:
//
//	metricslint -f scrape.txt wsn_http_requests_total wsn_netsim_runs_total ...
//
// With -f omitted or "-", the scrape is read from stdin. Exit status is
// non-zero on any violation, with one line per problem on stderr.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"dense802154/internal/telemetry"
)

func main() {
	file := flag.String("f", "-", "scrape file to lint (\"-\" for stdin)")
	flag.Parse()
	if err := run(*file, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "metricslint:", err)
		os.Exit(1)
	}
}

func run(file string, required []string) error {
	var in io.Reader = os.Stdin
	if file != "-" {
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	raw, err := io.ReadAll(in)
	if err != nil {
		return err
	}
	fams, err := telemetry.ParseText(bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	var re bytes.Buffer
	if err := telemetry.EncodeFamilies(&re, fams); err != nil {
		return fmt.Errorf("re-encode: %w", err)
	}
	if !bytes.Equal(raw, re.Bytes()) {
		return fmt.Errorf("re-encoded scrape differs from input (%d vs %d bytes): encoder is not byte-stable", len(re.Bytes()), len(raw))
	}
	have := make(map[string]bool, len(fams))
	for _, f := range fams {
		have[f.Name] = true
	}
	var missing []string
	for _, name := range required {
		if !have[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("required metric families missing from scrape: %v", missing)
	}
	fmt.Printf("metricslint: %d families, %d bytes, round-trip stable\n", len(fams), len(raw))
	return nil
}
