// Package telemetry is the repository's zero-dependency metrics substrate:
// atomic counters, gauges and fixed-bucket histograms behind a race-safe
// Registry whose Prometheus text-format encoding is byte-stable — the same
// registry state always renders to the same bytes, so scrapes are diffable
// and the encoder can be golden-tested.
//
// Design constraints, in order:
//
//   - Hot-path cost: Counter.Add and Histogram.Observe are a handful of
//     atomic operations and never allocate, so the simulation cores can fold
//     per-run totals into package-level metrics without disturbing their
//     alloc budgets (netsim stays at its ~6 allocs per pooled run).
//   - Process-wide sources stay where they live: packages own their metric
//     values (or expose snapshot functions) and register them into any
//     number of registries via Register*/Func collectors, so two servers in
//     one test binary can each scrape the same shared counters without a
//     global registry or duplicate-registration panics.
//   - The exposition format is the Prometheus text format (version 0.0.4):
//     families sorted by name, series sorted by label values, floats in
//     strconv 'g' form, label values escaped per the spec. ParseText reads
//     it back and validates the structural invariants, which CI uses as a
//     scrape lint.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is ready to
// use; all methods are safe for concurrent use and never allocate.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64 level (in-flight requests, pool occupancy). The
// zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reports the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// MaxGauge tracks the maximum value ever observed (a high-water mark such
// as the deepest event heap seen). The zero value is ready to use.
type MaxGauge struct{ v atomic.Int64 }

// Observe raises the mark to n if n exceeds it.
func (g *MaxGauge) Observe(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value reports the high-water mark.
func (g *MaxGauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed cumulative buckets, Prometheus
// style: bucket i counts observations ≤ bounds[i], with an implicit +Inf
// bucket holding everything. Observe is lock-free and allocation-free; a
// concurrent scrape sees each atomic consistently (the sum may trail the
// counts by in-flight observations, as in every atomic histogram).
type Histogram struct {
	bounds  []float64 // ascending, finite upper bounds
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending finite bucket
// bounds (the +Inf bucket is implicit). It panics on an invalid layout —
// bucket sets are compile-time decisions, not runtime inputs.
func NewHistogram(bounds ...float64) *Histogram {
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("telemetry: bucket bound %v not finite", b))
		}
		if i > 0 && bounds[i-1] >= b {
			panic(fmt.Sprintf("telemetry: bucket bounds not ascending at %d (%v ≥ %v)", i, bounds[i-1], b))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count reports the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// snapshot renders the histogram's cumulative bucket samples plus _sum and
// _count, with extra label pairs prefixed onto every sample.
func (h *Histogram) snapshot(labels []Label) []Sample {
	out := make([]Sample, 0, len(h.bounds)+3)
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		out = append(out, Sample{
			Suffix: "_bucket",
			Labels: appendLabel(labels, Label{"le", formatFloat(b)}),
			Value:  float64(cum),
		})
	}
	cum += h.counts[len(h.bounds)].Load()
	out = append(out, Sample{
		Suffix: "_bucket",
		Labels: appendLabel(labels, Label{"le", "+Inf"}),
		Value:  float64(cum),
	})
	out = append(out,
		Sample{Suffix: "_sum", Labels: labels, Value: h.Sum()},
		Sample{Suffix: "_count", Labels: labels, Value: float64(cum)},
	)
	return out
}

// Label is one name="value" pair of a sample.
type Label struct{ Name, Value string }

// appendLabel copies base and appends l, so samples never alias a shared
// label slice.
func appendLabel(base []Label, l Label) []Label {
	out := make([]Label, 0, len(base)+1)
	out = append(out, base...)
	return append(out, l)
}

// Sample is one exposition line of a family: the family name plus Suffix
// ("" for plain metrics, "_bucket"/"_sum"/"_count" for histograms), the
// label pairs in output order, and the value.
type Sample struct {
	Suffix string
	Labels []Label
	Value  float64
}

// Type is a metric family's exposition type.
type Type string

// The family types the encoder understands.
const (
	TypeCounter   Type = "counter"
	TypeGauge     Type = "gauge"
	TypeHistogram Type = "histogram"
)

// Collector produces a family's current samples at scrape time.
type Collector interface{ Collect() []Sample }

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func() []Sample

// Collect implements Collector.
func (f CollectorFunc) Collect() []Sample { return f() }

// family is one registered metric family.
type family struct {
	name, help string
	typ        Type
	collectors []Collector
}

// Registry is a set of metric families rendered together by WritePrometheus.
// Registration is expected at construction time and is safe concurrently
// with scrapes; metric values themselves are atomic, so the hot paths never
// touch the registry lock.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

// register adds a collector under name, creating the family on first use.
// Registering the same name twice with a different type or help panics: two
// sources disagreeing about a family is a wiring bug, not a runtime
// condition. Registering the same name with matching metadata appends the
// collector (several label-disjoint sources may feed one family).
func (r *Registry) register(name, help string, typ Type, c Collector) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.fams[name] = f
	} else if f.typ != typ || f.help != help {
		panic(fmt.Sprintf("telemetry: conflicting registration for %q", name))
	}
	f.collectors = append(f.collectors, c)
}

// Counter registers and returns a new unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.RegisterCounter(name, help, c)
	return c
}

// RegisterCounter exposes an externally owned Counter (a package-level
// total, say) under name.
func (r *Registry) RegisterCounter(name, help string, c *Counter) {
	r.register(name, help, TypeCounter, CollectorFunc(func() []Sample {
		return []Sample{{Value: float64(c.Value())}}
	}))
}

// Gauge registers and returns a new unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, TypeGauge, CollectorFunc(func() []Sample {
		return []Sample{{Value: float64(g.Value())}}
	}))
	return g
}

// RegisterMaxGauge exposes an externally owned MaxGauge under name.
func (r *Registry) RegisterMaxGauge(name, help string, g *MaxGauge) {
	r.register(name, help, TypeGauge, CollectorFunc(func() []Sample {
		return []Sample{{Value: float64(g.Value())}}
	}))
}

// GaugeFunc registers a gauge computed at scrape time (uptime, cache
// occupancy, pool headroom).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, TypeGauge, CollectorFunc(func() []Sample {
		return []Sample{{Value: fn()}}
	}))
}

// CounterFunc registers a counter whose value is read at scrape time from
// an external monotone source (an existing stats snapshot, say).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, TypeCounter, CollectorFunc(func() []Sample {
		return []Sample{{Value: fn()}}
	}))
}

// ConstGauge registers a gauge pinned to value with fixed labels — the
// build-info idiom (wsn_build_info{version="..."} 1).
func (r *Registry) ConstGauge(name, help string, value float64, labels ...Label) {
	ls := append([]Label(nil), labels...)
	r.register(name, help, TypeGauge, CollectorFunc(func() []Sample {
		return []Sample{{Labels: ls, Value: value}}
	}))
}

// Histogram registers and returns a new unlabeled histogram over bounds.
func (r *Registry) Histogram(name, help string, bounds ...float64) *Histogram {
	h := NewHistogram(bounds...)
	r.RegisterHistogram(name, help, h)
	return h
}

// RegisterHistogram exposes an externally owned Histogram under name.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram) {
	r.register(name, help, TypeHistogram, CollectorFunc(func() []Sample {
		return h.snapshot(nil)
	}))
}

// CounterVec is a family of counters keyed by label values. With resolves
// (and lazily creates) one series; hot paths resolve once and hold the
// *Counter, so the vec lock is never on a per-event path.
type CounterVec struct {
	labelNames []string
	mu         sync.Mutex
	series     map[string]*Counter
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	v := &CounterVec{labelNames: append([]string(nil), labelNames...), series: make(map[string]*Counter)}
	r.register(name, help, TypeCounter, CollectorFunc(v.collect))
	return v
}

// With returns the counter for the given label values (one per label name,
// in registration order).
func (v *CounterVec) With(values ...string) *Counter {
	key := seriesKey(v.labelNames, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.series[key]
	if !ok {
		c = &Counter{}
		v.series[key] = c
	}
	return c
}

func (v *CounterVec) collect() []Sample {
	v.mu.Lock()
	keys := make([]string, 0, len(v.series))
	for k := range v.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Sample, 0, len(keys))
	for _, k := range keys {
		out = append(out, Sample{Labels: splitKey(v.labelNames, k), Value: float64(v.series[k].Value())})
	}
	v.mu.Unlock()
	return out
}

// HistogramVec is a family of histograms keyed by label values, sharing one
// bucket layout.
type HistogramVec struct {
	labelNames []string
	bounds     []float64
	mu         sync.Mutex
	series     map[string]*Histogram
}

// HistogramVec registers a labeled histogram family over bounds.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	v := &HistogramVec{
		labelNames: append([]string(nil), labelNames...),
		bounds:     append([]float64(nil), bounds...),
		series:     make(map[string]*Histogram),
	}
	NewHistogram(bounds...) // validate the layout eagerly
	r.register(name, help, TypeHistogram, CollectorFunc(v.collect))
	return v
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := seriesKey(v.labelNames, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.series[key]
	if !ok {
		h = NewHistogram(v.bounds...)
		v.series[key] = h
	}
	return h
}

func (v *HistogramVec) collect() []Sample {
	v.mu.Lock()
	keys := make([]string, 0, len(v.series))
	for k := range v.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []Sample
	for _, k := range keys {
		out = append(out, v.series[k].snapshot(splitKey(v.labelNames, k))...)
	}
	v.mu.Unlock()
	return out
}

// seriesKey joins label values with a separator no label value may contain
// unescaped ambiguity for, since keys are only split against the known
// name count.
const keySep = "\x1f"

func seriesKey(names, values []string) string {
	if len(values) != len(names) {
		panic(fmt.Sprintf("telemetry: %d label values for %d label names", len(values), len(names)))
	}
	return strings.Join(values, keySep)
}

func splitKey(names []string, key string) []Label {
	values := strings.Split(key, keySep)
	out := make([]Label, len(names))
	for i, n := range names {
		out[i] = Label{Name: n, Value: values[i]}
	}
	return out
}

// validMetricName enforces the Prometheus metric-name charset.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
