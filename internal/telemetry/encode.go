package telemetry

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the HTTP Content-Type of the exposition format this
// package writes.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in the Prometheus text
// exposition format: families sorted by name, a # HELP and # TYPE line per
// family, then its samples in collector order (vec collectors sort their
// series by label values). The rendering of a given registry state is
// byte-stable — identical state yields identical bytes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		writeFamily(bw, f.name, f.help, f.typ, collectAll(f))
	}
	return bw.Flush()
}

// collectAll gathers a family's samples across its collectors.
func collectAll(f *family) []Sample {
	var out []Sample
	for _, c := range f.collectors {
		out = append(out, c.Collect()...)
	}
	return out
}

// Family is the parsed (or parse-equivalent) form of one metric family;
// ParseText returns these and EncodeFamilies renders them back, so an
// encode → parse → encode round trip is byte-identity.
type Family struct {
	Name    string
	Help    string
	Type    Type
	Samples []Sample
}

// EncodeFamilies renders families in slice order, in exactly the form
// WritePrometheus emits.
func EncodeFamilies(w io.Writer, fams []Family) error {
	bw := bufio.NewWriter(w)
	for i := range fams {
		writeFamily(bw, fams[i].Name, fams[i].Help, fams[i].Type, fams[i].Samples)
	}
	return bw.Flush()
}

func writeFamily(bw *bufio.Writer, name, help string, typ Type, samples []Sample) {
	bw.WriteString("# HELP ")
	bw.WriteString(name)
	bw.WriteByte(' ')
	bw.WriteString(escapeHelp(help))
	bw.WriteByte('\n')
	bw.WriteString("# TYPE ")
	bw.WriteString(name)
	bw.WriteByte(' ')
	bw.WriteString(string(typ))
	bw.WriteByte('\n')
	for _, s := range samples {
		bw.WriteString(name)
		bw.WriteString(s.Suffix)
		if len(s.Labels) > 0 {
			bw.WriteByte('{')
			for i, l := range s.Labels {
				if i > 0 {
					bw.WriteByte(',')
				}
				bw.WriteString(l.Name)
				bw.WriteString(`="`)
				bw.WriteString(escapeLabel(l.Value))
				bw.WriteByte('"')
			}
			bw.WriteByte('}')
		}
		bw.WriteByte(' ')
		bw.WriteString(formatFloat(s.Value))
		bw.WriteByte('\n')
	}
}

// formatFloat renders a sample value: shortest round-trip 'g' form, with
// the infinities spelled the way the exposition format expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the text format: backslash, double
// quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline (quotes travel
// verbatim in help text).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
