package channel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dense802154/internal/phy"
)

func TestFixedLoss(t *testing.T) {
	if Fixed(88).LossDB() != 88 {
		t.Fatal("fixed loss")
	}
}

func TestReceivedPower(t *testing.T) {
	// Paper eq. (2): P_Rx = P_Tx - A. 0 dBm through 88 dB = -88 dBm.
	if got := ReceivedPowerDBm(0, 88); got != -88 {
		t.Fatalf("PRx = %v", got)
	}
	if got := ReceivedPowerDBm(-15, 55); got != -70 {
		t.Fatalf("PRx = %v", got)
	}
}

func TestLogDistance(t *testing.T) {
	l := LogDistance{RefLossDB: 40, RefDist: 1, Exponent: 2, Dist: 10}
	if got := l.LossDB(); math.Abs(got-60) > 1e-12 {
		t.Fatalf("loss at 10m = %v, want 60", got)
	}
	l.Dist = 100
	if got := l.LossDB(); math.Abs(got-80) > 1e-12 {
		t.Fatalf("loss at 100m = %v, want 80", got)
	}
	// Below the reference distance the loss clamps to the reference loss.
	l.Dist = 0.1
	if got := l.LossDB(); got != 40 {
		t.Fatalf("close-in loss = %v, want 40", got)
	}
}

func TestFreeSpaceRefLoss(t *testing.T) {
	// At 2450 MHz the 1 m free-space loss is ≈ 40.2 dB.
	got := FreeSpaceRefLoss(2450)
	if math.Abs(got-40.23) > 0.1 {
		t.Fatalf("free space 1m loss = %v, want ≈40.2", got)
	}
}

func TestLinkPER(t *testing.T) {
	link := Link{Loss: Fixed(88), BER: phy.Eq1}
	// At 0 dBm through 88 dB: PRx=-88, BER from eq.(1), PER over 129
	// bytes should be a few percent (the paper's "efficient up to 88 dB").
	per := link.PacketErrorRate(0, 129)
	if per < 0.001 || per > 0.2 {
		t.Fatalf("PER at edge of range = %v, want a few percent", per)
	}
	// At shorter range the link is nearly clean even at the weakest level:
	// PRx = -80 dBm, BER ≈ 2e-7, PER ≈ 2e-4 — low enough that the paper's
	// link adaptation picks -25 dBm below 55 dB loss.
	clean := Link{Loss: Fixed(55), BER: phy.Eq1}
	if p := clean.PacketErrorRate(-25, 129); p > 1e-3 {
		t.Fatalf("PER at 55 dB with -25 dBm = %v, want < 1e-3", p)
	}
	// Monotone in TX power.
	if link.PacketErrorRate(-5, 129) <= per {
		t.Fatal("PER must increase when transmit power drops")
	}
}

func TestUniformLossBounds(t *testing.T) {
	u := UniformLoss{MinDB: 55, MaxDB: 95}
	rng := rand.New(rand.NewSource(1))
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		v := u.Sample(rng)
		if v < 55 || v > 95 {
			t.Fatalf("sample %v out of bounds", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-75) > 0.5 {
		t.Fatalf("mean = %v, want ≈75", mean)
	}
	if u.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestUniformDiskStatistics(t *testing.T) {
	// 1600 nodes over a disk: with exponent 3.5 and 40 dB reference loss,
	// a 40 m radius spans losses from ~40 dB up to ~96 dB.
	d := UniformDisk{RadiusM: 40, RefLossDB: 40, Exponent: 3.5}
	rng := rand.New(rand.NewSource(2))
	losses := SamplePopulation(d, 1600, rng)
	if len(losses) != 1600 {
		t.Fatal("population size")
	}
	maxLoss := LogDistance{RefLossDB: 40, RefDist: 1, Exponent: 3.5, Dist: 40}.LossDB()
	for _, v := range losses {
		if v < 40-1e-9 || v > maxLoss+1e-9 {
			t.Fatalf("loss %v outside [40, %v]", v, maxLoss)
		}
	}
	// Uniform-area density concentrates mass at the rim: the median
	// distance is R/√2, median loss ≈ RefLoss+10·n·log10(R/√2).
	med := LogDistance{RefLossDB: 40, RefDist: 1, Exponent: 3.5, Dist: 40 / math.Sqrt2}.LossDB()
	var below int
	for _, v := range losses {
		if v < med {
			below++
		}
	}
	frac := float64(below) / float64(len(losses))
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("median check: %v of mass below computed median", frac)
	}
}

func TestUniformDiskMinDistance(t *testing.T) {
	d := UniformDisk{RadiusM: 10, RefLossDB: 40, Exponent: 2, MinDistM: 5}
	rng := rand.New(rand.NewSource(3))
	minLoss := LogDistance{RefLossDB: 40, RefDist: 1, Exponent: 2, Dist: 5}.LossDB()
	for i := 0; i < 1000; i++ {
		if v := d.Sample(rng); v < minLoss-1e-9 {
			t.Fatalf("loss %v below close-in cutoff %v", v, minLoss)
		}
	}
}

func TestShadowedDeployment(t *testing.T) {
	base := UniformLoss{MinDB: 70, MaxDB: 70} // degenerate: constant 70
	s := Shadowed{Base: base, SigmaDB: 4}
	rng := rand.New(rand.NewSource(4))
	var acc, acc2 float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := s.Sample(rng)
		acc += v
		acc2 += v * v
	}
	mean := acc / n
	std := math.Sqrt(acc2/n - mean*mean)
	if math.Abs(mean-70) > 0.2 {
		t.Fatalf("shadowed mean = %v, want 70", mean)
	}
	if math.Abs(std-4) > 0.2 {
		t.Fatalf("shadowed sigma = %v, want 4", std)
	}
}

func TestLossGrid(t *testing.T) {
	g := LossGrid(55, 95, 5)
	want := []float64{55, 65, 75, 85, 95}
	if len(g) != 5 {
		t.Fatalf("grid size %d", len(g))
	}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-12 {
			t.Fatalf("grid[%d] = %v, want %v", i, g[i], want[i])
		}
	}
	if g := LossGrid(55, 95, 1); len(g) != 1 || g[0] != 55 {
		t.Fatal("degenerate grid")
	}
}

// Property: received power is antitone in loss and monotone in TX power.
func TestPropertyLinkMonotonicity(t *testing.T) {
	f := func(a, b uint8) bool {
		loss1 := 40 + float64(a%60)
		loss2 := loss1 + 1 + float64(b%20)
		l1 := Link{Loss: Fixed(loss1), BER: phy.Eq1}
		l2 := Link{Loss: Fixed(loss2), BER: phy.Eq1}
		return l2.PacketErrorRate(0, 129) >= l1.PacketErrorRate(0, 129)-1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
