// Package channel models the radio propagation environment of the paper:
// calibrated fixed attenuation (the wired BER test bench), log-distance
// path loss for physical deployments, the uniform path-loss population of
// the 1600-node case study (55–95 dB), and the slow-fading AWGN link whose
// bit errors follow a phy.BERModel.
package channel

import (
	"fmt"
	"math"
	"math/rand"

	"dense802154/internal/phy"
)

// PathLoss yields the attenuation between a node and the coordinator.
type PathLoss interface {
	// LossDB reports the path loss in dB.
	LossDB() float64
}

// Fixed is a constant attenuation, as produced by the calibrated
// attenuators of the paper's wired test bench.
type Fixed float64

// LossDB implements PathLoss.
func (f Fixed) LossDB() float64 { return float64(f) }

// LogDistance is the classic log-distance path-loss model
// PL(d) = PL(d0) + 10·n·log10(d/d0).
type LogDistance struct {
	RefLossDB float64 // PL(d0): path loss at the reference distance
	RefDist   float64 // d0, meters
	Exponent  float64 // n: 2 in free space, 2.5-4 indoors
	Dist      float64 // d, meters
}

// LossDB implements PathLoss.
func (l LogDistance) LossDB() float64 {
	d := l.Dist
	if d < l.RefDist {
		d = l.RefDist
	}
	return l.RefLossDB + 10*l.Exponent*math.Log10(d/l.RefDist)
}

// FreeSpaceRefLoss returns the free-space path loss at 1 m for a carrier
// frequency in MHz: 20·log10(f) - 27.55 (f in MHz, d in m).
func FreeSpaceRefLoss(freqMHz float64) float64 {
	return 20*math.Log10(freqMHz) - 27.55
}

// ReceivedPowerDBm reports P_Rx = P_Tx - A (the paper's eq. 2).
func ReceivedPowerDBm(txDBm, lossDB float64) float64 { return txDBm - lossDB }

// Link couples a path loss with a bit-error model; it answers the questions
// the MAC layers ask: what is the BER and packet error probability of a
// transmission at a given power.
type Link struct {
	Loss PathLoss
	BER  phy.BERModel
}

// BitErrorRate reports the link BER at the given transmit power.
func (l Link) BitErrorRate(txDBm float64) float64 {
	return l.BER.BitErrorRate(ReceivedPowerDBm(txDBm, l.Loss.LossDB()))
}

// PacketErrorRate reports the probability that a packet of errorBytes
// error-prone bytes is corrupted (the paper's eq. 10 applies it to the
// packet minus its preamble).
func (l Link) PacketErrorRate(txDBm float64, errorBytes int) float64 {
	return phy.PacketErrorRateBytes(l.BitErrorRate(txDBm), errorBytes)
}

// Deployment generates per-node path losses for a population of nodes
// around the coordinator.
type Deployment interface {
	// Sample draws the path loss of one node.
	Sample(rng *rand.Rand) float64
}

// UniformLoss is the case-study population: path losses uniformly
// distributed over [MinDB, MaxDB] (the paper uses 55–95 dB).
type UniformLoss struct {
	MinDB, MaxDB float64
}

// Sample implements Deployment.
func (u UniformLoss) Sample(rng *rand.Rand) float64 {
	return u.MinDB + rng.Float64()*(u.MaxDB-u.MinDB)
}

// String implements fmt.Stringer.
func (u UniformLoss) String() string {
	return fmt.Sprintf("uniform path loss %g-%g dB", u.MinDB, u.MaxDB)
}

// UniformDisk places nodes uniformly over a disk of the given radius around
// the coordinator and converts distance to loss through a log-distance
// model. Uniform area density means the radial CDF is (r/R)².
type UniformDisk struct {
	RadiusM   float64
	RefLossDB float64
	Exponent  float64
	MinDistM  float64 // close-in cutoff (defaults to 1 m when zero)
}

// Sample implements Deployment.
func (u UniformDisk) Sample(rng *rand.Rand) float64 {
	min := u.MinDistM
	if min <= 0 {
		min = 1
	}
	r := u.RadiusM * math.Sqrt(rng.Float64())
	if r < min {
		r = min
	}
	return LogDistance{RefLossDB: u.RefLossDB, RefDist: 1, Exponent: u.Exponent, Dist: r}.LossDB()
}

// Shadowed decorates a deployment with i.i.d. log-normal shadowing of the
// given standard deviation (dB) — the slow-fading component the paper's
// channel-inversion policy compensates through link adaptation.
type Shadowed struct {
	Base    Deployment
	SigmaDB float64
}

// Sample implements Deployment.
func (s Shadowed) Sample(rng *rand.Rand) float64 {
	return s.Base.Sample(rng) + rng.NormFloat64()*s.SigmaDB
}

// SamplePopulation draws n path losses from a deployment.
func SamplePopulation(d Deployment, n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}

// LossGrid returns an evenly spaced grid of path losses [from, to] with the
// given number of points (≥2), used by the link-adaptation sweeps.
func LossGrid(from, to float64, points int) []float64 {
	if points < 2 {
		return []float64{from}
	}
	out := make([]float64, points)
	step := (to - from) / float64(points-1)
	for i := range out {
		out[i] = from + float64(i)*step
	}
	return out
}
