// Package scenario pins the repository's behavior across the whole
// operating space of the Bougard et al. model — not just at the paper's
// reproduced figures. A Scenario is a declarative operating point (density,
// traffic, duty cycle, payload, path-loss population, replication plan);
// the committed Catalog spans sparse→dense networks, light→saturated
// traffic and short→long beacon intervals. Run pushes one scenario through
// BOTH implementations of the protocol stack:
//
//   - the analytical expected-value model (internal/core, eqs. 3-14),
//     integrated over the scenario's path-loss population, and
//   - the cycle-accurate discrete-event simulator (internal/netsim) under
//     RunReplicas with across-replica 95% confidence intervals,
//
// and scores their agreement metric by metric against the scenario's
// declared tolerances. The committed golden files
// (testdata/<name>.golden.json, regenerated with `go test -update`) freeze
// every output byte: because each run is deterministic at any worker count,
// a golden mismatch is a behavior change, not noise — which turns every
// future performance or refactoring PR into one that is regression-checked
// across the scenario space.
package scenario

import (
	"fmt"
	"math"

	"dense802154/internal/battery"
	"dense802154/internal/frame"
	"dense802154/internal/mac"
	"dense802154/internal/radio"
)

// Tolerance bounds the allowed disagreement on one metric between the
// analytic model and the simulator. A comparison passes when
//
//	|analytic − sim| ≤ Abs + Rel·max(|analytic|, |sim|) + CIMult·CI95
//
// where CI95 is the simulator's across-replica 95% confidence half-width.
// Abs keeps near-zero probabilities from failing on relative terms, Rel
// scales with the metric's magnitude, and CIMult grants the statistical
// slack a finite replication plan needs.
type Tolerance struct {
	Abs    float64 `json:"abs"`
	Rel    float64 `json:"rel"`
	CIMult float64 `json:"ci_mult"`
}

// Allowed computes the tolerance envelope for an (analytic, sim, CI) triple.
func (t Tolerance) Allowed(analytic, sim, ci95 float64) float64 {
	m := math.Abs(analytic)
	if s := math.Abs(sim); s > m {
		m = s
	}
	return t.Abs + t.Rel*m + t.CIMult*ci95
}

// Tolerances names the per-metric agreement bounds of one scenario.
type Tolerances struct {
	PowerUW Tolerance `json:"power_uw"`
	PrFail  Tolerance `json:"pr_fail"`
	PrCF    Tolerance `json:"pr_cf"`
	NCCA    Tolerance `json:"ncca"`
	TcontMS Tolerance `json:"tcont_ms"`
}

// DefaultTolerances returns the catalog-wide starting bounds. The two
// protocol implementations share the mac.Transaction state machine but
// differ in everything else (time representation, medium model, arrival
// generation, retry handling), so contention-side quantities carry the
// loose factor-two envelopes the cross-validation suite established, while
// energy — the paper's validation target — is held to ±20% plus CI slack.
func DefaultTolerances() Tolerances {
	return Tolerances{
		PowerUW: Tolerance{Rel: 0.20, CIMult: 3},
		PrFail:  Tolerance{Abs: 0.06, Rel: 0.60, CIMult: 3},
		PrCF:    Tolerance{Abs: 0.03, Rel: 1.0, CIMult: 3},
		NCCA:    Tolerance{Rel: 0.50, CIMult: 3},
		TcontMS: Tolerance{Abs: 0.5, Rel: 0.65, CIMult: 3},
	}
}

// Scenario declares one operating point of the model/simulator space.
// The zero values of the run-plan fields (Superframes, Replicas,
// MCSuperframes, LossGridPoints, NMax, TargetPRxDBm, Radio, Tol) are filled
// by WithDefaults; the physical fields (Nodes, PayloadBytes, BO/SO,
// TransmitProb, loss range) must be set explicitly.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description"`

	// Topology and traffic.
	Nodes        int     `json:"nodes"`
	PayloadBytes int     `json:"payload_bytes"`
	BO           uint8   `json:"bo"`
	SO           uint8   `json:"so"`
	TransmitProb float64 `json:"transmit_prob"`

	// Deployment: path losses are uniform over [MinLossDB, MaxLossDB] and
	// each node channel-inverts to the lowest TX level reaching
	// TargetPRxDBm.
	MinLossDB    float64 `json:"min_loss_db"`
	MaxLossDB    float64 `json:"max_loss_db"`
	TargetPRxDBm float64 `json:"target_prx_dbm"`

	// Protocol knobs.
	NMax           int    `json:"n_max"`
	Radio          string `json:"radio"`
	LowPowerListen bool   `json:"low_power_listen"`

	// Run plan.
	Superframes    int   `json:"superframes"`      // simulated beacon intervals per replica
	Replicas       int   `json:"replicas"`         // independent netsim replications
	MCSuperframes  int   `json:"mc_superframes"`   // Monte-Carlo contention run length
	LossGridPoints int   `json:"loss_grid_points"` // analytic population integration grid
	Seed           int64 `json:"seed"`

	// Lifetime, when set, additionally pushes the operating point through
	// the network-lifetime integrator (internal/lifetime): every node gets
	// the named battery, the DES runs in epochs with idle fast-forward, and
	// the golden pins first-death/partition/last-death statistics. Nil (the
	// catalog's historical entries) keeps the result bytes unchanged.
	Lifetime *LifetimeSpec `json:"lifetime,omitempty"`

	Tol Tolerances `json:"tolerances"`
}

// LifetimeSpec declares the battery-lifetime leg of a scenario. Zero fields
// are filled by WithDefaults, mirroring the lifetime query's wire defaults.
type LifetimeSpec struct {
	// Supply names the battery preset: "cr2032", "aa" or "harvester".
	Supply string `json:"supply"`
	// CapacityJ, when positive, overrides the preset's usable capacity.
	CapacityJ float64 `json:"capacity_j,omitempty"`
	// PartitionFrac is the alive fraction below which the network counts as
	// partitioned.
	PartitionFrac float64 `json:"partition_frac"`
	// EpochSuperframes is the DES epoch length in beacon intervals.
	EpochSuperframes int `json:"epoch_superframes"`
	// MaxEpochs bounds the live-simulated epochs per replica.
	MaxEpochs int `json:"max_epochs"`
	// Replicas is the lifetime replication plan (independent of the
	// scenario's cross-model Replicas).
	Replicas int `json:"replicas"`
}

// WithDefaults fills the zero run-plan fields of a lifetime leg.
func (l LifetimeSpec) WithDefaults() LifetimeSpec {
	if l.Supply == "" {
		l.Supply = "cr2032"
	}
	if l.PartitionFrac == 0 {
		l.PartitionFrac = 0.5
	}
	if l.EpochSuperframes == 0 {
		l.EpochSuperframes = 16
	}
	if l.MaxEpochs == 0 {
		l.MaxEpochs = 512
	}
	if l.Replicas == 0 {
		l.Replicas = 3
	}
	return l
}

// supply resolves the named preset with its capacity override applied.
func (l LifetimeSpec) supply() (battery.Supply, error) {
	var s battery.Supply
	switch l.Supply {
	case "cr2032":
		s = battery.CoinCellCR2032()
	case "aa":
		s = battery.AACell()
	case "harvester":
		s = battery.VibrationHarvester()
	default:
		return s, fmt.Errorf("unknown supply %q (want cr2032, aa or harvester)", l.Supply)
	}
	if l.CapacityJ > 0 {
		s.CapacityJ = l.CapacityJ
	}
	return s, nil
}

// WithDefaults fills the zero run-plan fields. Catalog entries are stored
// fully defaulted so the golden files spell out every knob.
func (s Scenario) WithDefaults() Scenario {
	if s.TransmitProb == 0 {
		s.TransmitProb = 1
	}
	if s.TargetPRxDBm == 0 {
		s.TargetPRxDBm = -87
	}
	if s.NMax == 0 {
		s.NMax = 5
	}
	if s.Radio == "" {
		s.Radio = "cc2420"
	}
	if s.Superframes == 0 {
		s.Superframes = 20
	}
	if s.Replicas == 0 {
		s.Replicas = 5
	}
	if s.MCSuperframes == 0 {
		s.MCSuperframes = 40
	}
	if s.LossGridPoints == 0 {
		s.LossGridPoints = 41
	}
	// Replace the lifetime pointer only when defaulting changes it, so a
	// fully-defaulted scenario compares equal to its WithDefaults (the
	// catalog-hygiene test relies on that).
	if s.Lifetime != nil {
		if l := s.Lifetime.WithDefaults(); l != *s.Lifetime {
			s.Lifetime = &l
		}
	}
	if s.Tol == (Tolerances{}) {
		s.Tol = DefaultTolerances()
	}
	return s
}

// Superframe builds the scenario's beacon structure.
func (s Scenario) Superframe() (mac.Superframe, error) {
	return mac.NewSuperframe(s.BO, s.SO)
}

// Load reports the paper's network load λ the scenario offers: the
// aggregate expected on-air time of the population relative to the beacon
// interval (Superframe.ChannelLoad scaled by the transmit probability).
func (s Scenario) Load() (float64, error) {
	sf, err := s.Superframe()
	if err != nil {
		return 0, err
	}
	return s.TransmitProb * sf.ChannelLoad(s.Nodes, frame.PaperPacketDuration(s.PayloadBytes)), nil
}

// Validate reports configuration errors, including an offered load beyond
// saturation (λ > 1), which neither model is defined for.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: empty name")
	}
	if s.Nodes < 1 || s.Nodes > 10000 {
		return fmt.Errorf("scenario %s: nodes %d outside 1..10000", s.Name, s.Nodes)
	}
	if s.PayloadBytes < 1 || s.PayloadBytes > frame.MaxDataPayload {
		return fmt.Errorf("scenario %s: payload %d outside 1..%d", s.Name, s.PayloadBytes, frame.MaxDataPayload)
	}
	if _, err := s.Superframe(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	// The negated comparison forms below also reject NaN, which would
	// otherwise sail through and feed garbage to both models.
	if !(s.TransmitProb > 0 && s.TransmitProb <= 1) {
		return fmt.Errorf("scenario %s: transmit probability %g outside (0,1]", s.Name, s.TransmitProb)
	}
	if !(s.MinLossDB < s.MaxLossDB) || math.IsInf(s.MinLossDB, 0) || math.IsInf(s.MaxLossDB, 0) {
		return fmt.Errorf("scenario %s: loss range %g..%g not a finite ascending interval", s.Name, s.MinLossDB, s.MaxLossDB)
	}
	if math.IsNaN(s.TargetPRxDBm) || math.IsInf(s.TargetPRxDBm, 0) {
		return fmt.Errorf("scenario %s: target received power must be finite", s.Name)
	}
	if s.NMax < 1 || s.NMax > 100 {
		return fmt.Errorf("scenario %s: NMax %d outside 1..100", s.Name, s.NMax)
	}
	if _, ok := radio.ByName(s.Radio); !ok {
		return fmt.Errorf("scenario %s: unknown radio %q", s.Name, s.Radio)
	}
	if s.Superframes < 1 || s.Replicas < 1 || s.MCSuperframes < 1 {
		return fmt.Errorf("scenario %s: run plan must be ≥ 1 (superframes %d, replicas %d, mc %d)",
			s.Name, s.Superframes, s.Replicas, s.MCSuperframes)
	}
	if s.LossGridPoints < 2 {
		return fmt.Errorf("scenario %s: loss grid needs ≥ 2 points", s.Name)
	}
	if l := s.Lifetime; l != nil {
		if _, err := l.supply(); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		if math.IsNaN(l.CapacityJ) || math.IsInf(l.CapacityJ, 0) || l.CapacityJ < 0 {
			return fmt.Errorf("scenario %s: lifetime capacity %g not finite and non-negative", s.Name, l.CapacityJ)
		}
		if !(l.PartitionFrac > 0 && l.PartitionFrac <= 1) {
			return fmt.Errorf("scenario %s: partition fraction %g outside (0,1]", s.Name, l.PartitionFrac)
		}
		if l.EpochSuperframes < 1 || l.MaxEpochs < 1 || l.Replicas < 1 {
			return fmt.Errorf("scenario %s: lifetime run plan must be ≥ 1 (epoch superframes %d, max epochs %d, replicas %d)",
				s.Name, l.EpochSuperframes, l.MaxEpochs, l.Replicas)
		}
	}
	load, err := s.Load()
	if err != nil {
		return err
	}
	if !(load > 0 && load <= 1) {
		return fmt.Errorf("scenario %s: offered load λ = %.3f outside (0,1]", s.Name, load)
	}
	return nil
}
