package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"time"

	"dense802154/internal/channel"
	"dense802154/internal/contention"
	"dense802154/internal/core"
	"dense802154/internal/lifetime"
	"dense802154/internal/netsim"
	"dense802154/internal/phy"
	"dense802154/internal/radio"
	"dense802154/internal/wire"
)

// AnalyticResult summarizes the expected-value model over the scenario's
// path-loss population.
type AnalyticResult struct {
	// Load is the offered network load λ both models consume.
	Load wire.Float `json:"load"`
	// MeanPowerUW is the population-mean per-node average power [µW],
	// scaled by the transmit probability (a node with nothing to send
	// sleeps through the superframe, exactly as the simulator's nodes do).
	MeanPowerUW wire.Float `json:"mean_power_uw"`
	// MeanPrFail is the population-mean per-packet failure probability
	// (eq. 13: channel access failure or NMax exhaustion).
	MeanPrFail wire.Float `json:"mean_pr_fail"`
	// Contention-side quantities from the Monte-Carlo source at (payload,
	// λ) — the Fig. 6 inputs of every grid point.
	TcontMS wire.Float `json:"tcont_ms"`
	NCCA    wire.Float `json:"ncca"`
	PrCF    wire.Float `json:"pr_cf"`
	PrCol   wire.Float `json:"pr_col"`
}

// SimStat is the JSON form of one across-replica statistic.
type SimStat struct {
	Mean wire.Float `json:"mean"`
	CI95 wire.Float `json:"ci95"`
	Min  wire.Float `json:"min"`
	Max  wire.Float `json:"max"`
}

func simStat(s netsim.ReplicaStat) SimStat {
	return SimStat{Mean: wire.Float(s.Mean), CI95: wire.Float(s.CI95), Min: wire.Float(s.Min), Max: wire.Float(s.Max)}
}

// SimResult summarizes the discrete-event replications.
type SimResult struct {
	Replicas int     `json:"replicas"`
	Seeds    []int64 `json:"seeds"`

	PowerUW       SimStat `json:"power_uw"`
	DeliveryRatio SimStat `json:"delivery_ratio"`
	PrFail        SimStat `json:"pr_fail"`
	PrCF          SimStat `json:"pr_cf"`
	PrCol         SimStat `json:"pr_col"`
	NCCA          SimStat `json:"ncca"`
	TcontMS       SimStat `json:"tcont_ms"`
	MeanDelayMS   SimStat `json:"mean_delay_ms"`
}

// Comparison scores one metric's analytic-vs-simulated agreement against
// the scenario's tolerance.
type Comparison struct {
	Metric   string     `json:"metric"`
	Analytic wire.Float `json:"analytic"`
	Sim      wire.Float `json:"sim"`
	SimCI95  wire.Float `json:"sim_ci95"`
	AbsDiff  wire.Float `json:"abs_diff"`
	Allowed  wire.Float `json:"allowed"`
	Pass     bool       `json:"pass"`
}

// LifetimeResult summarizes the battery-lifetime leg of a scenario: the
// across-replica statistics of the three death milestones (in hours; "+Inf"
// on the wire when a network outlives its horizon or sustains itself) plus
// the integrator's own accounting — how much network time the DES actually
// simulated versus skipped through the idle fast-forward.
type LifetimeResult struct {
	Replicas int     `json:"replicas"`
	Seeds    []int64 `json:"seeds"`

	FirstDeathHours SimStat `json:"first_death_hours"`
	PartitionHours  SimStat `json:"partition_hours"`
	LastDeathHours  SimStat `json:"last_death_hours"`
	AliveFracAtEnd  SimStat `json:"alive_frac_at_end"`

	// Sustainable is true when every replica's harvest covers its drain.
	Sustainable bool `json:"sustainable"`
	// Epochs is the total live-simulated epochs across all replicas.
	Epochs int `json:"epochs"`
	// SimulatedHours and FastForwardHours split the covered network time
	// into DES-integrated and steady-state-skipped spans (summed over
	// replicas): their ratio is the integrator's leverage.
	SimulatedHours   wire.Float `json:"simulated_hours"`
	FastForwardHours wire.Float `json:"fast_forward_hours"`
}

// Result is one scenario's full cross-model outcome — the unit the golden
// files pin byte for byte.
type Result struct {
	Scenario    Scenario       `json:"scenario"`
	Analytic    AnalyticResult `json:"analytic"`
	Sim         SimResult      `json:"sim"`
	Comparisons []Comparison   `json:"comparisons"`
	// Lifetime is present only on scenarios declaring a lifetime leg.
	Lifetime *LifetimeResult `json:"lifetime,omitempty"`
	// Pass is true when every comparison is within tolerance.
	Pass bool `json:"pass"`
}

// Encode renders the canonical golden-file bytes: two-space-indented JSON
// with a trailing newline. The encoding is byte-stable — the same Result
// always produces the same bytes (struct order is fixed, floats use the
// shortest exact form, no maps are involved) — so goldens diff cleanly.
func (r *Result) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode parses golden-file bytes back into a Result.
func Decode(b []byte) (*Result, error) {
	var r Result
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Run executes one scenario through both the analytical model and the
// discrete-event simulator and scores their agreement. workers bounds the
// parallelism of the analytic grid sweep and the simulation replicas (0 ⇒
// NumCPU); results are bit-identical at any worker count, because both
// engines derive every random stream from the scenario seed alone. A
// canceled ctx aborts promptly with ctx.Err().
func Run(ctx context.Context, sc Scenario, workers int) (*Result, error) {
	sc = sc.WithDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	sf, err := sc.Superframe()
	if err != nil {
		return nil, err
	}
	rad, _ := radio.ByName(sc.Radio)
	load, err := sc.Load()
	if err != nil {
		return nil, err
	}

	// ---- Analytic side: integrate the model over the loss population ----
	// One Monte-Carlo contention characterization serves every grid point
	// (the source memoizes on the quantized (payload, λ) key). The MC run
	// itself is sharded worker-count-independently, so pinning Workers here
	// only bounds its parallelism, never its statistics.
	src := contention.NewMCSource(contention.Config{
		Superframe:  sf,
		Superframes: sc.MCSuperframes,
		Seed:        sc.Seed,
		Workers:     1,
	})
	losses := channel.LossGrid(sc.MinLossDB, sc.MaxLossDB, sc.LossGridPoints)
	params := make([]core.Params, len(losses))
	for i, loss := range losses {
		// Channel inversion exactly as the simulator's nodes do it: the
		// lowest level reaching the target received power (the maximum
		// level when the target is out of reach).
		level, _ := rad.LevelIndexFor(sc.TargetPRxDBm + loss)
		params[i] = core.Params{
			Radio:        rad,
			BER:          phy.Eq1,
			Contention:   src,
			Superframe:   sf,
			PayloadBytes: sc.PayloadBytes,
			Load:         load,
			PathLossDB:   loss,
			TXLevelIndex: level,
			NMax:         sc.NMax,
			BeaconBytes:  30,
			WakeupLead:   time.Millisecond,
			CCAListen:    phy.CCADuration,
			// The simulator charges the actual acknowledgment reception on
			// success, not the paper's worst-case full window.
			PaperAckAccounting:     false,
			IncludeIFS:             true,
			IncludeShutdownLeakage: true,
			Workers:                1,
		}
	}
	metrics, err := core.EvaluateBatch(ctx, workers, params)
	if err != nil {
		return nil, err
	}
	tib := sf.BeaconInterval().Seconds()
	leak := float64(rad.ShutdownPower)
	var sumPowerW, sumPrFail float64
	for _, m := range metrics {
		// A node offers a packet with probability TransmitProb and sleeps
		// through the whole superframe otherwise (the simulator's nodes
		// skip even the beacon when idle), so the expected power blends the
		// full active superframe with a pure-sleep one.
		activeE := float64(m.EnergyPerFrame - m.Breakdown.Sleep)
		activeT := (m.Tidle + m.TTx + m.TRx).Seconds()
		p := sc.TransmitProb
		sleepT := tib - p*activeT
		if sleepT < 0 {
			sleepT = 0
		}
		sumPowerW += (p*activeE + leak*sleepT) / tib
		sumPrFail += m.PrFail
	}
	n := float64(len(metrics))
	cont := src.Contention(sc.PayloadBytes, load)
	analytic := AnalyticResult{
		Load:        wire.Float(load),
		MeanPowerUW: wire.Float(sumPowerW / n * 1e6),
		MeanPrFail:  wire.Float(sumPrFail / n),
		TcontMS:     wire.Float(float64(cont.Tcont) / float64(time.Millisecond)),
		NCCA:        wire.Float(cont.NCCA),
		PrCF:        wire.Float(cont.PrCF),
		PrCol:       wire.Float(cont.PrCol),
	}

	// ---- Simulated side: replicated discrete-event runs ----
	// RunReplicas recycles one runner arena per worker, so a catalog pass
	// (15 scenarios × Replicas runs each) reuses node, medium and event-heap
	// storage instead of rebuilding it per replica.
	cfg := netsim.Config{
		Nodes:          sc.Nodes,
		PayloadBytes:   sc.PayloadBytes,
		Superframe:     sf,
		Radio:          rad,
		Deployment:     channel.UniformLoss{MinDB: sc.MinLossDB, MaxDB: sc.MaxLossDB},
		TargetPRxDBm:   sc.TargetPRxDBm,
		NMax:           sc.NMax,
		TransmitProb:   sc.TransmitProb,
		Superframes:    sc.Superframes,
		LowPowerListen: sc.LowPowerListen,
		Seed:           sc.Seed,
	}
	rs, err := netsim.RunReplicas(ctx, cfg, sc.Replicas, workers)
	if err != nil {
		return nil, err
	}
	sim := SimResult{
		Replicas:      rs.Replicas,
		Seeds:         rs.Seeds,
		PowerUW:       simStat(rs.AvgPowerUW),
		DeliveryRatio: simStat(rs.DeliveryRatio),
		PrFail:        simStat(rs.PrFail),
		PrCF:          simStat(rs.PrCF),
		PrCol:         simStat(rs.PrCol),
		NCCA:          simStat(rs.NCCA),
		TcontMS:       simStat(rs.TcontMS),
		MeanDelayMS:   simStat(rs.MeanDelayMS),
	}

	// ---- Agreement scoring ----
	res := &Result{Scenario: sc, Analytic: analytic, Sim: sim, Pass: true}
	compare := func(metric string, a float64, s SimStat, tol Tolerance) {
		diff := a - float64(s.Mean)
		if diff < 0 {
			diff = -diff
		}
		allowed := tol.Allowed(a, float64(s.Mean), float64(s.CI95))
		pass := diff <= allowed
		if !pass {
			res.Pass = false
		}
		res.Comparisons = append(res.Comparisons, Comparison{
			Metric:   metric,
			Analytic: wire.Float(a),
			Sim:      s.Mean,
			SimCI95:  s.CI95,
			AbsDiff:  wire.Float(diff),
			Allowed:  wire.Float(allowed),
			Pass:     pass,
		})
	}
	compare("power_uw", float64(analytic.MeanPowerUW), sim.PowerUW, sc.Tol.PowerUW)
	compare("pr_fail", float64(analytic.MeanPrFail), sim.PrFail, sc.Tol.PrFail)
	compare("pr_cf", float64(analytic.PrCF), sim.PrCF, sc.Tol.PrCF)
	compare("ncca", float64(analytic.NCCA), sim.NCCA, sc.Tol.NCCA)
	compare("tcont_ms", float64(analytic.TcontMS), sim.TcontMS, sc.Tol.TcontMS)

	// ---- Lifetime leg (opt-in) ----
	// Same netsim base as the replicated runs above; the integrator owns the
	// epoch length, batteries and death bookkeeping. Replica seeds derive
	// from the scenario seed alone, so the block is worker-count independent
	// like everything else in the golden.
	if sc.Lifetime != nil {
		supply, err := sc.Lifetime.supply()
		if err != nil {
			return nil, err
		}
		lset, err := lifetime.RunReplicas(ctx, lifetime.Config{
			Sim:              cfg,
			Supply:           supply,
			PartitionFrac:    sc.Lifetime.PartitionFrac,
			EpochSuperframes: sc.Lifetime.EpochSuperframes,
			MaxEpochs:        sc.Lifetime.MaxEpochs,
		}, sc.Lifetime.Replicas, workers)
		if err != nil {
			return nil, err
		}
		lr := &LifetimeResult{
			Replicas:        lset.Replicas,
			Seeds:           lset.Seeds,
			FirstDeathHours: simStat(lset.FirstDeathHours),
			PartitionHours:  simStat(lset.PartitionHours),
			LastDeathHours:  simStat(lset.LastDeathHours),
			AliveFracAtEnd:  simStat(lset.AliveFracAtEnd),
			Sustainable:     true,
		}
		for _, r := range lset.Results {
			lr.Sustainable = lr.Sustainable && r.Sustainable
			lr.Epochs += r.Epochs
			lr.SimulatedHours += wire.Float(r.SimulatedS / 3600)
			lr.FastForwardHours += wire.Float(r.FastForwardS / 3600)
		}
		res.Lifetime = lr
	}
	return res, nil
}
