package scenario

import (
	"bytes"
	"embed"
	"fmt"

	"dense802154/internal/wire"
)

// goldenFS carries the committed golden files into the binary, so the
// wsn-scenarios CLI and the /v1/scenarios service endpoints can diff and
// serve them from anywhere — not just a checkout with testdata/ beside the
// working directory.
//
//go:embed testdata/*.golden.json
var goldenFS embed.FS

// Golden returns the committed golden-file bytes for a scenario name.
func Golden(name string) ([]byte, bool) {
	b, err := goldenFS.ReadFile("testdata/" + name + ".golden.json")
	if err != nil {
		return nil, false
	}
	return b, true
}

// GoldenResult parses the committed golden for a scenario name.
func GoldenResult(name string) (*Result, error) {
	b, ok := Golden(name)
	if !ok {
		return nil, fmt.Errorf("scenario: no golden for %q", name)
	}
	return Decode(b)
}

// DiffEntry scores one metric's drift between a fresh run and the golden.
type DiffEntry struct {
	Metric  string     `json:"metric"`
	Golden  wire.Float `json:"golden"`
	Fresh   wire.Float `json:"fresh"`
	AbsDiff wire.Float `json:"abs_diff"`
	Allowed wire.Float `json:"allowed"`
	Pass    bool       `json:"pass"`
}

// DiffReport is the outcome of checking a fresh Result against the
// committed golden.
type DiffReport struct {
	Scenario string `json:"scenario"`
	// ByteIdentical is the strong verdict: the fresh encoding equals the
	// golden bytes exactly, which is what same-platform determinism
	// promises. When false, Entries carries the per-metric drift and Pass
	// says whether it stayed inside the scenario's declared tolerances.
	ByteIdentical bool        `json:"byte_identical"`
	Entries       []DiffEntry `json:"entries,omitempty"`
	// FreshAgrees echoes the fresh run's own analytic-vs-sim verdict.
	FreshAgrees bool `json:"fresh_agrees"`
	Pass        bool `json:"pass"`
}

// Diff compares a fresh Result against the committed golden for the same
// scenario. Byte-identical encodings pass outright; otherwise every
// headline metric (analytic and simulated) is compared under the scenario's
// tolerance envelope, with the golden's own CI95 supplying the statistical
// slack for simulated metrics. The fresh run must also still agree
// analytic-vs-sim.
func Diff(fresh *Result) (DiffReport, error) {
	name := fresh.Scenario.Name
	goldenBytes, ok := Golden(name)
	if !ok {
		return DiffReport{}, fmt.Errorf("scenario: no golden for %q (add one with go test ./internal/scenario -run TestGoldens -update)", name)
	}
	freshBytes, err := fresh.Encode()
	if err != nil {
		return DiffReport{}, err
	}
	rep := DiffReport{Scenario: name, FreshAgrees: fresh.Pass}
	if bytes.Equal(freshBytes, goldenBytes) {
		rep.ByteIdentical = true
		rep.Pass = fresh.Pass
		return rep, nil
	}
	golden, err := Decode(goldenBytes)
	if err != nil {
		return DiffReport{}, fmt.Errorf("scenario: corrupt golden for %q: %w", name, err)
	}

	tol := fresh.Scenario.Tol
	entry := func(metric string, g, f, ci float64, t Tolerance) {
		diff := g - f
		if diff < 0 {
			diff = -diff
		}
		allowed := t.Allowed(g, f, ci)
		rep.Entries = append(rep.Entries, DiffEntry{
			Metric:  metric,
			Golden:  wire.Float(g),
			Fresh:   wire.Float(f),
			AbsDiff: wire.Float(diff),
			Allowed: wire.Float(allowed),
			Pass:    diff <= allowed,
		})
	}
	entry("analytic.power_uw", float64(golden.Analytic.MeanPowerUW), float64(fresh.Analytic.MeanPowerUW), 0, tol.PowerUW)
	entry("analytic.pr_fail", float64(golden.Analytic.MeanPrFail), float64(fresh.Analytic.MeanPrFail), 0, tol.PrFail)
	entry("analytic.pr_cf", float64(golden.Analytic.PrCF), float64(fresh.Analytic.PrCF), 0, tol.PrCF)
	entry("analytic.ncca", float64(golden.Analytic.NCCA), float64(fresh.Analytic.NCCA), 0, tol.NCCA)
	entry("analytic.tcont_ms", float64(golden.Analytic.TcontMS), float64(fresh.Analytic.TcontMS), 0, tol.TcontMS)
	simEntry := func(metric string, g, f SimStat, t Tolerance) {
		entry("sim."+metric, float64(g.Mean), float64(f.Mean), float64(g.CI95), t)
	}
	simEntry("power_uw", golden.Sim.PowerUW, fresh.Sim.PowerUW, tol.PowerUW)
	simEntry("pr_fail", golden.Sim.PrFail, fresh.Sim.PrFail, tol.PrFail)
	simEntry("pr_cf", golden.Sim.PrCF, fresh.Sim.PrCF, tol.PrCF)
	simEntry("ncca", golden.Sim.NCCA, fresh.Sim.NCCA, tol.NCCA)
	simEntry("tcont_ms", golden.Sim.TcontMS, fresh.Sim.TcontMS, tol.TcontMS)

	rep.Pass = fresh.Pass
	for _, e := range rep.Entries {
		if !e.Pass {
			rep.Pass = false
		}
	}
	return rep, nil
}

// GoldenNames lists the scenarios with committed goldens.
func GoldenNames() []string {
	entries, err := goldenFS.ReadDir("testdata")
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		const suffix = ".golden.json"
		if len(name) > len(suffix) && name[len(name)-len(suffix):] == suffix {
			names = append(names, name[:len(name)-len(suffix)])
		}
	}
	return names
}
