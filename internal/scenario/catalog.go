package scenario

// Catalog returns the committed scenario catalog: seventeen operating points
// spanning the axes the paper's point results (Figs. 6-8, the 1600-node
// case study) only sample — density (5→200 nodes on one channel), traffic
// (λ ≈ 0.001 → 0.87, per-superframe transmit probabilities 0.1 → 1),
// beacon order (BO 3 → 9, beacon intervals of 123 ms → 7.9 s), payload
// (20 → 123 B), path-loss populations reaching the >88 dB efficiency cliff,
// the §5 scalable-receiver improvement, and network-lifetime integrations
// (battery-backed and energy-harvesting populations through
// internal/lifetime). Every entry is returned fully defaulted and carries
// its own agreement tolerances; each has a committed golden file under
// testdata/.
//
// To add a scenario: append it here (pick a fresh name and seed, keep
// λ ≤ 1), run `go test ./internal/scenario -run TestGolden -update` to
// write its golden file, eyeball the new testdata/<name>.golden.json
// (comparisons should pass with honest tolerances, not inflated ones), and
// commit both.
func Catalog() []Scenario {
	list := []Scenario{
		{
			Name:        "baseline-case-study",
			Description: "The paper's §5 operating point: 100 nodes per channel, 120 B payloads, BO=SO=6, λ≈0.43.",
			Nodes:       100, PayloadBytes: 120, BO: 6, SO: 6, TransmitProb: 1,
			MinLossDB: 55, MaxLossDB: 95,
			Seed: 2005,
		},
		{
			Name:        "sparse-idle",
			Description: "Five nodes reporting once per ten superframes: the idle-network floor where power is beacon- and sleep-dominated.",
			Nodes:       5, PayloadBytes: 30, BO: 6, SO: 6, TransmitProb: 0.1,
			MinLossDB: 55, MaxLossDB: 80,
			Superframes: 30, Replicas: 4,
			Seed: 101,
		},
		{
			Name:        "sparse-light",
			Description: "Ten nodes at half duty: light statistically-multiplexed traffic (λ≈0.012).",
			Nodes:       10, PayloadBytes: 60, BO: 6, SO: 6, TransmitProb: 0.5,
			MinLossDB: 55, MaxLossDB: 85,
			Superframes: 30, Replicas: 4,
			Seed: 102,
		},
		{
			Name:        "mid-density-mixed",
			Description: "Fifty nodes at 80% duty with mid-size payloads: the middle of the density/traffic plane.",
			Nodes:       50, PayloadBytes: 80, BO: 6, SO: 6, TransmitProb: 0.8,
			MinLossDB: 55, MaxLossDB: 90,
			Seed: 103,
		},
		{
			Name:        "dense-moderate",
			Description: "150 nodes with short payloads: dense population at moderate load (λ≈0.36).",
			Nodes:       150, PayloadBytes: 60, BO: 6, SO: 6, TransmitProb: 1,
			MinLossDB: 55, MaxLossDB: 95,
			Seed: 104,
		},
		{
			Name:        "dense-saturated",
			Description: "200 nodes of full-length packets every superframe: λ≈0.87, the contention-failure regime near saturation.",
			Nodes:       200, PayloadBytes: 120, BO: 6, SO: 6, TransmitProb: 1,
			MinLossDB: 55, MaxLossDB: 95,
			Superframes: 16,
			Seed:        105,
		},
		{
			Name:        "fast-beacons-small",
			Description: "BO=SO=3 (123 ms beacon interval): short duty cycles with a small population and payloads.",
			Nodes:       20, PayloadBytes: 40, BO: 3, SO: 3, TransmitProb: 1,
			MinLossDB: 55, MaxLossDB: 85,
			Superframes: 40, MCSuperframes: 80,
			Seed: 106,
		},
		{
			Name:        "fast-beacons-busy",
			Description: "BO=SO=4 at λ≈0.38: frequent beacons under real contention.",
			Nodes:       40, PayloadBytes: 60, BO: 4, SO: 4, TransmitProb: 1,
			MinLossDB: 55, MaxLossDB: 90,
			Superframes: 30, MCSuperframes: 60,
			Seed: 107,
		},
		{
			Name:        "slow-beacons-dense",
			Description: "BO=SO=8 (3.9 s beacon interval): the case-study population at a quarter of its per-time load.",
			Nodes:       100, PayloadBytes: 120, BO: 8, SO: 8, TransmitProb: 1,
			MinLossDB: 55, MaxLossDB: 95,
			Superframes: 12, Replicas: 4,
			Seed: 108,
		},
		{
			Name:        "very-slow-beacons",
			Description: "BO=SO=9 (7.9 s beacon interval): long duty cycles where wake-up and beacon tracking dominate the energy budget.",
			Nodes:       150, PayloadBytes: 100, BO: 9, SO: 9, TransmitProb: 1,
			MinLossDB: 55, MaxLossDB: 95,
			Superframes: 10, Replicas: 4,
			Seed: 109,
		},
		{
			Name:        "tiny-payload-dense",
			Description: "100 nodes of 20 B sensor readings at BO=SO=5: overhead-dominated packets (the left edge of Fig. 8). Short packets amplify the simulator's correlated same-superframe collision retries, so the failure/power envelopes are wider here.",
			Nodes:       100, PayloadBytes: 20, BO: 5, SO: 5, TransmitProb: 1,
			MinLossDB: 55, MaxLossDB: 90,
			Superframes: 24,
			Seed:        110,
			Tol: Tolerances{
				PowerUW: Tolerance{Rel: 0.30, CIMult: 3},
				PrFail:  Tolerance{Abs: 0.12, Rel: 0.60, CIMult: 3},
				PrCF:    Tolerance{Abs: 0.05, Rel: 1.0, CIMult: 3},
				NCCA:    Tolerance{Rel: 0.50, CIMult: 3},
				TcontMS: Tolerance{Abs: 0.5, Rel: 0.65, CIMult: 3},
			},
		},
		{
			Name:        "max-payload-mid",
			Description: "The largest payload the paper considers (123 B) on a mid-size population.",
			Nodes:       80, PayloadBytes: 123, BO: 6, SO: 6, TransmitProb: 1,
			MinLossDB: 55, MaxLossDB: 95,
			Seed: 111,
		},
		{
			Name:        "range-edge-retries",
			Description: "A population concentrated at 78-95 dB, beyond the link budget's comfort zone: corruption-driven retries and NMax exhaustion.",
			Nodes:       60, PayloadBytes: 120, BO: 6, SO: 6, TransmitProb: 1,
			MinLossDB: 78, MaxLossDB: 95,
			Superframes: 24, Replicas: 6,
			Seed: 112,
		},
		{
			Name:        "hidden-margin-geometry",
			Description: "A near/far split population (55-65 dB against the -82 dBm inversion target): high RX margins, collisions rather than corruption decide failures.",
			Nodes:       120, PayloadBytes: 100, BO: 6, SO: 6, TransmitProb: 1,
			MinLossDB: 55, MaxLossDB: 65, TargetPRxDBm: -82,
			Seed: 113,
		},
		{
			Name:        "low-power-listen",
			Description: "The §5 scalable-receiver improvement: CCAs and acknowledgment waits at half RX power on the case-study point.",
			Nodes:       100, PayloadBytes: 120, BO: 6, SO: 6, TransmitProb: 1,
			MinLossDB: 55, MaxLossDB: 95,
			Radio: "cc2420-scalable", LowPowerListen: true,
			Seed: 114,
		},
		{
			Name:        "lifetime-coin-cell",
			Description: "A small coin-cell population run to exhaustion: the lifetime integrator's epochs and idle fast-forward carry twelve CR2032-backed nodes through months of network time, pinning first-death, partition and last-death statistics.",
			Nodes:       12, PayloadBytes: 60, BO: 6, SO: 6, TransmitProb: 1,
			MinLossDB: 55, MaxLossDB: 90,
			Superframes: 24, Replicas: 4,
			Seed:     115,
			Lifetime: &LifetimeSpec{Supply: "cr2032", Replicas: 3},
		},
		{
			Name:        "lifetime-energy-harvesting",
			Description: "The paper's 100 µW scavenging budget on a light-duty population: harvest covers drain, so every death milestone is +Inf and the lifetime block pins the sustainable contract end to end.",
			Nodes:       20, PayloadBytes: 40, BO: 6, SO: 6, TransmitProb: 0.5,
			MinLossDB: 55, MaxLossDB: 85,
			Superframes: 24, Replicas: 4,
			Seed:     116,
			Lifetime: &LifetimeSpec{Supply: "harvester", Replicas: 3},
		},
	}
	for i := range list {
		list[i] = list[i].WithDefaults()
	}
	return list
}

// ByName finds a catalog scenario.
func ByName(name string) (Scenario, bool) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// Names lists the catalog scenario names in catalog order.
func Names() []string {
	cat := Catalog()
	names := make([]string, len(cat))
	for i, s := range cat {
		names[i] = s.Name
	}
	return names
}
