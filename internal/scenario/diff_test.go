package scenario

import (
	"context"
	"testing"
)

// TestGoldenEmbedsMatchCatalog proves every catalog scenario has a
// committed golden and every golden names a catalog scenario.
func TestGoldenEmbedsMatchCatalog(t *testing.T) {
	inCatalog := map[string]bool{}
	for _, name := range Names() {
		inCatalog[name] = true
		if _, ok := Golden(name); !ok {
			t.Errorf("scenario %s has no committed golden (run go test -update)", name)
		}
		res, err := GoldenResult(name)
		if err != nil {
			t.Errorf("golden for %s does not parse: %v", name, err)
			continue
		}
		if res.Scenario.Name != name {
			t.Errorf("golden for %s names scenario %q", name, res.Scenario.Name)
		}
		if !res.Pass {
			t.Errorf("committed golden for %s records an agreement failure", name)
		}
	}
	for _, name := range GoldenNames() {
		if !inCatalog[name] {
			t.Errorf("stale golden %s has no catalog scenario", name)
		}
	}
}

// TestDiffByteIdentical re-runs a scenario and diffs it against its golden:
// on the same platform the encodings must be byte-identical.
func TestDiffByteIdentical(t *testing.T) {
	sc, _ := ByName("sparse-light")
	fresh, err := Run(context.Background(), sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Diff(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ByteIdentical {
		t.Errorf("fresh run not byte-identical to golden: %+v", rep.Entries)
	}
	if !rep.Pass {
		t.Error("diff report failed")
	}
}

// TestDiffDetectsDrift perturbs a fresh result beyond tolerance and checks
// the diff flags it, and that in-tolerance drift still passes.
func TestDiffDetectsDrift(t *testing.T) {
	sc, _ := ByName("sparse-light")
	fresh, err := Run(context.Background(), sc, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Small drift: nudge one simulated mean by a hair under its allowance.
	small := *fresh
	small.Sim.PowerUW.Mean *= 1.01
	rep, err := Diff(&small)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ByteIdentical {
		t.Fatal("perturbed result still byte-identical")
	}
	if !rep.Pass {
		t.Errorf("1%% power drift should stay within tolerance: %+v", rep.Entries)
	}

	// Gross drift: double the power.
	big := *fresh
	big.Sim.PowerUW.Mean *= 2
	rep, err = Diff(&big)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Error("2× power drift passed the diff")
	}
	found := false
	for _, e := range rep.Entries {
		if e.Metric == "sim.power_uw" && !e.Pass {
			found = true
		}
	}
	if !found {
		t.Errorf("diff did not name sim.power_uw as the drifted metric: %+v", rep.Entries)
	}

	// A failed fresh agreement fails the report even with matching bytes.
	bad := *fresh
	bad.Pass = false
	rep, err = Diff(&bad)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Error("fresh agreement failure passed the diff")
	}

	// Unknown scenario: an error, not a panic.
	ghost := *fresh
	ghost.Scenario.Name = "no-such-scenario"
	if _, err := Diff(&ghost); err == nil {
		t.Error("diff of unknown scenario succeeded")
	}
}
