package scenario

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the committed golden files from the current code:
//
//	go test ./internal/scenario -run TestGoldens -update
//
// Review the diff before committing — a golden change IS a behavior change.
var update = flag.Bool("update", false, "rewrite the golden files from this run")

// goldenWorkers is the worker count the goldens are generated with. The
// value is immaterial — TestWorkerCountIndependence proves any other count
// produces the same bytes — but pinning one keeps the harness honest about
// what it claims.
const goldenWorkers = 2

func goldenPath(name string) string {
	return filepath.Join("testdata", name+".golden.json")
}

// TestGoldens runs every catalog scenario through both models and compares
// the canonical encoding byte for byte against the committed golden, then
// asserts the analytic-vs-simulated agreement held within each scenario's
// tolerances.
func TestGoldens(t *testing.T) {
	for _, sc := range Catalog() {
		t.Run(sc.Name, func(t *testing.T) {
			res, err := Run(context.Background(), sc, goldenWorkers)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			got, err := res.Encode()
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			path := goldenPath(sc.Name)
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatalf("write golden: %v", err)
				}
				t.Logf("wrote %s (%d bytes, pass=%v)", path, len(got), res.Pass)
			} else {
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden (regenerate with -update): %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("golden mismatch for %s:\n%s", sc.Name, goldenDiff(want, got))
				}
			}
			for _, c := range res.Comparisons {
				if !c.Pass {
					t.Errorf("agreement failure on %s: analytic %g vs sim %g (±%g), |Δ| %g > allowed %g",
						c.Metric, float64(c.Analytic), float64(c.Sim), float64(c.SimCI95),
						float64(c.AbsDiff), float64(c.Allowed))
				}
			}
			if !res.Pass {
				t.Errorf("scenario %s failed analytic-vs-sim agreement", sc.Name)
			}
		})
	}
}

// goldenDiff renders the first divergent lines of two golden encodings.
func goldenDiff(want, got []byte) string {
	w := bytes.Split(want, []byte("\n"))
	g := bytes.Split(got, []byte("\n"))
	var buf bytes.Buffer
	shown := 0
	for i := 0; i < len(w) || i < len(g); i++ {
		var lw, lg []byte
		if i < len(w) {
			lw = w[i]
		}
		if i < len(g) {
			lg = g[i]
		}
		if !bytes.Equal(lw, lg) {
			fmt.Fprintf(&buf, "line %d:\n  golden: %s\n  got:    %s\n", i+1, lw, lg)
			if shown++; shown >= 8 {
				buf.WriteString("  ... (further differences elided)\n")
				break
			}
		}
	}
	return buf.String()
}

// TestWorkerCountIndependence proves the acceptance criterion "byte-stable
// at any worker count": serial and oversubscribed runs of the same scenario
// must encode to identical bytes.
func TestWorkerCountIndependence(t *testing.T) {
	for _, name := range []string{"baseline-case-study", "sparse-light", "fast-beacons-busy"} {
		sc, ok := ByName(name)
		if !ok {
			t.Fatalf("scenario %s not in catalog", name)
		}
		t.Run(name, func(t *testing.T) {
			serial, err := Run(context.Background(), sc, 1)
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			wide, err := Run(context.Background(), sc, 5)
			if err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			a, _ := serial.Encode()
			b, _ := wide.Encode()
			if !bytes.Equal(a, b) {
				t.Errorf("workers=1 and workers=5 encode differently:\n%s", goldenDiff(a, b))
			}
		})
	}
}

// TestEncodeDecodeRoundTrip proves goldens parse back into an equivalent
// Result (the CLI diff path) and re-encode to the same bytes.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	sc, _ := ByName("sparse-idle")
	res, err := Run(context.Background(), sc, 2)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := res.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(b1)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	b2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("encode → decode → encode changed bytes:\n%s", goldenDiff(b1, b2))
	}
}

// TestCancellation proves a canceled context aborts a run promptly.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sc, _ := ByName("baseline-case-study")
	if _, err := Run(ctx, sc, 2); err == nil {
		t.Fatal("Run with canceled context succeeded")
	}
}
