package scenario

import (
	"math"
	"regexp"
	"testing"
)

// TestCatalogValid checks the catalog invariants: at least a dozen
// scenarios, unique kebab-case names, every entry fully defaulted, valid,
// and below saturation.
func TestCatalogValid(t *testing.T) {
	cat := Catalog()
	if len(cat) < 12 {
		t.Fatalf("catalog has %d scenarios, want ≥ 12", len(cat))
	}
	kebab := regexp.MustCompile(`^[a-z0-9]+(-[a-z0-9]+)*$`)
	seen := map[string]bool{}
	for _, sc := range cat {
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if !kebab.MatchString(sc.Name) {
			t.Errorf("scenario name %q is not kebab-case", sc.Name)
		}
		if sc.Description == "" {
			t.Errorf("scenario %s has no description", sc.Name)
		}
		if err := sc.Validate(); err != nil {
			t.Errorf("scenario %s invalid: %v", sc.Name, err)
		}
		if sc != sc.WithDefaults() {
			t.Errorf("scenario %s is not stored fully defaulted", sc.Name)
		}
		load, err := sc.Load()
		if err != nil {
			t.Errorf("scenario %s: %v", sc.Name, err)
		}
		if load <= 0 || load > 1 {
			t.Errorf("scenario %s: load %g outside (0,1]", sc.Name, load)
		}
	}
}

// TestCatalogSpansAxes asserts the catalog actually covers the space the
// package documents: sparse→dense, light→saturated, short→long beacon
// orders and both radio families.
func TestCatalogSpansAxes(t *testing.T) {
	var minNodes, maxNodes = 1 << 30, 0
	var minLoad, maxLoad = 2.0, 0.0
	var minBO, maxBO uint8 = 255, 0
	radios := map[string]bool{}
	for _, sc := range Catalog() {
		if sc.Nodes < minNodes {
			minNodes = sc.Nodes
		}
		if sc.Nodes > maxNodes {
			maxNodes = sc.Nodes
		}
		load, _ := sc.Load()
		if load < minLoad {
			minLoad = load
		}
		if load > maxLoad {
			maxLoad = load
		}
		if sc.BO < minBO {
			minBO = sc.BO
		}
		if sc.BO > maxBO {
			maxBO = sc.BO
		}
		radios[sc.Radio] = true
	}
	if minNodes > 10 || maxNodes < 150 {
		t.Errorf("density axis too narrow: %d..%d nodes", minNodes, maxNodes)
	}
	if minLoad > 0.05 || maxLoad < 0.7 {
		t.Errorf("traffic axis too narrow: λ %g..%g", minLoad, maxLoad)
	}
	if minBO > 4 || maxBO < 8 {
		t.Errorf("duty-cycle axis too narrow: BO %d..%d", minBO, maxBO)
	}
	if len(radios) < 2 {
		t.Errorf("catalog exercises only radios %v", radios)
	}
}

// TestByName round-trips every catalog name and rejects unknown ones.
func TestByName(t *testing.T) {
	for _, name := range Names() {
		sc, ok := ByName(name)
		if !ok || sc.Name != name {
			t.Errorf("ByName(%q) = %q, %v", name, sc.Name, ok)
		}
	}
	if _, ok := ByName("no-such-scenario"); ok {
		t.Error("ByName accepted an unknown name")
	}
}

// TestValidateRejections covers the validator's error paths.
func TestValidateRejections(t *testing.T) {
	base, _ := ByName("baseline-case-study")
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"empty name", func(s *Scenario) { s.Name = "" }},
		{"zero nodes", func(s *Scenario) { s.Nodes = 0 }},
		{"payload too large", func(s *Scenario) { s.PayloadBytes = 1000 }},
		{"SO > BO", func(s *Scenario) { s.SO = s.BO + 1 }},
		{"transmit prob > 1", func(s *Scenario) { s.TransmitProb = 1.5 }},
		{"empty loss range", func(s *Scenario) { s.MinLossDB = s.MaxLossDB }},
		{"unknown radio", func(s *Scenario) { s.Radio = "cc9999" }},
		{"NaN transmit prob", func(s *Scenario) { s.TransmitProb = math.NaN() }},
		{"NaN loss bound", func(s *Scenario) { s.MinLossDB = math.NaN() }},
		{"infinite loss bound", func(s *Scenario) { s.MaxLossDB = math.Inf(1) }},
		{"NaN target prx", func(s *Scenario) { s.TargetPRxDBm = math.NaN() }},
		{"zero replicas", func(s *Scenario) { s.Replicas = 0 }},
		{"one grid point", func(s *Scenario) { s.LossGridPoints = 1 }},
		{"saturated", func(s *Scenario) { s.Nodes = 500 }},
	}
	for _, tc := range cases {
		sc := base
		tc.mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid scenario", tc.name)
		}
	}
}
