package mac

import (
	"fmt"
	"time"

	"dense802154/internal/phy"
)

// Superframe is the beacon-mode timing structure of Fig. 2: an inter-beacon
// period of 2^BO base durations whose first 2^SO base durations form the
// active superframe, divided into 16 slots; slots after FinalCAPSlot form
// the contention-free period.
type Superframe struct {
	BO, SO       uint8
	FinalCAPSlot uint8
}

// NewSuperframe validates and builds a superframe structure with the whole
// active period used as CAP.
func NewSuperframe(bo, so uint8) (Superframe, error) {
	s := Superframe{BO: bo, SO: so, FinalCAPSlot: NumSuperframeSlots - 1}
	if err := s.Validate(); err != nil {
		return Superframe{}, err
	}
	return s, nil
}

// Validate checks 0 ≤ SO ≤ BO ≤ 14 and the minimum CAP length.
func (s Superframe) Validate() error {
	if s.BO > MaxBeaconOrder {
		return fmt.Errorf("mac: beacon order %d > %d", s.BO, MaxBeaconOrder)
	}
	if s.SO > s.BO {
		return fmt.Errorf("mac: superframe order %d > beacon order %d", s.SO, s.BO)
	}
	if s.FinalCAPSlot >= NumSuperframeSlots {
		return fmt.Errorf("mac: final CAP slot %d out of range", s.FinalCAPSlot)
	}
	capSymbols := int(s.FinalCAPSlot+1) * BaseSlotSymbols << uint(s.SO)
	if capSymbols < MinCAPSymbols {
		return fmt.Errorf("mac: CAP of %d symbols shorter than aMinCAPLength %d",
			capSymbols, MinCAPSymbols)
	}
	return nil
}

// BeaconInterval reports T_ib.
func (s Superframe) BeaconInterval() time.Duration { return BeaconInterval(s.BO) }

// ActiveDuration reports the superframe duration (2^SO bases).
func (s Superframe) ActiveDuration() time.Duration { return SuperframeDuration(s.SO) }

// InactiveDuration reports the time the whole PAN may sleep.
func (s Superframe) InactiveDuration() time.Duration {
	return s.BeaconInterval() - s.ActiveDuration()
}

// SlotDuration reports one of the 16 superframe slots.
func (s Superframe) SlotDuration() time.Duration {
	return s.ActiveDuration() / NumSuperframeSlots
}

// CAPDuration reports the contention access period length (slots 0 through
// FinalCAPSlot). The beacon itself occupies the start of slot 0; callers
// subtract its on-air time when computing usable contention time.
func (s Superframe) CAPDuration() time.Duration {
	return time.Duration(s.FinalCAPSlot+1) * s.SlotDuration()
}

// CFPDuration reports the contention-free (GTS) period length.
func (s Superframe) CFPDuration() time.Duration {
	return s.ActiveDuration() - s.CAPDuration()
}

// BackoffSlots reports how many CSMA backoff periods fit in the CAP.
func (s Superframe) BackoffSlots() int {
	return int(s.CAPDuration() / phy.UnitBackoffPeriod)
}

// DutyCycle reports the active fraction of the inter-beacon period; with
// SO = BO it is 1, and each BO increment beyond SO halves it (the "switched
// off up to 15/16 of the time" of the paper refers to BO-SO settings).
func (s Superframe) DutyCycle() float64 {
	return float64(s.ActiveDuration()) / float64(s.BeaconInterval())
}

// String implements fmt.Stringer.
func (s Superframe) String() string {
	return fmt.Sprintf("superframe BO=%d SO=%d (Tib=%v, active=%v, CAP slots 0-%d)",
		s.BO, s.SO, s.BeaconInterval(), s.ActiveDuration(), s.FinalCAPSlot)
}

// ChannelLoad reports the paper's network load λ: the aggregate on-air time
// n nodes, each transmitting one packet of packetDuration per inter-beacon
// period, impose relative to the beacon interval.
func (s Superframe) ChannelLoad(n int, packetDuration time.Duration) float64 {
	return float64(n) * float64(packetDuration) / float64(s.BeaconInterval())
}
